// Command monoperf records the repo's benchmark trajectory: it runs the
// hot-path microbenchmarks (sim event loop, netsim rerate, end-to-end sort)
// and a serial-vs-parallel sweep of the chaos matrix, then writes the numbers
// to a BENCH_*.json report.
//
//	monoperf -out BENCH_8.json                                # full run
//	monoperf -quick -baseline BENCH_7.json -out BENCH_ci.json # CI-sized run
//
// The exit status doubles as six gates: if the parallel sweep's rendered
// output is not byte-identical to the serial run's, if any sharded-engine
// comparison's checksums diverge from its serial leg, if a product run's
// sharded output diverges from the serial engine's, if any control-plane
// comparison's delegated checksum diverges from its centralized leg, or if
// -baseline names an earlier report and SortEndToEnd's allocs/op regressed
// more than 10% against it — or delegated submission costs more than 10%
// over the baseline's centralized DriverSubmit — monoperf exits non-zero.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/figures"
	"repro/internal/sweep"
	"repro/internal/units"
	"repro/perf"
)

// benchSortEndToEnd runs the small two-executor sort the golden test locks
// down, pinned to serial so the ns/op means "single-core simulation cost".
// Mirrors BenchmarkSortEndToEnd in internal/figures.
func benchSortEndToEnd(b *testing.B) {
	old := sweep.Parallelism()
	sweep.SetParallelism(1)
	defer sweep.SetParallelism(old)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := figures.SortSized(8*units.GB, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func main() {
	out := flag.String("out", "BENCH_8.json", "report path")
	quick := flag.Bool("quick", false, "CI-sized run: fewer chaos seeds")
	workers := flag.Int("parallel", 0,
		"worker count for the parallel sweep leg (0 = min(8, NumCPU): more workers than cores only measures time-slicing overhead)")
	baseline := flag.String("baseline", "",
		"earlier BENCH_*.json to gate against: exit non-zero if SortEndToEnd allocs/op regressed >10%")
	flag.Parse()

	if *workers <= 0 {
		*workers = runtime.NumCPU()
		if *workers > 8 {
			*workers = 8
		}
	}
	seeds := 8
	if *quick {
		seeds = 3
	}
	rep := perf.NewReport()
	rep.Benchmarks = []perf.BenchResult{
		perf.Bench("EngineChurn", perf.BenchEngineChurn),
		perf.Bench("FabricAllToAllShuffle", perf.BenchFabricAllToAll),
		perf.Bench("SortEndToEnd", benchSortEndToEnd),
		perf.Bench("DriverSubmit", perf.BenchDriverSubmit),
		perf.Bench("DriverSubmitDelegated", perf.BenchDriverSubmitDelegated),
		perf.Bench("MultiJobSteadyState", perf.BenchMultiJobSteadyState),
		perf.Bench("EngineSharded4", perf.BenchEngineSharded(4)),
	}
	// Serial-vs-sharded engine table: every workload shape at 1/2/4/8 shards
	// (the EXPERIMENTS.md speedup table). Event counts are scaled down by
	// -quick.
	shardEvents := 1 << 20
	if *quick {
		shardEvents = 1 << 17
	}
	for _, workload := range []string{"sort", "chaos", "memory"} {
		for _, shards := range []int{1, 2, 4, 8} {
			sc, err := perf.CompareShardedEngine(workload, 8, shards, shardEvents)
			if err != nil {
				fmt.Fprintf(os.Stderr, "monoperf: %v\n", err)
				os.Exit(1)
			}
			rep.Sharded = append(rep.Sharded, sc)
		}
	}
	// Real-run sharding table: the golden sort end to end on the serial vs
	// sharded engine, with the engine's lane-occupancy counters. Shards 1
	// measures the sharded machinery's overhead; shards 4 is the product
	// configuration the CI smoke leg exercises.
	for _, shards := range []int{1, 4} {
		pc, err := perf.CompareShardedProduct("golden-sort", shards, func(s int) (perf.ProductRun, error) {
			st, err := figures.SortMonotasks(16*units.GB, 4, s)
			if err != nil {
				return perf.ProductRun{}, err
			}
			return perf.ProductRun{
				Output:       st.Output,
				LaneEvents:   st.LaneEvents,
				GlobalEvents: st.GlobalEvents,
				Occupancy:    st.Occupancy,
			}, nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "monoperf: %v\n", err)
			os.Exit(1)
		}
		rep.Product = append(rep.Product, pc)
	}
	// Control-plane table: the same workload with centralized driver dispatch
	// and with worker-side delegation. steady-sort holds the driver, so its
	// row carries real message counts; golden-sort runs the exact corpus the
	// golden tests lock down, through the figures hook.
	controlRows := []struct {
		name string
		leg  func(delegated bool) (perf.ControlRun, error)
	}{
		{"steady-sort", func(delegated bool) (perf.ControlRun, error) {
			return perf.ControlSortLeg(4, 4, delegated)
		}},
		{"golden-sort", func(delegated bool) (perf.ControlRun, error) {
			figures.SetWorkerDispatch(delegated)
			defer figures.SetWorkerDispatch(false)
			st, err := figures.SortMonotasks(16*units.GB, 4, 0)
			if err != nil {
				return perf.ControlRun{}, err
			}
			return perf.ControlRun{Output: st.Output}, nil
		}},
	}
	for _, row := range controlRows {
		cc, err := perf.CompareControl(row.name, row.leg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "monoperf: %v\n", err)
			os.Exit(1)
		}
		rep.Control = append(rep.Control, cc)
	}
	sw, err := perf.CompareSweep("chaos", seeds*2, *workers, func() ([]byte, error) {
		res, err := figures.Chaos(seeds)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		res.Fprint(&buf)
		return buf.Bytes(), nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "monoperf: %v\n", err)
		os.Exit(1)
	}
	rep.Sweep = sw
	if err := rep.Write(*out); err != nil {
		fmt.Fprintf(os.Stderr, "monoperf: %v\n", err)
		os.Exit(1)
	}
	var base *perf.Report
	if *baseline != "" {
		base, err = perf.LoadReport(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "monoperf: reading baseline: %v\n", err)
			os.Exit(1)
		}
	}
	for _, b := range rep.Benchmarks {
		fmt.Printf("%-24s %12.1f ns/op %8d allocs/op %10d B/op",
			b.Name, b.NsPerOp, b.AllocsPerOp, b.BytesPerOp)
		if base != nil {
			if old, ok := base.Benchmark(b.Name); ok && old.AllocsPerOp > 0 {
				fmt.Printf("   (baseline %8d allocs/op, %+.1f%%)",
					old.AllocsPerOp, 100*float64(b.AllocsPerOp-old.AllocsPerOp)/float64(old.AllocsPerOp))
			}
		}
		fmt.Println()
	}
	fmt.Printf("%-24s serial %.0f ms, parallel(%d) %.0f ms on %d CPUs, speedup %.2fx, identical %v\n",
		"sweep:"+sw.Experiment, sw.SerialMs, sw.Workers, sw.ParallelMs, sw.NumCPU, sw.Speedup, sw.Identical)
	shardedOK := true
	for _, sc := range rep.Sharded {
		fmt.Printf("%-24s serial %.0f ms, sharded(%d) %.0f ms, speedup %.2fx, identical %v\n",
			"shard:"+sc.Workload, sc.SerialMs, sc.Shards, sc.ShardedMs, sc.Speedup, sc.Identical)
		if !sc.Identical {
			shardedOK = false
		}
	}
	for _, pc := range rep.Product {
		fmt.Printf("%-24s serial %.0f ms, sharded(%d) %.0f ms, speedup %.2fx, lane occupancy %.2f, identical %v\n",
			"product:"+pc.Workload, pc.SerialMs, pc.Shards, pc.ShardedMs, pc.Speedup, pc.LaneOccupancy, pc.Identical)
		if !pc.Identical {
			shardedOK = false
		}
	}
	controlOK := true
	for _, cc := range rep.Control {
		fmt.Printf("%-24s centralized %.0f ms, delegated %.0f ms, identical %v",
			"control:"+cc.Workload, cc.CentralizedMs, cc.DelegatedMs, cc.Identical)
		if cc.CentralizedDriverMsgs > 0 {
			fmt.Printf(", driver msgs %d → %d, peer msgs %d, self-dispatched %d",
				cc.CentralizedDriverMsgs, cc.DelegatedDriverMsgs, cc.PeerMsgs, cc.SelfDispatched)
		}
		fmt.Println()
		if !cc.Identical {
			controlOK = false
		}
	}
	if sw.Flagged {
		fmt.Fprintf(os.Stderr,
			"monoperf: warning: parallel sweep speedup %.2fx < 1 with %d workers on %d CPUs — number is an overhead measurement, not a win\n",
			sw.Speedup, sw.Workers, rep.NumCPU)
	}
	fmt.Printf("wrote %s\n", *out)
	if !sw.Identical {
		fmt.Fprintln(os.Stderr, "monoperf: parallel sweep output diverged from serial run")
		os.Exit(1)
	}
	if !shardedOK {
		fmt.Fprintln(os.Stderr, "monoperf: sharded engine checksums diverged from serial run")
		os.Exit(1)
	}
	if !controlOK {
		fmt.Fprintln(os.Stderr, "monoperf: delegated control-plane checksums diverged from centralized run")
		os.Exit(1)
	}
	if base != nil {
		if err := rep.AllocGate(base, "SortEndToEnd", 0.10); err != nil {
			fmt.Fprintf(os.Stderr, "monoperf: %v\n", err)
			os.Exit(1)
		}
		// Delegation must not make submission more expensive: gate the
		// delegated submit bench against the baseline's centralized
		// DriverSubmit (BENCH_7: 13 allocs/op).
		if cur, ok := rep.Benchmark("DriverSubmitDelegated"); ok {
			if old, ok := base.Benchmark("DriverSubmit"); ok && old.AllocsPerOp > 0 {
				if float64(cur.AllocsPerOp) > float64(old.AllocsPerOp)*1.10 {
					fmt.Fprintf(os.Stderr,
						"monoperf: DriverSubmitDelegated allocs/op %d exceeds centralized baseline %d by >10%%\n",
						cur.AllocsPerOp, old.AllocsPerOp)
					os.Exit(1)
				}
			}
		}
	}
}
