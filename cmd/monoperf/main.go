// Command monoperf records the repo's benchmark trajectory: it runs the
// hot-path microbenchmarks (sim event loop, netsim rerate, end-to-end sort)
// and a serial-vs-parallel sweep of the chaos matrix, then writes the numbers
// to a BENCH_*.json report.
//
//	monoperf -out BENCH_3.json            # full run
//	monoperf -quick -out BENCH_3.json     # CI-sized run
//
// The exit status doubles as the determinism gate: if the parallel sweep's
// rendered output is not byte-identical to the serial run's, monoperf exits
// non-zero.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"testing"

	"repro/internal/figures"
	"repro/internal/sweep"
	"repro/internal/units"
	"repro/perf"
)

// benchSortEndToEnd runs the small two-executor sort the golden test locks
// down, pinned to serial so the ns/op means "single-core simulation cost".
// Mirrors BenchmarkSortEndToEnd in internal/figures.
func benchSortEndToEnd(b *testing.B) {
	old := sweep.Parallelism()
	sweep.SetParallelism(1)
	defer sweep.SetParallelism(old)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := figures.SortSized(8*units.GB, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func main() {
	out := flag.String("out", "BENCH_3.json", "report path")
	quick := flag.Bool("quick", false, "CI-sized run: fewer chaos seeds")
	workers := flag.Int("parallel", 8, "worker count for the parallel sweep leg")
	flag.Parse()

	seeds := 8
	if *quick {
		seeds = 3
	}
	rep := perf.NewReport()
	rep.Benchmarks = []perf.BenchResult{
		perf.Bench("EngineChurn", perf.BenchEngineChurn),
		perf.Bench("FabricAllToAllShuffle", perf.BenchFabricAllToAll),
		perf.Bench("SortEndToEnd", benchSortEndToEnd),
	}
	sw, err := perf.CompareSweep("chaos", seeds*2, *workers, func() ([]byte, error) {
		res, err := figures.Chaos(seeds)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		res.Fprint(&buf)
		return buf.Bytes(), nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "monoperf: %v\n", err)
		os.Exit(1)
	}
	rep.Sweep = sw
	if err := rep.Write(*out); err != nil {
		fmt.Fprintf(os.Stderr, "monoperf: %v\n", err)
		os.Exit(1)
	}
	for _, b := range rep.Benchmarks {
		fmt.Printf("%-24s %12.1f ns/op %8d allocs/op %10d B/op\n",
			b.Name, b.NsPerOp, b.AllocsPerOp, b.BytesPerOp)
	}
	fmt.Printf("%-24s serial %.0f ms, parallel(%d) %.0f ms, speedup %.2fx, identical %v\n",
		"sweep:"+sw.Experiment, sw.SerialMs, sw.Workers, sw.ParallelMs, sw.Speedup, sw.Identical)
	fmt.Printf("wrote %s\n", *out)
	if !sw.Identical {
		fmt.Fprintln(os.Stderr, "monoperf: parallel sweep output diverged from serial run")
		os.Exit(1)
	}
}
