package main

import (
	"io"

	"repro/internal/figures"
)

// The figure-5 run also carries the figure-6 utilization data, and the
// figure-12 run carries figures 15 and 17; these adapters select the view.

func figFig2() (*figures.Fig02Result, error)    { return figures.Fig02() }
func figSort() (*figures.SortResult, error)     { return figures.Sort600GB() }
func figFig7() (*figures.Fig07Result, error)    { return figures.Fig07() }
func figFig8() (*figures.Fig08Result, error)    { return figures.Fig08() }
func figFig9() (*figures.Fig09Result, error)    { return figures.Fig09() }
func figFig11() (*figures.PredictResult, error) { return figures.Fig11() }
func figSec63() (*figures.PredictResult, error) { return figures.Sec63() }
func figFig13() (*figures.PredictResult, error) { return figures.Fig13() }
func figFig14() (*figures.Fig14Result, error)   { return figures.Fig14() }
func figFig16() (*figures.Fig16Result, error)   { return figures.Fig16() }
func figFig18() (*figures.Fig18Result, error)   { return figures.Fig18() }

func figFig5() ([]printer, error) {
	r, err := figures.Fig05()
	if err != nil {
		return nil, err
	}
	return []printer{r}, nil
}

func figFig6() ([]printer, error) {
	r, err := figures.Fig05()
	if err != nil {
		return nil, err
	}
	return []printer{printFunc(r.FprintFig6)}, nil
}

func figFig12() ([]printer, error) {
	r, err := figures.Fig12()
	if err != nil {
		return nil, err
	}
	return []printer{r}, nil
}

func figFig15() ([]printer, error) {
	r, err := figures.Fig12()
	if err != nil {
		return nil, err
	}
	return []printer{printFunc(r.FprintFig15)}, nil
}

func figFig17() ([]printer, error) {
	r, err := figures.Fig12()
	if err != nil {
		return nil, err
	}
	return []printer{printFunc(r.FprintFig17)}, nil
}

// printFunc adapts a method value to the printer interface.
type printFunc func(io.Writer)

func (f printFunc) Fprint(w io.Writer) { f(w) }

func figAblations() ([]printer, error) {
	var out []printer
	for _, f := range []func() (*figures.AblationResult, error){
		figures.AblationPhaseRR,
		figures.AblationSpareMultitask,
		figures.AblationNetLimit,
		figures.AblationSSDConcurrency,
		figures.AblationLoadAwareWrites,
		figures.AblationNetworkPolicy,
	} {
		r, err := f()
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func figFailure() ([]printer, error) {
	r, err := figures.Failure()
	if err != nil {
		return nil, err
	}
	return []printer{r}, nil
}

func figChaos() ([]printer, error) {
	r, err := figures.Chaos(24)
	if err != nil {
		return nil, err
	}
	return []printer{r}, nil
}

func figMultijob() (*figures.MultijobResult, error) { return figures.Multijob(*smoke) }

func figMemory() (*figures.MemoryResult, error) { return figures.Memory(*smoke) }
