// Command monobench regenerates the paper's evaluation tables and figures
// on the virtual cluster. Run one experiment by name, or all of them:
//
//	monobench fig5          # big data benchmark comparison
//	monobench fig12         # monotasks-model disk-removal predictions
//	monobench sort          # §5.2 600 GB sort
//	monobench all
//
// Every experiment is deterministic: repeated runs print identical numbers.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/figures"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// printer is anything a figure returns that can render itself.
type printer interface{ Fprint(io.Writer) }

// experiments maps names to runners. Each runner executes the experiment
// and returns one or more printable sections.
var experiments = map[string]func() ([]printer, error){
	"fig2":      wrap1(figFig2),
	"sort":      wrap1(figSort),
	"fig5":      figFig5,
	"fig6":      figFig6,
	"fig7":      wrap1(figFig7),
	"fig8":      wrap1(figFig8),
	"fig9":      wrap1(figFig9),
	"fig11":     wrap1(figFig11),
	"fig12":     figFig12,
	"sec63":     wrap1(figSec63),
	"fig13":     wrap1(figFig13),
	"fig14":     wrap1(figFig14),
	"fig15":     figFig15,
	"fig16":     wrap1(figFig16),
	"fig17":     figFig17,
	"fig18":     wrap1(figFig18),
	"ablations": figAblations,
	"failure":   figFailure,
	"chaos":     figChaos,
	"multijob":  wrap1(figMultijob),
	"memory":    wrap1(figMemory),
}

// order lists experiments in paper order for `monobench all`.
var order = []string{
	"fig2", "sort", "fig5", "fig6", "fig7", "fig8", "fig9",
	"fig11", "fig12", "sec63", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
	"ablations", "failure", "chaos", "multijob", "memory",
}

// csvDir, when set, receives each experiment's data as CSV files.
var csvDir = flag.String("csv", "", "also write each experiment's table as CSV into this directory")

// smoke shrinks experiments that support it (multijob) to CI size.
var smoke = flag.Bool("smoke", false, "run a reduced, CI-sized version of experiments that support it")

// parallel sets how many grid cells the sweep pool runs concurrently. Each
// cell is an independent simulation; results are identical at any setting.
var parallel = flag.Int("parallel", runtime.NumCPU(), "worker goroutines for experiment grids (1 = serial)")

// timeout, when positive, bounds each experiment's wall-clock time: cells
// still pending when it expires fail with a deadline error and cells already
// simulating are aborted cleanly between event batches, so a stuck
// experiment reports failed instead of hanging the whole benchmark run.
var timeout = flag.Duration("timeout", 0, "per-experiment wall-clock budget (0 = none), e.g. 90s")

// shards, when above 1, runs every experiment's simulations on the sharded
// engine: machines partition into that many shards advancing in parallel
// within a topology-derived lookahead. Unlike --parallel (which runs whole
// grid cells concurrently), --shards parallelizes inside a single run.
// Results are bit-identical at any setting.
var shards = flag.Int("shards", 0, "engine shards per simulation (0/1 = serial engine)")

// workerDispatch delegates stage execution to worker-side dispatchers
// (jobsched.Config.WorkerDispatch): workers self-assign tasks from the job
// template when a slot opens and exchange stage-completion metadata peer to
// peer, with bit-identical results to the centralized driver.
var workerDispatch = flag.Bool("worker-dispatch", false, "delegated control plane: workers self-dispatch tasks (bit-identical results)")

// telemetryOut, when set, attaches a live sampler to every experiment run and
// writes all captured snapshots to this file as JSON Lines (cmd/monotop reads
// the format). Output bytes are identical at any --parallel setting.
var telemetryOut = flag.String("telemetry", "", "write live telemetry snapshots from every run to this JSONL file")

// telemetryCollector gathers each run's snapshot ring as one serialized JSONL
// chunk. Sweep cells finish in nondeterministic wall-clock order under
// --parallel, so chunks are sorted canonically (each chunk is itself a
// deterministic byte string) before writing — the file is then a pure
// function of the experiment set.
type telemetryCollector struct {
	mu     sync.Mutex
	chunks [][]byte
	err    error
}

func (tc *telemetryCollector) collect(s *telemetry.Sampler) {
	var buf bytes.Buffer
	err := telemetry.WriteJSONL(&buf, s.Snapshots())
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if err != nil {
		if tc.err == nil {
			tc.err = err
		}
		return
	}
	tc.chunks = append(tc.chunks, buf.Bytes())
}

func (tc *telemetryCollector) write(path string) error {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.err != nil {
		return tc.err
	}
	sort.Slice(tc.chunks, func(i, j int) bool { return bytes.Compare(tc.chunks[i], tc.chunks[j]) < 0 })
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for _, c := range tc.chunks {
		if _, err := f.Write(c); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	// Accept --smoke and --parallel after the experiment names too (flag
	// stops parsing at the first non-flag argument).
	kept := args[:0]
	for i := 0; i < len(args); i++ {
		a := args[i]
		if a == "--smoke" || a == "-smoke" {
			*smoke = true
			continue
		}
		if v, ok := strings.CutPrefix(a, "--parallel="); ok {
			setParallelArg(v)
			continue
		}
		if v, ok := strings.CutPrefix(a, "-parallel="); ok {
			setParallelArg(v)
			continue
		}
		if a == "--parallel" || a == "-parallel" {
			if i+1 >= len(args) {
				fmt.Fprintf(os.Stderr, "monobench: %s needs a value\n", a)
				os.Exit(2)
			}
			i++
			setParallelArg(args[i])
			continue
		}
		if v, ok := strings.CutPrefix(a, "--shards="); ok {
			setShardsArg(v)
			continue
		}
		if v, ok := strings.CutPrefix(a, "-shards="); ok {
			setShardsArg(v)
			continue
		}
		if a == "--shards" || a == "-shards" {
			if i+1 >= len(args) {
				fmt.Fprintf(os.Stderr, "monobench: %s needs a value\n", a)
				os.Exit(2)
			}
			i++
			setShardsArg(args[i])
			continue
		}
		if a == "--worker-dispatch" || a == "-worker-dispatch" {
			*workerDispatch = true
			continue
		}
		if v, ok := strings.CutPrefix(a, "--telemetry="); ok {
			*telemetryOut = v
			continue
		}
		if v, ok := strings.CutPrefix(a, "-telemetry="); ok {
			*telemetryOut = v
			continue
		}
		if a == "--telemetry" || a == "-telemetry" {
			if i+1 >= len(args) {
				fmt.Fprintf(os.Stderr, "monobench: %s needs a value\n", a)
				os.Exit(2)
			}
			i++
			*telemetryOut = args[i]
			continue
		}
		if v, ok := strings.CutPrefix(a, "--timeout="); ok {
			setTimeoutArg(v)
			continue
		}
		if v, ok := strings.CutPrefix(a, "-timeout="); ok {
			setTimeoutArg(v)
			continue
		}
		if a == "--timeout" || a == "-timeout" {
			if i+1 >= len(args) {
				fmt.Fprintf(os.Stderr, "monobench: %s needs a value\n", a)
				os.Exit(2)
			}
			i++
			setTimeoutArg(args[i])
			continue
		}
		kept = append(kept, a)
	}
	args = kept
	sweep.SetParallelism(*parallel)
	figures.SetShards(*shards)
	figures.SetWorkerDispatch(*workerDispatch)
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "monobench: %v\n", err)
			os.Exit(1)
		}
	}
	var tc *telemetryCollector
	if *telemetryOut != "" {
		tc = &telemetryCollector{}
		figures.SetTelemetry(&telemetry.Config{}, tc.collect)
	}
	names := args
	if len(args) == 1 && args[0] == "all" {
		names = order
	}
	var failed []string
	for _, name := range names {
		runner, ok := experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "monobench: unknown experiment %q\n\n", name)
			usage()
			os.Exit(2)
		}
		start := time.Now()
		if *timeout > 0 {
			sweep.SetDeadline(start.Add(*timeout))
		}
		sections, err := runner()
		if err != nil {
			// A failed experiment (timed-out or crashed cells) is reported
			// and the remaining experiments still run; the exit code at the
			// end says the run was incomplete.
			fmt.Fprintf(os.Stderr, "monobench: %s: FAILED after %v: %v\n",
				name, time.Since(start).Round(time.Millisecond), err)
			failed = append(failed, name)
			continue
		}
		for i, s := range sections {
			s.Fprint(os.Stdout)
			fmt.Println()
			if *csvDir != "" {
				if err := writeCSV(name, i, s); err != nil {
					fmt.Fprintf(os.Stderr, "monobench: csv: %v\n", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	sweep.SetDeadline(time.Time{})
	if tc != nil {
		if err := tc.write(*telemetryOut); err != nil {
			fmt.Fprintf(os.Stderr, "monobench: telemetry: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[telemetry: %d run streams written to %s]\n", len(tc.chunks), *telemetryOut)
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "monobench: %d of %d experiments failed: %s\n",
			len(failed), len(names), strings.Join(failed, ", "))
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: monobench <experiment>... | all\n\nexperiments:\n")
	names := make([]string, 0, len(experiments))
	for n := range experiments {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(os.Stderr, "  %s\n", n)
	}
}

// writeCSV stores a section's table, when it has one, under csvDir.
func writeCSV(name string, idx int, section printer) error {
	t, ok := section.(interface{ CSV() *figures.CSVTable })
	if !ok {
		return nil
	}
	fname := fmt.Sprintf("%s.csv", name)
	if idx > 0 {
		fname = fmt.Sprintf("%s-%d.csv", name, idx)
	}
	f, err := os.Create(filepath.Join(*csvDir, fname))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.CSV().Write(f)
}

// setTimeoutArg parses a trailing --timeout value into the flag.
func setTimeoutArg(v string) {
	d, err := time.ParseDuration(v)
	if err != nil {
		fmt.Fprintf(os.Stderr, "monobench: bad --timeout value %q\n", v)
		os.Exit(2)
	}
	*timeout = d
}

// setShardsArg parses a trailing --shards value into the flag.
func setShardsArg(v string) {
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		fmt.Fprintf(os.Stderr, "monobench: bad --shards value %q\n", v)
		os.Exit(2)
	}
	*shards = n
}

// setParallelArg parses a trailing --parallel value into the flag.
func setParallelArg(v string) {
	n, err := strconv.Atoi(v)
	if err != nil {
		fmt.Fprintf(os.Stderr, "monobench: bad --parallel value %q\n", v)
		os.Exit(2)
	}
	*parallel = n
}

// wrap1 lifts a single-result runner into the []printer shape.
func wrap1[T printer](f func() (T, error)) func() ([]printer, error) {
	return func() ([]printer, error) {
		r, err := f()
		if err != nil {
			return nil, err
		}
		return []printer{r}, nil
	}
}
