// Command monowhatif serves what-if performance questions over HTTP: POST a
// workload, a cluster, and a set of hypothetical changes to /whatif and get
// back predicted runtimes, a bottleneck ranking, and (optionally) telemetry
// from the simulated run.
//
// The server is engineered to stay up under abuse: requests are strictly
// validated and size-bounded, admission is weighted fair-share with bounded
// per-tenant queues (full queues shed with 429 + Retry-After), every request
// runs under a wall-clock budget that cancels the simulation cooperatively
// (504 on expiry), a panicking session returns a structured 500 without
// touching other requests, and repeated questions are answered byte-for-byte
// from a memo without consuming a simulation slot.
//
// Usage:
//
//	monowhatif [-addr :8080] [-max-concurrent 4] [-queue-depth 8]
//	           [-max-deadline 30s] [-memo-entries 256] [-chaos]
//
// Example:
//
//	curl -s localhost:8080/whatif -d '{
//	  "workload": {"kind": "sort", "total_mb": 512, "values_per_key": 10},
//	  "cluster":  {"machines": 4},
//	  "whatifs":  [{"kind": "scale_disk", "factor": 2},
//	               {"kind": "infinitely_fast", "resource": "network"}]
//	}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/whatifsvc"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxConcurrent := flag.Int("max-concurrent", 4, "simulation slots running at once")
	queueDepth := flag.Int("queue-depth", 8, "queued requests allowed per tenant before shedding")
	maxDeadline := flag.Duration("max-deadline", 30*time.Second, "ceiling on per-request wall budgets")
	memoEntries := flag.Int("memo-entries", 256, "memoized responses to retain")
	chaos := flag.Bool("chaos", false, "admit the deliberately panicking chaos workload (testing only)")
	flag.Parse()

	svc := whatifsvc.New(whatifsvc.Config{
		MaxConcurrent: *maxConcurrent,
		QueueDepth:    *queueDepth,
		MaxDeadline:   *maxDeadline,
		MemoEntries:   *memoEntries,
		Chaos:         *chaos,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * *maxDeadline,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "monowhatif: serving on %s (slots=%d queue=%d deadline<=%v)\n",
		*addr, *maxConcurrent, *queueDepth, *maxDeadline)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "monowhatif: %v\n", err)
			os.Exit(1)
		}
	case <-sig:
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "monowhatif: shutdown: %v\n", err)
			os.Exit(1)
		}
	}
}
