// Command monotop renders a telemetry snapshot stream — the JSONL produced
// by `monobench --telemetry`, a monospark TelemetryConfig streamer, or
// telemetry.WriteJSONL — as a top(1)-style per-machine / per-pool / per-job
// view. It is the paper's performance-clarity thesis at the terminal: what is
// the bottleneck, and which job holds it, at any moment of a run.
//
//	monotop run.jsonl              # replay: render every snapshot in order
//	monotop -last run.jsonl        # render only the stream's final snapshot
//	monotop -f run.jsonl           # tail: follow the file as it grows
//	monotop -http :8080 run.jsonl  # serve snapshots as JSON, pprof mounted
//
// The -http server exposes /snapshots (full stream), /latest, /render (text
// view of the newest snapshot), and net/http/pprof under /debug/pprof/ for
// profiling the harness itself.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"sync"
	"time"

	"repro/internal/telemetry"
)

var (
	follow   = flag.Bool("f", false, "follow the file as it grows (tail mode)")
	lastOnly = flag.Bool("last", false, "render only the final snapshot")
	httpAddr = flag.String("http", "", "serve snapshots over HTTP on this address instead of rendering")
	pollMS   = flag.Int("poll", 200, "tail-mode poll interval in milliseconds")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: monotop [-f] [-last] [-http addr] <snapshots.jsonl>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)
	if err := monotop(path, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "monotop: %v\n", err)
		os.Exit(1)
	}
}

func monotop(path string, out io.Writer) error {
	st := &store{}
	if *httpAddr != "" {
		// Load what exists now, keep tailing in the background, and serve.
		go tail(path, st, func(*telemetry.Snapshot) {})
		http.Handle("/snapshots", st.handleSnapshots())
		http.Handle("/latest", st.handleLatest())
		http.Handle("/render", st.handleRender())
		return http.ListenAndServe(*httpAddr, nil)
	}
	if *follow {
		return tail(path, st, func(s *telemetry.Snapshot) {
			fmt.Fprint(out, telemetry.Render(s))
			fmt.Fprintln(out)
		})
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	snaps, err := telemetry.ReadJSONL(f)
	if err != nil {
		return err
	}
	return replay(out, snaps, *lastOnly)
}

// replay renders snapshots in order (or only the last one).
func replay(w io.Writer, snaps []telemetry.Snapshot, lastOnly bool) error {
	if len(snaps) == 0 {
		return fmt.Errorf("no snapshots in stream")
	}
	if lastOnly {
		snaps = snaps[len(snaps)-1:]
	}
	for i := range snaps {
		if _, err := fmt.Fprint(w, telemetry.Render(&snaps[i])); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// tail follows path, parsing complete lines as they are appended and feeding
// each parsed snapshot to st and onSnap. It never returns except on error:
// like tail -f, the watcher outlives the writer.
func tail(path string, st *store, onSnap func(*telemetry.Snapshot)) error {
	var f *os.File
	for {
		var err error
		f, err = os.Open(path)
		if err == nil {
			break
		}
		time.Sleep(time.Duration(*pollMS) * time.Millisecond)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var partial []byte
	for {
		line, err := r.ReadBytes('\n')
		if len(line) > 0 && err == nil {
			line = append(partial, line...)
			partial = nil
			if s, perr := parseLine(line); perr == nil {
				st.add(s)
				onSnap(s)
			}
			continue
		}
		// Incomplete line (no newline yet) or EOF: stash and wait for more.
		partial = append(partial, line...)
		if err != nil && err != io.EOF {
			return err
		}
		time.Sleep(time.Duration(*pollMS) * time.Millisecond)
	}
}

// parseLine decodes one JSONL line, tolerating blanks.
func parseLine(line []byte) (*telemetry.Snapshot, error) {
	trimmed := line
	for len(trimmed) > 0 && (trimmed[len(trimmed)-1] == '\n' || trimmed[len(trimmed)-1] == '\r') {
		trimmed = trimmed[:len(trimmed)-1]
	}
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("blank line")
	}
	var s telemetry.Snapshot
	if err := json.Unmarshal(trimmed, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// store is the -http server's snapshot buffer: tail writes, handlers read.
type store struct {
	mu    sync.Mutex
	snaps []telemetry.Snapshot
}

func (st *store) add(s *telemetry.Snapshot) {
	st.mu.Lock()
	st.snaps = append(st.snaps, *s)
	st.mu.Unlock()
}

func (st *store) all() []telemetry.Snapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]telemetry.Snapshot(nil), st.snaps...)
}

func (st *store) latest() (telemetry.Snapshot, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.snaps) == 0 {
		return telemetry.Snapshot{}, false
	}
	return st.snaps[len(st.snaps)-1], true
}

func (st *store) handleSnapshots() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(st.all()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

func (st *store) handleLatest() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s, ok := st.latest()
		if !ok {
			http.Error(w, "no snapshots yet", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(s); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

func (st *store) handleRender() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s, ok := st.latest()
		if !ok {
			http.Error(w, "no snapshots yet", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, telemetry.Render(&s))
	})
}
