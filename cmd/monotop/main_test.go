package main

import (
	"bytes"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/run"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/workloads"
)

var update = flag.Bool("update", false, "regenerate testdata/fixture.jsonl")

const fixturePath = "testdata/fixture.jsonl"

// fixtureStream produces the committed fixture's snapshot stream: a small
// deterministic monotasks sort with a 2-second sampling interval.
func fixtureStream(t *testing.T) []byte {
	t.Helper()
	c := cluster.MustNew(2, cluster.M2_4XLarge())
	env := workloads.MustEnv(c)
	job, err := workloads.Sort{TotalBytes: 1 * units.GB, ValuesPerKey: 10}.Build(env)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	st := telemetry.NewStreamer(&buf)
	if _, err := run.Jobs(c, env.FS, run.Options{
		Mode:      run.Monotasks,
		Telemetry: &telemetry.Config{Interval: 2, OnSnapshot: st.Observe},
	}, job); err != nil {
		t.Fatal(err)
	}
	if st.Err() != nil {
		t.Fatal(st.Err())
	}
	return buf.Bytes()
}

func TestFixtureUpToDate(t *testing.T) {
	stream := fixtureStream(t)
	if *update {
		if err := os.MkdirAll(filepath.Dir(fixturePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(fixturePath, stream, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	committed, err := os.ReadFile(fixturePath)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/monotop -update` to generate)", err)
	}
	if !bytes.Equal(committed, stream) {
		t.Fatalf("committed fixture differs from a fresh deterministic run (%d vs %d bytes); regenerate with -update if the telemetry format changed intentionally", len(committed), len(stream))
	}
}

func TestReplayFixture(t *testing.T) {
	f, err := os.Open(fixturePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snaps, err := telemetry.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 2 {
		t.Fatalf("fixture holds %d snapshots, want several", len(snaps))
	}
	var buf bytes.Buffer
	if err := replay(&buf, snaps, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"monotop", "MACHINE", "JOB", "bottleneck:", "[final]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("replay output missing %q", want)
		}
	}
	// -last renders exactly one frame: the final snapshot.
	buf.Reset()
	if err := replay(&buf, snaps, true); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "monotop"); n != 1 {
		t.Fatalf("-last rendered %d frames, want 1", n)
	}
	if !strings.Contains(buf.String(), "[final]") {
		t.Fatal("-last did not render the final snapshot")
	}
	if err := replay(&buf, nil, false); err == nil {
		t.Fatal("empty stream replayed without error")
	}
}

func TestParseLine(t *testing.T) {
	s, err := parseLine([]byte("{\"seq\":3,\"t0\":1,\"t1\":2}\r\n"))
	if err != nil || s.Seq != 3 {
		t.Fatalf("parseLine: %+v, %v", s, err)
	}
	if _, err := parseLine([]byte("\n")); err == nil {
		t.Fatal("blank line parsed")
	}
	if _, err := parseLine([]byte("garbage\n")); err == nil {
		t.Fatal("garbage parsed")
	}
}

func TestHTTPHandlers(t *testing.T) {
	st := &store{}
	// Empty store: /latest and /render are 404, /snapshots an empty array.
	rr := httptest.NewRecorder()
	st.handleLatest().ServeHTTP(rr, httptest.NewRequest("GET", "/latest", nil))
	if rr.Code != 404 {
		t.Fatalf("/latest on empty store = %d, want 404", rr.Code)
	}
	rr = httptest.NewRecorder()
	st.handleRender().ServeHTTP(rr, httptest.NewRequest("GET", "/render", nil))
	if rr.Code != 404 {
		t.Fatalf("/render on empty store = %d, want 404", rr.Code)
	}

	f, err := os.Open(fixturePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snaps, err := telemetry.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := range snaps {
		st.add(&snaps[i])
	}

	rr = httptest.NewRecorder()
	st.handleSnapshots().ServeHTTP(rr, httptest.NewRequest("GET", "/snapshots", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "\"seq\":1") {
		t.Fatalf("/snapshots = %d: %.80s", rr.Code, rr.Body.String())
	}
	rr = httptest.NewRecorder()
	st.handleLatest().ServeHTTP(rr, httptest.NewRequest("GET", "/latest", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "\"final\":true") {
		t.Fatalf("/latest = %d: %.80s", rr.Code, rr.Body.String())
	}
	rr = httptest.NewRecorder()
	st.handleRender().ServeHTTP(rr, httptest.NewRequest("GET", "/render", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "monotop") {
		t.Fatalf("/render = %d: %.80s", rr.Code, rr.Body.String())
	}
}
