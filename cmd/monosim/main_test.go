package main

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/workloads"
)

func testEnv(t *testing.T) *workloads.Env {
	t.Helper()
	return workloads.MustEnv(cluster.MustNew(4, cluster.M2_4XLarge()))
}

func TestBuildWorkloadVariants(t *testing.T) {
	cases := []config{
		{workload: "sort", gb: 10, values: 10},
		{workload: "bdb:1a"},
		{workload: "ml"},
		{workload: "wordcount", gb: 2},
		{workload: "readcompute", gb: 10},
		{workload: "readcompute", gb: 10, tasks: 64},
	}
	for _, c := range cases {
		env := testEnv(t)
		job, err := buildWorkload(c, env)
		if err != nil {
			t.Fatalf("%s: %v", c.workload, err)
		}
		if err := job.Validate(); err != nil {
			t.Fatalf("%s: invalid job: %v", c.workload, err)
		}
	}
}

func TestBuildWorkloadErrors(t *testing.T) {
	env := testEnv(t)
	if _, err := buildWorkload(config{workload: "nope"}, env); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := buildWorkload(config{workload: "bdb:zz"}, env); err == nil {
		t.Fatal("unknown query accepted")
	}
}

func TestRunSimEndToEnd(t *testing.T) {
	// Exercise the full CLI path for each mode (stdout goes to the test log).
	for _, mode := range []string{"monotasks", "spark", "spark-flush"} {
		err := runSim(config{
			workload: "sort", gb: 5, values: 10,
			machines: 2, cores: 4, hdds: 1, netGbps: 1,
			mode: mode, whatif: mode == "monotasks",
		})
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
	}
	if err := runSim(config{workload: "sort", gb: 1, machines: 1, cores: 2, hdds: 1, netGbps: 1, mode: "bogus"}); err == nil {
		t.Fatal("bogus mode accepted")
	}
	if err := runSim(config{workload: "sort", gb: 1, machines: 2, cores: 2, hdds: 1, netGbps: 1, mode: "spark", traceOut: "/tmp/x.trace"}); err == nil {
		t.Fatal("trace in spark mode accepted")
	}
}
