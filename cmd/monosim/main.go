// Command monosim runs one analytics workload on a configurable virtual
// cluster and reports what the monotasks architecture makes visible: stage
// times, per-resource ideal times and bottlenecks, what-if predictions, and
// (optionally) a Chrome trace of every monotask.
//
//	monosim -workload sort -gb 100 -values 10 -machines 10 -disks 2
//	monosim -workload bdb:2c -machines 5 -mode spark
//	monosim -workload ml -machines 15 -ssds 2 -trace run.trace
//	monosim -workload sort -gb 60 -straggler 0.5
//
// Modes: monotasks (default), spark, spark-flush. Only monotasks runs
// produce the model report and traces — which is the paper's point.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/resource"
	"repro/internal/run"
	"repro/internal/task"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workloads"
)

func main() {
	var (
		workload  = flag.String("workload", "sort", "sort | bdb:<query> | ml | wordcount | readcompute")
		gb        = flag.Float64("gb", 60, "input size in GB (sort, wordcount, readcompute)")
		values    = flag.Int("values", 10, "longs per value (sort)")
		tasks     = flag.Int("tasks", 0, "task count override (sort maps, readcompute)")
		machines  = flag.Int("machines", 5, "worker machines")
		cores     = flag.Int("cores", 8, "cores per machine")
		hdds      = flag.Int("disks", 2, "HDDs per machine")
		ssds      = flag.Int("ssds", 0, "SSDs per machine (replaces HDDs when > 0)")
		netGbps   = flag.Float64("net", 1, "link bandwidth in Gb/s")
		mode      = flag.String("mode", "monotasks", "monotasks | spark | spark-flush")
		slots     = flag.Int("tasks-per-machine", 0, "Spark slot override")
		straggler = flag.Float64("straggler", 0, "degrade machine 0 to this speed factor (0 = off)")
		traceOut  = flag.String("trace", "", "write a Chrome trace of the run to this file (monotasks only)")
		whatif    = flag.Bool("whatif", true, "print what-if predictions (monotasks only)")
	)
	flag.Parse()

	if err := runSim(config{
		workload: *workload, gb: *gb, values: *values, tasks: *tasks,
		machines: *machines, cores: *cores, hdds: *hdds, ssds: *ssds,
		netGbps: *netGbps, mode: *mode, slots: *slots,
		straggler: *straggler, traceOut: *traceOut, whatif: *whatif,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "monosim: %v\n", err)
		os.Exit(1)
	}
}

type config struct {
	workload  string
	gb        float64
	values    int
	tasks     int
	machines  int
	cores     int
	hdds      int
	ssds      int
	netGbps   float64
	mode      string
	slots     int
	straggler float64
	traceOut  string
	whatif    bool
}

func runSim(cfg config) error {
	spec := cluster.MachineSpec{
		Cores:    cfg.cores,
		NetBW:    units.Gbps(cfg.netGbps),
		MemBytes: 60 * units.GB,
	}
	if cfg.ssds > 0 {
		for i := 0; i < cfg.ssds; i++ {
			spec.Disks = append(spec.Disks, resource.DefaultSSD())
		}
	} else {
		for i := 0; i < cfg.hdds; i++ {
			spec.Disks = append(spec.Disks, resource.DefaultHDD())
		}
	}
	specs := make([]cluster.MachineSpec, cfg.machines)
	for i := range specs {
		specs[i] = spec
	}
	if cfg.straggler > 0 {
		specs[0] = specs[0].Degraded(cfg.straggler)
	}
	c, err := cluster.NewHetero(specs)
	if err != nil {
		return err
	}
	env, err := workloads.NewEnv(c)
	if err != nil {
		return err
	}
	job, err := buildWorkload(cfg, env)
	if err != nil {
		return err
	}

	var opts run.Options
	switch cfg.mode {
	case "monotasks":
		opts.Mode = run.Monotasks
	case "spark":
		opts.Mode = run.Spark
	case "spark-flush":
		opts.Mode = run.SparkWriteThrough
	default:
		return fmt.Errorf("unknown mode %q", cfg.mode)
	}
	opts.TasksPerMachine = cfg.slots

	execs := run.Executors(c, opts)
	d, err := run.DriverWith(c, env.FS, execs)
	if err != nil {
		return err
	}
	if _, err := d.Submit(job); err != nil {
		return err
	}
	ms := d.Run()
	jm := ms[0]
	fmt.Printf("workload %s on %d × (%d cores, %d disks, %.1f Gb/s), mode %s\n",
		job.Name, cfg.machines, cfg.cores, len(spec.Disks), cfg.netGbps, cfg.mode)
	fmt.Printf("job time: %s\n\n", units.FormatSeconds(float64(jm.Duration())))

	res := model.ClusterResources(c)
	memModeled := res.MemBW > 0
	if memModeled {
		fmt.Printf("%-22s %10s %8s %8s %8s %8s %10s\n", "stage", "actual(s)", "cpu*", "disk*", "net*", "mem*", "bottleneck")
	} else {
		fmt.Printf("%-22s %10s %8s %8s %8s %10s\n", "stage", "actual(s)", "cpu*", "disk*", "net*", "bottleneck")
	}
	profile := model.FromMetrics(jm, res)
	monotasksRun := opts.Mode == run.Monotasks
	for i, st := range jm.Stages {
		switch {
		case monotasksRun && memModeled:
			sp := profile.Stages[i]
			cpu, disk, net, mem := sp.IdealTimes(res)
			fmt.Printf("%-22s %10.1f %8.1f %8.1f %8.1f %8.1f %10v\n",
				st.Spec.Name, float64(st.Duration()), cpu, disk, net, mem, sp.Bottleneck(res))
		case monotasksRun:
			sp := profile.Stages[i]
			cpu, disk, net, _ := sp.IdealTimes(res)
			fmt.Printf("%-22s %10.1f %8.1f %8.1f %8.1f %10v\n",
				st.Spec.Name, float64(st.Duration()), cpu, disk, net, sp.Bottleneck(res))
		default:
			fmt.Printf("%-22s %10.1f %8s %8s %8s %10s\n",
				st.Spec.Name, float64(st.Duration()), "-", "-", "-", "(opaque)")
		}
		su := metrics.StageUtil(c, st.Start, st.End, 10)
		fmt.Printf("%-22s %10s  util: %s %.0f%% (p50), %s %.0f%%\n", "", "",
			su.Bottleneck, su.BottleneckBox.P50*100, su.Second, su.SecondBox.P50*100)
	}
	fmt.Println("(* ideal per-resource completion times, §6.1 — monotasks runs only)")

	if monotasksRun {
		// §3.1: contention is visible as per-resource queue lengths.
		fmt.Println("\nqueue lengths on machine 0 over the job (p50/p95):")
		if w, ok := execs[0].(*core.Worker); ok {
			names := []string{"cpu", "disk0", "network"}
			tls := w.QueueTimelines()
			for _, name := range names {
				tl, ok := tls[name]
				if !ok {
					continue
				}
				samples := tl.Samples(0, jm.End, 50)
				fmt.Printf("  %-8s p50=%.1f p95=%.1f\n", name,
					metrics.Percentile(samples, 50), metrics.Percentile(samples, 95))
			}
		}
	}

	if monotasksRun && cfg.whatif {
		fmt.Println("\nwhat-if predictions:")
		for _, q := range []struct {
			label string
			w     []model.WhatIf
		}{
			{"2x disk bandwidth", []model.WhatIf{model.ScaleDiskBW(2)}},
			{"10x network", []model.WhatIf{model.ScaleNetBW(10)}},
			{"2x machines", []model.WhatIf{model.ScaleCluster(2)}},
			{"input in memory", []model.WhatIf{model.InMemoryInput{}}},
			{"infinitely fast disk", []model.WhatIf{model.InfinitelyFast(task.DiskResource)}},
		} {
			pred := model.Predict(profile, q.w...)
			fmt.Printf("  %-22s %8.1fs -> %8.1fs (%.2fx)\n",
				q.label, pred.ActualSeconds, pred.PredictedSeconds,
				pred.ActualSeconds/pred.PredictedSeconds)
		}
	}

	if cfg.traceOut != "" {
		if !monotasksRun {
			return fmt.Errorf("traces require monotasks mode")
		}
		f, err := os.Create(cfg.traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteChromeTrace(f, jm); err != nil {
			return err
		}
		fmt.Printf("\nwrote Chrome trace to %s (open in chrome://tracing)\n", cfg.traceOut)
	}
	return nil
}

func buildWorkload(cfg config, env *workloads.Env) (*task.JobSpec, error) {
	bytes := int64(cfg.gb * 1e9)
	switch {
	case cfg.workload == "sort":
		return workloads.Sort{TotalBytes: bytes, ValuesPerKey: cfg.values,
			MapTasks: cfg.tasks, ReduceTasks: cfg.tasks}.Build(env)
	case strings.HasPrefix(cfg.workload, "bdb:"):
		return workloads.BDBQuery(strings.TrimPrefix(cfg.workload, "bdb:"), env)
	case cfg.workload == "ml":
		return workloads.LeastSquares{}.Build(env)
	case cfg.workload == "wordcount":
		return workloads.WordCount{TotalBytes: bytes}.Build(env)
	case cfg.workload == "readcompute":
		tasks := cfg.tasks
		if tasks <= 0 {
			tasks = 4 * env.Cluster.TotalCores()
		}
		return workloads.ReadCompute{TotalBytes: bytes, NumTasks: tasks}.Build(env)
	default:
		return nil, fmt.Errorf("unknown workload %q", cfg.workload)
	}
}
