package perf

// Product-run sharding measurements: unlike shardbench.go's synthetic lane
// workloads, these time a real simulation (the golden sort) end to end on
// the serial engine and on the sharded engine, and carry the engine's
// lane-occupancy counters so the BENCH report shows how much of the run
// actually executed on lanes. The run function is injected by the caller
// (cmd/monoperf wires internal/figures) because this package sits below
// figures in the import graph, same as CompareSweep.

import (
	"bytes"
	"runtime"
	"time"
)

// ProductRun is one product-simulation execution as observed by
// CompareShardedProduct: the rendered full-precision output (the byte-
// identity probe) plus the engine's occupancy counters after the run.
type ProductRun struct {
	// Output is a deterministic render of the run's results; serial and
	// sharded legs must produce identical bytes.
	Output []byte
	// LaneEvents and GlobalEvents are the engine's occupancy counters
	// (sim.Engine.OccupancyStats); both zero on the serial leg.
	LaneEvents   uint64
	GlobalEvents uint64
	// Occupancy is LaneEvents / (LaneEvents + GlobalEvents).
	Occupancy float64
}

// ProductCompare is one serial-vs-sharded comparison of a real product run:
// wall-clock times, output identity, and the sharded leg's lane occupancy.
type ProductCompare struct {
	Workload  string  `json:"workload"`
	Shards    int     `json:"shards"`
	SerialMs  float64 `json:"serial_ms"`
	ShardedMs float64 `json:"sharded_ms"`
	Speedup   float64 `json:"speedup"`
	// LaneOccupancy is the fraction of the sharded leg's events drained on
	// lanes — the ISSUE 9 migration meter. The ≥0.5 product floor is gated
	// by TestGoldenSortLaneOccupancy; the report just records the number.
	LaneOccupancy float64 `json:"lane_occupancy"`
	LaneEvents    uint64  `json:"lane_events"`
	GlobalEvents  uint64  `json:"global_events"`
	Identical     bool    `json:"identical"`
	// NumCPU and Flagged follow the SweepCompare convention: on a one-core
	// host shards time-slice a single CPU, so speedup ≤ 1 is physics and is
	// never flagged.
	NumCPU  int  `json:"num_cpu,omitempty"`
	Flagged bool `json:"flagged,omitempty"`
}

// CompareShardedProduct times runAt(0) (serial engine) against
// runAt(shards) and reports wall clock, byte identity, and the sharded
// leg's lane occupancy. runAt must execute the same deterministic product
// simulation at the given shard count.
func CompareShardedProduct(workload string, shards int, runAt func(shards int) (ProductRun, error)) (ProductCompare, error) {
	start := time.Now()
	serial, err := runAt(0)
	if err != nil {
		return ProductCompare{}, err
	}
	serialDur := time.Since(start)
	start = time.Now()
	sharded, err := runAt(shards)
	if err != nil {
		return ProductCompare{}, err
	}
	shardedDur := time.Since(start)
	speedup := float64(serialDur) / float64(shardedDur)
	return ProductCompare{
		Workload:      workload,
		Shards:        shards,
		SerialMs:      float64(serialDur.Microseconds()) / 1e3,
		ShardedMs:     float64(shardedDur.Microseconds()) / 1e3,
		Speedup:       speedup,
		LaneOccupancy: sharded.Occupancy,
		LaneEvents:    sharded.LaneEvents,
		GlobalEvents:  sharded.GlobalEvents,
		Identical:     bytes.Equal(serial.Output, sharded.Output),
		NumCPU:        runtime.NumCPU(),
		Flagged:       flagSpeedup(speedup, runtime.NumCPU()),
	}, nil
}
