package main

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// parse wraps checkFile over one in-memory source file.
func parse(t *testing.T, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return checkFile(fset, f)
}

func TestCheckFileFlagsUndocumented(t *testing.T) {
	problems := parse(t, `package p

func Exported() {}

type T struct {
	Documented int // has a trailing comment
	Naked      int
}

var V = 1

const (
	A = 1
	B = 2
)
`)
	want := []string{"function Exported", "type T", "field T.Naked", "var V", "const A", "const B"}
	if len(problems) != len(want) {
		t.Fatalf("got %d problems %v, want %d", len(problems), problems, len(want))
	}
	for i, frag := range want {
		if !strings.Contains(problems[i], frag) {
			t.Errorf("problem %d = %q, want mention of %q", i, problems[i], frag)
		}
	}
}

func TestCheckFileAcceptsDocumented(t *testing.T) {
	problems := parse(t, `package p

// Exported does a thing.
func Exported() {}

// T is a type.
type T struct {
	// F is a field.
	F int
	G int // G rides a line comment
	h int
}

// M is a method.
func (T) M() {}

// Grouped constants share one doc comment.
const (
	A = 1
	B = 2
)

// I is an interface.
type I interface {
	// M does a thing.
	M()
}

func unexported() {}
`)
	if len(problems) != 0 {
		t.Fatalf("false positives: %v", problems)
	}
}

// TestAuditedPackagesAreClean is the audit itself, runnable without the CI
// wiring: the packages whose godoc the repo treats as API documentation must
// stay fully documented.
func TestAuditedPackagesAreClean(t *testing.T) {
	root := filepath.Join("..", "..")
	for _, dir := range []string{"internal/sim", "internal/netsim", "internal/sweep"} {
		full := filepath.Join(root, filepath.FromSlash(dir))
		if _, err := os.Stat(full); err != nil {
			t.Fatalf("audited package missing: %v", err)
		}
		problems, err := checkDir(full)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range problems {
			t.Errorf("%s", p)
		}
	}
}
