// Command doccheck is the godoc audit gate: it parses Go packages and fails
// when an exported identifier — type, function, method, or exported struct
// field — lacks a doc comment. CI runs it over the packages whose godoc the
// repo treats as API documentation (internal/sim, internal/netsim,
// internal/sweep); run it by hand over any package directory:
//
//	go run ./perf/doccheck internal/sim internal/netsim internal/sweep
//
// The checker is deliberately small (go/ast only, no type checking): it
// reads each non-test file, walks the declarations, and reports every
// undocumented exported name with its position. Grouped declarations
// (`var ( A = 1; B = 2 )`) pass when the group has a doc comment; an
// exported struct field passes with either its own doc comment or a trailing
// line comment.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package-dir>...")
		os.Exit(2)
	}
	var problems []string
	for _, dir := range os.Args[1:] {
		p, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		problems = append(problems, p...)
	}
	sort.Strings(problems)
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported identifiers\n", len(problems))
		os.Exit(1)
	}
}

// checkDir parses every non-test .go file in dir and returns one problem
// line per undocumented exported identifier.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, pkg := range pkgs {
		// Deterministic file order: map iteration would shuffle the report.
		files := make([]string, 0, len(pkg.Files))
		for name := range pkg.Files {
			files = append(files, name)
		}
		sort.Strings(files)
		for _, name := range files {
			problems = append(problems, checkFile(fset, pkg.Files[name])...)
		}
	}
	return problems, nil
}

// checkFile walks one file's top-level declarations.
func checkFile(fset *token.FileSet, f *ast.File) []string {
	var problems []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: undocumented exported %s %s",
			filepath.ToSlash(p.Filename), p.Line, kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			groupDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && !groupDoc && s.Doc == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
					if s.Name.IsExported() {
						problems = append(problems, checkFields(fset, s)...)
					}
				case *ast.ValueSpec:
					if groupDoc || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(n.Pos(), strings.ToLower(d.Tok.String()), n.Name)
						}
					}
				}
			}
		}
	}
	return problems
}

// checkFields reports undocumented exported fields of an exported struct
// type (interface methods ride the same shape: a field list of methods).
func checkFields(fset *token.FileSet, s *ast.TypeSpec) []string {
	var fields *ast.FieldList
	switch t := s.Type.(type) {
	case *ast.StructType:
		fields = t.Fields
	case *ast.InterfaceType:
		fields = t.Methods
	default:
		return nil
	}
	var problems []string
	for _, f := range fields.List {
		if f.Doc != nil || f.Comment != nil {
			continue
		}
		for _, n := range f.Names {
			if n.IsExported() {
				p := fset.Position(n.Pos())
				problems = append(problems, fmt.Sprintf("%s:%d: undocumented exported field %s.%s",
					filepath.ToSlash(p.Filename), p.Line, s.Name.Name, n.Name))
			}
		}
	}
	return problems
}
