package perf

import "testing"

// TestFlagSpeedup pins the single-core caveat: a sub-1 parallel speedup is
// only suspicious on a host that could have parallelized. BENCH_4.json was
// produced on a one-core machine, where the parallel leg losing to serial is
// the expected outcome — flagging it there turned every baseline refresh
// into a false alarm.
func TestFlagSpeedup(t *testing.T) {
	cases := []struct {
		speedup float64
		numCPU  int
		want    bool
	}{
		{0.8, 1, false},  // single core: slowdown is physics, not a bug
		{0.99, 1, false}, // still single core
		{1.3, 1, false},  // faster anyway: never flagged
		{0.8, 2, true},   // multi-core slowdown: suspicious
		{0.99, 8, true},  // multi-core, even marginal: suspicious
		{1.0, 8, false},  // break-even: not flagged
		{3.5, 8, false},  // genuine win
	}
	for _, c := range cases {
		if got := flagSpeedup(c.speedup, c.numCPU); got != c.want {
			t.Errorf("flagSpeedup(%v, %d) = %v, want %v", c.speedup, c.numCPU, got, c.want)
		}
	}
}
