package perf

// Driver hot-path benchmarks: the steady-state cost of pushing repeated
// identical jobs through one long-lived driver (the execution-template
// cache's target workload) and the pure control-plane cost of a submission.
// Both live here, below internal/figures in the import graph, so cmd/monoperf
// and the root bench_test.go share one implementation.

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/jobsched"
	"repro/internal/run"
	"repro/internal/task"
	"repro/internal/units"
	"repro/internal/workloads"
)

// steadySpec builds the small sort every iteration replays.
func steadySpec(tb testing.TB, c *cluster.Cluster) (*workloads.Env, *task.JobSpec) {
	env, err := workloads.NewEnv(c)
	if err != nil {
		tb.Fatal(err)
	}
	s := workloads.Sort{Name: "steady", TotalBytes: 1 * units.GB, MapTasks: 8, ReduceTasks: 4}
	spec, err := s.Build(env)
	if err != nil {
		tb.Fatal(err)
	}
	return env, spec
}

// BenchMultiJobSteadyState measures one long-lived monotasks driver absorbing
// repeated identical job submissions through its default fair-share pool:
// submit, run to completion, repeat. After the first iteration the driver's
// execution-template cache serves every instantiation, so this is the
// steady-state multi-tenant hot path.
func BenchMultiJobSteadyState(b *testing.B) {
	c, err := cluster.New(2, cluster.M2_4XLarge())
	if err != nil {
		b.Fatal(err)
	}
	env, spec := steadySpec(b, c)
	d, err := run.Driver(c, env.FS, run.Options{Mode: run.Monotasks})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := d.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		c.Engine.Run()
		if !h.Done() {
			b.Fatalf("iteration %d: job did not complete: %v", i, h.Err())
		}
	}
}

// idleExec is an executor that never runs anything: zero capacity, so
// submissions exercise only the driver's control plane (validation, template
// lookup, stage-state instantiation, pool admission) and no task ever
// launches.
type idleExec struct{ id int }

func (e idleExec) MachineID() int          { return e.id }
func (e idleExec) MaxConcurrentTasks() int { return 0 }
func (e idleExec) Launch(t *task.Task, done func(*task.TaskMetrics)) {
	panic("perf: idleExec launched a task")
}

// submitDriver builds the zero-capacity driver BenchDriverSubmit and its
// delegated twin share: submissions exercise only the control plane.
func submitDriver(tb testing.TB, cfg jobsched.Config) (*jobsched.Driver, *task.JobSpec) {
	c, err := cluster.New(2, cluster.M2_4XLarge())
	if err != nil {
		tb.Fatal(err)
	}
	env, spec := steadySpec(tb, c)
	execs := make([]task.Executor, c.Size())
	for i := range execs {
		execs[i] = idleExec{id: i}
	}
	d, err := jobsched.NewWithConfig(c, env.FS, execs, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return d, spec
}

// BenchDriverSubmit measures the allocation cost of SubmitWith alone:
// identical jobs into a zero-capacity cluster, so each op is exactly one
// control-plane instantiation (template-cache hit after the first).
func BenchDriverSubmit(b *testing.B) {
	d, spec := submitDriver(b, jobsched.Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Submit(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchDriverSubmitDelegated is BenchDriverSubmit with worker-side dispatch
// on: each admission also issues the workers' partition-range grants, so this
// pins that delegation keeps the submission hot path allocation-free beyond
// the centralized cost.
func BenchDriverSubmitDelegated(b *testing.B) {
	d, spec := submitDriver(b, jobsched.Config{WorkerDispatch: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Submit(spec); err != nil {
			b.Fatal(err)
		}
	}
}
