package perf

// This file is the repo's benchmark-trajectory harness: it reruns the
// hot-path microbenchmarks (sim event loop, netsim rerate) and times a
// serial-vs-parallel experiment sweep, emitting the numbers as a
// BENCH_*.json report. Experiment-level pieces (the end-to-end sort, the
// chaos matrix) are injected by the caller — cmd/monoperf wires them up —
// because this package sits below internal/figures in the import graph
// (monospark's tests import perf, and figures imports monospark).

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// BenchResult is one microbenchmark's measurement.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// SweepCompare is the serial-vs-parallel experiment comparison: the same
// multi-cell grid run at --parallel 1 and --parallel N, with the rendered
// output hashed to prove the results are byte-identical.
type SweepCompare struct {
	Experiment   string  `json:"experiment"`
	Cells        int     `json:"cells"`
	Workers      int     `json:"workers"`
	SerialMs     float64 `json:"serial_ms"`
	ParallelMs   float64 `json:"parallel_ms"`
	Speedup      float64 `json:"speedup"`
	SerialHash   string  `json:"serial_hash"`
	ParallelHash string  `json:"parallel_hash"`
	Identical    bool    `json:"identical"`
	// NumCPU is the core count the comparison ran on — the context a reader
	// needs to judge the speedup (BENCH_4.json was produced on a one-core
	// host, where no parallel speedup is possible).
	NumCPU int `json:"num_cpu,omitempty"`
	// Flagged marks a comparison whose parallel leg was no faster than the
	// serial leg (speedup < 1) on a machine that has cores to parallelize
	// over. On a single-core host goroutines just time-slice one CPU and pay
	// the coordination overhead, so speedup < 1 is the expected outcome, not
	// a regression, and is never flagged. Anywhere else consumers must treat
	// a flagged speedup as a caveat, never a win.
	Flagged bool `json:"flagged,omitempty"`
}

// flagSpeedup decides whether a serial-vs-parallel speedup is suspicious:
// only sub-1 speedups on multi-core hosts are. A single-core host cannot
// run sweep cells concurrently, so its parallel leg losing to serial is
// physics, not a bug.
func flagSpeedup(speedup float64, numCPU int) bool {
	return speedup < 1 && numCPU > 1
}

// Report is the full BENCH_*.json payload.
type Report struct {
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	NumCPU     int           `json:"num_cpu"`
	Benchmarks []BenchResult `json:"benchmarks"`
	Sweep      SweepCompare  `json:"sweep"`
	// Sharded is the intra-run sharded-engine comparison table (BENCH_6+):
	// serial vs sharded wall-clock per workload shape and shard count.
	Sharded []ShardCompare `json:"sharded,omitempty"`
	// Product is the real-run sharding table (BENCH_7+): the golden sort
	// end to end on the serial vs sharded engine, with lane occupancy.
	Product []ProductCompare `json:"product,omitempty"`
	// Control is the dispatch-mode table (BENCH_8+): centralized driver
	// dispatch vs worker-side delegation, with checksums and driver-message
	// counts.
	Control []ControlCompare `json:"control,omitempty"`
}

// NewReport stamps the environment fields.
func NewReport() *Report {
	return &Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
}

// Bench runs one benchmark function via testing.Benchmark and records it.
func Bench(name string, fn func(*testing.B)) BenchResult {
	r := testing.Benchmark(fn)
	return BenchResult{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// BenchEngineChurn is the steady-state sim event loop: a warm engine where
// every firing cancels one event and schedules two, so the pooled free list
// is exercised rather than the initial heap growth. This mirrors
// BenchmarkEngineChurn in internal/sim.
func BenchEngineChurn(b *testing.B) {
	e := sim.NewEngine()
	const width = 64
	refs := make([]sim.EventRef, width)
	fns := make([]func(), width)
	for i := range fns {
		slot := i
		fns[slot] = func() {
			next := (slot + 1) % width
			e.Cancel(refs[next])
			refs[next] = e.After(sim.Duration(width), fns[next])
			refs[slot] = e.After(sim.Duration(slot%7)+1, fns[slot])
		}
	}
	for i := range fns {
		refs[i] = e.After(sim.Duration(i+1), fns[i])
	}
	for i := 0; i < 10*width; i++ {
		e.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchFabricAllToAll is netsim's worst case: an 8-machine all-to-all
// shuffle where every rerate's connected component spans every flow. Mirrors
// BenchmarkFabricAllToAllShuffle in internal/netsim.
func BenchFabricAllToAll(b *testing.B) {
	const n = 8
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		f := netsim.NewFabric(eng, n, 1e9)
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if src != dst {
					f.Transfer(src, dst, 64<<20, func() {})
				}
			}
		}
		eng.Run()
	}
}

// timedRender runs the experiment at the given sweep worker count and
// returns its rendered output plus the wall-clock time.
func timedRender(render func() ([]byte, error), workers int) ([]byte, time.Duration, error) {
	old := sweep.Parallelism()
	sweep.SetParallelism(workers)
	defer sweep.SetParallelism(old)
	start := time.Now()
	out, err := render()
	return out, time.Since(start), err
}

// CompareSweep runs the same experiment grid serially and with `workers`
// goroutines, and reports wall-clock times plus output hashes. render must
// execute the experiment under the process-wide sweep parallelism and return
// its rendered output. Identical hashes are the determinism proof: the sweep
// pool may execute cells in any order, but the assembled experiment output
// must not change.
func CompareSweep(experiment string, cells, workers int, render func() ([]byte, error)) (SweepCompare, error) {
	serial, serialDur, err := timedRender(render, 1)
	if err != nil {
		return SweepCompare{}, err
	}
	par, parDur, err := timedRender(render, workers)
	if err != nil {
		return SweepCompare{}, err
	}
	sh, ph := sha256.Sum256(serial), sha256.Sum256(par)
	speedup := float64(serialDur) / float64(parDur)
	return SweepCompare{
		Experiment:   experiment,
		Cells:        cells,
		Workers:      workers,
		SerialMs:     float64(serialDur.Microseconds()) / 1e3,
		ParallelMs:   float64(parDur.Microseconds()) / 1e3,
		Speedup:      speedup,
		SerialHash:   hex.EncodeToString(sh[:]),
		ParallelHash: hex.EncodeToString(ph[:]),
		Identical:    bytes.Equal(serial, par),
		NumCPU:       runtime.NumCPU(),
		Flagged:      flagSpeedup(speedup, runtime.NumCPU()),
	}, nil
}

// Write stores the report as indented JSON at path.
func (r *Report) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadReport reads a previously written BENCH_*.json report.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := &Report{}
	if err := json.Unmarshal(data, r); err != nil {
		return nil, err
	}
	return r, nil
}

// Benchmark returns the named benchmark's result, if the report has one.
func (r *Report) Benchmark(name string) (BenchResult, bool) {
	for _, b := range r.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return BenchResult{}, false
}

// AllocGate compares the named benchmark's allocs/op against a baseline
// report and fails when it regressed by more than tolerance (0.10 = 10%).
// allocs/op is the gated quantity because it is machine-independent —
// allocation counts in a deterministic simulation do not vary with CPU
// speed the way ns/op does. Benchmarks absent from either report pass (a
// freshly added benchmark has no baseline yet).
func (r *Report) AllocGate(baseline *Report, name string, tolerance float64) error {
	cur, ok := r.Benchmark(name)
	if !ok {
		return nil
	}
	base, ok := baseline.Benchmark(name)
	if !ok || base.AllocsPerOp <= 0 {
		return nil
	}
	limit := float64(base.AllocsPerOp) * (1 + tolerance)
	if float64(cur.AllocsPerOp) > limit {
		return fmt.Errorf("perf: %s allocs/op regressed: %d vs baseline %d (tolerance %.0f%%)",
			name, cur.AllocsPerOp, base.AllocsPerOp, tolerance*100)
	}
	return nil
}
