// Package perf constructs the what-if questions a finished monospark job
// can answer (§6 of the Monotasks paper): hardware changes, software
// changes, and bottleneck bounds. Pass these to monospark.JobRun.Predict:
//
//	run.Predict(perf.ScaleDisks(2))                      // twice the disks?
//	run.Predict(perf.ClusterSize(4), perf.InMemoryInput()) // Fig. 13's move
//	run.Predict(perf.InfinitelyFast(perf.Disk))          // bound on disk optimizations
//
// Predictions come from the monotasks performance model: each stage's
// measured runtime is scaled by the ratio of its modeled completion time
// under the new configuration to the old one.
package perf

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/task"
)

// WhatIf is one hypothetical change. Values are created by this package's
// constructors and consumed by monospark.JobRun.Predict.
type WhatIf = model.WhatIf

// Resource names a schedulable resource for InfinitelyFast.
type Resource int

const (
	// CPU is the cluster's processor cores.
	CPU Resource = iota
	// Disk is the cluster's disk drives.
	Disk
	// Network is the cluster's NICs.
	Network
)

// String names the resource.
func (r Resource) String() string {
	switch r {
	case CPU:
		return "cpu"
	case Disk:
		return "disk"
	default:
		return "network"
	}
}

// ScaleDisks multiplies aggregate disk bandwidth: 2 means twice the drives
// (or drives twice as fast), 0.5 means half.
func ScaleDisks(factor float64) WhatIf {
	return model.ScaleDiskBW(factor)
}

// ClusterSize multiplies the machine count, scaling cores, disk bandwidth,
// and network bandwidth together.
func ClusterSize(factor float64) WhatIf {
	return model.ScaleCluster(factor)
}

// ScaleNetwork multiplies network bandwidth (1 Gb/s → 10 Gb/s is 10).
func ScaleNetwork(factor float64) WhatIf {
	return model.ScaleNetBW(factor)
}

// InMemoryInput stores job input deserialized in memory: input disk reads
// and input deserialization CPU disappear (§6.3).
func InMemoryInput() WhatIf {
	return model.InMemoryInput{}
}

// InfinitelyFast removes a resource from the model entirely, bounding the
// benefit of any optimization to it (§6.5's blocked-time-style analysis).
func InfinitelyFast(r Resource) WhatIf {
	switch r {
	case CPU:
		return model.InfinitelyFast(task.CPUResource)
	case Disk:
		return model.InfinitelyFast(task.DiskResource)
	case Network:
		return model.InfinitelyFast(task.NetworkResource)
	default:
		panic(fmt.Sprintf("perf: unknown resource %d", int(r)))
	}
}
