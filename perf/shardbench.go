package perf

// Sharded-engine measurements: the windowed scheduler's wall-clock scaling on
// lane-affine workloads, and its bookkeeping overhead relative to the plain
// serial engine. Three workload shapes mirror where the product spends events
// — compute-heavy with rare cross-machine traffic (sort), send-heavy under
// fault churn (chaos), and array-walking under memory pressure (memory) — so
// the speedup table in EXPERIMENTS.md measures shapes the simulator actually
// runs, not a synthetic best case.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/sim"
)

// ShardCompare is one serial-vs-sharded engine comparison: the same lane
// workload executed at 1 shard and at Shards shards, with per-lane checksums
// proving the event order did not change.
type ShardCompare struct {
	Workload  string  `json:"workload"`
	Lanes     int     `json:"lanes"`
	Shards    int     `json:"shards"`
	Events    int     `json:"events"`
	SerialMs  float64 `json:"serial_ms"`
	ShardedMs float64 `json:"sharded_ms"`
	Speedup   float64 `json:"speedup"`
	Identical bool    `json:"identical"`
	// NumCPU is the core count the comparison ran on; on a single-core host
	// shards time-slice one CPU and speedup ≤ 1 is physics, not a regression
	// (same convention as SweepCompare).
	NumCPU  int  `json:"num_cpu,omitempty"`
	Flagged bool `json:"flagged,omitempty"`
}

// laneShape parameterizes one workload shape for the lane benchmark.
type laneShape struct {
	// payloadRounds is the xorshift iterations per event — the simulated
	// device-model computation.
	payloadRounds int
	// sendEvery emits one cross-lane message every that many events (0 = never).
	sendEvery int
	// walkBytes, when positive, walks a per-lane buffer of that size on every
	// event — the memory-pressure shape.
	walkBytes int
}

// shardShapes maps workload names to event mixes.
var shardShapes = map[string]laneShape{
	// Sort: compute-dominated map/reduce monotasks, occasional shuffle.
	"sort": {payloadRounds: 96, sendEvery: 128},
	// Chaos: lighter per-event work, frequent cross-machine interactions
	// (fetch retries, fault probes).
	"chaos": {payloadRounds: 32, sendEvery: 16},
	// Memory: per-event buffer walks modelling bandwidth-bound tasks.
	"memory": {payloadRounds: 16, sendEvery: 128, walkBytes: 4 << 10},
}

// runLaneWorkload executes `events` events spread over `lanes` lanes at the
// given shard count and returns a per-lane checksum (order-sensitive within a
// lane) plus the wall-clock time of the Run call.
func runLaneWorkload(shape laneShape, lanes, shards, events int) ([]uint64, time.Duration) {
	const lookahead = sim.Duration(64)
	e := sim.NewEngine()
	e.ConfigureShards(lanes, shards, lookahead)
	// Padded per-lane slots: lanes accumulate concurrently and must not share
	// cache lines.
	sums := make([]uint64, lanes*8)
	walks := make([][]byte, lanes)
	perLane := events / lanes
	if perLane < 1 {
		perLane = 1
	}
	for l := 0; l < lanes; l++ {
		ln := e.Lane(l)
		slot := l * 8
		if shape.walkBytes > 0 {
			walks[l] = make([]byte, shape.walkBytes)
		}
		remaining := perLane
		var step func()
		step = func() {
			x := uint64(remaining) | 1
			for i := 0; i < shape.payloadRounds; i++ {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
			}
			if w := walks[ln.ID()]; w != nil {
				for i := 0; i < len(w); i += 64 {
					x += uint64(w[i])
					w[i] = byte(x)
				}
			}
			// Fold the lane clock in so the checksum is order-sensitive: a
			// reordered window would change the mix, not just the sum.
			sums[slot] = sums[slot]*1099511628211 ^ x ^ uint64(ln.Now())
			remaining--
			if remaining <= 0 {
				return
			}
			if shape.sendEvery > 0 && remaining%shape.sendEvery == 0 {
				ln.Send((ln.ID()+1)%lanes, lookahead, func() {})
			}
			ln.After(sim.Duration(1+x%3), step)
		}
		ln.After(sim.Duration(l+1), step)
	}
	start := time.Now()
	e.Run()
	dur := time.Since(start)
	out := make([]uint64, lanes)
	for l := range out {
		out[l] = sums[l*8]
	}
	return out, dur
}

// CompareShardedEngine runs the named workload shape on the sharded engine at
// 1 shard and at `shards` shards, and reports wall-clock times plus checksum
// identity. Identical checksums are the determinism proof at benchmark scale:
// the property suite and fuzz target in internal/sim pin the full traces.
func CompareShardedEngine(workload string, lanes, shards, events int) (ShardCompare, error) {
	shape, ok := shardShapes[workload]
	if !ok {
		return ShardCompare{}, fmt.Errorf("perf: unknown shard workload %q", workload)
	}
	serialSums, serialDur := runLaneWorkload(shape, lanes, 1, events)
	shardedSums, shardedDur := runLaneWorkload(shape, lanes, shards, events)
	identical := len(serialSums) == len(shardedSums)
	for i := range serialSums {
		if !identical || serialSums[i] != shardedSums[i] {
			identical = false
			break
		}
	}
	speedup := float64(serialDur) / float64(shardedDur)
	return ShardCompare{
		Workload:  workload,
		Lanes:     lanes,
		Shards:    shards,
		Events:    events,
		SerialMs:  float64(serialDur.Microseconds()) / 1e3,
		ShardedMs: float64(shardedDur.Microseconds()) / 1e3,
		Speedup:   speedup,
		Identical: identical,
		NumCPU:    runtime.NumCPU(),
		Flagged:   flagSpeedup(speedup, runtime.NumCPU()),
	}, nil
}

// BenchEngineSharded returns a benchmark running the sort-shaped lane
// workload at the given shard count — the BENCH_*.json trajectory entry that
// tracks the sharded scheduler's per-event overhead. Steady-state sharded
// execution allocates exactly one causal-key cell per event (the exact
// serial-order merge key; see sim.Lane.Global) — events and posts themselves
// are pooled.
func BenchEngineSharded(shards int) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		runLaneWorkload(shardShapes["sort"], 8, shards, 4096) // warm the shape
		b.ResetTimer()
		done := 0
		for done < b.N {
			n := b.N - done
			if n > 1<<20 {
				n = 1 << 20
			}
			runLaneWorkload(shardShapes["sort"], 8, shards, n)
			done += n
		}
	}
}
