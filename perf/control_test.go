package perf

import (
	"runtime"
	"runtime/debug"
	"testing"

	"repro/internal/jobsched"
)

// TestCompareControlSortIdentical runs the built-in control workload both
// ways and checks the row: bitwise-identical output, real message counts,
// and a delegated driver that handled strictly less traffic.
func TestCompareControlSortIdentical(t *testing.T) {
	cc, err := CompareControl("steady-sort", func(delegated bool) (ControlRun, error) {
		return ControlSortLeg(4, 4, delegated)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cc.Identical {
		t.Fatalf("delegated output diverged: %s vs %s", cc.DelegatedHash, cc.CentralizedHash)
	}
	if cc.SelfDispatched == 0 || cc.PeerMsgs == 0 {
		t.Fatalf("delegated leg shows no delegation: %+v", cc)
	}
	if cc.DelegatedDriverMsgs >= cc.CentralizedDriverMsgs {
		t.Fatalf("delegation did not shrink driver traffic: %d vs %d",
			cc.DelegatedDriverMsgs, cc.CentralizedDriverMsgs)
	}
}

// TestDelegatedSubmitSustains100kJobs is the submission-scale gate: one
// delegated driver absorbs 100k concurrent job submissions (none complete —
// zero-capacity executors — so all 100k are live at once) and the per-submit
// allocation cost stays at the centralized baseline (BENCH_7's DriverSubmit:
// 13 allocs/op; the bound leaves slack for mallocs the benchmark's amortized
// accounting rounds away).
func TestDelegatedSubmitSustains100kJobs(t *testing.T) {
	d, spec := submitDriver(t, jobsched.Config{WorkerDispatch: true})
	// Warm the template cache and the admission structures off the books.
	if _, err := d.Submit(spec); err != nil {
		t.Fatal(err)
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const jobs = 100_000
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < jobs; i++ {
		if _, err := d.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&after)
	per := float64(after.Mallocs-before.Mallocs) / jobs
	if per > 16 {
		t.Fatalf("delegated submit cost %.1f allocs/op with 100k concurrent jobs, want ≤16 (centralized baseline 13)", per)
	}
	if got := d.DispatchStats(); !got.Delegated {
		t.Fatal("driver is not delegating")
	}
}
