package perf

import (
	"testing"

	"repro/internal/model"
)

func TestConstructorsProduceWhatIfs(t *testing.T) {
	cases := []WhatIf{
		ScaleDisks(2),
		ClusterSize(4),
		ScaleNetwork(10),
		InMemoryInput(),
		InfinitelyFast(CPU),
		InfinitelyFast(Disk),
		InfinitelyFast(Network),
	}
	for _, w := range cases {
		if w == nil {
			t.Fatal("nil WhatIf")
		}
		if w.String() == "" {
			t.Fatalf("%T has empty description", w)
		}
	}
}

func TestWhatIfsComposeWithModel(t *testing.T) {
	p := &model.JobProfile{
		Name: "j",
		Res:  model.Resources{TotalCores: 10, DiskBW: 1e9, NetBW: 1e9},
		Stages: []model.StageProfile{
			{Name: "s", CPUSeconds: 100, DiskBytes: 20e9, ActualSeconds: 25},
		},
	}
	pred := model.Predict(p, ScaleDisks(2))
	// Disk-bound 20 s → 10 s = CPU time; runtime halves.
	if pred.PredictedSeconds >= pred.ActualSeconds {
		t.Fatalf("doubling disks predicted %v ≥ actual %v", pred.PredictedSeconds, pred.ActualSeconds)
	}
	pred2 := model.Predict(p, InfinitelyFast(Disk))
	if pred2.PredictedSeconds >= pred.ActualSeconds {
		t.Fatal("infinitely fast disk should beat doubling disks")
	}
}

func TestResourceStrings(t *testing.T) {
	if CPU.String() != "cpu" || Disk.String() != "disk" || Network.String() != "network" {
		t.Fatal("Resource.String broken")
	}
}

func TestInfinitelyFastMapsResources(t *testing.T) {
	p := &model.JobProfile{
		Name: "j",
		Res:  model.Resources{TotalCores: 10, DiskBW: 1e9, NetBW: 1e9},
		Stages: []model.StageProfile{
			{Name: "s", CPUSeconds: 100, DiskBytes: 5e9, NetBytes: 2e9, ActualSeconds: 12},
		},
	}
	// CPU ideal 10 s dominates; removing CPU leaves disk (5 s).
	pred := model.Predict(p, InfinitelyFast(CPU))
	want := 12.0 * 5.0 / 10.0
	if pred.PredictedSeconds != want {
		t.Fatalf("no-CPU prediction = %v, want %v", pred.PredictedSeconds, want)
	}
}
