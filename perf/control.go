package perf

// Control-plane comparison: the same workload executed with centralized
// driver dispatch and with worker-side (delegated) dispatch, timed and
// checksummed. Identical hashes are the delegation equivalence proof at the
// benchmark layer — worker-side dispatch is an execution strategy, so the
// rendered job timings must not change — and the message counters quantify
// what delegation buys: driver RPCs collapse to range grants plus one
// aggregate result per stage, with per-task traffic moving to worker
// self-dispatch and peer-to-peer metadata exchange.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/jobsched"
	"repro/internal/run"
	"repro/internal/units"
	"repro/internal/workloads"
)

// ControlRun is one dispatch mode's leg: the workload's rendered output plus
// the driver's control-plane accounting. Stats may be zero when the workload
// runs through a layer that does not expose its driver (the figures corpus);
// the checksum comparison still applies.
type ControlRun struct {
	Output []byte
	Stats  jobsched.DispatchStats
}

// ControlCompare is one centralized-vs-delegated row of the BENCH report.
type ControlCompare struct {
	Workload        string  `json:"workload"`
	CentralizedMs   float64 `json:"centralized_ms"`
	DelegatedMs     float64 `json:"delegated_ms"`
	Speedup         float64 `json:"speedup"`
	CentralizedHash string  `json:"centralized_hash"`
	DelegatedHash   string  `json:"delegated_hash"`
	Identical       bool    `json:"identical"`
	// Driver-message economics, when the workload exposes them: RPCs the
	// driver handled in each mode, peer-to-peer stage-metadata messages, and
	// launches the workers issued without driver involvement.
	CentralizedDriverMsgs int64 `json:"centralized_driver_msgs,omitempty"`
	DelegatedDriverMsgs   int64 `json:"delegated_driver_msgs,omitempty"`
	PeerMsgs              int64 `json:"peer_msgs,omitempty"`
	SelfDispatched        int64 `json:"self_dispatched,omitempty"`
}

// CompareControl runs one workload in both dispatch modes and assembles the
// comparison row. leg executes the workload with the requested mode and
// returns its rendered output (plus driver accounting when available).
func CompareControl(workload string, leg func(delegated bool) (ControlRun, error)) (ControlCompare, error) {
	start := time.Now()
	cen, err := leg(false)
	cenDur := time.Since(start)
	if err != nil {
		return ControlCompare{}, fmt.Errorf("perf: %s centralized leg: %w", workload, err)
	}
	start = time.Now()
	del, err := leg(true)
	delDur := time.Since(start)
	if err != nil {
		return ControlCompare{}, fmt.Errorf("perf: %s delegated leg: %w", workload, err)
	}
	ch, dh := sha256.Sum256(cen.Output), sha256.Sum256(del.Output)
	return ControlCompare{
		Workload:              workload,
		CentralizedMs:         float64(cenDur.Microseconds()) / 1e3,
		DelegatedMs:           float64(delDur.Microseconds()) / 1e3,
		Speedup:               float64(cenDur) / float64(delDur),
		CentralizedHash:       hex.EncodeToString(ch[:]),
		DelegatedHash:         hex.EncodeToString(dh[:]),
		Identical:             bytes.Equal(cen.Output, del.Output),
		CentralizedDriverMsgs: cen.Stats.DriverMessages,
		DelegatedDriverMsgs:   del.Stats.DriverMessages,
		PeerMsgs:              del.Stats.PeerMessages,
		SelfDispatched:        del.Stats.SelfDispatched,
	}, nil
}

// ControlSortLeg is the built-in control workload: `jobs` concurrent 1 GB
// sorts through one monotasks driver on `machines` machines, rendered at
// full precision so the centralized/delegated comparison is bitwise. Unlike
// the figures corpus, this leg holds the driver, so the row carries real
// message counts.
func ControlSortLeg(machines, jobs int, delegated bool) (ControlRun, error) {
	c, err := cluster.New(machines, cluster.M2_4XLarge())
	if err != nil {
		return ControlRun{}, err
	}
	env, err := workloads.NewEnv(c)
	if err != nil {
		return ControlRun{}, err
	}
	spec, err := workloads.Sort{Name: "control", TotalBytes: 1 * units.GB, MapTasks: 16, ReduceTasks: 8}.Build(env)
	if err != nil {
		return ControlRun{}, err
	}
	d, err := run.Driver(c, env.FS, run.Options{
		Mode:  run.Monotasks,
		Sched: jobsched.Config{WorkerDispatch: delegated},
	})
	if err != nil {
		return ControlRun{}, err
	}
	for i := 0; i < jobs; i++ {
		if _, err := d.Submit(spec); err != nil {
			return ControlRun{}, err
		}
	}
	ms := d.Run()
	var buf bytes.Buffer
	for ji, j := range ms {
		fmt.Fprintf(&buf, "job %d start=%.9f end=%.9f\n", ji, float64(j.Start), float64(j.End))
		for si, st := range j.Stages {
			fmt.Fprintf(&buf, " stage %d start=%.9f end=%.9f\n", si, float64(st.Start), float64(st.End))
			for ti, tm := range st.Tasks {
				if tm == nil {
					fmt.Fprintf(&buf, "  task %d nil\n", ti)
					continue
				}
				fmt.Fprintf(&buf, "  task %d m=%d start=%.9f end=%.9f\n",
					ti, tm.Machine, float64(tm.Start), float64(tm.End))
			}
		}
	}
	return ControlRun{Output: buf.Bytes(), Stats: d.DispatchStats()}, nil
}
