// Benchmarks that regenerate every table and figure in the paper's
// evaluation (§5–§7). Each benchmark runs the corresponding experiment on
// the virtual cluster and reports the figure's headline quantities as
// custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. The same experiments are available
// interactively via cmd/monobench.
package repro

import (
	"testing"

	"repro/internal/figures"
	"repro/perf"
)

// BenchmarkFig02 regenerates the Fig. 2 utilization oscillation trace.
func BenchmarkFig02(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig02()
		if err != nil {
			b.Fatal(err)
		}
		if !r.Oscillates() {
			b.Fatal("Fig. 2 bottleneck did not oscillate between CPU and disk")
		}
	}
}

// BenchmarkSort600GB regenerates the §5.2 sort comparison (paper: Spark
// 88 min vs MonoSpark 57 min = 1.54× speedup).
func BenchmarkSort600GB(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		r, err := figures.Sort600GB()
		if err != nil {
			b.Fatal(err)
		}
		speedup = r.Speedup()
		if speedup <= 1 {
			b.Fatalf("MonoSpark speedup %.2f ≤ 1 on the sort workload", speedup)
		}
	}
	b.ReportMetric(speedup, "mono-speedup")
}

// BenchmarkFig05 regenerates the big data benchmark comparison (paper:
// MonoSpark within −21%…+5% of Spark except q1c at +55%).
func BenchmarkFig05(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig05()
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, row := range r.Rows {
			if v := row.MonoVsSpark(); v > worst {
				worst = v
			}
		}
	}
	b.ReportMetric(worst, "worst-mono/spark")
}

// BenchmarkFig06 regenerates the stage-utilization box plots (same runs as
// Fig. 5, different view).
func BenchmarkFig06(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig05()
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Util) == 0 {
			b.Fatal("no utilization summaries")
		}
	}
}

// BenchmarkFig07 regenerates the per-stage ML workload comparison (paper:
// MonoSpark on par with Spark).
func BenchmarkFig07(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig07()
		if err != nil {
			b.Fatal(err)
		}
		worst = r.MaxRatio()
	}
	b.ReportMetric(worst, "worst-mono/spark")
}

// BenchmarkFig08 regenerates the task-count sensitivity sweep (paper:
// MonoSpark slower at one wave, on par by three).
func BenchmarkFig08(b *testing.B) {
	var oneWave, manyWaves float64
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig08()
		if err != nil {
			b.Fatal(err)
		}
		first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
		oneWave = float64(first.Mono) / float64(first.Spark)
		manyWaves = float64(last.Mono) / float64(last.Spark)
	}
	b.ReportMetric(oneWave, "mono/spark-1wave")
	b.ReportMetric(manyWaves, "mono/spark-12waves")
}

// BenchmarkFig09 regenerates the q2c map-stage utilization comparison
// (paper: MonoSpark keeps the CPU > 92% utilized, Spark 75–83%).
func BenchmarkFig09(b *testing.B) {
	var mono, spark float64
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig09()
		if err != nil {
			b.Fatal(err)
		}
		mono, spark = r.MonoCPU, r.SparkCPU
	}
	b.ReportMetric(mono, "mono-cpu-util")
	b.ReportMetric(spark, "spark-cpu-util")
}

// BenchmarkFig11 regenerates the 2×-SSD prediction (paper: ≤9% error).
func BenchmarkFig11(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		worst = r.MaxAbsErrPct()
	}
	b.ReportMetric(worst, "max-err-pct")
}

// BenchmarkFig12 regenerates the disk-removal predictions with the
// monotasks model (paper: ≤9% error except q3c at 28%).
func BenchmarkFig12(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, row := range r.Rows {
			e := pctAbs(row.MonoPredicted, row.MonoActual)
			if e > worst {
				worst = e
			}
		}
	}
	b.ReportMetric(worst, "max-err-pct")
}

// BenchmarkSec63 regenerates the in-memory-input prediction (§6.3, paper:
// 4% error).
func BenchmarkSec63(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		r, err := figures.Sec63()
		if err != nil {
			b.Fatal(err)
		}
		worst = r.MaxAbsErrPct()
	}
	b.ReportMetric(worst, "max-err-pct")
}

// BenchmarkFig13 regenerates the combined hardware+software migration
// prediction (paper: ~10× change predicted within 23%).
func BenchmarkFig13(b *testing.B) {
	var worst, change float64
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig13()
		if err != nil {
			b.Fatal(err)
		}
		worst = r.MaxAbsErrPct()
		change = r.Rows[0].Baseline / r.Rows[0].Actual
	}
	b.ReportMetric(worst, "max-err-pct")
	b.ReportMetric(change, "runtime-change-x")
}

// BenchmarkFig14 regenerates the bottleneck analysis (paper: CPU is the
// bottleneck for most queries; network optimizations have little effect).
func BenchmarkFig14(b *testing.B) {
	var cpuBound float64
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig14()
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for _, row := range r.Rows {
			if row.Bottleneck.String() == "cpu" {
				n++
			}
			if row.NoNetFrac < 0.9 {
				b.Fatalf("q%s: network removal predicted %v; paper finds network irrelevant", row.Query, row.NoNetFrac)
			}
		}
		cpuBound = float64(n) / float64(len(r.Rows))
	}
	b.ReportMetric(cpuBound, "cpu-bound-frac")
}

// BenchmarkFig15 regenerates the slot-model strawman (paper: badly wrong).
func BenchmarkFig15(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, row := range r.Rows {
			e := pctAbs(row.SlotPredicted, row.SparkActual)
			if e > worst {
				worst = e
			}
		}
	}
	b.ReportMetric(worst, "max-err-pct")
}

// BenchmarkFig16 regenerates the concurrent-job attribution comparison
// (paper: Spark 17% median / 68% p75 error; MonoSpark < 1%).
func BenchmarkFig16(b *testing.B) {
	var sparkMed, monoMed float64
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig16()
		if err != nil {
			b.Fatal(err)
		}
		sparkMed, _ = figures.MedianAndP75(r.SparkErrors)
		monoMed, _ = figures.MedianAndP75(r.MonoErrors)
		if monoMed >= sparkMed {
			b.Fatalf("mono attribution error %.1f%% ≥ spark %.1f%%", monoMed, sparkMed)
		}
	}
	b.ReportMetric(sparkMed, "spark-median-err-pct")
	b.ReportMetric(monoMed, "mono-median-err-pct")
}

// BenchmarkFig17 regenerates the measured-utilization Spark model (paper:
// 20–30% error for most queries).
func BenchmarkFig17(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, row := range r.Rows {
			e := pctAbs(row.UtilPredicted, row.SparkActual)
			if e > worst {
				worst = e
			}
		}
	}
	b.ReportMetric(worst, "max-err-pct")
}

// BenchmarkFig18 regenerates the auto-configuration sweep (paper: MonoSpark
// at least matches the best Spark slot configuration, up to 30% better).
func BenchmarkFig18(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		r, err := figures.Fig18()
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, row := range r.Rows {
			ratio := float64(row.Mono) / float64(row.BestSpark)
			if ratio > worst {
				worst = ratio
			}
		}
	}
	b.ReportMetric(worst, "worst-mono/best-spark")
}

func pctAbs(predicted, actual float64) float64 {
	if actual == 0 {
		return 0
	}
	e := (predicted - actual) / actual * 100
	if e < 0 {
		e = -e
	}
	return e
}

// BenchmarkAblations regenerates the design-choice ablations and asserts
// their directions: round-robin queues beat FIFO under a write backlog, SSD
// throughput rises to the concurrency knee, and load-aware writes beat
// round robin on mixed drives (§3.3, §3.4, §8).
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rr, err := figures.AblationPhaseRR()
		if err != nil {
			b.Fatal(err)
		}
		if rr.Rows[1].Seconds <= rr.Rows[0].Seconds {
			b.Fatalf("FIFO (%v) did not starve reads vs round robin (%v)",
				rr.Rows[1].Seconds, rr.Rows[0].Seconds)
		}
		ssd, err := figures.AblationSSDConcurrency()
		if err != nil {
			b.Fatal(err)
		}
		if !(ssd.Rows[0].Seconds > ssd.Rows[1].Seconds && ssd.Rows[1].Seconds > ssd.Rows[2].Seconds) {
			b.Fatal("SSD throughput did not rise toward the concurrency knee")
		}
		law, err := figures.AblationLoadAwareWrites()
		if err != nil {
			b.Fatal(err)
		}
		if law.Rows[1].Seconds >= law.Rows[0].Seconds {
			b.Fatal("shortest-queue writes did not beat round robin on mixed drives")
		}
		net, err := figures.AblationNetLimit()
		if err != nil {
			b.Fatal(err)
		}
		if net.Rows[4].Seconds <= net.Rows[2].Seconds {
			b.Fatal("over-admitting multitasks should hurt (§3.3 trade-off)")
		}
		if _, err := figures.AblationSpareMultitask(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFailure regenerates the fault-tolerance extension: a worker
// fail-stops mid-reduce and both executors recover via task re-execution
// and shuffle regeneration.
func BenchmarkFailure(b *testing.B) {
	var overhead float64
	for i := 0; i < b.N; i++ {
		r, err := figures.Failure()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.WithFailure <= row.Clean {
				b.Fatalf("%s: failure run (%v) not slower than clean (%v)",
					row.System, row.WithFailure, row.Clean)
			}
			if row.Overhead() > 2 {
				b.Fatalf("%s: failure overhead %.0f%% implausibly high", row.System, row.Overhead()*100)
			}
		}
		overhead = r.Rows[1].Overhead()
	}
	b.ReportMetric(overhead*100, "mono-overhead-pct")
}

// BenchmarkMultiJobSteadyState measures one long-lived driver absorbing
// repeated identical job submissions through its default pool — the
// execution-template cache's steady-state workload. Implementation shared
// with cmd/monoperf via the perf package.
func BenchmarkMultiJobSteadyState(b *testing.B) {
	perf.BenchMultiJobSteadyState(b)
}

// BenchmarkDriverSubmit isolates the control-plane cost of one job
// submission (validation, template lookup, stage-state instantiation, pool
// admission) against a zero-capacity cluster, so no task ever launches.
func BenchmarkDriverSubmit(b *testing.B) {
	perf.BenchDriverSubmit(b)
}

// BenchmarkDriverSubmitDelegated is BenchmarkDriverSubmit with the worker-
// side dispatch control plane on: admission also issues partition-range
// grants to the workers, and the per-submit allocation cost must stay at the
// centralized baseline.
func BenchmarkDriverSubmitDelegated(b *testing.B) {
	perf.BenchDriverSubmitDelegated(b)
}
