package dfs

import (
	"testing"
	"testing/quick"
)

func newFS(t *testing.T, machines, disks int) *FS {
	t.Helper()
	fs, err := New(Config{Machines: machines, DisksPerMachine: disks})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestCreateSplitsIntoBlocks(t *testing.T) {
	fs := newFS(t, 4, 2)
	f, err := fs.Create("/input", 300<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 300 MB at 128 MB blocks: 128 + 128 + 44.
	if len(f.Blocks) != 3 {
		t.Fatalf("got %d blocks, want 3", len(f.Blocks))
	}
	if f.Blocks[0].Bytes != 128<<20 || f.Blocks[2].Bytes != 44<<20 {
		t.Fatalf("block sizes %d, %d, %d", f.Blocks[0].Bytes, f.Blocks[1].Bytes, f.Blocks[2].Bytes)
	}
	var total int64
	for _, b := range f.Blocks {
		total += b.Bytes
	}
	if total != 300<<20 {
		t.Fatalf("blocks sum to %d, want %d", total, int64(300<<20))
	}
}

func TestPlacementRoundRobinAcrossMachines(t *testing.T) {
	fs := newFS(t, 4, 2)
	f, _ := fs.Create("/input", 8*DefaultBlockSize, 1)
	counts := make(map[int]int)
	for _, b := range f.Blocks {
		counts[b.Primary().Machine]++
	}
	for m := 0; m < 4; m++ {
		if counts[m] != 2 {
			t.Fatalf("machine %d holds %d blocks, want 2 (even spread)", m, counts[m])
		}
	}
}

func TestPlacementRotatesDisks(t *testing.T) {
	fs := newFS(t, 1, 2)
	f, _ := fs.Create("/input", 4*DefaultBlockSize, 1)
	if f.Blocks[0].Primary().Disk == f.Blocks[1].Primary().Disk {
		t.Fatal("consecutive blocks on the same machine should rotate disks")
	}
}

func TestReplication(t *testing.T) {
	fs := newFS(t, 3, 1)
	f, _ := fs.Create("/input", DefaultBlockSize, 3)
	b := f.Blocks[0]
	if len(b.Replicas) != 3 {
		t.Fatalf("got %d replicas, want 3", len(b.Replicas))
	}
	seen := make(map[int]bool)
	for _, r := range b.Replicas {
		if seen[r.Machine] {
			t.Fatal("two replicas on one machine")
		}
		seen[r.Machine] = true
	}
	for m := 0; m < 3; m++ {
		if !b.IsLocal(m) {
			t.Fatalf("block should be local to machine %d", m)
		}
		if b.LocalDisk(m) < 0 {
			t.Fatalf("LocalDisk(%d) = -1", m)
		}
	}
}

func TestLocalityQueries(t *testing.T) {
	fs := newFS(t, 4, 1)
	fs.Create("/input", 4*DefaultBlockSize, 1)
	total := 0
	for m := 0; m < 4; m++ {
		total += fs.BlocksOnMachine("/input", m)
	}
	if total != 4 {
		t.Fatalf("BlocksOnMachine sums to %d, want 4", total)
	}
	if fs.BlocksOnMachine("/missing", 0) != 0 {
		t.Fatal("missing file should have zero local blocks")
	}
	f, _ := fs.Open("/input")
	b := f.Blocks[0]
	other := (b.Primary().Machine + 1) % 4
	if b.IsLocal(other) {
		t.Fatal("unreplicated block should not be local elsewhere")
	}
	if b.LocalDisk(other) != -1 {
		t.Fatal("LocalDisk on remote machine should be -1")
	}
}

func TestCreateAt(t *testing.T) {
	fs := newFS(t, 4, 2)
	f, err := fs.CreateAt("/out", []int64{10, 20, 30}, []int{2, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if f.Bytes != 60 {
		t.Fatalf("Bytes = %d, want 60", f.Bytes)
	}
	if f.Blocks[0].Primary().Machine != 2 || f.Blocks[2].Primary().Machine != 0 {
		t.Fatal("CreateAt ignored forced locations")
	}
	if f.Blocks[0].Primary().Disk == f.Blocks[1].Primary().Disk {
		t.Fatal("two blocks on machine 2 should use different disks")
	}
	if _, err := fs.CreateAt("/bad", []int64{1}, []int{9}); err == nil {
		t.Fatal("out-of-range location accepted")
	}
	if _, err := fs.CreateAt("/bad2", []int64{1, 2}, []int{0}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestErrors(t *testing.T) {
	fs := newFS(t, 2, 1)
	if _, err := fs.Create("/a", 0, 1); err == nil {
		t.Error("zero-size file accepted")
	}
	fs.Create("/a", 1, 1)
	if _, err := fs.Create("/a", 1, 1); err == nil {
		t.Error("duplicate create accepted")
	}
	if _, err := fs.Create("/b", 1, 5); err == nil {
		t.Error("replication > machines accepted")
	}
	if _, err := fs.Open("/missing"); err == nil {
		t.Error("open of missing file succeeded")
	}
	if err := fs.Remove("/missing"); err == nil {
		t.Error("remove of missing file succeeded")
	}
	if err := fs.Remove("/a"); err != nil {
		t.Errorf("remove failed: %v", err)
	}
	if fs.Exists("/a") {
		t.Error("file exists after remove")
	}
	if _, err := New(Config{Machines: 0, DisksPerMachine: 1}); err == nil {
		t.Error("zero machines accepted")
	}
	if _, err := New(Config{Machines: 2, DisksPerMachine: 1, Replication: 3}); err == nil {
		t.Error("config replication > machines accepted")
	}
}

func TestList(t *testing.T) {
	fs := newFS(t, 2, 1)
	fs.Create("/b", 1, 1)
	fs.Create("/a", 1, 1)
	got := fs.List()
	if len(got) != 2 || got[0] != "/a" || got[1] != "/b" {
		t.Fatalf("List = %v, want sorted [/a /b]", got)
	}
}

// Property: for any file size, blocks tile the file exactly and every block
// except the last is full-size.
func TestPropertyBlockTiling(t *testing.T) {
	fs := newFS(t, 7, 3)
	i := 0
	f := func(szRaw uint32) bool {
		sz := int64(szRaw)%(3*DefaultBlockSize) + 1
		i++
		file, err := fs.Create(pathN(i), sz, 1)
		if err != nil {
			return false
		}
		var sum int64
		for j, b := range file.Blocks {
			sum += b.Bytes
			if j < len(file.Blocks)-1 && b.Bytes != DefaultBlockSize {
				return false
			}
			if b.Bytes <= 0 || b.Bytes > DefaultBlockSize {
				return false
			}
		}
		return sum == sz
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func pathN(i int) string {
	return "/prop/" + string(rune('a'+i%26)) + string(rune('0'+(i/26)%10)) + string(rune('0'+i/260))
}
