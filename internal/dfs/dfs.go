// Package dfs is an HDFS-like distributed block store for the virtual
// cluster. It tracks metadata only — which machine and disk holds each block
// of each file — because the simulator charges I/O time by byte count, and
// the live data path keeps real records in memory. Files are split into
// fixed-size blocks placed round-robin across machines and disks, mirroring
// how HDFS distributes blocks over a cluster (§3.2).
package dfs

import (
	"fmt"
	"sort"
)

// DefaultBlockSize is the HDFS default, 128 MB.
const DefaultBlockSize int64 = 128 << 20

// Location identifies one replica: a machine and a disk index on it.
type Location struct {
	Machine int
	Disk    int
}

// Block is one block of a file.
type Block struct {
	File     string
	Index    int
	Bytes    int64
	Replicas []Location
}

// Primary returns the first replica, which HDFS places on the writer's
// machine when possible.
func (b *Block) Primary() Location { return b.Replicas[0] }

// IsLocal reports whether any replica lives on the given machine.
func (b *Block) IsLocal(machine int) bool {
	for _, r := range b.Replicas {
		if r.Machine == machine {
			return true
		}
	}
	return false
}

// LocalDisk returns the disk index of the replica on the given machine, or
// -1 if none.
func (b *Block) LocalDisk(machine int) int {
	for _, r := range b.Replicas {
		if r.Machine == machine {
			return r.Disk
		}
	}
	return -1
}

// File is an immutable sequence of blocks.
type File struct {
	Path   string
	Bytes  int64
	Blocks []*Block
}

// FS is the namenode: file metadata plus a placement cursor.
type FS struct {
	blockSize       int64
	machines        int
	disksPerMachine int
	files           map[string]*File
	placeCursor     int
	diskCursor      []int // per machine
}

// Config parameterizes the store.
type Config struct {
	BlockSize       int64 // defaults to 128 MB
	Machines        int
	DisksPerMachine int
	Replication     int // defaults to 1 (see DESIGN.md)
}

// New creates an empty filesystem over the given cluster shape.
func New(cfg Config) (*FS, error) {
	if cfg.Machines <= 0 || cfg.DisksPerMachine <= 0 {
		return nil, fmt.Errorf("dfs: need machines and disks, got %d/%d", cfg.Machines, cfg.DisksPerMachine)
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = DefaultBlockSize
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 1
	}
	if cfg.Replication > cfg.Machines {
		return nil, fmt.Errorf("dfs: replication %d exceeds machine count %d", cfg.Replication, cfg.Machines)
	}
	return &FS{
		blockSize:       cfg.BlockSize,
		machines:        cfg.Machines,
		disksPerMachine: cfg.DisksPerMachine,
		files:           make(map[string]*File),
		diskCursor:      make([]int, cfg.Machines),
		placeCursor:     0,
	}, nil
}

// BlockSize reports the configured block size.
func (fs *FS) BlockSize() int64 { return fs.blockSize }

// Create writes a new file of the given logical size, splitting it into
// blocks and placing replicas round-robin. replication ≤ 0 uses 1.
func (fs *FS) Create(path string, bytes int64, replication int) (*File, error) {
	if _, ok := fs.files[path]; ok {
		return nil, fmt.Errorf("dfs: %q already exists", path)
	}
	if bytes <= 0 {
		return nil, fmt.Errorf("dfs: file %q needs positive size, got %d", path, bytes)
	}
	if replication <= 0 {
		replication = 1
	}
	if replication > fs.machines {
		return nil, fmt.Errorf("dfs: replication %d exceeds machine count %d", replication, fs.machines)
	}
	f := &File{Path: path, Bytes: bytes}
	remaining := bytes
	for i := 0; remaining > 0; i++ {
		sz := fs.blockSize
		if remaining < sz {
			sz = remaining
		}
		remaining -= sz
		b := &Block{File: path, Index: i, Bytes: sz}
		for r := 0; r < replication; r++ {
			m := (fs.placeCursor + r) % fs.machines
			d := fs.diskCursor[m]
			fs.diskCursor[m] = (d + 1) % fs.disksPerMachine
			b.Replicas = append(b.Replicas, Location{Machine: m, Disk: d})
		}
		fs.placeCursor = (fs.placeCursor + 1) % fs.machines
		f.Blocks = append(f.Blocks, b)
	}
	fs.files[path] = f
	return f, nil
}

// CreateAt writes a file whose block i's primary replica is forced onto
// machine locations[i] — used for task output, which HDFS writes locally.
func (fs *FS) CreateAt(path string, blockBytes []int64, locations []int) (*File, error) {
	return fs.CreateAtReplicated(path, blockBytes, locations, 1)
}

// CreateAtReplicated is CreateAt with extra replicas placed on the machines
// following each block's primary (HDFS-style pipeline placement). Failure
// experiments need replication ≥ 2, or a lost machine takes its blocks with
// it for good.
func (fs *FS) CreateAtReplicated(path string, blockBytes []int64, locations []int, replication int) (*File, error) {
	if _, ok := fs.files[path]; ok {
		return nil, fmt.Errorf("dfs: %q already exists", path)
	}
	if len(blockBytes) != len(locations) {
		return nil, fmt.Errorf("dfs: %d block sizes but %d locations", len(blockBytes), len(locations))
	}
	if replication <= 0 {
		replication = 1
	}
	if replication > fs.machines {
		return nil, fmt.Errorf("dfs: replication %d exceeds machine count %d", replication, fs.machines)
	}
	f := &File{Path: path}
	for i, sz := range blockBytes {
		m := locations[i]
		if m < 0 || m >= fs.machines {
			return nil, fmt.Errorf("dfs: block %d location %d out of range", i, m)
		}
		b := &Block{File: path, Index: i, Bytes: sz}
		for r := 0; r < replication; r++ {
			rm := (m + r) % fs.machines
			d := fs.diskCursor[rm]
			fs.diskCursor[rm] = (d + 1) % fs.disksPerMachine
			b.Replicas = append(b.Replicas, Location{Machine: rm, Disk: d})
		}
		f.Blocks = append(f.Blocks, b)
		f.Bytes += sz
	}
	fs.files[path] = f
	return f, nil
}

// Open returns the file's metadata.
func (fs *FS) Open(path string) (*File, error) {
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("dfs: %q does not exist", path)
	}
	return f, nil
}

// Exists reports whether the path is present.
func (fs *FS) Exists(path string) bool {
	_, ok := fs.files[path]
	return ok
}

// Remove deletes a file. Removing a missing file is an error, matching HDFS.
func (fs *FS) Remove(path string) error {
	if _, ok := fs.files[path]; !ok {
		return fmt.Errorf("dfs: %q does not exist", path)
	}
	delete(fs.files, path)
	return nil
}

// List returns all paths in lexicographic order.
func (fs *FS) List() []string {
	out := make([]string, 0, len(fs.files))
	for p := range fs.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// BlocksOnMachine returns how many of the file's blocks have a replica on
// the given machine — the scheduler's locality signal.
func (fs *FS) BlocksOnMachine(path string, machine int) int {
	f, ok := fs.files[path]
	if !ok {
		return 0
	}
	n := 0
	for _, b := range f.Blocks {
		if b.IsLocal(machine) {
			n++
		}
	}
	return n
}
