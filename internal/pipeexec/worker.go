package pipeexec

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/units"
)

// Options tune the Spark-style executor.
type Options struct {
	// TasksPerMachine is the slot count — Spark's only concurrency control
	// (§6.6). Default: the machine's core count, Spark's default.
	TasksPerMachine int
	// WriteThrough forces task writes to disk synchronously instead of into
	// the buffer cache — the "Spark (writes flushed)" configuration of
	// Fig. 5.
	WriteThrough bool
	// ChunkBytes is the granularity of the fine-grained pipeline. Default
	// 8 MB.
	ChunkBytes int64
	// CacheCapacity bounds buffer-cache residency. Default: one sixth of
	// machine memory — on the paper's workers the executor JVM heap claims
	// most of the 60 GB, leaving roughly 10 GB of page cache.
	CacheCapacity int64
	// DirtyLimit is the dirty-byte level above which writeback starts
	// immediately. Default: 5% of machine memory (the kernel's
	// vm.dirty_ratio spirit).
	DirtyLimit int64
	// FlushDelay is the age at which dirty data is written back regardless
	// of pressure. Default 30 s (vm.dirty_expire_centisecs).
	FlushDelay sim.Duration
	// FetchWindow is how many chunk fetches a reduce task keeps in flight.
	// Default 2 (Spark's maxSizeInFlight spirit).
	FetchWindow int
	// Faults, when set, is consulted once per launched attempt; attempts it
	// fails occupy their slot briefly and complete with TaskMetrics.Failed,
	// exercising the driver's retry and exclusion policies (internal/faults).
	Faults task.FaultInjector
}

func (o Options) withDefaults(m *cluster.Machine) Options {
	if o.TasksPerMachine <= 0 {
		o.TasksPerMachine = m.Spec.Cores
	}
	if o.ChunkBytes <= 0 {
		o.ChunkBytes = 8 * units.MB
	}
	if o.CacheCapacity <= 0 {
		o.CacheCapacity = m.Spec.MemBytes / 6
	}
	if o.DirtyLimit <= 0 {
		o.DirtyLimit = m.Spec.MemBytes / 20
	}
	if o.FlushDelay <= 0 {
		o.FlushDelay = 30
	}
	if o.FetchWindow <= 0 {
		o.FetchWindow = 2
	}
	return o
}

// Worker runs multitasks the way Spark 1.3 does: one slot per task, each
// task fine-grained-pipelining its own resource use, all tasks contending
// freely for the machine's devices.
type Worker struct {
	machine *cluster.Machine
	eng     *sim.Engine
	fabric  *netsim.Fabric
	opts    Options
	cache   *bufferCache
	peers   func(int) *Worker

	// sched is the timeline machine-local work (chunk I/O, compute, the
	// buffer cache) runs on: the machine's lane in a sharded run, the engine
	// otherwise. lane is non-nil only when sharded; cross-machine work
	// (fabric transfers, peer serve calls, task completion) escapes through
	// it (see global).
	sched sim.Scheduler
	lane  *sim.Lane

	serveCursor int
	writeCursor int

	// Free lists and scratch for the chunk pipeline (see task.go): pooled
	// runningTask structs, fetch-interleave queues, and serve-side
	// read-then-transfer continuations.
	rtPool      []*runningTask
	fetchQueues [][]chunk
	fetchHeads  []int
	xferPool    []*xferOp
}

// xferOp is a pooled read-then-transfer continuation for the serving side
// of a fetch: the disk read completes, then the fabric transfer starts.
type xferOp struct {
	w      *Worker
	to     int
	bytes  int64
	done   func()
	fn     func() // op.run, bound once per struct
	xferFn func() // op.xfer, bound once per struct
}

func (w *Worker) takeXfer(to int, bytes int64, done func()) *xferOp {
	var op *xferOp
	if n := len(w.xferPool); n > 0 {
		op = w.xferPool[n-1]
		w.xferPool[n-1] = nil
		w.xferPool = w.xferPool[:n-1]
	} else {
		op = &xferOp{w: w}
		op.fn = op.run
		op.xferFn = op.xfer
	}
	op.to, op.bytes, op.done = to, bytes, done
	return op
}

// run is the disk-read completion: in a sharded run it fires on this
// machine's lane, and the fabric transfer it gates is cross-machine, so it
// escapes to the global timeline first.
func (op *xferOp) run() {
	if op.w.lane != nil {
		op.w.lane.Global(0, op.xferFn)
		return
	}
	op.xfer()
}

func (op *xferOp) xfer() {
	w, to, bytes, done := op.w, op.to, op.bytes, op.done
	op.done = nil
	w.xferPool = append(w.xferPool, op)
	w.fabric.Transfer(w.machine.ID, to, bytes, done)
}

// NewWorker builds the Spark-style runtime for one machine.
func NewWorker(m *cluster.Machine, fabric *netsim.Fabric, eng *sim.Engine, opts Options) *Worker {
	w := &Worker{machine: m, eng: eng, fabric: fabric, opts: opts.withDefaults(m),
		sched: m.Scheduler(), lane: m.Lane()}
	if len(m.Disks) > 0 {
		w.cache = newBufferCache(w, w.opts.CacheCapacity, w.opts.DirtyLimit, w.opts.FlushDelay)
	}
	return w
}

// SetPeers installs the lookup used for shuffle fetches.
func (w *Worker) SetPeers(lookup func(machineID int) *Worker) { w.peers = lookup }

// global schedules fn on the global timeline after d — the escape hatch for
// work whose consequences cross machines (peer serve calls, completion
// callbacks into the driver). A serial run posts to the engine directly.
func (w *Worker) global(d sim.Duration, fn func()) {
	if w.lane != nil {
		w.lane.Global(d, fn)
		return
	}
	w.eng.After(d, fn)
}

func (w *Worker) peer(id int) *Worker {
	if w.peers == nil {
		panic("pipeexec: worker peers not wired")
	}
	p := w.peers(id)
	if p == nil {
		panic(fmt.Sprintf("pipeexec: no worker for machine %d", id))
	}
	return p
}

// MachineID reports this worker's machine.
func (w *Worker) MachineID() int { return w.machine.ID }

// MaxConcurrentTasks is the slot count.
func (w *Worker) MaxConcurrentTasks() int { return w.opts.TasksPerMachine }

// Launch starts t in a slot. The driver enforces the slot count.
func (w *Worker) Launch(t *task.Task, done func(*task.TaskMetrics)) {
	if t.Machine != w.machine.ID {
		panic(fmt.Sprintf("pipeexec: task for machine %d launched on %d", t.Machine, w.machine.ID))
	}
	if w.opts.Faults != nil {
		if reason, after, failed := w.opts.Faults.AttemptFault(t, w.sched.Now()); failed {
			tm := &task.TaskMetrics{
				StageID:    t.Stage.ID,
				Index:      t.Index,
				Machine:    t.Machine,
				Start:      w.sched.Now(),
				Failed:     true,
				FailReason: reason,
			}
			w.eng.After(after, func() {
				tm.End = w.eng.Now()
				done(tm)
			})
			return
		}
	}
	rt := w.newRunningTask()
	rt.t = t
	rt.metrics = task.NewTaskMetrics(t.Stage.ID, t.Index, t.Machine, w.sched.Now(), 0)
	rt.done = done
	rt.start()
}

// serveFetch reads `bytes` of stage `stageID`'s shuffle output on this
// machine (from cache where resident, disk otherwise) and then transfers
// them to machine `to`; done fires at arrival. fromMem skips the disk
// entirely (in-memory shuffle data).
func (w *Worker) serveFetch(stageID int, to int, bytes int64, fromMem bool, done func()) {
	if fromMem {
		w.fabric.Transfer(w.machine.ID, to, bytes, done)
		return
	}
	hit := w.cache.readHitFraction(stageID)
	diskBytes := bytes - int64(float64(bytes)*hit)
	if diskBytes <= 0 {
		w.fabric.Transfer(w.machine.ID, to, bytes, done)
		return
	}
	op := w.takeXfer(to, bytes, done)
	w.machine.Disks[w.nextServeDisk()].ReadStream(diskBytes, op.fn)
}

// serveBlockRead reads an HDFS block chunk on behalf of a remote task.
func (w *Worker) serveBlockRead(disk int, to int, bytes int64, done func()) {
	op := w.takeXfer(to, bytes, done)
	w.machine.Disks[disk].ReadStream(bytes, op.fn)
}

func (w *Worker) nextServeDisk() int {
	d := w.serveCursor
	w.serveCursor = (w.serveCursor + 1) % len(w.machine.Disks)
	return d
}

func (w *Worker) nextWriteDisk() int {
	d := w.writeCursor
	w.writeCursor = (w.writeCursor + 1) % len(w.machine.Disks)
	return d
}

// DirtyBytes exposes the buffer cache's unflushed volume (tests, memory
// reporting). Zero on diskless machines.
func (w *Worker) DirtyBytes() int64 {
	if w.cache == nil {
		return 0
	}
	return w.cache.dirtyBytes()
}

// Group wires one pipelined Worker per cluster machine.
type Group struct {
	Workers []*Worker
}

// NewGroup builds a Spark-style worker on every machine of c.
func NewGroup(c *cluster.Cluster, opts Options) *Group {
	g := &Group{}
	for _, m := range c.Machines {
		g.Workers = append(g.Workers, NewWorker(m, c.Fabric, c.Engine, opts))
	}
	for _, w := range g.Workers {
		w.SetPeers(func(id int) *Worker { return g.Workers[id] })
	}
	return g
}
