package pipeexec

import (
	"testing"

	"repro/internal/task"
)

func TestPartialCacheFetchCompletes(t *testing.T) {
	c, g := newTestGroup(t, 2, 2, 2, Options{CacheCapacity: 10e6, DirtyLimit: 3e6})
	g.Workers[1].cache.write(0, 30e6) // resident capped at 10 MB
	reduce := &task.StageSpec{ID: 1, Name: "red", NumTasks: 1, ParentIDs: []int{0}, OpCPU: 0.1, OutputBytes: 30e6}
	tk := &task.Task{
		Stage: reduce, Index: 0, Machine: 0,
		Fetches: []task.Fetch{{From: 1, Bytes: 30e6, Stage: 0}},
	}
	var done bool
	g.Workers[0].Launch(tk, func(*task.TaskMetrics) { done = true })
	c.Engine.RunUntil(100)
	if !done {
		t.Fatalf("reduce with partial cache hit stalled; pending events=%d", c.Engine.Len())
	}
}
