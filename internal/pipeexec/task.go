package pipeexec

import "repro/internal/task"

// chunkKind says where one pipeline chunk's bytes come from.
type chunkKind int

const (
	chunkMem chunkKind = iota // cached input: instantly available
	chunkLocalDisk
	chunkRemoteBlock
	chunkShuffleFetch
)

// chunk is one unit of the fine-grained pipeline.
type chunk struct {
	kind  chunkKind
	bytes int64
	disk  int        // chunkLocalDisk
	fetch task.Fetch // chunkRemoteBlock / chunkShuffleFetch
}

// runningTask drives one multitask through Spark-style record pipelining,
// modeled at chunk granularity: up to FetchWindow chunk reads in flight,
// one chunk computing, writes going to the buffer cache as compute emits
// them (or synchronously to disk under WriteThrough). This is the Fig. 1
// execution: the task's bottleneck hops between resources as the pipeline
// stages drain and fill.
type runningTask struct {
	w       *Worker
	t       *task.Task
	metrics *task.TaskMetrics
	done    func(*task.TaskMetrics)

	chunks       []chunk
	totalInput   int64
	nextRead     int
	diskInFlight int
	netInFlight  int
	readDone     int
	computeDone  int
	computing    bool
	writing      bool

	// Cumulative accounting keeps CPU seconds and write bytes exactly
	// conserved across uneven chunk sizes.
	bytesComputed                 int64
	cpuCharged                    float64
	shuffleWritten, outputWritten int64
}

func (rt *runningTask) start() {
	rt.buildChunks()
	rt.issueReads()
	rt.tryCompute() // mem-only input can begin immediately
}

// buildChunks flattens the task's input sources into pipeline chunks.
func (rt *runningTask) buildChunks() {
	cb := rt.w.opts.ChunkBytes
	addChunks := func(total int64, mk func(bytes int64) chunk) {
		for total > 0 {
			b := cb
			if total < b {
				b = total
			}
			total -= b
			rt.chunks = append(rt.chunks, mk(b))
		}
	}
	t := rt.t
	if t.MemReadBytes > 0 {
		addChunks(t.MemReadBytes, func(b int64) chunk { return chunk{kind: chunkMem, bytes: b} })
	}
	if t.DiskReadBytes > 0 {
		addChunks(t.DiskReadBytes, func(b int64) chunk {
			return chunk{kind: chunkLocalDisk, bytes: b, disk: t.DiskReadDisk}
		})
	}
	if t.RemoteRead != nil {
		addChunks(t.RemoteRead.Bytes, func(b int64) chunk {
			return chunk{kind: chunkRemoteBlock, bytes: b, fetch: *t.RemoteRead}
		})
	}
	if len(t.Fetches) > 0 {
		// Build each source's chunk queue, then interleave them round-robin
		// starting at a per-task offset. Spark randomizes remote block
		// order precisely so that concurrent reducers do not all hammer the
		// same map host in lockstep; deterministic striping gives the same
		// load spreading without randomness.
		queues := make([][]chunk, len(t.Fetches))
		for i, f := range t.Fetches {
			f := f
			kind := chunkShuffleFetch
			if f.From == t.Machine && f.FromMem {
				kind = chunkMem // local in-memory shuffle data
			}
			rem := f.Bytes
			for rem > 0 {
				b := cb
				if rem < b {
					b = rem
				}
				rem -= b
				queues[i] = append(queues[i], chunk{kind: kind, bytes: b, fetch: f})
			}
		}
		for next := t.Index % max(1, len(queues)); ; next = (next + 1) % len(queues) {
			empty := true
			for off := 0; off < len(queues); off++ {
				q := (next + off) % len(queues)
				if len(queues[q]) > 0 {
					rt.chunks = append(rt.chunks, queues[q][0])
					queues[q] = queues[q][1:]
					next = q
					empty = false
					break
				}
			}
			if empty {
				break
			}
		}
	}
	if len(rt.chunks) == 0 {
		// Generator stages (no input): a single all-compute chunk.
		rt.chunks = []chunk{{kind: chunkMem, bytes: 1}}
	}
	for _, c := range rt.chunks {
		rt.totalInput += c.bytes
	}
}

// issueReads keeps chunk reads in flight, in order: one outstanding local
// disk chunk (a task's own chunk reads are sequential readahead — issuing
// more would spuriously self-contend), and up to FetchWindow network chunks
// (overlapping a remote serve with an in-flight transfer).
func (rt *runningTask) issueReads() {
	for rt.nextRead < len(rt.chunks) {
		c := rt.chunks[rt.nextRead]
		isNet := c.kind == chunkRemoteBlock || c.kind == chunkShuffleFetch
		if isNet && rt.netInFlight >= rt.w.opts.FetchWindow {
			return
		}
		if !isNet && c.kind == chunkLocalDisk && rt.diskInFlight >= 1 {
			return
		}
		rt.nextRead++
		if isNet {
			rt.netInFlight++
		} else if c.kind == chunkLocalDisk {
			rt.diskInFlight++
		}
		onRead := func() {
			if isNet {
				rt.netInFlight--
			} else if c.kind == chunkLocalDisk {
				rt.diskInFlight--
			}
			rt.readDone++
			rt.tryCompute()
			rt.issueReads()
		}
		switch c.kind {
		case chunkMem:
			rt.w.eng.After(0, onRead)
		case chunkLocalDisk:
			rt.w.machine.Disks[c.disk].ReadStream(c.bytes, onRead)
		case chunkRemoteBlock:
			rt.w.peer(c.fetch.From).serveBlockRead(c.fetch.FromDisk, rt.t.Machine, c.bytes, onRead)
		case chunkShuffleFetch:
			if c.fetch.From == rt.t.Machine {
				// Local shuffle data: read through the local cache/disk.
				rt.localShuffleRead(c, onRead)
			} else {
				rt.w.peer(c.fetch.From).serveFetch(c.fetch.Stage, rt.t.Machine, c.bytes, c.fetch.FromMem, onRead)
			}
		}
	}
}

// localShuffleRead reads a local shuffle chunk: cache hits are free.
func (rt *runningTask) localShuffleRead(c chunk, onRead func()) {
	hit := rt.w.cache.readHitFraction(shuffleKey(c.fetch.Stage))
	diskBytes := c.bytes - int64(float64(c.bytes)*hit)
	if diskBytes <= 0 {
		rt.w.eng.After(0, onRead)
		return
	}
	rt.w.machine.Disks[rt.w.nextServeDisk()].ReadStream(diskBytes, onRead)
}

// tryCompute processes the next read-but-uncomputed chunk. The task has one
// thread (§2.1), so at most one chunk computes at a time, and a synchronous
// write blocks it.
func (rt *runningTask) tryCompute() {
	if rt.computing || rt.writing || rt.computeDone >= rt.readDone {
		return
	}
	rt.computing = true
	c := rt.chunks[rt.computeDone]
	cpu := rt.cpuShare(c.bytes)
	rt.w.machine.CPU.Run(cpu, func() {
		rt.computing = false
		rt.computeDone++
		rt.writeChunk(c)
	})
}

// cpuShare charges the chunk's proportional share of the task's CPU time,
// conserving the total exactly.
func (rt *runningTask) cpuShare(bytes int64) float64 {
	total := rt.t.Stage.DeserCPU + rt.t.Stage.OpCPU + rt.t.Stage.SerCPU
	rt.bytesComputed += bytes
	target := total * float64(rt.bytesComputed) / float64(rt.totalInput)
	share := target - rt.cpuCharged
	rt.cpuCharged = target
	return share
}

// writeChunk emits the chunk's proportional share of shuffle and output
// bytes, then lets the pipeline continue.
func (rt *runningTask) writeChunk(c chunk) {
	st := rt.t.Stage
	frac := float64(rt.bytesComputed) / float64(rt.totalInput)
	shuffleTarget := int64(float64(st.ShuffleOutBytes) * frac)
	outputTarget := int64(float64(st.OutputBytes) * frac)
	if rt.computeDone == len(rt.chunks) {
		shuffleTarget, outputTarget = st.ShuffleOutBytes, st.OutputBytes
	}
	shuffleBytes := shuffleTarget - rt.shuffleWritten
	outputBytes := outputTarget - rt.outputWritten
	rt.shuffleWritten, rt.outputWritten = shuffleTarget, outputTarget

	var toDisk, toCache int64
	if st.ShuffleOutBytes > 0 && !st.ShuffleInMemory {
		if rt.w.opts.WriteThrough {
			toDisk += shuffleBytes
		} else {
			rt.w.cache.write(shuffleKey(st.ID), shuffleBytes)
			toCache += shuffleBytes
		}
	}
	if st.OutputBytes > 0 && !st.OutputToMem {
		if rt.w.opts.WriteThrough {
			toDisk += outputBytes
		} else {
			rt.w.cache.write("output", outputBytes)
			toCache += outputBytes
		}
	}
	resume := func() {
		rt.writing = false
		rt.tryCompute()
		rt.maybeFinish()
	}
	switch {
	case toDisk > 0:
		rt.writing = true
		rt.w.machine.Disks[rt.w.nextWriteDisk()].WriteStream(toDisk, resume)
	case toCache > 0 && rt.w.cache.throttled():
		// Dirty data beyond the kernel's hard limit: the writing thread is
		// throttled until writeback catches up — the OS, not the framework,
		// decides when the task runs again (§2.2).
		rt.writing = true
		rt.w.cache.waitWritable(resume)
	}
	rt.tryCompute()
	rt.maybeFinish()
}

// maybeFinish completes the task once every chunk is computed and no write
// is outstanding.
func (rt *runningTask) maybeFinish() {
	if rt.computeDone < len(rt.chunks) || rt.writing || rt.computing {
		return
	}
	rt.metrics.End = rt.w.eng.Now()
	done := rt.done
	rt.done = nil
	if done != nil {
		metrics := rt.metrics
		rt.w.eng.After(0, func() { done(metrics) })
	}
}
