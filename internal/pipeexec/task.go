package pipeexec

import "repro/internal/task"

// chunkKind says where one pipeline chunk's bytes come from.
type chunkKind int

const (
	chunkMem chunkKind = iota // cached input: instantly available
	chunkLocalDisk
	chunkRemoteBlock
	chunkShuffleFetch
)

// chunk is one unit of the fine-grained pipeline.
type chunk struct {
	kind  chunkKind
	bytes int64
	disk  int        // chunkLocalDisk
	fetch task.Fetch // chunkRemoteBlock / chunkShuffleFetch
}

// runningTask drives one multitask through Spark-style record pipelining,
// modeled at chunk granularity: up to FetchWindow chunk reads in flight,
// one chunk computing, writes going to the buffer cache as compute emits
// them (or synchronously to disk under WriteThrough). This is the Fig. 1
// execution: the task's bottleneck hops between resources as the pipeline
// stages drain and fill.
//
// Structs are pooled per worker; the pipeline-step callbacks handed to the
// devices are bound once per struct lifetime, so a task's chunk churn costs
// no closure allocations.
type runningTask struct {
	w       *Worker
	t       *task.Task
	metrics *task.TaskMetrics
	done    func(*task.TaskMetrics)

	chunks       []chunk
	totalInput   int64
	nextRead     int
	diskInFlight int
	netInFlight  int
	readDone     int
	computeDone  int
	computing    bool
	writing      bool

	// Cumulative accounting keeps CPU seconds and write bytes exactly
	// conserved across uneven chunk sizes.
	bytesComputed                 int64
	cpuCharged                    float64
	shuffleWritten, outputWritten int64

	// pendingDone holds the completion callback between maybeFinish and the
	// deferred complete.
	pendingDone func(*task.TaskMetrics)

	// Callbacks bound once per struct (see newRunningTask).
	onMemReadFn   func()
	onDiskReadFn  func()
	onNetReadFn   func()
	computeDoneFn func()
	resumeFn      func()
	completeFn    func()
}

// newRunningTask takes a struct from the worker's free list (binding its
// callback set on first construction) and resets the per-task state.
func (w *Worker) newRunningTask() *runningTask {
	var rt *runningTask
	if n := len(w.rtPool); n > 0 {
		rt = w.rtPool[n-1]
		w.rtPool[n-1] = nil
		w.rtPool = w.rtPool[:n-1]
	} else {
		rt = &runningTask{}
		rt.onMemReadFn = func() { rt.onRead() }
		rt.onDiskReadFn = func() { rt.diskInFlight--; rt.onRead() }
		rt.onNetReadFn = func() { rt.netInFlight--; rt.onRead() }
		rt.computeDoneFn = func() {
			rt.computing = false
			rt.computeDone++
			rt.writeChunk()
		}
		rt.resumeFn = func() {
			rt.writing = false
			rt.tryCompute()
			rt.maybeFinish()
		}
		rt.completeFn = rt.complete
	}
	rt.w = w
	rt.chunks = rt.chunks[:0]
	rt.totalInput = 0
	rt.nextRead = 0
	rt.diskInFlight = 0
	rt.netInFlight = 0
	rt.readDone = 0
	rt.computeDone = 0
	rt.computing = false
	rt.writing = false
	rt.bytesComputed = 0
	rt.cpuCharged = 0
	rt.shuffleWritten = 0
	rt.outputWritten = 0
	return rt
}

func (rt *runningTask) start() {
	rt.buildChunks()
	rt.issueReads()
	rt.tryCompute() // mem-only input can begin immediately
}

// appendChunks splits total bytes into ChunkBytes-sized copies of proto.
func appendChunks(chunks []chunk, total, cb int64, proto chunk) []chunk {
	for total > 0 {
		b := cb
		if total < b {
			b = total
		}
		total -= b
		proto.bytes = b
		chunks = append(chunks, proto)
	}
	return chunks
}

// buildChunks flattens the task's input sources into pipeline chunks.
func (rt *runningTask) buildChunks() {
	cb := rt.w.opts.ChunkBytes
	t := rt.t
	chunks := rt.chunks[:0]
	if t.MemReadBytes > 0 {
		chunks = appendChunks(chunks, t.MemReadBytes, cb, chunk{kind: chunkMem})
	}
	if t.DiskReadBytes > 0 {
		chunks = appendChunks(chunks, t.DiskReadBytes, cb, chunk{kind: chunkLocalDisk, disk: t.DiskReadDisk})
	}
	if t.RemoteRead != nil {
		chunks = appendChunks(chunks, t.RemoteRead.Bytes, cb, chunk{kind: chunkRemoteBlock, fetch: *t.RemoteRead})
	}
	if len(t.Fetches) > 0 {
		// Build each source's chunk queue, then interleave them round-robin
		// starting at a per-task offset. Spark randomizes remote block
		// order precisely so that concurrent reducers do not all hammer the
		// same map host in lockstep; deterministic striping gives the same
		// load spreading without randomness. Queues and their head cursors
		// are worker-owned scratch.
		w := rt.w
		queues := w.fetchQueues
		if cap(queues) < len(t.Fetches) {
			queues = make([][]chunk, len(t.Fetches))
		} else {
			queues = queues[:len(t.Fetches)]
		}
		heads := w.fetchHeads
		if cap(heads) < len(queues) {
			heads = make([]int, len(queues))
		} else {
			heads = heads[:len(queues)]
		}
		for i, f := range t.Fetches {
			kind := chunkShuffleFetch
			if f.From == t.Machine && f.FromMem {
				kind = chunkMem // local in-memory shuffle data
			}
			queues[i] = appendChunks(queues[i][:0], f.Bytes, cb, chunk{kind: kind, fetch: f})
			heads[i] = 0
		}
		for next := t.Index % max(1, len(queues)); ; next = (next + 1) % len(queues) {
			empty := true
			for off := 0; off < len(queues); off++ {
				q := (next + off) % len(queues)
				if heads[q] < len(queues[q]) {
					chunks = append(chunks, queues[q][heads[q]])
					heads[q]++
					next = q
					empty = false
					break
				}
			}
			if empty {
				break
			}
		}
		w.fetchQueues = queues
		w.fetchHeads = heads
	}
	if len(chunks) == 0 {
		// Generator stages (no input): a single all-compute chunk.
		chunks = append(chunks, chunk{kind: chunkMem, bytes: 1})
	}
	rt.chunks = chunks
	for _, c := range chunks {
		rt.totalInput += c.bytes
	}
}

// onRead is the shared tail of every chunk-read completion.
func (rt *runningTask) onRead() {
	rt.readDone++
	rt.tryCompute()
	rt.issueReads()
}

// issueReads keeps chunk reads in flight, in order: one outstanding local
// disk chunk (a task's own chunk reads are sequential readahead — issuing
// more would spuriously self-contend), and up to FetchWindow network chunks
// (overlapping a remote serve with an in-flight transfer).
func (rt *runningTask) issueReads() {
	for rt.nextRead < len(rt.chunks) {
		c := rt.chunks[rt.nextRead]
		isNet := c.kind == chunkRemoteBlock || c.kind == chunkShuffleFetch
		if isNet && rt.netInFlight >= rt.w.opts.FetchWindow {
			return
		}
		if !isNet && c.kind == chunkLocalDisk && rt.diskInFlight >= 1 {
			return
		}
		rt.nextRead++
		var onRead func()
		switch {
		case isNet:
			rt.netInFlight++
			onRead = rt.onNetReadFn
		case c.kind == chunkLocalDisk:
			rt.diskInFlight++
			onRead = rt.onDiskReadFn
		default:
			onRead = rt.onMemReadFn
		}
		switch c.kind {
		case chunkMem:
			rt.w.sched.After(0, onRead)
		case chunkLocalDisk:
			rt.w.machine.Disks[c.disk].ReadStream(c.bytes, onRead)
		case chunkRemoteBlock:
			// Peer serve calls mutate the remote worker's state, which is
			// not safely reachable from this machine's lane — route the call
			// through the global timeline in a sharded run. The pooled rt
			// cannot be recycled underneath the deferred call: the task is
			// not finished while this chunk's read is outstanding.
			if rt.w.lane != nil {
				c := c
				rt.w.lane.Global(0, func() {
					rt.w.peer(c.fetch.From).serveBlockRead(c.fetch.FromDisk, rt.t.Machine, c.bytes, onRead)
				})
			} else {
				rt.w.peer(c.fetch.From).serveBlockRead(c.fetch.FromDisk, rt.t.Machine, c.bytes, onRead)
			}
		case chunkShuffleFetch:
			if c.fetch.From == rt.t.Machine {
				// Local shuffle data: read through the local cache/disk.
				rt.localShuffleRead(c, onRead)
			} else if rt.w.lane != nil {
				c := c
				rt.w.lane.Global(0, func() {
					rt.w.peer(c.fetch.From).serveFetch(c.fetch.Stage, rt.t.Machine, c.bytes, c.fetch.FromMem, onRead)
				})
			} else {
				rt.w.peer(c.fetch.From).serveFetch(c.fetch.Stage, rt.t.Machine, c.bytes, c.fetch.FromMem, onRead)
			}
		}
	}
}

// localShuffleRead reads a local shuffle chunk: cache hits are free.
func (rt *runningTask) localShuffleRead(c chunk, onRead func()) {
	hit := rt.w.cache.readHitFraction(c.fetch.Stage)
	diskBytes := c.bytes - int64(float64(c.bytes)*hit)
	if diskBytes <= 0 {
		rt.w.sched.After(0, onRead)
		return
	}
	rt.w.machine.Disks[rt.w.nextServeDisk()].ReadStream(diskBytes, onRead)
}

// tryCompute processes the next read-but-uncomputed chunk. The task has one
// thread (§2.1), so at most one chunk computes at a time, and a synchronous
// write blocks it.
func (rt *runningTask) tryCompute() {
	if rt.computing || rt.writing || rt.computeDone >= rt.readDone {
		return
	}
	rt.computing = true
	cpu := rt.cpuShare(rt.chunks[rt.computeDone].bytes)
	rt.w.machine.CPU.Run(cpu, rt.computeDoneFn)
}

// cpuShare charges the chunk's proportional share of the task's CPU time,
// conserving the total exactly.
func (rt *runningTask) cpuShare(bytes int64) float64 {
	total := rt.t.Stage.DeserCPU + rt.t.Stage.OpCPU + rt.t.Stage.SerCPU
	rt.bytesComputed += bytes
	target := total * float64(rt.bytesComputed) / float64(rt.totalInput)
	share := target - rt.cpuCharged
	rt.cpuCharged = target
	return share
}

// writeChunk emits the just-computed chunk's proportional share of shuffle
// and output bytes, then lets the pipeline continue.
func (rt *runningTask) writeChunk() {
	st := rt.t.Stage
	frac := float64(rt.bytesComputed) / float64(rt.totalInput)
	shuffleTarget := int64(float64(st.ShuffleOutBytes) * frac)
	outputTarget := int64(float64(st.OutputBytes) * frac)
	if rt.computeDone == len(rt.chunks) {
		shuffleTarget, outputTarget = st.ShuffleOutBytes, st.OutputBytes
	}
	shuffleBytes := shuffleTarget - rt.shuffleWritten
	outputBytes := outputTarget - rt.outputWritten
	rt.shuffleWritten, rt.outputWritten = shuffleTarget, outputTarget

	var toDisk, toCache int64
	if st.ShuffleOutBytes > 0 && !st.ShuffleInMemory {
		if rt.w.opts.WriteThrough {
			toDisk += shuffleBytes
		} else {
			rt.w.cache.write(st.ID, shuffleBytes)
			toCache += shuffleBytes
		}
	}
	if st.OutputBytes > 0 && !st.OutputToMem {
		if rt.w.opts.WriteThrough {
			toDisk += outputBytes
		} else {
			rt.w.cache.write(outputKey, outputBytes)
			toCache += outputBytes
		}
	}
	switch {
	case toDisk > 0:
		rt.writing = true
		rt.w.machine.Disks[rt.w.nextWriteDisk()].WriteStream(toDisk, rt.resumeFn)
	case toCache > 0 && rt.w.cache.throttled():
		// Dirty data beyond the kernel's hard limit: the writing thread is
		// throttled until writeback catches up — the OS, not the framework,
		// decides when the task runs again (§2.2).
		rt.writing = true
		rt.w.cache.waitWritable(rt.resumeFn)
	}
	rt.tryCompute()
	rt.maybeFinish()
}

// maybeFinish completes the task once every chunk is computed and no write
// is outstanding.
func (rt *runningTask) maybeFinish() {
	if rt.computeDone < len(rt.chunks) || rt.writing || rt.computing {
		return
	}
	if rt.done == nil {
		return // completion already scheduled
	}
	rt.metrics.End = rt.w.sched.Now()
	rt.pendingDone = rt.done
	rt.done = nil
	// Completion reaches the driver, which may launch on any machine — in a
	// sharded run this must leave the lane.
	rt.w.global(0, rt.completeFn)
}

// complete delivers the metrics and recycles the struct. Fields are
// extracted and the struct pooled before the callback runs, so a follow-on
// Launch inside the callback may immediately reuse it.
func (rt *runningTask) complete() {
	w, done, metrics := rt.w, rt.pendingDone, rt.metrics
	rt.pendingDone = nil
	rt.metrics = nil
	rt.t = nil
	w.rtPool = append(w.rtPool, rt)
	done(metrics)
}
