package pipeexec

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func newTestCache(t *testing.T, capacity, dirtyLimit int64) (*cluster.Cluster, *bufferCache) {
	t.Helper()
	c, err := cluster.New(1, testSpec(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker(c.Machines[0], c.Fabric, c.Engine, Options{})
	bc := newBufferCache(w, capacity, dirtyLimit, 30)
	return c, bc
}

func TestCacheHitFraction(t *testing.T) {
	_, bc := newTestCache(t, 1000, 500)
	if got := bc.readHitFraction(99); got != 0 {
		t.Fatalf("miss fraction = %v, want 0", got)
	}
	bc.write(1, 400)
	if got := bc.readHitFraction(1); got != 1 {
		t.Fatalf("fully resident fraction = %v, want 1", got)
	}
}

func TestCacheEvictionLRU(t *testing.T) {
	_, bc := newTestCache(t, 1000, 10000)
	bc.write(1, 600)
	bc.write(2, 600) // total 1200 > 1000: evict 200 from 1
	if got := bc.readHitFraction(1); got != 400.0/600.0 {
		t.Fatalf("old fraction = %v, want 2/3", got)
	}
	if got := bc.readHitFraction(2); got != 1 {
		t.Fatalf("new fraction = %v, want 1 (MRU untouched)", got)
	}
}

func TestCacheFullyEvictedKeyCanReenter(t *testing.T) {
	_, bc := newTestCache(t, 1000, 100000)
	bc.write(1, 1000)
	bc.write(2, 1000) // evicts all of a
	if got := bc.readHitFraction(1); got != 0 {
		t.Fatalf("evicted fraction = %v, want 0", got)
	}
	bc.write(1, 500) // must rejoin the LRU list
	bc.write(3, 1000)
	// c's write must be able to evict a again; total stays ≤ capacity.
	if bc.total > 1000 {
		t.Fatalf("cache total %d exceeds capacity after re-entry", bc.total)
	}
}

func TestCachePressureFlushHitsDisk(t *testing.T) {
	c, bc := newTestCache(t, 10000, 500)
	bc.write(1, 2000) // 1500 over the dirty limit queue for flush
	c.Engine.RunUntil(5)
	disk := c.Machines[0].Disks
	if disk[0].BytesWritten()+disk[1].BytesWritten() != 1500 {
		t.Fatalf("flushed %d bytes under pressure, want 1500",
			disk[0].BytesWritten()+disk[1].BytesWritten())
	}
	if bc.dirtyBytes() != 500 {
		t.Fatalf("dirty = %d, want 500 (at the limit)", bc.dirtyBytes())
	}
}

func TestCacheAgeFlushDrainsEverything(t *testing.T) {
	c, bc := newTestCache(t, 10000, 5000)
	bc.write(1, 2000) // under the pressure limit
	c.Engine.Run()    // 30 s expiry fires
	if bc.dirtyBytes() != 0 {
		t.Fatalf("dirty = %d after expiry, want 0", bc.dirtyBytes())
	}
}

func TestCacheThrottleAndRelease(t *testing.T) {
	c, bc := newTestCache(t, 100000, 500) // hard limit 1000
	released := 0
	bc.write(1, 5000)
	if !bc.throttled() {
		t.Fatal("cache not throttled despite 5000 unflushed > 1000 hard limit")
	}
	bc.waitWritable(func() { released++ })
	bc.waitWritable(func() { released++ })
	if released != 0 {
		t.Fatal("waiters released while over the hard limit")
	}
	c.Engine.Run() // flusher drains
	if released != 2 {
		t.Fatalf("released %d waiters after drain, want 2", released)
	}
	// Below the limit, waitWritable resumes via the engine.
	resumed := false
	bc.waitWritable(func() { resumed = true })
	c.Engine.Run()
	if !resumed {
		t.Fatal("waitWritable under the limit never resumed")
	}
}

func TestCacheFlushOneWritePerDisk(t *testing.T) {
	c, bc := newTestCache(t, 100000, 100)
	bc.write(1, 200e6) // huge flush queue
	// Immediately after the write, at most one in-flight write per disk.
	if q := c.Machines[0].Disks[0].Queue() + c.Machines[0].Disks[1].Queue(); q > 2 {
		t.Fatalf("%d concurrent flush writes, want ≤ 2 (one per disk)", q)
	}
	c.Engine.RunUntil(sim.Time(0.5))
	if q := c.Machines[0].Disks[0].Queue() + c.Machines[0].Disks[1].Queue(); q > 2 {
		t.Fatalf("%d concurrent flush writes mid-drain, want ≤ 2", q)
	}
}

func TestCacheZeroByteWriteHarmless(t *testing.T) {
	c, bc := newTestCache(t, 1000, 500)
	bc.write(1, 0)
	c.Engine.Run()
	if bc.dirtyBytes() != 0 || bc.total != 0 {
		t.Fatalf("zero write left state: dirty=%d total=%d", bc.dirtyBytes(), bc.total)
	}
}
