package pipeexec

// Lane-affinity race coverage for the pipelined executor: workers whose
// chunk I/O, compute, and buffer cache schedule on their machine's lane,
// with shuffle fetches and task completions escaping to the global timeline
// through Lane.Global. Run under -race (CI does): the sharded drain uses
// real goroutines per shard, so any unsynchronized access in the migrated
// worker shows up here. The cross-shard-count comparison doubles as the
// determinism contract at the executor layer, including under
// coordinator-context SetMachineSpeed — the PR 8 dropped-send regression
// class.

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/task"
)

// pipeShardRun executes a small shuffle-heavy workload on `machines`
// lane-bound pipeexec workers at the given shard count and renders every
// task's metrics at full precision.
func pipeShardRun(t *testing.T, machines, shards int) string {
	t.Helper()
	c, err := cluster.New(machines, testSpec(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	c.ConfigureSharding(shards)
	g := NewGroup(c, Options{})

	mapStage := &task.StageSpec{ID: 0, Name: "map", NumTasks: machines, OpCPU: 0.3, ShuffleOutBytes: 40e6}
	redStage := &task.StageSpec{ID: 1, Name: "reduce", NumTasks: machines, OpCPU: 0.2}
	var tasks []*task.Task
	for m := 0; m < machines; m++ {
		tasks = append(tasks, &task.Task{Stage: mapStage, Index: m, Machine: m, DiskReadBytes: 60e6})
	}
	for m := 0; m < machines; m++ {
		fetches := make([]task.Fetch, 0, machines-1)
		for from := 0; from < machines; from++ {
			if from != m {
				fetches = append(fetches, task.Fetch{From: from, Bytes: 15e6, Stage: 0})
			}
		}
		tasks = append(tasks, &task.Task{Stage: redStage, Index: m, Machine: m, Fetches: fetches})
	}

	out := make([]*task.TaskMetrics, len(tasks))
	for i, tk := range tasks {
		i := i
		g.Workers[tk.Machine].Launch(tk, func(m *task.TaskMetrics) { out[i] = m })
	}
	// Coordinator-context perturbation mid-run: a global event rescales a
	// machine's lane-resident devices while chunks are in flight.
	c.Engine.After(0.15, func() { c.SetMachineSpeed(1, 0.5) })
	c.Engine.After(0.4, func() { c.SetMachineSpeed(1, 1.0) })
	c.Engine.Run()

	var buf []byte
	for i, m := range out {
		if m == nil {
			t.Fatalf("shards=%d: task %d never completed", shards, i)
		}
		buf = append(buf, fmt.Sprintf("task=%d end=%.9f\n", i, float64(m.End))...)
	}
	return string(buf)
}

// TestPipeexecLaneShardInvariant pins that the pipelined executor on lanes
// produces identical task timings at every shard count, with shuffle
// fetches crossing machines and speed changes arriving from coordinator
// context mid-flight.
func TestPipeexecLaneShardInvariant(t *testing.T) {
	const machines = 4
	want := pipeShardRun(t, machines, 1)
	for _, shards := range []int{2, 4} {
		if got := pipeShardRun(t, machines, shards); got != want {
			t.Fatalf("shards=%d task metrics diverged from 1-shard run:\ngot:\n%swant:\n%s", shards, got, want)
		}
	}
}
