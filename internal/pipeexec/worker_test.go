package pipeexec

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/task"
)

func testSpec(cores, disks int) cluster.MachineSpec {
	ds := make([]resource.DiskSpec, disks)
	for i := range ds {
		// α applies to reads and writes alike and floors are disabled, so
		// timing expectations reduce to clean arithmetic.
		ds[i] = resource.DiskSpec{
			Kind: resource.HDD, SeqBW: 100e6, SeekTime: 0,
			ContentionAlpha: 0.35, StreamingAlpha: 0.35,
			MixedFloorFrac: 0.01, StreamFloorFrac: 0.01,
		}
	}
	return cluster.MachineSpec{Cores: cores, Disks: ds, NetBW: 100e6, MemBytes: 1 << 30}
}

func newTestGroup(t *testing.T, machines, cores, disks int, opts Options) (*cluster.Cluster, *Group) {
	t.Helper()
	c, err := cluster.New(machines, testSpec(cores, disks))
	if err != nil {
		t.Fatal(err)
	}
	return c, NewGroup(c, opts)
}

func run(c *cluster.Cluster, g *Group, tasks []*task.Task) []*task.TaskMetrics {
	out := make([]*task.TaskMetrics, len(tasks))
	for i, tk := range tasks {
		i := i
		g.Workers[tk.Machine].Launch(tk, func(m *task.TaskMetrics) { out[i] = m })
	}
	c.Engine.Run()
	return out
}

func within(got, want, tol sim.Time) bool { return math.Abs(float64(got-want)) <= float64(tol) }

func TestFineGrainedPipeliningOverlapsReadAndCompute(t *testing.T) {
	c, g := newTestGroup(t, 1, 1, 1, Options{})
	stage := &task.StageSpec{ID: 0, Name: "map", NumTasks: 1, OpCPU: 1}
	tk := &task.Task{Stage: stage, Index: 0, Machine: 0, DiskReadBytes: 100e6}
	m := run(c, g, []*task.Task{tk})[0]
	// 1 s of disk + 1 s of CPU, pipelined chunk-wise: ≈ max(1,1) + one
	// chunk's latency, far below the 2 s a monotask decomposition takes.
	if m.End > 1.25 {
		t.Fatalf("pipelined task took %v; fine-grained pipelining broken (serial would be 2.0)", m.End)
	}
	if m.End < 1.0 {
		t.Fatalf("pipelined task took %v; cannot beat the bottleneck resource", m.End)
	}
	if len(m.Monotasks) != 0 {
		t.Fatalf("pipelined executor reported %d monotasks; it must not be able to", len(m.Monotasks))
	}
}

func TestBufferedWritesAreAsync(t *testing.T) {
	// Below the dirty hard limit (2 × MemBytes/20 ≈ 107 MB here), writes
	// land in the buffer cache and the task pays only CPU.
	c, g := newTestGroup(t, 1, 1, 1, Options{})
	stage := &task.StageSpec{ID: 0, Name: "w", NumTasks: 1, OpCPU: 0.1, ShuffleOutBytes: 80e6}
	tk := &task.Task{Stage: stage, Index: 0, Machine: 0}
	m := run(c, g, []*task.Task{tk})[0]
	if !within(m.End, 0.1, 0.01) {
		t.Fatalf("buffered-write task took %v, want ≈0.1 (writes in cache)", m.End)
	}
}

func TestDirtyThrottlingBlocksWriters(t *testing.T) {
	// Past the hard limit, the writing thread blocks on writeback — the
	// kernel, not the framework, controls when the task runs again (§2.2),
	// and this is what produces Fig. 2's everyone-blocked-on-disk moments.
	c, g := newTestGroup(t, 1, 1, 1, Options{})
	stage := &task.StageSpec{ID: 0, Name: "w", NumTasks: 1, OpCPU: 0.1, ShuffleOutBytes: 400e6}
	tk := &task.Task{Stage: stage, Index: 0, Machine: 0}
	m := run(c, g, []*task.Task{tk})[0]
	// ~293 MB must reach the disk within the task (400 − 107 hard limit),
	// at 100 MB/s ⇒ well over 2 s.
	if m.End < 2 {
		t.Fatalf("over-limit writer finished at %v; dirty throttling not applied", m.End)
	}
	if m.End > 5 {
		t.Fatalf("over-limit writer took %v; throttle should release as the flusher drains", m.End)
	}
}

func TestWriteThroughSerializesWrites(t *testing.T) {
	c, g := newTestGroup(t, 1, 1, 1, Options{WriteThrough: true})
	stage := &task.StageSpec{ID: 0, Name: "w", NumTasks: 1, OpCPU: 0.1, ShuffleOutBytes: 200e6}
	tk := &task.Task{Stage: stage, Index: 0, Machine: 0}
	m := run(c, g, []*task.Task{tk})[0]
	// 2 s of synchronous disk writes dominate.
	if m.End < 2.0 {
		t.Fatalf("write-through task took %v, want ≥ 2.0", m.End)
	}
}

func TestDirtyDataFlushedUnderPressure(t *testing.T) {
	// Dirty limit is 10% of 1 GB ≈ 107 MB; writing 400 MB must trigger
	// background device writes during the job.
	c, g := newTestGroup(t, 1, 1, 1, Options{})
	stage := &task.StageSpec{ID: 0, Name: "w", NumTasks: 1, OpCPU: 1, ShuffleOutBytes: 400e6}
	tk := &task.Task{Stage: stage, Index: 0, Machine: 0}
	run(c, g, []*task.Task{tk})
	if got := c.Machines[0].Disks[0].BytesWritten(); got == 0 {
		t.Fatal("no background flush despite dirty bytes over the limit")
	}
}

func TestDirtyDataFlushedByAgeEventually(t *testing.T) {
	c, g := newTestGroup(t, 1, 1, 1, Options{})
	stage := &task.StageSpec{ID: 0, Name: "w", NumTasks: 1, OpCPU: 0.1, ShuffleOutBytes: 50e6}
	tk := &task.Task{Stage: stage, Index: 0, Machine: 0}
	run(c, g, []*task.Task{tk}) // Run drains all events, including the 30 s expiry
	if g.Workers[0].DirtyBytes() != 0 {
		t.Fatalf("dirty bytes = %d after expiry, want 0", g.Workers[0].DirtyBytes())
	}
	if got := c.Machines[0].Disks[0].BytesWritten(); got != 50e6 {
		t.Fatalf("flushed %d bytes, want 5e7", got)
	}
}

func TestSmallWritesStayInCacheDuringJob(t *testing.T) {
	// The Fig. 5 query-1c effect: a small output never reaches disk while
	// the job runs, so Spark pays nothing for it.
	c, g := newTestGroup(t, 1, 1, 1, Options{})
	stage := &task.StageSpec{ID: 0, Name: "w", NumTasks: 1, OpCPU: 0.5, OutputBytes: 50e6}
	tk := &task.Task{Stage: stage, Index: 0, Machine: 0}
	var end sim.Time
	g.Workers[0].Launch(tk, func(m *task.TaskMetrics) { end = m.End })
	c.Engine.RunUntil(5) // before the 30 s age flush
	if end == 0 || !within(end, 0.5, 0.05) {
		t.Fatalf("task end = %v, want ≈0.5", end)
	}
	if got := c.Machines[0].Disks[0].BytesWritten(); got != 0 {
		t.Fatalf("disk saw %d bytes during job, want 0 (still dirty)", got)
	}
}

func TestConcurrentTasksContendOnDisk(t *testing.T) {
	// Four tasks reading 100 MB each from one HDD concurrently pay the
	// streaming-contention penalty (α = 0.35 with the test spec's disabled
	// floors behaves like the mixed case): the batch takes ≈2× the
	// serialized time. This is the §5.4 contention MonoSpark eliminates.
	c, g := newTestGroup(t, 1, 4, 1, Options{})
	stage := &task.StageSpec{ID: 0, Name: "r", NumTasks: 4, OpCPU: 0.01}
	var tasks []*task.Task
	for i := 0; i < 4; i++ {
		tasks = append(tasks, &task.Task{Stage: stage, Index: i, Machine: 0, DiskReadBytes: 100e6})
	}
	ms := run(c, g, tasks)
	var last sim.Time
	for _, m := range ms {
		if m.End > last {
			last = m.End
		}
	}
	if last < 6.5 {
		t.Fatalf("4 contending readers finished at %v; expected ≈8 s (2× collapse of 4 s serial)", last)
	}
}

func TestRemoteShuffleFetchThroughCache(t *testing.T) {
	c, g := newTestGroup(t, 2, 1, 1, Options{})
	// Machine 1 "ran a map" whose 100 MB shuffle output is in its cache.
	g.Workers[1].cache.write(0, 100e6)
	reduce := &task.StageSpec{ID: 1, Name: "red", NumTasks: 1, ParentIDs: []int{0}, OpCPU: 0.1}
	tk := &task.Task{
		Stage: reduce, Index: 0, Machine: 0,
		Fetches: []task.Fetch{{From: 1, Bytes: 100e6, Stage: 0}},
	}
	m := run(c, g, []*task.Task{tk})[0]
	// Serve side is a pure cache hit: only the 1 s transfer plus compute.
	if m.End > 1.3 {
		t.Fatalf("cache-served fetch took %v; remote disk should not be touched", m.End)
	}
	if got := c.Machines[1].Disks[0].BytesRead(); got != 0 {
		t.Fatalf("remote disk read %d bytes, want 0 (cache hit)", got)
	}
}

func TestRemoteShuffleFetchFromDiskWhenNotCached(t *testing.T) {
	c, g := newTestGroup(t, 2, 1, 1, Options{})
	reduce := &task.StageSpec{ID: 1, Name: "red", NumTasks: 1, ParentIDs: []int{0}, OpCPU: 0.1}
	tk := &task.Task{
		Stage: reduce, Index: 0, Machine: 0,
		Fetches: []task.Fetch{{From: 1, Bytes: 100e6, Stage: 0}},
	}
	run(c, g, []*task.Task{tk})
	if got := c.Machines[1].Disks[0].BytesRead(); got == 0 {
		t.Fatal("uncached shuffle data should be read from the remote disk")
	}
}

func TestGeneratorStageComputesWithoutInput(t *testing.T) {
	c, g := newTestGroup(t, 1, 1, 1, Options{})
	stage := &task.StageSpec{ID: 0, Name: "gen", NumTasks: 1, OpCPU: 2}
	m := run(c, g, []*task.Task{{Stage: stage, Index: 0, Machine: 0}})[0]
	if !within(m.End, 2, 0.01) {
		t.Fatalf("generator task took %v, want 2", m.End)
	}
}

func TestCPUConservation(t *testing.T) {
	// Uneven chunk sizes must still charge exactly the task's CPU total:
	// a single task on an otherwise idle machine finishes compute-bound
	// work in exactly DeserCPU+OpCPU+SerCPU.
	c, g := newTestGroup(t, 1, 1, 1, Options{})
	stage := &task.StageSpec{ID: 0, Name: "m", NumTasks: 1, DeserCPU: 0.3, OpCPU: 1.1, SerCPU: 0.6}
	tk := &task.Task{Stage: stage, Index: 0, Machine: 0, MemReadBytes: 100e6}
	m := run(c, g, []*task.Task{tk})[0]
	if !within(m.End, 2.0, 1e-6) {
		t.Fatalf("compute-only task took %v, want exactly 2.0 (CPU conservation)", m.End)
	}
}

func TestProcessorSharingWhenOversubscribed(t *testing.T) {
	// 4 slots on a 2-core machine: compute-bound tasks run at half speed.
	c, g := newTestGroup(t, 1, 2, 1, Options{TasksPerMachine: 4})
	stage := &task.StageSpec{ID: 0, Name: "m", NumTasks: 4, OpCPU: 1}
	var tasks []*task.Task
	for i := 0; i < 4; i++ {
		tasks = append(tasks, &task.Task{Stage: stage, Index: i, Machine: 0, MemReadBytes: 8e6})
	}
	ms := run(c, g, tasks)
	for i, m := range ms {
		if !within(m.End, 2, 0.05) {
			t.Fatalf("task %d finished at %v, want ≈2 (processor sharing)", i, m.End)
		}
	}
}

func TestMaxConcurrentTasksDefaultsToCores(t *testing.T) {
	_, g := newTestGroup(t, 1, 8, 2, Options{})
	if got := g.Workers[0].MaxConcurrentTasks(); got != 8 {
		t.Fatalf("slots = %d, want 8 (cores)", got)
	}
	_, g2 := newTestGroup(t, 1, 8, 2, Options{TasksPerMachine: 16})
	if got := g2.Workers[0].MaxConcurrentTasks(); got != 16 {
		t.Fatalf("slots = %d, want 16 (configured)", got)
	}
}

func TestDoneCalledExactlyOnce(t *testing.T) {
	c, g := newTestGroup(t, 1, 1, 1, Options{})
	stage := &task.StageSpec{ID: 0, Name: "m", NumTasks: 1, OpCPU: 0.5, ShuffleOutBytes: 10e6}
	calls := 0
	g.Workers[0].Launch(&task.Task{Stage: stage, Index: 0, Machine: 0, DiskReadBytes: 50e6},
		func(*task.TaskMetrics) { calls++ })
	c.Engine.Run()
	if calls != 1 {
		t.Fatalf("done called %d times, want 1", calls)
	}
}

func TestDeterminism(t *testing.T) {
	runOnce := func() []sim.Time {
		c, g := newTestGroup(t, 2, 2, 2, Options{})
		stage := &task.StageSpec{ID: 1, Name: "r", NumTasks: 8, ParentIDs: []int{0}, OpCPU: 0.3, ShuffleOutBytes: 5e6}
		var tasks []*task.Task
		for i := 0; i < 8; i++ {
			tasks = append(tasks, &task.Task{
				Stage: stage, Index: i, Machine: i % 2,
				Fetches: []task.Fetch{{From: (i + 1) % 2, Bytes: 20e6, Stage: 0}},
			})
		}
		ms := run(c, g, tasks)
		out := make([]sim.Time, len(ms))
		for i, m := range ms {
			out[i] = m.End
		}
		return out
	}
	a, b := runOnce(), runOnce()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at task %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestUtilizationOscillatesUnderPipelining(t *testing.T) {
	// The Fig. 2 phenomenon in miniature: tasks alternating read/compute on
	// one machine leave both resources partially idle at different moments.
	c, g := newTestGroup(t, 1, 2, 1, Options{})
	stage := &task.StageSpec{ID: 0, Name: "m", NumTasks: 2, OpCPU: 1.5}
	tasks := []*task.Task{
		{Stage: stage, Index: 0, Machine: 0, DiskReadBytes: 100e6},
		{Stage: stage, Index: 1, Machine: 0, DiskReadBytes: 100e6},
	}
	ms := run(c, g, tasks)
	var end sim.Time
	for _, m := range ms {
		if m.End > end {
			end = m.End
		}
	}
	cpuUtil := c.Machines[0].CPU.Util.Mean(0, end)
	diskUtil := c.Machines[0].Disks[0].Util.Mean(0, end)
	if cpuUtil > 0.99 && diskUtil > 0.99 {
		t.Fatal("both resources pegged; expected pipeline bubbles")
	}
	if cpuUtil < 0.1 || diskUtil < 0.1 {
		t.Fatalf("utilization cpu=%v disk=%v; pipeline not overlapping at all", cpuUtil, diskUtil)
	}
}

func TestLaunchOnWrongMachinePanics(t *testing.T) {
	_, g := newTestGroup(t, 2, 1, 1, Options{})
	stage := &task.StageSpec{ID: 0, Name: "m", NumTasks: 1, OpCPU: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("launching machine-1 task on worker 0 did not panic")
		}
	}()
	g.Workers[0].Launch(&task.Task{Stage: stage, Index: 0, Machine: 1}, func(*task.TaskMetrics) {})
}
