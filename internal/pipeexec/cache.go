// Package pipeexec implements the baseline the paper compares against: a
// Spark-1.3-style executor that runs multitasks in slots and fine-grained-
// pipelines CPU, disk, and network inside each task (§2.1).
//
// It deliberately reproduces the three properties that make Spark's
// performance hard to reason about (§2.2):
//
//   - tasks interleave chunk-granularity resource use, so machine-level
//     utilization oscillates between resources (Fig. 2);
//   - concurrent tasks contend directly on each disk (no per-resource
//     queueing), collapsing HDD throughput;
//   - disk writes go to an OS buffer cache whose background flusher issues
//     device writes outside the framework's control.
//
// Accordingly, its TaskMetrics carry no monotask breakdown — only task
// spans — which is exactly the observability gap Figs. 15–17 demonstrate.
package pipeexec

import (
	"repro/internal/sim"
)

// Cache keys are stage IDs for shuffle output plus outputKey for job
// output; integer keys keep the hot write/read paths off fmt.Sprintf.
const outputKey = -1

// cacheEntry tracks one logical file's residency in the buffer cache.
type cacheEntry struct {
	key      int
	resident int64 // bytes currently in cache (after eviction)
	written  int64 // bytes ever written under this key
}

// bufferCache models the OS page cache on one machine: writes complete into
// memory immediately; a background flusher later issues the device writes,
// contending with the framework's reads (§2.2, third challenge). Reads of
// recently written data (shuffle outputs) hit the cache.
type bufferCache struct {
	w          *Worker
	capacity   int64        // resident-byte cap; LRU eviction beyond it
	dirtyLimit int64        // writeback starts immediately above this
	flushDelay sim.Duration // age at which clean-behind writeback starts
	flushChunk int64

	entries map[int]*cacheEntry
	lru     []int
	total   int64

	dirty      int64 // written, not yet queued for flush
	flushQueue int64 // queued for flush, not yet issued
	inFlight   int64 // issued to a disk, not yet durable
	flushing   []bool

	// waiters are tasks throttled by balance_dirty_pages-style writeback
	// pressure: when unflushed bytes exceed hardLimit, writers block until
	// the flusher drains below it. This is the §2.2 behaviour that makes
	// Fig. 2's "all eight tasks block waiting on the two disks" moments.
	hardLimit int64
	waiters   []func()

	expirePool []*expireOp
	flushPool  []*flushOp
}

// expireOp is a pooled clean-behind timer: write schedules one per write,
// so the thunk handed to the engine must not be a fresh closure each time.
type expireOp struct {
	c     *bufferCache
	bytes int64
	fn    func() // op.run, bound once per struct
}

func (c *bufferCache) takeExpire(bytes int64) *expireOp {
	var op *expireOp
	if n := len(c.expirePool); n > 0 {
		op = c.expirePool[n-1]
		c.expirePool[n-1] = nil
		c.expirePool = c.expirePool[:n-1]
	} else {
		op = &expireOp{c: c}
		op.fn = op.run
	}
	op.bytes = bytes
	return op
}

func (op *expireOp) run() {
	c, bytes := op.c, op.bytes
	c.expirePool = append(c.expirePool, op)
	c.expire(bytes)
}

// flushOp is one pooled background write: disk index and chunk size carried
// through the device callback.
type flushOp struct {
	c     *bufferCache
	d     int
	chunk int64
	fn    func() // op.run, bound once per struct
}

func (c *bufferCache) takeFlush(d int, chunk int64) *flushOp {
	var op *flushOp
	if n := len(c.flushPool); n > 0 {
		op = c.flushPool[n-1]
		c.flushPool[n-1] = nil
		c.flushPool = c.flushPool[:n-1]
	} else {
		op = &flushOp{c: c}
		op.fn = op.run
	}
	op.d, op.chunk = d, chunk
	return op
}

func (op *flushOp) run() {
	c, d, chunk := op.c, op.d, op.chunk
	c.flushPool = append(c.flushPool, op)
	c.flushing[d] = false
	c.inFlight -= chunk
	c.pumpFlush()
	c.releaseWaiters()
}

func newBufferCache(w *Worker, capacity, dirtyLimit int64, flushDelay sim.Duration) *bufferCache {
	return &bufferCache{
		w:          w,
		capacity:   capacity,
		dirtyLimit: dirtyLimit,
		flushDelay: flushDelay,
		flushChunk: 32 << 20,
		entries:    make(map[int]*cacheEntry),
		flushing:   make([]bool, len(w.machine.Disks)),
		hardLimit:  2 * dirtyLimit,
	}
}

// write completes a buffered write: the bytes are resident (and dirty)
// immediately. Flushing is triggered by age (flushDelay) or by pressure
// (dirtyLimit), like the kernel's dirty_expire / dirty_ratio pair.
func (c *bufferCache) write(key int, bytes int64) {
	e := c.entries[key]
	if e == nil {
		e = &cacheEntry{key: key}
		c.entries[key] = e
		c.lru = append(c.lru, key)
	} else if e.resident == 0 {
		// Fully evicted earlier: the key left the LRU list and must rejoin
		// it, or its new residency could never be evicted.
		c.ensureInLRU(key)
	}
	e.resident += bytes
	e.written += bytes
	c.total += bytes
	c.dirty += bytes
	c.evict()
	if c.dirty > c.dirtyLimit {
		// Pressure writeback: everything above the limit queues now.
		over := c.dirty - c.dirtyLimit
		c.dirty -= over
		c.flushQueue += over
		c.pumpFlush()
	}
	if c.flushDelay >= 0 {
		c.w.sched.After(c.flushDelay, c.takeExpire(bytes).fn)
	}
}

// expire moves aged dirty bytes to the flush queue (clean-behind).
func (c *bufferCache) expire(bytes int64) {
	if bytes > c.dirty {
		bytes = c.dirty // already flushed under pressure
	}
	if bytes <= 0 {
		return
	}
	c.dirty -= bytes
	c.flushQueue += bytes
	c.pumpFlush()
}

// pumpFlush keeps one background write in flight per disk while the flush
// queue is non-empty. These device writes contend with task reads.
func (c *bufferCache) pumpFlush() {
	for d := range c.flushing {
		if c.flushing[d] || c.flushQueue == 0 {
			continue
		}
		chunk := c.flushChunk
		if chunk > c.flushQueue {
			chunk = c.flushQueue
		}
		c.flushQueue -= chunk
		c.inFlight += chunk
		c.flushing[d] = true
		c.w.machine.Disks[d].WriteStream(chunk, c.takeFlush(d, chunk).fn)
	}
}

// throttled reports whether writers must currently block on writeback.
func (c *bufferCache) throttled() bool {
	return c.dirtyBytes() > c.hardLimit
}

// waitWritable calls resume once unflushed bytes drop below the hard limit
// (immediately if they already are).
func (c *bufferCache) waitWritable(resume func()) {
	if !c.throttled() {
		c.w.sched.After(0, resume)
		return
	}
	c.waiters = append(c.waiters, resume)
}

// releaseWaiters wakes throttled writers FIFO while below the hard limit.
func (c *bufferCache) releaseWaiters() {
	for len(c.waiters) > 0 && !c.throttled() {
		resume := c.waiters[0]
		c.waiters[0] = nil
		c.waiters = c.waiters[1:]
		resume()
	}
}

// readHitFraction reports what fraction of a read against key is served
// from cache. Without per-reader offsets, residency is treated as uniform
// over the file: resident/written. Reads do not promote the key: shuffle
// data is read once per reducer, so the kernel's use-once heuristics let
// streaming writes push it out — which is why large on-disk shuffles end up
// reading from disk mid-stage.
func (c *bufferCache) readHitFraction(key int) float64 {
	e := c.entries[key]
	if e == nil || e.written == 0 {
		return 0
	}
	return float64(e.resident) / float64(e.written)
}

// evict drops LRU residency above capacity. Dirty bytes still reach the
// flush queue through write's accounting, so eviction affects only future
// read hits.
func (c *bufferCache) evict() {
	for c.total > c.capacity && len(c.lru) > 0 {
		key := c.lru[0]
		e := c.entries[key]
		need := c.total - c.capacity
		if e.resident > need {
			e.resident -= need
			c.total -= need
			return
		}
		c.total -= e.resident
		e.resident = 0
		c.lru = c.lru[1:]
	}
}

// ensureInLRU appends key if it is not present.
func (c *bufferCache) ensureInLRU(key int) {
	for _, k := range c.lru {
		if k == key {
			return
		}
	}
	c.lru = append(c.lru, key)
}

// dirtyBytes reports all not-yet-durable bytes (dirty + queued + issued),
// the quantity the kernel's writeback throttle watches.
func (c *bufferCache) dirtyBytes() int64 { return c.dirty + c.flushQueue + c.inFlight }
