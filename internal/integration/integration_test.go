// Package integration exercises the whole stack — workloads, driver, both
// executors, device models — and asserts the qualitative results the paper
// reports. These are the end-to-end guarantees the figure harness builds on.
package integration

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/run"
	"repro/internal/task"
	"repro/internal/units"
	"repro/internal/workloads"
)

// runSort executes a sort workload and returns its metrics plus the cluster.
func runSort(t *testing.T, machines int, spec cluster.MachineSpec, mode run.Mode, s workloads.Sort) (*cluster.Cluster, *task.JobMetrics) {
	t.Helper()
	c := cluster.MustNew(machines, spec)
	env := workloads.MustEnv(c)
	job, err := s.Build(env)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := run.Jobs(c, env.FS, run.Options{Mode: mode}, job)
	if err != nil {
		t.Fatal(err)
	}
	return c, ms[0]
}

func TestMonoSparkBeatsSparkOnSort(t *testing.T) {
	// §5.2: MonoSpark's per-resource schedulers avoid seek contention and
	// buffer-cache churn, beating Spark on the disk-heavy sort.
	s := workloads.Sort{TotalBytes: 60 * units.GB, ValuesPerKey: 10}
	_, spark := runSort(t, 5, cluster.M2_4XLarge(), run.Spark, s)
	_, mono := runSort(t, 5, cluster.M2_4XLarge(), run.Monotasks, s)
	if mono.Duration() >= spark.Duration() {
		t.Fatalf("mono %v ≥ spark %v on sort; §5.2 relationship broken",
			mono.Duration(), spark.Duration())
	}
}

func TestSparkFlushSlowerThanSpark(t *testing.T) {
	// Fig. 5: forcing Spark to pay for its writes slows it down.
	s := workloads.Sort{TotalBytes: 30 * units.GB, ValuesPerKey: 10}
	_, spark := runSort(t, 5, cluster.M2_4XLarge(), run.Spark, s)
	_, flush := runSort(t, 5, cluster.M2_4XLarge(), run.SparkWriteThrough, s)
	if flush.Duration() <= spark.Duration() {
		t.Fatalf("flushed spark %v ≤ spark %v; buffer-cache advantage missing",
			flush.Duration(), spark.Duration())
	}
}

func TestMonoRuntimeNearIdealOnDiskBoundStage(t *testing.T) {
	// The §6.1 model: a disk-bound map stage's runtime should approach its
	// ideal disk time (sum of bytes / aggregate bandwidth).
	s := workloads.Sort{TotalBytes: 60 * units.GB, ValuesPerKey: 50}
	c, mono := runSort(t, 5, cluster.M2_4XLarge(), run.Monotasks, s)
	p := model.FromMetrics(mono, model.ClusterResources(c))
	st := p.Stages[0]
	ideal := st.ModelTime(model.ClusterResources(c), nil)
	if st.ActualSeconds < ideal {
		t.Fatalf("actual %v below ideal %v: model denominators wrong", st.ActualSeconds, ideal)
	}
	if st.ActualSeconds > 1.6*ideal {
		t.Fatalf("map stage %.1fs vs ideal %.1fs: > 60%% overhead", st.ActualSeconds, ideal)
	}
}

func TestDiskRemovalPredictionAccuracy(t *testing.T) {
	// Fig. 12's mechanism end to end: predict halving disk bandwidth from a
	// 2-HDD run, then measure a 1-HDD run.
	s := workloads.Sort{TotalBytes: 30 * units.GB, ValuesPerKey: 50}
	c2, base := runSort(t, 5, cluster.M2_4XLarge(), run.Monotasks, s)
	profile := model.FromMetrics(base, model.ClusterResources(c2))
	pred := model.Predict(profile, model.ScaleDiskBW(0.5))

	one := cluster.M2_4XLarge()
	one.Disks = one.Disks[:1]
	_, after := runSort(t, 5, one, run.Monotasks, s)
	actual := float64(after.Duration())
	err := (pred.PredictedSeconds - actual) / actual
	if err < -0.3 || err > 0.3 {
		t.Fatalf("prediction error %.1f%% exceeds 30%%", err*100)
	}
}

func TestMonotaskMetricsConserveWorkloadVolumes(t *testing.T) {
	// Every byte the workload specifies must appear in monotask metrics:
	// input reads, shuffle writes, shuffle reads, output writes.
	s := workloads.Sort{TotalBytes: 10 * units.GB, ValuesPerKey: 10}
	c, mono := runSort(t, 4, cluster.M2_4XLarge(), run.Monotasks, s)
	_ = c
	mapStage, reduceStage := mono.Stages[0], mono.Stages[1]
	total := int64(10 * units.GB)
	slack := total / 100 // integer division across tasks
	checks := []struct {
		name string
		got  int64
	}{
		{"input reads", mapStage.MonotaskBytes(task.DiskResource, task.KindInputRead)},
		{"shuffle writes", mapStage.MonotaskBytes(task.DiskResource, task.KindShuffleWrite)},
		{"output writes", reduceStage.MonotaskBytes(task.DiskResource, task.KindOutputWrite)},
	}
	for _, ck := range checks {
		if ck.got < total-slack || ck.got > total+slack {
			t.Errorf("%s moved %d bytes, want ≈%d", ck.name, ck.got, total)
		}
	}
	// Shuffle reads split between local disk reads and remote serves + net.
	shuffleReads := reduceStage.MonotaskBytes(task.DiskResource, task.KindShuffleServeRead)
	if shuffleReads < total-slack {
		t.Errorf("shuffle reads moved %d bytes, want ≈%d", shuffleReads, total)
	}
	netBytes := reduceStage.MonotaskBytes(task.NetworkResource, task.KindNetFetch)
	// 3 of 4 machines' data is remote.
	if netBytes < total/2 {
		t.Errorf("network moved %d bytes, want ≥ %d (≈3/4 of shuffle)", netBytes, total/2)
	}
}

func TestBDBMonoWithinPaperEnvelope(t *testing.T) {
	// Fig. 5's envelope: MonoSpark within −25%…+10% of Spark for every
	// query except q1c (large output), which may be up to 60% slower.
	for _, q := range workloads.BDBQueryNames() {
		var dur [2]float64
		for i, mode := range []run.Mode{run.Spark, run.Monotasks} {
			c := cluster.MustNew(5, cluster.M2_4XLarge())
			env := workloads.MustEnv(c)
			job, err := workloads.BDBQuery(q, env)
			if err != nil {
				t.Fatal(err)
			}
			ms, err := run.Jobs(c, env.FS, run.Options{Mode: mode}, job)
			if err != nil {
				t.Fatal(err)
			}
			dur[i] = float64(ms[0].Duration())
		}
		ratio := dur[1] / dur[0]
		hi := 1.10
		if q == "1c" {
			hi = 1.60
		}
		if ratio < 0.70 || ratio > hi {
			t.Errorf("q%s: mono/spark = %.2f outside [0.70, %.2f]", q, ratio, hi)
		}
	}
}

func TestMLWorkloadParity(t *testing.T) {
	// Fig. 7: the in-memory, network-heavy ML workload runs on par.
	var dur [2]float64
	for i, mode := range []run.Mode{run.Spark, run.Monotasks} {
		c := cluster.MustNew(15, cluster.I2_2XLarge(2))
		env := workloads.MustEnv(c)
		job, err := workloads.LeastSquares{}.Build(env)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := run.Jobs(c, env.FS, run.Options{Mode: mode}, job)
		if err != nil {
			t.Fatal(err)
		}
		dur[i] = float64(ms[0].Duration())
	}
	ratio := dur[1] / dur[0]
	if ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("ML mono/spark = %.2f outside [0.7, 1.3]", ratio)
	}
}

func TestUtilizationOscillatesUnderSparkOnly(t *testing.T) {
	// Fig. 2 vs Fig. 9: Spark's map-stage utilization swings between CPU
	// and disk; MonoSpark keeps the bottleneck busier.
	s := workloads.Sort{TotalBytes: 60 * units.GB, ValuesPerKey: 10}
	cS, sparkM := runSort(t, 5, cluster.M2_4XLarge(), run.Spark, s)
	cM, monoM := runSort(t, 5, cluster.M2_4XLarge(), run.Monotasks, s)
	stS, stM := sparkM.Stages[0], monoM.Stages[0]
	mean := func(xs []float64) float64 {
		var sum float64
		for _, v := range xs {
			sum += v
		}
		return sum / float64(len(xs))
	}
	sparkDisk := mean(metrics.UtilSamples(cS, metrics.Disk, stS.Start, stS.End, 20))
	monoDisk := mean(metrics.UtilSamples(cM, metrics.Disk, stM.Start, stM.End, 20))
	if monoDisk <= sparkDisk-0.05 {
		t.Fatalf("mono disk util %.2f well below spark %.2f on a disk-bound stage", monoDisk, sparkDisk)
	}
}

func TestDeterministicEndToEnd(t *testing.T) {
	runOnce := func() float64 {
		s := workloads.Sort{TotalBytes: 20 * units.GB, ValuesPerKey: 10}
		_, m := runSort(t, 4, cluster.M2_4XLarge(), run.Monotasks, s)
		return float64(m.Duration())
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("end-to-end nondeterminism: %v vs %v", a, b)
	}
}

func TestFailureRecoveryEndToEnd(t *testing.T) {
	// A full sort with replicated input survives losing a machine mid-run
	// under both executors, and the answer-bearing metrics stay complete.
	for _, mode := range []run.Mode{run.Monotasks, run.Spark} {
		c := cluster.MustNew(5, cluster.M2_4XLarge())
		env := workloads.MustEnv(c)
		job, err := workloads.Sort{TotalBytes: 30 * units.GB, ValuesPerKey: 25, InputReplication: 2}.Build(env)
		if err != nil {
			t.Fatal(err)
		}
		d, err := run.Driver(c, env.FS, run.Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		h, err := d.Submit(job)
		if err != nil {
			t.Fatal(err)
		}
		c.Engine.At(20, func() {
			if err := d.FailMachine(1); err != nil {
				t.Error(err)
			}
		})
		ms := d.Run()
		if !h.Done() {
			t.Fatalf("%v: job incomplete after failure", mode)
		}
		for si, st := range ms[0].Stages {
			for ti, tm := range st.Tasks {
				if tm == nil {
					t.Fatalf("%v: stage %d task %d missing metrics", mode, si, ti)
				}
			}
		}
	}
}

func TestConcurrentJobsWithFailure(t *testing.T) {
	// Two concurrent jobs; a failure mid-run must not cross-contaminate
	// their recovery.
	c := cluster.MustNew(4, cluster.M2_4XLarge())
	env := workloads.MustEnv(c)
	jobA, _ := workloads.Sort{Name: "a", TotalBytes: 20 * units.GB, ValuesPerKey: 10, InputReplication: 2}.Build(env)
	jobB, _ := workloads.Sort{Name: "b", TotalBytes: 20 * units.GB, ValuesPerKey: 50, InputReplication: 2}.Build(env)
	d, err := run.Driver(c, env.FS, run.Options{Mode: run.Monotasks})
	if err != nil {
		t.Fatal(err)
	}
	ha, _ := d.Submit(jobA)
	hb, _ := d.Submit(jobB)
	c.Engine.At(15, func() {
		if err := d.FailMachine(3); err != nil {
			t.Error(err)
		}
	})
	d.Run()
	if !ha.Done() || !hb.Done() {
		t.Fatal("a concurrent job did not recover from the shared failure")
	}
}
