package whatifsvc

import (
	"container/list"
	"sync"
)

// memoCache is a bounded LRU over rendered response bodies, keyed by request
// fingerprint. It stores the exact bytes that were sent, so a hit is
// byte-identical to the fresh run by construction — and because the
// simulator is deterministic, also byte-identical to what a fresh run would
// produce now. Hits are served before admission, which makes the memo an
// overload valve: repeated questions cost nothing even while the cluster of
// simulation slots is saturated.
type memoCache struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	lru *list.List // front = most recent
}

type memoEntry struct {
	key  string
	body []byte
}

func newMemo(capacity int) *memoCache {
	if capacity <= 0 {
		capacity = 256
	}
	return &memoCache{cap: capacity, m: make(map[string]*list.Element), lru: list.New()}
}

// Get returns the memoized body for key, or nil.
func (c *memoCache) Get(key string) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil
	}
	c.lru.MoveToFront(el)
	return el.Value.(*memoEntry).body
}

// Put stores body under key, evicting the least-recently-used entry when
// over capacity. The caller must not mutate body afterwards.
func (c *memoCache) Put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*memoEntry).body = body
		c.lru.MoveToFront(el)
		return
	}
	c.m[key] = c.lru.PushFront(&memoEntry{key: key, body: body})
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.m, back.Value.(*memoEntry).key)
	}
}

// Len reports the number of memoized responses.
func (c *memoCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
