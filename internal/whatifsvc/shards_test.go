package whatifsvc

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestServiceReportsEffectiveShards pins the operator-visibility contract
// for engine modes: Shards is excluded from the memo fingerprint (requests
// differing only there share a memo entry and a byte-identical body), so
// the engine mode that served a request must travel out of band — the
// X-Whatif-Shards header on fresh runs, and per-mode counters on /stats.
func TestServiceReportsEffectiveShards(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	// Fresh serial run.
	resp, serialBody := post(t, ts, sortRequest(``))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("serial run: %d %s", resp.StatusCode, serialBody)
	}
	if got := resp.Header.Get("X-Whatif-Shards"); got != "serial" {
		t.Fatalf("serial run X-Whatif-Shards = %q, want \"serial\"", got)
	}

	// Same question at shards 2: a memo hit (shards is not fingerprinted),
	// so the body must be byte-identical and no engine mode is claimed.
	resp, shardBody := post(t, ts, sortRequest(`, "shards": 2`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sharded ask: %d %s", resp.StatusCode, shardBody)
	}
	if resp.Header.Get("X-Whatif-Memo") != "hit" {
		t.Fatal("shards-only variation missed the memo; fingerprint regressed")
	}
	if string(serialBody) != string(shardBody) {
		t.Fatal("memoized body differs between serial and sharded asks")
	}

	// A genuinely different question at shards 2 runs the sharded engine.
	resp, b := post(t, ts, `{
		"workload": {"kind": "sort", "total_mb": 48, "values_per_key": 10},
		"cluster": {"machines": 2},
		"shards": 2
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sharded run: %d %s", resp.StatusCode, b)
	}
	if got := resp.Header.Get("X-Whatif-Shards"); got != "2" {
		t.Fatalf("sharded run X-Whatif-Shards = %q, want \"2\"", got)
	}
	var out map[string]any
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if _, leaked := out["EffectiveShards"]; leaked {
		t.Fatal("EffectiveShards leaked into the memoizable body")
	}

	// /stats buckets the two completed sessions by engine mode.
	sresp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats struct {
		ShardRuns map[string]int64 `json:"shard_runs"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.ShardRuns["serial"] != 1 || stats.ShardRuns["2"] != 1 {
		t.Fatalf("shard_runs = %v, want serial:1 and 2:1", stats.ShardRuns)
	}
}
