package whatifsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestOverloadChaosStorm is the service's survival exam: many tenants posting
// concurrently, a deliberately tiny slot pool and queue, and a traffic mix of
// honest questions, repeats (memo pressure), malformed bodies, panicking
// sessions, and requests with hopeless deadlines. The service must answer
// every request with a sane status, shed predictably with 429 when queues
// fill, keep admission latency bounded, and still be healthy afterwards.
// Run it under -race: the admission gate, memo, and per-request sessions all
// interleave here.
func TestOverloadChaosStorm(t *testing.T) {
	svc := New(Config{MaxConcurrent: 2, QueueDepth: 2, Chaos: true})
	ts := httptest.NewServer(svc)
	defer ts.Close()

	goodBody := func(tenant string, mb int) string {
		return fmt.Sprintf(`{
			"tenant": %q,
			"workload": {"kind": "wordcount", "total_mb": %d, "reduce_tasks": 8},
			"cluster": {"machines": 2}
		}`, tenant, mb)
	}
	requests := make([]string, 0, 64)
	for i := 0; i < 8; i++ {
		tenant := fmt.Sprintf("tenant-%d", i%4)
		requests = append(requests,
			goodBody(tenant, 8+i),              // distinct questions
			goodBody(tenant, 8),                // repeated question (memo)
			`{"broken json`,                    // malformed
			`{"workload": {"kind": "chaos-panic"}, "cluster": {"machines": 1}, "tenant": "`+tenant+`"}`, // panics in-session
			fmt.Sprintf(`{
				"tenant": %q,
				"workload": {"kind": "sort", "total_mb": 2048, "values_per_key": 1, "jobs": 4},
				"cluster": {"machines": 16},
				"deadline_ms": 1
			}`, tenant), // hopeless deadline
			`{"workload": {"kind": "sort", "total_mb": -1}, "cluster": {"machines": 1}}`, // invalid bounds
		)
	}

	type result struct {
		status int
		body   []byte
	}
	results := make([]result, len(requests))
	var wg sync.WaitGroup
	for i, body := range requests {
		wg.Add(1)
		go func(i int, body string) {
			defer wg.Done()
			resp, err := ts.Client().Post(ts.URL+"/whatif", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("request %d: transport error (server died?): %v", i, err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			results[i] = result{resp.StatusCode, buf.Bytes()}
		}(i, body)
	}
	wg.Wait()

	counts := map[int]int{}
	for i, r := range results {
		switch r.status {
		case http.StatusOK, http.StatusBadRequest, http.StatusTooManyRequests,
			http.StatusInternalServerError, http.StatusGatewayTimeout:
			counts[r.status]++
		default:
			t.Errorf("request %d: unexpected status %d: %s", i, r.status, r.body)
		}
		// Every response, success or failure, is structured JSON.
		if !json.Valid(r.body) {
			t.Errorf("request %d: non-JSON body: %q", i, r.body)
		}
		if r.status == http.StatusTooManyRequests {
			var eb errorBody
			if json.Unmarshal(r.body, &eb) != nil || eb.RetryAfterSeconds < 1 {
				t.Errorf("429 without a usable retry hint: %s", r.body)
			}
		}
	}
	t.Logf("status mix under storm: %v", counts)
	if counts[http.StatusOK] == 0 {
		t.Error("no request succeeded under load")
	}
	if counts[http.StatusBadRequest] == 0 {
		t.Error("malformed requests not rejected")
	}
	if counts[http.StatusInternalServerError] == 0 {
		t.Error("chaos sessions produced no isolated 500s")
	}

	// The server survived: health endpoint up, a fresh question answered,
	// and admission latency still bounded.
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("server unhealthy after storm: %v %v", err, resp)
	}
	resp.Body.Close()
	resp, err = ts.Client().Post(ts.URL+"/whatif", "application/json", strings.NewReader(goodBody("after", 12)))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("post-storm request failed: %v %v", err, resp)
	}
	resp.Body.Close()
	if p99 := svc.adm.P99Latency(); p99.Seconds() > 60 {
		t.Fatalf("p99 admission latency unbounded: %v", p99)
	}
}

// TestOverloadShedsWith429 drives one tenant hard enough to fill its queue
// and checks the service sheds instead of queueing without bound. The single
// simulation slot is held by the test for the whole burst (simulations can
// finish faster than HTTP requests arrive, which would let every request
// sneak through serially), so exactly queueDepth requests may queue and the
// rest must shed.
func TestOverloadShedsWith429(t *testing.T) {
	svc := New(Config{MaxConcurrent: 1, QueueDepth: 1})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	release, err := svc.adm.Acquire(context.Background(), "squatter")
	if err != nil {
		t.Fatal(err)
	}
	// Distinct questions so the memo cannot absorb them.
	body := func(i int) string {
		return fmt.Sprintf(`{
			"tenant": "hammer",
			"workload": {"kind": "sort", "total_mb": %d, "values_per_key": 4},
			"cluster": {"machines": 4}
		}`, 256+i)
	}
	const n = 12
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := ts.Client().Post(ts.URL+"/whatif", "application/json", strings.NewReader(body(i)))
			if err != nil {
				t.Errorf("request %d died: %v", i, err)
				return
			}
			statuses[i] = resp.StatusCode
			if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
				t.Errorf("429 without Retry-After header")
			}
			resp.Body.Close()
		}(i)
	}
	// Hold the slot until the burst has resolved into one queued waiter and
	// eleven sheds, then let the queued request run.
	for deadline := time.Now().Add(10 * time.Second); ; {
		_, waiting, shed := svc.adm.Stats()
		if waiting+int(shed) >= n-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("burst never resolved: waiting=%d shed=%d", waiting, shed)
		}
		time.Sleep(time.Millisecond)
	}
	release()
	wg.Wait()
	shed, ok := 0, 0
	for _, s := range statuses {
		switch s {
		case http.StatusTooManyRequests:
			shed++
		case http.StatusOK:
			ok++
		}
	}
	if shed == 0 {
		t.Fatalf("12 concurrent asks on a 1-slot/1-deep server shed nothing: %v", statuses)
	}
	if ok == 0 {
		t.Fatalf("nothing succeeded either: %v", statuses)
	}
}
