package whatifsvc

import (
	"strings"
	"testing"
)

func validRequestJSON() string {
	return `{
		"tenant": "alice",
		"workload": {"kind": "sort", "total_mb": 64, "values_per_key": 10},
		"cluster": {"machines": 2},
		"whatifs": [{"kind": "scale_disk", "factor": 2}]
	}`
}

func TestDecodeRequestStrict(t *testing.T) {
	cases := []struct {
		name string
		body string
		ok   bool
	}{
		{"valid", validRequestJSON(), true},
		{"empty", ``, false},
		{"not json", `hello`, false},
		{"unknown field", `{"workload": {"kind": "sort", "total_mb": 1}, "cluster": {"machines": 1}, "bogus": 1}`, false},
		{"trailing data", validRequestJSON() + `{"second": "object"}`, false},
		{"wrong type", `{"workload": "sort"}`, false},
		{"oversized", `{"tenant": "` + strings.Repeat("x", MaxBodyBytes) + `"}`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeRequest(strings.NewReader(tc.body))
			if (err == nil) != tc.ok {
				t.Fatalf("DecodeRequest(%s): err=%v, want ok=%v", tc.name, err, tc.ok)
			}
		})
	}
}

func TestValidateBounds(t *testing.T) {
	base := func() *Request {
		return &Request{
			Workload: WorkloadSpec{Kind: "sort", TotalMB: 64},
			Cluster:  ClusterSpec{Machines: 2},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Request)
		ok     bool
	}{
		{"base", func(r *Request) {}, true},
		{"unknown workload", func(r *Request) { r.Workload.Kind = "teragen" }, false},
		{"zero bytes", func(r *Request) { r.Workload.TotalMB = 0 }, false},
		{"huge input", func(r *Request) { r.Workload.TotalMB = MaxWorkloadMB + 1 }, false},
		{"too many jobs", func(r *Request) { r.Workload.Jobs = MaxJobs + 1 }, false},
		{"negative tasks", func(r *Request) { r.Workload.MapTasks = -4 }, false},
		{"zero machines", func(r *Request) { r.Cluster.Machines = 0 }, false},
		{"too many machines", func(r *Request) { r.Cluster.Machines = MaxMachines + 1 }, false},
		{"bad hardware", func(r *Request) { r.Cluster.Hardware = "quantum" }, false},
		{"degraded without count", func(r *Request) { r.Cluster.Degraded = 0.5 }, false},
		{"degraded over 1", func(r *Request) { r.Cluster.Degraded = 1.5; r.Cluster.DegradedMachines = 1 }, false},
		{"degraded ok", func(r *Request) { r.Cluster.Degraded = 0.5; r.Cluster.DegradedMachines = 1 }, true},
		{"bad whatif kind", func(r *Request) { r.WhatIfs = []WhatIfSpec{{Kind: "warp"}} }, false},
		{"zero factor", func(r *Request) { r.WhatIfs = []WhatIfSpec{{Kind: "scale_disk"}} }, false},
		{"bad resource", func(r *Request) { r.WhatIfs = []WhatIfSpec{{Kind: "infinitely_fast", Resource: "gpu"}} }, false},
		{"negative deadline", func(r *Request) { r.DeadlineMillis = -1 }, false},
		{"negative virtual deadline", func(r *Request) { r.VirtualDeadlineSeconds = -1 }, false},
		{"shuffle over 1", func(r *Request) { r.Workload.Kind = "wordcount"; r.Workload.ShuffleFraction = 2 }, false},
		{"chaos denied", func(r *Request) { r.Workload.Kind = ChaosKind }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := base()
			tc.mutate(r)
			err := r.Validate(false)
			if (err == nil) != tc.ok {
				t.Fatalf("Validate: err=%v, want ok=%v", err, tc.ok)
			}
		})
	}
	// Chaos flips only under the flag.
	r := base()
	r.Workload.Kind = ChaosKind
	if err := r.Validate(true); err != nil {
		t.Fatalf("chaos workload rejected with chaos enabled: %v", err)
	}
}

func TestFingerprintSemantics(t *testing.T) {
	base := func() *Request {
		r, err := DecodeRequest(strings.NewReader(validRequestJSON()))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := base(), base()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical requests fingerprint differently")
	}
	// Admission-only fields do not split the memo.
	b.Tenant = "bob"
	b.DeadlineMillis = 5000
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("tenant/wall-budget changed the fingerprint")
	}
	// Anything that shapes the response body must split it.
	for name, mutate := range map[string]func(*Request){
		"workload kind":    func(r *Request) { r.Workload.Kind = "wordcount" },
		"size":             func(r *Request) { r.Workload.TotalMB = 65 },
		"machines":         func(r *Request) { r.Cluster.Machines = 3 },
		"whatif factor":    func(r *Request) { r.WhatIfs[0].Factor = 3 },
		"whatif dropped":   func(r *Request) { r.WhatIfs = nil },
		"virtual deadline": func(r *Request) { r.VirtualDeadlineSeconds = 2 },
		"telemetry":        func(r *Request) { r.Telemetry = true },
	} {
		m := base()
		mutate(m)
		if m.Fingerprint() == a.Fingerprint() {
			t.Fatalf("%s change did not change the fingerprint", name)
		}
	}
	// Field-boundary confusion: a value moving between adjacent string
	// fields must not collide (length-prefixed encoding).
	x := base()
	x.Workload.Kind = "sortab"
	y := base()
	y.Workload.Kind = "sort"
	y.Cluster.Hardware = "ab"
	if x.Fingerprint() == y.Fingerprint() {
		t.Fatal("string fields concatenate ambiguously")
	}
}

// FuzzDecodeRequest: the decoder must never panic, and anything it accepts
// must survive Validate and fingerprint deterministically.
func FuzzDecodeRequest(f *testing.F) {
	f.Add(validRequestJSON())
	f.Add(`{}`)
	f.Add(`{"workload":{"kind":"wordcount","total_mb":1},"cluster":{"machines":1}}`)
	f.Add(`{"workload":{"kind":"sort","total_mb":-5},"cluster":{"machines":1e9}}`)
	f.Add(`[1,2,3]`)
	f.Add(`null`)
	f.Add("\x00\xff\xfe")
	f.Fuzz(func(t *testing.T, body string) {
		req, err := DecodeRequest(strings.NewReader(body))
		if err != nil {
			return
		}
		_ = req.Validate(false)
		_ = req.Validate(true)
		if req.Fingerprint() != req.Fingerprint() {
			t.Fatal("fingerprint not deterministic")
		}
	})
}
