// Package whatifsvc is the overload-safe what-if service: it answers posted
// performance questions ("how long would this workload take on that cluster,
// and what would change if the disks were twice as fast?") by running the
// monotask simulator and the §6 performance model on a per-request virtual
// cluster. The package is engineered robustness-first: strict bounded request
// decoding, weighted fair-share admission with backpressure, per-request
// deadlines riding the engine's cooperative-cancellation check, panic
// isolation per session, and whole-run memoization keyed by a structural
// fingerprint of the question.
package whatifsvc

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Limits bound every numeric knob a request can turn. They exist so one
// tenant cannot ask for a simulation large enough to starve everyone else;
// oversized requests are rejected at validation, before admission.
const (
	MaxMachines     = 64
	MaxWorkloadMB   = 64 << 10 // 64 GB of simulated input
	MaxJobs         = 8
	MaxTasksPerWave = 4096
	MaxWhatIfs      = 16
	// MaxBodyBytes caps the request body read; DecodeRequest refuses larger.
	MaxBodyBytes = 64 << 10
)

// WorkloadSpec picks and parameterizes one of the paper's workloads. Zero
// fields take the workload's defaults (documented in internal/workloads).
type WorkloadSpec struct {
	// Kind is "sort", "wordcount", or "readcompute".
	Kind string `json:"kind"`
	// TotalMB is the simulated input size in megabytes.
	TotalMB int64 `json:"total_mb"`
	// Jobs is how many identical copies run concurrently (default 1); with
	// more than one, the response's attribution ranks their contention.
	Jobs int `json:"jobs,omitempty"`

	// Sort knobs.
	ValuesPerKey  int  `json:"values_per_key,omitempty"`
	MapTasks      int  `json:"map_tasks,omitempty"`
	ReduceTasks   int  `json:"reduce_tasks,omitempty"`
	InMemoryInput bool `json:"in_memory_input,omitempty"`

	// WordCount knobs.
	ShuffleFraction float64 `json:"shuffle_fraction,omitempty"`
	OutputFraction  float64 `json:"output_fraction,omitempty"`

	// ReadCompute knobs.
	NumTasks   int     `json:"num_tasks,omitempty"`
	CPUPerByte float64 `json:"cpu_per_byte,omitempty"`
}

// ClusterSpec describes the virtual cluster the question runs on.
type ClusterSpec struct {
	Machines int `json:"machines"`
	// Hardware is "hdd" (the paper's m2.4xlarge), "ssd", or "ssd2" (one or
	// two SSDs per machine). Default "hdd".
	Hardware string `json:"hardware,omitempty"`
	// Degraded slows DegradedMachines of the cluster to this speed factor
	// (0 < f < 1) — the straggler knob.
	Degraded         float64 `json:"degraded,omitempty"`
	DegradedMachines int     `json:"degraded_machines,omitempty"`
}

// WhatIfSpec is one hypothetical change to evaluate against the run.
type WhatIfSpec struct {
	// Kind is "scale_disk", "set_disk_bw", "scale_cluster", "scale_net",
	// "in_memory_input", or "infinitely_fast".
	Kind string `json:"kind"`
	// Factor parameterizes the scaling kinds (set_disk_bw reads it as
	// bytes/second).
	Factor float64 `json:"factor,omitempty"`
	// Resource names the resource for "infinitely_fast": "cpu", "disk", or
	// "network".
	Resource string `json:"resource,omitempty"`
}

// Request is one posted what-if question.
type Request struct {
	// Tenant names the requester for fair-share admission (default "anon").
	Tenant   string       `json:"tenant,omitempty"`
	Workload WorkloadSpec `json:"workload"`
	Cluster  ClusterSpec  `json:"cluster"`
	WhatIfs  []WhatIfSpec `json:"whatifs,omitempty"`
	// DeadlineMillis caps this request's wall-clock budget. The server clamps
	// it to its configured ceiling; zero means "the server's default".
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
	// VirtualDeadlineSeconds bounds the simulation in virtual time: the run
	// aborts cleanly once the simulated clock passes it, and the response
	// reports the partial window with aborted=true. Zero means unbounded.
	VirtualDeadlineSeconds float64 `json:"virtual_deadline_s,omitempty"`
	// Telemetry asks for a summary of live utilization snapshots.
	Telemetry bool `json:"telemetry,omitempty"`
	// Shards, when above 1, runs the request's simulation on the sharded
	// engine (that many shards, clamped to the machine count). Execution
	// strategy only: responses are byte-identical at any value, so the memo
	// fingerprint deliberately ignores it.
	Shards int `json:"shards,omitempty"`
}

// ChaosKind is the workload kind that deliberately panics inside the
// session. It is accepted only when the service runs with Config.Chaos and
// exists to prove panic isolation under test and in staging.
const ChaosKind = "chaos-panic"

// DecodeRequest reads one JSON request from r, strictly: unknown fields,
// trailing data, and bodies over MaxBodyBytes are all errors. It never
// panics on any input.
func DecodeRequest(r io.Reader) (*Request, error) {
	lr := io.LimitReader(r, MaxBodyBytes+1)
	data, err := io.ReadAll(lr)
	if err != nil {
		return nil, fmt.Errorf("whatifsvc: reading request: %w", err)
	}
	if int64(len(data)) > MaxBodyBytes {
		return nil, fmt.Errorf("whatifsvc: request body over %d bytes", MaxBodyBytes)
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("whatifsvc: malformed request: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return nil, fmt.Errorf("whatifsvc: trailing data after request object")
	}
	return &req, nil
}

// Validate bounds-checks the request. chaosAllowed admits the deliberately
// panicking ChaosKind workload (test/staging only).
func (r *Request) Validate(chaosAllowed bool) error {
	w := &r.Workload
	switch w.Kind {
	case "sort", "wordcount", "readcompute":
	case ChaosKind:
		if !chaosAllowed {
			return fmt.Errorf("whatifsvc: workload kind %q not enabled on this server", w.Kind)
		}
		return nil
	default:
		return fmt.Errorf("whatifsvc: unknown workload kind %q (want sort, wordcount, or readcompute)", w.Kind)
	}
	if w.TotalMB <= 0 || w.TotalMB > MaxWorkloadMB {
		return fmt.Errorf("whatifsvc: total_mb %d outside (0, %d]", w.TotalMB, MaxWorkloadMB)
	}
	if w.Jobs < 0 || w.Jobs > MaxJobs {
		return fmt.Errorf("whatifsvc: jobs %d outside [0, %d]", w.Jobs, MaxJobs)
	}
	for name, v := range map[string]int{
		"values_per_key": w.ValuesPerKey, "map_tasks": w.MapTasks,
		"reduce_tasks": w.ReduceTasks, "num_tasks": w.NumTasks,
	} {
		if v < 0 || v > MaxTasksPerWave {
			return fmt.Errorf("whatifsvc: %s %d outside [0, %d]", name, v, MaxTasksPerWave)
		}
	}
	for name, v := range map[string]float64{
		"shuffle_fraction": w.ShuffleFraction, "output_fraction": w.OutputFraction,
	} {
		if v < 0 || v > 1 {
			return fmt.Errorf("whatifsvc: %s %v outside [0, 1]", name, v)
		}
	}
	if w.CPUPerByte < 0 || w.CPUPerByte > 1e-3 {
		return fmt.Errorf("whatifsvc: cpu_per_byte %v outside [0, 1e-3]", w.CPUPerByte)
	}

	c := &r.Cluster
	if c.Machines <= 0 || c.Machines > MaxMachines {
		return fmt.Errorf("whatifsvc: machines %d outside (0, %d]", c.Machines, MaxMachines)
	}
	switch c.Hardware {
	case "", "hdd", "ssd", "ssd2":
	default:
		return fmt.Errorf("whatifsvc: unknown hardware %q (want hdd, ssd, or ssd2)", c.Hardware)
	}
	if c.Degraded < 0 || c.Degraded >= 1 {
		if c.Degraded != 0 {
			return fmt.Errorf("whatifsvc: degraded factor %v outside (0, 1)", c.Degraded)
		}
	}
	if c.DegradedMachines < 0 || c.DegradedMachines > c.Machines {
		return fmt.Errorf("whatifsvc: degraded_machines %d outside [0, machines]", c.DegradedMachines)
	}
	if (c.Degraded > 0) != (c.DegradedMachines > 0) {
		return fmt.Errorf("whatifsvc: degraded and degraded_machines must be set together")
	}

	if len(r.WhatIfs) > MaxWhatIfs {
		return fmt.Errorf("whatifsvc: %d what-ifs over the limit %d", len(r.WhatIfs), MaxWhatIfs)
	}
	for i, wi := range r.WhatIfs {
		switch wi.Kind {
		case "scale_disk", "scale_cluster", "scale_net":
			if wi.Factor <= 0 || wi.Factor > 1024 {
				return fmt.Errorf("whatifsvc: whatif %d: factor %v outside (0, 1024]", i, wi.Factor)
			}
		case "set_disk_bw":
			if wi.Factor <= 0 || wi.Factor > 1e12 {
				return fmt.Errorf("whatifsvc: whatif %d: disk bandwidth %v outside (0, 1e12] B/s", i, wi.Factor)
			}
		case "in_memory_input":
		case "infinitely_fast":
			switch wi.Resource {
			case "cpu", "disk", "network":
			default:
				return fmt.Errorf("whatifsvc: whatif %d: unknown resource %q", i, wi.Resource)
			}
		default:
			return fmt.Errorf("whatifsvc: whatif %d: unknown kind %q", i, wi.Kind)
		}
	}

	if r.Shards < 0 || r.Shards > MaxMachines {
		return fmt.Errorf("whatifsvc: shards %d outside [0, %d]", r.Shards, MaxMachines)
	}
	if r.DeadlineMillis < 0 {
		return fmt.Errorf("whatifsvc: deadline_ms %d is negative", r.DeadlineMillis)
	}
	if r.VirtualDeadlineSeconds < 0 {
		return fmt.Errorf("whatifsvc: virtual_deadline_s %v is negative", r.VirtualDeadlineSeconds)
	}
	return nil
}

// Fingerprint canonicalizes everything that determines the response body —
// workload, cluster, what-ifs, the virtual deadline, and the telemetry flag
// — into a stable hash. Tenant, the wall-clock budget, and the shard count
// are deliberately excluded: the first two shape admission, not results, and
// sharding is an execution strategy with byte-identical output at any shard
// count (TestGoldenShardedVsSerial), so requests differing only there share
// a memo entry. The simulator is deterministic (no seed), which
// is what makes whole-run memoization sound: equal fingerprints imply
// byte-identical bodies.
func (r *Request) Fingerprint() string {
	var b []byte
	appendInt := func(v int64) {
		b = strconv.AppendInt(b, v, 10)
		b = append(b, '|')
	}
	appendFloat := func(v float64) {
		b = strconv.AppendFloat(b, v, 'g', -1, 64)
		b = append(b, '|')
	}
	appendStr := func(s string) {
		appendInt(int64(len(s)))
		b = append(b, s...)
		b = append(b, '|')
	}
	w := &r.Workload
	appendStr(w.Kind)
	appendInt(w.TotalMB)
	appendInt(int64(w.Jobs))
	appendInt(int64(w.ValuesPerKey))
	appendInt(int64(w.MapTasks))
	appendInt(int64(w.ReduceTasks))
	if w.InMemoryInput {
		appendInt(1)
	} else {
		appendInt(0)
	}
	appendFloat(w.ShuffleFraction)
	appendFloat(w.OutputFraction)
	appendInt(int64(w.NumTasks))
	appendFloat(w.CPUPerByte)
	c := &r.Cluster
	appendInt(int64(c.Machines))
	appendStr(c.Hardware)
	appendFloat(c.Degraded)
	appendInt(int64(c.DegradedMachines))
	appendInt(int64(len(r.WhatIfs)))
	for _, wi := range r.WhatIfs {
		appendStr(wi.Kind)
		appendFloat(wi.Factor)
		appendStr(wi.Resource)
	}
	appendFloat(r.VirtualDeadlineSeconds)
	if r.Telemetry {
		appendInt(1)
	} else {
		appendInt(0)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
