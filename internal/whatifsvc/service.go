package whatifsvc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes the service. Zero values take the documented defaults.
type Config struct {
	// MaxConcurrent is the simulation slot pool size (default 4).
	MaxConcurrent int
	// QueueDepth bounds each tenant's admission queue (default 8); a full
	// queue sheds with 429.
	QueueDepth int
	// MaxDeadline is the ceiling on per-request wall budgets (default 30s).
	// Requests asking for more are clamped; requests asking for nothing get
	// DefaultDeadline.
	MaxDeadline time.Duration
	// DefaultDeadline applies when a request names no budget (default
	// MaxDeadline).
	DefaultDeadline time.Duration
	// MemoEntries bounds the response memo (default 256).
	MemoEntries int
	// TenantWeights sets fair-share weights by tenant name (default 1 each).
	TenantWeights map[string]float64
	// Chaos admits the deliberately panicking ChaosKind workload — test and
	// staging only.
	Chaos bool
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 30 * time.Second
	}
	if c.DefaultDeadline <= 0 || c.DefaultDeadline > c.MaxDeadline {
		c.DefaultDeadline = c.MaxDeadline
	}
	if c.MemoEntries <= 0 {
		c.MemoEntries = 256
	}
	return c
}

// Service is the what-if HTTP handler. One Service serves any number of
// concurrent requests; every failure mode of a request — malformed body,
// oversized ask, panic mid-simulation, blown deadline, full queue — is
// contained to its response.
type Service struct {
	cfg   Config
	adm   *admitter
	memo  *memoCache
	hits  atomic.Int64
	runs  atomic.Int64
	fails atomic.Int64
	// shardRuns counts completed sessions by the shard configuration their
	// engine actually used (run.Options.EffectiveShards; key "serial" for
	// 0). Shards is deliberately excluded from the memo fingerprint, so the
	// response body cannot say which engine mode served it — these counters
	// and the X-Whatif-Shards header are the operator's only view.
	shardMu   sync.Mutex
	shardRuns map[int]int64
}

// New builds a Service.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		cfg:       cfg,
		adm:       newAdmitter(cfg.MaxConcurrent, cfg.QueueDepth, cfg.TenantWeights),
		memo:      newMemo(cfg.MemoEntries),
		shardRuns: make(map[int]int64),
	}
}

type errorBody struct {
	Error string `json:"error"`
	// Panic and Stack are set on 500s caused by a recovered session panic.
	Panic string `json:"panic,omitempty"`
	Stack string `json:"stack,omitempty"`
	// RetryAfterSeconds mirrors the Retry-After header on 429s.
	RetryAfterSeconds int `json:"retry_after_s,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(b)
}

// ServeHTTP routes POST /whatif, GET /healthz, and GET /stats.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Last-resort containment: nothing escaping the handlers below may kill
	// the serving goroutine's connection loop with a confusing empty reply.
	defer func() {
		if rec := recover(); rec != nil {
			writeJSON(w, http.StatusInternalServerError, errorBody{
				Error: "internal error",
				Panic: fmt.Sprint(rec),
			})
		}
	}()
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/whatif":
		s.handleWhatIf(w, r)
	case r.Method == http.MethodGet && r.URL.Path == "/healthz":
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	case r.Method == http.MethodGet && r.URL.Path == "/stats":
		s.handleStats(w)
	default:
		writeJSON(w, http.StatusNotFound, errorBody{Error: "not found"})
	}
}

func (s *Service) handleStats(w http.ResponseWriter) {
	running, waiting, shed := s.adm.Stats()
	s.shardMu.Lock()
	shardRuns := make(map[string]int64, len(s.shardRuns))
	for shards, n := range s.shardRuns {
		if shards == 0 {
			shardRuns["serial"] = n
		} else {
			shardRuns[strconv.Itoa(shards)] = n
		}
	}
	s.shardMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"running":          running,
		"waiting":          waiting,
		"shed":             shed,
		"memo_entries":     s.memo.Len(),
		"memo_hits":        s.hits.Load(),
		"runs":             s.runs.Load(),
		"failed_runs":      s.fails.Load(),
		"p99_admission_ms": s.adm.P99Latency().Milliseconds(),
		// shard_runs buckets completed sessions by effective engine mode
		// ("serial" or the shard count). Memo hits are absent on purpose:
		// a cached answer ran no engine at all.
		"shard_runs": shardRuns,
	})
}

func (s *Service) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeRequest(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if err := req.Validate(s.cfg.Chaos); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	fp := req.Fingerprint()

	// Memo first, admission second: a repeated question is answered from the
	// cache even while every simulation slot is busy, so memo traffic never
	// queues and never sheds.
	if body := s.memo.Get(fp); body != nil {
		s.hits.Add(1)
		s.writeResult(w, body, true, 0)
		return
	}

	tenant := req.Tenant
	if tenant == "" {
		tenant = "anon"
	}
	release, err := s.adm.Acquire(r.Context(), tenant)
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			retry := s.adm.RetryAfter()
			w.Header().Set("Retry-After", strconv.Itoa(int(retry/time.Second)))
			writeJSON(w, http.StatusTooManyRequests, errorBody{
				Error:             "overloaded: tenant queue full",
				RetryAfterSeconds: int(retry / time.Second),
			})
			return
		}
		writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: "request cancelled while queued: " + err.Error()})
		return
	}
	defer release()

	// Another request may have answered the same question while we queued.
	if body := s.memo.Get(fp); body != nil {
		s.hits.Add(1)
		s.writeResult(w, body, true, 0)
		return
	}

	budget := s.cfg.DefaultDeadline
	if req.DeadlineMillis > 0 {
		budget = time.Duration(req.DeadlineMillis) * time.Millisecond
		if budget > s.cfg.MaxDeadline {
			budget = s.cfg.MaxDeadline
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()

	start := time.Now()
	resp, err := RunSession(ctx, req)
	elapsed := time.Since(start)
	s.runs.Add(1)
	if err != nil {
		s.fails.Add(1)
		var perr *PanicError
		switch {
		case errors.As(err, &perr):
			writeJSON(w, http.StatusInternalServerError, errorBody{
				Error: "session crashed; the server is unaffected",
				Panic: perr.Value,
				Stack: perr.Stack,
			})
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			writeJSON(w, http.StatusGatewayTimeout, errorBody{
				Error: fmt.Sprintf("simulation exceeded its %v budget", budget),
			})
		default:
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		}
		return
	}
	body, err := json.Marshal(resp)
	if err != nil {
		s.fails.Add(1)
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "encoding response"})
		return
	}
	s.memo.Put(fp, body)
	s.shardMu.Lock()
	s.shardRuns[resp.EffectiveShards]++
	s.shardMu.Unlock()
	// Which engine mode served this request, out of band: the body is
	// memoizable and must stay byte-identical across shard configurations.
	if resp.EffectiveShards > 0 {
		w.Header().Set("X-Whatif-Shards", strconv.Itoa(resp.EffectiveShards))
	} else {
		w.Header().Set("X-Whatif-Shards", "serial")
	}
	s.writeResult(w, body, false, elapsed)
}

// writeResult sends a 200 with the exact memoizable bytes. Everything
// volatile — the memo verdict, the wall time spent — travels in headers so
// the body stays byte-identical between a fresh run and a memo hit.
func (s *Service) writeResult(w http.ResponseWriter, body []byte, memoHit bool, elapsed time.Duration) {
	w.Header().Set("Content-Type", "application/json")
	if memoHit {
		w.Header().Set("X-Whatif-Memo", "hit")
	} else {
		w.Header().Set("X-Whatif-Memo", "miss")
		w.Header().Set("X-Whatif-Elapsed-Ms", strconv.FormatInt(elapsed.Milliseconds(), 10))
	}
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}
