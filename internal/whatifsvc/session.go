package whatifsvc

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/run"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/workloads"
)

// JobResult is one simulated job's outcome.
type JobResult struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	// Finished is false when the virtual deadline cut the job off.
	Finished bool `json:"finished"`
}

// ResourceRank is one entry of the aggregate bottleneck ranking: the
// cluster-wide ideal completion time the run's work demands of the resource
// (§6.1) — the largest is the bottleneck.
type ResourceRank struct {
	Resource     string  `json:"resource"`
	IdealSeconds float64 `json:"ideal_seconds"`
}

// JobShare is one job's slice of the run's contention, from model.Attribute.
type JobShare struct {
	Job       string  `json:"job"`
	CPUShare  float64 `json:"cpu_share"`
	DiskShare float64 `json:"disk_share"`
	NetShare  float64 `json:"net_share"`
}

// WhatIfAnswer is the model's verdict on one hypothetical change.
type WhatIfAnswer struct {
	Question         string  `json:"question"`
	CurrentSeconds   float64 `json:"current_seconds"`
	PredictedSeconds float64 `json:"predicted_seconds"`
	Speedup          float64 `json:"speedup"`
}

// TelemetrySummary condenses the run's live snapshots.
type TelemetrySummary struct {
	Snapshots      int     `json:"snapshots"`
	WindowSeconds  float64 `json:"window_seconds"`
	FinalCaptured  bool    `json:"final_captured"`
	SnapshotEveryS float64 `json:"snapshot_every_s"`
}

// Response is the answer to one what-if request. It contains only slices and
// scalars (no maps), so json.Marshal renders it deterministically — the
// property the memo's byte-identity contract rests on.
type Response struct {
	Workload    string            `json:"workload"`
	Machines    int               `json:"machines"`
	Jobs        []JobResult       `json:"jobs"`
	Bottlenecks []ResourceRank    `json:"bottlenecks"`
	Attribution []JobShare        `json:"attribution,omitempty"`
	Predictions []WhatIfAnswer    `json:"predictions,omitempty"`
	Telemetry   *TelemetrySummary `json:"telemetry,omitempty"`
	// Aborted marks a partial answer: the virtual deadline fired and every
	// figure above covers only the simulated window [0, virtual_deadline].
	Aborted bool `json:"aborted,omitempty"`
	// EffectiveShards is the shard count the session's engine actually used
	// (run.Options.EffectiveShards): 0 means the serial engine. It is
	// deliberately excluded from the JSON body — Shards is excluded from the
	// memo fingerprint, so requests differing only in shard count share a
	// memo entry and the body must stay byte-identical across engine modes.
	// The service reports it out of band: the X-Whatif-Shards response
	// header on fresh runs, and the shard_runs counters on /stats.
	EffectiveShards int `json:"-"`
}

// PanicError wraps a panic recovered from a session so the server can report
// it as a structured 500 without dying.
type PanicError struct {
	Value string
	Stack string
}

// Error describes the recovered panic.
func (e *PanicError) Error() string {
	return fmt.Sprintf("whatifsvc: session panicked: %s", e.Value)
}

// RunSession answers req on a fresh single-use virtual cluster, isolating
// panics: any panic inside the workload builder, the simulator, or the model
// comes back as a *PanicError instead of unwinding into the caller. A
// context/wall abort returns the context's error; a virtual-deadline abort
// returns a partial Response with Aborted set.
func RunSession(ctx context.Context, req *Request) (resp *Response, err error) {
	defer func() {
		if r := recover(); r != nil {
			resp = nil
			err = &PanicError{Value: fmt.Sprint(r), Stack: string(debug.Stack())}
		}
	}()
	return runSession(ctx, req)
}

func machineSpec(c *ClusterSpec) cluster.MachineSpec {
	switch c.Hardware {
	case "ssd":
		return cluster.I2_2XLarge(1)
	case "ssd2":
		return cluster.I2_2XLarge(2)
	default:
		return cluster.M2_4XLarge()
	}
}

func buildCluster(c *ClusterSpec) (*cluster.Cluster, error) {
	base := machineSpec(c)
	specs := make([]cluster.MachineSpec, c.Machines)
	for i := range specs {
		specs[i] = base
		if i < c.DegradedMachines {
			specs[i] = base.Degraded(c.Degraded)
		}
	}
	return cluster.NewHetero(specs)
}

func buildJob(w *WorkloadSpec, env *workloads.Env, idx int) (*task.JobSpec, error) {
	name := fmt.Sprintf("%s-%d", w.Kind, idx)
	bytes := w.TotalMB * units.MB
	switch w.Kind {
	case "sort":
		vpk := w.ValuesPerKey
		if vpk == 0 {
			vpk = 10
		}
		return workloads.Sort{
			Name: name, TotalBytes: bytes, ValuesPerKey: vpk,
			MapTasks: w.MapTasks, ReduceTasks: w.ReduceTasks,
			InMemoryInput: w.InMemoryInput,
		}.Build(env)
	case "wordcount":
		return workloads.WordCount{
			Name: name, TotalBytes: bytes,
			ShuffleFraction: w.ShuffleFraction, OutputFraction: w.OutputFraction,
			ReduceTasks: w.ReduceTasks,
		}.Build(env)
	case "readcompute":
		tasks := w.NumTasks
		if tasks == 0 {
			tasks = 8 * env.Cluster.TotalCores()
		}
		return workloads.ReadCompute{
			Name: name, TotalBytes: bytes, NumTasks: tasks, CPUPerByte: w.CPUPerByte,
		}.Build(env)
	case ChaosKind:
		panic("chaos: injected session panic (workload kind " + ChaosKind + ")")
	default:
		return nil, fmt.Errorf("whatifsvc: unknown workload kind %q", w.Kind)
	}
}

func buildWhatIf(w *WhatIfSpec) model.WhatIf {
	switch w.Kind {
	case "scale_disk":
		return model.ScaleDiskBW(w.Factor)
	case "set_disk_bw":
		return model.SetDiskBW(w.Factor)
	case "scale_cluster":
		return model.ScaleCluster(w.Factor)
	case "scale_net":
		return model.ScaleNetBW(w.Factor)
	case "in_memory_input":
		return model.InMemoryInput{}
	case "infinitely_fast":
		switch w.Resource {
		case "disk":
			return model.InfinitelyFast(task.DiskResource)
		case "network":
			return model.InfinitelyFast(task.NetworkResource)
		default:
			return model.InfinitelyFast(task.CPUResource)
		}
	default:
		return nil
	}
}

func runSession(ctx context.Context, req *Request) (*Response, error) {
	c, err := buildCluster(&req.Cluster)
	if err != nil {
		return nil, err
	}
	env, err := workloads.NewEnv(c)
	if err != nil {
		return nil, err
	}
	n := req.Workload.Jobs
	if n <= 0 {
		n = 1
	}
	specs := make([]*task.JobSpec, n)
	for i := range specs {
		if specs[i], err = buildJob(&req.Workload, env, i); err != nil {
			return nil, err
		}
	}

	o := run.Options{
		Mode:     run.Monotasks,
		Deadline: sim.Time(req.VirtualDeadlineSeconds),
		Shards:   req.Shards,
	}
	var sampler *telemetry.Sampler
	if req.Telemetry {
		o.Telemetry = &telemetry.Config{}
		o.OnTelemetry = func(s *telemetry.Sampler) { sampler = s }
	}
	ms, runErr := run.JobsContext(ctx, c, env.FS, o, specs...)
	aborted := false
	if runErr != nil {
		var aerr *run.AbortError
		if !errors.As(runErr, &aerr) {
			return nil, runErr
		}
		// A context (wall-clock) abort means the request ran out of budget:
		// no answer. A virtual-deadline abort is part of the question — the
		// caller asked for at most that much simulated time — so the partial
		// window is the answer.
		if ctx.Err() != nil {
			return nil, runErr
		}
		aborted = true
	}

	res := model.ClusterResources(c)
	resp := &Response{
		EffectiveShards: o.EffectiveShards(),
		Workload:        req.Workload.Kind,
		Machines:        req.Cluster.Machines,
		Aborted:         aborted,
	}
	var end sim.Time
	for _, jm := range ms {
		finished := true
		if aborted && jm.End >= sim.Time(req.VirtualDeadlineSeconds) {
			finished = false
		}
		resp.Jobs = append(resp.Jobs, JobResult{
			Name:     jm.Name,
			Seconds:  float64(jm.Duration()),
			Finished: finished,
		})
		if jm.End > end {
			end = jm.End
		}
	}

	// Aggregate bottleneck ranking: cluster-wide ideal completion times for
	// the executed window, largest first.
	var cpu, disk, net, mem float64
	profiles := make([]*model.JobProfile, len(ms))
	for i, jm := range ms {
		profiles[i] = model.FromMetrics(jm, res)
		for _, sp := range profiles[i].Stages {
			ic, id, in, im := sp.IdealTimes(res)
			cpu, disk, net, mem = cpu+ic, disk+id, net+in, mem+im
		}
	}
	resp.Bottlenecks = []ResourceRank{
		{Resource: "cpu", IdealSeconds: cpu},
		{Resource: "disk", IdealSeconds: disk},
		{Resource: "network", IdealSeconds: net},
		{Resource: "memory", IdealSeconds: mem},
	}
	sort.SliceStable(resp.Bottlenecks, func(i, j int) bool {
		return resp.Bottlenecks[i].IdealSeconds > resp.Bottlenecks[j].IdealSeconds
	})

	// Per-job contention shares over the whole executed window (§6.4).
	if len(ms) > 1 {
		for _, a := range model.Attribute(ms, 0, end, res) {
			resp.Attribution = append(resp.Attribution, JobShare{
				Job: a.Name, CPUShare: a.CPUShare, DiskShare: a.DiskShare, NetShare: a.NetShare,
			})
		}
	}

	// What-if predictions ride the first job's profile (the jobs are
	// identical copies). A partial run has no trustworthy profile to
	// extrapolate from, so predictions are omitted when aborted.
	if !aborted && len(profiles) > 0 {
		for _, wi := range req.WhatIfs {
			w := buildWhatIf(&wi)
			if w == nil {
				continue
			}
			pred := model.Predict(profiles[0], w)
			ans := WhatIfAnswer{
				Question:         w.String(),
				CurrentSeconds:   pred.ActualSeconds,
				PredictedSeconds: pred.PredictedSeconds,
			}
			if pred.PredictedSeconds > 0 {
				ans.Speedup = pred.ActualSeconds / pred.PredictedSeconds
			}
			resp.Predictions = append(resp.Predictions, ans)
		}
	}

	if sampler != nil {
		snaps := sampler.Snapshots()
		ts := &TelemetrySummary{Snapshots: len(snaps), SnapshotEveryS: 1}
		for i := range snaps {
			if snaps[i].Final {
				ts.FinalCaptured = true
			}
			if f := float64(snaps[i].T1); f > ts.WindowSeconds {
				ts.WindowSeconds = f
			}
		}
		resp.Telemetry = ts
	}
	return resp, nil
}
