package whatifsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func post(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/whatif", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func sortRequest(extra string) string {
	return `{
		"tenant": "t1",
		"workload": {"kind": "sort", "total_mb": 32, "values_per_key": 10, "map_tasks": 16, "reduce_tasks": 16},
		"cluster": {"machines": 2}` + extra + `
	}`
}

func TestServiceHappyPath(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	body := sortRequest(`, "whatifs": [
		{"kind": "scale_disk", "factor": 2},
		{"kind": "infinitely_fast", "resource": "network"}
	]`)
	resp, b := post(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var out Response
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("bad response JSON: %v", err)
	}
	if out.Workload != "sort" || out.Machines != 2 {
		t.Fatalf("echo fields wrong: %+v", out)
	}
	if len(out.Jobs) != 1 || out.Jobs[0].Seconds <= 0 || !out.Jobs[0].Finished {
		t.Fatalf("job result wrong: %+v", out.Jobs)
	}
	if len(out.Bottlenecks) != 4 {
		t.Fatalf("want 4-resource bottleneck ranking, got %+v", out.Bottlenecks)
	}
	if out.Bottlenecks[0].IdealSeconds < out.Bottlenecks[3].IdealSeconds {
		t.Fatalf("bottleneck ranking not sorted: %+v", out.Bottlenecks)
	}
	if len(out.Predictions) != 2 {
		t.Fatalf("want 2 predictions, got %+v", out.Predictions)
	}
	for _, p := range out.Predictions {
		if p.PredictedSeconds <= 0 || p.PredictedSeconds > p.CurrentSeconds {
			t.Fatalf("speedup what-if predicts no improvement: %+v", p)
		}
	}
	if resp.Header.Get("X-Whatif-Memo") != "miss" {
		t.Fatalf("first answer should be a memo miss, header=%q", resp.Header.Get("X-Whatif-Memo"))
	}
}

func TestServiceMemoHitByteIdentical(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	body := sortRequest(``)
	resp1, b1 := post(t, ts, body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first post: %d %s", resp1.StatusCode, b1)
	}
	resp2, b2 := post(t, ts, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second post: %d %s", resp2.StatusCode, b2)
	}
	if resp2.Header.Get("X-Whatif-Memo") != "hit" {
		t.Fatal("second identical request did not hit the memo")
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("memo hit differs from fresh run:\n%s\nvs\n%s", b1, b2)
	}
	// A different tenant asking the same question shares the entry.
	resp3, b3 := post(t, ts, strings.Replace(body, `"t1"`, `"t2"`, 1))
	if resp3.Header.Get("X-Whatif-Memo") != "hit" || !bytes.Equal(b1, b3) {
		t.Fatal("cross-tenant memo share broken")
	}
	// And a fresh service answering from scratch produces the same bytes —
	// the determinism that makes the memo sound.
	ts2 := httptest.NewServer(New(Config{}))
	defer ts2.Close()
	_, b4 := post(t, ts2, body)
	if !bytes.Equal(b1, b4) {
		t.Fatal("fresh service produced different bytes for the same question")
	}
}

func TestServiceRejectsMalformed(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	for name, body := range map[string]string{
		"not json":     `}{`,
		"unknown kind": `{"workload": {"kind": "teragen", "total_mb": 1}, "cluster": {"machines": 1}}`,
		"oversized":    `{"workload": {"kind": "sort", "total_mb": 999999999}, "cluster": {"machines": 1}}`,
		"chaos denied": `{"workload": {"kind": "chaos-panic"}, "cluster": {"machines": 1}}`,
	} {
		resp, b := post(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d (want 400): %s", name, resp.StatusCode, b)
		}
		var eb errorBody
		if err := json.Unmarshal(b, &eb); err != nil || eb.Error == "" {
			t.Fatalf("%s: 400 body not a structured error: %s", name, b)
		}
	}
}

func TestServicePanicIsolation(t *testing.T) {
	ts := httptest.NewServer(New(Config{Chaos: true}))
	defer ts.Close()
	resp, b := post(t, ts, `{"workload": {"kind": "chaos-panic"}, "cluster": {"machines": 1}}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("chaos request: status %d (want 500): %s", resp.StatusCode, b)
	}
	var eb errorBody
	if err := json.Unmarshal(b, &eb); err != nil {
		t.Fatalf("500 body not JSON: %s", b)
	}
	if !strings.Contains(eb.Panic, "chaos") || !strings.Contains(eb.Stack, "runSession") {
		t.Fatalf("500 body missing panic context: %+v", eb)
	}
	// The server must keep serving after a session crash.
	resp2, b2 := post(t, ts, sortRequest(``))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-crash request failed: %d %s", resp2.StatusCode, b2)
	}
}

func TestServiceWallDeadline504(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	// A cluster-and-workload big enough that simulating it takes well over
	// 1 ms of real time.
	body := `{
		"workload": {"kind": "sort", "total_mb": 2048, "values_per_key": 1, "jobs": 4},
		"cluster": {"machines": 16},
		"deadline_ms": 1
	}`
	resp, b := post(t, ts, body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("blown budget: status %d (want 504): %s", resp.StatusCode, b)
	}
}

func TestServiceVirtualDeadlinePartial(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	full, fb := post(t, ts, sortRequest(``))
	if full.StatusCode != http.StatusOK {
		t.Fatalf("full run: %d %s", full.StatusCode, fb)
	}
	var fullOut Response
	if err := json.Unmarshal(fb, &fullOut); err != nil {
		t.Fatal(err)
	}
	cut := fullOut.Jobs[0].Seconds / 2
	resp, b := post(t, ts, sortRequest(`, "virtual_deadline_s": `+jsonFloat(cut)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("virtual-deadline run: %d %s", resp.StatusCode, b)
	}
	var out Response
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Aborted {
		t.Fatalf("virtual deadline at half runtime did not mark aborted: %s", b)
	}
	if len(out.Jobs) != 1 || out.Jobs[0].Finished {
		t.Fatalf("cut-off job reported finished: %+v", out.Jobs)
	}
	if len(out.Predictions) != 0 {
		t.Fatal("partial run must not extrapolate predictions")
	}
}

func jsonFloat(f float64) string {
	b, _ := json.Marshal(f)
	return string(b)
}

func TestServiceTelemetrySummary(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	resp, b := post(t, ts, sortRequest(`, "telemetry": true`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("telemetry run: %d %s", resp.StatusCode, b)
	}
	var out Response
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Telemetry == nil || out.Telemetry.Snapshots == 0 || !out.Telemetry.FinalCaptured {
		t.Fatalf("telemetry summary missing or empty: %+v", out.Telemetry)
	}
}

func TestServiceAttributionForConcurrentJobs(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	resp, b := post(t, ts, `{
		"workload": {"kind": "sort", "total_mb": 32, "values_per_key": 10, "jobs": 2},
		"cluster": {"machines": 2}
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%d %s", resp.StatusCode, b)
	}
	var out Response
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Attribution) != 2 {
		t.Fatalf("want per-job attribution for 2 jobs, got %+v", out.Attribution)
	}
	var diskSum float64
	for _, a := range out.Attribution {
		diskSum += a.DiskShare
	}
	if diskSum < 0.99 || diskSum > 1.01 {
		t.Fatalf("disk shares sum to %v, want ~1", diskSum)
	}
}

func TestServiceRoutes(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()
	resp, err = ts.Client().Get(ts.URL + "/stats")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %v %v", err, resp)
	}
	resp.Body.Close()
	resp, err = ts.Client().Get(ts.URL + "/whatif")
	if err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /whatif: %v %v", err, resp)
	}
	resp.Body.Close()
}

func TestAdmitterFairShare(t *testing.T) {
	a := newAdmitter(1, 8, map[string]float64{"heavy": 3, "light": 1})
	// Fill the only slot.
	release, err := a.Acquire(context.Background(), "heavy")
	if err != nil {
		t.Fatal(err)
	}
	// Queue waiters: light first, then heavy; the deficit rule must still
	// favour heavy 3:1 over the long run. Serve 8 queued admissions and
	// count.
	type got struct{ tenant string }
	results := make(chan got, 16)
	acquire := func(tenant string) {
		go func() {
			r, err := a.Acquire(context.Background(), tenant)
			if err != nil {
				return
			}
			results <- got{tenant}
			time.Sleep(time.Millisecond)
			r()
		}()
	}
	for i := 0; i < 6; i++ {
		acquire("heavy")
		acquire("light")
	}
	for {
		time.Sleep(5 * time.Millisecond)
		a.mu.Lock()
		w := a.waiting
		a.mu.Unlock()
		if w == 12 {
			break
		}
	}
	release()
	counts := map[string]int{}
	for i := 0; i < 12; i++ {
		select {
		case g := <-results:
			counts[g.tenant]++
		case <-time.After(5 * time.Second):
			t.Fatalf("admissions stalled after %d, counts=%v", i, counts)
		}
	}
	if counts["heavy"] != 6 || counts["light"] != 6 {
		t.Fatalf("all waiters must eventually be served, got %v", counts)
	}
}

func TestAdmitterShedsWhenQueueFull(t *testing.T) {
	a := newAdmitter(1, 2, nil)
	release, err := a.Acquire(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	started := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() {
			ctx, cancel := context.WithCancel(context.Background())
			started <- struct{}{}
			_, _ = a.Acquire(ctx, "t")
			cancel()
		}()
	}
	<-started
	<-started
	deadline := time.After(5 * time.Second)
	for {
		a.mu.Lock()
		w := a.waiting
		a.mu.Unlock()
		if w == 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("waiters never queued")
		case <-time.After(time.Millisecond):
		}
	}
	if _, err := a.Acquire(context.Background(), "t"); err != ErrOverloaded {
		t.Fatalf("full queue: want ErrOverloaded, got %v", err)
	}
	if _, _, shed := a.Stats(); shed != 1 {
		t.Fatalf("shed counter = %d, want 1", shed)
	}
	if a.RetryAfter() < time.Second {
		t.Fatal("Retry-After under a second")
	}
}

func TestAdmitterAcquireCancelledWhileQueued(t *testing.T) {
	a := newAdmitter(1, 4, nil)
	release, err := a.Acquire(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := a.Acquire(ctx, "t"); err != context.DeadlineExceeded {
		t.Fatalf("queued acquire under dead context: %v", err)
	}
	release()
	// The cancelled waiter must not have leaked the slot.
	r2, err := a.Acquire(context.Background(), "t")
	if err != nil {
		t.Fatalf("slot leaked by cancelled waiter: %v", err)
	}
	r2()
}
