package whatifsvc

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"
)

// ErrOverloaded is returned by Acquire when the tenant's queue is full: the
// server is shedding load and the caller should come back after RetryAfter.
var ErrOverloaded = errors.New("whatifsvc: overloaded, try again later")

// admitter is the weighted fair-share admission gate. It owns a fixed pool
// of simulation slots; requests over the limit wait in bounded per-tenant
// FIFO queues, and freed slots go to the waiting tenant with the smallest
// served/weight deficit — the same ordering the job scheduler's pools use
// for executor slots (internal/jobsched), applied one level up. A full
// tenant queue sheds immediately with ErrOverloaded rather than building an
// unbounded backlog.
type admitter struct {
	mu            sync.Mutex
	maxConcurrent int
	queueDepth    int // per tenant
	weights       map[string]float64

	running int
	tenants map[string]*tenantQueue
	waiting int // total queued waiters across tenants

	shed int64 // requests rejected with ErrOverloaded

	// latencies is a ring of recent admission waits for the p99 figure.
	latencies [1024]time.Duration
	latN      int
	latTotal  int64
}

type tenantQueue struct {
	name   string
	weight float64
	served float64 // admissions, deficit-weighted
	q      []chan struct{}
}

func newAdmitter(maxConcurrent, queueDepth int, weights map[string]float64) *admitter {
	if maxConcurrent <= 0 {
		maxConcurrent = 4
	}
	if queueDepth <= 0 {
		queueDepth = 8
	}
	return &admitter{
		maxConcurrent: maxConcurrent,
		queueDepth:    queueDepth,
		weights:       weights,
		tenants:       make(map[string]*tenantQueue),
	}
}

func (a *admitter) tenant(name string) *tenantQueue {
	t, ok := a.tenants[name]
	if !ok {
		w := a.weights[name]
		if w <= 0 {
			w = 1
		}
		t = &tenantQueue{name: name, weight: w}
		a.tenants[name] = t
	}
	return t
}

// Acquire blocks until the tenant gets a simulation slot, the context dies,
// or the tenant's queue is full (ErrOverloaded, immediately). On success the
// returned release function must be called exactly once.
func (a *admitter) Acquire(ctx context.Context, tenant string) (func(), error) {
	start := time.Now()
	a.mu.Lock()
	t := a.tenant(tenant)
	if a.running < a.maxConcurrent && a.waiting == 0 {
		a.running++
		t.served += 1 / t.weight
		a.recordLatency(0)
		a.mu.Unlock()
		return a.releaseFunc(), nil
	}
	if len(t.q) >= a.queueDepth {
		a.shed++
		a.mu.Unlock()
		return nil, ErrOverloaded
	}
	ch := make(chan struct{})
	t.q = append(t.q, ch)
	a.waiting++
	a.mu.Unlock()

	select {
	case <-ch:
		a.mu.Lock()
		a.recordLatency(time.Since(start))
		a.mu.Unlock()
		return a.releaseFunc(), nil
	case <-ctx.Done():
		a.mu.Lock()
		defer a.mu.Unlock()
		select {
		case <-ch:
			// Lost the race: a slot was handed to us as the context died.
			// Hand it onward instead of leaking it.
			a.releaseLocked()
		default:
			a.removeWaiter(t, ch)
		}
		return nil, ctx.Err()
	}
}

func (a *admitter) removeWaiter(t *tenantQueue, ch chan struct{}) {
	for i := range t.q {
		if t.q[i] == ch {
			t.q = append(t.q[:i], t.q[i+1:]...)
			a.waiting--
			return
		}
	}
}

func (a *admitter) releaseFunc() func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			defer a.mu.Unlock()
			a.releaseLocked()
		})
	}
}

// releaseLocked frees one slot and hands it to the most-starved waiting
// tenant (smallest served/weight deficit; ties break by name for
// determinism).
func (a *admitter) releaseLocked() {
	a.running--
	var next *tenantQueue
	for _, t := range a.tenants {
		if len(t.q) == 0 {
			continue
		}
		if next == nil || t.served < next.served || (t.served == next.served && t.name < next.name) {
			next = t
		}
	}
	if next == nil || a.running >= a.maxConcurrent {
		return
	}
	ch := next.q[0]
	next.q = next.q[1:]
	a.waiting--
	a.running++
	next.served += 1 / next.weight
	close(ch)
}

func (a *admitter) recordLatency(d time.Duration) {
	a.latencies[a.latN%len(a.latencies)] = d
	a.latN++
	a.latTotal++
}

// P99Latency reports the 99th-percentile admission wait over the recent
// window (zero when nothing has been admitted).
func (a *admitter) P99Latency() time.Duration {
	a.mu.Lock()
	n := a.latN
	if n > len(a.latencies) {
		n = len(a.latencies)
	}
	samples := make([]time.Duration, n)
	copy(samples, a.latencies[:n])
	a.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := (99*n - 1) / 100
	return samples[idx]
}

// RetryAfter estimates how long a shed caller should back off: one second
// per queued-backlog multiple of the slot pool, at least one.
func (a *admitter) RetryAfter() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	secs := 1 + a.waiting/a.maxConcurrent
	return time.Duration(secs) * time.Second
}

// Stats snapshots the admitter's counters.
func (a *admitter) Stats() (running, waiting int, shed int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.running, a.waiting, a.shed
}
