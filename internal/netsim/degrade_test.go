package netsim

import (
	"testing"

	"repro/internal/sim"
)

// SetLinkSpeed is fault injection's NIC-degradation knob: it rescales one
// machine's ingress and egress mid-run and must stretch in-flight flows
// exactly, then heal when restored to 1.

func TestSetLinkSpeedMidFlow(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, 2, 100e6)
	var done sim.Time
	f.Transfer(0, 1, 200e6, func() { done = eng.Now() })
	// 1 s at 100 MB/s moves 100 MB; the rest at 50 MB/s takes 2 s more.
	eng.At(1, func() { f.SetLinkSpeed(0, 0.5) })
	eng.Run()
	if !almostEqual(float64(done), 3.0) {
		t.Fatalf("degraded flow finished at %v, want 3.0", done)
	}
}

func TestSetLinkSpeedRestores(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, 2, 100e6)
	var done sim.Time
	f.Transfer(0, 1, 300e6, func() { done = eng.Now() })
	eng.At(1, func() { f.SetLinkSpeed(1, 0.5) }) // degrade the receiver
	eng.At(3, func() { f.SetLinkSpeed(1, 1) })
	eng.Run()
	// 100 MB + 100 MB (at half) + 100 MB.
	if !almostEqual(float64(done), 4.0) {
		t.Fatalf("degrade-then-heal flow finished at %v, want 4.0", done)
	}
}

func TestSetLinkSpeedOnlyAffectsThatMachine(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, 4, 100e6)
	var slow, fast sim.Time
	f.SetLinkSpeed(0, 0.5)
	f.Transfer(0, 1, 100e6, func() { slow = eng.Now() })
	f.Transfer(2, 3, 100e6, func() { fast = eng.Now() })
	eng.Run()
	if !almostEqual(float64(slow), 2.0) {
		t.Fatalf("flow from degraded machine finished at %v, want 2.0", slow)
	}
	if !almostEqual(float64(fast), 1.0) {
		t.Fatalf("flow on untouched machines finished at %v, want 1.0", fast)
	}
}
