package netsim

// The fabric's control-plane ledger: a byte/message accounting surface for
// small coordination messages (worker-to-worker stage-completion metadata,
// the delegated driver's peer broadcasts) that real clusters exchange over
// the same links as the data plane but whose latency is negligible next to
// multi-megabyte shuffle flows. Recording a control message therefore costs
// zero virtual time and schedules no engine event — the ledger is pure
// counters, which is what keeps runs with and without control traffic
// byte-identical — while still exposing how chatty a control-plane design
// is, per machine and in total.

// ControlStats totals one direction of control-plane traffic: message count
// and modeled payload bytes.
type ControlStats struct {
	// Messages is the number of control messages recorded.
	Messages int64
	// Bytes is the total modeled payload of those messages.
	Bytes int64
}

// add accumulates one message of the given size.
func (s *ControlStats) add(bytes int64) {
	s.Messages++
	s.Bytes += bytes
}

// RecordControl records one control message of `bytes` payload from machine
// src to machine dst on the ledger. Control messages consume no virtual
// time and no link bandwidth (they are accounting, not flows); src and dst
// must be distinct fabric machines.
func (f *Fabric) RecordControl(src, dst int, bytes int64) {
	if src < 0 || src >= len(f.nics) || dst < 0 || dst >= len(f.nics) {
		panic("netsim: control endpoint out of range")
	}
	if src == dst {
		panic("netsim: control message to self")
	}
	f.ctrlTotal.add(bytes)
	f.ctrlOut[src].add(bytes)
	f.ctrlIn[dst].add(bytes)
}

// ControlStats returns the fabric-wide control-plane ledger totals.
func (f *Fabric) ControlStats() ControlStats { return f.ctrlTotal }

// ControlTraffic returns machine i's control-plane ledger entries: messages
// it sent (out) and received (in).
func (f *Fabric) ControlTraffic(i int) (out, in ControlStats) {
	return f.ctrlOut[i], f.ctrlIn[i]
}
