// Package netsim models the cluster network as a full-bisection fabric of
// per-machine full-duplex NICs. Flows between machines receive max-min fair
// rates computed by water-filling over the sender-egress and receiver-ingress
// links; rates are recomputed whenever a flow starts or finishes.
//
// This is the fluid-flow analogue of the transport behaviour the paper's
// network monotasks see: a machine fetching shuffle data from many senders is
// limited by its own ingress link, and a sender serving many receivers
// divides its egress link among them (§3.3, "Network scheduler").
package netsim

import (
	"math"

	"repro/internal/resource"
	"repro/internal/sim"
)

// NIC is one machine's network interface: independent egress and ingress
// capacities in bytes/second (full duplex).
type NIC struct {
	id        int
	egressBW  float64
	ingressBW float64
	// base capacities, so dynamic degradation factors compose from the
	// configured rates rather than compounding.
	baseEgressBW  float64
	baseIngressBW float64

	// UtilOut and UtilIn track the utilization (0..1) of the egress and
	// ingress directions.
	UtilOut resource.Tracker
	UtilIn  resource.Tracker
	// BytesOutCum and BytesInCum are cumulative byte timelines (charged at
	// transfer start) — the OS-counter view of this interface.
	BytesOutCum resource.Tracker
	BytesInCum  resource.Tracker

	bytesOut int64
	bytesIn  int64
}

// ID returns the NIC's machine index within its fabric.
func (n *NIC) ID() int { return n.id }

// EgressBW and IngressBW report the link capacities in bytes/second.
func (n *NIC) EgressBW() float64  { return n.egressBW }
func (n *NIC) IngressBW() float64 { return n.ingressBW }

// Flow is an in-flight transfer between two machines.
type Flow struct {
	src, dst  int
	remaining float64
	total     float64
	rate      float64
	done      func()
	seq       uint64
	active    bool
}

// Remaining reports the bytes left to transfer.
func (f *Flow) Remaining() float64 { return f.remaining }

// Rate reports the flow's current max-min fair rate in bytes/second.
func (f *Flow) Rate() float64 { return f.rate }

// Fabric connects n NICs with full bisection bandwidth: the only contention
// points are the NICs themselves.
type Fabric struct {
	eng        *sim.Engine
	nics       []*NIC
	flows      map[*Flow]struct{}
	order      []*Flow // deterministic iteration order (insertion order)
	nextSeq    uint64
	lastUpdate sim.Time
	completion *sim.Event
}

// NewFabric creates a fabric of n NICs, each with the given full-duplex
// bandwidth in bytes/second.
func NewFabric(eng *sim.Engine, n int, linkBW float64) *Fabric {
	bws := make([]float64, n)
	for i := range bws {
		bws[i] = linkBW
	}
	return NewFabricBW(eng, bws)
}

// NewFabricBW creates a fabric with per-machine link bandwidths — the
// heterogeneity knob (a machine with a degraded NIC slows every flow it
// terminates).
func NewFabricBW(eng *sim.Engine, linkBWs []float64) *Fabric {
	if len(linkBWs) == 0 {
		panic("netsim: fabric needs machines")
	}
	f := &Fabric{eng: eng, flows: make(map[*Flow]struct{})}
	for i, bw := range linkBWs {
		if bw <= 0 {
			panic("netsim: fabric needs positive bandwidth")
		}
		f.nics = append(f.nics, &NIC{id: i, egressBW: bw, ingressBW: bw, baseEgressBW: bw, baseIngressBW: bw})
	}
	return f
}

// NIC returns machine i's interface.
func (f *Fabric) NIC(i int) *NIC { return f.nics[i] }

// Size reports the number of machines.
func (f *Fabric) Size() int { return len(f.nics) }

// Transfer starts a flow of the given size from machine src to machine dst;
// done fires when the last byte arrives. Local transfers (src == dst) are
// free: data never leaves the machine, so done fires on the next dispatch.
func (f *Fabric) Transfer(src, dst int, bytes int64, done func()) *Flow {
	if src < 0 || src >= len(f.nics) || dst < 0 || dst >= len(f.nics) {
		panic("netsim: transfer endpoint out of range")
	}
	f.nextSeq++
	fl := &Flow{src: src, dst: dst, remaining: float64(bytes), total: float64(bytes), done: done, seq: f.nextSeq}
	if src == dst || bytes <= 0 {
		f.eng.After(0, done)
		return fl
	}
	f.advance()
	fl.active = true
	f.flows[fl] = struct{}{}
	f.order = append(f.order, fl)
	now := f.eng.Now()
	srcNIC, dstNIC := f.nics[fl.src], f.nics[fl.dst]
	srcNIC.bytesOut += bytes
	srcNIC.BytesOutCum.Set(now, float64(srcNIC.bytesOut))
	dstNIC.bytesIn += bytes
	dstNIC.BytesInCum.Set(now, float64(dstNIC.bytesIn))
	f.rerate()
	return fl
}

// SetLinkSpeed rescales machine i's NIC to factor times its configured
// full-duplex bandwidth from the current virtual time onward (1 restores
// it). In-flight flows are drained at the old rates first, then every flow's
// max-min fair share is recomputed — the dynamic NIC-degradation knob.
func (f *Fabric) SetLinkSpeed(i int, factor float64) {
	if i < 0 || i >= len(f.nics) {
		panic("netsim: SetLinkSpeed machine out of range")
	}
	if factor <= 0 {
		panic("netsim: link speed factor must be positive")
	}
	f.advance()
	n := f.nics[i]
	n.egressBW = n.baseEgressBW * factor
	n.ingressBW = n.baseIngressBW * factor
	f.rerate()
}

// Cancel abandons an in-flight flow.
func (f *Fabric) Cancel(fl *Flow) {
	if !fl.active {
		return
	}
	f.advance()
	fl.active = false
	delete(f.flows, fl)
	f.compactOrder()
	f.rerate()
}

// ActiveFlows reports the number of in-flight flows.
func (f *Fabric) ActiveFlows() int { return len(f.flows) }

// advance drains each flow by rate·dt.
func (f *Fabric) advance() {
	now := f.eng.Now()
	dt := float64(now - f.lastUpdate)
	f.lastUpdate = now
	if dt <= 0 {
		return
	}
	for _, fl := range f.order {
		fl.remaining -= fl.rate * dt
		// Clamp float residue relative to the flow's size: rate changes on
		// every membership change, and the subtraction errors accumulate
		// with the byte count. An absolute epsilon eventually leaves a
		// residue whose drain time underflows the clock's resolution,
		// rescheduling a zero-length completion event forever.
		if fl.remaining < 1e-9*fl.total+1e-9 {
			fl.remaining = 0
		}
	}
}

// rerate recomputes max-min fair rates by water-filling, updates NIC
// utilization trackers, and reschedules the next completion event.
func (f *Fabric) rerate() {
	// Residual capacity per link; links are (machine, direction).
	n := len(f.nics)
	egressCap := make([]float64, n)
	ingressCap := make([]float64, n)
	egressFlows := make([]int, n)
	ingressFlows := make([]int, n)
	for i, nic := range f.nics {
		egressCap[i] = nic.egressBW
		ingressCap[i] = nic.ingressBW
	}
	unfrozen := 0
	for _, fl := range f.order {
		fl.rate = 0
		egressFlows[fl.src]++
		ingressFlows[fl.dst]++
		unfrozen++
	}
	frozen := make(map[*Flow]bool, len(f.order))
	for unfrozen > 0 {
		// Find the bottleneck link: smallest fair share.
		share := math.MaxFloat64
		for i := 0; i < n; i++ {
			if egressFlows[i] > 0 {
				if s := egressCap[i] / float64(egressFlows[i]); s < share {
					share = s
				}
			}
			if ingressFlows[i] > 0 {
				if s := ingressCap[i] / float64(ingressFlows[i]); s < share {
					share = s
				}
			}
		}
		// Freeze every flow traversing a link at exactly that share.
		progress := false
		for _, fl := range f.order {
			if frozen[fl] {
				continue
			}
			se := egressCap[fl.src] / float64(egressFlows[fl.src])
			si := ingressCap[fl.dst] / float64(ingressFlows[fl.dst])
			if se <= share*(1+1e-12) || si <= share*(1+1e-12) {
				fl.rate = share
				frozen[fl] = true
				unfrozen--
				progress = true
				egressCap[fl.src] -= share
				ingressCap[fl.dst] -= share
				egressFlows[fl.src]--
				ingressFlows[fl.dst]--
			}
		}
		if !progress {
			panic("netsim: water-filling failed to make progress")
		}
	}
	// Utilization per link.
	egressUse := make([]float64, n)
	ingressUse := make([]float64, n)
	for _, fl := range f.order {
		egressUse[fl.src] += fl.rate
		ingressUse[fl.dst] += fl.rate
	}
	now := f.eng.Now()
	for i, nic := range f.nics {
		nic.UtilOut.Set(now, egressUse[i]/nic.egressBW)
		nic.UtilIn.Set(now, ingressUse[i]/nic.ingressBW)
	}
	// Next completion.
	f.eng.Cancel(f.completion)
	f.completion = nil
	soonest := sim.Time(math.MaxFloat64)
	for _, fl := range f.order {
		if fl.rate <= 0 {
			continue
		}
		t := sim.Duration(fl.remaining / fl.rate)
		if t < soonest {
			soonest = t
		}
	}
	if soonest < sim.Time(math.MaxFloat64) {
		f.completion = f.eng.After(soonest, f.complete)
	}
}

// complete retires flows that have drained, then recomputes rates.
func (f *Fabric) complete() {
	f.completion = nil
	f.advance()
	var finished []*Flow
	for _, fl := range f.order {
		if fl.remaining == 0 {
			finished = append(finished, fl)
			fl.active = false
			delete(f.flows, fl)
		}
	}
	if len(finished) == 0 && len(f.order) > 0 {
		// Float residue left the due flow fractionally short: retire the
		// minimum-remaining flow rather than rescheduling a drain whose
		// duration can underflow the clock's resolution (see the matching
		// guard in resource.server.complete).
		min := f.order[0]
		for _, fl := range f.order[1:] {
			if fl.rate > 0 && (min.rate <= 0 || fl.remaining/fl.rate < min.remaining/min.rate) {
				min = fl
			}
		}
		min.remaining = 0
		min.active = false
		delete(f.flows, min)
		finished = append(finished, min)
	}
	f.compactOrder()
	f.rerate()
	for _, fl := range finished {
		fl.done()
	}
}

// compactOrder drops inactive flows from the deterministic iteration slice.
func (f *Fabric) compactOrder() {
	kept := f.order[:0]
	for _, fl := range f.order {
		if fl.active {
			kept = append(kept, fl)
		}
	}
	for i := len(kept); i < len(f.order); i++ {
		f.order[i] = nil
	}
	f.order = kept
}
