// Package netsim models the cluster network as a full-bisection fabric of
// per-machine full-duplex NICs. Flows between machines receive max-min fair
// rates computed by water-filling over the sender-egress and receiver-ingress
// links; rates are recomputed whenever a flow starts or finishes.
//
// This is the fluid-flow analogue of the transport behaviour the paper's
// network monotasks see: a machine fetching shuffle data from many senders is
// limited by its own ingress link, and a sender serving many receivers
// divides its egress link among them (§3.3, "Network scheduler").
package netsim

import (
	"math"

	"repro/internal/resource"
	"repro/internal/sim"
)

// NIC is one machine's network interface: independent egress and ingress
// capacities in bytes/second (full duplex).
type NIC struct {
	id        int
	egressBW  float64
	ingressBW float64
	// base capacities, so dynamic degradation factors compose from the
	// configured rates rather than compounding.
	baseEgressBW  float64
	baseIngressBW float64

	// UtilOut tracks the egress direction's utilization (0..1).
	UtilOut resource.Tracker
	// UtilIn tracks the ingress direction's utilization (0..1).
	UtilIn resource.Tracker
	// BytesOutCum is the cumulative egress byte timeline (charged at
	// transfer start) — the OS-counter view of this interface.
	BytesOutCum resource.Tracker
	// BytesInCum is BytesOutCum's ingress counterpart.
	BytesInCum resource.Tracker

	bytesOut int64
	bytesIn  int64
}

// ID returns the NIC's machine index within its fabric.
func (n *NIC) ID() int { return n.id }

// EgressBW reports the outbound link capacity in bytes/second.
func (n *NIC) EgressBW() float64 { return n.egressBW }

// IngressBW reports the inbound link capacity in bytes/second.
func (n *NIC) IngressBW() float64 { return n.ingressBW }

// Flow is an in-flight transfer between two machines.
type Flow struct {
	src, dst  int
	remaining float64
	total     float64
	rate      float64
	done      func()
	seq       uint64
	active    bool
	// transient water-filling state, valid only inside rerate.
	frozen bool
	inComp bool
}

// Remaining reports the bytes left to transfer.
func (f *Flow) Remaining() float64 { return f.remaining }

// Rate reports the flow's current max-min fair rate in bytes/second.
func (f *Flow) Rate() float64 { return f.rate }

// Fabric connects n NICs with full bisection bandwidth: the only contention
// points are the NICs themselves.
type Fabric struct {
	eng        *sim.Engine
	nics       []*NIC
	order      []*Flow // active flows in deterministic (insertion) order
	pool       []*Flow // retired Flow structs recycled by Transfer
	nextSeq    uint64
	lastUpdate sim.Time
	completion sim.EventRef
	completeFn func() // f.complete, bound once so rerates never allocate

	// Scratch state reused across rerate calls so the hot path stays off the
	// allocator. Links are numbered 0..2n-1: machine i's egress link is i, its
	// ingress link is n+i.
	linkCap   []float64 // residual capacity per link during water-filling
	linkCnt   []int     // unfrozen flows per link during water-filling
	linkMark  []uint64  // epoch marks: linkMark[l] == markEpoch ⇒ l is in the component
	markEpoch uint64
	compLinks []int   // links in the current component, in discovery order
	compFlows []*Flow // flows in the current component, in f.order order
	finished  []*Flow // reusable scratch for complete()

	// Control-plane ledger (control.go): zero-virtual-time message and byte
	// counters, fabric-wide and per machine per direction.
	ctrlTotal ControlStats
	ctrlOut   []ControlStats
	ctrlIn    []ControlStats
}

// NewFabric creates a fabric of n NICs, each with the given full-duplex
// bandwidth in bytes/second.
func NewFabric(eng *sim.Engine, n int, linkBW float64) *Fabric {
	bws := make([]float64, n)
	for i := range bws {
		bws[i] = linkBW
	}
	return NewFabricBW(eng, bws)
}

// NewFabricBW creates a fabric with per-machine link bandwidths — the
// heterogeneity knob (a machine with a degraded NIC slows every flow it
// terminates).
func NewFabricBW(eng *sim.Engine, linkBWs []float64) *Fabric {
	if len(linkBWs) == 0 {
		panic("netsim: fabric needs machines")
	}
	f := &Fabric{eng: eng}
	f.completeFn = f.complete
	for i, bw := range linkBWs {
		if bw <= 0 {
			panic("netsim: fabric needs positive bandwidth")
		}
		f.nics = append(f.nics, &NIC{id: i, egressBW: bw, ingressBW: bw, baseEgressBW: bw, baseIngressBW: bw})
	}
	n := len(linkBWs)
	f.linkCap = make([]float64, 2*n)
	f.linkCnt = make([]int, 2*n)
	f.linkMark = make([]uint64, 2*n)
	f.ctrlOut = make([]ControlStats, n)
	f.ctrlIn = make([]ControlStats, n)
	return f
}

// NIC returns machine i's interface.
func (f *Fabric) NIC(i int) *NIC { return f.nics[i] }

// Size reports the number of machines.
func (f *Fabric) Size() int { return len(f.nics) }

// MaxLinkBW reports the largest configured link capacity in either direction,
// from the base (construction-time) rates. Dynamic SetLinkSpeed factors are
// deliberately excluded: the value bounds the best rate any flow could ever
// be granted under factors ≤ 1, which is what a conservative lookahead needs
// to stay valid for a whole run. A factor above 1 invalidates horizons
// derived from this bound and callers who use such factors must re-derive.
func (f *Fabric) MaxLinkBW() float64 {
	var bw float64
	for _, n := range f.nics {
		if n.baseEgressBW > bw {
			bw = n.baseEgressBW
		}
		if n.baseIngressBW > bw {
			bw = n.baseIngressBW
		}
	}
	return bw
}

// MinTransferLatency reports a lower bound on the time any cross-machine
// transfer of the given size can take: bytes over the fastest link the fabric
// owns. A flow's max-min rate never exceeds min(sender egress, receiver
// ingress) ≤ MaxLinkBW, so no bytes-sized transfer completes sooner. This is
// the fabric's contribution to the sharded engine's lookahead horizon — the
// window within which machines cannot affect each other through the network.
func (f *Fabric) MinTransferLatency(bytes int64) sim.Duration {
	if bytes <= 0 {
		return 0
	}
	return sim.Duration(float64(bytes) / f.MaxLinkBW())
}

// Transfer starts a flow of the given size from machine src to machine dst;
// done fires when the last byte arrives. Local transfers (src == dst) are
// free: data never leaves the machine, so done fires on the next dispatch.
func (f *Fabric) Transfer(src, dst int, bytes int64, done func()) *Flow {
	if src < 0 || src >= len(f.nics) || dst < 0 || dst >= len(f.nics) {
		panic("netsim: transfer endpoint out of range")
	}
	f.nextSeq++
	if src == dst || bytes <= 0 {
		// Degenerate transfers never enter the fabric, so the caller-held
		// struct is never recycled (a pool slot would alias a future flow).
		f.eng.After(0, done)
		return &Flow{src: src, dst: dst, remaining: float64(bytes), total: float64(bytes), done: done, seq: f.nextSeq}
	}
	var fl *Flow
	if n := len(f.pool); n > 0 {
		fl = f.pool[n-1]
		f.pool[n-1] = nil
		f.pool = f.pool[:n-1]
		*fl = Flow{}
	} else {
		fl = &Flow{}
	}
	fl.src, fl.dst = src, dst
	fl.remaining, fl.total = float64(bytes), float64(bytes)
	fl.done = done
	fl.seq = f.nextSeq
	f.advance()
	fl.active = true
	f.order = append(f.order, fl)
	now := f.eng.Now()
	srcNIC, dstNIC := f.nics[fl.src], f.nics[fl.dst]
	srcNIC.bytesOut += bytes
	srcNIC.BytesOutCum.Set(now, float64(srcNIC.bytesOut))
	dstNIC.bytesIn += bytes
	dstNIC.BytesInCum.Set(now, float64(dstNIC.bytesIn))
	f.beginRerate()
	f.touchFlow(fl)
	f.rerateTouched()
	return fl
}

// SetLinkSpeed rescales machine i's NIC to factor times its configured
// full-duplex bandwidth from the current virtual time onward (1 restores
// it). In-flight flows are drained at the old rates first, then every flow's
// max-min fair share is recomputed — the dynamic NIC-degradation knob.
func (f *Fabric) SetLinkSpeed(i int, factor float64) {
	if i < 0 || i >= len(f.nics) {
		panic("netsim: SetLinkSpeed machine out of range")
	}
	if factor <= 0 {
		panic("netsim: link speed factor must be positive")
	}
	f.advance()
	n := f.nics[i]
	n.egressBW = n.baseEgressBW * factor
	n.ingressBW = n.baseIngressBW * factor
	f.beginRerate()
	f.touchLink(i)
	f.touchLink(len(f.nics) + i)
	f.rerateTouched()
}

// Cancel abandons an in-flight flow.
func (f *Fabric) Cancel(fl *Flow) {
	if !fl.active {
		return
	}
	f.advance()
	fl.active = false
	f.compactOrder()
	f.beginRerate()
	f.touchFlow(fl)
	f.rerateTouched()
}

// ActiveFlows reports the number of in-flight flows.
func (f *Fabric) ActiveFlows() int { return len(f.order) }

// advance drains each flow by rate·dt.
func (f *Fabric) advance() {
	now := f.eng.Now()
	dt := float64(now - f.lastUpdate)
	f.lastUpdate = now
	if dt <= 0 {
		return
	}
	for _, fl := range f.order {
		fl.remaining -= fl.rate * dt
		// Clamp float residue relative to the flow's size: rate changes on
		// every membership change, and the subtraction errors accumulate
		// with the byte count. An absolute epsilon eventually leaves a
		// residue whose drain time underflows the clock's resolution,
		// rescheduling a zero-length completion event forever.
		if fl.remaining < 1e-9*fl.total+1e-9 {
			fl.remaining = 0
		}
	}
}

// beginRerate opens a new rerate scope: links touched with touchLink or
// touchFlow before the next rerateTouched seed the connected component whose
// flow rates must be re-solved.
func (f *Fabric) beginRerate() {
	f.markEpoch++
	f.compLinks = f.compLinks[:0]
}

// touchLink marks link l (machine i egress = i, ingress = n+i) as changed.
func (f *Fabric) touchLink(l int) {
	if f.linkMark[l] != f.markEpoch {
		f.linkMark[l] = f.markEpoch
		f.compLinks = append(f.compLinks, l)
	}
}

// touchFlow marks both links a flow traverses as changed.
func (f *Fabric) touchFlow(fl *Flow) {
	f.touchLink(fl.src)
	f.touchLink(len(f.nics) + fl.dst)
}

// rerateTouched recomputes max-min fair rates by water-filling, restricted to
// the connected component(s) of the links touched since beginRerate, then
// updates the affected NICs' utilization trackers and reschedules the next
// completion event.
//
// The restriction is exact, not approximate: max-min fairness decomposes over
// connected components of the bipartite flow/link graph, because water-filling
// in one component never changes residual capacity in another. A membership
// or capacity change therefore only perturbs rates of flows reachable from
// the changed links, and those are exactly the flows this solves for. Rates
// of all other flows are left untouched, which is what makes a rerate cheap
// when the fabric carries many unrelated transfers.
func (f *Fabric) rerateTouched() {
	n := len(f.nics)
	// Close the component: any flow on a marked link joins, and brings its
	// other link with it. Pass-based to fixpoint; the final collection pass
	// gathers component flows in f.order order, preserving the deterministic
	// freeze order of the unrestricted algorithm.
	for changed := true; changed; {
		changed = false
		for _, fl := range f.order {
			if fl.inComp {
				continue
			}
			if f.linkMark[fl.src] == f.markEpoch || f.linkMark[n+fl.dst] == f.markEpoch {
				fl.inComp = true
				f.touchLink(fl.src)
				f.touchLink(n + fl.dst)
				changed = true
			}
		}
	}
	f.compFlows = f.compFlows[:0]
	for _, fl := range f.order {
		if fl.inComp {
			f.compFlows = append(f.compFlows, fl)
		}
	}

	// Water-fill over the component only. Residual capacity per link; links
	// are (machine, direction).
	for _, l := range f.compLinks {
		if l < n {
			f.linkCap[l] = f.nics[l].egressBW
		} else {
			f.linkCap[l] = f.nics[l-n].ingressBW
		}
		f.linkCnt[l] = 0
	}
	for _, fl := range f.compFlows {
		fl.rate = 0
		f.linkCnt[fl.src]++
		f.linkCnt[n+fl.dst]++
	}
	unfrozen := len(f.compFlows)
	for unfrozen > 0 {
		// Find the bottleneck link: smallest fair share.
		share := math.MaxFloat64
		for _, l := range f.compLinks {
			if f.linkCnt[l] > 0 {
				if s := f.linkCap[l] / float64(f.linkCnt[l]); s < share {
					share = s
				}
			}
		}
		// Freeze every flow traversing a link at exactly that share.
		progress := false
		for _, fl := range f.compFlows {
			if fl.frozen {
				continue
			}
			se := f.linkCap[fl.src] / float64(f.linkCnt[fl.src])
			si := f.linkCap[n+fl.dst] / float64(f.linkCnt[n+fl.dst])
			if se <= share*(1+1e-12) || si <= share*(1+1e-12) {
				fl.rate = share
				fl.frozen = true
				unfrozen--
				progress = true
				f.linkCap[fl.src] -= share
				f.linkCap[n+fl.dst] -= share
				f.linkCnt[fl.src]--
				f.linkCnt[n+fl.dst]--
			}
		}
		if !progress {
			panic("netsim: water-filling failed to make progress")
		}
	}

	// Utilization changed only on component links; every flow on such a link
	// is in the component, so summing component flows is the full picture.
	for _, l := range f.compLinks {
		f.linkCap[l] = 0 // reuse as the per-link utilization accumulator
	}
	for _, fl := range f.compFlows {
		f.linkCap[fl.src] += fl.rate
		f.linkCap[n+fl.dst] += fl.rate
		fl.frozen = false
		fl.inComp = false
	}
	now := f.eng.Now()
	for _, l := range f.compLinks {
		if l < n {
			nic := f.nics[l]
			nic.UtilOut.Set(now, f.linkCap[l]/nic.egressBW)
		} else {
			nic := f.nics[l-n]
			nic.UtilIn.Set(now, f.linkCap[l]/nic.ingressBW)
		}
	}

	// Next completion: rates outside the component are unchanged, but the
	// soonest finisher can be anywhere, so scan all flows (cheap: no allocs).
	f.eng.Cancel(f.completion)
	f.completion = sim.EventRef{}
	soonest := sim.Time(math.MaxFloat64)
	for _, fl := range f.order {
		if fl.rate <= 0 {
			continue
		}
		t := sim.Duration(fl.remaining / fl.rate)
		if t < soonest {
			soonest = t
		}
	}
	if soonest < sim.Time(math.MaxFloat64) {
		f.completion = f.eng.After(soonest, f.completeFn)
	}
}

// complete retires flows that have drained, then recomputes rates.
func (f *Fabric) complete() {
	f.completion = sim.EventRef{}
	f.advance()
	finished := f.finished[:0]
	for _, fl := range f.order {
		if fl.remaining == 0 {
			finished = append(finished, fl)
			fl.active = false
		}
	}
	if len(finished) == 0 && len(f.order) > 0 {
		// Float residue left the due flow fractionally short: retire the
		// minimum-remaining flow rather than rescheduling a drain whose
		// duration can underflow the clock's resolution (see the matching
		// guard in resource.server.complete).
		min := f.order[0]
		for _, fl := range f.order[1:] {
			if fl.rate > 0 && (min.rate <= 0 || fl.remaining/fl.rate < min.remaining/min.rate) {
				min = fl
			}
		}
		min.remaining = 0
		min.active = false
		finished = append(finished, min)
	}
	f.compactOrder()
	f.beginRerate()
	for _, fl := range finished {
		f.touchFlow(fl)
	}
	f.rerateTouched()
	// Simultaneously-finishing flows retire in Transfer order (f.order is
	// insertion-ordered): completion order drives requester-side admission
	// chains, and Transfer order is deterministic — on a sharded engine the
	// causal-key merge replays the serial engine's Transfer interleaving
	// exactly (see sim.Lane.Global).
	for _, fl := range finished {
		fl.done()
	}
	// Recycle after the callbacks: completed flows are no longer reachable
	// from f.order, and production code never cancels a finished flow.
	for i, fl := range finished {
		fl.done = nil
		f.pool = append(f.pool, fl)
		finished[i] = nil
	}
	f.finished = finished[:0]
}

// compactOrder drops inactive flows from the deterministic iteration slice.
func (f *Fabric) compactOrder() {
	kept := f.order[:0]
	for _, fl := range f.order {
		if fl.active {
			kept = append(kept, fl)
		}
	}
	for i := len(kept); i < len(f.order); i++ {
		f.order[i] = nil
	}
	f.order = kept
}
