package netsim

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestSingleFlowFullBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, 2, 100e6)
	var done sim.Time
	f.Transfer(0, 1, 200e6, func() { done = eng.Now() })
	eng.Run()
	if !almostEqual(float64(done), 2.0) {
		t.Fatalf("200 MB over 100 MB/s link finished at %v, want 2.0", done)
	}
}

func TestTwoFlowsShareEgress(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, 3, 100e6)
	var t1, t2 sim.Time
	f.Transfer(0, 1, 100e6, func() { t1 = eng.Now() })
	f.Transfer(0, 2, 100e6, func() { t2 = eng.Now() })
	eng.Run()
	// Both limited by machine 0's egress: 50 MB/s each.
	if !almostEqual(float64(t1), 2.0) || !almostEqual(float64(t2), 2.0) {
		t.Fatalf("flows finished at %v, %v; want both 2.0", t1, t2)
	}
}

func TestTwoFlowsShareIngress(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, 3, 100e6)
	var t1, t2 sim.Time
	f.Transfer(0, 2, 100e6, func() { t1 = eng.Now() })
	f.Transfer(1, 2, 100e6, func() { t2 = eng.Now() })
	eng.Run()
	if !almostEqual(float64(t1), 2.0) || !almostEqual(float64(t2), 2.0) {
		t.Fatalf("incast flows finished at %v, %v; want both 2.0", t1, t2)
	}
}

func TestDisjointFlowsDontInterfere(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, 4, 100e6)
	var t1, t2 sim.Time
	f.Transfer(0, 1, 100e6, func() { t1 = eng.Now() })
	f.Transfer(2, 3, 100e6, func() { t2 = eng.Now() })
	eng.Run()
	if !almostEqual(float64(t1), 1.0) || !almostEqual(float64(t2), 1.0) {
		t.Fatalf("disjoint flows finished at %v, %v; want both 1.0 (full bisection)", t1, t2)
	}
}

func TestMaxMinFairnessUnevenDemand(t *testing.T) {
	// Machine 0 sends to 1 and 2. Machine 3 also sends to 2.
	// Receiver 2's ingress carries two flows (25 MB/s... let's derive):
	// Links: 0-egress has flows A(0→1), B(0→2); 2-ingress has B, C(3→2).
	// Water-filling with all caps 100: every link with 2 flows has share 50.
	// Freeze A,B at 50 (0-egress), C then gets remaining 2-ingress cap 50.
	// All flows: 50 MB/s.
	eng := sim.NewEngine()
	f := NewFabric(eng, 4, 100e6)
	var done [3]sim.Time
	f.Transfer(0, 1, 50e6, func() { done[0] = eng.Now() })
	f.Transfer(0, 2, 50e6, func() { done[1] = eng.Now() })
	f.Transfer(3, 2, 50e6, func() { done[2] = eng.Now() })
	eng.Run()
	for i, d := range done {
		if !almostEqual(float64(d), 1.0) {
			t.Fatalf("flow %d finished at %v, want 1.0", i, d)
		}
	}
}

func TestRateIncreasesWhenCompetitorFinishes(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, 3, 100e6)
	var tShort, tLong sim.Time
	f.Transfer(0, 1, 50e6, func() { tShort = eng.Now() })
	f.Transfer(0, 2, 150e6, func() { tLong = eng.Now() })
	eng.Run()
	// Share 50 each: short finishes at 1.0 with long having 100 MB left,
	// which then runs at 100 MB/s ⇒ finishes at 2.0.
	if !almostEqual(float64(tShort), 1.0) {
		t.Fatalf("short flow finished at %v, want 1.0", tShort)
	}
	if !almostEqual(float64(tLong), 2.0) {
		t.Fatalf("long flow finished at %v, want 2.0", tLong)
	}
}

func TestLocalTransferIsFree(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, 2, 100e6)
	var done sim.Time = -1
	f.Transfer(0, 0, 1e12, func() { done = eng.Now() })
	eng.Run()
	if done != 0 {
		t.Fatalf("local transfer finished at %v, want 0", done)
	}
}

func TestZeroByteTransferCompletes(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, 2, 100e6)
	fired := false
	f.Transfer(0, 1, 0, func() { fired = true })
	eng.Run()
	if !fired {
		t.Fatal("zero-byte transfer never completed")
	}
}

func TestCancelFreesBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, 3, 100e6)
	var survivor sim.Time
	fl := f.Transfer(0, 1, 1e9, func() { t.Error("cancelled flow completed") })
	f.Transfer(0, 2, 100e6, func() { survivor = eng.Now() })
	eng.At(1, func() { f.Cancel(fl) })
	eng.Run()
	// Survivor: 50 MB/s on [0,1) = 50 MB done, then 100 MB/s ⇒ done at 1.5.
	if !almostEqual(float64(survivor), 1.5) {
		t.Fatalf("survivor finished at %v, want 1.5", survivor)
	}
	if f.ActiveFlows() != 0 {
		t.Fatalf("ActiveFlows = %d, want 0", f.ActiveFlows())
	}
}

func TestUtilizationTracked(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, 2, 100e6)
	f.Transfer(0, 1, 100e6, func() {})
	eng.Run()
	if got := f.NIC(0).UtilOut.Mean(0, 1); !almostEqual(got, 1.0) {
		t.Fatalf("egress utilization = %v, want 1.0", got)
	}
	if got := f.NIC(1).UtilIn.Mean(0, 1); !almostEqual(got, 1.0) {
		t.Fatalf("ingress utilization = %v, want 1.0", got)
	}
	if got := f.NIC(1).UtilOut.Mean(0, 1); got != 0 {
		t.Fatalf("idle direction utilization = %v, want 0", got)
	}
}

func TestAllToAllShuffleSymmetry(t *testing.T) {
	// n machines, each sending the same volume to every other machine:
	// everything should finish simultaneously at (n−1)·vol / linkBW... with
	// per-link fair shares, each egress carries (n−1) flows of vol bytes.
	const n = 4
	const vol = 30e6
	eng := sim.NewEngine()
	f := NewFabric(eng, n, 100e6)
	var last sim.Time
	count := 0
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			f.Transfer(s, d, int64(vol), func() {
				count++
				last = eng.Now()
			})
		}
	}
	eng.Run()
	if count != n*(n-1) {
		t.Fatalf("completed %d flows, want %d", count, n*(n-1))
	}
	want := (n - 1) * vol / 100e6
	if !almostEqual(float64(last), want) {
		t.Fatalf("all-to-all finished at %v, want %v", last, want)
	}
}

func TestPropertyConservation(t *testing.T) {
	// For any single-sender fan-out, total completion time equals total
	// bytes / egress bandwidth (the egress link is work-conserving).
	for _, flows := range [][]int64{{10e6}, {10e6, 20e6}, {5e6, 5e6, 5e6, 85e6}} {
		eng := sim.NewEngine()
		f := NewFabric(eng, len(flows)+1, 100e6)
		var last sim.Time
		var total int64
		for i, b := range flows {
			total += b
			f.Transfer(0, i+1, b, func() { last = eng.Now() })
		}
		eng.Run()
		want := float64(total) / 100e6
		if !almostEqual(float64(last), want) {
			t.Fatalf("fan-out %v finished at %v, want %v", flows, last, want)
		}
	}
}

func TestTransferOutOfRangePanics(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, 2, 100e6)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range transfer did not panic")
		}
	}()
	f.Transfer(0, 5, 10, func() {})
}

// TestPropertyMaxMinInvariants: after any set of transfers starts, the
// computed rates must satisfy the max-min conditions — no link
// oversubscribed, and every flow limited by at least one saturated link.
func TestPropertyMaxMinInvariants(t *testing.T) {
	check := func(seed int64) {
		rng := newDeterministicRand(seed)
		eng := sim.NewEngine()
		n := 3 + rng.next()%5
		f := NewFabric(eng, n, 100e6)
		flows := make([]*Flow, 0, 20)
		for i := 0; i < 20; i++ {
			src := rng.next() % n
			dst := rng.next() % n
			if src == dst {
				dst = (dst + 1) % n
			}
			fl := f.Transfer(src, dst, int64(rng.next()%100+1)*1e6, func() {})
			if fl.Rate() > 0 || fl.Remaining() > 0 {
				flows = append(flows, fl)
			}
		}
		// Validate the rate assignment before anything completes.
		egress := make([]float64, n)
		ingress := make([]float64, n)
		for _, fl := range flows {
			if !fl.active {
				continue
			}
			egress[fl.src] += fl.rate
			ingress[fl.dst] += fl.rate
		}
		for i := 0; i < n; i++ {
			if egress[i] > 100e6*(1+1e-9) || ingress[i] > 100e6*(1+1e-9) {
				t.Fatalf("seed %d: link %d oversubscribed: out=%v in=%v", seed, i, egress[i], ingress[i])
			}
		}
		for _, fl := range flows {
			if !fl.active {
				continue
			}
			// Max-min: each flow must traverse a saturated link.
			srcSat := egress[fl.src] >= 100e6*(1-1e-6)
			dstSat := ingress[fl.dst] >= 100e6*(1-1e-6)
			if !srcSat && !dstSat {
				t.Fatalf("seed %d: flow %d→%d at %v has no saturated link", seed, fl.src, fl.dst, fl.rate)
			}
		}
		eng.Run()
	}
	for seed := int64(0); seed < 30; seed++ {
		check(seed)
	}
}

// deterministicRand is a tiny LCG so the property test needs no imports.
type deterministicRand struct{ state uint64 }

func newDeterministicRand(seed int64) *deterministicRand {
	return &deterministicRand{state: uint64(seed)*2862933555777941757 + 3037000493}
}

func (r *deterministicRand) next() int {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return int(r.state >> 33 & 0x7fffffff)
}
