package netsim

import (
	"testing"

	"repro/internal/sim"
)

// benchFabric runs a transfer pattern to completion and reports per-iteration
// cost. Each iteration builds a fresh engine and fabric, so the numbers
// include setup; the interesting signal is how cost scales with the pattern.
func benchFabric(b *testing.B, machines int, transfers func(f *Fabric)) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		f := NewFabric(eng, machines, 1e9)
		transfers(f)
		eng.Run()
	}
}

// BenchmarkFabricAllToAllShuffle is the worst case for rate recomputation:
// every flow shares a link with every machine's traffic, so each membership
// change re-solves one connected component containing all flows.
func BenchmarkFabricAllToAllShuffle(b *testing.B) {
	const n = 8
	benchFabric(b, n, func(f *Fabric) {
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if src != dst {
					f.Transfer(src, dst, 64<<20, func() {})
				}
			}
		}
	})
}

// BenchmarkFabricDisjointPairs is the best case for the component-restricted
// recomputation: flows between disjoint machine pairs never share a link, so
// each start or finish re-solves a single-flow component regardless of how
// many other transfers are in flight.
func BenchmarkFabricDisjointPairs(b *testing.B) {
	const n = 64
	benchFabric(b, n, func(f *Fabric) {
		for i := 0; i < n/2; i++ {
			// Unequal sizes so completions are spread out, forcing a rerate
			// per finish rather than one batched retirement.
			f.Transfer(2*i, 2*i+1, int64(16<<20)*int64(i+1), func() {})
		}
	})
}
