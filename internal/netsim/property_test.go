package netsim

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// The max-min fairness property tests: for hundreds of seeded random flow
// sets over heterogeneous fabrics, the water-filling allocation must satisfy
// the definition of max-min fairness exactly —
//
//  1. feasibility: no link (machine × direction) carries more than its
//     capacity;
//  2. bottleneck property: every flow traverses at least one saturated link
//     on which its rate is maximal (this characterizes max-min fairness: no
//     flow's rate can be raised without lowering a flow of equal-or-smaller
//     rate);
//  3. insertion-order independence: the allocation is a function of the flow
//     multiset, not of the order flows were started in.
//
// The flows are held open (huge sizes, engine never run) so the tests read
// the fabric's instantaneous rate assignment directly.

// flowCase is one random scenario: a fabric shape plus open flows.
type flowCase struct {
	bw    []float64 // per-machine full-duplex link speed
	pairs [][2]int  // (src, dst) per flow, src != dst
}

// randomCase draws a scenario from the seed: 2–8 machines with link speeds
// spread over ~an order of magnitude, and 1–25 flows between distinct
// machines (duplicate pairs allowed — incast and fan-out happen naturally).
func randomCase(seed int64) flowCase {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(7)
	c := flowCase{bw: make([]float64, n)}
	for i := range c.bw {
		c.bw[i] = (0.4 + rng.Float64()*3.6) * 125e6
	}
	m := 1 + rng.Intn(25)
	for i := 0; i < m; i++ {
		src := rng.Intn(n)
		dst := rng.Intn(n - 1)
		if dst >= src {
			dst++
		}
		c.pairs = append(c.pairs, [2]int{src, dst})
	}
	return c
}

// openFlows starts every flow in the given order and returns them, without
// running the engine (the flows are far too large to complete).
func openFlows(c flowCase, order []int) (*Fabric, []*Flow) {
	eng := sim.NewEngine()
	f := NewFabricBW(eng, c.bw)
	flows := make([]*Flow, len(c.pairs))
	for _, i := range order {
		p := c.pairs[i]
		flows[i] = f.Transfer(p[0], p[1], 1<<50, func() {})
	}
	return f, flows
}

// identity returns 0..n-1.
func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

const relEps = 1e-9

func TestMaxMinFairnessProperties(t *testing.T) {
	const cases = 250
	for seed := int64(1); seed <= cases; seed++ {
		c := randomCase(seed)
		f, flows := openFlows(c, identity(len(c.pairs)))

		// Aggregate rate per link.
		n := f.Size()
		egress := make([]float64, n)
		ingress := make([]float64, n)
		for fi, fl := range flows {
			if fl.Rate() <= 0 {
				t.Fatalf("seed %d: flow %d got zero rate", seed, fi)
			}
			egress[c.pairs[fi][0]] += fl.Rate()
			ingress[c.pairs[fi][1]] += fl.Rate()
		}

		// (1) Feasibility: no link above capacity.
		for i := 0; i < n; i++ {
			if egress[i] > c.bw[i]*(1+relEps) {
				t.Fatalf("seed %d: machine %d egress %.0f exceeds capacity %.0f",
					seed, i, egress[i], c.bw[i])
			}
			if ingress[i] > c.bw[i]*(1+relEps) {
				t.Fatalf("seed %d: machine %d ingress %.0f exceeds capacity %.0f",
					seed, i, ingress[i], c.bw[i])
			}
		}

		// (2) Bottleneck property: each flow has a saturated link where its
		// rate is maximal among the link's flows.
		for fi, fl := range flows {
			src, dst := c.pairs[fi][0], c.pairs[fi][1]
			ok := false
			for _, link := range []struct {
				saturated bool
				dir       int // 0 = egress at src, 1 = ingress at dst
			}{
				{egress[src] >= c.bw[src]*(1-1e-6), 0},
				{ingress[dst] >= c.bw[dst]*(1-1e-6), 1},
			} {
				if !link.saturated {
					continue
				}
				maximal := true
				for fj, other := range flows {
					onLink := (link.dir == 0 && c.pairs[fj][0] == src) ||
						(link.dir == 1 && c.pairs[fj][1] == dst)
					if onLink && other.Rate() > fl.Rate()*(1+1e-6) {
						maximal = false
						break
					}
				}
				if maximal {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("seed %d: flow %d (%d→%d, rate %.0f) has no saturated bottleneck link where it is maximal",
					seed, fi, src, dst, fl.Rate())
			}
		}

		// (3) Insertion-order independence: start the same flows in reversed
		// and seeded-shuffled orders; each flow must get the same rate.
		for variant, order := range [][]int{
			reversed(len(c.pairs)),
			shuffled(len(c.pairs), seed),
		} {
			_, flows2 := openFlows(c, order)
			for fi := range flows {
				a, b := flows[fi].Rate(), flows2[fi].Rate()
				if !almostEqual(a, b) {
					t.Fatalf("seed %d variant %d: flow %d rate %.2f under insertion order A but %.2f under order B",
						seed, variant, fi, a, b)
				}
			}
		}
	}
}

// TestMaxMinRatesAreDeterministic re-runs one scenario and requires
// bit-identical rates (not just nearly-equal): same inputs, same floats.
func TestMaxMinRatesAreDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		c := randomCase(seed)
		_, a := openFlows(c, identity(len(c.pairs)))
		_, b := openFlows(c, identity(len(c.pairs)))
		for i := range a {
			if a[i].Rate() != b[i].Rate() {
				t.Fatalf("seed %d: flow %d rate %v then %v on identical runs", seed, i, a[i].Rate(), b[i].Rate())
			}
		}
	}
}

// TestMaxMinWorkConserving checks that when one flow is alone on both of its
// links it gets the full min(src, dst) capacity — water-filling must not
// strand bandwidth.
func TestMaxMinWorkConserving(t *testing.T) {
	for seed := int64(1); seed <= 100; seed++ {
		c := randomCase(seed)
		_, flows := openFlows(c, identity(len(c.pairs)))
		for fi, fl := range flows {
			src, dst := c.pairs[fi][0], c.pairs[fi][1]
			alone := true
			for fj := range flows {
				if fj != fi && (c.pairs[fj][0] == src || c.pairs[fj][1] == dst) {
					alone = false
					break
				}
			}
			if !alone {
				continue
			}
			want := c.bw[src]
			if c.bw[dst] < want {
				want = c.bw[dst]
			}
			if !almostEqual(fl.Rate(), want) {
				t.Fatalf("seed %d: lone flow %d→%d rate %.0f, want full link %.0f", seed, src, dst, fl.Rate(), want)
			}
		}
	}
}

func reversed(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = n - 1 - i
	}
	return out
}

func shuffled(n int, seed int64) []int {
	out := identity(n)
	rand.New(rand.NewSource(seed*7919)).Shuffle(n, func(i, j int) {
		out[i], out[j] = out[j], out[i]
	})
	return out
}
