package telemetry_test

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/run"
	"repro/internal/task"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/workloads"
)

// sortRun executes a small monotasks sort with a sampler attached and returns
// the cluster, the sampler, and the jobs' metrics.
func sortRun(t *testing.T, cfg telemetry.Config) (*cluster.Cluster, *telemetry.Sampler, []*task.JobMetrics) {
	t.Helper()
	c := cluster.MustNew(4, cluster.M2_4XLarge())
	env := workloads.MustEnv(c)
	job, err := workloads.Sort{TotalBytes: 4 * units.GB, ValuesPerKey: 10}.Build(env)
	if err != nil {
		t.Fatal(err)
	}
	var s *telemetry.Sampler
	ms, err := run.Jobs(c, env.FS, run.Options{
		Mode:        run.Monotasks,
		Telemetry:   &cfg,
		OnTelemetry: func(got *telemetry.Sampler) { s = got },
	}, job)
	if err != nil {
		t.Fatal(err)
	}
	if s == nil {
		t.Fatal("OnTelemetry never called")
	}
	return c, s, ms
}

func TestSamplerCapturesLiveRun(t *testing.T) {
	c, s, ms := sortRun(t, telemetry.Config{Interval: 1})
	snaps := s.Snapshots()
	if len(snaps) < 3 {
		t.Fatalf("only %d snapshots for a multi-second run", len(snaps))
	}
	// Windows tile exactly and seq counts from 1.
	for i, sn := range snaps {
		if sn.Seq != i+1 {
			t.Fatalf("snapshot %d has seq %d", i, sn.Seq)
		}
		if i > 0 && sn.T0 != snaps[i-1].T1 {
			t.Fatalf("windows do not tile: snap %d starts at %v, previous ended %v",
				i, sn.T0, snaps[i-1].T1)
		}
		if len(sn.Machines) != c.Size() {
			t.Fatalf("snapshot %d covers %d machines, want %d", i, len(sn.Machines), c.Size())
		}
	}
	if snaps[0].T0 != 0 {
		t.Fatalf("first window starts at %v, want 0", snaps[0].T0)
	}
	// Mid-run snapshots see the sort actually running: live tasks, busy
	// devices, the default pool active.
	mid := snaps[len(snaps)/2]
	if len(mid.Jobs) != 1 || mid.Jobs[0].Name != ms[0].Name {
		t.Fatalf("mid-run jobs = %+v", mid.Jobs)
	}
	if mid.Jobs[0].Done || mid.Jobs[0].LiveTasks == 0 {
		t.Fatalf("mid-run job state %+v, want running with live tasks", mid.Jobs[0])
	}
	if len(mid.Pools) == 0 || mid.Pools[0].Name != "default" || mid.Pools[0].Active != 1 {
		t.Fatalf("mid-run pools = %+v", mid.Pools)
	}
	var busy bool
	for _, m := range mid.Machines {
		if m.CPU > 0 || m.Disk > 0 || m.Net > 0 {
			busy = true
		}
	}
	if !busy {
		t.Fatal("mid-run snapshot shows an idle cluster")
	}
	if mid.Stage.Bottleneck == "" {
		t.Fatal("mid-run snapshot has no bottleneck ranking")
	}

	// The last snapshot is the final one: engine drained, job done, and its
	// cumulative attribution equals the post-hoc call over the same window —
	// live clarity costs no accuracy.
	last := snaps[len(snaps)-1]
	if !last.Final {
		t.Fatalf("last snapshot not final: %+v", last)
	}
	if !last.Jobs[0].Done {
		t.Fatalf("final snapshot job not done: %+v", last.Jobs[0])
	}
	posthoc := model.Attribute(ms, 0, last.T1, model.ClusterResources(c))
	if len(last.Cumulative) != len(posthoc) {
		t.Fatalf("cumulative has %d jobs, post-hoc %d", len(last.Cumulative), len(posthoc))
	}
	for i, a := range posthoc {
		g := last.Cumulative[i]
		if g.Usage != a.Usage {
			t.Fatalf("job %d live usage %+v != post-hoc %+v", i, g.Usage, a.Usage)
		}
		if g.CPUShare != a.CPUShare || g.DiskShare != a.DiskShare || g.NetShare != a.NetShare ||
			g.IdealCPU != a.IdealCPU || g.IdealDisk != a.IdealDisk || g.IdealNet != a.IdealNet {
			t.Fatalf("job %d live attribution %+v != post-hoc %+v", i, g, a)
		}
	}
	if got, ok := s.Latest(); !ok || got.Seq != last.Seq {
		t.Fatalf("Latest() = %+v, %v", got, ok)
	}
}

func TestSamplerStreamIsDeterministic(t *testing.T) {
	stream := func() []byte {
		var buf bytes.Buffer
		st := telemetry.NewStreamer(&buf)
		_, s, _ := sortRun(t, telemetry.Config{Interval: 1, OnSnapshot: st.Observe})
		if st.Err() != nil {
			t.Fatal(st.Err())
		}
		// The streamed bytes must agree with serializing the ring after the
		// fact (nothing evicted at default ring size).
		var ring bytes.Buffer
		if err := telemetry.WriteJSONL(&ring, s.Snapshots()); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), ring.Bytes()) {
			t.Fatal("streamed bytes differ from ring serialization")
		}
		return buf.Bytes()
	}
	a, b := stream(), stream()
	if !bytes.Equal(a, b) {
		t.Fatal("telemetry streams differ between identical runs")
	}
	if len(a) == 0 {
		t.Fatal("empty telemetry stream")
	}
}

func TestRingEvictsOldest(t *testing.T) {
	_, s, _ := sortRun(t, telemetry.Config{Interval: 0.5, RingSize: 4})
	snaps := s.Snapshots()
	if len(snaps) != 4 {
		t.Fatalf("ring holds %d snapshots, want 4", len(snaps))
	}
	// Oldest evicted: retained seqs are the last four, in order, ending with
	// the final snapshot.
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Seq != snaps[i-1].Seq+1 {
			t.Fatalf("ring seqs not contiguous: %d then %d", snaps[i-1].Seq, snaps[i].Seq)
		}
	}
	if !snaps[3].Final || snaps[0].Seq == 1 {
		t.Fatalf("ring retained wrong end of the stream: seqs %d..%d, final=%v",
			snaps[0].Seq, snaps[3].Seq, snaps[3].Final)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	_, s, _ := sortRun(t, telemetry.Config{Interval: 2})
	want := s.Snapshots()
	var buf bytes.Buffer
	if err := telemetry.WriteJSONL(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := telemetry.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed snapshots:\ngot  %+v\nwant %+v", got[0], want[0])
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := telemetry.ReadJSONL(strings.NewReader("{\"seq\":1}\nnot json\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
	snaps, err := telemetry.ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || len(snaps) != 0 {
		t.Fatalf("blank stream: %v, %v", snaps, err)
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	return 0, errors.New("disk full")
}

func TestStreamerErrorIsSticky(t *testing.T) {
	fw := &failWriter{}
	st := telemetry.NewStreamer(fw)
	st.Observe(&telemetry.Snapshot{Seq: 1})
	st.Observe(&telemetry.Snapshot{Seq: 2})
	if st.Err() == nil {
		t.Fatal("write error not surfaced")
	}
	if fw.n != 1 {
		t.Fatalf("streamer kept writing after error: %d writes", fw.n)
	}
}

func TestRender(t *testing.T) {
	_, s, ms := sortRun(t, telemetry.Config{Interval: 1})
	last, _ := s.Latest()
	out := telemetry.Render(&last)
	for _, want := range []string{"monotop", "MACHINE", "m0", "POOL", "default", "JOB", ms[0].Name, "[final]", "bottleneck:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Rendering twice is stable.
	if out != telemetry.Render(&last) {
		t.Fatal("render not deterministic")
	}
	// A machine lacking a resource renders as absent, not 0%.
	abs := telemetry.Snapshot{Machines: []telemetry.MachineUtil{{Machine: 0, CPU: 0.5, Disk: -1, Net: -1}}}
	if r := telemetry.Render(&abs); !strings.Contains(r, "-") {
		t.Fatalf("absent resource not rendered: %s", r)
	}
}

func TestSamplerBindResumesAcrossDrains(t *testing.T) {
	// A long-lived session runs several actions on one engine; Bind must
	// re-arm the ticker after each drain so one ring spans the session.
	c := cluster.MustNew(2, cluster.M2_4XLarge())
	env := workloads.MustEnv(c)
	s := telemetry.Start(c, nil, telemetry.Config{Interval: 1})
	job, err := workloads.Sort{TotalBytes: 1 * units.GB, ValuesPerKey: 10}.Build(env)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		d, err := run.Driver(c, env.FS, run.Options{Mode: run.Monotasks})
		if err != nil {
			t.Fatal(err)
		}
		s.Bind(d)
		if _, err := d.Submit(job); err != nil {
			t.Fatal(err)
		}
		d.Run()
	}
	s.Stop()
	snaps := s.Snapshots()
	finals := 0
	for _, sn := range snaps {
		if sn.Final {
			finals++
		}
	}
	if finals < 2 {
		t.Fatalf("%d final snapshots across 2 actions, want ≥ 2", finals)
	}
	// The clock never rewinds across binds and windows still tile.
	for i := 1; i < len(snaps); i++ {
		if snaps[i].T0 != snaps[i-1].T1 {
			t.Fatalf("windows do not tile across binds: %v then %v", snaps[i-1].T1, snaps[i].T0)
		}
	}
}
