// Package telemetry is the live observability bus: a sampler registered as a
// recurring simulator event captures periodic Snapshots of a running
// cluster — per-machine utilization, per-pool scheduler state, and per-job
// attribution over the trailing window — while the jobs still execute. This
// is the paper's performance-clarity thesis (§6) applied in-run: instead of
// explaining a job after it finishes (internal/trace, post-hoc
// model.Attribute), any moment of an N-job run can be explained while it
// happens, generalizing the Fig. 16 two-job demo to a continuous feed.
//
// Determinism: samples are taken in virtual time by a sim.Ticker, so the
// snapshot stream is a pure function of (workload, cluster config, interval).
// Ticks interleave with device events under the engine's (time, seq)
// tie-break and the capture path only reads simulator state, so runs with and
// without telemetry execute identically, and the stream is bit-identical
// across repeated runs and across sweep --parallel worker counts.
//
// Sharded runs: the sampler's recurring tick is a global event, and the
// sharded engine (sim.Engine.ConfigureShards) caps every parallel window at
// min(lane lookahead horizon, next global event). Sampling therefore bounds
// window length — each tick is a synchronization barrier where lanes drain,
// stop, and hand control back to the coordinator so capture sees a
// consistent cluster. At the default 1-second interval this is harmless
// (device events outnumber ticks by orders of magnitude; windows stay
// multi-event, pinned by TestGoldenSortSamplerWindowCadence in
// internal/figures), but a sampler configured orders of magnitude hotter
// than the device-event rate degenerates the schedule into one window per
// tick and the sharded run executes serially with barrier overhead on top.
// Keep Interval coarse relative to mean event spacing when sharding matters.
package telemetry

import (
	"repro/internal/cluster"
	"repro/internal/jobsched"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/task"
)

// Config tunes a Sampler. The zero value is usable: 1-second virtual
// interval, 4096-snapshot ring, 8 utilization samples per machine per window.
type Config struct {
	// Interval is the virtual-time spacing between snapshots (default 1s).
	Interval sim.Duration
	// RingSize bounds how many snapshots the sampler retains (default 4096);
	// older snapshots fall off the front. A streaming consumer (OnSnapshot,
	// the JSONL exporter) sees every snapshot regardless.
	RingSize int
	// SamplesPerMachine is the utilization sampling density per window per
	// machine (default 8) — the n passed to metrics.MachineUtilSamples.
	SamplesPerMachine int
	// OnSnapshot, when set, observes every captured snapshot in order — the
	// hook the JSONL streamer and monobench --telemetry attach to. It runs on
	// the simulator goroutine; it must not mutate simulation state.
	OnSnapshot func(*Snapshot)
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 1
	}
	if c.RingSize <= 0 {
		c.RingSize = 4096
	}
	if c.SamplesPerMachine <= 0 {
		c.SamplesPerMachine = 8
	}
	return c
}

// MachineUtil is one machine's mean utilization per resource over a snapshot
// window, in [0, 1]. Resources the machine lacks (diskless spec, no NIC)
// report -1 so a renderer can distinguish "absent" from "idle".
type MachineUtil struct {
	Machine int     `json:"machine"`
	CPU     float64 `json:"cpu"`
	Disk    float64 `json:"disk"`
	Net     float64 `json:"net"`
	// Mem is the memory-bandwidth utilization on machines that model memory
	// as a fourth resource; nil (and absent from JSON) everywhere else, so
	// streams from memoryless clusters are byte-identical to before the
	// memory model existed.
	Mem *float64 `json:"mem,omitempty"`
}

// PoolStat is one scheduling pool's live state: admission-queue depth,
// admitted jobs, and running/pending task counts.
type PoolStat struct {
	Name    string `json:"name"`
	Queued  int    `json:"queued"`
	Active  int    `json:"active"`
	Running int    `json:"running"`
	Pending int    `json:"pending"`
}

// JobStat is one job's live state plus its attribution over the snapshot
// window: the monotask-exact resource shares and ideal times of
// model.Attribute, computed while the job runs.
type JobStat struct {
	Name      string `json:"name"`
	Pool      string `json:"pool"`
	LiveTasks int    `json:"live_tasks"`
	Done      bool   `json:"done"`
	Failed    bool   `json:"failed"`

	Usage                         metrics.MeasuredUsage `json:"usage"`
	CPUShare, DiskShare, NetShare float64
	IdealCPU, IdealDisk, IdealNet float64
	// MemShare and IdealMem stay zero — and out of the JSON stream — on
	// clusters without the memory model.
	MemShare float64 `json:"MemShare,omitempty"`
	IdealMem float64 `json:"IdealMem,omitempty"`
}

// Snapshot is one captured moment of a run: everything the sampler could
// read over the window [T0, T1). Field order (and every slice's order) is
// fixed, so encoding/json output is byte-stable.
type Snapshot struct {
	// Seq numbers snapshots from 1 in capture order.
	Seq int `json:"seq"`
	// T0, T1 bound the trailing window; windows tile exactly (T0 of each
	// snapshot equals T1 of the previous), which is why windowed attributions
	// sum to the whole run within rounding.
	T0 sim.Time `json:"t0"`
	T1 sim.Time `json:"t1"`

	Machines []MachineUtil `json:"machines"`
	Pools    []PoolStat    `json:"pools,omitempty"`
	Jobs     []JobStat     `json:"jobs,omitempty"`

	// Stage is the window's bottleneck ranking (Fig. 6's summary, live).
	Stage metrics.StageUtilization `json:"stage"`

	// Final marks the tick at which the engine had drained: all bound work
	// complete. Cumulative then holds the whole-run attribution [0, T1),
	// which a post-hoc model.Attribute call over the same window must equal
	// exactly — the live-equals-post-hoc property the golden test pins.
	Final      bool       `json:"final,omitempty"`
	Cumulative []JobStat  `json:"cumulative,omitempty"`
}

// Sampler captures Snapshots of one cluster on a recurring simulator event.
// It is single-threaded, like the engine it rides on: all methods must be
// called from the simulation's goroutine.
type Sampler struct {
	cfg  Config
	c    *cluster.Cluster
	d    *jobsched.Driver
	res  model.Resources
	tick *sim.Ticker

	ring  []Snapshot
	start int // ring read position
	count int
	seq   int
	lastT sim.Time
}

// Start attaches a sampler to c's engine, sampling every cfg.Interval of
// virtual time. d may be nil (no scheduler state yet); Bind attaches one
// later. The first window opens at the engine's current time.
func Start(c *cluster.Cluster, d *jobsched.Driver, cfg Config) *Sampler {
	cfg = cfg.withDefaults()
	s := &Sampler{
		cfg:   cfg,
		c:     c,
		d:     d,
		res:   model.ClusterResources(c),
		ring:  make([]Snapshot, 0, min(cfg.RingSize, 256)),
		lastT: c.Engine.Now(),
	}
	s.tick = c.Engine.Every(cfg.Interval, s.capture)
	return s
}

// Bind points the sampler at a driver and re-arms the ticker if the engine
// had drained — the pattern for a session that builds a fresh driver per
// action over one long-lived engine (monospark.Context). The ring persists
// across binds, so the stream spans the whole session.
func (s *Sampler) Bind(d *jobsched.Driver) {
	s.d = d
	s.tick.Kick()
}

// Stop halts sampling permanently. Snapshots already captured remain
// readable.
func (s *Sampler) Stop() { s.tick.Stop() }

// capture is the tick body: summarize the window [lastT, now) and advance.
func (s *Sampler) capture() {
	now := s.c.Engine.Now()
	t0, t1 := s.lastT, now
	s.lastT = now
	s.seq++
	snap := Snapshot{Seq: s.seq, T0: t0, T1: t1}

	n := s.cfg.SamplesPerMachine
	for _, m := range s.c.Machines {
		mu := MachineUtil{
			Machine: m.ID,
			CPU:     meanOrAbsent(metrics.MachineUtilSamples(m, metrics.CPU, t0, t1, n)),
			Disk:    meanOrAbsent(metrics.MachineUtilSamples(m, metrics.Disk, t0, t1, n)),
			Net:     meanOrAbsent(metrics.MachineUtilSamples(m, metrics.Network, t0, t1, n)),
		}
		// The memory series only exists on machines that model it; a nil
		// pointer keeps the field out of the stream everywhere else.
		if samples := metrics.MachineUtilSamples(m, metrics.Memory, t0, t1, n); samples != nil {
			v := meanOrAbsent(samples)
			mu.Mem = &v
		}
		snap.Machines = append(snap.Machines, mu)
	}
	snap.Stage = metrics.StageUtil(s.c, t0, t1, n)

	if s.d != nil {
		for _, name := range s.d.PoolNames() {
			snap.Pools = append(snap.Pools, PoolStat{
				Name:    name,
				Queued:  s.d.QueuedJobs(name),
				Active:  s.d.ActiveJobs(name),
				Running: s.d.RunningTasks(name),
				Pending: s.d.PendingTasks(name),
			})
		}
		snap.Jobs = s.jobStats(t0, t1)
	}

	// The tick that finds the queue empty is the last of this binding: all
	// bound work is complete, so the cumulative attribution here is the
	// whole-run answer a post-hoc Attribute call would give.
	if s.c.Engine.Len() == 0 {
		snap.Final = true
		if s.d != nil {
			snap.Cumulative = s.jobStats(0, now)
		}
	}

	s.push(snap)
	if s.cfg.OnSnapshot != nil {
		s.cfg.OnSnapshot(&snap)
	}
}

// jobStats attributes the window [t0, t1) across the driver's jobs: the live
// resource shares and per-resource ideal times of model.Attribute, joined
// with each job's scheduler state.
func (s *Sampler) jobStats(t0, t1 sim.Time) []JobStat {
	handles := s.d.Jobs()
	if len(handles) == 0 {
		return nil
	}
	jms := make([]*task.JobMetrics, len(handles))
	for i, h := range handles {
		jms[i] = h.Metrics
	}
	atts := model.Attribute(jms, t0, t1, s.res)
	out := make([]JobStat, len(handles))
	for i, h := range handles {
		a := atts[i]
		out[i] = JobStat{
			Name:      h.Spec.Name,
			Pool:      h.Pool,
			LiveTasks: h.LiveTasks(),
			Done:      h.Done(),
			Failed:    h.Failed(),
			Usage:     a.Usage,
			CPUShare:  a.CPUShare,
			DiskShare: a.DiskShare,
			NetShare:  a.NetShare,
			IdealCPU:  a.IdealCPU,
			IdealDisk: a.IdealDisk,
			IdealNet:  a.IdealNet,
			MemShare:  a.MemShare,
			IdealMem:  a.IdealMem,
		}
	}
	return out
}

// push appends snap to the bounded ring, evicting the oldest when full.
func (s *Sampler) push(snap Snapshot) {
	if len(s.ring) < s.cfg.RingSize {
		s.ring = append(s.ring, snap)
		s.count = len(s.ring)
		return
	}
	// Ring at capacity: overwrite the oldest slot.
	s.ring[s.start] = snap
	s.start = (s.start + 1) % len(s.ring)
}

// Snapshots returns the retained snapshots oldest-first (a copy).
func (s *Sampler) Snapshots() []Snapshot {
	out := make([]Snapshot, 0, s.count)
	for i := 0; i < s.count; i++ {
		out = append(out, s.ring[(s.start+i)%len(s.ring)])
	}
	return out
}

// Latest returns the most recent snapshot, if any.
func (s *Sampler) Latest() (Snapshot, bool) {
	if s.count == 0 {
		return Snapshot{}, false
	}
	return s.ring[(s.start+s.count-1)%len(s.ring)], true
}

// meanOrAbsent averages a sample series, or returns -1 for a machine that
// lacks the resource (nil series).
func meanOrAbsent(samples []float64) float64 {
	if samples == nil {
		return -1
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	if len(samples) == 0 {
		return 0
	}
	return sum / float64(len(samples))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
