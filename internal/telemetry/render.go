package telemetry

import (
	"fmt"
	"strings"
	"text/tabwriter"
)

// Render formats one snapshot as the top(1)-style view cmd/monotop shows:
// header with the window and bottleneck ranking, then per-machine utilization,
// per-pool scheduler state, and per-job live attribution. Pure function of the
// snapshot, so it is as deterministic as the stream it renders.
func Render(s *Snapshot) string {
	var b strings.Builder
	final := ""
	if s.Final {
		final = "  [final]"
	}
	fmt.Fprintf(&b, "monotop  t=%.3fs  snapshot %d  window [%.3f, %.3f)%s\n",
		float64(s.T1), s.Seq, float64(s.T0), float64(s.T1), final)
	fmt.Fprintf(&b, "bottleneck: %-8s p50=%s p95=%s   second: %-8s p50=%s\n\n",
		s.Stage.Bottleneck, pct(s.Stage.BottleneckBox.P50), pct(s.Stage.BottleneckBox.P95),
		s.Stage.Second, pct(s.Stage.SecondBox.P50))

	// The MEM column exists only when some machine models memory as a fourth
	// resource, so snapshots from memoryless clusters render exactly as they
	// did before the memory model existed.
	hasMem := false
	for i := range s.Machines {
		if s.Machines[i].Mem != nil {
			hasMem = true
			break
		}
	}
	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	if hasMem {
		fmt.Fprintln(tw, "MACHINE\tCPU\tDISK\tNET\tMEM")
	} else {
		fmt.Fprintln(tw, "MACHINE\tCPU\tDISK\tNET")
	}
	for _, m := range s.Machines {
		if hasMem {
			mem := -1.0
			if m.Mem != nil {
				mem = *m.Mem
			}
			fmt.Fprintf(tw, "m%d\t%s\t%s\t%s\t%s\n", m.Machine, pct(m.CPU), pct(m.Disk), pct(m.Net), pct(mem))
		} else {
			fmt.Fprintf(tw, "m%d\t%s\t%s\t%s\n", m.Machine, pct(m.CPU), pct(m.Disk), pct(m.Net))
		}
	}
	tw.Flush()

	if len(s.Pools) > 0 {
		b.WriteByte('\n')
		tw = tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
		fmt.Fprintln(tw, "POOL\tQUEUED\tACTIVE\tRUNNING\tPENDING")
		for _, p := range s.Pools {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\n", p.Name, p.Queued, p.Active, p.Running, p.Pending)
		}
		tw.Flush()
	}

	if len(s.Jobs) > 0 {
		b.WriteByte('\n')
		tw = tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
		if hasMem {
			fmt.Fprintln(tw, "JOB\tPOOL\tSTATE\tTASKS\tCPU%\tDISK%\tNET%\tMEM%\tIDEAL-CPU\tIDEAL-DISK\tIDEAL-NET\tIDEAL-MEM")
		} else {
			fmt.Fprintln(tw, "JOB\tPOOL\tSTATE\tTASKS\tCPU%\tDISK%\tNET%\tIDEAL-CPU\tIDEAL-DISK\tIDEAL-NET")
		}
		for i := range s.Jobs {
			j := &s.Jobs[i]
			if hasMem {
				fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%s\t%s\t%s\t%s\t%.2fs\t%.2fs\t%.2fs\t%.2fs\n",
					j.Name, j.Pool, jobState(j), j.LiveTasks,
					pct(j.CPUShare), pct(j.DiskShare), pct(j.NetShare), pct(j.MemShare),
					j.IdealCPU, j.IdealDisk, j.IdealNet, j.IdealMem)
			} else {
				fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%s\t%s\t%s\t%.2fs\t%.2fs\t%.2fs\n",
					j.Name, j.Pool, jobState(j), j.LiveTasks,
					pct(j.CPUShare), pct(j.DiskShare), pct(j.NetShare),
					j.IdealCPU, j.IdealDisk, j.IdealNet)
			}
		}
		tw.Flush()
	}
	return b.String()
}

// jobState is the one-word status column.
func jobState(j *JobStat) string {
	switch {
	case j.Failed:
		return "failed"
	case j.Done:
		return "done"
	case j.LiveTasks > 0:
		return "running"
	default:
		return "waiting"
	}
}

// pct renders a [0,1] fraction as a percentage, "-" for absent (-1).
func pct(f float64) string {
	if f < 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", f*100)
}
