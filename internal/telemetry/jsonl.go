package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// This file is the snapshot stream's wire format: JSON Lines, one Snapshot
// per line. encoding/json emits float64s in their shortest round-trippable
// form and every Snapshot field is an ordered struct or slice (no maps), so
// the byte stream is a deterministic function of the snapshots — the property
// the golden test pins across runs and parallel worker counts.

// Streamer writes each observed snapshot to w as one JSON line. Attach its
// Observe method as Config.OnSnapshot. Write errors are sticky: the first is
// retained (Err) and later snapshots are dropped, so a full disk degrades the
// stream rather than the simulation.
type Streamer struct {
	w   io.Writer
	err error
}

// NewStreamer wraps w as a snapshot sink.
func NewStreamer(w io.Writer) *Streamer { return &Streamer{w: w} }

// Observe appends one snapshot to the stream.
func (s *Streamer) Observe(snap *Snapshot) {
	if s.err != nil {
		return
	}
	s.err = writeSnapshot(s.w, snap)
}

// Err reports the first write or encode error, nil if the stream is healthy.
func (s *Streamer) Err() error { return s.err }

func writeSnapshot(w io.Writer, snap *Snapshot) error {
	b, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteJSONL writes snapshots to w, one JSON line each.
func WriteJSONL(w io.Writer, snaps []Snapshot) error {
	for i := range snaps {
		if err := writeSnapshot(w, &snaps[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses a snapshot stream produced by WriteJSONL or a Streamer.
// Blank lines are skipped; a malformed line fails with its line number.
func ReadJSONL(r io.Reader) ([]Snapshot, error) {
	var out []Snapshot
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var s Snapshot
		if err := json.Unmarshal(b, &s); err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
