package sweep

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestResultsInCellOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		got, err := RunWorkers(workers, 50, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d: %d results, want 50", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestLowestIndexErrorWins(t *testing.T) {
	wantErr := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := RunWorkers(workers, 20, func(i int) (int, error) {
			if i == 7 || i == 13 {
				return 0, fmt.Errorf("cell says %d: %w", i, wantErr)
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		if !errors.Is(err, wantErr) {
			t.Fatalf("workers=%d: error %v does not wrap the cell error", workers, err)
		}
		if !strings.Contains(err.Error(), "cell 7") {
			t.Fatalf("workers=%d: error %q should name the lowest failing cell 7", workers, err)
		}
	}
}

func TestPanicIsReRaisedWithCell(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic was swallowed")
		}
		if !strings.Contains(fmt.Sprint(r), "cell 3") {
			t.Fatalf("panic %v should name cell 3", r)
		}
	}()
	_, _ = RunWorkers(4, 10, func(i int) (int, error) {
		if i == 3 {
			panic("kaput")
		}
		return i, nil
	})
}

func TestEveryCellRunsExactlyOnce(t *testing.T) {
	var calls [200]atomic.Int32
	_, err := RunWorkers(16, len(calls), func(i int) (struct{}, error) {
		calls[i].Add(1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Fatalf("cell %d ran %d times", i, n)
		}
	}
}

func TestZeroCells(t *testing.T) {
	got, err := Run(0, func(i int) (int, error) { t.Fatal("called"); return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("Run(0) = %v, %v; want nil, nil", got, err)
	}
}

func TestSetParallelismClamps(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)
	SetParallelism(-3)
	if Parallelism() != 1 {
		t.Fatalf("Parallelism() = %d after SetParallelism(-3), want 1", Parallelism())
	}
	SetParallelism(8)
	if Parallelism() != 8 {
		t.Fatalf("Parallelism() = %d, want 8", Parallelism())
	}
}
