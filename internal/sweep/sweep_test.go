package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestResultsInCellOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		got, err := RunWorkers(workers, 50, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d: %d results, want 50", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestFailedCellsReportedInOrder(t *testing.T) {
	wantErr := errors.New("boom")
	for _, workers := range []int{1, 4} {
		got, err := RunWorkers(workers, 20, func(i int) (int, error) {
			if i == 7 || i == 13 {
				return 0, fmt.Errorf("cell says %d: %w", i, wantErr)
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		if !errors.Is(err, wantErr) {
			t.Fatalf("workers=%d: error %v does not wrap the cell error", workers, err)
		}
		// Every failing cell is named, lowest first.
		msg := err.Error()
		p7, p13 := strings.Index(msg, "cell 7"), strings.Index(msg, "cell 13")
		if p7 < 0 || p13 < 0 || p7 > p13 {
			t.Fatalf("workers=%d: error %q should name cells 7 and 13 in order", workers, msg)
		}
		// Healthy cells still ran and returned results alongside the error.
		if len(got) != 20 || got[6] != 6 || got[19] != 19 {
			t.Fatalf("workers=%d: healthy results lost: %v", workers, got)
		}
	}
}

func TestPanicBecomesCellError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		got, err := RunWorkers(workers, 10, func(i int) (int, error) {
			if i == 3 {
				panic("kaput")
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: cell panic not reported", workers)
		}
		msg := err.Error()
		if !strings.Contains(msg, "cell 3") || !strings.Contains(msg, "kaput") {
			t.Fatalf("workers=%d: error %q should name cell 3 and the panic value", workers, msg)
		}
		if len(got) != 10 || got[9] != 9 {
			t.Fatalf("workers=%d: healthy results lost after a cell panic: %v", workers, got)
		}
	}
}

func TestDeadlineFailsUnstartedCells(t *testing.T) {
	defer SetDeadline(time.Time{})
	SetDeadline(time.Now().Add(-time.Second))
	_, err := RunWorkers(4, 8, func(i int) (int, error) {
		t.Errorf("cell %d ran past the deadline", i)
		return i, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired sweep deadline: want DeadlineExceeded in chain, got %v", err)
	}
	// Clearing the deadline restores normal operation.
	SetDeadline(time.Time{})
	if _, err := RunWorkers(4, 8, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatalf("after clearing deadline: %v", err)
	}
}

func TestEveryCellRunsExactlyOnce(t *testing.T) {
	var calls [200]atomic.Int32
	_, err := RunWorkers(16, len(calls), func(i int) (struct{}, error) {
		calls[i].Add(1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Fatalf("cell %d ran %d times", i, n)
		}
	}
}

func TestZeroCells(t *testing.T) {
	got, err := Run(0, func(i int) (int, error) { t.Fatal("called"); return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("Run(0) = %v, %v; want nil, nil", got, err)
	}
}

func TestSetParallelismClamps(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)
	SetParallelism(-3)
	if Parallelism() != 1 {
		t.Fatalf("Parallelism() = %d after SetParallelism(-3), want 1", Parallelism())
	}
	SetParallelism(8)
	if Parallelism() != 8 {
		t.Fatalf("Parallelism() = %d, want 8", Parallelism())
	}
}
