// Package sweep fans the independent cells of an experiment grid across a
// pool of worker goroutines and collects their results in deterministic cell
// order.
//
// Every monobench experiment is a grid — seeds × configurations × executor
// modes — whose cells share no mutable state: each cell builds its own
// cluster, engine, and workload from scratch, runs to completion in virtual
// time, and returns a value. That makes the grid embarrassingly parallel,
// and because collection is by cell index (not completion order), the
// assembled output of a parallel sweep is byte-identical to a serial one.
// internal/figures runs all of its grids through this package, and
// cmd/monobench exposes the worker count as --parallel.
//
// The process-wide default worker count starts at runtime.NumCPU and can be
// changed with SetParallelism; Run uses it, RunWorkers takes an explicit
// count. With one worker the cells run inline on the calling goroutine, so
// --parallel 1 is exactly the pre-sweep serial execution.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// defaultWorkers is the process-wide worker count used by Run. It is atomic
// so experiment code and flag parsing may race harmlessly.
var defaultWorkers atomic.Int64

func init() {
	defaultWorkers.Store(int64(runtime.NumCPU()))
}

// Parallelism reports the current process-wide default worker count.
func Parallelism() int { return int(defaultWorkers.Load()) }

// SetParallelism sets the process-wide default worker count used by Run.
// Values below 1 are clamped to 1 (serial, inline execution).
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	defaultWorkers.Store(int64(n))
}

// deadline is the process-wide wall-clock cutoff for sweep cells (zero =
// none). Cells not yet started when it passes fail with a deadline error
// instead of running; in-flight cells are aborted cooperatively by runners
// that thread Deadline() into run.Options.WallDeadline (internal/figures
// does). This is the mechanism behind monobench --timeout.
var deadline atomic.Value // time.Time

// SetDeadline installs (or, with a zero time, clears) the process-wide cell
// deadline.
func SetDeadline(t time.Time) { deadline.Store(t) }

// Deadline reports the current cell deadline (zero when none is set).
func Deadline() time.Time {
	t, _ := deadline.Load().(time.Time)
	return t
}

// errSweepDeadline fails cells that were never started. It matches
// context.DeadlineExceeded via errors.Is, like the run layer's own deadline
// aborts, so callers can treat every timeout shape alike.
var errSweepDeadline = fmt.Errorf("sweep deadline exceeded before the cell started: %w", context.DeadlineExceeded)

// deadlinePassed reports whether the sweep deadline is set and behind us.
func deadlinePassed() bool {
	t := Deadline()
	return !t.IsZero() && time.Now().After(t)
}

// runCell executes one cell, converting a panic into a per-cell error so a
// crashing configuration is reported as a failed cell in the sweep's result
// instead of killing the whole process.
func runCell[T any](fn func(cell int) (T, error), i int) (v T, err error) {
	if deadlinePassed() {
		return v, errSweepDeadline
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cell panicked: %v", r)
		}
	}()
	return fn(i)
}

// joinCellErrors aggregates per-cell failures in cell order (lowest index
// first), so the combined error is deterministic and names every failed
// cell. Returns nil when no cell failed.
func joinCellErrors(errs []error) error {
	var failed []error
	for i, err := range errs {
		if err != nil {
			failed = append(failed, fmt.Errorf("sweep: cell %d: %w", i, err))
		}
	}
	if len(failed) == 0 {
		return nil
	}
	if len(failed) == 1 {
		return failed[0]
	}
	return fmt.Errorf("sweep: %d cells failed: %w", len(failed), errors.Join(failed...))
}

// Run executes cells 0..cells-1 with fn using the process-wide default
// parallelism and returns the results indexed by cell. See RunWorkers.
func Run[T any](cells int, fn func(cell int) (T, error)) ([]T, error) {
	return RunWorkers(Parallelism(), cells, fn)
}

// RunWorkers executes cells 0..cells-1 with fn on up to workers goroutines
// and returns the results indexed by cell. Cells must be independent: fn is
// called concurrently from multiple goroutines and must not share mutable
// state across cells.
//
// Determinism contract: the returned slice is ordered by cell index, and
// when any cells fail, the combined error lists the failing cells in
// ascending index order — both independent of goroutine scheduling. A panic
// in a cell is recovered into that cell's error, annotated with the cell
// number, so one crashing configuration marks its cell failed instead of
// killing the sweep; healthy cells still run and their results are returned
// alongside the error. When a SetDeadline cutoff passes mid-sweep, cells
// not yet started fail with a deadline error (matching
// context.DeadlineExceeded) rather than running.
func RunWorkers[T any](workers, cells int, fn func(cell int) (T, error)) ([]T, error) {
	if cells <= 0 {
		return nil, nil
	}
	results := make([]T, cells)
	errs := make([]error, cells)
	if workers > cells {
		workers = cells
	}
	if workers <= 1 {
		for i := 0; i < cells; i++ {
			results[i], errs[i] = runCell(fn, i)
		}
		return results, joinCellErrors(errs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cells {
					return
				}
				results[i], errs[i] = runCell(fn, i)
			}
		}()
	}
	wg.Wait()
	return results, joinCellErrors(errs)
}
