// Package sweep fans the independent cells of an experiment grid across a
// pool of worker goroutines and collects their results in deterministic cell
// order.
//
// Every monobench experiment is a grid — seeds × configurations × executor
// modes — whose cells share no mutable state: each cell builds its own
// cluster, engine, and workload from scratch, runs to completion in virtual
// time, and returns a value. That makes the grid embarrassingly parallel,
// and because collection is by cell index (not completion order), the
// assembled output of a parallel sweep is byte-identical to a serial one.
// internal/figures runs all of its grids through this package, and
// cmd/monobench exposes the worker count as --parallel.
//
// The process-wide default worker count starts at runtime.NumCPU and can be
// changed with SetParallelism; Run uses it, RunWorkers takes an explicit
// count. With one worker the cells run inline on the calling goroutine, so
// --parallel 1 is exactly the pre-sweep serial execution.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers is the process-wide worker count used by Run. It is atomic
// so experiment code and flag parsing may race harmlessly.
var defaultWorkers atomic.Int64

func init() {
	defaultWorkers.Store(int64(runtime.NumCPU()))
}

// Parallelism reports the current process-wide default worker count.
func Parallelism() int { return int(defaultWorkers.Load()) }

// SetParallelism sets the process-wide default worker count used by Run.
// Values below 1 are clamped to 1 (serial, inline execution).
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	defaultWorkers.Store(int64(n))
}

// Run executes cells 0..cells-1 with fn using the process-wide default
// parallelism and returns the results indexed by cell. See RunWorkers.
func Run[T any](cells int, fn func(cell int) (T, error)) ([]T, error) {
	return RunWorkers(Parallelism(), cells, fn)
}

// RunWorkers executes cells 0..cells-1 with fn on up to workers goroutines
// and returns the results indexed by cell. Cells must be independent: fn is
// called concurrently from multiple goroutines and must not share mutable
// state across cells.
//
// Determinism contract: the returned slice is ordered by cell index, and
// when any cells fail, the reported error is the failing cell with the
// lowest index — both independent of goroutine scheduling. A panic in a
// cell is re-raised on the calling goroutine (again lowest-index first),
// annotated with the cell number.
func RunWorkers[T any](workers, cells int, fn func(cell int) (T, error)) ([]T, error) {
	if cells <= 0 {
		return nil, nil
	}
	results := make([]T, cells)
	if workers > cells {
		workers = cells
	}
	if workers <= 1 {
		for i := 0; i < cells; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, fmt.Errorf("sweep: cell %d: %w", i, err)
			}
			results[i] = v
		}
		return results, nil
	}
	errs := make([]error, cells)
	panics := make([]any, cells)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cells {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panics[i] = r
						}
					}()
					results[i], errs[i] = fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	for i, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("sweep: cell %d panicked: %v", i, p))
		}
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sweep: cell %d: %w", i, err)
		}
	}
	return results, nil
}
