package figures

// Lane-occupancy instrumentation for the sharded engine: run the golden
// sort's Monotasks leg once and keep the engine's occupancy counters, so
// tests and monoperf can measure how much of a real product run executes on
// shard lanes versus the global timeline. The serial-vs-sharded wall-clock
// rows in BENCH_7.json and the ≥50% occupancy gate both come through here.

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/run"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// SortLaneStats is one Monotasks-mode sort execution with the engine's
// shard-occupancy counters retained alongside the job timings.
type SortLaneStats struct {
	// Job is the simulated job duration (virtual time, not wall clock).
	Job sim.Duration
	// LaneEvents, GlobalEvents, and Windows mirror Engine.OccupancyStats:
	// events drained on shard lanes, events executed on the global timeline,
	// and parallel windows opened. All three stay zero on a serial run.
	LaneEvents   uint64
	GlobalEvents uint64
	Windows      uint64
	// Occupancy is LaneEvents / (LaneEvents + GlobalEvents) — the fraction
	// of the run's events that never touched the global timeline.
	Occupancy float64
	// Output is a full-precision render of the job's timings: the byte-
	// identity probe a serial-vs-sharded comparison diffs. Human-facing
	// renders round; the equivalence contract is bitwise.
	Output []byte
}

// SortMonotasks runs the golden sort workload's Monotasks leg at the given
// shard count (0 = serial engine) and reports the job timings plus the
// engine's lane-occupancy counters. It executes exactly the code path the
// golden corpus locks down, so its Output is comparable across engine modes:
// TestGoldenShardedVsSerial pins the figure output, this entry point exposes
// the wall-clock and occupancy side the golden bytes deliberately omit.
func SortMonotasks(totalBytes int64, machines, shards int) (*SortLaneStats, error) {
	res, err := execute(machines, cluster.M2_4XLarge(),
		run.Options{Mode: run.Monotasks, Shards: shards},
		workloads.Sort{TotalBytes: totalBytes, ValuesPerKey: 10}.Build)
	if err != nil {
		return nil, err
	}
	j := res.Jobs[0]
	lane, global, windows := res.Cluster.Engine.OccupancyStats()
	st := &SortLaneStats{
		Job:          j.Duration(),
		LaneEvents:   lane,
		GlobalEvents: global,
		Windows:      windows,
		Occupancy:    res.Cluster.Engine.LaneOccupancy(),
	}
	st.Output = []byte(fmt.Sprintf("monotasks job=%.9f map=%.9f reduce=%.9f\n",
		float64(j.Duration()), float64(j.Stages[0].Duration()), float64(j.Stages[1].Duration())))
	return st, nil
}
