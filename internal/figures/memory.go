package figures

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/run"
	"repro/internal/sweep"
	"repro/internal/task"
	"repro/internal/units"
	"repro/internal/workloads"
)

// The memory experiment is the scale-up data-volume study from the
// in-memory-analytics papers (Awan et al.; "How Data Volume Affects Spark"):
// the same cached-scan job on one fat machine, swept over working-set sizes.
// Small volumes are CPU-bound; as the working set grows, cache-miss and
// GC-churn amplification push memory-system traffic up faster than CPU work,
// the reported bottleneck migrates from CPU to memory bandwidth, capacity
// pressure starts spilling task buffers to disk, and GC pauses stall the
// cores. Each row also reports the monotask attribution error against the
// machine's OS-counter view — in the memory-bound cells the compute
// monotasks' spans absorb memory stalls and GC pauses, so the error is real
// and must be reported, not hidden.

// MemoryRow is one data-volume cell of the sweep.
type MemoryRow struct {
	GB      float64
	Seconds float64
	// Ideal per-resource completion times (§6.1), memory included.
	IdealCPU, IdealDisk, IdealNet, IdealMem float64
	Bottleneck                              task.Resource
	// GCPauses counts stop-the-world events; SpillBytes is the task-buffer
	// overflow staged to disk; PeakResident is the capacity high-water mark.
	GCPauses     int
	SpillBytes   int64
	PeakResident int64
	// AttribErrPct is model.AttributionError between the job's monotask
	// attribution and the machine's measured counters, in percent.
	AttribErrPct float64
}

// MemoryResult is the experiment's full output.
type MemoryResult struct {
	Cores       int
	MemBWGBps   float64
	CapacityGB  float64
	Rows        []MemoryRow
	MigratedAt  float64 // first swept volume whose bottleneck is memory (0 if none)
}

// MemoryVolumes returns the swept working-set sizes in bytes. Smoke keeps
// one cell from each regime so CI still witnesses the migration.
func MemoryVolumes(smoke bool) []int64 {
	if smoke {
		return []int64{8 * units.GB, 64 * units.GB}
	}
	return []int64{8 * units.GB, 16 * units.GB, 32 * units.GB, 64 * units.GB, 128 * units.GB}
}

// Memory runs the data-volume sweep. Every cell is an independent simulation
// and goes through the sweep pool.
func Memory(smoke bool) (*MemoryResult, error) {
	spec := cluster.FatNode()
	volumes := MemoryVolumes(smoke)
	rows, err := sweep.Run(len(volumes), func(i int) (MemoryRow, error) {
		return memoryCell(spec, volumes[i])
	})
	if err != nil {
		return nil, err
	}
	out := &MemoryResult{
		Cores:      spec.Cores,
		MemBWGBps:  spec.Mem.BandwidthBPS / 1e9,
		CapacityGB: float64(spec.Mem.CapacityBytes) / float64(units.GB),
		Rows:       rows,
	}
	for _, r := range rows {
		if r.Bottleneck == task.MemoryResource {
			out.MigratedAt = r.GB
			break
		}
	}
	return out, nil
}

// memoryCell runs one working-set size on a fresh fat machine.
func memoryCell(spec cluster.MachineSpec, volume int64) (MemoryRow, error) {
	res, err := execute(1, spec, run.Options{Mode: run.Monotasks},
		func(env *workloads.Env) (*task.JobSpec, error) {
			return workloads.ScaleUp{TotalBytes: volume}.Build(env)
		})
	if err != nil {
		return MemoryRow{}, err
	}
	jm := res.Jobs[0]
	resources := model.ClusterResources(res.Cluster)
	profile := model.FromMetrics(jm, resources)

	row := MemoryRow{
		GB:      float64(volume) / float64(units.GB),
		Seconds: float64(jm.Duration()),
	}
	for _, sp := range profile.Stages {
		c, d, n, m := sp.IdealTimes(resources)
		row.IdealCPU += c
		row.IdealDisk += d
		row.IdealNet += n
		row.IdealMem += m
	}
	// Single-stage job: the stage bottleneck is the job bottleneck.
	row.Bottleneck = profile.Stages[0].Bottleneck(resources)

	for _, m := range res.Cluster.Machines {
		if m.Memory != nil {
			row.GCPauses += m.Memory.GCCount()
			if p := m.Memory.Peak(); p > row.PeakResident {
				row.PeakResident = p
			}
		}
	}
	for _, sm := range jm.Stages {
		row.SpillBytes += sm.MonotaskBytes(task.DiskResource, task.KindMemSpill)
	}

	// Attribution error: the job's monotask attribution vs the machine's
	// measured counters over the whole run. Memory-bound cells report a
	// genuine error — compute spans absorb memory stalls and GC pauses the
	// counters do not charge to CPU.
	att := model.Attribute([]*task.JobMetrics{jm}, 0, jm.End, resources)
	truth := metrics.Measure(res.Cluster, 0, jm.End)
	row.AttribErrPct = model.AttributionError(att[0].Usage, truth) * 100
	return row, nil
}

// Fprint renders the sweep table.
func (r *MemoryResult) Fprint(w io.Writer) {
	fprintf(w, "memory: scale-up data-volume sweep, 1 fat machine (%d cores, %.0f GB/s mem BW, %.0f GB capacity)\n",
		r.Cores, r.MemBWGBps, r.CapacityGB)
	fprintf(w, "%-8s %10s %8s %8s %8s %8s %11s %6s %10s %10s %8s\n",
		"data", "actual(s)", "cpu*", "disk*", "net*", "mem*", "bottleneck", "gc", "spill", "peak-res", "err%")
	for _, row := range r.Rows {
		fprintf(w, "%-8s %10.1f %8.1f %8.1f %8.1f %8.1f %11v %6d %10s %10s %8.1f\n",
			units.FormatBytes(int64(row.GB*float64(units.GB))), row.Seconds,
			row.IdealCPU, row.IdealDisk, row.IdealNet, row.IdealMem,
			row.Bottleneck, row.GCPauses,
			units.FormatBytes(row.SpillBytes), units.FormatBytes(row.PeakResident),
			row.AttribErrPct)
	}
	if r.MigratedAt > 0 {
		fprintf(w, "bottleneck migrates CPU -> memory at %.0f GB (papers' data-volume finding)\n", r.MigratedAt)
	} else {
		fprintf(w, "bottleneck never migrated to memory over this sweep\n")
	}
}

// CSV exports the table.
func (r *MemoryResult) CSV() *CSVTable {
	t := &CSVTable{Name: "memory", Header: []string{
		"gb", "seconds", "ideal_cpu_s", "ideal_disk_s", "ideal_net_s", "ideal_mem_s",
		"bottleneck", "gc_pauses", "spill_bytes", "peak_resident_bytes", "attrib_err_pct",
	}}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			f1(row.GB), f1(row.Seconds), f3(row.IdealCPU), f3(row.IdealDisk), f3(row.IdealNet), f3(row.IdealMem),
			row.Bottleneck.String(), fmt.Sprintf("%d", row.GCPauses),
			fmt.Sprintf("%d", row.SpillBytes), fmt.Sprintf("%d", row.PeakResident), f1(row.AttribErrPct)})
	}
	return t
}
