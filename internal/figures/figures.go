// Package figures regenerates every table and figure in the paper's
// evaluation (§5–§7). Each FigNN function runs the corresponding experiment
// on the virtual cluster and returns a result that prints the same rows or
// series the paper reports. The cmd/monobench binary and bench_test.go are
// thin wrappers over these functions; EXPERIMENTS.md records paper-vs-
// measured for each.
package figures

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/run"
	"repro/internal/sweep"
	"repro/internal/task"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// Telemetry hook: when set, every executed figure run (and every chaos cell)
// attaches a live sampler and hands the finished sampler to sink. Sweep cells
// run on parallel workers, so sink must be safe for concurrent calls; the
// config is shared read-only across runs (leave Config.OnSnapshot nil and
// read each sampler's ring from the sink instead). Collectors that need a
// byte-stable file across --parallel worker counts should serialize each
// sampler to its own chunk and order chunks canonically (see monobench).
var (
	telemetryCfg  *telemetry.Config
	telemetrySink func(*telemetry.Sampler)
)

// SetTelemetry installs (or, with a nil cfg, clears) the telemetry hook. Not
// safe to call while experiments run.
func SetTelemetry(cfg *telemetry.Config, sink func(*telemetry.Sampler)) {
	telemetryCfg = cfg
	telemetrySink = sink
}

// shardCount, when above 1, runs every executed figure (and chaos cell) on
// the sharded engine with that many shards. Like the telemetry hook, it is
// shared read-only across sweep workers.
var shardCount int

// SetShards installs (or, with n ≤ 1, clears) the shard-count hook — the
// monobench --shards plumbing. Sharding is an execution strategy with
// bit-identical results at any shard count, so flipping it never changes
// figure output (pinned by TestGoldenShardedVsSerial). Not safe to call
// while experiments run.
func SetShards(n int) {
	shardCount = n
}

// workerDispatch, when true, runs every executed figure (and chaos cell)
// with the delegated control plane (jobsched.Config.WorkerDispatch). Like
// the shard hook, it is shared read-only across sweep workers.
var workerDispatch bool

// SetWorkerDispatch installs (or clears) the worker-dispatch hook — the
// monobench --worker-dispatch plumbing. Worker-side dispatch is an execution
// strategy with bit-identical results, so flipping it never changes figure
// output (pinned by TestGoldenWorkerDispatch). Not safe to call while
// experiments run.
func SetWorkerDispatch(on bool) {
	workerDispatch = on
}

// Builder produces a job for an environment (matches the workloads types).
type Builder func(*workloads.Env) (*task.JobSpec, error)

// RunResult is one completed execution with the cluster state retained so
// figures can query utilization timelines.
type RunResult struct {
	Cluster *cluster.Cluster
	Env     *workloads.Env
	Jobs    []*task.JobMetrics
}

// execute builds a fresh cluster, materializes each builder's job, submits
// them together (concurrent jobs), and drains the simulation.
func execute(machines int, spec cluster.MachineSpec, o run.Options, builders ...Builder) (*RunResult, error) {
	specs := make([]cluster.MachineSpec, machines)
	for i := range specs {
		specs[i] = spec
	}
	return executeHetero(specs, o, builders...)
}

// executeHetero is execute with per-machine specs (straggler experiments).
func executeHetero(specs []cluster.MachineSpec, o run.Options, builders ...Builder) (*RunResult, error) {
	c, err := cluster.NewHetero(specs)
	if err != nil {
		return nil, err
	}
	env, err := workloads.NewEnv(c)
	if err != nil {
		return nil, err
	}
	jobSpecs := make([]*task.JobSpec, 0, len(builders))
	for _, b := range builders {
		js, err := b(env)
		if err != nil {
			return nil, err
		}
		jobSpecs = append(jobSpecs, js)
	}
	if cfg := telemetryCfg; cfg != nil {
		o.Telemetry = cfg
		o.OnTelemetry = telemetrySink
	}
	if shardCount > 1 && o.Shards == 0 {
		o.Shards = shardCount
	}
	if workerDispatch {
		o.Sched.WorkerDispatch = true
	}
	// A sweep deadline (monobench --timeout) bounds in-flight cells too: the
	// run layer polls it between event batches and aborts cleanly, so a
	// stuck cell fails with a deadline error instead of hanging the sweep.
	if t := sweep.Deadline(); !t.IsZero() && o.WallDeadline.IsZero() {
		o.WallDeadline = t
	}
	jobs, err := run.Jobs(c, env.FS, o, jobSpecs...)
	if err != nil {
		return nil, err
	}
	return &RunResult{Cluster: c, Env: env, Jobs: jobs}, nil
}

// pctErr returns the signed relative error of predicted vs actual in percent.
func pctErr(predicted, actual float64) float64 {
	if actual == 0 {
		return 0
	}
	return (predicted - actual) / actual * 100
}

// fprintf panics on write errors: figures print to stdout or a buffer, where
// a failed write is unrecoverable and not worth threading errors through
// every row printer.
func fprintf(w io.Writer, format string, args ...any) {
	if _, err := fmt.Fprintf(w, format, args...); err != nil {
		panic(err)
	}
}
