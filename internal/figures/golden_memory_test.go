package figures

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/resource"
	"repro/internal/sweep"
	"repro/internal/task"
	"repro/internal/telemetry"
)

// memorySweepOutput runs the scale-up data-volume sweep on the given machine
// spec and renders every cell at full float precision, so any drift in the
// memory model shows up byte-for-byte.
func memorySweepOutput(t *testing.T, spec cluster.MachineSpec) []byte {
	t.Helper()
	var buf bytes.Buffer
	volumes := MemoryVolumes(false)
	rows, err := sweep.Run(len(volumes), func(i int) (MemoryRow, error) {
		return memoryCell(spec, volumes[i])
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		fmt.Fprintf(&buf, "gb=%.0f t=%.9f cpu=%.9f disk=%.9f net=%.9f mem=%.9f bot=%v gc=%d spill=%d peak=%d err=%.9f\n",
			r.GB, r.Seconds, r.IdealCPU, r.IdealDisk, r.IdealNet, r.IdealMem,
			r.Bottleneck, r.GCPauses, r.SpillBytes, r.PeakResident, r.AttribErrPct)
	}
	return buf.Bytes()
}

// TestGoldenMemoryOnOff extends the determinism gate to the fourth resource.
// The same scale-up sweep runs with the memory model disabled (spec zeroed —
// the job degrades to pure CPU work and the memory columns stay silent) and
// enabled (bandwidth contention, GC pauses, capacity spill). Both renders are
// pinned against a committed fixture, the enabled leg must replay
// byte-identically, and the combined corpus must not depend on sweep
// parallelism. Regenerate with: go test ./internal/figures -run GoldenMemory -update
func TestGoldenMemoryOnOff(t *testing.T) {
	fat := cluster.FatNode()
	memless := fat
	memless.Mem = resource.MemorySpec{}

	off := memorySweepOutput(t, memless)
	for _, line := range bytes.Split(bytes.TrimSpace(off), []byte("\n")) {
		if !bytes.Contains(line, []byte("mem=0.000000000 bot=cpu gc=0 spill=0 peak=0 err=0.000000000")) {
			t.Fatalf("memoryless sweep leaked memory-model state: %s", line)
		}
	}

	on := memorySweepOutput(t, fat)
	if bytes.Equal(on, off) {
		t.Fatal("enabling the memory model changed nothing — the fourth resource is not wired in")
	}
	if on2 := memorySweepOutput(t, fat); !bytes.Equal(on, on2) {
		t.Fatalf("memory-enabled sweep is not replay-identical at:\n%s", firstDiffLine(on2, on))
	}

	var combined bytes.Buffer
	combined.WriteString("== memory off ==\n")
	combined.Write(off)
	combined.WriteString("== memory on ==\n")
	combined.Write(on)

	golden := filepath.Join("testdata", "golden_memory.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, combined.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, combined.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (regenerate with -update): %v", err)
	}
	if !bytes.Equal(combined.Bytes(), want) {
		t.Fatalf("memory sweep drifted from %s at:\n%s\n(if the change is intentional, rerun with -update)",
			golden, firstDiffLine(combined.Bytes(), want))
	}
}

// TestGoldenMemorySerialVsParallel locks the memory-enabled sweep to the pool
// determinism contract: --parallel 1 and --parallel 8 must render
// byte-identical cells even though GC pauses and spill monotasks now ride the
// per-cell event queues.
func TestGoldenMemorySerialVsParallel(t *testing.T) {
	fat := cluster.FatNode()
	old := sweep.Parallelism()
	defer sweep.SetParallelism(old)
	sweep.SetParallelism(1)
	serial := memorySweepOutput(t, fat)
	sweep.SetParallelism(8)
	parallel := memorySweepOutput(t, fat)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("memory sweep diverged between --parallel 1 and 8 at:\n%s",
			firstDiffLine(parallel, serial))
	}
}

// TestGoldenMemoryMigration pins the experiment's headline claim: over the
// full volume sweep on the stock fat node, the reported bottleneck starts at
// CPU and migrates to memory, and the memory-bound cells report a genuine
// (nonzero) attribution error instead of hiding the stall time.
func TestGoldenMemoryMigration(t *testing.T) {
	r, err := Memory(false)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0].Bottleneck != task.CPUResource {
		t.Fatalf("smallest volume bottleneck = %v, want cpu", r.Rows[0].Bottleneck)
	}
	last := r.Rows[len(r.Rows)-1]
	if last.Bottleneck != task.MemoryResource {
		t.Fatalf("largest volume bottleneck = %v, want memory", last.Bottleneck)
	}
	if r.MigratedAt == 0 {
		t.Fatal("sweep never reported a CPU -> memory migration point")
	}
	if last.GCPauses == 0 {
		t.Fatal("largest volume fired no GC pauses")
	}
	if last.SpillBytes == 0 {
		t.Fatal("largest volume spilled nothing despite exceeding capacity")
	}
	if last.AttribErrPct <= 0 {
		t.Fatal("memory-bound cell reports zero attribution error — stall time is being hidden, not reported")
	}
}

// memoryTelemetryStream runs the smoke memory sweep with the telemetry hook
// installed and returns the canonical sorted-chunk JSONL stream.
func memoryTelemetryStream(t *testing.T) []byte {
	t.Helper()
	var mu sync.Mutex
	var chunks [][]byte
	SetTelemetry(&telemetry.Config{}, func(s *telemetry.Sampler) {
		var buf bytes.Buffer
		err := telemetry.WriteJSONL(&buf, s.Snapshots())
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			t.Error(err)
			return
		}
		chunks = append(chunks, buf.Bytes())
	})
	defer SetTelemetry(nil, nil)

	if _, err := Memory(true); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	sort.Slice(chunks, func(i, j int) bool { return bytes.Compare(chunks[i], chunks[j]) < 0 })
	return bytes.Join(chunks, nil)
}

// TestGoldenMemoryTelemetry: memory-enabled runs publish the mem utilization
// column in their snapshots, bit-identically across replays, while the
// memoryless golden corpus keeps emitting streams with no mem key at all —
// the byte-compatibility contract for old monotop consumers.
func TestGoldenMemoryTelemetry(t *testing.T) {
	a := memoryTelemetryStream(t)
	if len(a) == 0 {
		t.Fatal("empty telemetry stream from memory sweep")
	}
	if !bytes.Contains(a, []byte(`"mem":`)) {
		t.Fatal("memory-enabled telemetry stream carries no mem utilization")
	}
	b := memoryTelemetryStream(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("memory telemetry replay differs at:\n%s", firstDiffLine(b, a))
	}

	memless := telemetryStream(t) // golden corpus: all machines memoryless
	if bytes.Contains(memless, []byte(`"mem":`)) {
		t.Fatal("memoryless run emitted a mem key — old telemetry streams are no longer byte-stable")
	}
}
