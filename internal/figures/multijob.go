package figures

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/jobsched"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/run"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/task"
	"repro/internal/units"
	"repro/internal/workloads"
)

// The multijob experiment is the multi-tenant generalization of Fig. 16: an
// open-loop Poisson stream of mixed CPU-heavy and I/O-heavy sort jobs hits
// the driver, which runs them concurrently out of weighted fair-share pools.
// It reports (a) p50/p95/p99 job sojourn time vs offered load for mono vs
// Spark mode, (b) the slot share each pool actually received vs its weight,
// and (c) per-job resource attribution error across N concurrent jobs —
// monotask metrics attribute each job exactly; Spark's slot-share split
// does not.

// MultijobLatencyRow is one offered-load level of the latency table.
type MultijobLatencyRow struct {
	Load                         float64 // offered load ρ = solo time / mean interarrival
	MonoP50, MonoP95, MonoP99    sim.Duration
	SparkP50, SparkP95, SparkP99 sim.Duration
}

// MultijobPoolShare compares one pool's observed slot share with its
// configured weight share.
type MultijobPoolShare struct {
	Pool      string
	Weight    float64
	WantShare float64
	GotShare  float64
}

// MultijobResult is the experiment's full output.
type MultijobResult struct {
	SoloSeconds sim.Duration // one job alone, mono mode (the load calibration)
	JobsPerLoad int
	Latency     []MultijobLatencyRow

	// Batch scenario: BatchJobs submitted at t=0 across two weighted pools.
	BatchJobs     int
	BatchFinished int
	Shares        []MultijobPoolShare

	// Attribution error distributions across the batch's concurrent jobs
	// (relative error of CPU seconds and disk bytes vs solo-run truth).
	MonoErrors  []float64
	SparkErrors []float64
}

// Streams use many small tasks per job: slots are non-preemptive, so the
// fair-share rebalancing after arrivals and stage barriers happens one task
// completion at a time — short tasks keep those transients short.
const (
	multijobMachines = 4
	multijobMaps     = 64
	multijobReduces  = 32
)

// multijobRun is one completed stream execution.
type multijobRun struct {
	Cluster  *cluster.Cluster
	Handles  []*jobsched.JobHandle
	Arrivals []workloads.Arrival
}

// maxEnd is the stream's last job completion time.
func (r *multijobRun) maxEnd() sim.Time {
	var end sim.Time
	for _, h := range r.Handles {
		if h.Metrics.End > end {
			end = h.Metrics.End
		}
	}
	return end
}

// jobMetrics collects the stream's per-job metrics in arrival order.
func (r *multijobRun) jobMetrics() []*task.JobMetrics {
	out := make([]*task.JobMetrics, len(r.Handles))
	for i, h := range r.Handles {
		out[i] = h.Metrics
	}
	return out
}

// runMultijob materializes the stream on a fresh cluster and executes its
// arrival schedule. A non-nil sample callback fires every half virtual
// second while any job is unfinished, with the live driver and the current
// virtual time — the hook the pool-share measurement watches the scheduler
// through.
func runMultijob(o run.Options, m workloads.MultiJob, sample func(*jobsched.Driver, sim.Time)) (*multijobRun, error) {
	c, err := cluster.New(multijobMachines, cluster.M2_4XLarge())
	if err != nil {
		return nil, err
	}
	env, err := workloads.NewEnv(c)
	if err != nil {
		return nil, err
	}
	arrivals, err := m.Build(env)
	if err != nil {
		return nil, err
	}
	subs := make([]run.Submission, len(arrivals))
	for i, a := range arrivals {
		subs[i] = run.Submission{Spec: a.Spec, At: a.At, Opts: jobsched.SubmitOptions{Pool: a.Pool}}
	}
	d, err := run.Driver(c, env.FS, o)
	if err != nil {
		return nil, err
	}
	handles := make([]*jobsched.JobHandle, len(subs))
	var submitErr error
	for i, s := range subs {
		i, s := i, s
		c.Engine.At(s.At, func() {
			h, err := d.SubmitWith(s.Spec, s.Opts)
			if err != nil && submitErr == nil {
				submitErr = err
			}
			handles[i] = h
		})
	}
	if sample != nil {
		var tick func()
		tick = func() {
			sample(d, c.Engine.Now())
			for _, h := range handles {
				if h == nil || !(h.Done() || h.Failed()) {
					c.Engine.After(0.5, tick)
					return
				}
			}
		}
		c.Engine.After(0.5, tick)
	}
	d.Run()
	if submitErr != nil {
		return nil, submitErr
	}
	return &multijobRun{Cluster: c, Handles: handles, Arrivals: arrivals}, nil
}

// Multijob runs the experiment. Smoke mode shrinks job sizes, counts, and
// the load sweep so CI can run it on every push.
func Multijob(smoke bool) (*MultijobResult, error) {
	jobBytes := int64(6 * units.GB)
	loads := []float64{0.4, 0.8}
	jobsPerLoad := 12
	if smoke {
		jobBytes = 2 * units.GB
		loads = []float64{0.6}
		jobsPerLoad = 8
	}
	stream := func(name string, jobs int, meanGap float64, pools []string) workloads.MultiJob {
		return workloads.MultiJob{
			Name: name, Jobs: jobs, MeanInterarrival: meanGap, Seed: 7,
			JobBytes: jobBytes, MapTasks: multijobMaps, ReduceTasks: multijobReduces,
			Pools: pools,
		}
	}
	out := &MultijobResult{JobsPerLoad: jobsPerLoad}

	// Calibrate: one job alone, mono mode. Offered load ρ means the stream
	// delivers ρ solo-job-times of work per solo-job-time.
	solo, err := runMultijob(run.Options{Mode: run.Monotasks}, stream("solo", 1, 0, nil), nil)
	if err != nil {
		return nil, err
	}
	out.SoloSeconds = solo.Handles[0].Metrics.Duration()

	// Latency vs offered load: the same arrival stream replayed per mode.
	// Every (load, mode) cell is an independent simulation.
	type latCell struct{ p50, p95, p99 sim.Duration }
	latModes := []run.Mode{run.Monotasks, run.Spark}
	latCells, err := sweep.Run(len(loads)*len(latModes), func(i int) (latCell, error) {
		load, mode := loads[i/len(latModes)], latModes[i%len(latModes)]
		m := stream(fmt.Sprintf("load%02.0f", load*100), jobsPerLoad, float64(out.SoloSeconds)/load, nil)
		r, err := runMultijob(run.Options{Mode: mode}, m, nil)
		if err != nil {
			return latCell{}, err
		}
		lat := make([]float64, 0, len(r.Handles))
		for _, h := range r.Handles {
			lat = append(lat, float64(h.Metrics.Duration()))
		}
		sort.Float64s(lat)
		return latCell{
			p50: sim.Duration(metrics.SortedPercentile(lat, 50)),
			p95: sim.Duration(metrics.SortedPercentile(lat, 95)),
			p99: sim.Duration(metrics.SortedPercentile(lat, 99)),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for li, load := range loads {
		mc, sc := latCells[li*len(latModes)], latCells[li*len(latModes)+1]
		out.Latency = append(out.Latency, MultijobLatencyRow{
			Load:    load,
			MonoP50: mc.p50, MonoP95: mc.p95, MonoP99: mc.p99,
			SparkP50: sc.p50, SparkP95: sc.p95, SparkP99: sc.p99,
		})
	}

	// Batch scenario: 8 jobs split across two pools weighted 3:1. Arrivals
	// are staggered by a small Poisson gap so same-pool jobs sit at
	// different DAG phases: when one job stalls at its shuffle barrier, its
	// pool-mates absorb the slots and the pool keeps its weighted share
	// (with synchronized identical jobs, every job hits the barrier at
	// once and the pool briefly has nothing runnable).
	poolCfg := jobsched.Config{Pools: []jobsched.PoolConfig{
		{Name: "prod", Weight: 3},
		{Name: "adhoc", Weight: 1},
	}}
	out.BatchJobs = 8
	batchPools := []string{"prod", "adhoc"}
	batch := stream("batch", out.BatchJobs, float64(out.SoloSeconds)/16, batchPools)

	// Pool shares are sampled live: every half second, record each pool's
	// running and pending task counts. The mono batch (with its sampler),
	// the Spark batch, and the two solo ground-truth runs are four
	// independent simulations, so they all go through the sweep pool; the
	// sampler closes over a cell-local slice returned with the run.
	type poolSample struct {
		at            sim.Time
		running, pend map[string]int
	}
	type batchCell struct {
		r       *multijobRun
		samples []poolSample
	}
	truthVPK := []int{10, 50}
	batchCells, err := sweep.Run(4, func(i int) (batchCell, error) {
		switch i {
		case 0:
			var samples []poolSample
			sampler := func(d *jobsched.Driver, now sim.Time) {
				s := poolSample{at: now, running: map[string]int{}, pend: map[string]int{}}
				for _, pc := range poolCfg.Pools {
					s.running[pc.Name] = d.RunningTasks(pc.Name)
					s.pend[pc.Name] = d.PendingTasks(pc.Name)
				}
				samples = append(samples, s)
			}
			r, err := runMultijob(run.Options{Mode: run.Monotasks, Sched: poolCfg}, batch, sampler)
			return batchCell{r: r, samples: samples}, err
		case 1:
			r, err := runMultijob(run.Options{Mode: run.Spark, Sched: poolCfg}, batch, nil)
			return batchCell{r: r}, err
		default:
			vpk := truthVPK[i-2]
			m := stream(fmt.Sprintf("truth-%dv", vpk), 1, 0, nil)
			m.ValuesPerKey = []int{vpk}
			r, err := runMultijob(run.Options{Mode: run.Monotasks}, m, nil)
			return batchCell{r: r}, err
		}
	})
	if err != nil {
		return nil, err
	}
	mono, samples := batchCells[0].r, batchCells[0].samples
	for _, h := range mono.Handles {
		if h.Done() {
			out.BatchFinished++
		}
	}

	// Judge fairness only at instants where the shares are the scheduler's
	// choice: (a) both pools backlogged (pending > 0 — a pool with nothing
	// runnable is demand-limited and rightly lends its slots out), and
	// (b) past a settle point after the last arrival — slots are
	// non-preemptive, so shares rebalance only as running tasks finish, and
	// a newly arrived pool reclaims its share one task completion at a time.
	lastArrival := mono.Arrivals[len(mono.Arrivals)-1].At
	settle := lastArrival + sim.Time(float64(out.SoloSeconds)/4)
	poolRunning := map[string]float64{}
	for _, s := range samples {
		if s.at < settle {
			continue
		}
		backlogged := true
		for _, pc := range poolCfg.Pools {
			if s.pend[pc.Name] == 0 {
				backlogged = false
			}
		}
		if !backlogged {
			continue
		}
		for _, pc := range poolCfg.Pools {
			poolRunning[pc.Name] += float64(s.running[pc.Name])
		}
	}
	var weightSum, runningSum float64
	for _, pc := range poolCfg.Pools {
		weightSum += pc.Weight
		runningSum += poolRunning[pc.Name]
	}
	for _, pc := range poolCfg.Pools {
		share := MultijobPoolShare{Pool: pc.Name, Weight: pc.Weight, WantShare: pc.Weight / weightSum}
		if runningSum > 0 {
			share.GotShare = poolRunning[pc.Name] / runningSum
		}
		out.Shares = append(out.Shares, share)
	}

	// Attribution ground truth per distinct job profile (the stream
	// alternates 10v and 50v): a solo mono run's attributed usage. CPU
	// seconds and disk bytes are placement-independent, so a solo run is a
	// valid truth for them (Fig. 16's argument); network bytes are not and
	// are excluded.
	truth := make([]metrics.MeasuredUsage, 2)
	for i := range truthVPK {
		r := batchCells[2+i].r
		jm := r.Handles[0].Metrics
		att := model.Attribute([]*task.JobMetrics{jm}, 0, jm.End, model.ClusterResources(r.Cluster))
		truth[i] = att[0].Usage
	}
	addErrs := func(dst *[]float64, got metrics.MeasuredUsage, i int) {
		tr := truth[i%2]
		if tr.CPUSeconds > 0 {
			*dst = append(*dst, math.Abs(got.CPUSeconds-tr.CPUSeconds)/tr.CPUSeconds)
		}
		trDisk := float64(tr.DiskReadBytes + tr.DiskWriteBytes)
		if trDisk > 0 {
			*dst = append(*dst, math.Abs(float64(got.DiskReadBytes+got.DiskWriteBytes)-trDisk)/trDisk)
		}
	}

	// Mono: each job's monotask metrics attribute it exactly, live.
	monoAtts := model.Attribute(mono.jobMetrics(), 0, mono.maxEnd(), model.ClusterResources(mono.Cluster))
	for i, a := range monoAtts {
		addErrs(&out.MonoErrors, a.Usage, i)
	}

	// Spark: the same batch, attributed by slot share of OS counters.
	spark := batchCells[1].r
	sparkEnd := spark.maxEnd()
	total := metrics.Measure(spark.Cluster, 0, sparkEnd)
	slotSeconds := make([]float64, len(spark.Handles))
	for i, h := range spark.Handles {
		slotSeconds[i] = metrics.TaskSecondsInWindow(h.Metrics, 0, sparkEnd)
	}
	for i, p := range model.SlotShareAttribution(total, slotSeconds) {
		addErrs(&out.SparkErrors, p, i)
	}
	return out, nil
}

// Fprint renders the experiment's three tables.
func (r *MultijobResult) Fprint(w io.Writer) {
	fprintf(w, "multijob: open-loop Poisson job stream, %d machines\n", multijobMachines)
	fprintf(w, "solo job time %.1f s; %d jobs per load level\n", float64(r.SoloSeconds), r.JobsPerLoad)
	fprintf(w, "%-6s %10s %10s %10s %10s %10s %10s\n",
		"load", "mono p50", "mono p95", "mono p99", "spark p50", "spark p95", "spark p99")
	for _, row := range r.Latency {
		fprintf(w, "%-6.2f %10.1f %10.1f %10.1f %10.1f %10.1f %10.1f\n",
			row.Load,
			float64(row.MonoP50), float64(row.MonoP95), float64(row.MonoP99),
			float64(row.SparkP50), float64(row.SparkP95), float64(row.SparkP99))
	}
	fprintf(w, "\nfair-share pools: batch of %d concurrent jobs (%d finished)\n",
		r.BatchJobs, r.BatchFinished)
	fprintf(w, "%-8s %8s %12s %12s\n", "pool", "weight", "want share", "got share")
	for _, s := range r.Shares {
		fprintf(w, "%-8s %8.0f %12.2f %12.2f\n", s.Pool, s.Weight, s.WantShare, s.GotShare)
	}
	mm, mp := MedianAndP75(r.MonoErrors)
	sm, sp := MedianAndP75(r.SparkErrors)
	fprintf(w, "\nper-job attribution error across %d concurrent jobs\n", r.BatchJobs)
	fprintf(w, "%-10s %12s %12s\n", "system", "median err%", "p75 err%")
	fprintf(w, "%-10s %12.1f %12.1f\n", "spark", sm, sp)
	fprintf(w, "%-10s %12.1f %12.1f\n", "monospark", mm, mp)
	fprintf(w, "(generalizes Fig. 16: mono attribution stays exact at N jobs)\n")
}
