package figures

import (
	"io"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/run"
	"repro/internal/sweep"
	"repro/internal/task"
	"repro/internal/workloads"
)

// oneHDD is the Fig. 12 target configuration: the same machines with one of
// the two disks removed.
func oneHDD() cluster.MachineSpec {
	spec := cluster.M2_4XLarge()
	spec.Disks = spec.Disks[:1]
	return spec
}

// Fig12Row holds one query's disk-removal prediction from all three models:
// the monotasks model (Fig. 12), the slot-based Spark model (Fig. 15), and
// the measured-utilization Spark model (Fig. 17).
type Fig12Row struct {
	Query string
	// MonoSpark side.
	MonoBaseline  float64
	MonoPredicted float64
	MonoActual    float64
	// Spark side.
	SparkBaseline float64
	SparkActual   float64
	SlotPredicted float64 // Fig. 15
	UtilPredicted float64 // Fig. 17
}

// Fig12Result covers Figs. 12, 15, and 17 in one pass (they share runs).
type Fig12Result struct {
	Rows []Fig12Row
}

// Fig12 predicts the big data benchmark with one disk per machine instead
// of two, with each of the three models, and measures reality for both
// systems.
func Fig12() (*Fig12Result, error) {
	queries := workloads.BDBQueryNames()
	// Grid: queries × {mono 2-HDD, mono 1-HDD, spark 2-HDD, spark 1-HDD}.
	// Models are derived from the retained runs after the sweep.
	grid := []struct {
		mode run.Mode
		one  bool
	}{
		{run.Monotasks, false}, {run.Monotasks, true},
		{run.Spark, false}, {run.Spark, true},
	}
	results, err := sweep.Run(len(queries)*len(grid), func(i int) (*RunResult, error) {
		q, g := queries[i/len(grid)], grid[i%len(grid)]
		build := func(env *workloads.Env) (*task.JobSpec, error) { return workloads.BDBQuery(q, env) }
		spec := cluster.M2_4XLarge()
		if g.one {
			spec = oneHDD()
		}
		return execute(5, spec, run.Options{Mode: g.mode}, build)
	})
	if err != nil {
		return nil, err
	}
	out := &Fig12Result{}
	for qi, q := range queries {
		base, after := results[qi*len(grid)], results[qi*len(grid)+1]
		sparkBase, sparkAfter := results[qi*len(grid)+2], results[qi*len(grid)+3]
		row := Fig12Row{Query: q}

		// MonoSpark: baseline on 2 HDDs, model, then 1-HDD reality.
		row.MonoBaseline = float64(base.Jobs[0].Duration())
		profile := model.FromMetrics(base.Jobs[0], model.ClusterResources(base.Cluster))
		row.MonoPredicted = model.Predict(profile, model.ScaleDiskBW(0.5)).PredictedSeconds
		row.MonoActual = float64(after.Jobs[0].Duration())

		// Spark: baseline on 2 HDDs with external measurements, the two
		// Spark-feasible models, then 1-HDD reality.
		row.SparkBaseline = float64(sparkBase.Jobs[0].Duration())
		// Fig. 15: slots don't change when a disk is removed.
		slots := 5 * cluster.M2_4XLarge().Cores
		row.SlotPredicted = model.SlotPrediction(row.SparkBaseline, slots, slots)
		// Fig. 17: measure per-stage usage with OS counters and feed the
		// same ideal-time model.
		var measured []model.MeasuredStage
		for _, st := range sparkBase.Jobs[0].Stages {
			measured = append(measured, model.MeasuredStage{
				Name:          st.Spec.Name,
				Usage:         metrics.Measure(sparkBase.Cluster, st.Start, st.End),
				ActualSeconds: float64(st.Duration()),
			})
		}
		utilProfile := model.FromMeasured("q"+q, measured, model.ClusterResources(sparkBase.Cluster))
		row.UtilPredicted = model.Predict(utilProfile, model.ScaleDiskBW(0.5)).PredictedSeconds
		row.SparkActual = float64(sparkAfter.Jobs[0].Duration())

		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Fprint renders the Fig. 12 view (monotasks model).
func (r *Fig12Result) Fprint(w io.Writer) {
	fprintf(w, "Figure 12: predict 2 HDD → 1 HDD per machine (monotasks model)\n")
	fprintf(w, "%-6s %12s %13s %11s %8s\n", "query", "baseline(s)", "predicted(s)", "actual(s)", "err%")
	for _, row := range r.Rows {
		fprintf(w, "%-6s %12.1f %13.1f %11.1f %+8.1f\n",
			row.Query, row.MonoBaseline, row.MonoPredicted, row.MonoActual,
			pctErr(row.MonoPredicted, row.MonoActual))
	}
}

// FprintFig15 renders the slot-model view of the same change.
func (r *Fig12Result) FprintFig15(w io.Writer) {
	fprintf(w, "Figure 15: slot-based Spark model for 2 HDD → 1 HDD (slots unchanged ⇒ no change predicted)\n")
	fprintf(w, "%-6s %12s %13s %11s %8s\n", "query", "baseline(s)", "predicted(s)", "actual(s)", "err%")
	for _, row := range r.Rows {
		fprintf(w, "%-6s %12.1f %13.1f %11.1f %+8.1f\n",
			row.Query, row.SparkBaseline, row.SlotPredicted, row.SparkActual,
			pctErr(row.SlotPredicted, row.SparkActual))
	}
}

// FprintFig17 renders the measured-utilization model view.
func (r *Fig12Result) FprintFig17(w io.Writer) {
	fprintf(w, "Figure 17: Spark measured-utilization model for 2 HDD → 1 HDD\n")
	fprintf(w, "%-6s %12s %13s %11s %8s\n", "query", "baseline(s)", "predicted(s)", "actual(s)", "err%")
	for _, row := range r.Rows {
		fprintf(w, "%-6s %12.1f %13.1f %11.1f %+8.1f\n",
			row.Query, row.SparkBaseline, row.UtilPredicted, row.SparkActual,
			pctErr(row.UtilPredicted, row.SparkActual))
	}
}

// Fig14Row is one query's bottleneck analysis: predicted runtime with each
// resource made infinitely fast, as a fraction of the original runtime.
type Fig14Row struct {
	Query      string
	Original   float64
	NoDiskFrac float64
	NoNetFrac  float64
	NoCPUFrac  float64
	Bottleneck task.Resource
}

// Fig14Result replicates the NSDI '15 blocked-time analysis with monotask
// runtimes (Fig. 14).
type Fig14Result struct {
	Rows []Fig14Row
}

// Fig14 profiles each query once (all queries concurrently) and removes each
// resource from the model.
func Fig14() (*Fig14Result, error) {
	queries := workloads.BDBQueryNames()
	rows, err := sweep.Run(len(queries), func(i int) (Fig14Row, error) {
		q := queries[i]
		build := func(env *workloads.Env) (*task.JobSpec, error) { return workloads.BDBQuery(q, env) }
		res, err := execute(5, cluster.M2_4XLarge(), run.Options{Mode: run.Monotasks}, build)
		if err != nil {
			return Fig14Row{}, err
		}
		profile := model.FromMetrics(res.Jobs[0], model.ClusterResources(res.Cluster))
		orig := float64(res.Jobs[0].Duration())
		frac := func(r task.Resource) float64 {
			return model.Predict(profile, model.InfinitelyFast(r)).PredictedSeconds / orig
		}
		// Job-level bottleneck: the resource whose removal helps most.
		row := Fig14Row{
			Query:      q,
			Original:   orig,
			NoDiskFrac: frac(task.DiskResource),
			NoNetFrac:  frac(task.NetworkResource),
			NoCPUFrac:  frac(task.CPUResource),
		}
		switch {
		case row.NoCPUFrac <= row.NoDiskFrac && row.NoCPUFrac <= row.NoNetFrac:
			row.Bottleneck = task.CPUResource
		case row.NoDiskFrac <= row.NoNetFrac:
			row.Bottleneck = task.DiskResource
		default:
			row.Bottleneck = task.NetworkResource
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig14Result{Rows: rows}, nil
}

// Fprint renders the analysis.
func (r *Fig14Result) Fprint(w io.Writer) {
	fprintf(w, "Figure 14: best-case runtime fraction with each resource infinitely fast\n")
	fprintf(w, "%-6s %10s %9s %9s %9s %12s\n", "query", "orig(s)", "no-disk", "no-net", "no-cpu", "bottleneck")
	for _, row := range r.Rows {
		fprintf(w, "%-6s %10.1f %9.2f %9.2f %9.2f %12v\n",
			row.Query, row.Original, row.NoDiskFrac, row.NoNetFrac, row.NoCPUFrac, row.Bottleneck)
	}
}
