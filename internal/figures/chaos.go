package figures

import (
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"strconv"
	"sync"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/monospark"
)

// ChaosResult is the chaos harness run as an experiment: for each seed, a
// real-data sort executes under a randomly drawn fault plan (crash +
// recovery, straggler, transient disk errors, flaky fetches, task kills).
// Each seed runs twice; the rows record that the outcome is bit-identical
// across the two runs (determinism), and that the job either completed with
// correct, fully sorted output or aborted with a descriptive error — never
// hung or panicked.
type ChaosResult struct {
	Rows []ChaosRow
}

// ChaosRow is one seed's verdict.
type ChaosRow struct {
	Seed         int64
	Mode         string
	Outcome      string // "completed" or the abort reason (truncated)
	Duration     sim.Duration
	Faults       int  // fault events injected during the run
	Correct      bool // output sorted + records conserved (true when aborted: nothing to check)
	Reproducible bool // second run with the same seed matched bit-for-bit
}

// chaosOutcome is everything one run exposes, folded for comparison.
type chaosOutcome struct {
	completed bool
	errStr    string
	dur       sim.Duration
	faults    int
	hash      uint64
	correct   bool
}

const chaosRecords = 6000

// chaosSetup builds the shared input and expected-key table exactly once per
// process. Every chaos cell used to rebuild both (6000 formatted keys and a
// permutation per cell) — pure per-cell setup cost that the sweep pool paid
// again on every one of its grid cells. The input slice is shared read-only:
// the data plane slices sources into partitions and copies records before
// sorting, never mutating them, and the keys are immutable strings.
var chaosSetup = struct {
	once sync.Once
	recs []any    // shuffled Pair records, the job input
	keys []string // keys[i] = fmt.Sprintf("%08d", i), the sorted expectation
}{}

func chaosInit() {
	rng := rand.New(rand.NewSource(7))
	chaosSetup.keys = make([]string, chaosRecords)
	for i := range chaosSetup.keys {
		chaosSetup.keys[i] = fmt.Sprintf("%08d", i)
	}
	chaosSetup.recs = make([]any, chaosRecords)
	for i, p := range rng.Perm(chaosRecords) {
		chaosSetup.recs[i] = monospark.Pair{Key: chaosSetup.keys[p], Value: 1}
	}
}

// chaosInput is a deterministic shuffled keyspace; sorting it exercises a
// full map + shuffle + reduce with verifiable output. The returned slice is
// shared across cells and must be treated as read-only.
func chaosInput() []any {
	chaosSetup.once.Do(chaosInit)
	return chaosSetup.recs
}

// chaosPlanConfig is the per-seed fault mix the experiment draws from.
func chaosPlanConfig() faults.PlanConfig {
	return faults.PlanConfig{
		Horizon:           40,
		Crashes:           1,
		Stragglers:        1,
		DiskErrorWindows:  1,
		FlakyFetchWindows: 1,
		TaskKills:         1,
	}
}

// chaosRun executes the chaos workload once under the given seed and mode.
func chaosRun(seed int64, mode monospark.Mode) (chaosOutcome, error) {
	ctx, err := monospark.New(monospark.Config{
		Machines: 4,
		Mode:     mode,
		// Stretch per-record compute so the job spans tens of virtual
		// seconds and overlaps the fault horizon (virtual time is free;
		// wall time scales with event count, not simulated duration).
		CPUCostPerRecord: 0.1,
		Chaos: &monospark.ChaosConfig{
			Seed:              seed,
			Random:            chaosPlanConfig(),
			FetchRetryTimeout: 60,
		},
		Telemetry:      telemetryCfg,
		Shards:         shardCount,
		WorkerDispatch: workerDispatch,
	})
	if err != nil {
		return chaosOutcome{}, err
	}
	if ctx.Telemetry() != nil && telemetrySink != nil {
		defer func() {
			ctx.Telemetry().Stop()
			telemetrySink(ctx.Telemetry())
		}()
	}
	ds, err := ctx.Parallelize(chaosInput(), 32)
	if err != nil {
		return chaosOutcome{}, err
	}
	recs, jr, err := ds.SortByKey().Collect()
	out := chaosOutcome{faults: len(ctx.FaultEvents())}
	h := fnv.New64a()
	for _, f := range ctx.FaultEvents() {
		fmt.Fprintf(h, "%v|", f)
	}
	if err != nil {
		out.errStr = err.Error()
		out.correct = true // nothing to check; the abort itself is the contract
		fmt.Fprintf(h, "err:%s", out.errStr)
		out.hash = h.Sum64()
		return out, nil
	}
	out.completed = true
	out.dur = sim.Duration(jr.Duration().Seconds())
	out.correct = chaosCorrect(recs)
	fmt.Fprintf(h, "dur:%v|n:%d|", out.dur, len(recs))
	// Hand-rolled Pair rendering: %v reflection over 6000 records was a
	// measurable slice of every cell's wall-clock — per-cell harness overhead,
	// like the input construction chaosInit now amortizes. The byte layout
	// matches the Pair "key\tvalue" form; non-Pair or non-int records (none
	// today) keep the reflective path.
	scratch := make([]byte, 0, 32)
	for _, r := range recs {
		if p, ok := r.(monospark.Pair); ok {
			if v, ok := p.Value.(int); ok {
				scratch = append(scratch[:0], p.Key...)
				scratch = append(scratch, '\t')
				scratch = strconv.AppendInt(scratch, int64(v), 10)
				scratch = append(scratch, '|')
				h.Write(scratch)
				continue
			}
		}
		fmt.Fprintf(h, "%v|", r)
	}
	out.hash = h.Sum64()
	return out, nil
}

// chaosCorrect verifies the sort's output: every input record present
// exactly once, in sorted order.
func chaosCorrect(recs []any) bool {
	if len(recs) != chaosRecords {
		return false
	}
	chaosSetup.once.Do(chaosInit)
	prev := ""
	for i, r := range recs {
		p, ok := r.(monospark.Pair)
		if !ok || p.Key < prev {
			return false
		}
		// Keys are the dense range [0, chaosRecords), so sorted order is the
		// identity.
		if p.Key != chaosSetup.keys[i] {
			return false
		}
		prev = p.Key
	}
	return true
}

// Chaos runs `seeds` distinct seeds, each twice, in Monotasks mode. Every
// run — including the replay of a seed — is an independent simulation, so
// all 2×seeds cells go through the sweep pool; the determinism comparison
// happens on the collected outcomes.
func Chaos(seeds int) (*ChaosResult, error) {
	outcomes, err := sweep.Run(seeds*2, func(i int) (chaosOutcome, error) {
		return chaosRun(int64(i/2)+1, monospark.Monotasks)
	})
	if err != nil {
		return nil, err
	}
	out := &ChaosResult{}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		first, second := outcomes[(seed-1)*2], outcomes[(seed-1)*2+1]
		row := ChaosRow{
			Seed:         seed,
			Mode:         monospark.Monotasks.String(),
			Duration:     first.dur,
			Faults:       first.faults,
			Correct:      first.correct,
			Reproducible: first == second,
		}
		if first.completed {
			row.Outcome = "completed"
		} else {
			row.Outcome = first.errStr
			if len(row.Outcome) > 70 {
				row.Outcome = row.Outcome[:67] + "..."
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Fprint renders the per-seed verdicts.
func (r *ChaosResult) Fprint(w io.Writer) {
	fprintf(w, "Chaos harness: real-data sort under seeded random faults, each seed run twice\n")
	fprintf(w, "%5s %-10s %8s %7s %8s %13s  %s\n",
		"seed", "mode", "dur(s)", "faults", "correct", "reproducible", "outcome")
	for _, row := range r.Rows {
		fprintf(w, "%5d %-10s %8.1f %7d %8v %13v  %s\n",
			row.Seed, row.Mode, float64(row.Duration), row.Faults,
			row.Correct, row.Reproducible, row.Outcome)
	}
}
