package figures

import (
	"io"

	"repro/internal/cluster"
	"repro/internal/run"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/units"
	"repro/internal/workloads"
)

// Fig02Result is the Fig. 2 time series: CPU and per-disk utilization on one
// machine over a 30-second window of a Spark sort, showing the bottleneck
// oscillating between CPU and disk under fine-grained pipelining.
type Fig02Result struct {
	Start sim.Time
	Step  sim.Duration
	CPU   []float64
	Disk0 []float64
	Disk1 []float64
}

// Fig02 runs the 600 GB sort under the pipelined executor and samples
// machine 0 during the map stage.
func Fig02() (*Fig02Result, error) {
	res, err := execute(20, cluster.M2_4XLarge(), run.Options{Mode: run.Spark},
		workloads.Sort{TotalBytes: 600 * units.GB, ValuesPerKey: 10}.Build)
	if err != nil {
		return nil, err
	}
	st := res.Jobs[0].Stages[0]
	// The paper shows an illustrative 30 s window; scan the stage for the
	// window where the bottleneck changes hands most often. (Other windows
	// show the companion phenomenon: long spells with every task blocked
	// on the disks.)
	m := res.Cluster.Machines[0]
	const samples = 60
	window := sim.Duration(30)
	best, bestScore := st.Start, -1
	for t0 := st.Start; t0+window <= st.End; t0 += 5 {
		cpu := m.CPU.Util.Samples(t0, t0+window, samples)
		d0 := m.Disks[0].Util.Samples(t0, t0+window, samples)
		d1 := m.Disks[1].Util.Samples(t0, t0+window, samples)
		score := leadChanges(cpu, d0, d1)
		if score > bestScore {
			best, bestScore = t0, score
		}
	}
	t0, t1 := best, best+window
	out := &Fig02Result{
		Start: t0,
		Step:  window / samples,
		CPU:   m.CPU.Util.Samples(t0, t1, samples),
		Disk0: m.Disks[0].Util.Samples(t0, t1, samples),
		Disk1: m.Disks[1].Util.Samples(t0, t1, samples),
	}
	return out, nil
}

// leadChanges counts how many times the leading resource flips between CPU
// and disk over the samples.
func leadChanges(cpu, d0, d1 []float64) int {
	changes := 0
	prev := 0 // 0 unknown, 1 cpu, 2 disk
	for i := range cpu {
		disk := (d0[i] + d1[i]) / 2
		cur := 0
		if cpu[i] > disk+0.05 {
			cur = 1
		} else if disk > cpu[i]+0.05 {
			cur = 2
		}
		if cur != 0 && prev != 0 && cur != prev {
			changes++
		}
		if cur != 0 {
			prev = cur
		}
	}
	return changes
}

// Oscillates reports whether the bottleneck visibly alternates: both CPU and
// disk must each be the busier resource during some sample.
func (r *Fig02Result) Oscillates() bool {
	cpuLeads, diskLeads := false, false
	for i := range r.CPU {
		disk := (r.Disk0[i] + r.Disk1[i]) / 2
		if r.CPU[i] > disk+0.05 {
			cpuLeads = true
		}
		if disk > r.CPU[i]+0.05 {
			diskLeads = true
		}
	}
	return cpuLeads && diskLeads
}

// Fprint renders the series.
func (r *Fig02Result) Fprint(w io.Writer) {
	fprintf(w, "Figure 2: Spark utilization during a 30 s window of the sort map stage (machine 0)\n")
	fprintf(w, "%8s %6s %6s %6s\n", "time(s)", "cpu", "disk1", "disk2")
	for i := range r.CPU {
		t := float64(r.Start) + float64(r.Step)*float64(i)
		fprintf(w, "%8.1f %6.2f %6.2f %6.2f\n", t, r.CPU[i], r.Disk0[i], r.Disk1[i])
	}
	fprintf(w, "bottleneck oscillates between CPU and disk: %v\n", r.Oscillates())
}

// SortResult is the §5.2 headline sort comparison.
type SortResult struct {
	TotalBytes int64
	Machines   int
	Rows       []SortRow
}

// SortRow is one system's sort timing.
type SortRow struct {
	System string
	Job    sim.Duration
	Map    sim.Duration
	Reduce sim.Duration
}

// Sort600GB runs the 600 GB sort on 20 two-HDD workers under both systems
// (§5.2: Spark 88 min = 36 map + 52 reduce; MonoSpark 57 min = 22 + 35).
func Sort600GB() (*SortResult, error) {
	return SortSized(600*units.GB, 20)
}

// SortSized runs the §5.2 sort at an arbitrary scale under both systems —
// the 600 GB figure uses it directly, and the golden-output determinism test
// runs a small instance of the same code path.
func SortSized(totalBytes int64, machines int) (*SortResult, error) {
	out := &SortResult{TotalBytes: totalBytes, Machines: machines}
	modes := []run.Mode{run.Spark, run.Monotasks}
	rows, err := sweep.Run(len(modes), func(i int) (SortRow, error) {
		res, err := execute(machines, cluster.M2_4XLarge(), run.Options{Mode: modes[i]},
			workloads.Sort{TotalBytes: totalBytes, ValuesPerKey: 10}.Build)
		if err != nil {
			return SortRow{}, err
		}
		j := res.Jobs[0]
		return SortRow{
			System: modes[i].String(),
			Job:    j.Duration(),
			Map:    j.Stages[0].Duration(),
			Reduce: j.Stages[1].Duration(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	out.Rows = rows
	return out, nil
}

// Speedup is MonoSpark's advantage over Spark (>1 means MonoSpark faster).
func (r *SortResult) Speedup() float64 {
	return float64(r.Rows[0].Job) / float64(r.Rows[1].Job)
}

// Fprint renders the table.
func (r *SortResult) Fprint(w io.Writer) {
	fprintf(w, "Sort (§5.2): %s, %d workers × (8 cores, 2 HDD)\n",
		units.FormatBytes(r.TotalBytes), r.Machines)
	fprintf(w, "%-12s %-10s %-10s %-10s\n", "system", "job", "map", "reduce")
	for _, row := range r.Rows {
		fprintf(w, "%-12s %-10s %-10s %-10s\n", row.System,
			units.FormatSeconds(float64(row.Job)),
			units.FormatSeconds(float64(row.Map)),
			units.FormatSeconds(float64(row.Reduce)))
	}
	fprintf(w, "MonoSpark speedup: %.2fx (paper: 88 min vs 57 min = 1.54x)\n", r.Speedup())
}
