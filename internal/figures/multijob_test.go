package figures

import (
	"math"
	"strings"
	"testing"
)

// TestMultijobSmoke encodes the experiment's acceptance criteria: N≥8
// concurrent jobs across ≥2 pools all finish, weighted pools receive slot
// shares within 10% of their weights, and mono-mode attribution stays
// near-exact at N jobs while Spark's slot-share split mispredicts.
func TestMultijobSmoke(t *testing.T) {
	r, err := Multijob(true)
	if err != nil {
		t.Fatal(err)
	}
	if r.BatchJobs < 8 || r.BatchFinished != r.BatchJobs {
		t.Fatalf("batch finished %d/%d jobs, want all of ≥8", r.BatchFinished, r.BatchJobs)
	}
	if len(r.Shares) < 2 {
		t.Fatalf("got %d pools, want ≥2", len(r.Shares))
	}
	for _, s := range r.Shares {
		if math.Abs(s.GotShare-s.WantShare) > 0.10 {
			t.Errorf("pool %s share %.3f, want %.3f ±0.10", s.Pool, s.GotShare, s.WantShare)
		}
	}
	monoMed, _ := MedianAndP75(r.MonoErrors)
	sparkMed, sparkP75 := MedianAndP75(r.SparkErrors)
	if monoMed >= 5 {
		t.Errorf("mono attribution median error %.1f%%, want <5%%", monoMed)
	}
	if sparkMed <= monoMed {
		t.Errorf("spark attribution median error %.1f%% not worse than mono's %.1f%%", sparkMed, monoMed)
	}
	if len(r.Latency) == 0 {
		t.Fatal("no latency rows")
	}
	for _, row := range r.Latency {
		if row.MonoP50 <= 0 || row.SparkP50 <= 0 || row.MonoP99 < row.MonoP50 {
			t.Errorf("implausible latency row %+v", row)
		}
	}
	var sb strings.Builder
	r.Fprint(&sb)
	if !strings.Contains(sb.String(), "fair-share pools") {
		t.Fatalf("Fprint output missing sections:\n%s", sb.String())
	}
	t.Logf("spark p75 err %.1f%%\n%s", sparkP75, sb.String())
}
