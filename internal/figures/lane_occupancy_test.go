package figures

import (
	"bytes"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/units"
)

// TestGoldenSortLaneOccupancy is the lane-migration meter: with the
// per-machine subsystems (resource servers, monotask dispatch) scheduling on
// their machine's lane, a majority of the golden sort's events must drain on
// lanes rather than the global timeline. A regression here means some device
// model quietly fell back to Engine.At and re-serialized the run.
func TestGoldenSortLaneOccupancy(t *testing.T) {
	st, err := SortMonotasks(16*units.GB, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.LaneEvents == 0 || st.Windows == 0 {
		t.Fatalf("sharded run drained no lane events (lane=%d global=%d windows=%d)",
			st.LaneEvents, st.GlobalEvents, st.Windows)
	}
	if st.Occupancy < 0.5 {
		t.Fatalf("lane occupancy %.3f < 0.50 (lane=%d global=%d): per-machine events are leaking back onto the global timeline",
			st.Occupancy, st.LaneEvents, st.GlobalEvents)
	}
	t.Logf("lane occupancy %.3f (lane=%d global=%d windows=%d)",
		st.Occupancy, st.LaneEvents, st.GlobalEvents, st.Windows)

	// The sharded run's rendered timings must match the serial engine's —
	// the same contract TestGoldenShardedVsSerial pins for the full corpus,
	// re-checked here so this entry point cannot drift from the golden path.
	serial, err := SortMonotasks(16*units.GB, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(st.Output, serial.Output) {
		t.Fatalf("sharded output diverged from serial:\n%s%s", st.Output, serial.Output)
	}
	if serial.LaneEvents != 0 || serial.Windows != 0 {
		t.Fatalf("serial run reported lane activity (lane=%d windows=%d)",
			serial.LaneEvents, serial.Windows)
	}
}

// TestGoldenSortSamplerWindowCadence pins the telemetry-under-sharding
// interaction documented in package telemetry: every sampler tick is a
// recurring global event, and each global event caps the parallel window at
// min(lane horizon, next global event), so a hot sampler can serialize a
// sharded run into one-event windows. At the default 1-second interval the
// golden sort must still average multiple events per window — if this ratio
// collapses toward 1, sampling cadence has started to dominate the window
// schedule and the sharded engine is running serially with extra steps.
func TestGoldenSortSamplerWindowCadence(t *testing.T) {
	SetTelemetry(&telemetry.Config{}, func(*telemetry.Sampler) {})
	defer SetTelemetry(nil, nil)
	st, err := SortMonotasks(16*units.GB, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Windows == 0 {
		t.Fatal("sharded run opened no windows")
	}
	perWindow := float64(st.LaneEvents+st.GlobalEvents) / float64(st.Windows)
	if perWindow < 2 {
		t.Fatalf("%.2f events per window with the default-interval sampler: tick cadence is serializing the sharded run (lane=%d global=%d windows=%d)",
			perWindow, st.LaneEvents, st.GlobalEvents, st.Windows)
	}
	t.Logf("%.2f events per window under default-interval sampling (windows=%d)",
		perWindow, st.Windows)
}
