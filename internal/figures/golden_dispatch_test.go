package figures

import (
	"bytes"
	"fmt"
	"testing"
)

// TestGoldenWorkerDispatch locks the delegated control plane's equivalence
// contract: the golden corpus (sort + big data benchmark), a two-seed chaos
// matrix (task kills via FailRunningTasks, flaky fetches driving the fetch
// retry timeout, crashes, machine exclusion), and the memory-model sweep must
// render byte-identical output with centralized driver dispatch and with
// worker-side dispatch — on the serial engine and at 1 and 4 shards.
// Worker-side
// dispatch is an execution strategy, not a policy change; any divergence
// means a worker-local fill picked a different task than the driver's global
// pass would have.
func TestGoldenWorkerDispatch(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		buf.Write(goldenOutput(t))
		cr, err := Chaos(2)
		if err != nil {
			t.Fatal(err)
		}
		cr.Fprint(&buf)
		for _, row := range cr.Rows {
			// The chaos plan injects task kills and flaky fetch windows, so
			// these verdicts cover FailRunningTasks and fetch-timeout retries
			// under whatever dispatch mode is active.
			if !row.Correct || !row.Reproducible {
				t.Fatalf("chaos seed %d: correct=%v reproducible=%v (%s)",
					row.Seed, row.Correct, row.Reproducible, row.Outcome)
			}
		}
		mr, err := Memory(true)
		if err != nil {
			t.Fatal(err)
		}
		mr.Fprint(&buf)
		// Full-precision rows: Fprint rounds for humans, but the equivalence
		// contract is bitwise.
		for _, row := range mr.Rows {
			fmt.Fprintf(&buf, "mem gb=%.9f dur=%.9f gc=%d spill=%d peak=%d attrib=%.9f\n",
				row.GB, row.Seconds, row.GCPauses, row.SpillBytes, row.PeakResident, row.AttribErrPct)
		}
		return buf.Bytes()
	}
	defer func() {
		SetWorkerDispatch(false)
		SetShards(0)
	}()
	for _, shards := range []int{0, 1, 4} {
		SetShards(shards)
		SetWorkerDispatch(false)
		centralized := render()
		SetWorkerDispatch(true)
		delegated := render()
		if !bytes.Equal(centralized, delegated) {
			t.Fatalf("shards=%d: worker dispatch diverged from centralized at:\n%s",
				shards, firstDiffLine(delegated, centralized))
		}
	}
}
