package figures

import (
	"io"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/run"
	"repro/internal/sweep"
	"repro/internal/units"
	"repro/internal/workloads"
)

// PredictRow is one what-if prediction versus reality.
type PredictRow struct {
	Label     string
	Baseline  float64 // measured runtime in the original configuration
	Predicted float64 // model's prediction for the new configuration
	Actual    float64 // measured runtime in the new configuration
}

// ErrPct is the prediction's signed relative error.
func (r PredictRow) ErrPct() float64 { return pctErr(r.Predicted, r.Actual) }

// PredictResult is a table of predictions (Figs. 11–13, §6.3).
type PredictResult struct {
	Title string
	Rows  []PredictRow
}

// MaxAbsErrPct is the worst absolute prediction error in the table.
func (r *PredictResult) MaxAbsErrPct() float64 {
	worst := 0.0
	for _, row := range r.Rows {
		e := row.ErrPct()
		if e < 0 {
			e = -e
		}
		if e > worst {
			worst = e
		}
	}
	return worst
}

// Fprint renders the prediction table.
func (r *PredictResult) Fprint(w io.Writer) {
	fprintf(w, "%s\n", r.Title)
	fprintf(w, "%-14s %12s %13s %11s %8s\n", "workload", "baseline(s)", "predicted(s)", "actual(s)", "err%")
	for _, row := range r.Rows {
		fprintf(w, "%-14s %12.1f %13.1f %11.1f %+8.1f\n",
			row.Label, row.Baseline, row.Predicted, row.Actual, row.ErrPct())
	}
	fprintf(w, "max |error| = %.1f%%\n", r.MaxAbsErrPct())
}

// Fig11 predicts the effect of doubling SSDs per machine for the sort
// workload at three value sizes: run on 20×1-SSD, predict 20×2-SSD from
// monotask times, then actually run 20×2-SSD.
func Fig11() (*PredictResult, error) {
	out := &PredictResult{Title: "Figure 11: predict 2× SSDs (sort 600 GB, 20 workers × 1 SSD → 2 SSD)"}
	valueCounts := []int{10, 20, 50}
	// Grid: values × {1-SSD baseline, 2-SSD target}. The prediction is derived
	// from the returned baseline run after the sweep.
	results, err := sweep.Run(len(valueCounts)*2, func(i int) (*RunResult, error) {
		sort := workloads.Sort{TotalBytes: 600 * units.GB, ValuesPerKey: valueCounts[i/2]}
		return execute(20, cluster.I2_2XLarge(1+i%2), run.Options{Mode: run.Monotasks}, sort.Build)
	})
	if err != nil {
		return nil, err
	}
	for vi, values := range valueCounts {
		base, after := results[vi*2], results[vi*2+1]
		profile := model.FromMetrics(base.Jobs[0], model.ClusterResources(base.Cluster))
		pred := model.Predict(profile, model.ScaleDiskBW(2))
		out.Rows = append(out.Rows, PredictRow{
			Label:     labelValues(values),
			Baseline:  float64(base.Jobs[0].Duration()),
			Predicted: pred.PredictedSeconds,
			Actual:    float64(after.Jobs[0].Duration()),
		})
	}
	return out, nil
}

// Sec63 predicts storing input deserialized in memory (§6.3): the model
// removes input-read disk time and the deserialization share of compute.
func Sec63() (*PredictResult, error) {
	out := &PredictResult{Title: "§6.3: predict in-memory deserialized input (sort, 20 workers × 2 HDD)"}
	sortDisk := workloads.Sort{Name: "sort-disk", TotalBytes: 40 * units.GB, ValuesPerKey: 10}
	sortMem := workloads.Sort{Name: "sort-mem", TotalBytes: 40 * units.GB, ValuesPerKey: 10, InMemoryInput: true}
	builders := []Builder{sortDisk.Build, sortMem.Build}
	results, err := sweep.Run(len(builders), func(i int) (*RunResult, error) {
		return execute(20, cluster.M2_4XLarge(), run.Options{Mode: run.Monotasks}, builders[i])
	})
	if err != nil {
		return nil, err
	}
	base, after := results[0], results[1]
	profile := model.FromMetrics(base.Jobs[0], model.ClusterResources(base.Cluster))
	pred := model.Predict(profile, model.InMemoryInput{})
	out.Rows = append(out.Rows, PredictRow{
		Label:     "sort-10v",
		Baseline:  float64(base.Jobs[0].Duration()),
		Predicted: pred.PredictedSeconds,
		Actual:    float64(after.Jobs[0].Duration()),
	})
	return out, nil
}

// Fig13 predicts a combined hardware and software migration: 5 machines
// with HDDs and on-disk input → 20 machines with SSDs and in-memory
// deserialized input — a ~10× runtime change (Fig. 13).
func Fig13() (*PredictResult, error) {
	out := &PredictResult{Title: "Figure 13: predict 5×2-HDD on-disk → 20×2-SSD in-memory (sort 100 GB)"}
	valueCounts := []int{10, 20, 50}
	results, err := sweep.Run(len(valueCounts)*2, func(i int) (*RunResult, error) {
		values := valueCounts[i/2]
		if i%2 == 0 {
			before := workloads.Sort{TotalBytes: 100 * units.GB, ValuesPerKey: values}
			return execute(5, cluster.M2_4XLarge(), run.Options{Mode: run.Monotasks}, before.Build)
		}
		after := workloads.Sort{TotalBytes: 100 * units.GB, ValuesPerKey: values, InMemoryInput: true}
		return execute(20, cluster.I2_2XLarge(2), run.Options{Mode: run.Monotasks}, after.Build)
	})
	if err != nil {
		return nil, err
	}
	for vi, values := range valueCounts {
		base, target := results[vi*2], results[vi*2+1]
		profile := model.FromMetrics(base.Jobs[0], model.ClusterResources(base.Cluster))
		// 4× machines, HDD→SSD (2×100 MB/s → 2×400 MB/s per machine), input
		// in memory. ScaleCluster covers the machine count; the disk-type
		// change is the remaining 4× on aggregate disk bandwidth.
		pred := model.Predict(profile,
			model.ScaleCluster(4),
			model.ScaleDiskBW(4),
			model.InMemoryInput{},
		)
		out.Rows = append(out.Rows, PredictRow{
			Label:     labelValues(values),
			Baseline:  float64(base.Jobs[0].Duration()),
			Predicted: pred.PredictedSeconds,
			Actual:    float64(target.Jobs[0].Duration()),
		})
	}
	return out, nil
}

func labelValues(values int) string {
	switch values {
	case 10:
		return "sort-10v"
	case 20:
		return "sort-20v"
	case 50:
		return "sort-50v"
	default:
		return "sort"
	}
}
