package figures

import (
	"io"

	"repro/internal/cluster"
	"repro/internal/run"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workloads"
)

// FailureResult is the fault-tolerance extension experiment: one worker
// fail-stops mid-job, the driver re-executes its in-flight tasks and
// regenerates its lost shuffle outputs (Spark's FetchFailure → parent-stage
// resubmission), and the job still completes — at a measurable cost. The
// paper's frameworks all have this machinery (§2.1's bulk-synchronous
// model); the experiment quantifies it under both executors.
type FailureResult struct {
	Rows []FailureRow
}

// FailureRow is one system's clean-vs-failure comparison.
type FailureRow struct {
	System      string
	Clean       sim.Duration
	WithFailure sim.Duration
}

// Overhead is the failure run's slowdown relative to the clean run.
func (r FailureRow) Overhead() float64 { return float64(r.WithFailure)/float64(r.Clean) - 1 }

// Failure runs a replicated-input sort twice per system: once cleanly and
// once with a machine failing during the reduce stage.
func Failure() (*FailureResult, error) {
	sortW := workloads.Sort{TotalBytes: 60 * units.GB, ValuesPerKey: 25, InputReplication: 2}
	out := &FailureResult{}
	for _, mode := range []run.Mode{run.Spark, run.Monotasks} {
		times := [2]sim.Duration{}
		for i, fail := range []bool{false, true} {
			c, err := cluster.New(5, cluster.M2_4XLarge())
			if err != nil {
				return nil, err
			}
			env, err := workloads.NewEnv(c)
			if err != nil {
				return nil, err
			}
			job, err := sortW.Build(env)
			if err != nil {
				return nil, err
			}
			d, err := run.Driver(c, env.FS, run.Options{Mode: mode})
			if err != nil {
				return nil, err
			}
			h, err := d.Submit(job)
			if err != nil {
				return nil, err
			}
			if fail {
				// Clean-run stage boundaries put the reduce mid-flight at
				// ~60% of the clean runtime.
				failAt := times[0] * 6 / 10
				var failErr error
				c.Engine.At(failAt, func() { failErr = d.FailMachine(4) })
				d.Run()
				if failErr != nil {
					return nil, failErr
				}
			} else {
				d.Run()
			}
			times[i] = h.Metrics.Duration()
		}
		out.Rows = append(out.Rows, FailureRow{
			System:      mode.String(),
			Clean:       times[0],
			WithFailure: times[1],
		})
	}
	return out, nil
}

// Fprint renders the comparison.
func (r *FailureResult) Fprint(w io.Writer) {
	fprintf(w, "Extension: fail-stop of 1 of 5 workers mid-reduce (sort, replicated input)\n")
	fprintf(w, "%-12s %10s %13s %10s\n", "system", "clean(s)", "w/ failure(s)", "overhead")
	for _, row := range r.Rows {
		fprintf(w, "%-12s %10.1f %13.1f %9.0f%%\n",
			row.System, float64(row.Clean), float64(row.WithFailure), row.Overhead()*100)
	}
}
