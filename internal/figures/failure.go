package figures

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/jobsched"
	"repro/internal/run"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/units"
	"repro/internal/workloads"
)

// FailureResult is the fault-tolerance extension experiment, run as a
// matrix: one worker fail-stops during the map stage or during the reduce
// stage, over replicated or unreplicated input, with speculation off or on,
// under both executors. Recoverable combinations complete at a measurable
// overhead (Spark's FetchFailure → parent-stage resubmission); the
// unreplicated-input map-failure combinations abort with a descriptive
// error — a single-replica DFS cannot survive losing an input block's only
// home. The paper's frameworks all carry this machinery (§2.1's
// bulk-synchronous model); the experiment quantifies it.
type FailureResult struct {
	Rows []FailureRow
}

// FailureRow is one (system, phase, replication, speculation) cell.
type FailureRow struct {
	System      string
	Phase       string // stage the failure lands in: "map" or "reduce"
	Replication int    // input replication factor
	Speculation bool
	Clean       sim.Duration // same configuration without the failure
	WithFailure sim.Duration
	Outcome     string // "completed", or the abort reason
}

// Overhead is the failure run's slowdown relative to the clean run.
func (r FailureRow) Overhead() float64 { return float64(r.WithFailure)/float64(r.Clean) - 1 }

// Completed reports whether the failure run finished despite the fault.
func (r FailureRow) Completed() bool { return r.Outcome == "completed" }

const (
	failureMachines  = 5
	failureMachineID = 4 // the worker that fail-stops
	// Failure phase positions as fractions of the clean runtime: early
	// enough to land in the map stage, and past the map/reduce boundary.
	mapFailFrac    = 0.15
	reduceFailFrac = 0.60
)

// failureWorkload is the experiment's sort, sized to keep the 24-run matrix
// quick while still spanning a multi-second map and reduce.
func failureWorkload(replication int) workloads.Sort {
	return workloads.Sort{TotalBytes: 20 * units.GB, ValuesPerKey: 25, InputReplication: replication}
}

// failureRun executes one cell: the sort under mode with the given input
// replication and speculation setting, failing machine failureMachineID at
// failAt (no failure when failAt <= 0). It returns the job duration and the
// outcome string.
func failureRun(mode run.Mode, replication int, speculation bool, failAt sim.Time) (sim.Duration, string, error) {
	c, err := cluster.New(failureMachines, cluster.M2_4XLarge())
	if err != nil {
		return 0, "", err
	}
	env, err := workloads.NewEnv(c)
	if err != nil {
		return 0, "", err
	}
	job, err := failureWorkload(replication).Build(env)
	if err != nil {
		return 0, "", err
	}
	d, err := run.Driver(c, env.FS, run.Options{Mode: mode, Sched: jobsched.Config{Speculation: speculation}})
	if err != nil {
		return 0, "", err
	}
	h, err := d.Submit(job)
	if err != nil {
		return 0, "", err
	}
	if failAt > 0 {
		var failErr error
		c.Engine.At(failAt, func() { failErr = d.FailMachine(failureMachineID) })
		d.Run()
		if failErr != nil {
			return 0, "", failErr
		}
	} else {
		d.Run()
	}
	outcome := "completed"
	if err := h.Err(); err != nil {
		outcome = fmt.Sprintf("aborted: %v", err)
	}
	return h.Metrics.Duration(), outcome, nil
}

// Failure runs the full matrix: {spark, monotasks} × {map, reduce failure}
// × {replication 1, 2} × {speculation off, on}, each against its own clean
// baseline. Two sweep phases: all clean baselines first (the failure
// injection times are fractions of the clean runtimes), then all 16 failure
// runs.
func Failure() (*FailureResult, error) {
	type cfg struct {
		mode        run.Mode
		replication int
		speculation bool
	}
	var cfgs []cfg
	for _, mode := range []run.Mode{run.Spark, run.Monotasks} {
		for _, replication := range []int{1, 2} {
			for _, speculation := range []bool{false, true} {
				cfgs = append(cfgs, cfg{mode, replication, speculation})
			}
		}
	}
	cleans, err := sweep.Run(len(cfgs), func(i int) (sim.Duration, error) {
		c := cfgs[i]
		clean, outcome, err := failureRun(c.mode, c.replication, c.speculation, 0)
		if err != nil {
			return 0, err
		}
		if outcome != "completed" {
			return 0, fmt.Errorf("figures: clean %v run did not complete: %s", c.mode, outcome)
		}
		return clean, nil
	})
	if err != nil {
		return nil, err
	}
	phases := []struct {
		name string
		frac float64
	}{{"map", mapFailFrac}, {"reduce", reduceFailFrac}}
	rows, err := sweep.Run(len(cfgs)*len(phases), func(i int) (FailureRow, error) {
		c, phase := cfgs[i/len(phases)], phases[i%len(phases)]
		clean := cleans[i/len(phases)]
		dur, outcome, err := failureRun(c.mode, c.replication, c.speculation,
			sim.Time(float64(clean)*phase.frac))
		if err != nil {
			return FailureRow{}, err
		}
		return FailureRow{
			System:      c.mode.String(),
			Phase:       phase.name,
			Replication: c.replication,
			Speculation: c.speculation,
			Clean:       clean,
			WithFailure: dur,
			Outcome:     outcome,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &FailureResult{Rows: rows}, nil
}

// Fprint renders the matrix.
func (r *FailureResult) Fprint(w io.Writer) {
	fprintf(w, "Extension: fail-stop of 1 of %d workers (sort, 20 GB), by phase × replication × speculation\n", failureMachines)
	fprintf(w, "%-12s %-7s %5s %5s %9s %13s %9s  %s\n",
		"system", "phase", "repl", "spec", "clean(s)", "w/ failure(s)", "overhead", "outcome")
	for _, row := range r.Rows {
		spec := "off"
		if row.Speculation {
			spec = "on"
		}
		overhead := "-"
		outcome := row.Outcome
		if row.Completed() {
			overhead = fprintfPct(row.Overhead())
		} else if len(outcome) > 60 {
			outcome = outcome[:57] + "..."
		}
		fprintf(w, "%-12s %-7s %5d %5s %9.1f %13.1f %9s  %s\n",
			row.System, row.Phase, row.Replication, spec,
			float64(row.Clean), float64(row.WithFailure), overhead, outcome)
	}
}

// fprintfPct renders a ratio as a percentage string.
func fprintfPct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }
