package figures

import (
	"bytes"
	"sort"
	"sync"
	"testing"

	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// telemetryStream runs the golden corpus (SortSized, both systems) plus a
// two-seed chaos matrix with the telemetry hook installed, and returns every
// run's snapshot stream as one byte string. Sweep cells finish in arbitrary
// wall-clock order, so each run's ring is serialized into its own JSONL chunk
// and chunks are sorted canonically — the same scheme monobench --telemetry
// uses — making the result a pure function of the experiment set.
func telemetryStream(t *testing.T) []byte {
	t.Helper()
	var mu sync.Mutex
	var chunks [][]byte
	SetTelemetry(&telemetry.Config{}, func(s *telemetry.Sampler) {
		var buf bytes.Buffer
		err := telemetry.WriteJSONL(&buf, s.Snapshots())
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			t.Error(err)
			return
		}
		chunks = append(chunks, buf.Bytes())
	})
	defer SetTelemetry(nil, nil)

	if _, err := SortSized(16*units.GB, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := Chaos(2); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	sort.Slice(chunks, func(i, j int) bool { return bytes.Compare(chunks[i], chunks[j]) < 0 })
	return bytes.Join(chunks, nil)
}

// TestGoldenTelemetryDeterminism extends the determinism gate to the live
// telemetry bus: the full snapshot stream of the golden corpus + chaos matrix
// must be byte-identical across two runs in one process and across sweep
// --parallel 1 vs 8. Sampling rides the simulator's event queue, so any
// divergence would mean either the sampler perturbed the simulation or the
// stream depends on scheduling outside virtual time.
func TestGoldenTelemetryDeterminism(t *testing.T) {
	a := telemetryStream(t)
	if len(a) == 0 {
		t.Fatal("empty telemetry stream")
	}
	b := telemetryStream(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("same-process telemetry replay differs at:\n%s", firstDiffLine(b, a))
	}

	old := sweep.Parallelism()
	defer sweep.SetParallelism(old)
	sweep.SetParallelism(1)
	serial := telemetryStream(t)
	sweep.SetParallelism(8)
	parallel := telemetryStream(t)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("telemetry stream diverged between --parallel 1 and 8 at:\n%s",
			firstDiffLine(parallel, serial))
	}
	if !bytes.Equal(a, serial) {
		t.Fatalf("telemetry stream depends on ambient parallelism at:\n%s",
			firstDiffLine(serial, a))
	}

	// Every run's stream ends with a Final snapshot carrying the cumulative
	// whole-run attribution (the live-equals-post-hoc handoff; exact equality
	// with a post-hoc model.Attribute call is pinned in internal/telemetry's
	// tests).
	snaps, err := telemetry.ReadJSONL(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	finals := 0
	for _, s := range snaps {
		if s.Final {
			finals++
			if len(s.Jobs) > 0 && len(s.Cumulative) != len(s.Jobs) {
				t.Fatalf("final snapshot lacks cumulative attribution: %+v", s)
			}
		}
	}
	// SortSized runs two systems; Chaos(2) runs four cells.
	if finals < 6 {
		t.Fatalf("%d final snapshots across the corpus, want ≥ 6", finals)
	}
}
