package figures

import (
	"io"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/run"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/units"
	"repro/internal/workloads"
)

// Fig16Result quantifies per-job resource attribution error when two jobs
// run concurrently (Fig. 16): Spark can only split machine-level usage by
// slot share, while monotask metrics attribute resource use exactly.
type Fig16Result struct {
	// Errors are |estimate − truth|/truth per (job, resource), pooled.
	SparkErrors []float64
	MonoErrors  []float64
}

// MedianAndP75 summarizes an error distribution in percent.
func MedianAndP75(errs []float64) (median, p75 float64) {
	if len(errs) == 0 {
		return 0, 0
	}
	s := append([]float64(nil), errs...)
	sort.Float64s(s)
	return metrics.SortedPercentile(s, 50) * 100, metrics.SortedPercentile(s, 75) * 100
}

// Fig16 runs the 10-value and 50-value sorts concurrently under both
// systems and compares each system's per-job resource attribution against
// ground truth.
func Fig16() (*Fig16Result, error) {
	sortA := workloads.Sort{Name: "sort-10v", TotalBytes: 60 * units.GB, ValuesPerKey: 10}
	sortB := workloads.Sort{Name: "sort-50v", TotalBytes: 60 * units.GB, ValuesPerKey: 50}
	out := &Fig16Result{}

	// All four runs are independent: two solo ground-truth runs, the
	// concurrent pair under Spark, and the concurrent pair under MonoSpark.
	runs, err := sweep.Run(4, func(i int) (*RunResult, error) {
		switch i {
		case 0:
			return execute(5, cluster.M2_4XLarge(), run.Options{Mode: run.Monotasks}, sortA.Build)
		case 1:
			return execute(5, cluster.M2_4XLarge(), run.Options{Mode: run.Monotasks}, sortB.Build)
		case 2:
			return execute(5, cluster.M2_4XLarge(), run.Options{Mode: run.Spark}, sortA.Build, sortB.Build)
		default:
			return execute(5, cluster.M2_4XLarge(), run.Options{Mode: run.Monotasks}, sortA.Build, sortB.Build)
		}
	})
	if err != nil {
		return nil, err
	}

	// Ground truth per job: run each job alone in monotasks mode and take
	// its exact per-resource use (by construction, identical across modes
	// because the workload spec fixes CPU seconds and byte volumes).
	truth := make([]model.StageProfile, 2)
	for i, res := range runs[:2] {
		p := model.FromMetrics(res.Jobs[0], model.ClusterResources(res.Cluster))
		var total model.StageProfile
		for _, st := range p.Stages {
			total.CPUSeconds += st.CPUSeconds
			total.DiskBytes += st.DiskBytes
			total.NetBytes += st.NetBytes
		}
		truth[i] = total
	}

	// Compare CPU seconds and disk bytes: both are placement-independent,
	// so a solo run is a valid ground truth for them. Network bytes depend
	// on where tasks landed (the local-fetch fraction), which legitimately
	// differs between runs, so they would contaminate the attribution error
	// with scheduling variance.
	addErrs := func(dst *[]float64, est [3]float64, i int) {
		tr := [3]float64{truth[i].CPUSeconds, float64(truth[i].DiskBytes), float64(truth[i].NetBytes)}
		for k := 0; k < 2; k++ {
			if tr[k] == 0 {
				continue
			}
			*dst = append(*dst, math.Abs(est[k]-tr[k])/tr[k])
		}
	}

	// Spark: run concurrently, measure totals externally over the combined
	// window, split by slot occupancy (task-seconds) — the best Spark can do.
	sparkRes := runs[2]
	t0, t1 := sim.Time(0), sparkRes.Jobs[0].End
	if sparkRes.Jobs[1].End > t1 {
		t1 = sparkRes.Jobs[1].End
	}
	total := metrics.Measure(sparkRes.Cluster, t0, t1)
	slotSeconds := make([]float64, 2)
	for i, jm := range sparkRes.Jobs {
		for _, st := range jm.Stages {
			for _, tm := range st.Tasks {
				slotSeconds[i] += float64(tm.Duration())
			}
		}
	}
	parts := model.SlotShareAttribution(total, slotSeconds)
	for i, p := range parts {
		addErrs(&out.SparkErrors, [3]float64{p.CPUSeconds, float64(p.DiskReadBytes + p.DiskWriteBytes), float64(p.NetBytes)}, i)
	}

	// MonoSpark: run concurrently; monotask metrics attribute exactly.
	monoRes := runs[3]
	for i, jm := range monoRes.Jobs {
		p := model.FromMetrics(jm, model.ClusterResources(monoRes.Cluster))
		var est [3]float64
		for _, st := range p.Stages {
			est[0] += st.CPUSeconds
			est[1] += float64(st.DiskBytes)
			est[2] += float64(st.NetBytes)
		}
		addErrs(&out.MonoErrors, est, i)
	}
	return out, nil
}

// Fprint renders the error summary.
func (r *Fig16Result) Fprint(w io.Writer) {
	sm, sp := MedianAndP75(r.SparkErrors)
	mm, mp := MedianAndP75(r.MonoErrors)
	fprintf(w, "Figure 16: per-job resource attribution error, two concurrent sort jobs\n")
	fprintf(w, "%-10s %12s %12s\n", "system", "median err%", "p75 err%")
	fprintf(w, "%-10s %12.1f %12.1f\n", "spark", sm, sp)
	fprintf(w, "%-10s %12.1f %12.1f\n", "monospark", mm, mp)
	fprintf(w, "(paper: Spark 17%% median / 68%% p75; MonoSpark < 1%%)\n")
}

// Fig18Row is one workload of the auto-configuration comparison.
type Fig18Row struct {
	Workload string
	// SparkByTasks maps tasks-per-machine → runtime.
	SparkByTasks map[int]sim.Duration
	BestSpark    sim.Duration
	BestConfig   int
	Mono         sim.Duration
}

// Fig18Result compares MonoSpark's per-resource concurrency control against
// every Spark slot configuration (Fig. 18).
type Fig18Result struct {
	TaskCounts []int
	Rows       []Fig18Row
}

// Fig18 sweeps Spark's tasks-per-machine knob for three sort workloads and
// runs MonoSpark, which has no such knob. The whole (workload, config) grid —
// six Spark slot counts plus the MonoSpark run per workload — runs through
// the sweep pool.
func Fig18() (*Fig18Result, error) {
	taskCounts := []int{1, 2, 4, 8, 16, 32}
	valueCounts := []int{1, 25, 100}
	perWorkload := len(taskCounts) + 1 // six Spark configs + one MonoSpark run
	durs, err := sweep.Run(len(valueCounts)*perWorkload, func(i int) (sim.Duration, error) {
		sortW := workloads.Sort{TotalBytes: 60 * units.GB, ValuesPerKey: valueCounts[i/perWorkload]}
		o := run.Options{Mode: run.Monotasks}
		if c := i % perWorkload; c < len(taskCounts) {
			o = run.Options{Mode: run.Spark, TasksPerMachine: taskCounts[c]}
		}
		res, err := execute(5, cluster.M2_4XLarge(), o, sortW.Build)
		if err != nil {
			return 0, err
		}
		return res.Jobs[0].Duration(), nil
	})
	if err != nil {
		return nil, err
	}
	out := &Fig18Result{TaskCounts: taskCounts}
	for vi, values := range valueCounts {
		row := Fig18Row{
			Workload:     labelValues18(values),
			SparkByTasks: make(map[int]sim.Duration),
			BestSpark:    sim.Time(math.MaxFloat64),
		}
		for ti, tpm := range taskCounts {
			d := durs[vi*perWorkload+ti]
			row.SparkByTasks[tpm] = d
			if d < row.BestSpark {
				row.BestSpark = d
				row.BestConfig = tpm
			}
		}
		row.Mono = durs[vi*perWorkload+len(taskCounts)]
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func labelValues18(values int) string {
	switch values {
	case 1:
		return "sort-1v"
	case 25:
		return "sort-25v"
	default:
		return "sort-100v"
	}
}

// Fprint renders the sweep.
func (r *Fig18Result) Fprint(w io.Writer) {
	fprintf(w, "Figure 18: Spark tasks-per-machine sweep vs MonoSpark auto-configuration\n")
	fprintf(w, "%-10s", "workload")
	for _, tc := range r.TaskCounts {
		fprintf(w, " spark%-4d", tc)
	}
	fprintf(w, " %9s %9s %10s\n", "best", "mono", "mono/best")
	for _, row := range r.Rows {
		fprintf(w, "%-10s", row.Workload)
		for _, tc := range r.TaskCounts {
			fprintf(w, " %9.1f", float64(row.SparkByTasks[tc]))
		}
		fprintf(w, " %9.1f %9.1f %10.2f\n",
			float64(row.BestSpark), float64(row.Mono), float64(row.Mono)/float64(row.BestSpark))
	}
}
