package figures

import (
	"testing"

	"repro/internal/sweep"
	"repro/internal/units"
)

// BenchmarkSortEndToEnd measures a full small sort — job build, both
// executors, metrics collection — through the same SortSized path the golden
// test locks down. Parallelism is pinned to 1 so the number reflects
// single-core simulation cost, not pool scheduling.
func BenchmarkSortEndToEnd(b *testing.B) {
	old := sweep.Parallelism()
	sweep.SetParallelism(1)
	defer sweep.SetParallelism(old)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SortSized(8*units.GB, 4); err != nil {
			b.Fatal(err)
		}
	}
}
