package figures

import (
	"io"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/run"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/task"
	"repro/internal/workloads"
)

// Fig05Row is one big data benchmark query under the three systems.
type Fig05Row struct {
	Query      string
	Spark      sim.Duration
	SparkFlush sim.Duration
	MonoSpark  sim.Duration
}

// MonoVsSpark is MonoSpark's runtime relative to Spark (1.0 = equal,
// >1 = MonoSpark slower).
func (r Fig05Row) MonoVsSpark() float64 { return float64(r.MonoSpark) / float64(r.Spark) }

// MonoVsFlush compares against the write-through Spark configuration.
func (r Fig05Row) MonoVsFlush() float64 { return float64(r.MonoSpark) / float64(r.SparkFlush) }

// Fig05Result is the Fig. 5 table plus the stage-utilization summaries that
// Fig. 6 reports for the same runs.
type Fig05Result struct {
	Rows []Fig05Row
	// Fig6 boxes: per query and system, the two most utilized resources
	// during each stage.
	Util map[string][]StageUtilRow
}

// StageUtilRow is one stage's Fig. 6 entry.
type StageUtilRow struct {
	System     string
	Stage      string
	Bottleneck metrics.ResourceName
	Box        metrics.BoxPlot
	Second     metrics.ResourceName
	SecondBox  metrics.BoxPlot
}

// Fig05 runs every benchmark query under Spark, Spark-with-flushed-writes,
// and MonoSpark on the paper's 5-worker HDD cluster. The (query, mode) grid
// cells are independent runs, fanned out through the sweep pool.
func Fig05() (*Fig05Result, error) {
	queries := workloads.BDBQueryNames()
	modes := []run.Mode{run.Spark, run.SparkWriteThrough, run.Monotasks}
	type cell struct {
		dur  sim.Duration
		util []StageUtilRow
	}
	cells, err := sweep.Run(len(queries)*len(modes), func(i int) (cell, error) {
		q, mode := queries[i/len(modes)], modes[i%len(modes)]
		res, err := execute(5, cluster.M2_4XLarge(), run.Options{Mode: mode},
			func(env *workloads.Env) (*task.JobSpec, error) { return workloads.BDBQuery(q, env) })
		if err != nil {
			return cell{}, err
		}
		c := cell{dur: res.Jobs[0].Duration()}
		if mode == run.SparkWriteThrough {
			return c, nil // Fig. 6 compares default Spark and MonoSpark
		}
		for _, st := range res.Jobs[0].Stages {
			su := metrics.StageUtil(res.Cluster, st.Start, st.End, 10)
			c.util = append(c.util, StageUtilRow{
				System:     mode.String(),
				Stage:      st.Spec.Name,
				Bottleneck: su.Bottleneck,
				Box:        su.BottleneckBox,
				Second:     su.Second,
				SecondBox:  su.SecondBox,
			})
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	out := &Fig05Result{Util: make(map[string][]StageUtilRow)}
	for qi, q := range queries {
		row := Fig05Row{Query: q}
		for mi, mode := range modes {
			c := cells[qi*len(modes)+mi]
			switch mode {
			case run.Spark:
				row.Spark = c.dur
			case run.SparkWriteThrough:
				row.SparkFlush = c.dur
			default:
				row.MonoSpark = c.dur
			}
			out.Util[q] = append(out.Util[q], c.util...)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Fprint renders the Fig. 5 table.
func (r *Fig05Result) Fprint(w io.Writer) {
	fprintf(w, "Figure 5: big data benchmark, 5 workers × (8 cores, 2 HDD)\n")
	fprintf(w, "%-6s %10s %14s %11s %12s %12s\n",
		"query", "spark(s)", "spark-flush(s)", "mono(s)", "mono/spark", "mono/flush")
	for _, row := range r.Rows {
		fprintf(w, "%-6s %10.1f %14.1f %11.1f %12.2f %12.2f\n",
			row.Query, float64(row.Spark), float64(row.SparkFlush), float64(row.MonoSpark),
			row.MonoVsSpark(), row.MonoVsFlush())
	}
}

// FprintFig6 renders the stage-utilization boxes for the same runs.
func (r *Fig05Result) FprintFig6(w io.Writer) {
	fprintf(w, "Figure 6: two most utilized resources per stage (p5/p25/p50/p75/p95)\n")
	for _, q := range workloads.BDBQueryNames() {
		for _, u := range r.Util[q] {
			fprintf(w, "q%-3s %-10s %-18s best=%-7s [%.2f %.2f %.2f %.2f %.2f]  2nd=%-7s [%.2f %.2f %.2f %.2f %.2f]\n",
				q, u.System, u.Stage,
				u.Bottleneck, u.Box.P5, u.Box.P25, u.Box.P50, u.Box.P75, u.Box.P95,
				u.Second, u.SecondBox.P5, u.SecondBox.P25, u.SecondBox.P50, u.SecondBox.P75, u.SecondBox.P95)
		}
	}
}
