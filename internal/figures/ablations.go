package figures

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/jobsched"
	"repro/internal/resource"
	"repro/internal/run"
	"repro/internal/sweep"
	"repro/internal/task"
	"repro/internal/units"
	"repro/internal/workloads"
)

// AblationResult is a generic label → runtime table for the design-choice
// ablations DESIGN.md calls out.
type AblationResult struct {
	Title string
	Rows  []AblationRow
}

// AblationRow is one configuration's outcome.
type AblationRow struct {
	Label   string
	Seconds float64
	Note    string
}

// Fprint renders the table.
func (r *AblationResult) Fprint(w io.Writer) {
	fprintf(w, "%s\n", r.Title)
	fprintf(w, "%-28s %10s  %s\n", "configuration", "job(s)", "")
	for _, row := range r.Rows {
		fprintf(w, "%-28s %10.1f  %s\n", row.Label, row.Seconds, row.Note)
	}
}

// runSortWithMono runs the reference sort under specific monotask options.
func runSortWithMono(opts core.Options) (float64, error) {
	res, err := execute(5, cluster.M2_4XLarge(),
		run.Options{Mode: run.Monotasks, Mono: opts},
		workloads.Sort{TotalBytes: 60 * units.GB, ValuesPerKey: 25}.Build)
	if err != nil {
		return 0, err
	}
	return float64(res.Jobs[0].Duration()), nil
}

// AblationPhaseRR compares the §3.3 phase round-robin queues against plain
// FIFO in the scenario the paper describes: a deep backlog of disk writes
// (from a write-heavy job) with a read-then-compute job arriving behind it.
// Under FIFO the second job's reads are stuck behind every queued write and
// its CPU sits idle; round robin interleaves them.
func AblationPhaseRR() (*AblationResult, error) {
	configs := []bool{false, true} // DisablePhaseRoundRobin
	secs, err := sweep.Run(len(configs), func(i int) (float64, error) {
		fifo := configs[i]
		c, err := cluster.New(5, cluster.M2_4XLarge())
		if err != nil {
			return 0, err
		}
		env, err := workloads.NewEnv(c)
		if err != nil {
			return 0, err
		}
		writer := &task.JobSpec{Name: "writer", Stages: []*task.StageSpec{{
			ID: 0, Name: "writer", NumTasks: 400, OpCPU: 0.05, OutputBytes: 512 << 20,
		}}}
		reader, err := workloads.ReadCompute{Name: "reader", TotalBytes: 20 * units.GB, NumTasks: 160}.Build(env)
		if err != nil {
			return 0, err
		}
		d, err := run.Driver(c, env.FS, run.Options{Mode: run.Monotasks,
			Mono: core.Options{DisablePhaseRoundRobin: fifo}})
		if err != nil {
			return 0, err
		}
		if _, err := d.Submit(writer); err != nil {
			return 0, err
		}
		// The reader arrives once the writer's backlog is established; its
		// runtime isolates the queueing effect.
		var submitErr error
		var readerHandle *jobsched.JobHandle
		c.Engine.At(30, func() {
			readerHandle, submitErr = d.Submit(reader)
		})
		d.Run()
		if submitErr != nil {
			return 0, submitErr
		}
		return float64(readerHandle.Metrics.Duration()), nil
	})
	if err != nil {
		return nil, err
	}
	out := &AblationResult{Title: "Ablation: per-resource queue discipline (§3.3)"}
	for i, fifo := range configs {
		label, note := "phase round-robin (paper)", ""
		if fifo {
			label, note = "plain FIFO", "reader's disk reads starve behind the write backlog"
		}
		out.Rows = append(out.Rows, AblationRow{Label: label, Seconds: secs[i], Note: note})
	}
	return out, nil
}

// AblationSpareMultitask compares the §3.4 "+1" spare multitask against a
// concurrency target with no slack.
func AblationSpareMultitask() (*AblationResult, error) {
	opts := []core.Options{{}, {NoSpareMultitask: true}}
	secs, err := sweep.Run(len(opts), func(i int) (float64, error) {
		return runSortWithMono(opts[i])
	})
	if err != nil {
		return nil, err
	}
	out := &AblationResult{Title: "Ablation: the spare multitask (§3.4)"}
	out.Rows = append(out.Rows,
		AblationRow{Label: "cores+disks+net+1 (paper)", Seconds: secs[0]},
		AblationRow{Label: "no spare multitask", Seconds: secs[1]},
	)
	return out, nil
}

// AblationNetLimit sweeps the receiver-side limit on multitasks with
// outstanding network requests, reproducing the §3.3 trade-off that led the
// authors to pick four. The cluster has one degraded machine, the exact
// hazard §3.3 names: with too few multitasks outstanding, a receiver can
// sit waiting on data from one slow sender; with too many, no multitask's
// data completes early enough to pipeline with compute.
func AblationNetLimit() (*AblationResult, error) {
	out := &AblationResult{Title: "Ablation: network scheduler multitask limit (§3.3; one machine degraded to 0.4×)"}
	limits := []int{1, 2, 4, 8, 16}
	secs, err := sweep.Run(len(limits), func(i int) (float64, error) {
		specs := make([]cluster.MachineSpec, 15)
		for j := range specs {
			specs[j] = cluster.I2_2XLarge(2)
		}
		specs[0] = specs[0].Degraded(0.4)
		res, err := executeHetero(specs,
			run.Options{Mode: run.Monotasks, Mono: core.Options{NetMultitaskLimit: limits[i]}},
			workloads.LeastSquares{}.Build)
		if err != nil {
			return 0, err
		}
		return float64(res.Jobs[0].Duration()), nil
	})
	if err != nil {
		return nil, err
	}
	for i, lim := range limits {
		note := ""
		if lim == 4 {
			note = "(paper's choice)"
		}
		out.Rows = append(out.Rows, AblationRow{
			Label:   labelNetLimit(lim),
			Seconds: secs[i],
			Note:    note,
		})
	}
	return out, nil
}

func labelNetLimit(lim int) string {
	switch lim {
	case 1:
		return "1 multitask outstanding"
	default:
		return lab("%d multitasks outstanding", lim)
	}
}

// AblationSSDConcurrency sweeps outstanding monotasks per flash drive: the
// §3.3 finding is that throughput rises to a knee around four.
func AblationSSDConcurrency() (*AblationResult, error) {
	out := &AblationResult{Title: "Ablation: outstanding monotasks per SSD (§3.3)"}
	concs := []int{1, 2, 4, 8}
	secs, err := sweep.Run(len(concs), func(i int) (float64, error) {
		res, err := execute(5, cluster.I2_2XLarge(2),
			run.Options{Mode: run.Monotasks, Mono: core.Options{SSDConcurrency: concs[i]}},
			workloads.Sort{TotalBytes: 60 * units.GB, ValuesPerKey: 50}.Build)
		if err != nil {
			return 0, err
		}
		return float64(res.Jobs[0].Duration()), nil
	})
	if err != nil {
		return nil, err
	}
	for i, conc := range concs {
		note := ""
		if conc == 4 {
			note = "(paper's choice: the throughput knee)"
		}
		out.Rows = append(out.Rows, AblationRow{
			Label:   lab("%d per SSD", conc),
			Seconds: secs[i],
			Note:    note,
		})
	}
	return out, nil
}

// AblationLoadAwareWrites compares round-robin write placement against the
// shortest-queue policy §8 proposes, on machines with heterogeneous disks
// (one HDD + one SSD), where round robin keeps feeding the slow drive.
func AblationLoadAwareWrites() (*AblationResult, error) {
	spec := cluster.MachineSpec{
		Cores:    8,
		Disks:    []resource.DiskSpec{resource.DefaultHDD(), resource.DefaultSSD()},
		NetBW:    units.Gbps(1),
		MemBytes: 60 * units.GB,
	}
	out := &AblationResult{Title: "Ablation: write-disk selection on mixed HDD+SSD machines (§8)"}
	aware := []bool{false, true}
	secs, err := sweep.Run(len(aware), func(i int) (float64, error) {
		res, err := execute(5, spec,
			run.Options{Mode: run.Monotasks, Mono: core.Options{LoadAwareWrites: aware[i]}},
			workloads.Sort{TotalBytes: 60 * units.GB, ValuesPerKey: 25}.Build)
		if err != nil {
			return 0, err
		}
		return float64(res.Jobs[0].Duration()), nil
	})
	if err != nil {
		return nil, err
	}
	for i, a := range aware {
		label := "round robin (paper)"
		if a {
			label = "shortest queue (§8)"
		}
		out.Rows = append(out.Rows, AblationRow{Label: label, Seconds: secs[i]})
	}
	return out, nil
}

// lab is a tiny Sprintf wrapper to keep the rows tidy.
func lab(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}

// AblationNetworkPolicy compares the paper's receiver-limited network
// scheduler against the sender/receiver matching discipline it names as
// future work (pHost / iSlip, §3.3), on the network-heavy ML workload and
// on the sort's disk-backed shuffle.
func AblationNetworkPolicy() (*AblationResult, error) {
	out := &AblationResult{Title: "Ablation: network scheduling discipline (§3.3 future work)"}
	configs := []struct {
		label  string
		policy core.NetworkPolicy
	}{
		{"receiver-limited (paper)", core.ReceiverLimited},
		{"sender/receiver matching", core.SenderReceiverMatching},
	}
	// Cells 0..1 are the ML workload, 2..3 the sort, preserving row order.
	rows, err := sweep.Run(2*len(configs), func(i int) (AblationRow, error) {
		cfgRow := configs[i%len(configs)]
		o := run.Options{Mode: run.Monotasks, Mono: core.Options{NetworkPolicy: cfgRow.policy}}
		var res *RunResult
		var err error
		var suffix string
		if i < len(configs) {
			suffix = " / ml"
			res, err = execute(15, cluster.I2_2XLarge(2), o, workloads.LeastSquares{}.Build)
		} else {
			suffix = " / sort"
			res, err = execute(5, cluster.M2_4XLarge(), o,
				workloads.Sort{TotalBytes: 60 * units.GB, ValuesPerKey: 25}.Build)
		}
		if err != nil {
			return AblationRow{}, err
		}
		return AblationRow{
			Label:   cfgRow.label + suffix,
			Seconds: float64(res.Jobs[0].Duration()),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	out.Rows = rows
	return out, nil
}
