package figures

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

// The figure functions are exercised end to end by bench_test.go at the
// repository root; these tests cover the cheaper ones plus the printers,
// asserting the paper's qualitative claims.

func TestFig05AndFig06(t *testing.T) {
	r, err := Fig05()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 10 {
		t.Fatalf("%d queries, want 10", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Spark <= 0 || row.SparkFlush <= 0 || row.MonoSpark <= 0 {
			t.Fatalf("q%s has non-positive runtime: %+v", row.Query, row)
		}
		ceiling := 1.15
		if row.Query == "1c" {
			ceiling = 1.6 // the paper's buffer-cache outlier
		}
		if v := row.MonoVsSpark(); v < 0.7 || v > ceiling {
			t.Errorf("q%s mono/spark = %.2f outside [0.7, %.2f]", row.Query, v, ceiling)
		}
	}
	if len(r.Util) != 10 {
		t.Fatalf("utilization summaries for %d queries, want 10", len(r.Util))
	}
	var buf bytes.Buffer
	r.Fprint(&buf)
	if !strings.Contains(buf.String(), "Figure 5") || !strings.Contains(buf.String(), "1c") {
		t.Fatal("Fig. 5 printer output incomplete")
	}
	buf.Reset()
	r.FprintFig6(&buf)
	if !strings.Contains(buf.String(), "Figure 6") {
		t.Fatal("Fig. 6 printer output incomplete")
	}
}

func TestFig09MonoKeepsBottleneckBusier(t *testing.T) {
	r, err := Fig09()
	if err != nil {
		t.Fatal(err)
	}
	// §5.4 / Fig. 9: q2c's map stage is CPU-bound; MonoSpark keeps the CPU
	// more utilized than Spark.
	if r.MonoCPU <= r.SparkCPU {
		t.Fatalf("mono cpu util %.2f ≤ spark %.2f", r.MonoCPU, r.SparkCPU)
	}
	if r.MonoCPU < 0.85 {
		t.Fatalf("mono cpu util %.2f; paper reports > 0.92", r.MonoCPU)
	}
	var buf bytes.Buffer
	r.Fprint(&buf)
	if !strings.Contains(buf.String(), "Figure 9") {
		t.Fatal("printer output incomplete")
	}
}

func TestFig14NetworkIrrelevant(t *testing.T) {
	r, err := Fig14()
	if err != nil {
		t.Fatal(err)
	}
	cpuBound := 0
	for _, row := range r.Rows {
		if row.NoNetFrac < 0.9 {
			t.Errorf("q%s: removing the network predicted %.2f; the paper finds network irrelevant", row.Query, row.NoNetFrac)
		}
		if row.Bottleneck.String() == "cpu" {
			cpuBound++
		}
	}
	if cpuBound < 5 {
		t.Fatalf("only %d/10 queries CPU-bound; paper: CPU is the bottleneck for most", cpuBound)
	}
	var buf bytes.Buffer
	r.Fprint(&buf)
	if !strings.Contains(buf.String(), "Figure 14") {
		t.Fatal("printer output incomplete")
	}
}

func TestSec63Prediction(t *testing.T) {
	r, err := Sec63()
	if err != nil {
		t.Fatal(err)
	}
	row := r.Rows[0]
	if row.Actual >= row.Baseline {
		t.Fatalf("in-memory run %.1f not faster than on-disk %.1f", row.Actual, row.Baseline)
	}
	if r.MaxAbsErrPct() > 25 {
		t.Fatalf("prediction error %.1f%% > 25%%", r.MaxAbsErrPct())
	}
	var buf bytes.Buffer
	r.Fprint(&buf)
	if !strings.Contains(buf.String(), "6.3") {
		t.Fatal("printer output incomplete")
	}
}

func TestFig16AttributionAsymmetry(t *testing.T) {
	r, err := Fig16()
	if err != nil {
		t.Fatal(err)
	}
	sparkMed, _ := MedianAndP75(r.SparkErrors)
	monoMed, monoP75 := MedianAndP75(r.MonoErrors)
	if monoMed > 1 || monoP75 > 1 {
		t.Fatalf("mono attribution error %.1f%%/%.1f%%; paper: < 1%%", monoMed, monoP75)
	}
	if sparkMed < 5 {
		t.Fatalf("spark attribution error %.1f%% suspiciously low; paper: 17%% median", sparkMed)
	}
	var buf bytes.Buffer
	r.Fprint(&buf)
	if !strings.Contains(buf.String(), "Figure 16") {
		t.Fatal("printer output incomplete")
	}
}

func TestPredictRowArithmetic(t *testing.T) {
	row := PredictRow{Label: "x", Baseline: 10, Predicted: 12, Actual: 10}
	if row.ErrPct() != 20 {
		t.Fatalf("ErrPct = %v, want 20", row.ErrPct())
	}
	r := PredictResult{Title: "t", Rows: []PredictRow{row, {Predicted: 5, Actual: 10}}}
	if r.MaxAbsErrPct() != 50 {
		t.Fatalf("MaxAbsErrPct = %v, want 50", r.MaxAbsErrPct())
	}
	var buf bytes.Buffer
	r.Fprint(&buf)
	if !strings.Contains(buf.String(), "max |error|") {
		t.Fatal("printer output incomplete")
	}
}

func TestPctErr(t *testing.T) {
	if pctErr(11, 10) != 10 {
		t.Fatalf("pctErr(11,10) = %v", pctErr(11, 10))
	}
	if pctErr(5, 0) != 0 {
		t.Fatal("pctErr with zero actual should be 0")
	}
}

func TestCSVTables(t *testing.T) {
	// Hand-built results: every CSV table must round-trip through the
	// encoder with a consistent column count.
	cases := []interface {
		CSV() *CSVTable
	}{
		&SortResult{Rows: []SortRow{{System: "spark", Job: 10, Map: 4, Reduce: 6}}},
		&Fig02Result{Start: 0, Step: 1, CPU: []float64{0.5}, Disk0: []float64{1}, Disk1: []float64{0}},
		&Fig05Result{Rows: []Fig05Row{{Query: "1a", Spark: 1, SparkFlush: 2, MonoSpark: 3}}},
		&Fig07Result{Rows: []Fig07Row{{Stage: "m", Spark: 1, Mono: 2}}},
		&Fig08Result{Rows: []Fig08Row{{Tasks: 160, Waves: 1, Spark: 1, Mono: 2}}},
		&PredictResult{Rows: []PredictRow{{Label: "x", Baseline: 1, Predicted: 2, Actual: 2}}},
		&Fig12Result{Rows: []Fig12Row{{Query: "1a"}}},
		&Fig14Result{Rows: []Fig14Row{{Query: "1a", Original: 1, NoDiskFrac: 0.5, NoNetFrac: 1, NoCPUFrac: 1}}},
		&Fig16Result{SparkErrors: []float64{0.1}, MonoErrors: []float64{0}},
		&Fig18Result{TaskCounts: []int{1, 2}, Rows: []Fig18Row{{Workload: "s", SparkByTasks: map[int]sim.Duration{1: 5, 2: 3}, BestSpark: 3, Mono: 3}}},
		&AblationResult{Rows: []AblationRow{{Label: "a", Seconds: 1}}},
		&FailureResult{Rows: []FailureRow{{System: "spark", Clean: 1, WithFailure: 2}}},
	}
	for _, c := range cases {
		tbl := c.CSV()
		if tbl.Name == "" || len(tbl.Header) == 0 || len(tbl.Rows) == 0 {
			t.Fatalf("%T: empty CSV table", c)
		}
		for _, row := range tbl.Rows {
			if len(row) != len(tbl.Header) {
				t.Fatalf("%T: row width %d ≠ header width %d", c, len(row), len(tbl.Header))
			}
		}
		var buf bytes.Buffer
		if err := tbl.Write(&buf); err != nil {
			t.Fatalf("%T: %v", c, err)
		}
		lines := strings.Count(buf.String(), "\n")
		if lines != len(tbl.Rows)+1 {
			t.Fatalf("%T: %d CSV lines for %d rows", c, lines, len(tbl.Rows))
		}
	}
}
