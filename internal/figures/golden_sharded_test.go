package figures

import (
	"bytes"
	"fmt"
	"testing"
)

// TestGoldenShardedVsSerial locks the sharded engine's equivalence contract:
// the golden corpus (sort + big data benchmark), a two-seed chaos matrix
// (fault injection, retries, machine exclusion), and the memory-model sweep
// (GC pauses, bandwidth ceilings, spill) must render byte-identical output on
// the serial engine and on the sharded engine at 1, 2, 4, and 8 shards.
// Sharding is an execution strategy, not a model change; any divergence means
// the windowed scheduler reordered product events.
func TestGoldenShardedVsSerial(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		buf.Write(goldenOutput(t))
		cr, err := Chaos(2)
		if err != nil {
			t.Fatal(err)
		}
		cr.Fprint(&buf)
		mr, err := Memory(true)
		if err != nil {
			t.Fatal(err)
		}
		mr.Fprint(&buf)
		// Full-precision rows: Fprint rounds for humans, but the equivalence
		// contract is bitwise.
		for _, row := range mr.Rows {
			fmt.Fprintf(&buf, "mem gb=%.9f dur=%.9f gc=%d spill=%d peak=%d attrib=%.9f\n",
				row.GB, row.Seconds, row.GCPauses, row.SpillBytes, row.PeakResident, row.AttribErrPct)
		}
		return buf.Bytes()
	}
	defer SetShards(0)
	SetShards(0)
	serial := render()
	for _, shards := range []int{1, 2, 4, 8} {
		SetShards(shards)
		if got := render(); !bytes.Equal(got, serial) {
			t.Fatalf("shards=%d output diverged from serial engine at:\n%s",
				shards, firstDiffLine(got, serial))
		}
	}
}

// TestGoldenShardedTelemetry extends the sharded equivalence gate to the live
// telemetry bus: the full snapshot stream of the golden corpus + chaos matrix
// must be byte-identical on the serial engine and at 4 shards. Sampling rides
// the engine's event queue, so this pins that the windowed scheduler fires
// sampler events at the same virtual instants in the same order.
func TestGoldenShardedTelemetry(t *testing.T) {
	defer SetShards(0)
	SetShards(0)
	serial := telemetryStream(t)
	if len(serial) == 0 {
		t.Fatal("empty telemetry stream")
	}
	SetShards(4)
	sharded := telemetryStream(t)
	if !bytes.Equal(serial, sharded) {
		t.Fatalf("telemetry stream diverged between serial and 4-shard engines at:\n%s",
			firstDiffLine(sharded, serial))
	}
}
