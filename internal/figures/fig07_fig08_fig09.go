package figures

import (
	"io"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/run"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/task"
	"repro/internal/units"
	"repro/internal/workloads"
)

// Fig07Row is one stage of the least-squares workload under both systems.
type Fig07Row struct {
	Stage string
	Spark sim.Duration
	Mono  sim.Duration
}

// Fig07Result compares the machine-learning workload per stage (Fig. 7).
type Fig07Result struct {
	Rows []Fig07Row
}

// Fig07 runs the least-squares workload on 15 two-SSD workers, both modes
// concurrently.
func Fig07() (*Fig07Result, error) {
	modes := []run.Mode{run.Spark, run.Monotasks}
	results, err := sweep.Run(len(modes), func(i int) (*RunResult, error) {
		return execute(15, cluster.I2_2XLarge(2), run.Options{Mode: modes[i]},
			workloads.LeastSquares{}.Build)
	})
	if err != nil {
		return nil, err
	}
	out := &Fig07Result{}
	for i, st := range results[0].Jobs[0].Stages {
		out.Rows = append(out.Rows, Fig07Row{
			Stage: st.Spec.Name,
			Spark: st.Duration(),
			Mono:  results[1].Jobs[0].Stages[i].Duration(),
		})
	}
	return out, nil
}

// MaxRatio is the worst per-stage MonoSpark-to-Spark ratio.
func (r *Fig07Result) MaxRatio() float64 {
	worst := 0.0
	for _, row := range r.Rows {
		if ratio := float64(row.Mono) / float64(row.Spark); ratio > worst {
			worst = ratio
		}
	}
	return worst
}

// Fprint renders the per-stage table.
func (r *Fig07Result) Fprint(w io.Writer) {
	fprintf(w, "Figure 7: least squares (matrix multiply) per stage, 15 workers × (8 cores, 2 SSD)\n")
	fprintf(w, "%-14s %10s %10s %8s\n", "stage", "spark(s)", "mono(s)", "ratio")
	for _, row := range r.Rows {
		fprintf(w, "%-14s %10.1f %10.1f %8.2f\n", row.Stage,
			float64(row.Spark), float64(row.Mono), float64(row.Mono)/float64(row.Spark))
	}
}

// Fig08Row is one task-count point of the pipelining-sensitivity sweep.
type Fig08Row struct {
	Tasks int
	Waves float64
	Spark sim.Duration
	Mono  sim.Duration
}

// Fig08Result is the Fig. 8 sweep: runtime versus number of tasks for a job
// that reads input and computes on it, on 20 workers (160 cores).
type Fig08Result struct {
	Rows []Fig08Row
}

// Fig08 sweeps the task count from one wave (160) upward; the (task count,
// mode) grid runs through the sweep pool.
func Fig08() (*Fig08Result, error) {
	const totalBytes = 200 * units.GB
	taskCounts := []int{160, 320, 480, 960, 1920}
	modes := []run.Mode{run.Spark, run.Monotasks}
	durs, err := sweep.Run(len(taskCounts)*len(modes), func(i int) (sim.Duration, error) {
		tasks, mode := taskCounts[i/len(modes)], modes[i%len(modes)]
		res, err := execute(20, cluster.M2_4XLarge(), run.Options{Mode: mode},
			workloads.ReadCompute{TotalBytes: totalBytes, NumTasks: tasks}.Build)
		if err != nil {
			return 0, err
		}
		return res.Jobs[0].Duration(), nil
	})
	if err != nil {
		return nil, err
	}
	out := &Fig08Result{}
	for ti, tasks := range taskCounts {
		out.Rows = append(out.Rows, Fig08Row{
			Tasks: tasks,
			Waves: float64(tasks) / 160,
			Spark: durs[ti*len(modes)],
			Mono:  durs[ti*len(modes)+1],
		})
	}
	return out, nil
}

// Fprint renders the sweep.
func (r *Fig08Result) Fprint(w io.Writer) {
	fprintf(w, "Figure 8: read+compute job vs task count, 20 workers (160 cores)\n")
	fprintf(w, "%8s %7s %10s %10s %12s\n", "tasks", "waves", "spark(s)", "mono(s)", "mono/spark")
	for _, row := range r.Rows {
		fprintf(w, "%8d %7.1f %10.1f %10.1f %12.2f\n", row.Tasks, row.Waves,
			float64(row.Spark), float64(row.Mono), float64(row.Mono)/float64(row.Spark))
	}
}

// Fig09Result compares utilization during the q2c map stage (Fig. 9): the
// monotasks per-resource schedulers keep the bottleneck CPU pegged while
// Spark's independent tasks leave it partially idle.
type Fig09Result struct {
	SparkCPU, SparkDisk float64
	MonoCPU, MonoDisk   float64
	SparkSeries         [][2]float64 // (cpu, disk) samples
	MonoSeries          [][2]float64
}

// Fig09 runs q2c in both modes concurrently and summarizes map-stage
// utilization.
func Fig09() (*Fig09Result, error) {
	type cell struct {
		cpu, disk float64
		series    [][2]float64
	}
	modes := []run.Mode{run.Spark, run.Monotasks}
	cells, err := sweep.Run(len(modes), func(i int) (cell, error) {
		res, err := execute(5, cluster.M2_4XLarge(), run.Options{Mode: modes[i]},
			func(env *workloads.Env) (*task.JobSpec, error) { return workloads.BDBQuery("2c", env) })
		if err != nil {
			return cell{}, err
		}
		st := res.Jobs[0].Stages[0]
		const n = 30
		cpu := metrics.UtilSamples(res.Cluster, metrics.CPU, st.Start, st.End, n)
		disk := metrics.UtilSamples(res.Cluster, metrics.Disk, st.Start, st.End, n)
		meanOf := func(s []float64) float64 {
			var sum float64
			for _, v := range s {
				sum += v
			}
			return sum / float64(len(s))
		}
		series := make([][2]float64, 0, n)
		m0cpu := res.Cluster.Machines[0].CPU.Util.Samples(st.Start, st.End, n)
		m0disk := res.Cluster.Machines[0].Disks[0].Util.Samples(st.Start, st.End, n)
		for j := 0; j < n; j++ {
			series = append(series, [2]float64{m0cpu[j], m0disk[j]})
		}
		return cell{cpu: meanOf(cpu), disk: meanOf(disk), series: series}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig09Result{
		SparkCPU: cells[0].cpu, SparkDisk: cells[0].disk, SparkSeries: cells[0].series,
		MonoCPU: cells[1].cpu, MonoDisk: cells[1].disk, MonoSeries: cells[1].series,
	}, nil
}

// Fprint renders the summary and series.
func (r *Fig09Result) Fprint(w io.Writer) {
	fprintf(w, "Figure 9: utilization during the q2c map stage (CPU is the bottleneck)\n")
	fprintf(w, "%-10s %10s %10s\n", "system", "mean cpu", "mean disk")
	fprintf(w, "%-10s %10.2f %10.2f\n", "spark", r.SparkCPU, r.SparkDisk)
	fprintf(w, "%-10s %10.2f %10.2f\n", "monospark", r.MonoCPU, r.MonoDisk)
	fprintf(w, "machine-0 series (cpu/disk):\n spark: ")
	for _, s := range r.SparkSeries {
		fprintf(w, "%.2f/%.2f ", s[0], s[1])
	}
	fprintf(w, "\n mono:  ")
	for _, s := range r.MonoSeries {
		fprintf(w, "%.2f/%.2f ", s[0], s[1])
	}
	fprintf(w, "\n")
}
