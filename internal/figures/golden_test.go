package figures

import (
	"bytes"
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cluster"
	"repro/internal/jobsched"
	"repro/internal/run"
	"repro/internal/sweep"
	"repro/internal/task"
	"repro/internal/units"
	"repro/internal/workloads"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden determinism file")

// goldenOutput renders a small sort (both systems) and one big data benchmark
// query through the same code paths the paper figures use, at full float
// precision so any drift in the simulation shows up byte-for-byte.
func goldenOutput(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer

	sr, err := SortSized(16*units.GB, 4)
	if err != nil {
		t.Fatal(err)
	}
	sr.Fprint(&buf)
	for _, row := range sr.Rows {
		fmt.Fprintf(&buf, "%s job=%.9f map=%.9f reduce=%.9f\n",
			row.System, float64(row.Job), float64(row.Map), float64(row.Reduce))
	}

	q := workloads.BDBQueryNames()[0]
	res, err := execute(5, cluster.M2_4XLarge(), run.Options{Mode: run.Monotasks},
		func(env *workloads.Env) (*task.JobSpec, error) { return workloads.BDBQuery(q, env) })
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	fmt.Fprintf(&buf, "bdb q%s monotasks job=%.9f\n", q, float64(j.Duration()))
	for _, st := range j.Stages {
		fmt.Fprintf(&buf, "  %s start=%.9f end=%.9f\n", st.Spec.Name, float64(st.Start), float64(st.End))
	}
	return buf.Bytes()
}

// TestGoldenDeterminism is the regression gate for the repo's central
// determinism claim: the same experiment must produce byte-identical output
// twice in one process, and byte-identical output to the checked-in golden
// file across processes, machines, and (under -race) goroutine schedules.
// Regenerate the file with: go test ./internal/figures -run Golden -update
func TestGoldenDeterminism(t *testing.T) {
	a := goldenOutput(t)
	b := goldenOutput(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("same-process replay differs:\nfirst:\n%s\nsecond:\n%s", firstDiffLine(a, b), firstDiffLine(b, a))
	}

	golden := filepath.Join("testdata", "golden_determinism.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, a, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(a))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (regenerate with -update): %v", err)
	}
	if !bytes.Equal(a, want) {
		t.Fatalf("output drifted from %s at:\n%s\n(if the change is intentional, rerun with -update)",
			golden, firstDiffLine(a, want))
	}
}

// TestGoldenSerialVsParallel locks the sweep pool's determinism contract:
// the same experiments at --parallel 1 and --parallel 8 must render
// byte-identical output. The comparison covers the golden corpus plus a
// two-seed chaos matrix (a four-cell grid), so the parallel leg genuinely
// fans cells across workers.
func TestGoldenSerialVsParallel(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		buf.Write(goldenOutput(t))
		cr, err := Chaos(2)
		if err != nil {
			t.Fatal(err)
		}
		cr.Fprint(&buf)
		return buf.Bytes()
	}
	old := sweep.Parallelism()
	defer sweep.SetParallelism(old)
	sweep.SetParallelism(1)
	serial := render()
	sweep.SetParallelism(8)
	parallel := render()
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("parallel sweep output diverged from serial at:\n%s",
			firstDiffLine(parallel, serial))
	}
}

// TestGoldenTemplateCacheOnOff locks the execution-template cache's
// equivalence contract: the golden corpus plus a two-seed chaos matrix
// (fault injection, machine exclusion, retries — everything that could
// perturb a cached plan) must hash byte-identically with the jobsched
// template cache enabled and disabled. With the cache off, every submission
// rebuilds its template from the spec, so any divergence means cached
// control-plane state leaked between jobs.
func TestGoldenTemplateCacheOnOff(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		buf.Write(goldenOutput(t))
		cr, err := Chaos(2)
		if err != nil {
			t.Fatal(err)
		}
		cr.Fprint(&buf)
		return buf.Bytes()
	}
	prev := jobsched.SetTemplateCache(true)
	defer jobsched.SetTemplateCache(prev)
	cacheOn := sha256.Sum256(render())
	jobsched.SetTemplateCache(false)
	cacheOff := sha256.Sum256(render())
	if cacheOn != cacheOff {
		jobsched.SetTemplateCache(true)
		a := render()
		jobsched.SetTemplateCache(false)
		b := render()
		t.Fatalf("template cache changed results (hash %x vs %x) at:\n%s",
			cacheOn[:8], cacheOff[:8], firstDiffLine(a, b))
	}
}

// firstDiffLine reports the first line where got and want disagree.
func firstDiffLine(got, want []byte) string {
	g := bytes.Split(got, []byte("\n"))
	w := bytes.Split(want, []byte("\n"))
	for i := 0; i < len(g) && i < len(w); i++ {
		if !bytes.Equal(g[i], w[i]) {
			return fmt.Sprintf("line %d:\n  got:  %s\n  want: %s", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("length %d vs %d bytes", len(got), len(want))
}
