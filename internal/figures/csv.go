package figures

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSVTable is a figure's data in plottable form: a header row plus records.
// Every figure result that renders a table also exposes one, so
// `monobench -csv` can hand the evaluation to external plotting tools.
type CSVTable struct {
	Name   string
	Header []string
	Rows   [][]string
}

// Write emits the table as RFC-4180 CSV.
func (t *CSVTable) Write(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	if err := cw.WriteAll(t.Rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func f1(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }
func f3(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

// CSV renders the sort comparison.
func (r *SortResult) CSV() *CSVTable {
	t := &CSVTable{Name: "sort", Header: []string{"system", "job_s", "map_s", "reduce_s"}}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.System, f1(float64(row.Job)), f1(float64(row.Map)), f1(float64(row.Reduce))})
	}
	return t
}

// CSV renders the Fig. 2 utilization series.
func (r *Fig02Result) CSV() *CSVTable {
	t := &CSVTable{Name: "fig02", Header: []string{"time_s", "cpu", "disk1", "disk2"}}
	for i := range r.CPU {
		ts := float64(r.Start) + float64(r.Step)*float64(i)
		t.Rows = append(t.Rows, []string{f1(ts), f3(r.CPU[i]), f3(r.Disk0[i]), f3(r.Disk1[i])})
	}
	return t
}

// CSV renders the Fig. 5 table.
func (r *Fig05Result) CSV() *CSVTable {
	t := &CSVTable{Name: "fig05", Header: []string{"query", "spark_s", "spark_flush_s", "mono_s"}}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Query, f1(float64(row.Spark)), f1(float64(row.SparkFlush)), f1(float64(row.MonoSpark))})
	}
	return t
}

// CSV renders the Fig. 7 per-stage table.
func (r *Fig07Result) CSV() *CSVTable {
	t := &CSVTable{Name: "fig07", Header: []string{"stage", "spark_s", "mono_s"}}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Stage, f1(float64(row.Spark)), f1(float64(row.Mono))})
	}
	return t
}

// CSV renders the Fig. 8 sweep.
func (r *Fig08Result) CSV() *CSVTable {
	t := &CSVTable{Name: "fig08", Header: []string{"tasks", "waves", "spark_s", "mono_s"}}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(row.Tasks), f1(row.Waves), f1(float64(row.Spark)), f1(float64(row.Mono))})
	}
	return t
}

// CSV renders a prediction table (Figs. 11, 13, §6.3).
func (r *PredictResult) CSV() *CSVTable {
	t := &CSVTable{Name: "predict", Header: []string{"workload", "baseline_s", "predicted_s", "actual_s", "err_pct"}}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Label, f1(row.Baseline), f1(row.Predicted), f1(row.Actual), f1(row.ErrPct())})
	}
	return t
}

// CSV renders the three disk-removal models side by side (Figs. 12/15/17).
func (r *Fig12Result) CSV() *CSVTable {
	t := &CSVTable{Name: "fig12", Header: []string{
		"query", "mono_baseline_s", "mono_predicted_s", "mono_actual_s",
		"spark_baseline_s", "slot_predicted_s", "util_predicted_s", "spark_actual_s"}}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Query, f1(row.MonoBaseline), f1(row.MonoPredicted), f1(row.MonoActual),
			f1(row.SparkBaseline), f1(row.SlotPredicted), f1(row.UtilPredicted), f1(row.SparkActual)})
	}
	return t
}

// CSV renders the bottleneck analysis (Fig. 14).
func (r *Fig14Result) CSV() *CSVTable {
	t := &CSVTable{Name: "fig14", Header: []string{"query", "orig_s", "no_disk_frac", "no_net_frac", "no_cpu_frac", "bottleneck"}}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Query, f1(row.Original), f3(row.NoDiskFrac), f3(row.NoNetFrac), f3(row.NoCPUFrac), row.Bottleneck.String()})
	}
	return t
}

// CSV renders the attribution comparison (Fig. 16).
func (r *Fig16Result) CSV() *CSVTable {
	sm, sp := MedianAndP75(r.SparkErrors)
	mm, mp := MedianAndP75(r.MonoErrors)
	return &CSVTable{
		Name:   "fig16",
		Header: []string{"system", "median_err_pct", "p75_err_pct"},
		Rows: [][]string{
			{"spark", f1(sm), f1(sp)},
			{"monospark", f1(mm), f1(mp)},
		},
	}
}

// CSV renders the auto-configuration sweep (Fig. 18).
func (r *Fig18Result) CSV() *CSVTable {
	header := []string{"workload"}
	for _, tc := range r.TaskCounts {
		header = append(header, fmt.Sprintf("spark%d_s", tc))
	}
	header = append(header, "best_s", "mono_s")
	t := &CSVTable{Name: "fig18", Header: header}
	for _, row := range r.Rows {
		rec := []string{row.Workload}
		for _, tc := range r.TaskCounts {
			rec = append(rec, f1(float64(row.SparkByTasks[tc])))
		}
		rec = append(rec, f1(float64(row.BestSpark)), f1(float64(row.Mono)))
		t.Rows = append(t.Rows, rec)
	}
	return t
}

// CSV renders an ablation table.
func (r *AblationResult) CSV() *CSVTable {
	t := &CSVTable{Name: "ablation", Header: []string{"configuration", "job_s"}}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Label, f1(row.Seconds)})
	}
	return t
}

// CSV renders the failure matrix.
func (r *FailureResult) CSV() *CSVTable {
	t := &CSVTable{Name: "failure", Header: []string{
		"system", "phase", "replication", "speculation", "clean_s", "with_failure_s", "outcome"}}
	for _, row := range r.Rows {
		phase := row.Phase
		if phase == "" {
			phase = "reduce"
		}
		repl := row.Replication
		if repl == 0 {
			repl = 2
		}
		t.Rows = append(t.Rows, []string{
			row.System, phase, fmt.Sprintf("%d", repl), fmt.Sprintf("%v", row.Speculation),
			f1(float64(row.Clean)), f1(float64(row.WithFailure)), row.Outcome})
	}
	return t
}

// CSV renders the chaos harness verdicts.
func (r *ChaosResult) CSV() *CSVTable {
	t := &CSVTable{Name: "chaos", Header: []string{
		"seed", "mode", "duration_s", "faults", "correct", "reproducible", "outcome"}}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", row.Seed), row.Mode, f1(float64(row.Duration)),
			fmt.Sprintf("%d", row.Faults), fmt.Sprintf("%v", row.Correct),
			fmt.Sprintf("%v", row.Reproducible), row.Outcome})
	}
	return t
}
