package resource

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// Property suite for the memory device's bandwidth sharing, mirroring
// internal/netsim/property_test.go: across 250 seeded random cases the
// allocation must be feasible, work-conserving, max-min fair (a single
// water level explains every rate), and bit-identically independent of
// stream insertion order.

const memSeeds = 250

// memCase is one random scenario: a machine ceiling plus per-stream demand
// caps (<= 0 means uncapped — the stream takes whatever fair share allows).
type memCase struct {
	bw      float64
	demands []float64
}

func randomMemCase(seed int64) memCase {
	rng := rand.New(rand.NewSource(seed))
	c := memCase{bw: (0.5 + 4*rng.Float64()) * 1e9}
	n := 1 + rng.Intn(25)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.3 {
			c.demands = append(c.demands, 0) // uncapped
		} else {
			c.demands = append(c.demands, (0.05+rng.Float64())*c.bw)
		}
	}
	return c
}

// openMemStreams admits every stream (in the given order) with effectively
// infinite bytes and never runs the engine, so the instantaneous allocation
// can be inspected. Rates are returned indexed by case position, not
// admission position.
func openMemStreams(c memCase, order []int) []float64 {
	eng := sim.NewEngine()
	m := NewMemory(eng, MemorySpec{BandwidthBPS: c.bw})
	streams := make([]*MemStream, len(c.demands))
	for _, i := range order {
		streams[i] = m.Stream(1<<50, c.demands[i], func() {})
	}
	rates := make([]float64, len(streams))
	for i, st := range streams {
		rates[i] = st.Rate()
	}
	return rates
}

func identityOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

func reversedOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = n - 1 - i
	}
	return order
}

func shuffledOrder(n int, seed int64) []int {
	order := identityOrder(n)
	rand.New(rand.NewSource(seed)).Shuffle(n, func(i, j int) {
		order[i], order[j] = order[j], order[i]
	})
	return order
}

// TestMemorySharingFeasible: no stream exceeds its demand cap, and the sum
// of rates never exceeds the machine ceiling.
func TestMemorySharingFeasible(t *testing.T) {
	for seed := int64(0); seed < memSeeds; seed++ {
		c := randomMemCase(seed)
		rates := openMemStreams(c, identityOrder(len(c.demands)))
		var total float64
		for i, r := range rates {
			if r < 0 {
				t.Fatalf("seed %d: stream %d has negative rate %v", seed, i, r)
			}
			if d := c.demands[i]; d > 0 && r > d*(1+1e-9) {
				t.Fatalf("seed %d: stream %d rate %v exceeds its demand cap %v", seed, i, r, d)
			}
			total += r
		}
		if total > c.bw*(1+1e-9) {
			t.Fatalf("seed %d: total rate %v exceeds ceiling %v", seed, total, c.bw)
		}
	}
}

// TestMemorySharingWorkConserving: the device serves min(ceiling, sum of
// demands); with any uncapped stream present it must saturate the ceiling.
func TestMemorySharingWorkConserving(t *testing.T) {
	for seed := int64(0); seed < memSeeds; seed++ {
		c := randomMemCase(seed)
		rates := openMemStreams(c, identityOrder(len(c.demands)))
		var total, demandSum float64
		uncapped := false
		for i, r := range rates {
			total += r
			if c.demands[i] <= 0 {
				uncapped = true
			} else {
				demandSum += c.demands[i]
			}
		}
		want := c.bw
		if !uncapped && demandSum < c.bw {
			want = demandSum
		}
		if math.Abs(total-want) > want*1e-9 {
			t.Fatalf("seed %d: total rate %v, want work-conserving %v (ceiling %v, demand sum %v, uncapped %v)",
				seed, total, want, c.bw, demandSum, uncapped)
		}
	}
}

// TestMemorySharingIsWaterFilling: max-min fairness means one water level L
// explains every allocation — each stream gets min(demand, L), and every
// uncapped stream gets exactly L.
func TestMemorySharingIsWaterFilling(t *testing.T) {
	for seed := int64(0); seed < memSeeds; seed++ {
		c := randomMemCase(seed)
		rates := openMemStreams(c, identityOrder(len(c.demands)))
		// The water level is the largest allocation handed out.
		level := 0.0
		for _, r := range rates {
			if r > level {
				level = r
			}
		}
		for i, r := range rates {
			want := level
			if d := c.demands[i]; d > 0 && d < level {
				want = d
			}
			if math.Abs(r-want) > want*1e-9+1e-12 {
				t.Fatalf("seed %d: stream %d rate %v, want min(demand, level) = %v (demand %v, level %v)",
					seed, i, r, want, c.demands[i], level)
			}
		}
	}
}

// TestMemorySharingOrderIndependent: admitting the same open streams in
// reversed or shuffled order yields bit-identical per-stream rates. This is
// what makes the simulation replayable regardless of scheduler dispatch
// order.
func TestMemorySharingOrderIndependent(t *testing.T) {
	for seed := int64(0); seed < memSeeds; seed++ {
		c := randomMemCase(seed)
		n := len(c.demands)
		base := openMemStreams(c, identityOrder(n))
		for name, order := range map[string][]int{
			"reversed": reversedOrder(n),
			"shuffled": shuffledOrder(n, seed+1),
		} {
			got := openMemStreams(c, order)
			for i := range base {
				if got[i] != base[i] {
					t.Fatalf("seed %d: %s insertion order changed stream %d rate: %v vs %v",
						seed, name, i, got[i], base[i])
				}
			}
		}
	}
}

// TestMemorySharingDeterministic: the same case replayed twice produces
// bit-identical rates — no map iteration or pointer ordering leaks in.
func TestMemorySharingDeterministic(t *testing.T) {
	for seed := int64(0); seed < memSeeds; seed++ {
		c := randomMemCase(seed)
		order := identityOrder(len(c.demands))
		a := openMemStreams(c, order)
		b := openMemStreams(c, order)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: replay changed stream %d rate: %v vs %v", seed, i, a[i], b[i])
			}
		}
	}
}

// TestMemoryDrainOrderIndependent runs full simulations (finite streams,
// engine to completion) under different admission orders within one event
// dispatch and requires identical completion times per stream identity.
func TestMemoryDrainOrderIndependent(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		c := randomMemCase(seed)
		n := len(c.demands)
		rng := rand.New(rand.NewSource(seed + 9000))
		bytes := make([]int64, n)
		for i := range bytes {
			bytes[i] = int64((0.1 + rng.Float64()) * 1e9)
		}
		runOrder := func(order []int) []sim.Time {
			eng := sim.NewEngine()
			m := NewMemory(eng, MemorySpec{BandwidthBPS: c.bw})
			times := make([]sim.Time, n)
			for _, i := range order {
				i := i
				m.Stream(bytes[i], c.demands[i], func() { times[i] = eng.Now() })
			}
			eng.Run()
			return times
		}
		base := runOrder(identityOrder(n))
		rev := runOrder(reversedOrder(n))
		for i := range base {
			if base[i] != rev[i] {
				t.Fatalf("seed %d: admission order changed stream %d completion: %v vs %v",
					seed, i, base[i], rev[i])
			}
		}
	}
}
