package resource

import (
	"testing"

	"repro/internal/sim"
)

// noSeekHDD returns an HDD spec with seeks disabled, for arithmetic-clean
// tests. Floors are disabled (set below any reachable collapse) so the α
// arithmetic is exact.
func noSeekHDD(bw float64, alpha float64) DiskSpec {
	return DiskSpec{
		Kind: HDD, SeqBW: bw, SeekTime: 0,
		ContentionAlpha: alpha, StreamingAlpha: alpha,
		MixedFloorFrac: 0.01, StreamFloorFrac: 0.01,
	}
}

func TestHDDSequentialRead(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDisk(eng, noSeekHDD(100e6, 0.35))
	var done sim.Time
	d.Read(200e6, func() { done = eng.Now() })
	eng.Run()
	if !almostEqual(float64(done), 2.0) {
		t.Fatalf("200 MB at 100 MB/s finished at %v, want 2.0", done)
	}
}

func TestHDDSeekCharged(t *testing.T) {
	eng := sim.NewEngine()
	spec := DiskSpec{Kind: HDD, SeqBW: 100e6, SeekTime: 0.008, ContentionAlpha: 0.35}
	d := NewDisk(eng, spec)
	var done sim.Time
	d.Read(100e6, func() { done = eng.Now() })
	eng.Run()
	if !almostEqual(float64(done), 1.008) {
		t.Fatalf("100 MB + one 8 ms seek finished at %v, want 1.008", done)
	}
}

func TestHDDContentionCollapsesThroughput(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDisk(eng, noSeekHDD(100e6, 0.35))
	var last sim.Time
	// Four concurrent 100 MB streams at α = 0.35 (no floor):
	// aggregate = 100/(1+0.35·3) = 48.78 MB/s.
	for i := 0; i < 4; i++ {
		d.Read(100e6, func() { last = eng.Now() })
	}
	eng.Run()
	want := 400.0 / (100.0 / 2.05)
	if !almostEqual(float64(last), want) {
		t.Fatalf("4 concurrent streams finished at %v, want %v (≈2× collapse)", last, want)
	}
}

func TestHDDMixedWorsePureReadsMilder(t *testing.T) {
	// With the default HDD model, four parallel readers lose ~13%
	// (streaming α), while a read/write mix collapses to the 50% floor —
	// the §5.4 contention MonoSpark wins back.
	spec := DefaultHDD()
	spec.SeekTime = 0

	engR := sim.NewEngine()
	dR := NewDisk(engR, spec)
	var lastR sim.Time
	for i := 0; i < 4; i++ {
		dR.Read(100e6, func() { lastR = engR.Now() })
	}
	engR.Run()
	// Streaming α: aggregate 100/(1+0.05·3) = 87 MB/s (above the 85% floor)
	// ⇒ 400 MB in 4.6 s — a ~13% penalty, not a collapse.
	if !almostEqual(float64(lastR), 400.0/(100.0/1.15)) {
		t.Fatalf("4 readers finished at %v, want %v", lastR, 400.0/(100.0/1.15))
	}

	engM := sim.NewEngine()
	dM := NewDisk(engM, spec)
	var lastM sim.Time
	for i := 0; i < 2; i++ {
		dM.Read(100e6, func() { lastM = engM.Now() })
		dM.Write(100e6, func() { lastM = engM.Now() })
	}
	engM.Run()
	// Mixed floor: aggregate 50 MB/s ⇒ 400 MB in 8 s — 2× the sequential time.
	if !almostEqual(float64(lastM), 400.0/50.0) {
		t.Fatalf("2R+2W finished at %v, want %v (2× collapse)", lastM, 400.0/50.0)
	}
	if lastM <= lastR {
		t.Fatal("mixed access should be slower than parallel reads")
	}
}

func TestHDDSerializedBeatsContended(t *testing.T) {
	// The monotasks disk scheduler's whole reason to exist: issuing requests
	// one at a time must beat issuing them all at once.
	run := func(concurrent bool) sim.Time {
		eng := sim.NewEngine()
		d := NewDisk(eng, noSeekHDD(100e6, 0.35))
		var last sim.Time
		n := 4
		if concurrent {
			for i := 0; i < n; i++ {
				d.Read(100e6, func() { last = eng.Now() })
			}
		} else {
			var next func(i int)
			next = func(i int) {
				if i == n {
					return
				}
				d.Read(100e6, func() {
					last = eng.Now()
					next(i + 1)
				})
			}
			next(0)
		}
		eng.Run()
		return last
	}
	serialized, contended := run(false), run(true)
	if serialized >= contended {
		t.Fatalf("serialized %v ≥ contended %v; seek penalty not modeled", serialized, contended)
	}
	ratio := float64(contended) / float64(serialized)
	if ratio < 1.8 || ratio > 2.3 {
		t.Fatalf("contention ratio %v, want ≈2× (calibration)", ratio)
	}
}

func TestSSDThroughputScalesToKnee(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDisk(eng, DefaultSSD()) // 400 MB/s, knee 4
	var done sim.Time
	// One outstanding op only reaches ¼ of peak.
	d.Read(100e6, func() { done = eng.Now() })
	eng.Run()
	if !almostEqual(float64(done), 1.0) {
		t.Fatalf("1 op: 100 MB at 100 MB/s effective, finished %v, want 1.0", done)
	}

	eng2 := sim.NewEngine()
	d2 := NewDisk(eng2, DefaultSSD())
	var last sim.Time
	for i := 0; i < 4; i++ {
		d2.Read(100e6, func() { last = eng2.Now() })
	}
	eng2.Run()
	if !almostEqual(float64(last), 1.0) {
		t.Fatalf("4 ops: 400 MB at 400 MB/s aggregate, finished %v, want 1.0", last)
	}
}

func TestSSDNoPenaltyBeyondKnee(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDisk(eng, DefaultSSD())
	var last sim.Time
	for i := 0; i < 8; i++ {
		d.Read(50e6, func() { last = eng.Now() })
	}
	eng.Run()
	// 400 MB total at 400 MB/s aggregate.
	if !almostEqual(float64(last), 1.0) {
		t.Fatalf("8 ops finished at %v, want 1.0 (no over-knee collapse)", last)
	}
}

func TestDiskUtilizationBinary(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDisk(eng, noSeekHDD(100e6, 0.35))
	d.Read(100e6, func() {})
	eng.Run()
	if got := d.Util.Mean(0, 1); !almostEqual(got, 1) {
		t.Fatalf("utilization while busy = %v, want 1", got)
	}
	if got := d.Util.At(2); got != 0 {
		t.Fatalf("utilization after idle = %v, want 0", got)
	}
}

func TestDiskByteCounters(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDisk(eng, DefaultSSD())
	d.Read(100, func() {})
	d.Write(200, func() {})
	eng.Run()
	if d.BytesRead() != 100 || d.BytesWritten() != 200 {
		t.Fatalf("counters = %d read / %d written, want 100/200", d.BytesRead(), d.BytesWritten())
	}
}

func TestDiskIdealTime(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDisk(eng, noSeekHDD(100e6, 0.35))
	if got := d.IdealTime(300e6); !almostEqual(float64(got), 3.0) {
		t.Fatalf("IdealTime(300 MB) = %v, want 3.0", got)
	}
}

func TestDefaultSpecs(t *testing.T) {
	h := DefaultHDD()
	if h.Kind != HDD || h.SeqBW != 100e6 || h.SeekTime != 0.008 {
		t.Fatalf("DefaultHDD = %+v", h)
	}
	s := DefaultSSD()
	if s.Kind != SSD || s.SeqBW != 400e6 || s.SaturationOps != 4 {
		t.Fatalf("DefaultSSD = %+v", s)
	}
	if h.Kind.String() != "HDD" || s.Kind.String() != "SSD" {
		t.Fatal("DiskKind.String broken")
	}
}

func TestDiskCancel(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDisk(eng, noSeekHDD(100e6, 0))
	fired := false
	j := d.Read(100e6, func() { fired = true })
	eng.At(0.5, func() { d.Cancel(j) })
	eng.Run()
	if fired {
		t.Fatal("cancelled request completed")
	}
	if d.Queue() != 0 {
		t.Fatalf("queue = %d after cancel, want 0", d.Queue())
	}
}
