package resource

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sim"
)

// FuzzMemoryEvents replays random schedules of every memory-device operation
// — stream admission, cancellation, capacity charges and releases, speed
// degradation — against a GC-enabled device, twice each, and requires the
// two event logs to be bit-identical. This is the replay guarantee the
// golden corpus rests on, probed far outside the shapes real workloads
// produce.
func FuzzMemoryEvents(f *testing.F) {
	for s := int64(1); s <= 8; s++ {
		f.Add(s, uint8(40))
	}
	f.Add(int64(99), uint8(0))
	f.Add(int64(7), uint8(255))

	f.Fuzz(func(t *testing.T, seed int64, nOps uint8) {
		a := memoryEventLog(seed, int(nOps))
		b := memoryEventLog(seed, int(nOps))
		if a != b {
			al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
			for i := 0; i < len(al) && i < len(bl); i++ {
				if al[i] != bl[i] {
					t.Fatalf("seed %d nOps %d: replay diverged at log line %d:\n  first:  %s\n  second: %s",
						seed, nOps, i+1, al[i], bl[i])
				}
			}
			t.Fatalf("seed %d nOps %d: replay logs differ in length: %d vs %d lines",
				seed, nOps, len(al), len(bl))
		}
	})
}

// memoryEventLog builds one deterministic random schedule from (seed, nOps),
// runs it to completion, and serializes everything observable: stream
// completion order and times, GC pauses, and the device's final counters.
func memoryEventLog(seed int64, nOps int) string {
	rng := rand.New(rand.NewSource(seed))
	spec := MemorySpec{
		BandwidthBPS:  (0.5 + rng.Float64()) * 1e9,
		CapacityBytes: 1 << 26,
		GCEveryBytes:  1 << 22,
		GCPauseSec:    0.001 + 0.01*rng.Float64(),
		GCSeed:        seed*7919 + 1,
	}

	// Pre-generate the whole op list from the seeded rng so the schedule is a
	// pure function of the inputs; execution-time choices (which live stream
	// to cancel) index deterministic state with pre-drawn randomness.
	type op struct {
		at     sim.Time
		kind   int
		bytes  int64
		demand float64
		pick   int
	}
	ops := make([]op, nOps%97)
	at := sim.Time(0)
	for i := range ops {
		at += sim.Time(rng.Float64() * 0.05)
		ops[i] = op{
			at:     at,
			kind:   rng.Intn(5),
			bytes:  1 + rng.Int63n(1<<27),
			demand: rng.Float64() * spec.BandwidthBPS, // may exceed any fair share
			pick:   rng.Int(),
		}
		if rng.Float64() < 0.25 {
			ops[i].demand = 0 // uncapped
		}
	}

	eng := sim.NewEngine()
	m := NewMemory(eng, spec)
	var log strings.Builder
	m.OnGC(func(p sim.Duration) {
		fmt.Fprintf(&log, "gc @%.12g pause=%.12g\n", float64(eng.Now()), float64(p))
	})

	// live tracks streams admitted but not yet completed or canceled; the
	// device recycles MemStream structs after completion, so only live
	// entries may be passed back to Cancel.
	var live []*MemStream
	var liveIDs []int
	nextID := 0
	charged := int64(0)

	for _, o := range ops {
		o := o
		eng.After(sim.Duration(o.at), func() {
			switch o.kind {
			case 0, 1: // admit a stream (twice as likely as the others)
				id := nextID
				nextID++
				var st *MemStream
				st = m.Stream(o.bytes, o.demand, func() {
					fmt.Fprintf(&log, "done %d @%.12g\n", id, float64(eng.Now()))
					for i, l := range live {
						if l == st && liveIDs[i] == id {
							live = append(live[:i], live[i+1:]...)
							liveIDs = append(liveIDs[:i], liveIDs[i+1:]...)
							break
						}
					}
				})
				if st != nil {
					live = append(live, st)
					liveIDs = append(liveIDs, id)
				}
			case 2: // cancel a live stream
				if len(live) > 0 {
					i := o.pick % len(live)
					fmt.Fprintf(&log, "cancel %d @%.12g\n", liveIDs[i], float64(eng.Now()))
					m.Cancel(live[i])
					live = append(live[:i], live[i+1:]...)
					liveIDs = append(liveIDs[:i], liveIDs[i+1:]...)
				}
			case 3: // capacity traffic: charge, sometimes release
				held, spill := m.Charge(o.bytes)
				charged += held
				fmt.Fprintf(&log, "charge %d held=%d spill=%d @%.12g\n", o.bytes, held, spill, float64(eng.Now()))
				if o.pick%2 == 0 && charged > 0 {
					rel := charged / 2
					m.Release(rel)
					charged -= rel
				}
			case 4: // degrade or restore the ceiling
				factor := 0.25 + 0.75*float64(o.pick%4)/3
				m.SetSpeedFactor(factor)
				fmt.Fprintf(&log, "speed %.12g @%.12g\n", factor, float64(eng.Now()))
			}
		})
	}
	eng.Run()
	fmt.Fprintf(&log, "final moved=%d gc=%d inuse=%d peak=%d end=%.12g\n",
		m.BytesMoved(), m.GCCount(), m.InUse(), m.Peak(), float64(eng.Now()))
	return log.String()
}
