package resource

import "repro/internal/sim"

// CPU models a machine's processor as n cores under processor sharing: k
// runnable jobs each progress at rate min(1, n/k). Work is measured in
// core-seconds.
//
// The monotasks compute scheduler admits at most n jobs, so under MonoSpark
// every compute monotask runs at rate 1 (§3.3, "one monotask per core").
// The pipelined executor admits one job per task slot, which may exceed n,
// and then the OS-style sharing kicks in.
type CPU struct {
	cores int
	speed float64
	srv   *server
	Util  Tracker
}

// NewCPU creates a processor with the given core count on sched (the serial
// engine, or the machine's lane in a sharded run).
func NewCPU(sched sim.Scheduler, cores int) *CPU {
	return NewCPUWithSpeed(sched, cores, 1)
}

// NewCPUWithSpeed creates a processor whose cores run at `speed` times the
// reference rate — the heterogeneity/straggler knob (a degraded machine has
// speed < 1).
func NewCPUWithSpeed(sched sim.Scheduler, cores int, speed float64) *CPU {
	if cores <= 0 {
		panic("resource: CPU needs at least one core")
	}
	if speed <= 0 {
		panic("resource: CPU speed must be positive")
	}
	c := &CPU{cores: cores, speed: speed}
	c.srv = newServer(sched,
		func(readers, writers int) float64 {
			k := readers + writers
			if k < cores {
				return speed * float64(k)
			}
			return speed * float64(cores)
		},
		func(k int) {
			busy := float64(k)
			if busy > float64(cores) {
				busy = float64(cores)
			}
			c.Util.Set(c.srv.sched.Now(), busy/float64(cores))
		})
	return c
}

// SetScheduler rebinds the processor to a different timeline — the cluster's
// sharding hook. Only legal while idle.
func (c *CPU) SetScheduler(sched sim.Scheduler) { c.srv.setScheduler(sched) }

// Cores reports the core count.
func (c *CPU) Cores() int { return c.cores }

// Run submits coreSeconds of compute; done fires at completion.
func (c *CPU) Run(coreSeconds float64, done func()) *Job {
	return c.srv.Add(coreSeconds, done)
}

// SetSpeedFactor rescales the processor to factor times its configured rate
// from the current virtual time onward (1 restores it) — the dynamic
// straggler knob: unlike NewCPUWithSpeed it can change mid-run, which fault
// injection uses to degrade and heal machines.
func (c *CPU) SetSpeedFactor(factor float64) { c.srv.setSpeed(factor) }

// Pause stalls every core for d of virtual time — the stop-the-world pause a
// garbage-collection event inflicts on a machine (§7 discussion; the memory
// model's GC knob drives this). In-flight compute is caught up at the
// pre-pause rate first, so the stall is exact; overlapping pauses coalesce to
// the later end time.
func (c *CPU) Pause(d sim.Duration) { c.srv.pause(d) }

// Cancel abandons an in-flight job.
func (c *CPU) Cancel(j *Job) { c.srv.Remove(j) }

// Running reports the number of in-service jobs (may exceed Cores).
func (c *CPU) Running() int { return c.srv.Count() }
