package resource

import (
	"math"

	"repro/internal/sim"
)

// AggregateFunc maps the number of jobs in service — split into two classes,
// readers and writers, so devices can price mixed access differently — to
// the server's aggregate service rate (work units per second). The rate is
// split equally among all jobs. Examples:
//
//   - CPU with n cores: aggregate(k) = min(k, n) core-seconds/second, so each
//     job runs at rate min(1, n/k) — classic processor sharing (all jobs are
//     class 0; the writer count is always zero).
//   - HDD: concurrent streams cost seeks, collapsing total throughput, and a
//     read/write mix thrashes the head harder than parallel readers.
//   - SSD: throughput rises with outstanding operations until the device
//     saturates.
type AggregateFunc func(readers, writers int) float64

// Job is one unit of in-service work on a fluid server.
//
// Job structs are pooled: once a job completes (its done callback has fired)
// the struct is recycled for a later Add on the same server, so a *Job held
// past completion must not be passed to Remove. Removing an in-flight job
// remains safe, and Remove of a just-completed (not yet reused) job is a
// no-op.
type Job struct {
	remaining float64 // work units left
	total     float64
	class     int // 0 = reader, 1 = writer
	done      func()
	started   sim.Time
	seq       uint64
	index     int // position in server.jobs, -1 when not in service
}

// Remaining reports the work still owed to the job.
func (j *Job) Remaining() float64 { return j.remaining }

// server is the fluid-flow core shared by the CPU and disk models: a set of
// jobs drains at aggregate(k)/k each; membership changes trigger a catch-up
// of remaining work and a reschedule of the next completion event.
//
// The server is allocation-lean by design: the in-service set is a slice
// (swap-removed via Job.index), retired Job structs are recycled through a
// free list, and the completion callback passed to the engine is bound once
// at construction instead of per reschedule.
type server struct {
	sched      sim.Scheduler
	aggregate  AggregateFunc
	speed      float64 // dynamic degradation factor, 1 = nominal
	jobs       []*Job
	classCount [2]int
	nextSeq    uint64
	lastUpdate sim.Time
	completion sim.EventRef
	completeFn func() // s.complete, bound once so reschedule never allocates
	// paused stops all progress until pauseEnd — the stop-the-world knob GC
	// events use. In-service jobs keep their remaining work; advance drains
	// nothing and reschedule arms no completion while paused.
	paused   bool
	pauseEnd sim.Time
	resumeEv sim.EventRef
	resumeFn func() // s.resume, bound once
	finished   []*Job // reusable scratch for complete()
	pool       []*Job // recycled Job structs
	// onCount is invoked whenever the in-service job count changes, with the
	// new count; devices use it to drive their utilization trackers.
	onCount func(k int)
}

func newServer(sched sim.Scheduler, aggregate AggregateFunc, onCount func(k int)) *server {
	s := &server{
		sched:     sched,
		aggregate: aggregate,
		speed:     1,
		onCount:   onCount,
	}
	s.completeFn = s.complete
	s.resumeFn = s.resume
	return s
}

// setScheduler rebinds the server to a different timeline — the cluster's
// sharding hook, moving a machine's devices onto its lane (and back). Only
// legal while the server is idle: a pending completion or pause event lives
// on the old timeline and could not be cancelled through the new one.
func (s *server) setScheduler(sched sim.Scheduler) {
	if len(s.jobs) > 0 || s.completion.Scheduled() || s.paused {
		panic("resource: scheduler rebind with work in flight")
	}
	s.sched = sched
	s.lastUpdate = sched.Now()
}

// pause halts all service for d of virtual time from now — a stop-the-world
// event (GC). In-service jobs are caught up at the pre-pause rate first, so
// the stall is exact. Overlapping pauses coalesce: a new pause extends the
// stall only if it ends later than the one in progress.
func (s *server) pause(d sim.Duration) {
	if d <= 0 {
		return
	}
	s.advance()
	end := s.sched.Now() + sim.Time(d)
	if s.paused {
		if end <= s.pauseEnd {
			return
		}
		s.sched.Cancel(s.resumeEv)
	} else {
		s.paused = true
		s.sched.Cancel(s.completion)
		s.completion = sim.EventRef{}
	}
	s.pauseEnd = end
	s.resumeEv = s.sched.After(sim.Duration(end-s.sched.Now()), s.resumeFn)
}

// resume ends a pause: time spent stalled drained nothing (advance sees a
// zero rate while paused), so jobs simply pick up where they stopped.
func (s *server) resume() {
	s.advance()
	s.paused = false
	s.resumeEv = sim.EventRef{}
	s.reschedule()
}

// setSpeed rescales the server's aggregate rate by factor (relative to its
// configured AggregateFunc) from the current virtual time onward. In-service
// jobs are caught up at the old rate first, so a mid-job change is exact —
// the dynamic-degradation knob fault injection uses.
func (s *server) setSpeed(factor float64) {
	if factor <= 0 {
		panic("resource: speed factor must be positive")
	}
	s.advance()
	s.speed = factor
	s.reschedule()
}

// newJob takes a Job struct from the free list (or the heap) and stamps it.
func (s *server) newJob(work float64, class int, done func()) *Job {
	s.nextSeq++
	var j *Job
	if n := len(s.pool); n > 0 {
		j = s.pool[n-1]
		s.pool[n-1] = nil
		s.pool = s.pool[:n-1]
	} else {
		j = &Job{}
	}
	j.remaining = work
	j.total = work
	j.class = class
	j.done = done
	j.started = s.sched.Now()
	j.seq = s.nextSeq
	j.index = -1
	return j
}

// recycle retires a completed job's struct to the free list.
func (s *server) recycle(j *Job) {
	j.done = nil
	s.pool = append(s.pool, j)
}

// Add places work units of demand in service as a class-0 (reader) job;
// done fires (via the engine) when the job completes. Zero-work jobs
// complete on the next event dispatch rather than synchronously, so callers
// never re-enter themselves.
func (s *server) Add(work float64, done func()) *Job {
	return s.AddClass(work, 0, done)
}

// AddClass is Add with an explicit job class (0 = reader, 1 = writer).
func (s *server) AddClass(work float64, class int, done func()) *Job {
	s.advance()
	if work <= 0 {
		// Zero-work jobs never enter service, so the caller-held struct is
		// never recycled (a pool slot would alias a future job).
		s.nextSeq++
		j := &Job{class: class, done: done, started: s.sched.Now(), seq: s.nextSeq, index: -1}
		s.sched.After(0, done)
		return j
	}
	j := s.newJob(work, class, done)
	j.index = len(s.jobs)
	s.jobs = append(s.jobs, j)
	s.classCount[class]++
	s.notifyCount()
	s.reschedule()
	return j
}

// inService reports whether j is currently in the service set.
func (s *server) inService(j *Job) bool {
	return j.index >= 0 && j.index < len(s.jobs) && s.jobs[j.index] == j
}

// Remove cancels a job before completion (e.g. a speculative fetch that is
// no longer needed). Removing a finished job is a no-op.
func (s *server) Remove(j *Job) {
	if !s.inService(j) {
		return
	}
	s.advance()
	s.unlink(j)
	s.classCount[j.class]--
	s.notifyCount()
	s.reschedule()
	s.recycle(j)
}

// unlink swap-removes j from the in-service slice.
func (s *server) unlink(j *Job) {
	i, n := j.index, len(s.jobs)-1
	if i != n {
		s.jobs[i] = s.jobs[n]
		s.jobs[i].index = i
	}
	s.jobs[n] = nil
	s.jobs = s.jobs[:n]
	j.index = -1
}

// Count reports the number of jobs in service.
func (s *server) Count() int { return len(s.jobs) }

// perJobRate returns the current drain rate of each job.
func (s *server) perJobRate() float64 {
	k := len(s.jobs)
	if k == 0 || s.paused {
		return 0
	}
	return s.speed * s.aggregate(s.classCount[0], s.classCount[1]) / float64(k)
}

// advance deducts the work completed since the last update from every
// in-service job. It must be called before any membership change.
func (s *server) advance() {
	now := s.sched.Now()
	dt := float64(now - s.lastUpdate)
	s.lastUpdate = now
	if dt <= 0 || len(s.jobs) == 0 {
		return
	}
	drained := s.perJobRate() * dt
	for _, j := range s.jobs {
		j.remaining -= drained
		// Clamp float residue to zero. The tolerance must be relative to the
		// job's size: with byte-scale work units (10^8+), absolute epsilons
		// leave residues that reschedule zero-length completion events
		// forever once the clock is large enough that now+tiny == now.
		if j.remaining < 1e-9*j.total+1e-12 {
			j.remaining = 0
		}
	}
}

// reschedule cancels the pending completion event and schedules one for the
// job that will finish first (all jobs drain at the same rate, so that is
// the one with the least remaining work).
func (s *server) reschedule() {
	s.sched.Cancel(s.completion)
	s.completion = sim.EventRef{}
	if len(s.jobs) == 0 || s.paused {
		// While paused no job makes progress; resume() reschedules.
		return
	}
	minRemaining := math.MaxFloat64
	for _, j := range s.jobs {
		if j.remaining < minRemaining {
			minRemaining = j.remaining
		}
	}
	rate := s.perJobRate()
	if rate <= 0 {
		panic("resource: server with jobs but zero aggregate rate")
	}
	s.completion = s.sched.After(sim.Duration(minRemaining/rate), s.completeFn)
}

// complete retires every job whose work has drained to zero, then
// reschedules. Multiple jobs can tie (identical demands started together).
func (s *server) complete() {
	s.completion = sim.EventRef{}
	s.advance()
	finished := s.finished[:0]
	for _, j := range s.jobs {
		if j.remaining == 0 {
			finished = append(finished, j)
		}
	}
	if len(finished) == 0 && len(s.jobs) > 0 {
		// The completion event fired but float residue left every job
		// fractionally short. The due job is the minimum-remaining one;
		// retire it, or the server reschedules a drain whose duration can
		// underflow the clock's resolution and spin forever.
		var min *Job
		for _, j := range s.jobs {
			if min == nil || j.remaining < min.remaining ||
				(j.remaining == min.remaining && j.seq < min.seq) {
				min = j
			}
		}
		min.remaining = 0
		finished = append(finished, min)
	}
	for _, j := range finished {
		s.unlink(j)
		s.classCount[j.class]--
	}
	s.notifyCount()
	s.reschedule()
	// Run callbacks after internal state is consistent: a done callback may
	// immediately Add follow-on work to this server. Deterministic order:
	// admission order (seq), since swap-removal scrambles the service slice.
	for i := 1; i < len(finished); i++ {
		for k := i; k > 0 && finished[k].seq < finished[k-1].seq; k-- {
			finished[k], finished[k-1] = finished[k-1], finished[k]
		}
	}
	for _, j := range finished {
		j.done()
	}
	for i, j := range finished {
		s.recycle(j)
		finished[i] = nil
	}
	s.finished = finished[:0]
}

func (s *server) notifyCount() {
	if s.onCount != nil {
		s.onCount(len(s.jobs))
	}
}
