package resource

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestTrackerAt(t *testing.T) {
	var tr Tracker
	tr.Set(1, 0.5)
	tr.Set(3, 1.0)
	tr.Set(5, 0)
	cases := []struct {
		t    sim.Time
		want float64
	}{
		{0, 0}, {0.9, 0}, {1, 0.5}, {2, 0.5}, {3, 1.0}, {4.5, 1.0}, {5, 0}, {100, 0},
	}
	for _, c := range cases {
		if got := tr.At(c.t); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestTrackerOverwriteSameTime(t *testing.T) {
	var tr Tracker
	tr.Set(1, 0.5)
	tr.Set(1, 0.8)
	if got := tr.At(1); got != 0.8 {
		t.Fatalf("At(1) = %v, want 0.8 (overwrite)", got)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", tr.Len())
	}
}

func TestTrackerCoalescesNoops(t *testing.T) {
	var tr Tracker
	tr.Set(1, 0.5)
	tr.Set(2, 0.5)
	tr.Set(3, 0.5)
	if tr.Len() != 1 {
		t.Fatalf("Len() = %d, want 1 (coalesced)", tr.Len())
	}
}

func TestTrackerDecreasingTimePanics(t *testing.T) {
	var tr Tracker
	tr.Set(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Set with decreasing time did not panic")
		}
	}()
	tr.Set(4, 0)
}

func TestTrackerMean(t *testing.T) {
	var tr Tracker
	// 0 on [0,2), 1 on [2,4), 0.5 on [4,∞)
	tr.Set(2, 1)
	tr.Set(4, 0.5)
	if got := tr.Mean(0, 4); !almostEqual(got, 0.5) {
		t.Errorf("Mean(0,4) = %v, want 0.5", got)
	}
	if got := tr.Mean(2, 4); !almostEqual(got, 1) {
		t.Errorf("Mean(2,4) = %v, want 1", got)
	}
	if got := tr.Mean(0, 8); !almostEqual(got, (0*2+1*2+0.5*4)/8.0) {
		t.Errorf("Mean(0,8) = %v, want 0.5", got)
	}
	if got := tr.Mean(3, 5); !almostEqual(got, 0.75) {
		t.Errorf("Mean(3,5) = %v, want 0.75", got)
	}
	if got := tr.Mean(5, 5); got != 0 {
		t.Errorf("Mean over empty window = %v, want 0", got)
	}
}

func TestTrackerSamples(t *testing.T) {
	var tr Tracker
	tr.Set(0, 0)
	tr.Set(5, 1)
	s := tr.Samples(0, 10, 10)
	if len(s) != 10 {
		t.Fatalf("len(Samples) = %d, want 10", len(s))
	}
	for i := 0; i < 5; i++ {
		if s[i] != 0 {
			t.Errorf("sample %d = %v, want 0", i, s[i])
		}
	}
	for i := 5; i < 10; i++ {
		if s[i] != 1 {
			t.Errorf("sample %d = %v, want 1", i, s[i])
		}
	}
	if tr.Samples(0, 10, 0) != nil {
		t.Error("Samples with n=0 should be nil")
	}
}

func TestTrackerMax(t *testing.T) {
	var tr Tracker
	tr.Set(1, 0.3)
	tr.Set(2, 0.9)
	tr.Set(3, 0.1)
	if got := tr.Max(0, 10); got != 0.9 {
		t.Errorf("Max(0,10) = %v, want 0.9", got)
	}
	if got := tr.Max(2.5, 10); got != 0.9 {
		t.Errorf("Max(2.5,10) = %v, want 0.9 (carried value)", got)
	}
	if got := tr.Max(3, 10); got != 0.1 {
		t.Errorf("Max(3,10) = %v, want 0.1", got)
	}
}

// TestTrackerDeltaHalfOpen pins the cumulative-window contract: a transition
// stamped exactly at t0 counts, one stamped exactly at t1 doesn't.
func TestTrackerDeltaHalfOpen(t *testing.T) {
	var tr Tracker
	tr.Set(0, 100)
	tr.Set(2, 250) // +150 stamped exactly at t=2
	tr.Set(5, 400)
	cases := []struct {
		t0, t1 sim.Time
		want   float64
	}{
		{0, 2, 100}, // excludes the t=2 transition
		{2, 5, 150}, // includes t=2, excludes t=5
		{5, 9, 150}, // includes t=5
		{0, 9, 400}, // whole history
		{3, 4, 0},   // quiet interior window
		{2, 2, 0},   // empty window
		{9, 2, 0},   // inverted window
		{-5, 0, 0},  // the t=0 transition belongs to the next window
	}
	for _, c := range cases {
		if got := tr.Delta(c.t0, c.t1); got != c.want {
			t.Errorf("Delta(%v,%v) = %v, want %v", c.t0, c.t1, got, c.want)
		}
	}
}

// TestTrackerDeltaTilesWindows is the regression for the double-count the
// At(t1)-Before(t0) formulation had: adjacent windows sharing a boundary
// where a transition is stamped must sum to the enclosing window.
func TestTrackerDeltaTilesWindows(t *testing.T) {
	var tr Tracker
	cum := 0.0
	// Transitions at every integer time, so every window boundary below
	// lands exactly on a stamped transition — the worst case.
	for i := 0; i <= 10; i++ {
		cum += float64(1 + i)
		tr.Set(sim.Time(i), cum)
	}
	whole := tr.Delta(0, 10)
	split := tr.Delta(0, 3) + tr.Delta(3, 7) + tr.Delta(7, 10)
	if whole != split {
		t.Fatalf("windows do not tile: Delta(0,10) = %v but split sum = %v", whole, split)
	}
	// Demonstrate the closed-window formulation really does double-count
	// here, so this test fails if Delta is ever redefined in terms of it.
	closed := (tr.At(3) - tr.Before(0)) + (tr.At(7) - tr.Before(3)) + (tr.At(10) - tr.Before(7))
	if closed == whole {
		t.Fatal("closed-window sum unexpectedly equals the half-open sum; test lost its teeth")
	}
}

// Property: Mean is always within [min, max] of the recorded values.
func TestPropertyMeanBounded(t *testing.T) {
	f := func(raw []uint8) bool {
		var tr Tracker
		lo, hi := 1.0, 0.0
		for i, r := range raw {
			v := float64(r) / 255
			tr.Set(sim.Time(i), v)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if len(raw) == 0 {
			return true
		}
		m := tr.Mean(0, sim.Time(len(raw)))
		// Value before the first Set is 0.
		if 0 < lo {
			lo = 0
		}
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
