package resource

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// TestPropertyServerWorkConservation: for any job sizes and arrival times,
// a single-capacity server finishes all work no earlier than total work
// after the last idle period, and every job completes exactly once.
func TestPropertyServerWorkConservation(t *testing.T) {
	f := func(rawSizes []uint16, rawArrivals []uint8) bool {
		if len(rawSizes) == 0 {
			return true
		}
		eng := sim.NewEngine()
		srv := newServer(eng, func(r, w int) float64 { return 1 }, nil)
		completions := 0
		var lastEnd sim.Time
		var total float64
		for i, rs := range rawSizes {
			work := float64(rs%1000) + 1
			total += work
			arrival := sim.Time(0)
			if len(rawArrivals) > 0 {
				arrival = sim.Time(rawArrivals[i%len(rawArrivals)])
			}
			eng.At(arrival, func() {
				srv.Add(work, func() {
					completions++
					lastEnd = eng.Now()
				})
			})
		}
		eng.Run()
		if completions != len(rawSizes) {
			return false
		}
		// Work conservation: the server cannot finish before total work
		// (it has unit capacity), and cannot take longer than last arrival
		// + total work (it is never idle with work queued).
		if float64(lastEnd) < total-1e-6 {
			return false
		}
		maxArrival := 0.0
		for _, a := range rawArrivals {
			maxArrival = math.Max(maxArrival, float64(a))
		}
		return float64(lastEnd) <= maxArrival+total+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyServerEqualJobsFinishTogether: identical jobs admitted
// together under equal sharing complete simultaneously.
func TestPropertyServerEqualJobsFinishTogether(t *testing.T) {
	f := func(nRaw uint8, sizeRaw uint16) bool {
		n := int(nRaw)%20 + 1
		size := float64(sizeRaw%5000) + 1
		eng := sim.NewEngine()
		srv := newServer(eng, func(r, w int) float64 { return 2 }, nil)
		ends := make([]sim.Time, 0, n)
		for i := 0; i < n; i++ {
			srv.Add(size, func() { ends = append(ends, eng.Now()) })
		}
		eng.Run()
		if len(ends) != n {
			return false
		}
		for _, e := range ends {
			if math.Abs(float64(e-ends[0])) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestServerChurnNeverLosesJobs: random adds, removes, and chained
// completions under a varying-rate aggregate never strand a job.
func TestServerChurnNeverLosesJobs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		eng := sim.NewEngine()
		srv := newServer(eng, func(r, w int) float64 {
			k := r + w
			return float64(k) / (1 + 0.3*float64(k-1))
		}, nil)
		added, finished, removed := 0, 0, 0
		var jobs []*Job
		for i := 0; i < 200; i++ {
			at := sim.Time(rng.Float64() * 100)
			work := rng.Float64()*1e8 + 1
			class := rng.Intn(2)
			eng.At(at, func() {
				added++
				j := srv.AddClass(work, class, func() { finished++ })
				jobs = append(jobs, j)
			})
		}
		// Random removals racing the completions.
		for i := 0; i < 50; i++ {
			at := sim.Time(rng.Float64() * 150)
			eng.At(at, func() {
				if len(jobs) == 0 {
					return
				}
				j := jobs[rng.Intn(len(jobs))]
				if j.Remaining() > 0 && srv.inService(j) {
					srv.Remove(j)
					removed++
				}
			})
		}
		eng.Run()
		if finished+removed != added {
			t.Fatalf("trial %d: added %d, finished %d, removed %d — jobs lost",
				trial, added, finished, removed)
		}
		if srv.Count() != 0 {
			t.Fatalf("trial %d: %d jobs stranded in the server", trial, srv.Count())
		}
	}
}

// TestServerClassCountsConsistent: reader/writer class accounting survives
// arbitrary interleavings (the disk model's direction-aware pricing depends
// on it).
func TestServerClassCountsConsistent(t *testing.T) {
	eng := sim.NewEngine()
	aggCalls := 0
	srv := newServer(eng, func(r, w int) float64 {
		aggCalls++
		if r < 0 || w < 0 {
			t.Fatalf("negative class count: r=%d w=%d", r, w)
		}
		return float64(r+w) + 1
	}, nil)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		at := sim.Time(rng.Float64() * 10)
		class := i % 2
		eng.At(at, func() {
			srv.AddClass(rng.Float64()*5+0.1, class, func() {})
		})
	}
	eng.Run()
	if srv.classCount[0] != 0 || srv.classCount[1] != 0 {
		t.Fatalf("class counts leaked: %v", srv.classCount)
	}
	if aggCalls == 0 {
		t.Fatal("aggregate function never consulted")
	}
}
