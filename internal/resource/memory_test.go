package resource

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// TestMemoryDisabledSpec pins the opt-in contract: a zero spec builds
// nothing, and the constructor refuses a zero-bandwidth spec rather than
// producing a device that can never serve.
func TestMemoryDisabledSpec(t *testing.T) {
	if (MemorySpec{}).Enabled() {
		t.Fatal("zero MemorySpec reports enabled")
	}
	if !(MemorySpec{BandwidthBPS: 1e9}).Enabled() {
		t.Fatal("bandwidth-only spec reports disabled")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewMemory accepted a zero-bandwidth spec")
		}
	}()
	NewMemory(sim.NewEngine(), MemorySpec{})
}

// TestMemoryStreamAlone: one uncapped stream gets the whole ceiling, and its
// completion lands exactly at bytes/bandwidth.
func TestMemoryStreamAlone(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMemory(eng, MemorySpec{BandwidthBPS: 1e9})
	var doneAt sim.Time
	m.Stream(2e9, 0, func() { doneAt = eng.Now() })
	eng.Run()
	if math.Abs(float64(doneAt)-2) > 1e-9 {
		t.Fatalf("lone 2 GB stream over 1 GB/s finished at %v, want 2 s", doneAt)
	}
	if m.BytesMoved() != 2e9 {
		t.Fatalf("bytes moved %d, want 2e9", m.BytesMoved())
	}
}

// TestMemoryDemandCap: a stream never exceeds its per-stream cap even with
// the ceiling to itself, and the residue goes to uncapped competitors.
func TestMemoryDemandCap(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMemory(eng, MemorySpec{BandwidthBPS: 1e9})
	capped := m.Stream(1<<50, 2e8, func() {})
	if got := capped.Rate(); math.Abs(got-2e8) > 1 {
		t.Fatalf("capped lone stream rate %v, want its 2e8 cap", got)
	}
	uncapped := m.Stream(1<<50, 0, func() {})
	if got := uncapped.Rate(); math.Abs(got-8e8) > 1 {
		t.Fatalf("uncapped stream rate %v, want the 8e8 residue", got)
	}
	if got := capped.Rate(); math.Abs(got-2e8) > 1 {
		t.Fatalf("capped stream rate drifted to %v after competitor arrived", got)
	}
}

// TestMemoryEqualSplit: n uncapped streams share the ceiling equally.
func TestMemoryEqualSplit(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMemory(eng, MemorySpec{BandwidthBPS: 1e9})
	streams := make([]*MemStream, 4)
	for i := range streams {
		streams[i] = m.Stream(1<<50, 0, func() {})
	}
	for i, st := range streams {
		if math.Abs(st.Rate()-2.5e8) > 1 {
			t.Fatalf("stream %d rate %v, want equal split 2.5e8", i, st.Rate())
		}
	}
	if m.Streams() != 4 {
		t.Fatalf("in-service count %d, want 4", m.Streams())
	}
}

// TestMemoryCancelRestoresShare: canceling a stream immediately rerates the
// survivors.
func TestMemoryCancelRestoresShare(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMemory(eng, MemorySpec{BandwidthBPS: 1e9})
	a := m.Stream(1<<50, 0, func() {})
	b := m.Stream(1<<50, 0, func() {})
	m.Cancel(a)
	if math.Abs(b.Rate()-1e9) > 1 {
		t.Fatalf("survivor rate %v after cancel, want full ceiling", b.Rate())
	}
	m.Cancel(a) // canceling again is a no-op
	if m.Streams() != 1 {
		t.Fatalf("in-service count %d, want 1", m.Streams())
	}
}

// TestMemoryZeroByteStream completes on the next dispatch without joining
// the shared allocation.
func TestMemoryZeroByteStream(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMemory(eng, MemorySpec{BandwidthBPS: 1e9})
	fired := false
	m.Stream(0, 0, func() { fired = true })
	if m.Streams() != 0 {
		t.Fatalf("zero-byte stream joined service: %d streams", m.Streams())
	}
	eng.Run()
	if !fired {
		t.Fatal("zero-byte stream never completed")
	}
}

// TestMemoryCapacityPressure: charges beyond capacity spill; releases free
// the space again; zero capacity means unlimited.
func TestMemoryCapacityPressure(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMemory(eng, MemorySpec{BandwidthBPS: 1e9, CapacityBytes: 100})
	held, spill := m.Charge(80)
	if held != 80 || spill != 0 {
		t.Fatalf("first charge held/spill = %d/%d, want 80/0", held, spill)
	}
	held, spill = m.Charge(50)
	if held != 20 || spill != 30 {
		t.Fatalf("overflow charge held/spill = %d/%d, want 20/30", held, spill)
	}
	if m.InUse() != 100 || m.Peak() != 100 {
		t.Fatalf("in-use/peak = %d/%d, want 100/100", m.InUse(), m.Peak())
	}
	m.Release(80)
	held, spill = m.Charge(60)
	if held != 60 || spill != 0 {
		t.Fatalf("post-release charge held/spill = %d/%d, want 60/0", held, spill)
	}

	// Zero capacity: never spills.
	unlimited := NewMemory(eng, MemorySpec{BandwidthBPS: 1e9})
	held, spill = unlimited.Charge(1 << 40)
	if held != 1<<40 || spill != 0 {
		t.Fatalf("unlimited charge held/spill = %d/%d, want all held", held, spill)
	}
}

// TestMemoryGCScheduleIsSeeded: the same seed replays the same GC event
// count at every allocation step; a different seed diverges somewhere.
func TestMemoryGCScheduleIsSeeded(t *testing.T) {
	trace := func(seed int64) []int {
		m := NewMemory(sim.NewEngine(), MemorySpec{
			BandwidthBPS: 1e9, GCEveryBytes: 1 << 20, GCPauseSec: 0.01, GCSeed: seed,
		})
		var counts []int
		for i := 0; i < 200; i++ {
			m.Charge(123_457)
			counts = append(counts, m.GCCount())
		}
		return counts
	}
	a, b := trace(7), trace(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at step %d: %d vs %d GCs", i, a[i], b[i])
		}
	}
	c := trace(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different GC seeds produced identical schedules")
	}
}

// TestMemoryGCPauseStallsCPU wires OnGC to a CPU the way cluster assembly
// does and checks the stall arithmetic end to end: all pauses fired by one
// big charge land at the same instant and coalesce into a single 0.5 s
// stop-the-world window, so a 1 core-second job finishes at 1.5 s.
func TestMemoryGCPauseStallsCPU(t *testing.T) {
	eng := sim.NewEngine()
	cpu := NewCPU(eng, 1)
	m := NewMemory(eng, MemorySpec{
		BandwidthBPS: 1e9, GCEveryBytes: 1000, GCPauseSec: 0.5, GCSeed: 1,
	})
	m.OnGC(func(p sim.Duration) { cpu.Pause(p) })
	var doneAt sim.Time
	cpu.Run(1, func() { doneAt = eng.Now() })
	eng.After(0.25, func() { m.Charge(10_000) }) // well past any seeded gap: fires ≥ 1 GC
	eng.Run()
	if m.GCCount() < 1 {
		t.Fatal("charge past GCEveryBytes fired no GC")
	}
	// Simultaneous equal-length pauses coalesce to one window.
	if math.Abs(float64(doneAt)-1.5) > 1e-9 {
		t.Fatalf("paused job finished at %v, want 1.5 (1 s work + one coalesced 0.5 s pause)", doneAt)
	}
}

// TestServerPauseCoalesces: overlapping pauses extend to the later end, and
// a shorter pause inside a longer one changes nothing.
func TestServerPauseCoalesces(t *testing.T) {
	eng := sim.NewEngine()
	cpu := NewCPU(eng, 1)
	var doneAt sim.Time
	cpu.Run(1, func() { doneAt = eng.Now() })
	eng.After(0.1, func() {
		cpu.Pause(1.0)
		cpu.Pause(0.3) // inside the first: no effect
	})
	eng.After(0.6, func() { cpu.Pause(1.0) }) // overlaps: extends to 1.6
	eng.Run()
	// 0.1 s of work done, paused 0.1→1.6, then 0.9 s of work: ends at 2.5.
	if math.Abs(float64(doneAt)-2.5) > 1e-9 {
		t.Fatalf("coalesced pauses: job finished at %v, want 2.5", doneAt)
	}
}

// TestMemorySetSpeedFactor: degrading the ceiling mid-stream stretches the
// remaining bytes exactly.
func TestMemorySetSpeedFactor(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMemory(eng, MemorySpec{BandwidthBPS: 1e9})
	var doneAt sim.Time
	m.Stream(1e9, 0, func() { doneAt = eng.Now() })
	eng.After(0.5, func() { m.SetSpeedFactor(0.25) })
	eng.Run()
	// 0.5 GB at 1 GB/s, then 0.5 GB at 0.25 GB/s = 0.5 + 2 s.
	if math.Abs(float64(doneAt)-2.5) > 1e-9 {
		t.Fatalf("degraded stream finished at %v, want 2.5 s", doneAt)
	}
}

// TestMemoryCompletionOrderIsAdmissionOrder: simultaneous completions fire
// their callbacks in admission order, the discipline every other device
// follows.
func TestMemoryCompletionOrderIsAdmissionOrder(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMemory(eng, MemorySpec{BandwidthBPS: 1e9})
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		m.Stream(3e8, 0, func() { order = append(order, i) })
	}
	eng.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("simultaneous completions fired in order %v, want [0 1 2]", order)
	}
}

// TestMemoryUtilTracksAllocation: the Util series reflects allocated/ceiling.
func TestMemoryUtilTracksAllocation(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMemory(eng, MemorySpec{BandwidthBPS: 1e9})
	st := m.Stream(1<<50, 25e7, func() {})
	if got := m.Util.At(0); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("util with one quarter-rate stream %v, want 0.25", got)
	}
	m.Cancel(st)
	if got := m.Util.At(0); got != 0 {
		t.Fatalf("util after cancel %v, want 0", got)
	}
}
