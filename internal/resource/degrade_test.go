package resource

import (
	"testing"

	"repro/internal/sim"
)

// Dynamic speed-factor changes are the substrate for fault injection's
// stragglers and failing devices: a factor of f mid-run must stretch the
// remaining work by exactly 1/f, and restoring to 1 must heal cleanly.

func TestDiskSetSpeedFactorMidTransfer(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDisk(eng, noSeekHDD(100e6, 0.35))
	var done sim.Time
	d.Read(200e6, func() { done = eng.Now() })
	// First second at full speed covers 100 MB; the remaining 100 MB at
	// half speed takes 2 s more.
	eng.At(1, func() { d.SetSpeedFactor(0.5) })
	eng.Run()
	if !almostEqual(float64(done), 3.0) {
		t.Fatalf("degraded read finished at %v, want 3.0", done)
	}
}

func TestDiskSpeedFactorRestores(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDisk(eng, noSeekHDD(100e6, 0.35))
	var done sim.Time
	d.Read(300e6, func() { done = eng.Now() })
	// 1 s full speed (100 MB) + 2 s at half (100 MB) + 1 s healed (100 MB).
	eng.At(1, func() { d.SetSpeedFactor(0.5) })
	eng.At(3, func() { d.SetSpeedFactor(1) })
	eng.Run()
	if !almostEqual(float64(done), 4.0) {
		t.Fatalf("degrade-then-heal read finished at %v, want 4.0", done)
	}
}

func TestCPUSetSpeedFactorMidJob(t *testing.T) {
	eng := sim.NewEngine()
	c := NewCPU(eng, 1)
	var done sim.Time
	c.Run(2, func() { done = eng.Now() })
	// 1 core-second done at full rate, the second one at quarter rate.
	eng.At(1, func() { c.SetSpeedFactor(0.25) })
	eng.Run()
	if !almostEqual(float64(done), 5.0) {
		t.Fatalf("degraded compute finished at %v, want 5.0", done)
	}
}

func TestCPUSpeedFactorAffectsNewJobs(t *testing.T) {
	eng := sim.NewEngine()
	c := NewCPU(eng, 2)
	c.SetSpeedFactor(0.5)
	var done sim.Time
	c.Run(1, func() { done = eng.Now() })
	eng.Run()
	if !almostEqual(float64(done), 2.0) {
		t.Fatalf("compute on pre-degraded CPU finished at %v, want 2.0", done)
	}
}
