package resource

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/sim"
)

// This file models machine memory as a first-class fourth resource, the
// regime the in-memory-analytics characterizations showed the CPU/disk/
// network trio cannot express: a per-machine memory-bandwidth ceiling shared
// max-min across the compute monotasks that are actually running, capacity
// accounting that turns pressure into spill-to-disk work, and deterministic
// seeded GC-pause events that stall the machine's cores. Everything is
// opt-in: a MemorySpec with zero bandwidth builds no Memory device at all,
// so existing configurations execute byte-identically.

// MemorySpec configures one machine's memory model. The zero value disables
// the model entirely (no Memory device is built).
type MemorySpec struct {
	// BandwidthBPS is the machine's memory-bandwidth ceiling in bytes/second.
	// Zero disables the memory model for the machine.
	BandwidthBPS float64
	// CapacityBytes bounds resident task buffers; bytes charged beyond it
	// spill to disk. Zero means unlimited (capacity pressure never spills).
	CapacityBytes int64
	// GCEveryBytes is the mean allocation volume between GC-pause events;
	// zero disables GC events. Actual gaps are drawn deterministically from
	// GCSeed, spread over [0.5, 1.5)× the mean.
	GCEveryBytes int64
	// GCPauseSec is the stop-the-world duration of each GC event.
	GCPauseSec float64
	// GCSeed seeds the gap sequence; the same seed replays the same GC
	// schedule bit-identically.
	GCSeed int64
}

// Enabled reports whether the spec builds a memory model.
func (s MemorySpec) Enabled() bool { return s.BandwidthBPS > 0 }

// MemStream is one in-service memory traffic stream (a compute monotask's
// data movement). Streams are pooled like server Jobs: once done fires the
// struct may be recycled, so a held pointer must not be reused afterwards.
type MemStream struct {
	remaining float64 // bytes left to move
	total     float64
	demand    float64 // per-stream rate cap in bytes/s; <= 0 means uncapped
	rate      float64 // current allocated rate
	done      func()
	seq       uint64
	index     int // position in Memory.streams, -1 when not in service
}

// Rate reports the stream's current allocated bandwidth in bytes/second.
func (st *MemStream) Rate() float64 { return st.rate }

// Remaining reports the bytes still to move.
func (st *MemStream) Remaining() float64 { return st.remaining }

// Memory is one machine's memory model: a fluid bandwidth server with
// per-stream demand caps, capacity accounting, and a seeded GC schedule.
//
// Bandwidth sharing is max-min fair under the caps (water-filling): every
// stream gets min(demand, level) where the water level is the largest rate
// the ceiling can grant uniformly. The level is computed from the sorted
// demand multiset, so the allocation — including its exact float values — is
// a function of which streams are open, never of the order they were opened
// in (the property the memory property tests pin).
type Memory struct {
	spec  MemorySpec
	sched sim.Scheduler
	speed float64 // dynamic degradation factor, 1 = nominal

	streams    []*MemStream
	nextSeq    uint64
	lastUpdate sim.Time
	completion sim.EventRef
	completeFn func()
	finished   []*MemStream // reusable scratch for complete()
	pool       []*MemStream
	scratch    []float64 // reusable demand-sort scratch

	// Util tracks allocated bandwidth / ceiling over time, in [0, 1].
	Util Tracker
	// TrafficCum is the cumulative byte counter (bytes charged at stream
	// submission), the OS-counter view metrics.Measure reads.
	TrafficCum Tracker
	bytesMoved int64

	inUse int64
	peak  int64

	allocCum int64
	nextGC   int64
	gcCount  int
	gcRNG    *rand.Rand
	onGC     func(pause sim.Duration)
}

// NewMemory builds the memory model for one machine on sched (the serial
// engine, or the machine's lane in a sharded run). The spec must have a
// positive bandwidth ceiling — callers gate on MemorySpec.Enabled.
func NewMemory(sched sim.Scheduler, spec MemorySpec) *Memory {
	if spec.BandwidthBPS <= 0 {
		panic("resource: memory needs positive bandwidth (gate on MemorySpec.Enabled)")
	}
	if spec.CapacityBytes < 0 || spec.GCEveryBytes < 0 || spec.GCPauseSec < 0 {
		panic("resource: negative memory spec knob")
	}
	m := &Memory{spec: spec, sched: sched, speed: 1}
	m.completeFn = m.complete
	if spec.GCEveryBytes > 0 {
		m.gcRNG = rand.New(rand.NewSource(spec.GCSeed))
		m.nextGC = m.gcGap()
	}
	return m
}

// SetScheduler rebinds the memory model to a different timeline — the
// cluster's sharding hook. Only legal while no stream is in flight.
func (m *Memory) SetScheduler(sched sim.Scheduler) {
	if len(m.streams) > 0 || m.completion.Scheduled() {
		panic("resource: scheduler rebind with streams in flight")
	}
	m.sched = sched
	m.lastUpdate = sched.Now()
}

// Spec returns the configuration the model was built with.
func (m *Memory) Spec() MemorySpec { return m.spec }

// ceiling is the effective bandwidth after dynamic degradation.
func (m *Memory) ceiling() float64 { return m.spec.BandwidthBPS * m.speed }

// OnGC installs the GC-pause sink (the machine wires it to CPU.Pause).
func (m *Memory) OnGC(fn func(pause sim.Duration)) { m.onGC = fn }

// GCCount reports how many GC-pause events have fired.
func (m *Memory) GCCount() int { return m.gcCount }

// gcGap draws the next inter-GC allocation gap: GCEveryBytes spread over
// [0.5, 1.5)× so the schedule is irregular but seeded.
func (m *Memory) gcGap() int64 {
	return int64(float64(m.spec.GCEveryBytes) * (0.5 + m.gcRNG.Float64()))
}

// Charge accounts bytes of task buffer against capacity: held is the portion
// that fits, spill the overflow the caller must stage to disk. With zero
// CapacityBytes everything is held. Charged bytes also advance the GC
// allocation clock — spilled bytes churn the heap too — and may fire GC-pause
// events through the OnGC sink.
func (m *Memory) Charge(bytes int64) (held, spill int64) {
	if bytes < 0 {
		panic("resource: negative memory charge")
	}
	held = bytes
	if capacity := m.spec.CapacityBytes; capacity > 0 {
		if free := capacity - m.inUse; free < held {
			if free < 0 {
				free = 0
			}
			held = free
		}
	}
	spill = bytes - held
	m.inUse += held
	if m.inUse > m.peak {
		m.peak = m.inUse
	}
	if m.spec.GCEveryBytes > 0 && bytes > 0 {
		m.allocCum += bytes
		for m.allocCum >= m.nextGC {
			m.nextGC += m.gcGap()
			m.gcCount++
			if m.onGC != nil && m.spec.GCPauseSec > 0 {
				m.onGC(sim.Duration(m.spec.GCPauseSec))
			}
		}
	}
	return held, spill
}

// Release returns held bytes from a completed task.
func (m *Memory) Release(bytes int64) {
	m.inUse -= bytes
	if m.inUse < 0 {
		panic("resource: memory released twice")
	}
}

// InUse reports resident charged bytes.
func (m *Memory) InUse() int64 { return m.inUse }

// Peak reports the high-water resident bytes.
func (m *Memory) Peak() int64 { return m.peak }

// newStream takes a stream struct from the free list and stamps it.
func (m *Memory) newStream(bytes float64, demand float64, done func()) *MemStream {
	m.nextSeq++
	var st *MemStream
	if n := len(m.pool); n > 0 {
		st = m.pool[n-1]
		m.pool[n-1] = nil
		m.pool = m.pool[:n-1]
	} else {
		st = &MemStream{}
	}
	st.remaining = bytes
	st.total = bytes
	st.demand = demand
	st.rate = 0
	st.done = done
	st.seq = m.nextSeq
	st.index = -1
	return st
}

func (m *Memory) recycle(st *MemStream) {
	st.done = nil
	m.pool = append(m.pool, st)
}

// Stream starts moving bytes through the memory system at up to demandBPS
// (<= 0 for uncapped); done fires via the engine when the bytes have moved.
// Zero-byte streams complete on the next event dispatch.
func (m *Memory) Stream(bytes int64, demandBPS float64, done func()) *MemStream {
	m.bytesMoved += bytes
	m.TrafficCum.Set(m.sched.Now(), float64(m.bytesMoved))
	m.advance()
	if bytes <= 0 {
		m.nextSeq++
		st := &MemStream{demand: demandBPS, done: done, seq: m.nextSeq, index: -1}
		m.sched.After(0, done)
		return st
	}
	st := m.newStream(float64(bytes), demandBPS, done)
	st.index = len(m.streams)
	m.streams = append(m.streams, st)
	m.rerate()
	m.reschedule()
	return st
}

// Cancel abandons an in-flight stream. Canceling a finished stream is a no-op.
func (m *Memory) Cancel(st *MemStream) {
	if !m.inService(st) {
		return
	}
	m.advance()
	m.unlink(st)
	m.rerate()
	m.reschedule()
	m.recycle(st)
}

func (m *Memory) inService(st *MemStream) bool {
	return st.index >= 0 && st.index < len(m.streams) && m.streams[st.index] == st
}

func (m *Memory) unlink(st *MemStream) {
	i, n := st.index, len(m.streams)-1
	if i != n {
		m.streams[i] = m.streams[n]
		m.streams[i].index = i
	}
	m.streams[n] = nil
	m.streams = m.streams[:n]
	st.index = -1
}

// Streams reports the number of streams in service.
func (m *Memory) Streams() int { return len(m.streams) }

// BytesMoved reports cumulative bytes streamed through memory.
func (m *Memory) BytesMoved() int64 { return m.bytesMoved }

// SetSpeedFactor rescales the bandwidth ceiling to factor times its
// configured value from the current virtual time onward (1 restores it) —
// the same dynamic degradation knob the CPU and disks expose.
func (m *Memory) SetSpeedFactor(factor float64) {
	if factor <= 0 {
		panic("resource: memory speed factor must be positive")
	}
	m.advance()
	m.speed = factor
	m.rerate()
	m.reschedule()
}

// advance drains every stream at its current rate since the last update.
// Must be called before any membership or rate change.
func (m *Memory) advance() {
	now := m.sched.Now()
	dt := float64(now - m.lastUpdate)
	m.lastUpdate = now
	if dt <= 0 || len(m.streams) == 0 {
		return
	}
	for _, st := range m.streams {
		st.remaining -= st.rate * dt
		// Same relative residue clamp as the fluid server: byte-scale work
		// units leave absolute epsilons rescheduling forever.
		if st.remaining < 1e-9*st.total+1e-12 {
			st.remaining = 0
		}
	}
}

// rerate recomputes the max-min allocation under the demand caps.
//
// Water-filling over the sorted demand multiset: satisfy the smallest capped
// demands while they fit under an equal split of what remains; the first
// demand that does not fit fixes the water level, and every unsatisfied
// stream (capped or uncapped) gets exactly that level. Sorting by demand
// value — never by stream identity or insertion order — makes the float
// arithmetic, and therefore the exact allocation, insertion-order
// independent.
func (m *Memory) rerate() {
	n := len(m.streams)
	now := m.sched.Now()
	if n == 0 {
		m.Util.Set(now, 0)
		return
	}
	capBW := m.ceiling()
	scratch := m.scratch[:0]
	for _, st := range m.streams {
		if st.demand > 0 {
			scratch = append(scratch, st.demand)
		}
	}
	m.scratch = scratch
	sort.Float64s(scratch)

	rem := capBW
	cnt := n
	level := math.Inf(1)
	for _, d := range scratch {
		share := rem / float64(cnt)
		if d <= share {
			rem -= d
			cnt--
			continue
		}
		level = share
		break
	}
	if math.IsInf(level, 1) {
		// Every capped demand fit under its share. cnt now counts the
		// uncapped streams; they split the residue. If there are none the
		// level stays infinite and each stream runs at its own demand.
		if uncapped := n - len(scratch); uncapped > 0 {
			level = rem / float64(uncapped)
		}
	}

	var total float64
	for _, st := range m.streams {
		r := level
		if st.demand > 0 && st.demand < r {
			r = st.demand
		}
		st.rate = r
		total += r
	}
	if capBW > 0 {
		u := total / capBW
		if u > 1 {
			u = 1
		}
		m.Util.Set(now, u)
	}
}

// reschedule arms the next completion: the stream whose remaining/rate is
// smallest. Rates differ per stream (caps), so the minimum is over times,
// not remaining work.
func (m *Memory) reschedule() {
	m.sched.Cancel(m.completion)
	m.completion = sim.EventRef{}
	if len(m.streams) == 0 {
		return
	}
	minT := math.MaxFloat64
	for _, st := range m.streams {
		if st.rate <= 0 {
			panic("resource: memory stream with zero rate")
		}
		if t := st.remaining / st.rate; t < minT {
			minT = t
		}
	}
	m.completion = m.sched.After(sim.Duration(minT), m.completeFn)
}

// complete retires every drained stream, reallocates, and fires callbacks in
// admission order — the same deterministic completion discipline as the
// fluid server.
func (m *Memory) complete() {
	m.completion = sim.EventRef{}
	m.advance()
	finished := m.finished[:0]
	for _, st := range m.streams {
		if st.remaining == 0 {
			finished = append(finished, st)
		}
	}
	if len(finished) == 0 && len(m.streams) > 0 {
		// Float residue left the due stream fractionally short; retire the
		// minimum-time one or the completion event respins forever.
		var min *MemStream
		var minT float64
		for _, st := range m.streams {
			t := st.remaining / st.rate
			if min == nil || t < minT || (t == minT && st.seq < min.seq) {
				min, minT = st, t
			}
		}
		min.remaining = 0
		finished = append(finished, min)
	}
	for _, st := range finished {
		m.unlink(st)
	}
	m.rerate()
	m.reschedule()
	for i := 1; i < len(finished); i++ {
		for k := i; k > 0 && finished[k].seq < finished[k-1].seq; k-- {
			finished[k], finished[k-1] = finished[k-1], finished[k]
		}
	}
	for _, st := range finished {
		st.done()
	}
	for i, st := range finished {
		m.recycle(st)
		finished[i] = nil
	}
	m.finished = finished[:0]
}
