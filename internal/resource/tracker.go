// Package resource implements the device models the virtual cluster is built
// from: processor-sharing CPUs, seek-penalized hard disks, concurrency-
// saturating flash drives, and per-device utilization timelines.
//
// All devices share one fluid-flow core (server.go): active jobs make
// progress at a rate determined by how many jobs are in service, and the
// model recomputes completion times whenever the job set changes. This
// captures the first-order contention effects the paper's evaluation is
// about — throughput collapse under concurrent HDD access, processor sharing
// when more tasks than cores are runnable — without simulating individual
// I/O operations.
package resource

import "repro/internal/sim"

// Tracker records a step function of utilization (0..1) over virtual time.
// Devices call Set whenever their busy fraction changes; experiment code
// reads back means and percentile samples (Figs. 2, 6 and 9 are produced
// from these timelines).
type Tracker struct {
	times  []sim.Time
	values []float64
}

// Set records that the tracked value becomes v at time t. Calls must have
// non-decreasing t; a repeat at the same t overwrites the prior value.
func (tr *Tracker) Set(t sim.Time, v float64) {
	n := len(tr.times)
	if n > 0 && t < tr.times[n-1] {
		panic("resource: Tracker.Set with decreasing time")
	}
	if n > 0 && tr.times[n-1] == t {
		tr.values[n-1] = v
		return
	}
	// Coalesce no-op transitions to keep the series compact.
	if n > 0 && tr.values[n-1] == v {
		return
	}
	tr.times = append(tr.times, t)
	tr.values = append(tr.values, v)
}

// At returns the tracked value at time t (0 before the first sample).
func (tr *Tracker) At(t sim.Time) float64 {
	// Binary search for the last transition ≤ t.
	lo, hi := 0, len(tr.times)
	for lo < hi {
		mid := (lo + hi) / 2
		if tr.times[mid] <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return tr.values[lo-1]
}

// Before returns the tracked value just before time t (0 if no earlier
// transition). Cumulative-counter users should read windows with Delta, which
// is built on Before at both edges so windows tile without double-counting.
func (tr *Tracker) Before(t sim.Time) float64 {
	lo, hi := 0, len(tr.times)
	for lo < hi {
		mid := (lo + hi) / 2
		if tr.times[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return tr.values[lo-1]
}

// Delta returns the growth of a cumulative counter over the half-open
// window [t0, t1): transitions stamped exactly at t0 count, transitions
// stamped exactly at t1 don't. Adjacent windows therefore tile — the sum of
// Delta over [a,b) and [b,c) equals Delta over [a,c). (The older
// At(t1)-Before(t0) formulation counts a transition stamped exactly at b in
// both windows that share the boundary.)
func (tr *Tracker) Delta(t0, t1 sim.Time) float64 {
	if t1 <= t0 {
		return 0
	}
	return tr.Before(t1) - tr.Before(t0)
}

// firstAfter returns the index of the first transition with time > t
// (len(tr.times) if none).
func (tr *Tracker) firstAfter(t sim.Time) int {
	lo, hi := 0, len(tr.times)
	for lo < hi {
		mid := (lo + hi) / 2
		if tr.times[mid] <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Mean returns the time-weighted mean value over [t0, t1). Cost is
// O(log T + k) for a timeline of T transitions with k inside the window, so
// narrow windows over long timelines stay cheap.
func (tr *Tracker) Mean(t0, t1 sim.Time) float64 {
	if t1 <= t0 {
		return 0
	}
	var area float64
	i := tr.firstAfter(t0)
	cur := 0.0
	if i > 0 {
		cur = tr.values[i-1]
	}
	prev := t0
	for ; i < len(tr.times); i++ {
		t := tr.times[i]
		if t >= t1 {
			break
		}
		area += cur * float64(t-prev)
		cur = tr.values[i]
		prev = t
	}
	area += cur * float64(t1-prev)
	return area / float64(t1-t0)
}

// Samples returns the time-weighted mean over n evenly spaced buckets across
// [t0, t1), suitable for percentile summaries (Fig. 6) or time-series plots
// (Fig. 2). One sweep over the timeline serves all buckets — O(log T + k + n)
// rather than n independent Mean scans.
func (tr *Tracker) Samples(t0, t1 sim.Time, n int) []float64 {
	if n <= 0 || t1 <= t0 {
		return nil
	}
	out := make([]float64, n)
	step := (t1 - t0) / sim.Time(n)
	idx := tr.firstAfter(t0)
	for i := 0; i < n; i++ {
		lo := t0 + sim.Time(i)*step
		hi := t0 + sim.Time(i+1)*step
		if hi <= lo {
			continue
		}
		// Transitions stamped exactly at the bucket edge belong to the value
		// carried into the bucket, matching Mean's half-open semantics.
		for idx < len(tr.times) && tr.times[idx] <= lo {
			idx++
		}
		var area float64
		cur := 0.0
		if idx > 0 {
			cur = tr.values[idx-1]
		}
		prev := lo
		for ; idx < len(tr.times); idx++ {
			t := tr.times[idx]
			if t >= hi {
				break
			}
			area += cur * float64(t-prev)
			cur = tr.values[idx]
			prev = t
		}
		area += cur * float64(hi-prev)
		out[i] = area / float64(hi-lo)
	}
	return out
}

// Max returns the maximum recorded value in [t0, t1).
func (tr *Tracker) Max(t0, t1 sim.Time) float64 {
	best := tr.At(t0)
	for i, t := range tr.times {
		if t <= t0 || t >= t1 {
			continue
		}
		if tr.values[i] > best {
			best = tr.values[i]
		}
	}
	return best
}

// Len reports the number of recorded transitions.
func (tr *Tracker) Len() int { return len(tr.times) }
