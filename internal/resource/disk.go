package resource

import "repro/internal/sim"

// DiskKind selects the throughput model.
type DiskKind int

const (
	// HDD is a spinning disk: every request pays a seek, and concurrent
	// streams degrade aggregate throughput because the head thrashes.
	HDD DiskKind = iota
	// SSD is a flash drive: no seeks, and aggregate throughput *rises* with
	// outstanding operations until a saturation knee (the paper found ~4
	// outstanding monotasks reach peak throughput, §3.3).
	SSD
)

// String names the disk kind.
func (k DiskKind) String() string {
	if k == HDD {
		return "HDD"
	}
	return "SSD"
}

// DiskSpec describes one drive.
type DiskSpec struct {
	Kind DiskKind
	// SeqBW is the sequential read/write bandwidth in bytes/second with no
	// contention (HDD) or at saturation (SSD).
	SeqBW float64
	// SeekTime is the per-request positioning cost in seconds (HDD only).
	SeekTime float64
	// ContentionAlpha controls HDD throughput collapse when reads and
	// writes mix: aggregate bandwidth with k concurrent streams is
	// SeqBW / (1 + α(k−1)), floored at MixedFloorFrac·SeqBW. α≈0.35 makes
	// four mixed streams cost ≈2× — the factor the paper observed MonoSpark
	// winning back on the sort workload (§5.4).
	ContentionAlpha float64
	// StreamingAlpha is the milder penalty when all concurrent streams go
	// the same direction (parallel sequential readers under OS readahead
	// mostly amortize seeks). Default 0.05.
	StreamingAlpha float64
	// MixedFloorFrac and StreamFloorFrac bound the collapse: past a few
	// streams the elevator scheduler amortizes seeks, so aggregate
	// throughput levels off rather than degrading without bound.
	// Defaults 0.5 (mixed) and 0.85 (uniform).
	MixedFloorFrac  float64
	StreamFloorFrac float64
	// SaturationOps is the SSD knee: aggregate bandwidth with k outstanding
	// ops is SeqBW · min(k, SaturationOps)/SaturationOps.
	SaturationOps int
}

// DefaultHDD matches the calibration in DESIGN.md: 100 MB/s sequential,
// 8 ms seek, mixed α = 0.35 floored at 50%, streaming α = 0.05 floored at 85%.
func DefaultHDD() DiskSpec {
	return DiskSpec{
		Kind: HDD, SeqBW: 100e6, SeekTime: 0.008,
		ContentionAlpha: 0.35, StreamingAlpha: 0.05,
		MixedFloorFrac: 0.5, StreamFloorFrac: 0.85,
	}
}

// DefaultSSD matches the calibration in DESIGN.md: 400 MB/s, knee at 4
// outstanding operations.
func DefaultSSD() DiskSpec {
	return DiskSpec{Kind: SSD, SeqBW: 400e6, SaturationOps: 4}
}

// Disk models one drive as a fluid server over bytes. Seeks are charged by
// inflating each request's demand by SeekTime·SeqBW byte-equivalents, which
// approximates a per-operation positioning cost without simulating head
// movement.
type Disk struct {
	spec  DiskSpec
	srv   *server
	sched sim.Scheduler
	Util  Tracker

	bytesRead    int64
	bytesWritten int64
	// Cumulative byte timelines (bytes charged at request submission),
	// queryable at any time — what an external observer with OS counters
	// could measure about this disk.
	ReadCum  Tracker
	WriteCum Tracker
}

// NewDisk creates a drive on sched (the serial engine, or the machine's lane
// in a sharded run).
func NewDisk(sched sim.Scheduler, spec DiskSpec) *Disk {
	if spec.SeqBW <= 0 {
		panic("resource: disk needs positive bandwidth")
	}
	if spec.Kind == SSD && spec.SaturationOps <= 0 {
		spec.SaturationOps = 4
	}
	if spec.Kind == HDD {
		if spec.StreamingAlpha == 0 {
			spec.StreamingAlpha = 0.05
		}
		if spec.MixedFloorFrac == 0 {
			spec.MixedFloorFrac = 0.5
		}
		if spec.StreamFloorFrac == 0 {
			spec.StreamFloorFrac = 0.85
		}
	}
	d := &Disk{spec: spec, sched: sched}
	aggregate := func(readers, writers int) float64 {
		k := readers + writers
		switch spec.Kind {
		case HDD:
			alpha, floor := spec.StreamingAlpha, spec.StreamFloorFrac
			if readers > 0 && writers > 0 {
				alpha, floor = spec.ContentionAlpha, spec.MixedFloorFrac
			}
			agg := spec.SeqBW / (1 + alpha*float64(k-1))
			if min := spec.SeqBW * floor; agg < min {
				agg = min
			}
			return agg
		default: // SSD
			if k >= spec.SaturationOps {
				return spec.SeqBW
			}
			return spec.SeqBW * float64(k) / float64(spec.SaturationOps)
		}
	}
	d.srv = newServer(sched, aggregate,
		func(k int) {
			v := 0.0
			if k > 0 {
				v = 1.0
			}
			d.Util.Set(d.sched.Now(), v)
		})
	return d
}

// SetScheduler rebinds the drive to a different timeline — the cluster's
// sharding hook. Only legal while idle.
func (d *Disk) SetScheduler(sched sim.Scheduler) {
	d.srv.setScheduler(sched)
	d.sched = sched
}

// Spec returns the drive's parameters.
func (d *Disk) Spec() DiskSpec { return d.spec }

// Read submits a read of the given size; done fires at completion.
func (d *Disk) Read(bytes int64, done func()) *Job {
	d.countRead(bytes)
	return d.srv.Add(d.demand(bytes), done)
}

// Write submits a write of the given size; done fires when the bytes are on
// the platter. (The buffer-cache behaviour of the pipelined executor lives
// above this layer — by the time a write reaches the Disk it is a real
// device write.)
func (d *Disk) Write(bytes int64, done func()) *Job {
	d.countWrite(bytes)
	return d.srv.AddClass(d.demand(bytes), 1, done)
}

// ReadStream submits one chunk of a sequential streaming read. Unlike Read
// it charges no per-request seek: OS readahead makes a task's consecutive
// chunk reads sequential, and the cost of *interleaving* multiple streams is
// already modeled by the HDD contention factor. The pipelined executor's
// fine-grained chunk I/O uses these; monotasks use Read/Write, paying one
// seek per (large) request.
func (d *Disk) ReadStream(bytes int64, done func()) *Job {
	d.countRead(bytes)
	return d.srv.Add(float64(bytes), done)
}

// WriteStream submits one chunk of a sequential streaming write (no seek).
func (d *Disk) WriteStream(bytes int64, done func()) *Job {
	d.countWrite(bytes)
	return d.srv.AddClass(float64(bytes), 1, done)
}

func (d *Disk) countRead(bytes int64) {
	d.bytesRead += bytes
	d.ReadCum.Set(d.sched.Now(), float64(d.bytesRead))
}

func (d *Disk) countWrite(bytes int64) {
	d.bytesWritten += bytes
	d.WriteCum.Set(d.sched.Now(), float64(d.bytesWritten))
}

// SetSpeedFactor rescales the drive to factor times its configured bandwidth
// from the current virtual time onward (1 restores it). Fault injection uses
// it to model a degraded drive — remapped sectors, a failing controller —
// without changing the spec the performance model reads.
func (d *Disk) SetSpeedFactor(factor float64) { d.srv.setSpeed(factor) }

// Cancel abandons an in-flight request.
func (d *Disk) Cancel(j *Job) { d.srv.Remove(j) }

// Queue reports the number of in-service requests.
func (d *Disk) Queue() int { return d.srv.Count() }

// BytesRead reports cumulative bytes read from the disk.
func (d *Disk) BytesRead() int64 { return d.bytesRead }

// BytesWritten reports cumulative bytes written to the disk.
func (d *Disk) BytesWritten() int64 { return d.bytesWritten }

// demand converts a request size to work units, charging the seek.
func (d *Disk) demand(bytes int64) float64 {
	w := float64(bytes)
	if d.spec.Kind == HDD {
		w += d.spec.SeekTime * d.spec.SeqBW
	}
	return w
}

// IdealTime returns the time to move the given bytes at uncontended
// sequential bandwidth — the denominator of the performance model's ideal
// disk time (§6.1).
func (d *Disk) IdealTime(bytes int64) sim.Duration {
	return sim.Duration(float64(bytes) / d.spec.SeqBW)
}
