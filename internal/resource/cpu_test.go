package resource

import (
	"testing"

	"repro/internal/sim"
)

func TestCPUSingleJobRunsAtFullRate(t *testing.T) {
	eng := sim.NewEngine()
	cpu := NewCPU(eng, 4)
	var done sim.Time
	cpu.Run(10, func() { done = eng.Now() })
	eng.Run()
	if done != 10 {
		t.Fatalf("1 job of 10 core-s on 4 cores finished at %v, want 10", done)
	}
}

func TestCPUUnderSubscribedJobsDontInterfere(t *testing.T) {
	eng := sim.NewEngine()
	cpu := NewCPU(eng, 4)
	var t1, t2 sim.Time
	cpu.Run(10, func() { t1 = eng.Now() })
	cpu.Run(20, func() { t2 = eng.Now() })
	eng.Run()
	if t1 != 10 || t2 != 20 {
		t.Fatalf("got %v, %v; want 10, 20 (k ≤ cores ⇒ rate 1 each)", t1, t2)
	}
}

func TestCPUProcessorSharingWhenOversubscribed(t *testing.T) {
	eng := sim.NewEngine()
	cpu := NewCPU(eng, 1)
	var t1, t2 sim.Time
	cpu.Run(10, func() { t1 = eng.Now() })
	cpu.Run(10, func() { t2 = eng.Now() })
	eng.Run()
	// Two equal jobs sharing one core finish together at 20.
	if t1 != 20 || t2 != 20 {
		t.Fatalf("got %v, %v; want both 20 (processor sharing)", t1, t2)
	}
}

func TestCPUShareChangesOnCompletion(t *testing.T) {
	eng := sim.NewEngine()
	cpu := NewCPU(eng, 1)
	var tShort, tLong sim.Time
	cpu.Run(10, func() { tShort = eng.Now() })
	cpu.Run(20, func() { tLong = eng.Now() })
	eng.Run()
	// Shared until the short job drains: each gets rate ½, so short finishes
	// at t=20 with the long job having 10 units left, which then run at rate
	// 1 ⇒ long finishes at t=30.
	if tShort != 20 {
		t.Fatalf("short job finished at %v, want 20", tShort)
	}
	if tLong != 30 {
		t.Fatalf("long job finished at %v, want 30", tLong)
	}
}

func TestCPULateArrivalSharesRemaining(t *testing.T) {
	eng := sim.NewEngine()
	cpu := NewCPU(eng, 1)
	var tA, tB sim.Time
	cpu.Run(10, func() { tA = eng.Now() })
	eng.At(5, func() { cpu.Run(10, func() { tB = eng.Now() }) })
	eng.Run()
	// A runs alone on [0,5) (5 units done), then shares: A's remaining 5
	// units at rate ½ finish at t=15. B then has 5 left, runs alone, t=20.
	if tA != 15 {
		t.Fatalf("A finished at %v, want 15", tA)
	}
	if tB != 20 {
		t.Fatalf("B finished at %v, want 20", tB)
	}
}

func TestCPUZeroWorkCompletesImmediately(t *testing.T) {
	eng := sim.NewEngine()
	cpu := NewCPU(eng, 1)
	var done sim.Time = -1
	cpu.Run(0, func() { done = eng.Now() })
	eng.Run()
	if done != 0 {
		t.Fatalf("zero-work job finished at %v, want 0", done)
	}
}

func TestCPUCancel(t *testing.T) {
	eng := sim.NewEngine()
	cpu := NewCPU(eng, 1)
	fired := false
	j := cpu.Run(10, func() { fired = true })
	var other sim.Time
	cpu.Run(10, func() { other = eng.Now() })
	eng.At(5, func() { cpu.Cancel(j) })
	eng.Run()
	if fired {
		t.Fatal("cancelled job's callback fired")
	}
	// Other job: rate ½ on [0,5) (2.5 done), then rate 1 ⇒ finishes 12.5.
	if other != 12.5 {
		t.Fatalf("surviving job finished at %v, want 12.5", other)
	}
}

func TestCPUUtilizationTimeline(t *testing.T) {
	eng := sim.NewEngine()
	cpu := NewCPU(eng, 4)
	cpu.Run(10, func() {})
	cpu.Run(10, func() {})
	eng.Run()
	if got := cpu.Util.Mean(0, 10); !almostEqual(got, 0.5) {
		t.Fatalf("utilization with 2 of 4 cores busy = %v, want 0.5", got)
	}
	if got := cpu.Util.At(11); got != 0 {
		t.Fatalf("utilization after completion = %v, want 0", got)
	}
}

func TestCPUUtilizationCapsAtOne(t *testing.T) {
	eng := sim.NewEngine()
	cpu := NewCPU(eng, 2)
	for i := 0; i < 8; i++ {
		cpu.Run(1, func() {})
	}
	if got := cpu.Util.At(0); got != 1 {
		t.Fatalf("utilization with 8 jobs on 2 cores = %v, want 1", got)
	}
	eng.Run()
}

func TestCPUChainedWorkFromCallback(t *testing.T) {
	eng := sim.NewEngine()
	cpu := NewCPU(eng, 1)
	var done sim.Time
	cpu.Run(5, func() {
		cpu.Run(5, func() { done = eng.Now() })
	})
	eng.Run()
	if done != 10 {
		t.Fatalf("chained jobs finished at %v, want 10", done)
	}
}

func TestCPUConservationOfWork(t *testing.T) {
	// Total completion time of any workload on 1 core ≥ total work, and the
	// last completion equals total work when the CPU is never idle.
	eng := sim.NewEngine()
	cpu := NewCPU(eng, 1)
	var last sim.Time
	total := 0.0
	for i := 1; i <= 10; i++ {
		w := float64(i)
		total += w
		cpu.Run(w, func() { last = eng.Now() })
	}
	eng.Run()
	if !almostEqual(float64(last), total) {
		t.Fatalf("last completion %v, want %v (work conservation)", last, total)
	}
}

func TestNewCPUInvalidCoresPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCPU(eng, 0) did not panic")
		}
	}()
	NewCPU(sim.NewEngine(), 0)
}
