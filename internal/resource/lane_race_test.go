package resource

// Lane-affinity race coverage: the migrated servers (CPU, disk, memory)
// scheduling on shard lanes, driven under `go test -race` so the sharded
// engine's real worker goroutines expose any unsynchronized access. The
// checksum comparison across shard counts doubles as the determinism
// contract at the resource layer: completion order must not depend on how
// lanes are grouped into shards. Coordinator-context perturbations —
// SetSpeedFactor and Pause posted from global events while lanes hold
// pending work — are the PR 8 dropped-send regression class and get their
// own schedule here.

import (
	"testing"

	"repro/internal/sim"
)

// laneMachine is one lane's device set for the race workload.
type laneMachine struct {
	cpu  *CPU
	disk *Disk
	mem  *Memory
}

// laneServerChecksums runs an identical device workload on `lanes` lanes at
// the given shard count and returns one order-sensitive checksum per lane.
func laneServerChecksums(lanes, shards int) []uint64 {
	eng := sim.NewEngine()
	eng.ConfigureShards(lanes, shards, 1)
	// Padded slots: lanes accumulate concurrently within a window.
	sums := make([]uint64, lanes*8)
	machines := make([]laneMachine, lanes)
	for l := 0; l < lanes; l++ {
		ln := eng.Lane(l)
		slot := l * 8
		m := laneMachine{
			cpu:  NewCPU(ln, 2),
			disk: NewDisk(ln, DefaultHDD()),
			mem: NewMemory(ln, MemorySpec{
				CapacityBytes: 1 << 30, BandwidthBPS: 8e9,
				GCEveryBytes: 64 << 20, GCPauseSec: 0.002,
			}),
		}
		// GC pauses stall the lane's CPU — the product wiring, exercised
		// here from lane context.
		m.mem.OnGC(func(d sim.Duration) { m.cpu.Pause(d) })
		machines[l] = m
		mix := func(tag uint64) {
			sums[slot] = sums[slot]*1099511628211 ^ tag ^ uint64(float64(ln.Now())*1e9)
		}
		var submit func(i int)
		submit = func(i int) {
			tag := uint64(i)
			switch i % 3 {
			case 0:
				m.cpu.Run(0.01+float64(i%7)*0.003, func() {
					mix(tag)
					if i < 96 {
						submit(i + 3)
					}
				})
			case 1:
				m.disk.Write(int64(1<<20+(i%5)<<18), func() {
					mix(tag << 1)
					if i < 96 {
						submit(i + 3)
					}
				})
			default:
				held, _ := m.mem.Charge(24 << 20)
				m.mem.Stream(8<<20, 0, func() {
					mix(tag << 2)
					m.mem.Release(held)
					if i < 96 {
						submit(i + 3)
					}
				})
			}
		}
		ln.After(sim.Duration(l+1)*0.001, func() {
			for i := 0; i < 6; i++ {
				submit(i)
			}
		})
	}
	// Coordinator-context perturbations: global events mutate lane-resident
	// servers while they hold pending completions. The servers reschedule on
	// their lane from coordinator context — the path PR 8's dropped-send bug
	// lived on.
	for k := 1; k <= 6; k++ {
		k := k
		eng.After(sim.Duration(k)*0.083, func() {
			m := machines[k%lanes]
			m.cpu.SetSpeedFactor(0.5 + float64(k)*0.2)
			machines[(k+1)%lanes].disk.SetSpeedFactor(0.6 + float64(k)*0.15)
			machines[(k+2)%lanes].mem.SetSpeedFactor(0.7 + float64(k)*0.1)
			machines[(k+3)%lanes].cpu.Pause(0.005)
		})
	}
	eng.Run()
	out := make([]uint64, lanes)
	for l := range out {
		out[l] = sums[l*8]
	}
	return out
}

// TestLaneServersShardInvariant pins that CPU/disk/memory servers bound to
// lanes complete in the same order at every shard count, including under
// coordinator-context pause/speed changes. Run with -race (CI does): the
// sharded drain uses real goroutines, so this is also the data-race gate for
// the migrated servers.
func TestLaneServersShardInvariant(t *testing.T) {
	const lanes = 4
	want := laneServerChecksums(lanes, 1)
	allZero := true
	for _, s := range want {
		if s != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("workload produced no completions")
	}
	for _, shards := range []int{2, 4} {
		got := laneServerChecksums(lanes, shards)
		for l := range want {
			if got[l] != want[l] {
				t.Fatalf("shards=%d lane %d checksum %#x != 1-shard %#x: lane-resident server completions reordered",
					shards, l, got[l], want[l])
			}
		}
	}
}
