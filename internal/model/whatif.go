package model

import (
	"fmt"

	"repro/internal/task"
)

// ScaleDiskBW multiplies aggregate disk bandwidth — twice the disks (Fig.
// 11), half the disks (Fig. 12), or an HDD→SSD swap expressed as a ratio.
type ScaleDiskBW float64

// Apply scales the profile's aggregate disk bandwidth.
func (s ScaleDiskBW) Apply(p *JobProfile) { p.Res.DiskBW *= float64(s) }

// String describes the change.
func (s ScaleDiskBW) String() string { return fmt.Sprintf("disk bandwidth ×%.2f", float64(s)) }

// SetDiskBW replaces aggregate disk bandwidth outright (changing disk type
// and count together).
type SetDiskBW float64

// Apply replaces the profile's aggregate disk bandwidth.
func (s SetDiskBW) Apply(p *JobProfile) { p.Res.DiskBW = float64(s) }

// String describes the change.
func (s SetDiskBW) String() string { return fmt.Sprintf("disk bandwidth = %.0f B/s", float64(s)) }

// ScaleCluster multiplies machine count: cores, disk bandwidth, and network
// bandwidth all scale (Fig. 13's 5 → 20 machine move). The model assumes
// data volumes stay fixed — the paper notes the resulting locality error
// (§6.4: more machines ⇒ less local shuffle data than modeled).
type ScaleCluster float64

// Apply scales cores, disk bandwidth, and network bandwidth together.
func (s ScaleCluster) Apply(p *JobProfile) {
	p.Res.TotalCores *= float64(s)
	p.Res.DiskBW *= float64(s)
	p.Res.NetBW *= float64(s)
}

// String describes the change.
func (s ScaleCluster) String() string { return fmt.Sprintf("cluster size ×%.2f", float64(s)) }

// ScaleNetBW multiplies aggregate network bandwidth (the 1 Gb/s → 10 Gb/s
// question from §1).
type ScaleNetBW float64

// Apply scales the profile's aggregate network bandwidth.
func (s ScaleNetBW) Apply(p *JobProfile) { p.Res.NetBW *= float64(s) }

// String describes the change.
func (s ScaleNetBW) String() string { return fmt.Sprintf("network bandwidth ×%.2f", float64(s)) }

// InMemoryInput models storing job input deserialized in memory (§6.3):
// input-read disk time disappears, and so does the deserialization share of
// compute time in the stages that read input. Only a monotasks profile can
// apply this — the deser split is not measurable in Spark.
type InMemoryInput struct{}

// Apply removes input-read disk traffic and deserialization compute time.
func (InMemoryInput) Apply(p *JobProfile) {
	for i := range p.Stages {
		s := &p.Stages[i]
		if s.InputReadBytes == 0 && s.InputDeserSeconds == 0 {
			continue
		}
		s.DiskBytes -= s.InputReadBytes
		s.InputReadBytes = 0
		s.CPUSeconds -= s.InputDeserSeconds
		s.InputDeserSeconds = 0
	}
}

// String describes the change.
func (InMemoryInput) String() string { return "input stored deserialized in memory" }

// InfinitelyFast bounds the improvement from optimizing one resource by
// removing it from the model entirely (§6.5, replicating the NSDI '15
// blocked-time analysis).
type InfinitelyFast task.Resource

// Apply marks the resource as excluded from the model.
func (r InfinitelyFast) Apply(p *JobProfile) {
	if p.exclusions == nil {
		p.exclusions = make(map[task.Resource]bool)
	}
	p.exclusions[task.Resource(r)] = true
}

// String describes the change.
func (r InfinitelyFast) String() string {
	return fmt.Sprintf("%v infinitely fast", task.Resource(r))
}
