package model

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/task"
)

// Boundary behavior for the fourth resource: every model entry point must
// degrade to the original three-resource arithmetic when memory is not
// modeled (MemBW == 0), with no NaN, Inf, or phantom memory column.

func TestIdealTimesMemorylessCluster(t *testing.T) {
	s := StageProfile{CPUSeconds: 80, DiskBytes: 4e9, NetBytes: 1e9, MemBytes: 7e9}
	res := Resources{TotalCores: 8, DiskBW: 1e9, NetBW: 1e9} // MemBW unset
	cpu, disk, net, mem := s.IdealTimes(res)
	if mem != 0 {
		t.Fatalf("memoryless cluster produced nonzero ideal-mem %v", mem)
	}
	for name, v := range map[string]float64{"cpu": cpu, "disk": disk, "net": net} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("ideal %s is %v with MemBW unset", name, v)
		}
	}
	if b := s.Bottleneck(res); b == task.MemoryResource {
		t.Fatal("memoryless cluster reported a memory bottleneck")
	}
}

// TestBottleneckMemorylessMatchesTrio: with the memory column at zero the
// four-way tie-break must reduce to the original disk > network > CPU rule
// for every ordering of the other three.
func TestBottleneckMemorylessMatchesTrio(t *testing.T) {
	res := Resources{TotalCores: 1, DiskBW: 1, NetBW: 1}
	cases := []struct {
		cpu  float64
		disk int64
		net  int64
		want task.Resource
	}{
		{10, 5, 3, task.CPUResource},
		{3, 10, 5, task.DiskResource},
		{3, 5, 10, task.NetworkResource},
		{5, 5, 5, task.DiskResource},    // full tie -> disk
		{5, 3, 5, task.NetworkResource}, // net ties cpu -> net
		{0, 0, 0, task.DiskResource},    // degenerate all-zero -> disk wins ties
	}
	for _, c := range cases {
		s := StageProfile{CPUSeconds: c.cpu, DiskBytes: c.disk, NetBytes: c.net, MemBytes: 1 << 40}
		if got := s.Bottleneck(res); got != c.want {
			t.Fatalf("cpu=%v disk=%d net=%d: bottleneck %v, want %v (memory column must stay silent)",
				c.cpu, c.disk, c.net, got, c.want)
		}
	}
}

// TestAttributeMemorylessCluster: attribution over monotasks that carry
// memory traffic, on a cluster that does not model memory, must keep
// IdealMem at zero while still reporting the traffic split (MemShare is a
// share of recorded bytes, not of bandwidth).
func TestAttributeMemorylessCluster(t *testing.T) {
	withMem := mono(task.CPUResource, task.KindCompute, 0, 4, 0)
	withMem.MemBytes = 3000
	a := jobWith("a", withMem)
	other := mono(task.CPUResource, task.KindCompute, 0, 4, 0)
	other.MemBytes = 1000
	b := jobWith("b", other)

	res := Resources{TotalCores: 4, DiskBW: 1e9, NetBW: 1e9} // MemBW unset
	att := Attribute([]*task.JobMetrics{a, b}, 0, 4, res)
	for _, ja := range att {
		if ja.IdealMem != 0 {
			t.Fatalf("job %s: IdealMem %v on a memoryless cluster, want 0", ja.Name, ja.IdealMem)
		}
		if math.IsNaN(ja.MemShare) {
			t.Fatalf("job %s: MemShare is NaN", ja.Name)
		}
	}
	if math.Abs(att[0].MemShare-0.75) > 1e-12 || math.Abs(att[1].MemShare-0.25) > 1e-12 {
		t.Fatalf("memory-traffic shares %v/%v, want 0.75/0.25", att[0].MemShare, att[1].MemShare)
	}
}

// TestAttributionErrorMemoryColumn: a memory column absent from both sides
// contributes nothing; attributing memory traffic the truth never measured
// is phantom usage and must count as full error, same as the other
// resources.
func TestAttributionErrorMemoryColumn(t *testing.T) {
	got := windowUsageOf(t, 2000)
	truth := windowUsageOf(t, 2000)
	if e := AttributionError(got, truth); e != 0 {
		t.Fatalf("identical usage with memory traffic reports error %v, want 0", e)
	}
	if e := AttributionError(windowUsageOf(t, 0), windowUsageOf(t, 0)); e != 0 {
		t.Fatalf("memoryless usage reports error %v, want 0", e)
	}
	if e := AttributionError(windowUsageOf(t, 500), windowUsageOf(t, 0)); e != 1 {
		t.Fatalf("phantom memory attribution reports error %v, want full 1.0", e)
	}
}

// windowUsageOf builds a one-job usage with the given memory traffic via the
// public attribution path, so the test exercises windowUsage rather than
// hand-assembling the struct.
func windowUsageOf(t *testing.T, memBytes int64) metrics.MeasuredUsage {
	t.Helper()
	m := mono(task.CPUResource, task.KindCompute, 0, 1, 0)
	m.MemBytes = memBytes
	j := jobWith("u", m, mono(task.DiskResource, task.KindInputRead, 0, 1, 100))
	return Attribute([]*task.JobMetrics{j}, 0, 1, Resources{})[0].Usage
}
