// Package model implements the paper's performance model (§6): per-stage
// ideal resource completion times computed from monotask runtimes, combined
// into job-time predictions for what-if questions about hardware and
// software changes, plus the two deliberately-impoverished Spark-side models
// (slot-based, Fig. 15; measured-utilization, Fig. 17) the paper compares
// against.
package model

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/task"
)

// Resources is the aggregate capacity the ideal times divide by (§6.1).
type Resources struct {
	TotalCores float64
	DiskBW     float64 // aggregate sequential disk bandwidth, bytes/s
	NetBW      float64 // aggregate unidirectional network bandwidth, bytes/s
	// MemBW is the aggregate memory-bandwidth ceiling, bytes/s; zero on
	// clusters without the memory model, which keeps the memory column out
	// of every ideal-time and bottleneck computation.
	MemBW float64
}

// ClusterResources extracts Resources from a virtual cluster.
func ClusterResources(c *cluster.Cluster) Resources {
	return Resources{
		TotalCores: float64(c.TotalCores()),
		DiskBW:     c.TotalDiskBW(),
		NetBW:      c.TotalNetBW(),
		MemBW:      c.TotalMemBW(),
	}
}

// StageProfile aggregates one stage's monotask times — everything the model
// needs to know about the stage.
type StageProfile struct {
	Name string
	// CPUSeconds is total compute monotask time.
	CPUSeconds float64
	// InputDeserSeconds is the deserialization share of CPUSeconds in
	// stages that read job input; storing input deserialized in memory
	// removes it (§6.3). Only measurable because compute monotasks report
	// the split — Spark cannot produce this number.
	InputDeserSeconds float64
	// DiskBytes is total disk traffic (reads + writes, all kinds).
	DiskBytes int64
	// InputReadBytes is the subset of DiskBytes that read job input;
	// storing input in memory removes it.
	InputReadBytes int64
	// NetBytes is total network traffic.
	NetBytes int64
	// MemBytes is total memory-system traffic recorded by compute monotasks;
	// zero on clusters without the memory model.
	MemBytes int64
	// ActualSeconds is the stage's measured wall-clock duration, which
	// predictions scale (§6.2: scaling corrects for unmodeled effects).
	ActualSeconds float64
}

// IdealTimes returns the stage's ideal per-resource completion times (§6.1).
// The memory column is zero unless the cluster models memory bandwidth.
func (s StageProfile) IdealTimes(res Resources) (cpu, disk, net, mem float64) {
	cpu = s.CPUSeconds / res.TotalCores
	if res.DiskBW > 0 {
		disk = float64(s.DiskBytes) / res.DiskBW
	}
	if res.NetBW > 0 {
		net = float64(s.NetBytes) / res.NetBW
	}
	if res.MemBW > 0 {
		mem = float64(s.MemBytes) / res.MemBW
	}
	return cpu, disk, net, mem
}

// ModelTime is the stage's ideal completion time: the maximum ideal resource
// time, skipping excluded resources (used for "infinitely fast X" bounds,
// §6.5).
func (s StageProfile) ModelTime(res Resources, exclude map[task.Resource]bool) float64 {
	cpu, disk, net, mem := s.IdealTimes(res)
	best := 0.0
	if !exclude[task.CPUResource] && cpu > best {
		best = cpu
	}
	if !exclude[task.DiskResource] && disk > best {
		best = disk
	}
	if !exclude[task.NetworkResource] && net > best {
		best = net
	}
	if !exclude[task.MemoryResource] && mem > best {
		best = mem
	}
	return best
}

// Bottleneck is the resource with the largest ideal time. Ties break
// disk > network > memory > CPU; with a zero memory column (clusters that do
// not model memory) the choice is identical to the three-resource rule.
func (s StageProfile) Bottleneck(res Resources) task.Resource {
	cpu, disk, net, mem := s.IdealTimes(res)
	switch {
	case disk >= cpu && disk >= net && disk >= mem:
		return task.DiskResource
	case net >= cpu && net >= mem:
		return task.NetworkResource
	case mem >= cpu:
		return task.MemoryResource
	default:
		return task.CPUResource
	}
}

// JobProfile is the model's view of one measured job run.
type JobProfile struct {
	Name   string
	Stages []StageProfile
	Res    Resources
	// exclusions marks resources treated as infinitely fast (set by the
	// InfinitelyFast what-if; job-wide, matching §6.5's bound).
	exclusions map[task.Resource]bool
}

// FromMetrics builds a JobProfile from a monotasks run: every number comes
// from monotask metrics, with no extra instrumentation — the point of §6.1.
func FromMetrics(jm *task.JobMetrics, res Resources) *JobProfile {
	p := &JobProfile{Name: jm.Name, Res: res}
	for _, sm := range jm.Stages {
		sp := StageProfile{
			Name:          sm.Spec.Name,
			CPUSeconds:    sm.MonotaskSeconds(task.CPUResource, -1),
			DiskBytes:     sm.MonotaskBytes(task.DiskResource, -1),
			NetBytes:      sm.MonotaskBytes(task.NetworkResource, -1),
			MemBytes:      sm.MonotaskMemBytes(),
			ActualSeconds: float64(sm.Duration()),
		}
		sp.InputReadBytes = sm.MonotaskBytes(task.DiskResource, task.KindInputRead)
		if sp.InputReadBytes > 0 || inputFromMem(sm.Spec) {
			for _, t := range sm.Tasks {
				if t == nil { // unfinished slot of an aborted run
					continue
				}
				for _, m := range t.Monotasks {
					if m.Kind == task.KindCompute {
						sp.InputDeserSeconds += m.DeserSec
					}
				}
			}
		}
		p.Stages = append(p.Stages, sp)
	}
	return p
}

func inputFromMem(s *task.StageSpec) bool { return s != nil && s.InputFromMem }

// ActualSeconds is the job's measured runtime (sum of stage durations).
func (p *JobProfile) ActualSeconds() float64 {
	var sum float64
	for _, s := range p.Stages {
		sum += s.ActualSeconds
	}
	return sum
}

// IdealSeconds is the modeled job runtime: the sum of stage maxima (§6.1).
func (p *JobProfile) IdealSeconds() float64 {
	var sum float64
	for _, s := range p.Stages {
		sum += s.ModelTime(p.Res, nil)
	}
	return sum
}

// clone deep-copies the profile so what-ifs can mutate freely.
func (p *JobProfile) clone() *JobProfile {
	q := *p
	q.Stages = append([]StageProfile(nil), p.Stages...)
	q.exclusions = make(map[task.Resource]bool, len(p.exclusions))
	for r, v := range p.exclusions {
		q.exclusions[r] = v
	}
	return &q
}

// WhatIf transforms a profile into the hypothetical configuration.
type WhatIf interface {
	Apply(p *JobProfile)
	fmt.Stringer
}

// StagePrediction explains one stage of a prediction.
type StagePrediction struct {
	Name             string
	ActualSeconds    float64
	OldModelSeconds  float64
	NewModelSeconds  float64
	PredictedSeconds float64
	OldBottleneck    task.Resource
	NewBottleneck    task.Resource
}

// Prediction is the answer to a what-if question.
type Prediction struct {
	Stages           []StagePrediction
	ActualSeconds    float64
	PredictedSeconds float64
}

// Predict answers a what-if question: each stage's measured runtime is
// scaled by the ratio of its new to old modeled time (§6.2), and the job
// prediction is the sum.
func Predict(p *JobProfile, whatifs ...WhatIf) Prediction {
	q := p.clone()
	for _, w := range whatifs {
		w.Apply(q)
	}
	var pred Prediction
	for i, old := range p.Stages {
		nw := q.Stages[i]
		sp := StagePrediction{
			Name:            old.Name,
			ActualSeconds:   old.ActualSeconds,
			OldModelSeconds: old.ModelTime(p.Res, excluded(p, old.Name)),
			NewModelSeconds: nw.ModelTime(q.Res, excluded(q, nw.Name)),
			OldBottleneck:   old.Bottleneck(p.Res),
			NewBottleneck:   nw.Bottleneck(q.Res),
		}
		if sp.OldModelSeconds > 0 {
			sp.PredictedSeconds = old.ActualSeconds * sp.NewModelSeconds / sp.OldModelSeconds
		} else {
			sp.PredictedSeconds = old.ActualSeconds
		}
		pred.Stages = append(pred.Stages, sp)
		pred.ActualSeconds += old.ActualSeconds
		pred.PredictedSeconds += sp.PredictedSeconds
	}
	return pred
}

// excluded returns the profile's resource exclusions (nil when no
// InfinitelyFast what-if has been applied).
func excluded(p *JobProfile, _ string) map[task.Resource]bool { return p.exclusions }
