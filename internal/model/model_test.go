package model

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/task"
)

func approx(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// res: 80 cores, 1 GB/s disk, 500 MB/s network.
var res = Resources{TotalCores: 80, DiskBW: 1e9, NetBW: 500e6}

func TestIdealTimes(t *testing.T) {
	// The §6.1 worked example: 20 minutes of CPU monotasks over 80 cores =
	// 15 s ideal CPU time; 20 GB over 10 disks × 100 MB/s = 20 s ideal disk.
	s := StageProfile{CPUSeconds: 20 * 60, DiskBytes: 20e9}
	cpu, disk, net, mem := s.IdealTimes(res)
	if !approx(cpu, 15) {
		t.Fatalf("ideal cpu = %v, want 15", cpu)
	}
	if !approx(disk, 20) {
		t.Fatalf("ideal disk = %v, want 20", disk)
	}
	if net != 0 {
		t.Fatalf("ideal net = %v, want 0", net)
	}
	if mem != 0 {
		t.Fatalf("ideal mem = %v, want 0 (memory not modeled)", mem)
	}
	if got := s.ModelTime(res, nil); !approx(got, 20) {
		t.Fatalf("model time = %v, want 20 (disk bound)", got)
	}
	if got := s.Bottleneck(res); got != task.DiskResource {
		t.Fatalf("bottleneck = %v, want disk", got)
	}
}

func TestModelTimeExclusions(t *testing.T) {
	s := StageProfile{CPUSeconds: 800, DiskBytes: 20e9, NetBytes: 5e9}
	// cpu=10, disk=20, net=10.
	if got := s.ModelTime(res, map[task.Resource]bool{task.DiskResource: true}); !approx(got, 10) {
		t.Fatalf("model without disk = %v, want 10", got)
	}
	all := map[task.Resource]bool{task.CPUResource: true, task.DiskResource: true, task.NetworkResource: true}
	if got := s.ModelTime(res, all); got != 0 {
		t.Fatalf("model with everything excluded = %v, want 0", got)
	}
}

func mkProfile() *JobProfile {
	return &JobProfile{
		Name: "sort",
		Res:  res,
		Stages: []StageProfile{
			// Map: disk bound (disk 20 s vs cpu 10 s), ran in 25 s.
			{Name: "map", CPUSeconds: 800, DiskBytes: 20e9, InputReadBytes: 10e9,
				InputDeserSeconds: 200, ActualSeconds: 25},
			// Reduce: network bound (net 20 s vs cpu 5 s, disk 10 s), 24 s.
			{Name: "reduce", CPUSeconds: 400, DiskBytes: 10e9, NetBytes: 10e9, ActualSeconds: 24},
		},
	}
}

func TestPredictNoChange(t *testing.T) {
	p := mkProfile()
	pred := Predict(p)
	if !approx(pred.PredictedSeconds, pred.ActualSeconds) {
		t.Fatalf("no-op prediction %v ≠ actual %v", pred.PredictedSeconds, pred.ActualSeconds)
	}
}

func TestPredictDoubleDiskBW(t *testing.T) {
	p := mkProfile()
	pred := Predict(p, ScaleDiskBW(2))
	// Map: old model 20 (disk), new model: disk 10 vs cpu 10 → 10.
	// Scaled: 25 × 10/20 = 12.5.
	if !approx(pred.Stages[0].PredictedSeconds, 12.5) {
		t.Fatalf("map predicted %v, want 12.5", pred.Stages[0].PredictedSeconds)
	}
	// Reduce: old model 20 (net), new: disk 5, net still 20 → unchanged.
	if !approx(pred.Stages[1].PredictedSeconds, 24) {
		t.Fatalf("reduce predicted %v, want 24 (network bound either way)", pred.Stages[1].PredictedSeconds)
	}
	if !approx(pred.PredictedSeconds, 36.5) {
		t.Fatalf("job predicted %v, want 36.5", pred.PredictedSeconds)
	}
	// Bottleneck shift is reported.
	if pred.Stages[0].OldBottleneck != task.DiskResource {
		t.Fatalf("map old bottleneck %v, want disk", pred.Stages[0].OldBottleneck)
	}
}

func TestPredictHalveDisksSlowsDiskBoundStage(t *testing.T) {
	p := mkProfile()
	pred := Predict(p, ScaleDiskBW(0.5))
	// Map: old 20 → new 40; predicted 25 × 2 = 50.
	if !approx(pred.Stages[0].PredictedSeconds, 50) {
		t.Fatalf("map predicted %v, want 50", pred.Stages[0].PredictedSeconds)
	}
	// Reduce: disk 10 → 20 ties with net 20 → still 20: unchanged.
	if !approx(pred.Stages[1].PredictedSeconds, 24) {
		t.Fatalf("reduce predicted %v, want 24", pred.Stages[1].PredictedSeconds)
	}
}

func TestPredictInMemoryInput(t *testing.T) {
	p := mkProfile()
	pred := Predict(p, InMemoryInput{})
	// Map: disk bytes 20e9−10e9 = 10e9 → 10 s; cpu 800−200 = 600 → 7.5 s.
	// New model 10 vs old 20: predicted 12.5.
	if !approx(pred.Stages[0].PredictedSeconds, 12.5) {
		t.Fatalf("map predicted %v, want 12.5", pred.Stages[0].PredictedSeconds)
	}
	// Reduce unaffected (no input reads).
	if !approx(pred.Stages[1].PredictedSeconds, 24) {
		t.Fatalf("reduce predicted %v, want 24", pred.Stages[1].PredictedSeconds)
	}
}

func TestPredictIsPure(t *testing.T) {
	p := mkProfile()
	before := *p
	Predict(p, ScaleCluster(4), InMemoryInput{}, InfinitelyFast(task.DiskResource))
	if p.Res != before.Res || p.Stages[0] != before.Stages[0] || p.exclusions != nil {
		t.Fatal("Predict mutated the input profile")
	}
}

func TestPredictClusterScale(t *testing.T) {
	p := mkProfile()
	pred := Predict(p, ScaleCluster(4))
	// Every ideal time shrinks 4×, so every stage predicts 4× faster.
	if !approx(pred.PredictedSeconds, (25.0+24.0)/4) {
		t.Fatalf("4× cluster predicted %v, want 12.25", pred.PredictedSeconds)
	}
}

func TestPredictInfinitelyFastDisk(t *testing.T) {
	p := mkProfile()
	pred := Predict(p, InfinitelyFast(task.DiskResource))
	// Map: old model 20 → without disk, max(cpu 10) = 10 → 12.5 s.
	if !approx(pred.Stages[0].PredictedSeconds, 12.5) {
		t.Fatalf("map predicted %v, want 12.5", pred.Stages[0].PredictedSeconds)
	}
	// Reduce: already network bound → unchanged.
	if !approx(pred.Stages[1].PredictedSeconds, 24) {
		t.Fatalf("reduce predicted %v, want 24", pred.Stages[1].PredictedSeconds)
	}
}

func TestPredictCombinedHardwareSoftware(t *testing.T) {
	// The Fig. 13 composition: 4× machines + in-memory input + faster disks.
	p := mkProfile()
	pred := Predict(p, ScaleCluster(4), InMemoryInput{}, ScaleDiskBW(4))
	if pred.PredictedSeconds >= pred.ActualSeconds/4 {
		t.Fatalf("combined prediction %v not < %v", pred.PredictedSeconds, pred.ActualSeconds/4)
	}
}

func TestFromMetrics(t *testing.T) {
	spec := &task.StageSpec{ID: 0, Name: "map", NumTasks: 1}
	jm := &task.JobMetrics{
		Name: "j",
		Stages: []*task.StageMetrics{{
			Spec: spec, Start: 0, End: 10,
			Tasks: []*task.TaskMetrics{{
				Monotasks: []task.MonotaskMetric{
					{Resource: task.CPUResource, Kind: task.KindCompute, Start: 0, End: 4,
						DeserSec: 1, OpSec: 2.5, SerSec: 0.5},
					{Resource: task.DiskResource, Kind: task.KindInputRead, Start: 0, End: 2, Bytes: 200e6},
					{Resource: task.DiskResource, Kind: task.KindShuffleWrite, Start: 4, End: 5, Bytes: 100e6},
					{Resource: task.NetworkResource, Kind: task.KindNetFetch, Start: 0, End: 1, Bytes: 50e6},
				},
			}},
		}},
	}
	p := FromMetrics(jm, res)
	s := p.Stages[0]
	if !approx(s.CPUSeconds, 4) {
		t.Fatalf("CPUSeconds = %v, want 4", s.CPUSeconds)
	}
	if s.DiskBytes != 300e6 || s.InputReadBytes != 200e6 || s.NetBytes != 50e6 {
		t.Fatalf("bytes: disk %d input %d net %d", s.DiskBytes, s.InputReadBytes, s.NetBytes)
	}
	if !approx(s.InputDeserSeconds, 1) {
		t.Fatalf("InputDeserSeconds = %v, want 1 (stage reads input)", s.InputDeserSeconds)
	}
	if !approx(s.ActualSeconds, 10) {
		t.Fatalf("ActualSeconds = %v, want 10", s.ActualSeconds)
	}
}

func TestFromMetricsNoInputNoDeserRemoval(t *testing.T) {
	spec := &task.StageSpec{ID: 0, Name: "reduce", NumTasks: 1, ParentIDs: []int{0}}
	jm := &task.JobMetrics{
		Name: "j",
		Stages: []*task.StageMetrics{{
			Spec: spec, Start: 0, End: 5,
			Tasks: []*task.TaskMetrics{{
				Monotasks: []task.MonotaskMetric{
					{Resource: task.CPUResource, Kind: task.KindCompute, Start: 0, End: 3, DeserSec: 1, OpSec: 2},
				},
			}},
		}},
	}
	p := FromMetrics(jm, res)
	// Shuffle deserialization is NOT input deserialization (§6.3 removes
	// only the input share).
	if p.Stages[0].InputDeserSeconds != 0 {
		t.Fatalf("InputDeserSeconds = %v, want 0 for shuffle-input stage", p.Stages[0].InputDeserSeconds)
	}
}

func TestSlotPrediction(t *testing.T) {
	if got := SlotPrediction(100, 8, 16); !approx(got, 50) {
		t.Fatalf("SlotPrediction = %v, want 50", got)
	}
	// The Fig. 15 failure: removing a disk leaves slots unchanged.
	if got := SlotPrediction(100, 8, 8); !approx(got, 100) {
		t.Fatalf("SlotPrediction = %v, want 100 (no slot change)", got)
	}
	if got := SlotPrediction(100, 8, 0); !approx(got, 100) {
		t.Fatalf("SlotPrediction with bad slots = %v, want 100", got)
	}
}

func TestFromMeasured(t *testing.T) {
	stages := []MeasuredStage{{
		Name: "map",
		Usage: metrics.MeasuredUsage{
			CPUSeconds: 800, DiskReadBytes: 15e9, DiskWriteBytes: 5e9, NetBytes: 1e9,
		},
		ActualSeconds: 25,
	}}
	p := FromMeasured("j", stages, res)
	s := p.Stages[0]
	if s.DiskBytes != 20e9 || s.NetBytes != 1e9 || !approx(s.CPUSeconds, 800) {
		t.Fatalf("measured profile wrong: %+v", s)
	}
	// No deser split: InMemoryInput must be a no-op on measured profiles.
	pred := Predict(p, InMemoryInput{})
	if !approx(pred.PredictedSeconds, 25) {
		t.Fatalf("in-memory what-if on measured profile predicted %v, want 25 (unsupported)", pred.PredictedSeconds)
	}
}

func TestSlotShareAttribution(t *testing.T) {
	total := metrics.MeasuredUsage{CPUSeconds: 100, DiskReadBytes: 1000, DiskWriteBytes: 500, NetBytes: 200}
	parts := SlotShareAttribution(total, []float64{30, 10})
	if !approx(parts[0].CPUSeconds, 75) || !approx(parts[1].CPUSeconds, 25) {
		t.Fatalf("cpu split %v/%v, want 75/25", parts[0].CPUSeconds, parts[1].CPUSeconds)
	}
	if parts[0].DiskReadBytes+parts[1].DiskReadBytes != 1000 {
		t.Fatal("attribution does not conserve disk bytes")
	}
	zero := SlotShareAttribution(total, []float64{0, 0})
	if zero[0].CPUSeconds != 0 {
		t.Fatal("zero slot-seconds should attribute nothing")
	}
}

func TestWhatIfStrings(t *testing.T) {
	ws := []WhatIf{
		ScaleDiskBW(2), SetDiskBW(1e9), ScaleCluster(4), ScaleNetBW(10),
		InMemoryInput{}, InfinitelyFast(task.DiskResource),
	}
	for _, w := range ws {
		if w.String() == "" {
			t.Fatalf("%T has empty String()", w)
		}
	}
}

func TestIdealSeconds(t *testing.T) {
	p := mkProfile()
	// map model 20 + reduce model 20.
	if got := p.IdealSeconds(); !approx(got, 40) {
		t.Fatalf("IdealSeconds = %v, want 40", got)
	}
	if got := p.ActualSeconds(); !approx(got, 49) {
		t.Fatalf("ActualSeconds = %v, want 49", got)
	}
}
