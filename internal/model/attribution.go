package model

import (
	"math"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/task"
)

// This file generalizes the paper's Fig. 16 from two jobs to N: when many
// jobs share a cluster, each job's monotask metrics attribute the cluster's
// resource use to that job exactly — each monotask belongs to exactly one
// job and records its own bytes and service time — where Spark can only
// split OS counters by slot occupancy (SlotShareAttribution), which is wrong
// whenever concurrent jobs have different resource profiles (§6.4).

// JobAttribution is one job's share of a window of cluster execution,
// computed purely from its monotask metrics.
type JobAttribution struct {
	Name string
	// Usage is the job's own resource consumption inside the window: CPU
	// monotask service seconds, disk bytes split read/write, network bytes.
	Usage metrics.MeasuredUsage
	// CPUShare, DiskShare, NetShare, MemShare are the job's fraction of all
	// attributed use of each resource across the concurrent jobs (0 when no
	// job used the resource). These are the live contention shares: "job 3
	// holds 61% of the disk traffic right now".
	CPUShare, DiskShare, NetShare, MemShare float64
	// IdealCPU, IdealDisk, IdealNet, IdealMem are the job's per-resource
	// ideal completion times for the attributed usage (§6.1): how long the
	// window's work would take if the job had the whole cluster's capacity
	// for that one resource. IdealMem stays zero on clusters without the
	// memory model.
	IdealCPU, IdealDisk, IdealNet, IdealMem float64
}

// Attribute divides a window [t0, t1) of concurrent execution between jobs
// using each job's monotask metrics. Monotasks partially overlapping the
// window contribute pro-rata. It is safe to call mid-run: task slots not yet
// finished hold nil metrics and are skipped, so the attribution is live —
// any moment of an N-job run can be explained while the jobs still execute.
func Attribute(jobs []*task.JobMetrics, t0, t1 sim.Time, res Resources) []JobAttribution {
	out := make([]JobAttribution, len(jobs))
	for i, jm := range jobs {
		out[i].Name = jm.Name
		out[i].Usage = windowUsage(jm, t0, t1)
		u := out[i].Usage
		if res.TotalCores > 0 {
			out[i].IdealCPU = u.CPUSeconds / res.TotalCores
		}
		if res.DiskBW > 0 {
			out[i].IdealDisk = float64(u.DiskReadBytes+u.DiskWriteBytes) / res.DiskBW
		}
		if res.NetBW > 0 {
			out[i].IdealNet = float64(u.NetBytes) / res.NetBW
		}
		if res.MemBW > 0 {
			out[i].IdealMem = float64(u.MemBytes) / res.MemBW
		}
	}
	var cpu, disk, net, mem float64
	for _, a := range out {
		cpu += a.Usage.CPUSeconds
		disk += float64(a.Usage.DiskReadBytes + a.Usage.DiskWriteBytes)
		net += float64(a.Usage.NetBytes)
		mem += float64(a.Usage.MemBytes)
	}
	for i := range out {
		if cpu > 0 {
			out[i].CPUShare = out[i].Usage.CPUSeconds / cpu
		}
		if disk > 0 {
			out[i].DiskShare = float64(out[i].Usage.DiskReadBytes+out[i].Usage.DiskWriteBytes) / disk
		}
		if net > 0 {
			out[i].NetShare = float64(out[i].Usage.NetBytes) / net
		}
		if mem > 0 {
			out[i].MemShare = float64(out[i].Usage.MemBytes) / mem
		}
	}
	return out
}

// windowUsage sums one job's monotask activity clipped to [t0, t1). Byte
// sums accumulate in float64 and round once per window: truncating each
// monotask's pro-rata share individually loses up to a byte per monotask, so
// adjacent windows [t0,tm)+[tm,t1) would undercount versus [t0,t1) — drift a
// tiling consumer (the telemetry sampler) sees immediately. With one rounding
// per window the tiled sum stays within half a byte per window of the whole.
func windowUsage(jm *task.JobMetrics, t0, t1 sim.Time) metrics.MeasuredUsage {
	var u metrics.MeasuredUsage
	var read, write, net, mem float64
	for _, sm := range jm.Stages {
		for _, tm := range sm.Tasks {
			if tm == nil {
				continue // attempt still in flight — live attribution
			}
			for _, m := range tm.Monotasks {
				f := overlapFraction(m.Start, m.End, t0, t1)
				if f == 0 {
					continue
				}
				switch m.Resource {
				case task.CPUResource:
					u.CPUSeconds += f * float64(m.End-m.Start)
					// The compute monotask's memory traffic pro-rates over
					// the same span: the memory stream runs while the core
					// is held.
					mem += f * float64(m.MemBytes)
				case task.DiskResource:
					switch m.Kind {
					case task.KindShuffleWrite, task.KindOutputWrite, task.KindMemSpill:
						write += f * float64(m.Bytes)
					default: // input reads and shuffle serve reads
						read += f * float64(m.Bytes)
					}
				case task.NetworkResource:
					net += f * float64(m.Bytes)
				}
			}
		}
	}
	u.DiskReadBytes = int64(math.Round(read))
	u.DiskWriteBytes = int64(math.Round(write))
	u.NetBytes = int64(math.Round(net))
	u.MemBytes = int64(math.Round(mem))
	return u
}

// overlapFraction is the fraction of span [s, e] inside window [t0, t1).
// An instantaneous span counts fully if its instant is inside the window.
func overlapFraction(s, e, t0, t1 sim.Time) float64 {
	if t1 <= t0 {
		return 0
	}
	lo, hi := s, e
	if t0 > lo {
		lo = t0
	}
	if t1 < hi {
		hi = t1
	}
	if hi < lo {
		return 0
	}
	if e <= s { // instantaneous monotask
		if s >= t0 && s < t1 {
			return 1
		}
		return 0
	}
	return float64(hi-lo) / float64(e-s)
}

// AttributionError compares an attribution against ground truth and returns
// the relative error of the dominant byte resource (disk+network) plus CPU,
// whichever is larger — the Fig. 16 headline number. A resource unused in
// both is skipped; attributing usage to a resource the truth never touched
// (phantom attribution) counts as full (1.0) relative error — returning 0
// there, as an earlier version did, hid exactly the misattribution this
// metric exists to expose.
func AttributionError(got, truth metrics.MeasuredUsage) float64 {
	worst := 0.0
	rel := func(g, t float64) float64 {
		if t == 0 {
			if g == 0 {
				return 0
			}
			return 1
		}
		d := (g - t) / t
		if d < 0 {
			d = -d
		}
		return d
	}
	if e := rel(got.CPUSeconds, truth.CPUSeconds); e > worst {
		worst = e
	}
	if e := rel(float64(got.DiskReadBytes+got.DiskWriteBytes),
		float64(truth.DiskReadBytes+truth.DiskWriteBytes)); e > worst {
		worst = e
	}
	if e := rel(float64(got.NetBytes), float64(truth.NetBytes)); e > worst {
		worst = e
	}
	if e := rel(float64(got.MemBytes), float64(truth.MemBytes)); e > worst {
		worst = e
	}
	return worst
}
