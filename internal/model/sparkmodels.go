package model

import (
	"repro/internal/metrics"
)

// SlotPrediction is the Fig. 15 strawman: Spark's only concurrency handle is
// the slot count, so the most direct Spark analogue of the monotasks model
// predicts runtime inversely proportional to slots. Changing disk count
// leaves slots unchanged, so this model predicts no change — which is the
// figure's point: "Spark uses one dimension, slots, to control resource use
// that is multi-dimensional" (§6.6).
func SlotPrediction(actualSeconds float64, oldSlots, newSlots int) float64 {
	if newSlots <= 0 || oldSlots <= 0 {
		return actualSeconds
	}
	return actualSeconds * float64(oldSlots) / float64(newSlots)
}

// MeasuredStage is a stage observed from outside a Spark run: OS-counter
// usage over the stage's window plus its duration. No monotask breakdown, no
// deser split, no separation of input reads from shuffle I/O.
type MeasuredStage struct {
	Name          string
	Usage         metrics.MeasuredUsage
	ActualSeconds float64
}

// FromMeasured builds a JobProfile from external measurements of a Spark run
// (Fig. 17). The resulting profile supports hardware what-ifs only: the
// in-memory-input question needs the deser split, which §6.3 shows cannot be
// measured in Spark. Its predictions also inherit Spark's contention: the
// measured byte counts say nothing about the throughput collapse concurrent
// access caused, so the model underestimates how much slower fewer disks
// make the job (§6.6).
func FromMeasured(name string, stages []MeasuredStage, res Resources) *JobProfile {
	p := &JobProfile{Name: name, Res: res}
	for _, ms := range stages {
		p.Stages = append(p.Stages, StageProfile{
			Name:          ms.Name,
			CPUSeconds:    ms.Usage.CPUSeconds,
			DiskBytes:     ms.Usage.DiskReadBytes + ms.Usage.DiskWriteBytes,
			NetBytes:      ms.Usage.NetBytes,
			ActualSeconds: ms.ActualSeconds,
		})
	}
	return p
}

// SlotShareAttribution divides a window's total measured usage between
// concurrent jobs in proportion to their slot occupancy (task-seconds) —
// the best Spark can do, and the Fig. 16 demonstration of why it is wrong:
// resource use is attributed equally regardless of each job's actual
// profile. slotSeconds[i] is job i's total task-seconds in the window.
func SlotShareAttribution(total metrics.MeasuredUsage, slotSeconds []float64) []metrics.MeasuredUsage {
	var sum float64
	for _, s := range slotSeconds {
		sum += s
	}
	out := make([]metrics.MeasuredUsage, len(slotSeconds))
	if sum == 0 {
		return out
	}
	for i, s := range slotSeconds {
		f := s / sum
		out[i] = metrics.MeasuredUsage{
			CPUSeconds:     total.CPUSeconds * f,
			DiskReadBytes:  int64(float64(total.DiskReadBytes) * f),
			DiskWriteBytes: int64(float64(total.DiskWriteBytes) * f),
			NetBytes:       int64(float64(total.NetBytes) * f),
		}
	}
	return out
}
