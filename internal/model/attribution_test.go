package model

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/task"
)

func mono(r task.Resource, k task.Kind, start, end sim.Time, bytes int64) task.MonotaskMetric {
	return task.MonotaskMetric{Resource: r, Kind: k, Start: start, End: end, Bytes: bytes}
}

func jobWith(name string, ms ...task.MonotaskMetric) *task.JobMetrics {
	return &task.JobMetrics{Name: name, Stages: []*task.StageMetrics{{
		Tasks: []*task.TaskMetrics{{Monotasks: ms}},
	}}}
}

func TestAttributeExactPerJob(t *testing.T) {
	res := Resources{TotalCores: 4, DiskBW: 100, NetBW: 50}
	a := jobWith("cpu-heavy",
		mono(task.CPUResource, task.KindCompute, 0, 8, 0),
		mono(task.DiskResource, task.KindInputRead, 0, 1, 100),
	)
	b := jobWith("disk-heavy",
		mono(task.CPUResource, task.KindCompute, 0, 2, 0),
		mono(task.DiskResource, task.KindInputRead, 0, 4, 500),
		mono(task.DiskResource, task.KindOutputWrite, 4, 8, 300),
		mono(task.NetworkResource, task.KindNetFetch, 0, 2, 200),
	)
	atts := Attribute([]*task.JobMetrics{a, b}, 0, 10, res)
	if atts[0].Usage.CPUSeconds != 8 || atts[1].Usage.CPUSeconds != 2 {
		t.Fatalf("cpu seconds %v / %v, want 8 / 2", atts[0].Usage.CPUSeconds, atts[1].Usage.CPUSeconds)
	}
	if atts[0].Usage.DiskReadBytes != 100 || atts[1].Usage.DiskReadBytes != 500 || atts[1].Usage.DiskWriteBytes != 300 {
		t.Fatalf("disk bytes wrong: %+v / %+v", atts[0].Usage, atts[1].Usage)
	}
	if atts[1].Usage.NetBytes != 200 || atts[0].Usage.NetBytes != 0 {
		t.Fatalf("net bytes wrong: %+v / %+v", atts[0].Usage, atts[1].Usage)
	}
	// Shares: cpu 8/10 vs 2/10; disk 100/900 vs 800/900; net 0 vs 1.
	if math.Abs(atts[0].CPUShare-0.8) > 1e-12 || math.Abs(atts[1].DiskShare-800.0/900) > 1e-12 || atts[1].NetShare != 1 {
		t.Fatalf("shares wrong: %+v / %+v", atts[0], atts[1])
	}
	// Ideal times divide by the aggregate capacity.
	if math.Abs(atts[0].IdealCPU-2) > 1e-12 { // 8 core-s / 4 cores
		t.Fatalf("ideal cpu %v, want 2", atts[0].IdealCPU)
	}
	if math.Abs(atts[1].IdealDisk-8) > 1e-12 { // 800 B / 100 B/s
		t.Fatalf("ideal disk %v, want 8", atts[1].IdealDisk)
	}
	if math.Abs(atts[1].IdealNet-4) > 1e-12 { // 200 B / 50 B/s
		t.Fatalf("ideal net %v, want 4", atts[1].IdealNet)
	}
}

func TestAttributeWindowClipping(t *testing.T) {
	j := jobWith("j",
		mono(task.DiskResource, task.KindInputRead, 0, 10, 1000),
		mono(task.CPUResource, task.KindCompute, 0, 10, 0),
	)
	atts := Attribute([]*task.JobMetrics{j}, 2, 7, Resources{})
	// Half-open window [2,7) covers 5 of the 10 seconds: half the bytes and
	// half the CPU time attribute to it.
	if atts[0].Usage.DiskReadBytes != 500 {
		t.Fatalf("clipped read bytes %d, want 500", atts[0].Usage.DiskReadBytes)
	}
	if atts[0].Usage.CPUSeconds != 5 {
		t.Fatalf("clipped cpu seconds %v, want 5", atts[0].Usage.CPUSeconds)
	}
	// A window that misses the monotask attributes nothing.
	if got := Attribute([]*task.JobMetrics{j}, 10, 20, Resources{}); got[0].Usage.DiskReadBytes != 0 {
		t.Fatalf("out-of-window attribution %+v, want zero", got[0].Usage)
	}
}

func TestAttributeLiveSkipsInFlightTasks(t *testing.T) {
	// Mid-run, unfinished task slots hold nil metrics; Attribute must not
	// panic and must use only completed attempts.
	j := &task.JobMetrics{Name: "live", Stages: []*task.StageMetrics{{
		Tasks: []*task.TaskMetrics{
			{Monotasks: []task.MonotaskMetric{mono(task.DiskResource, task.KindInputRead, 0, 1, 42)}},
			nil,
			nil,
		},
	}}}
	atts := Attribute([]*task.JobMetrics{j}, 0, 100, Resources{})
	if atts[0].Usage.DiskReadBytes != 42 {
		t.Fatalf("live attribution %+v, want 42 read bytes", atts[0].Usage)
	}
}

func TestAttributeInstantaneousMonotask(t *testing.T) {
	j := jobWith("z", mono(task.NetworkResource, task.KindNetFetch, 5, 5, 77))
	if got := Attribute([]*task.JobMetrics{j}, 0, 10, Resources{}); got[0].Usage.NetBytes != 77 {
		t.Fatalf("instant monotask in window attributed %d bytes, want 77", got[0].Usage.NetBytes)
	}
	if got := Attribute([]*task.JobMetrics{j}, 6, 10, Resources{}); got[0].Usage.NetBytes != 0 {
		t.Fatalf("instant monotask outside window attributed %d bytes, want 0", got[0].Usage.NetBytes)
	}
}

func TestAttributionError(t *testing.T) {
	truth := metrics.MeasuredUsage{CPUSeconds: 10, DiskReadBytes: 1000, NetBytes: 100}
	if e := AttributionError(truth, truth); e != 0 {
		t.Fatalf("self error %v, want 0", e)
	}
	got := metrics.MeasuredUsage{CPUSeconds: 10, DiskReadBytes: 500, NetBytes: 100}
	if e := AttributionError(got, truth); math.Abs(e-0.5) > 1e-12 {
		t.Fatalf("error %v, want 0.5 (disk halved)", e)
	}
	// Zero-usage resources in the truth are skipped, not divided by.
	if e := AttributionError(metrics.MeasuredUsage{NetBytes: 5}, metrics.MeasuredUsage{}); e != 0 {
		t.Fatalf("error vs zero truth %v, want 0", e)
	}
}
