package model

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/task"
)

func mono(r task.Resource, k task.Kind, start, end sim.Time, bytes int64) task.MonotaskMetric {
	return task.MonotaskMetric{Resource: r, Kind: k, Start: start, End: end, Bytes: bytes}
}

func jobWith(name string, ms ...task.MonotaskMetric) *task.JobMetrics {
	return &task.JobMetrics{Name: name, Stages: []*task.StageMetrics{{
		Tasks: []*task.TaskMetrics{{Monotasks: ms}},
	}}}
}

func TestAttributeExactPerJob(t *testing.T) {
	res := Resources{TotalCores: 4, DiskBW: 100, NetBW: 50}
	a := jobWith("cpu-heavy",
		mono(task.CPUResource, task.KindCompute, 0, 8, 0),
		mono(task.DiskResource, task.KindInputRead, 0, 1, 100),
	)
	b := jobWith("disk-heavy",
		mono(task.CPUResource, task.KindCompute, 0, 2, 0),
		mono(task.DiskResource, task.KindInputRead, 0, 4, 500),
		mono(task.DiskResource, task.KindOutputWrite, 4, 8, 300),
		mono(task.NetworkResource, task.KindNetFetch, 0, 2, 200),
	)
	atts := Attribute([]*task.JobMetrics{a, b}, 0, 10, res)
	if atts[0].Usage.CPUSeconds != 8 || atts[1].Usage.CPUSeconds != 2 {
		t.Fatalf("cpu seconds %v / %v, want 8 / 2", atts[0].Usage.CPUSeconds, atts[1].Usage.CPUSeconds)
	}
	if atts[0].Usage.DiskReadBytes != 100 || atts[1].Usage.DiskReadBytes != 500 || atts[1].Usage.DiskWriteBytes != 300 {
		t.Fatalf("disk bytes wrong: %+v / %+v", atts[0].Usage, atts[1].Usage)
	}
	if atts[1].Usage.NetBytes != 200 || atts[0].Usage.NetBytes != 0 {
		t.Fatalf("net bytes wrong: %+v / %+v", atts[0].Usage, atts[1].Usage)
	}
	// Shares: cpu 8/10 vs 2/10; disk 100/900 vs 800/900; net 0 vs 1.
	if math.Abs(atts[0].CPUShare-0.8) > 1e-12 || math.Abs(atts[1].DiskShare-800.0/900) > 1e-12 || atts[1].NetShare != 1 {
		t.Fatalf("shares wrong: %+v / %+v", atts[0], atts[1])
	}
	// Ideal times divide by the aggregate capacity.
	if math.Abs(atts[0].IdealCPU-2) > 1e-12 { // 8 core-s / 4 cores
		t.Fatalf("ideal cpu %v, want 2", atts[0].IdealCPU)
	}
	if math.Abs(atts[1].IdealDisk-8) > 1e-12 { // 800 B / 100 B/s
		t.Fatalf("ideal disk %v, want 8", atts[1].IdealDisk)
	}
	if math.Abs(atts[1].IdealNet-4) > 1e-12 { // 200 B / 50 B/s
		t.Fatalf("ideal net %v, want 4", atts[1].IdealNet)
	}
}

func TestAttributeWindowClipping(t *testing.T) {
	j := jobWith("j",
		mono(task.DiskResource, task.KindInputRead, 0, 10, 1000),
		mono(task.CPUResource, task.KindCompute, 0, 10, 0),
	)
	atts := Attribute([]*task.JobMetrics{j}, 2, 7, Resources{})
	// Half-open window [2,7) covers 5 of the 10 seconds: half the bytes and
	// half the CPU time attribute to it.
	if atts[0].Usage.DiskReadBytes != 500 {
		t.Fatalf("clipped read bytes %d, want 500", atts[0].Usage.DiskReadBytes)
	}
	if atts[0].Usage.CPUSeconds != 5 {
		t.Fatalf("clipped cpu seconds %v, want 5", atts[0].Usage.CPUSeconds)
	}
	// A window that misses the monotask attributes nothing.
	if got := Attribute([]*task.JobMetrics{j}, 10, 20, Resources{}); got[0].Usage.DiskReadBytes != 0 {
		t.Fatalf("out-of-window attribution %+v, want zero", got[0].Usage)
	}
}

func TestAttributeLiveSkipsInFlightTasks(t *testing.T) {
	// Mid-run, unfinished task slots hold nil metrics; Attribute must not
	// panic and must use only completed attempts.
	j := &task.JobMetrics{Name: "live", Stages: []*task.StageMetrics{{
		Tasks: []*task.TaskMetrics{
			{Monotasks: []task.MonotaskMetric{mono(task.DiskResource, task.KindInputRead, 0, 1, 42)}},
			nil,
			nil,
		},
	}}}
	atts := Attribute([]*task.JobMetrics{j}, 0, 100, Resources{})
	if atts[0].Usage.DiskReadBytes != 42 {
		t.Fatalf("live attribution %+v, want 42 read bytes", atts[0].Usage)
	}
}

func TestAttributeInstantaneousMonotask(t *testing.T) {
	j := jobWith("z", mono(task.NetworkResource, task.KindNetFetch, 5, 5, 77))
	if got := Attribute([]*task.JobMetrics{j}, 0, 10, Resources{}); got[0].Usage.NetBytes != 77 {
		t.Fatalf("instant monotask in window attributed %d bytes, want 77", got[0].Usage.NetBytes)
	}
	if got := Attribute([]*task.JobMetrics{j}, 6, 10, Resources{}); got[0].Usage.NetBytes != 0 {
		t.Fatalf("instant monotask outside window attributed %d bytes, want 0", got[0].Usage.NetBytes)
	}
}

func TestAttributionError(t *testing.T) {
	truth := metrics.MeasuredUsage{CPUSeconds: 10, DiskReadBytes: 1000, NetBytes: 100}
	if e := AttributionError(truth, truth); e != 0 {
		t.Fatalf("self error %v, want 0", e)
	}
	got := metrics.MeasuredUsage{CPUSeconds: 10, DiskReadBytes: 500, NetBytes: 100}
	if e := AttributionError(got, truth); math.Abs(e-0.5) > 1e-12 {
		t.Fatalf("error %v, want 0.5 (disk halved)", e)
	}
	// A resource unused in both got and truth contributes nothing.
	if e := AttributionError(metrics.MeasuredUsage{}, metrics.MeasuredUsage{}); e != 0 {
		t.Fatalf("error of all-zero usage %v, want 0", e)
	}
}

func TestAttributionErrorPhantomUsage(t *testing.T) {
	// Attributing usage to a resource the truth never touched is phantom
	// attribution: it must register as full (1.0) relative error, not vanish
	// because the denominator is zero.
	cases := []struct {
		name string
		got  metrics.MeasuredUsage
	}{
		{"net", metrics.MeasuredUsage{NetBytes: 5}},
		{"cpu", metrics.MeasuredUsage{CPUSeconds: 0.25}},
		{"disk-read", metrics.MeasuredUsage{DiskReadBytes: 9}},
		{"disk-write", metrics.MeasuredUsage{DiskWriteBytes: 9}},
	}
	for _, c := range cases {
		if e := AttributionError(c.got, metrics.MeasuredUsage{}); e != 1 {
			t.Fatalf("%s: phantom attribution error %v, want 1", c.name, e)
		}
	}
	// Phantom error on one resource does not mask a larger real error on
	// another.
	got := metrics.MeasuredUsage{NetBytes: 5, CPUSeconds: 30}
	truth := metrics.MeasuredUsage{CPUSeconds: 10}
	if e := AttributionError(got, truth); math.Abs(e-2) > 1e-12 {
		t.Fatalf("mixed phantom+real error %v, want 2 (cpu tripled)", e)
	}
}

// TestAttributeWindowTiling is the tiling property the telemetry sampler
// depends on: attributing a run as a sequence of adjacent windows must sum to
// the whole-run attribution within rounding (half a byte per window). The
// old per-monotask truncation undercounted by up to a byte per monotask per
// window, which compounds across tiles.
func TestAttributeWindowTiling(t *testing.T) {
	// Byte volumes chosen so every window boundary splits monotasks at
	// non-integer byte fractions (the truncation-sensitive case).
	memCompute := mono(task.CPUResource, task.KindCompute, 0.25, 9.75, 0)
	memCompute.MemBytes = 1511 // memory traffic pro-rated over the compute span
	j := jobWith("tile",
		mono(task.DiskResource, task.KindInputRead, 0, 7, 1003),
		mono(task.DiskResource, task.KindShuffleWrite, 1, 8, 977),
		mono(task.DiskResource, task.KindInputRead, 2.5, 9.5, 331),
		mono(task.NetworkResource, task.KindNetFetch, 0.5, 9, 1999),
		mono(task.CPUResource, task.KindCompute, 0, 10, 0),
		memCompute,
	)
	jobs := []*task.JobMetrics{j}
	whole := Attribute(jobs, 0, 10, Resources{})[0].Usage
	if whole.MemBytes == 0 {
		t.Fatal("whole-run attribution dropped the compute monotask's memory traffic")
	}

	for _, nWindows := range []int{2, 3, 7, 16, 50} {
		var sum metrics.MeasuredUsage
		step := sim.Time(10) / sim.Time(nWindows)
		for w := 0; w < nWindows; w++ {
			t0, t1 := sim.Time(w)*step, sim.Time(w+1)*step
			sum = sum.Add(Attribute(jobs, t0, t1, Resources{})[0].Usage)
		}
		// Each window rounds once, so the tiled sum may drift from the whole
		// by at most half a byte per window (plus the whole's own rounding).
		tol := int64(nWindows/2 + 1)
		within := func(a, b int64) bool {
			d := a - b
			if d < 0 {
				d = -d
			}
			return d <= tol
		}
		if !within(sum.DiskReadBytes, whole.DiskReadBytes) ||
			!within(sum.DiskWriteBytes, whole.DiskWriteBytes) ||
			!within(sum.NetBytes, whole.NetBytes) ||
			!within(sum.MemBytes, whole.MemBytes) {
			t.Fatalf("%d windows: tiled sum %+v drifts beyond ±%d bytes from whole %+v",
				nWindows, sum, tol, whole)
		}
		if math.Abs(sum.CPUSeconds-whole.CPUSeconds) > 1e-9 {
			t.Fatalf("%d windows: tiled CPU %v vs whole %v", nWindows, sum.CPUSeconds, whole.CPUSeconds)
		}
	}

	// The two-window split the telemetry sampler produces must be exact to
	// the rounding bound for every boundary position, including boundaries
	// inside every monotask.
	for tm := sim.Time(0.5); tm < 10; tm += 0.5 {
		a := Attribute(jobs, 0, tm, Resources{})[0].Usage
		b := Attribute(jobs, tm, 10, Resources{})[0].Usage
		sum := a.Add(b)
		for _, d := range []int64{
			sum.DiskReadBytes - whole.DiskReadBytes,
			sum.DiskWriteBytes - whole.DiskWriteBytes,
			sum.NetBytes - whole.NetBytes,
			sum.MemBytes - whole.MemBytes,
		} {
			if d < -2 || d > 2 {
				t.Fatalf("split at %v: tiled %+v vs whole %+v", tm, sum, whole)
			}
		}
	}
}
