// Package cluster assembles device models into virtual machines and
// clusters. A Cluster owns one simulation engine; every device on every
// machine schedules against that engine, so cross-machine timing (shuffles,
// stragglers) is globally consistent.
package cluster

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/units"
)

// MachineSpec describes one worker machine. SpeedFactor (default 1) scales
// the machine's CPU rate, disk bandwidths, and link bandwidth together —
// the straggler/heterogeneity knob: a machine with SpeedFactor 0.5 is a
// uniformly degraded node.
type MachineSpec struct {
	Cores       int
	Disks       []resource.DiskSpec
	NetBW       float64 // bytes/second, full duplex
	MemBytes    int64
	SpeedFactor float64

	// Mem enables the fourth-resource memory model (bandwidth ceiling,
	// capacity-pressure spill, seeded GC pauses). The zero value disables it
	// entirely — the machine behaves exactly as before this knob existed.
	Mem resource.MemorySpec
}

// Degraded returns a copy of the spec slowed to the given factor.
func (s MachineSpec) Degraded(factor float64) MachineSpec {
	s.SpeedFactor = factor
	return s
}

// speed returns the effective factor (zero value means 1).
func (s MachineSpec) speed() float64 {
	if s.SpeedFactor <= 0 {
		return 1
	}
	return s.SpeedFactor
}

// Validate reports a descriptive error for an unusable spec.
func (s MachineSpec) Validate() error {
	if s.Cores <= 0 {
		return fmt.Errorf("cluster: spec needs cores, got %d", s.Cores)
	}
	if s.NetBW <= 0 {
		return fmt.Errorf("cluster: spec needs network bandwidth, got %v", s.NetBW)
	}
	if s.MemBytes <= 0 {
		return fmt.Errorf("cluster: spec needs memory, got %d", s.MemBytes)
	}
	for i, d := range s.Disks {
		if d.SeqBW <= 0 {
			return fmt.Errorf("cluster: disk %d has no bandwidth", i)
		}
	}
	if s.Mem.BandwidthBPS < 0 || s.Mem.CapacityBytes < 0 ||
		s.Mem.GCEveryBytes < 0 || s.Mem.GCPauseSec < 0 {
		return fmt.Errorf("cluster: negative memory-model knob")
	}
	return nil
}

// M2_4XLarge mirrors the paper's HDD instances: 8 vCPUs, ~60 GB memory, two
// hard disk drives, 1 Gb/s network (§5.1).
func M2_4XLarge() MachineSpec {
	return MachineSpec{
		Cores:    8,
		Disks:    []resource.DiskSpec{resource.DefaultHDD(), resource.DefaultHDD()},
		NetBW:    units.Gbps(1),
		MemBytes: 60 * units.GB,
	}
}

// I2_2XLarge mirrors the paper's SSD instances: 8 vCPUs, ~60 GB memory, one
// or two solid-state drives, 1 Gb/s network (§5.1).
func I2_2XLarge(ssds int) MachineSpec {
	disks := make([]resource.DiskSpec, ssds)
	for i := range disks {
		disks[i] = resource.DefaultSSD()
	}
	return MachineSpec{
		Cores:    8,
		Disks:    disks,
		NetBW:    units.Gbps(1),
		MemBytes: 60 * units.GB,
	}
}

// FatNode is the scale-up machine the data-volume studies ran on: one box
// with many cores, SSDs, a fast NIC — and, unlike the scale-out specs, an
// enabled memory model, because on a single fat node memory bandwidth and GC
// are what the trio of CPU/disk/network cannot explain. 32 cores, 4 SSDs,
// 10 Gb/s, 25 GB/s memory bandwidth, 48 GB usable task-buffer capacity,
// a GC pause every ~16 GB allocated.
func FatNode() MachineSpec {
	disks := make([]resource.DiskSpec, 4)
	for i := range disks {
		disks[i] = resource.DefaultSSD()
	}
	return MachineSpec{
		Cores:    32,
		Disks:    disks,
		NetBW:    units.Gbps(10),
		MemBytes: 64 * units.GB,
		Mem: resource.MemorySpec{
			BandwidthBPS:  25e9,
			CapacityBytes: 48 * units.GB,
			GCEveryBytes:  16 * units.GB,
			GCPauseSec:    0.4,
			GCSeed:        1,
		},
	}
}

// Machine is one assembled worker.
type Machine struct {
	ID    int
	Spec  MachineSpec
	CPU   *resource.CPU
	Disks []*resource.Disk
	NIC   *netsim.NIC

	// Memory is the fourth-resource model; nil on machines whose spec left
	// it disabled (the default), so every consumer must gate on nil.
	Memory *resource.Memory

	// sched is the timeline the machine's devices live on: the cluster engine
	// in a serial run, the machine's own lane when sharding is configured.
	// lane is non-nil only in the latter case.
	sched sim.Scheduler
	lane  *sim.Lane

	memInUse int64
	memPeak  int64
}

// Scheduler reports the timeline the machine's devices schedule against —
// the machine's lane under sharding, the cluster engine otherwise. Executors
// built on this machine must place per-machine events here.
func (m *Machine) Scheduler() sim.Scheduler { return m.sched }

// Lane reports the machine's shard lane, or nil in a serial run. Executors
// use it for the lane→global escape (sim.Lane.Global) when a machine-local
// event has a cluster-wide consequence.
func (m *Machine) Lane() *sim.Lane { return m.lane }

// bind rebinds the machine's devices to the given timeline. Only legal while
// the devices are idle — resource.SetScheduler panics otherwise.
func (m *Machine) bind(sched sim.Scheduler, lane *sim.Lane) {
	if m.sched == sched {
		return
	}
	m.sched = sched
	m.lane = lane
	m.CPU.SetScheduler(sched)
	for _, d := range m.Disks {
		d.SetScheduler(sched)
	}
	if m.Memory != nil {
		m.Memory.SetScheduler(sched)
	}
}

// MemAlloc charges bytes of memory. It never fails — the paper's MonoSpark
// does not regulate memory either (§3.5) — but the high-water mark is
// recorded so experiments can report pressure.
func (m *Machine) MemAlloc(bytes int64) {
	m.memInUse += bytes
	if m.memInUse > m.memPeak {
		m.memPeak = m.memInUse
	}
}

// MemFree releases bytes of memory.
func (m *Machine) MemFree(bytes int64) {
	m.memInUse -= bytes
	if m.memInUse < 0 {
		panic("cluster: memory freed twice")
	}
}

// MemInUse reports the machine's current memory use.
func (m *Machine) MemInUse() int64 { return m.memInUse }

// MemPeak reports the machine's high-water memory use.
func (m *Machine) MemPeak() int64 { return m.memPeak }

// AggDiskBW returns the machine's total sequential disk bandwidth.
func (m *Machine) AggDiskBW() float64 {
	var bw float64
	for _, d := range m.Disks {
		bw += d.Spec().SeqBW
	}
	return bw
}

// Cluster is a set of identical machines over a full-bisection fabric and a
// single simulation engine.
type Cluster struct {
	Engine   *sim.Engine
	Machines []*Machine
	Fabric   *netsim.Fabric
	spec     MachineSpec
}

// New builds a cluster of n machines with the given spec.
func New(n int, spec MachineSpec) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least one machine, got %d", n)
	}
	specs := make([]MachineSpec, n)
	for i := range specs {
		specs[i] = spec
	}
	return NewHetero(specs)
}

// NewHetero builds a cluster from per-machine specs — degraded nodes,
// mixed disk types, or uneven links. Cluster-wide aggregates (TotalCores,
// TotalDiskBW, TotalNetBW) use each machine's own shape.
func NewHetero(specs []MachineSpec) (*Cluster, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("cluster: need at least one machine")
	}
	linkBWs := make([]float64, len(specs))
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("machine %d: %w", i, err)
		}
		linkBWs[i] = s.NetBW * s.speed()
	}
	eng := sim.NewEngine()
	c := &Cluster{Engine: eng, Fabric: netsim.NewFabricBW(eng, linkBWs), spec: specs[0]}
	for i, s := range specs {
		m := &Machine{
			ID:    i,
			Spec:  s,
			CPU:   resource.NewCPUWithSpeed(eng, s.Cores, s.speed()),
			NIC:   c.Fabric.NIC(i),
			sched: eng,
		}
		for _, ds := range s.Disks {
			ds.SeqBW *= s.speed()
			m.Disks = append(m.Disks, resource.NewDisk(eng, ds))
		}
		if s.Mem.Enabled() {
			ms := s.Mem
			ms.BandwidthBPS *= s.speed()
			// Mix the machine ID into the GC seed so identical machines do
			// not pause in lockstep; the mix is fixed, so replays see the
			// same schedule.
			ms.GCSeed = ms.GCSeed*1000003 + int64(i) + 1
			m.Memory = resource.NewMemory(eng, ms)
			cpu := m.CPU
			m.Memory.OnGC(func(pause sim.Duration) { cpu.Pause(pause) })
		}
		c.Machines = append(c.Machines, m)
	}
	return c, nil
}

// MustNew is New for static configurations that cannot fail.
func MustNew(n int, spec MachineSpec) *Cluster {
	c, err := New(n, spec)
	if err != nil {
		panic(err)
	}
	return c
}

// SetMachineSpeed rescales machine m's CPU, disks, and NIC to factor times
// their configured rates from the current virtual time onward; factor 1
// restores the machine. Unlike MachineSpec.Degraded (fixed at construction)
// this is the dynamic straggler knob fault injection uses: a machine can slow
// down mid-job and heal later, and every device model catches up in-flight
// work at the old rate before applying the new one.
func (c *Cluster) SetMachineSpeed(m int, factor float64) {
	mach := c.Machines[m]
	mach.CPU.SetSpeedFactor(factor)
	for _, d := range mach.Disks {
		d.SetSpeedFactor(factor)
	}
	if mach.Memory != nil {
		mach.Memory.SetSpeedFactor(factor)
	}
	c.Fabric.SetLinkSpeed(m, factor)
}

// LookaheadHorizon derives the cluster's conservative lookahead: the minimum
// virtual time within which no machine can affect another. Machines interact
// only through the fabric, and the smallest interaction the shuffle planner
// ever puts on the wire is a single byte, so the horizon is one byte over the
// fastest link (netsim.Fabric.MinTransferLatency). A scheduler that knows the
// upcoming stage shapes can tighten this with shuffle.Tracker.MinFetchBytes;
// this static floor is valid for any workload.
func (c *Cluster) LookaheadHorizon() sim.Duration {
	return c.Fabric.MinTransferLatency(1)
}

// ControlPlaneStats returns the fabric's control-plane ledger totals: the
// zero-virtual-time coordination messages recorded between machines (the
// delegated driver's peer-to-peer stage-completion broadcasts). Zero for a
// centralized control plane, which exchanges no worker-to-worker metadata.
func (c *Cluster) ControlPlaneStats() netsim.ControlStats {
	return c.Fabric.ControlStats()
}

// ConfigureSharding partitions the engine into one lane per machine, grouped
// into the given number of shards, with the topology-derived lookahead from
// LookaheadHorizon, and rebinds each machine's devices (CPU, disks, memory)
// onto its lane — the lane-affinity migration: per-machine completion events
// drain in parallel windows instead of serializing on the global timeline.
// Shards outside [1, machines] are clamped. Sharding is an execution
// strategy, not a model change: the engine guarantees bit-identical event
// order at any shard count, which TestGoldenShardedVsSerial pins over the
// golden corpora. Only legal while the devices are idle (between runs).
func (c *Cluster) ConfigureSharding(shards int) {
	c.Engine.ConfigureShards(len(c.Machines), shards, c.LookaheadHorizon())
	for i, m := range c.Machines {
		ln := c.Engine.Lane(i)
		m.bind(ln, ln)
	}
}

// DisableSharding removes the lane layer and rebinds every machine's devices
// back onto the serial engine — the zero-config fallback ConfigureSharding
// undoes. Panics if lane events are still pending.
func (c *Cluster) DisableSharding() {
	c.Engine.DisableShards()
	for _, m := range c.Machines {
		m.bind(c.Engine, nil)
	}
}

// Spec returns the per-machine specification.
func (c *Cluster) Spec() MachineSpec { return c.spec }

// Size reports the number of machines.
func (c *Cluster) Size() int { return len(c.Machines) }

// TotalCores reports the cluster-wide core count — the denominator of the
// performance model's ideal CPU time (§6.1).
func (c *Cluster) TotalCores() int {
	n := 0
	for _, m := range c.Machines {
		n += m.Spec.Cores
	}
	return n
}

// TotalDiskBW reports the cluster-wide sequential disk bandwidth — the
// denominator of the ideal disk time (§6.1).
func (c *Cluster) TotalDiskBW() float64 {
	var bw float64
	for _, m := range c.Machines {
		bw += m.AggDiskBW()
	}
	return bw
}

// TotalNetBW reports the cluster-wide unidirectional network bandwidth —
// the denominator of the ideal network time (§6.1).
func (c *Cluster) TotalNetBW() float64 {
	var bw float64
	for _, m := range c.Machines {
		bw += m.NIC.IngressBW()
	}
	return bw
}

// TotalMemBW reports the cluster-wide memory-bandwidth ceiling — the
// denominator of the ideal memory time. Zero when no machine enables the
// memory model.
func (c *Cluster) TotalMemBW() float64 {
	var bw float64
	for _, m := range c.Machines {
		if m.Memory != nil {
			bw += m.Memory.Spec().BandwidthBPS
		}
	}
	return bw
}
