package cluster

import (
	"testing"

	"repro/internal/resource"
	"repro/internal/units"
)

func TestNewClusterWiring(t *testing.T) {
	c, err := New(5, M2_4XLarge())
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 5 {
		t.Fatalf("Size = %d, want 5", c.Size())
	}
	if c.TotalCores() != 40 {
		t.Fatalf("TotalCores = %d, want 40", c.TotalCores())
	}
	for i, m := range c.Machines {
		if m.ID != i {
			t.Fatalf("machine %d has ID %d", i, m.ID)
		}
		if len(m.Disks) != 2 {
			t.Fatalf("machine %d has %d disks, want 2", i, len(m.Disks))
		}
		if m.NIC.ID() != i {
			t.Fatalf("machine %d wired to NIC %d", i, m.NIC.ID())
		}
	}
}

func TestAggregateBandwidths(t *testing.T) {
	c := MustNew(20, M2_4XLarge())
	// 20 machines × 2 HDD × 100 MB/s.
	if got := c.TotalDiskBW(); got != 20*2*100e6 {
		t.Fatalf("TotalDiskBW = %v, want 4e9", got)
	}
	if got := c.TotalNetBW(); got != 20*units.Gbps(1) {
		t.Fatalf("TotalNetBW = %v, want 2.5e9", got)
	}
}

func TestPresets(t *testing.T) {
	m2 := M2_4XLarge()
	if m2.Cores != 8 || len(m2.Disks) != 2 || m2.Disks[0].Kind != resource.HDD {
		t.Fatalf("M2_4XLarge = %+v", m2)
	}
	i2 := I2_2XLarge(2)
	if i2.Cores != 8 || len(i2.Disks) != 2 || i2.Disks[0].Kind != resource.SSD {
		t.Fatalf("I2_2XLarge = %+v", i2)
	}
	if len(I2_2XLarge(1).Disks) != 1 {
		t.Fatal("I2_2XLarge(1) should have one SSD")
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []MachineSpec{
		{Cores: 0, NetBW: 1, MemBytes: 1},
		{Cores: 1, NetBW: 0, MemBytes: 1},
		{Cores: 1, NetBW: 1, MemBytes: 0},
		{Cores: 1, NetBW: 1, MemBytes: 1, Disks: []resource.DiskSpec{{}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d validated but should not have", i)
		}
	}
	if _, err := New(0, M2_4XLarge()); err == nil {
		t.Error("New(0, ...) should fail")
	}
	if err := M2_4XLarge().Validate(); err != nil {
		t.Errorf("M2_4XLarge invalid: %v", err)
	}
}

func TestMemoryAccounting(t *testing.T) {
	c := MustNew(1, M2_4XLarge())
	m := c.Machines[0]
	m.MemAlloc(100)
	m.MemAlloc(50)
	if m.MemInUse() != 150 || m.MemPeak() != 150 {
		t.Fatalf("in use %d peak %d, want 150/150", m.MemInUse(), m.MemPeak())
	}
	m.MemFree(100)
	if m.MemInUse() != 50 || m.MemPeak() != 150 {
		t.Fatalf("in use %d peak %d, want 50/150", m.MemInUse(), m.MemPeak())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	m.MemFree(100)
}

func TestDevicesShareOneEngine(t *testing.T) {
	c := MustNew(2, I2_2XLarge(1))
	var cpuDone, diskDone, netDone bool
	c.Machines[0].CPU.Run(1, func() { cpuDone = true })
	c.Machines[1].Disks[0].Read(100e6, func() { diskDone = true })
	c.Fabric.Transfer(0, 1, 1e6, func() { netDone = true })
	c.Engine.Run()
	if !cpuDone || !diskDone || !netDone {
		t.Fatalf("cpu=%v disk=%v net=%v; all devices must run on the shared engine",
			cpuDone, diskDone, netDone)
	}
}
