package shuffle

import (
	"testing"
	"testing/quick"
)

func TestFetchesEvenSplit(t *testing.T) {
	tr := NewTracker()
	// Two maps on machines 0 and 1, 100 bytes each, 4 reducers.
	tr.RegisterMapOutput(0, 0, 0, 100, false)
	tr.RegisterMapOutput(0, 1, 1, 100, false)
	f, err := tr.FetchesFor([]int{0}, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 2 {
		t.Fatalf("got %d fetches, want 2", len(f))
	}
	if f[0].From != 0 || f[1].From != 1 {
		t.Fatalf("fetch sources %d, %d; want 0, 1 (sorted)", f[0].From, f[1].From)
	}
	if f[0].Bytes != 25 || f[1].Bytes != 25 {
		t.Fatalf("fetch bytes %d, %d; want 25 each", f[0].Bytes, f[1].Bytes)
	}
}

func TestFetchesAggregatePerMachine(t *testing.T) {
	tr := NewTracker()
	// Three maps all on machine 2.
	for i := 0; i < 3; i++ {
		tr.RegisterMapOutput(0, i, 2, 90, false)
	}
	f, _ := tr.FetchesFor([]int{0}, 1, 3)
	if len(f) != 1 {
		t.Fatalf("got %d fetches, want 1 (aggregated)", len(f))
	}
	if f[0].Bytes != 90 {
		t.Fatalf("aggregated bytes = %d, want 90", f[0].Bytes)
	}
}

func TestFetchesRemainderGoesToLowReducers(t *testing.T) {
	tr := NewTracker()
	tr.RegisterMapOutput(0, 0, 0, 10, false) // 10 over 3 reducers: 4,3,3
	b := make([]int64, 3)
	for r := 0; r < 3; r++ {
		f, _ := tr.FetchesFor([]int{0}, r, 3)
		if len(f) > 0 {
			b[r] = f[0].Bytes
		}
	}
	if b[0] != 4 || b[1] != 3 || b[2] != 3 {
		t.Fatalf("split = %v, want [4 3 3]", b)
	}
}

func TestFetchesMultipleParents(t *testing.T) {
	tr := NewTracker()
	tr.RegisterMapOutput(0, 0, 0, 100, false)
	tr.RegisterMapOutput(1, 0, 0, 100, true) // in-memory shuffle from another parent
	f, _ := tr.FetchesFor([]int{0, 1}, 0, 1)
	if len(f) != 2 {
		t.Fatalf("got %d fetches, want 2 (disk and mem kept separate)", len(f))
	}
	if f[0].FromMem || !f[1].FromMem {
		t.Fatalf("ordering: disk first then mem, got %+v", f)
	}
	if f[0].Bytes != 100 || f[1].Bytes != 100 {
		t.Fatalf("bytes = %d, %d; want 100 each", f[0].Bytes, f[1].Bytes)
	}
}

func TestFetchesErrors(t *testing.T) {
	tr := NewTracker()
	if _, err := tr.FetchesFor([]int{7}, 0, 1); err == nil {
		t.Error("missing parent stage accepted")
	}
	tr.RegisterMapOutput(0, 0, 0, 10, false)
	if _, err := tr.FetchesFor([]int{0}, 5, 2); err == nil {
		t.Error("out-of-range reducer accepted")
	}
	if _, err := tr.FetchesFor([]int{0}, 0, 0); err == nil {
		t.Error("zero reducers accepted")
	}
}

func TestZeroByteOutputsProduceNoFetches(t *testing.T) {
	tr := NewTracker()
	tr.RegisterMapOutput(0, 0, 0, 0, false)
	f, err := tr.FetchesFor([]int{0}, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 0 {
		t.Fatalf("got %d fetches for zero-byte map output, want 0", len(f))
	}
}

func TestStageOutputBytesAndClear(t *testing.T) {
	tr := NewTracker()
	tr.RegisterMapOutput(3, 0, 0, 40, false)
	tr.RegisterMapOutput(3, 1, 1, 60, false)
	if got := tr.StageOutputBytes(3); got != 100 {
		t.Fatalf("StageOutputBytes = %d, want 100", got)
	}
	tr.Clear(3)
	if got := tr.StageOutputBytes(3); got != 0 {
		t.Fatalf("after Clear = %d, want 0", got)
	}
}

// TestMinFetchBytesIsFloorShare pins MinFetchBytes to what FetchesFor
// actually plans: 10 bytes over 3 reducers splits 4/3/3, so the smallest
// real fetch — and the bound — is the floor share 3, not the rounded-up 4.
// With fewer bytes than reducers the smallest planned fetch is one remainder
// byte.
func TestMinFetchBytesIsFloorShare(t *testing.T) {
	tr := NewTracker()
	tr.RegisterMapOutput(0, 0, 0, 10, false)
	if got := tr.MinFetchBytes(3); got != 3 {
		t.Fatalf("MinFetchBytes(3) = %d, want 3 (floor of 10/3)", got)
	}
	tr.Clear(0)
	tr.RegisterMapOutput(0, 0, 0, 2, false)
	if got := tr.MinFetchBytes(3); got != 1 {
		t.Fatalf("MinFetchBytes(3) = %d, want 1 (remainder byte)", got)
	}
	if got := tr.MinFetchBytes(0); got != 0 {
		t.Fatalf("MinFetchBytes(0) = %d, want 0", got)
	}
}

// Property: MinFetchBytes never exceeds any fetch FetchesFor plans, so a
// lookahead horizon derived from it stays conservative — no real transfer
// can complete inside a window the bound opened.
func TestPropertyMinFetchBytesLowerBoundsFetches(t *testing.T) {
	f := func(sizes []uint16, reducersRaw uint8) bool {
		numReducers := int(reducersRaw)%16 + 1
		tr := NewTracker()
		anyBytes := false
		for i, s := range sizes {
			tr.RegisterMapOutput(0, i, i%5, int64(s), i%2 == 0)
			if s > 0 {
				anyBytes = true
			}
		}
		min := tr.MinFetchBytes(numReducers)
		if !anyBytes {
			return min == 0
		}
		if min <= 0 {
			return false
		}
		for r := 0; r < numReducers; r++ {
			fs, err := tr.FetchesFor([]int{0}, r, numReducers)
			if err != nil {
				return false
			}
			for _, fe := range fs {
				if fe.Bytes < min {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the sum of all reducers' fetch bytes equals the total registered
// map output, for any number of maps, machines, and reducers.
func TestPropertyConservation(t *testing.T) {
	f := func(sizes []uint16, reducersRaw uint8) bool {
		numReducers := int(reducersRaw)%16 + 1
		tr := NewTracker()
		var total int64
		for i, s := range sizes {
			tr.RegisterMapOutput(0, i, i%5, int64(s), i%2 == 0)
			total += int64(s)
		}
		if len(sizes) == 0 {
			return true
		}
		var got int64
		for r := 0; r < numReducers; r++ {
			fs, err := tr.FetchesFor([]int{0}, r, numReducers)
			if err != nil {
				return false
			}
			for _, fe := range fs {
				got += fe.Bytes
			}
		}
		return got == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
