// Package shuffle tracks map outputs between stages, playing the role of
// Spark's MapOutputTracker: when a stage finishes, each of its tasks has
// registered where it ran and how much shuffle data it produced; reduce
// tasks in child stages then plan fetches against those locations.
package shuffle

import (
	"fmt"
	"sort"

	"repro/internal/task"
)

// mapStatus is one map task's registered output.
type mapStatus struct {
	taskIdx int
	machine int
	bytes   int64
	inMem   bool
}

// fetchKey aggregates fetch bytes per (machine, parent stage, in-memory).
type fetchKey struct {
	machine int
	stage   int
	inMem   bool
}

// Tracker records map outputs per stage, keyed by task index so that a
// re-executed task replaces its earlier registration (fault recovery) and a
// machine's outputs can be invalidated when it fails.
type Tracker struct {
	byStage map[int]map[int]mapStatus
	// Scratch reused across FetchesFor calls (the tracker, like the engine
	// it serves, is single-threaded): resolving every reduce task of a wide
	// stage would otherwise allocate a map and a key slice per task.
	aggScratch map[fetchKey]int64
	keyScratch []fetchKey
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{byStage: make(map[int]map[int]mapStatus)}
}

// RegisterMapOutput records that task taskIdx of the given stage ran on
// machine and produced shuffleBytes of output (inMem if the stage keeps
// shuffle data in memory). Re-registering an index overwrites the earlier
// entry.
func (tr *Tracker) RegisterMapOutput(stageID, taskIdx, machine int, shuffleBytes int64, inMem bool) {
	m := tr.byStage[stageID]
	if m == nil {
		m = make(map[int]mapStatus)
		tr.byStage[stageID] = m
	}
	m[taskIdx] = mapStatus{taskIdx: taskIdx, machine: machine, bytes: shuffleBytes, inMem: inMem}
}

// RemoveMachine drops every registration the stage holds on the given
// machine (the machine failed, its shuffle files are gone) and returns the
// affected task indices, which must be re-executed.
func (tr *Tracker) RemoveMachine(stageID, machine int) []int {
	var lost []int
	for idx, st := range tr.byStage[stageID] {
		if st.machine == machine {
			lost = append(lost, idx)
			delete(tr.byStage[stageID], idx)
		}
	}
	sort.Ints(lost)
	return lost
}

// StageOutputBytes reports the total registered shuffle output of a stage.
func (tr *Tracker) StageOutputBytes(stageID int) int64 {
	var sum int64
	for _, s := range tr.byStage[stageID] {
		sum += s.bytes
	}
	return sum
}

// FetchesFor plans reducer r of numReducers' fetches over the shuffle
// outputs of the given parent stages. Each map output is split evenly over
// reducers (remainder bytes go to the lowest-indexed reducers, so reducer
// loads differ by at most one byte per map). Fetches are aggregated per
// (machine, in-memory) and returned in deterministic machine order.
func (tr *Tracker) FetchesFor(parentIDs []int, r, numReducers int) ([]task.Fetch, error) {
	if numReducers <= 0 || r < 0 || r >= numReducers {
		return nil, fmt.Errorf("shuffle: reducer %d of %d out of range", r, numReducers)
	}
	if tr.aggScratch == nil {
		tr.aggScratch = make(map[fetchKey]int64)
	}
	agg := tr.aggScratch
	for k := range agg {
		delete(agg, k)
	}
	for _, pid := range parentIDs {
		statuses, ok := tr.byStage[pid]
		if !ok {
			return nil, fmt.Errorf("shuffle: stage %d has no registered map output", pid)
		}
		for _, st := range statuses {
			per := st.bytes / int64(numReducers)
			if int64(r) < st.bytes%int64(numReducers) {
				per++
			}
			if per == 0 {
				continue
			}
			agg[fetchKey{st.machine, pid, st.inMem}] += per
		}
	}
	keys := tr.keyScratch[:0]
	for k := range agg {
		keys = append(keys, k)
	}
	// Insertion sort: the key count is bounded by machines × parent stages
	// (a handful), and unlike sort.Slice this allocates nothing.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keyLess(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	tr.keyScratch = keys
	out := make([]task.Fetch, 0, len(keys))
	for _, k := range keys {
		out = append(out, task.Fetch{From: k.machine, Bytes: agg[k], FromMem: k.inMem, Stage: k.stage})
	}
	return out, nil
}

// keyLess orders fetch keys by machine, then parent stage, then disk before
// memory.
func keyLess(a, b fetchKey) bool {
	if a.machine != b.machine {
		return a.machine < b.machine
	}
	if a.stage != b.stage {
		return a.stage < b.stage
	}
	return !a.inMem && b.inMem
}

// Clear drops a stage's outputs (a completed job's shuffle files being
// cleaned up).
func (tr *Tracker) Clear(stageID int) {
	delete(tr.byStage, stageID)
}

// MinFetchBytes reports the smallest nonzero per-reducer fetch any reducer of
// a numReducers-wide child stage could plan against the currently registered
// map outputs. FetchesFor gives remainder bytes to the lowest-indexed
// reducers, so the smallest fetch an output actually produces is its floor
// share — or a single remainder byte when the floor is zero (zero-byte
// fetches are never planned). Zero when nothing is registered.
//
// This is the shuffle layer's boundary export for the sharded engine: the
// soonest a shuffle boundary can move data between machines is this many
// bytes over the fastest link (netsim.Fabric.MinTransferLatency), so a
// scheduler that knows the upcoming stage widths can tighten its lookahead
// horizon beyond the static one-byte floor cluster.LookaheadHorizon assumes.
func (tr *Tracker) MinFetchBytes(numReducers int) int64 {
	if numReducers <= 0 {
		return 0
	}
	var min int64
	for _, stage := range tr.byStage {
		for _, st := range stage {
			if st.bytes <= 0 {
				continue
			}
			per := st.bytes / int64(numReducers)
			if per == 0 {
				// Fewer bytes than reducers: the low-indexed reducers each
				// fetch one remainder byte, the rest fetch nothing.
				per = 1
			}
			if min == 0 || per < min {
				min = per
			}
		}
	}
	return min
}
