package jobsched

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Config tunes driver policies beyond the paper's defaults.
type Config struct {
	// Speculation launches backup copies of straggling tasks (Spark's
	// spark.speculation): once a stage is mostly complete, a task running
	// far beyond the median completed duration gets a second attempt on
	// another machine, and the first finisher wins.
	Speculation bool
	// SpeculationMultiplier is how many times the median completed-task
	// duration a task must exceed to be speculated. Default 1.5.
	SpeculationMultiplier float64
	// SpeculationMinFraction is the completed fraction of the stage
	// required before any speculation. Default 0.75.
	SpeculationMinFraction float64

	// MaxTaskFailures bounds how many attempts of a single task may fail —
	// transient executor faults, injected kills, fetch timeouts; attempts
	// lost to a machine crash are not charged — before the job aborts with
	// an error on its JobHandle (Spark's spark.task.maxFailures). Default 4.
	MaxTaskFailures int
	// ExcludeAfterFailures is the per-machine failed-attempt count at which
	// the machine is excluded from new task assignments (Spark's executor
	// blacklisting / health tracker). The count resets on re-admission and
	// on recovery. Default 3; set to -1 to disable exclusion.
	ExcludeAfterFailures int
	// ExcludeBackoff is the first exclusion's length in virtual seconds;
	// each consecutive exclusion of the same machine doubles the backoff,
	// up to MaxExcludeBackoff. Default 30.
	ExcludeBackoff sim.Duration
	// MaxExcludeBackoff caps the exponential exclusion backoff: doubling
	// stops at the largest value not exceeding this duration. Default 64×
	// ExcludeBackoff. A cap below ExcludeBackoff leaves every exclusion at
	// the base length.
	MaxExcludeBackoff sim.Duration
	// FetchRetryTimeout, when positive, bounds how long an attempt with
	// remote input (shuffle fetches or a non-local block read) may run
	// before the driver abandons it and retries the task elsewhere,
	// charging a failure to the attempt's machine. Zero disables the
	// timeout: the simulated network never loses data, so timeouts only
	// matter under injected faults.
	FetchRetryTimeout sim.Duration

	// Pools declares the named scheduling pools jobs are submitted into
	// (see PoolConfig). A pool named DefaultPool is created automatically
	// (weight 1, fair-share, unlimited) unless declared here, so the zero
	// Config behaves exactly like the single-tenant driver.
	Pools []PoolConfig

	// DisableControlPlaneCache turns off this driver's execution-template
	// memoization (see template.go): every submission rebuilds its template
	// from the spec. Results must be bit-identical either way — the knob
	// exists so tests can prove that.
	DisableControlPlaneCache bool

	// WorkerDispatch delegates stage execution to worker-side dispatchers
	// (see dispatcher.go): the driver keeps admission, pool fair-share, and
	// attribution, while each worker self-assigns its next task from the
	// shared pending views the moment one of its slots opens, and finished
	// stages broadcast their completion metadata peer-to-peer as netsim
	// control flows instead of per-task driver round trips. Execution
	// strategy only — results are bit-identical to the centralized path.
	// Speculation needs the driver's global view of running attempts, so a
	// driver with Speculation on keeps the centralized pass regardless.
	WorkerDispatch bool
}

func (c Config) withDefaults() Config {
	if c.SpeculationMultiplier <= 0 {
		c.SpeculationMultiplier = 1.5
	}
	if c.SpeculationMinFraction <= 0 {
		c.SpeculationMinFraction = 0.75
	}
	if c.MaxTaskFailures <= 0 {
		c.MaxTaskFailures = 4
	}
	if c.ExcludeAfterFailures == 0 {
		c.ExcludeAfterFailures = 3
	}
	if c.ExcludeBackoff <= 0 {
		c.ExcludeBackoff = 30
	}
	if c.MaxExcludeBackoff <= 0 {
		c.MaxExcludeBackoff = 64 * c.ExcludeBackoff
	}
	return c
}

// FailMachine makes machine m fail-stop at the current virtual time:
//
//   - no further tasks are assigned to it, and results from its in-flight
//     tasks are discarded (the attempts are re-queued elsewhere);
//   - shuffle outputs it held are invalidated; if a downstream stage still
//     needs them, the producing tasks re-execute on live machines — Spark's
//     FetchFailure → parent-stage resubmission path;
//   - reduce tasks that were mid-fetch from m are re-queued (their fetch
//     would have failed).
//
// Input blocks whose only replica lived on m are lost for good: a job that
// still needs such a block aborts with a descriptive error on its JobHandle
// (never a panic), as a single-replica DFS must. Schedule failures after the
// input stage, replicate, or accept the abort. A failed machine may later
// rejoin via RecoverMachine.
func (d *Driver) FailMachine(m int) error {
	if m < 0 || m >= len(d.execs) {
		return fmt.Errorf("jobsched: no machine %d", m)
	}
	if d.dead[m] {
		return nil
	}
	d.dead[m] = true
	d.free[m] = 0
	// Death supersedes exclusion; recovery starts with a clean record.
	d.excluded[m] = false
	d.machineFailures[m] = 0
	d.markGlobal()
	for _, h := range d.jobs {
		if h.finished() {
			continue
		}
		for _, st := range h.stages {
			d.killAttemptsOn(st, m)
		}
		// Invalidate lost shuffle outputs parent-by-parent so children can
		// be rolled back.
		for _, st := range h.stages {
			if st.spec.ShuffleOutBytes == 0 || !d.childNeedsOutput(h, st) {
				continue
			}
			lost := d.tracker.RemoveMachine(st.spec.ID+h.base, m)
			if len(lost) == 0 {
				continue
			}
			d.reopenStage(h, st, lost)
		}
	}
	d.schedule()
	return nil
}

// killAttemptsOn discards st's live attempts on machine m, re-queuing tasks
// that have no surviving attempt.
func (d *Driver) killAttemptsOn(st *stageState, m int) {
	for ti := range st.attempts {
		for _, a := range st.attempts[ti] {
			if a.machine != m || a.retired {
				continue
			}
			a.retired = true
			st.running--
			if !st.doneTasks[ti] && !st.hasLiveAttempt(ti) && !st.inPending(ti) {
				st.pending = append(st.pending, ti)
			}
		}
	}
	sort.Ints(st.pending)
}

// childNeedsOutput reports whether any unfinished stage reads st's shuffle
// output. A finished consumer already has its data; the lost files are then
// irrelevant.
func (d *Driver) childNeedsOutput(h *JobHandle, st *stageState) bool {
	for _, cid := range h.tpl.children[st.spec.ID] {
		if !h.stages[cid].finished {
			return true
		}
	}
	return false
}

// reopenStage rolls back the given completed task indices of st (their
// shuffle output is gone), re-blocks unfinished children, and re-queues
// children's in-flight attempts, which were fetching the lost data.
func (d *Driver) reopenStage(h *JobHandle, st *stageState, lost []int) {
	reopened := false
	for _, ti := range lost {
		if !st.doneTasks[ti] {
			continue
		}
		st.doneTasks[ti] = false
		st.completed--
		if !st.inPending(ti) && !st.hasLiveAttempt(ti) {
			st.pending = append(st.pending, ti)
		}
		reopened = true
	}
	sort.Ints(st.pending)
	if !reopened {
		return
	}
	if !st.finished {
		// The parent was still running: its children were never unblocked,
		// so there is nothing to roll back downstream.
		return
	}
	st.finished = false
	st.metrics.End = 0
	h.remaining++
	h.done = false
	for _, cid := range h.tpl.children[st.spec.ID] {
		child := h.stages[cid]
		if child.finished {
			continue
		}
		// Block the child until the parent refills, and abandon its
		// in-flight attempts: their fetch plans reference the lost files.
		child.waitingOn++
		for ti := range child.attempts {
			for _, a := range child.attempts[ti] {
				if a.retired {
					continue
				}
				a.retired = true
				child.running--
				// The slot is NOT freed here: the executor is still simulating
				// the abandoned attempt, and its completion callback releases
				// the slot exactly once (free = capacity − inflight).
				if !child.doneTasks[ti] && !child.inPending(ti) && !child.hasLiveAttempt(ti) {
					child.pending = append(child.pending, ti)
				}
			}
		}
		sort.Ints(child.pending)
	}
}

// maybeSpeculate launches a backup attempt on worker w for the slowest
// qualifying task of any running stage, returning true if one was launched.
func (d *Driver) maybeSpeculate(w int) bool {
	if !d.cfg.Speculation {
		return false
	}
	now := d.cluster.Engine.Now()
	for _, h := range d.jobs {
		if h.finished() {
			continue
		}
		for _, st := range h.stages {
			ti, ok := d.speculableTask(st, w, now)
			if !ok {
				continue
			}
			return d.launchAttempt(st, ti, w)
		}
	}
	return false
}

// speculableTask finds a task of st worth duplicating on w.
func (d *Driver) speculableTask(st *stageState, w int, now sim.Time) (int, bool) {
	if !st.started || st.finished || len(st.pending) > 0 || st.running == 0 {
		return 0, false
	}
	frac := float64(st.completed) / float64(st.spec.NumTasks)
	if frac < d.cfg.SpeculationMinFraction || len(st.durations) == 0 {
		return 0, false
	}
	threshold := d.cfg.SpeculationMultiplier * metrics.Percentile(st.durations, 50)
	bestIdx, bestAge := -1, 0.0
	for ti := range st.attempts {
		atts := st.attempts[ti]
		if st.doneTasks[ti] || len(atts) >= 2 {
			continue // already done or already speculated
		}
		for _, a := range atts {
			if a.retired || a.machine == w {
				continue
			}
			if age := float64(now - a.start); age > threshold && age > bestAge {
				bestIdx, bestAge = ti, age
			}
		}
	}
	if bestIdx < 0 {
		return 0, false
	}
	return bestIdx, true
}
