package jobsched

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/sim"
	"repro/internal/task"
)

func TestConfigWithDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.SpeculationMultiplier != 1.5 || c.SpeculationMinFraction != 0.75 {
		t.Fatalf("speculation defaults wrong: %+v", c)
	}
	if c.MaxTaskFailures != 4 {
		t.Fatalf("MaxTaskFailures default = %d, want 4", c.MaxTaskFailures)
	}
	if c.ExcludeAfterFailures != 3 {
		t.Fatalf("ExcludeAfterFailures default = %d, want 3", c.ExcludeAfterFailures)
	}
	if c.ExcludeBackoff != 30 {
		t.Fatalf("ExcludeBackoff default = %v, want 30", c.ExcludeBackoff)
	}
	if c.FetchRetryTimeout != 0 {
		t.Fatalf("FetchRetryTimeout default = %v, want 0 (disabled)", c.FetchRetryTimeout)
	}
	if c.MaxExcludeBackoff != 64*c.ExcludeBackoff {
		t.Fatalf("MaxExcludeBackoff default = %v, want 64× the %v base", c.MaxExcludeBackoff, c.ExcludeBackoff)
	}
	// Explicit values survive; -1 disables exclusion.
	c = Config{MaxTaskFailures: 2, ExcludeAfterFailures: -1, ExcludeBackoff: 5, FetchRetryTimeout: 7, MaxExcludeBackoff: 11}.withDefaults()
	if c.MaxTaskFailures != 2 || c.ExcludeAfterFailures != -1 || c.ExcludeBackoff != 5 || c.FetchRetryTimeout != 7 {
		t.Fatalf("explicit values not preserved: %+v", c)
	}
	if c.MaxExcludeBackoff != 11 {
		t.Fatalf("explicit MaxExcludeBackoff not preserved: %v", c.MaxExcludeBackoff)
	}
	// The default cap derives from an explicit base, not the default base.
	if c := (Config{ExcludeBackoff: 5}).withDefaults(); c.MaxExcludeBackoff != 320 {
		t.Fatalf("MaxExcludeBackoff from 5s base = %v, want 320", c.MaxExcludeBackoff)
	}
}

// faultEveryAttempt fails every attempt launched on `machine` (or everywhere
// when machine is -1) before `until` (sim.Forever for always).
type faultEveryAttempt struct {
	machine int
	until   sim.Time
}

func (f *faultEveryAttempt) AttemptFault(tk *task.Task, now sim.Time) (string, sim.Duration, bool) {
	if (f.machine < 0 || tk.Machine == f.machine) && now < f.until {
		return "test-injected fault", 0.1, true
	}
	return "", 0, false
}

// faultyDriver is monoDriver with a fault injector installed in the workers.
func faultyDriver(t *testing.T, n int, cfg Config, inj task.FaultInjector) (*Driver, *JobHandle) {
	t.Helper()
	c := testCluster(t, n)
	fs, _ := dfs.New(dfs.Config{Machines: n, DisksPerMachine: 1})
	g := core.NewGroup(c, core.Options{Faults: inj})
	execs := make([]task.Executor, n)
	for i, w := range g.Workers {
		execs[i] = w
	}
	d, err := NewWithConfig(c, fs, execs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := d.Submit(&task.JobSpec{Name: "j", Stages: []*task.StageSpec{
		{ID: 0, Name: "cpu", NumTasks: 48, OpCPU: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return d, h
}

func TestTaskRetryBudgetAbortsJob(t *testing.T) {
	// Every attempt everywhere fails: task 0 burns its budget and the job
	// aborts with a descriptive error instead of panicking or hanging.
	d, h := faultyDriver(t, 2, Config{ExcludeAfterFailures: -1}, &faultEveryAttempt{machine: -1, until: sim.Forever})
	if err := d.Wait(); err == nil {
		t.Fatal("Wait returned nil for a doomed job")
	}
	if !h.Failed() || h.Done() {
		t.Fatalf("job state wrong: failed=%v done=%v", h.Failed(), h.Done())
	}
	if err := h.Err(); err == nil || !strings.Contains(err.Error(), "MaxTaskFailures") {
		t.Fatalf("abort error %v does not mention MaxTaskFailures", err)
	}
}

func TestTransientFaultsRetryToCompletion(t *testing.T) {
	// Faults stop at t=1; every task eventually succeeds and the job
	// completes despite the early failures. Failed attempts retire in
	// ~0.1 s, so tasks can burn many attempts inside the window — the
	// budget must be generous enough to outlast it.
	d, h := faultyDriver(t, 2, Config{MaxTaskFailures: 50, ExcludeAfterFailures: -1}, &faultEveryAttempt{machine: -1, until: 1})
	if err := d.Wait(); err != nil {
		t.Fatal(err)
	}
	if !h.Done() {
		t.Fatal("job incomplete")
	}
	for i, tm := range h.Metrics.Stages[0].Tasks {
		if tm == nil {
			t.Fatalf("task %d has no winning metrics", i)
		}
		if tm.Failed {
			t.Fatalf("task %d recorded a failed attempt as its result", i)
		}
	}
}

func TestExclusionBlocksSchedulingUntilBackoffExpires(t *testing.T) {
	// Machine 0 fails every attempt before t=2. After 2 failures it is
	// excluded for 5 s; after readmission (t >= exclusion start + 5, and the
	// fault window over) it must receive and complete tasks again.
	inj := &faultEveryAttempt{machine: 0, until: 2}
	c := testCluster(t, 3)
	fs, _ := dfs.New(dfs.Config{Machines: 3, DisksPerMachine: 1})
	g := core.NewGroup(c, core.Options{Faults: inj})
	execs := make([]task.Executor, 3)
	for i, w := range g.Workers {
		execs[i] = w
	}
	d, err := NewWithConfig(c, fs, execs, Config{ExcludeAfterFailures: 2, ExcludeBackoff: 5, MaxTaskFailures: 20})
	if err != nil {
		t.Fatal(err)
	}
	h, err := d.Submit(&task.JobSpec{Name: "j", Stages: []*task.StageSpec{
		{ID: 0, Name: "cpu", NumTasks: 64, OpCPU: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Probe while the engine runs: excluded soon after the failures, and no
	// longer excluded after the backoff expires.
	c.Engine.At(1, func() {
		if !d.Excluded(0) {
			t.Error("machine 0 not excluded after repeated failures")
		}
	})
	c.Engine.At(6.5, func() {
		if d.Excluded(0) {
			t.Error("machine 0 still excluded after backoff expiry")
		}
	})
	if err := d.Wait(); err != nil {
		t.Fatal(err)
	}
	if !h.Done() {
		t.Fatal("job incomplete")
	}
	// While excluded, machine 0 must have started nothing; after
	// readmission it must have contributed.
	backToWork := false
	for i, tm := range h.Metrics.Stages[0].Tasks {
		if tm.Machine != 0 {
			continue
		}
		if tm.Start > 0.2 && tm.Start < 5 {
			t.Fatalf("task %d started on excluded machine 0 at %v", i, tm.Start)
		}
		if tm.Start >= 5 {
			backToWork = true
		}
	}
	if !backToWork {
		t.Fatal("machine 0 never rejoined scheduling after backoff expiry")
	}
}

func TestRecoverMachineRejoinsScheduling(t *testing.T) {
	c, d := monoDriver(t, 4, Config{})
	h, err := d.Submit(&task.JobSpec{Name: "j", Stages: []*task.StageSpec{
		{ID: 0, Name: "cpu", NumTasks: 64, OpCPU: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	c.Engine.At(1, func() { _ = d.FailMachine(3) })
	c.Engine.At(5, func() {
		if err := d.RecoverMachine(3); err != nil {
			t.Error(err)
		}
	})
	if err := d.Wait(); err != nil {
		t.Fatal(err)
	}
	if !h.Done() {
		t.Fatal("job incomplete after crash + recovery")
	}
	rejoined := false
	for i, tm := range h.Metrics.Stages[0].Tasks {
		if tm.Machine != 3 {
			continue
		}
		if tm.Start > 1 && tm.Start < 5 {
			t.Fatalf("task %d ran on machine 3 while it was down (start %v)", i, tm.Start)
		}
		if tm.Start >= 5 {
			rejoined = true
		}
	}
	if !rejoined {
		t.Fatal("recovered machine received no tasks after rejoining")
	}
}

func TestRecoverMachineValidation(t *testing.T) {
	_, d := monoDriver(t, 2, Config{})
	if err := d.RecoverMachine(9); err == nil {
		t.Fatal("out-of-range machine accepted")
	}
	if err := d.RecoverMachine(1); err != nil {
		t.Fatal("recovering a live machine should be a no-op, not an error")
	}
}

func TestRecoveryRestoresDFSReplicas(t *testing.T) {
	// Single-replica input on machine 1: while 1 is down its block is
	// unreachable, but a job submitted after RecoverMachine resolves and
	// completes — recovery restores the replicas, not just the slots.
	c, d := monoDriver(t, 2, Config{})
	file, err := d.fs.CreateAt("/in", []int64{64e6, 64e6}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	var h *JobHandle
	c.Engine.At(0.5, func() { _ = d.FailMachine(1) })
	c.Engine.At(3, func() {
		if err := d.RecoverMachine(1); err != nil {
			t.Error(err)
			return
		}
		h, err = d.Submit(&task.JobSpec{Name: "j", Stages: []*task.StageSpec{
			{ID: 0, Name: "read", NumTasks: 2, OpCPU: 1, InputBlocks: file.Blocks},
		}})
		if err != nil {
			t.Error(err)
		}
	})
	if err := d.Wait(); err != nil {
		t.Fatal(err)
	}
	if h == nil || !h.Done() {
		t.Fatal("job submitted after recovery did not complete")
	}
}

func TestUnresolvableBlockAbortsInsteadOfPanicking(t *testing.T) {
	_, d := monoDriver(t, 2, Config{})
	file, err := d.fs.CreateAt("/in", []int64{64e6, 64e6}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.FailMachine(1); err != nil {
		t.Fatal(err)
	}
	h, err := d.Submit(&task.JobSpec{Name: "doomed", Stages: []*task.StageSpec{
		{ID: 0, Name: "read", NumTasks: 2, OpCPU: 1, InputBlocks: file.Blocks},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Wait(); err == nil {
		t.Fatal("job with an unreachable single-replica block should abort")
	}
	if err := h.Err(); err == nil || !strings.Contains(err.Error(), "replica") {
		t.Fatalf("abort error %v does not describe the lost replica", err)
	}
}

func TestAllMachinesDeadStallsWithErrorNotPanic(t *testing.T) {
	c, d := monoDriver(t, 2, Config{})
	h, err := d.Submit(&task.JobSpec{Name: "j", Stages: []*task.StageSpec{
		{ID: 0, Name: "cpu", NumTasks: 16, OpCPU: 5, InputFromMem: true, InputBytesPerTask: 1e6},
	}})
	if err != nil {
		t.Fatal(err)
	}
	c.Engine.At(1, func() {
		_ = d.FailMachine(0)
		_ = d.FailMachine(1)
	})
	if err := d.Wait(); err == nil {
		t.Fatal("Wait returned nil with every machine dead")
	}
	if err := h.Err(); err == nil || !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("stall error %v does not describe the deadlock", err)
	}
	if h.Done() {
		t.Fatal("job cannot be done with all machines dead")
	}
}

func TestFailRunningTasksRetriesElsewhere(t *testing.T) {
	c, d := monoDriver(t, 3, Config{ExcludeAfterFailures: -1})
	h, err := d.Submit(&task.JobSpec{Name: "j", Stages: []*task.StageSpec{
		{ID: 0, Name: "cpu", NumTasks: 24, OpCPU: 3},
	}})
	if err != nil {
		t.Fatal(err)
	}
	killed := 0
	c.Engine.At(1, func() { killed = d.FailRunningTasks(1, 2, "test kill") })
	if err := d.Wait(); err != nil {
		t.Fatal(err)
	}
	if killed != 2 {
		t.Fatalf("killed %d attempts, want 2", killed)
	}
	if !h.Done() {
		t.Fatal("job incomplete after injected kills")
	}
	for i, tm := range h.Metrics.Stages[0].Tasks {
		if tm == nil || tm.Failed {
			t.Fatalf("task %d lacks a successful result", i)
		}
	}
}

func TestFetchTimeoutRetriesStalledReduce(t *testing.T) {
	// Machine 0's link collapses to 0.1% as the reduce starts fetching; the
	// fetch timeout abandons the stalled attempts and retries until the link
	// recovers, after which the job completes.
	// Light reduce CPU keeps a healthy attempt well under the 3 s timeout —
	// the timeout bounds the whole attempt, not just the fetch phase.
	c, d := monoDriver(t, 3, Config{FetchRetryTimeout: 3, MaxTaskFailures: 20, ExcludeAfterFailures: -1})
	h, err := d.Submit(&task.JobSpec{Name: "mr", Stages: []*task.StageSpec{
		{ID: 0, Name: "map", NumTasks: 12, OpCPU: 1, ShuffleOutBytes: 20e6},
		{ID: 1, Name: "reduce", NumTasks: 6, OpCPU: 0.5, ParentIDs: []int{0}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	c.Engine.At(0.5, func() { c.Fabric.SetLinkSpeed(0, 0.001) })
	c.Engine.At(12, func() { c.Fabric.SetLinkSpeed(0, 1) })
	if err := d.Wait(); err != nil {
		t.Fatal(err)
	}
	if !h.Done() {
		t.Fatal("job incomplete after link recovery")
	}
	if end := h.Metrics.End; end <= 12 {
		t.Fatalf("job finished at %v, before the link recovered — timeout never fired?", end)
	}
}

func TestReopenStageDoesNotInflateSlots(t *testing.T) {
	// Regression: retiring a child stage's in-flight attempts on a machine
	// failure must not free their slots immediately — the executor zombies
	// release them on completion. Double-freeing inflates free[] and
	// over-subscribes workers.
	c := testCluster(t, 2)
	d, fakes := fakeDriver(t, c, 2, 1)
	h, err := d.Submit(mapReduceJob(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	// Fail machine 1 when reduces are in flight (maps take 2 rounds of 1 s).
	c.Engine.At(2.5, func() { _ = d.FailMachine(1) })
	d.Run()
	if !h.Done() {
		t.Fatal("job incomplete")
	}
	for i, f := range fakes {
		if f.maxInflight > f.slots {
			t.Fatalf("machine %d ran %d concurrent tasks with %d slots", i, f.maxInflight, f.slots)
		}
	}
}

func TestSpeculableTaskEdgeCases(t *testing.T) {
	c, d := monoDriver(t, 2, Config{Speculation: true, SpeculationMultiplier: 1.5, SpeculationMinFraction: 0.5})
	now := c.Engine.Now() + 100
	spec := &task.StageSpec{ID: 0, Name: "s", NumTasks: 4}
	base := func() *stageState {
		return &stageState{
			spec:      spec,
			started:   true,
			running:   1,
			completed: 3,
			doneTasks: []bool{true, true, true, false},
			durations: []float64{1, 1, 1},
			attempts:  [][]*attempt{nil, nil, nil, {{machine: 1, start: 0}}},
			failures:  make([]int, 4),
		}
	}

	if _, ok := d.speculableTask(base(), 0, now); !ok {
		t.Fatal("qualifying straggler not speculated")
	}
	st := base()
	st.started = false
	if _, ok := d.speculableTask(st, 0, now); ok {
		t.Fatal("speculated an unstarted stage")
	}
	st = base()
	st.finished = true
	if _, ok := d.speculableTask(st, 0, now); ok {
		t.Fatal("speculated a finished stage")
	}
	st = base()
	st.pending = []int{3}
	if _, ok := d.speculableTask(st, 0, now); ok {
		t.Fatal("speculated while regular work is still pending")
	}
	st = base()
	st.durations = nil
	if _, ok := d.speculableTask(st, 0, now); ok {
		t.Fatal("speculated with no completed durations to judge against")
	}
	st = base()
	st.completed = 1
	st.doneTasks = []bool{true, false, false, false}
	if _, ok := d.speculableTask(st, 0, now); ok {
		t.Fatal("speculated below the minimum completed fraction")
	}
	st = base()
	st.attempts[3] = append(st.attempts[3], &attempt{machine: 0, start: 0})
	if _, ok := d.speculableTask(st, 0, now); ok {
		t.Fatal("speculated a task that already has a backup attempt")
	}
	st = base()
	st.attempts[3][0].retired = true
	if _, ok := d.speculableTask(st, 0, now); ok {
		t.Fatal("speculated a retired attempt")
	}
	st = base()
	if _, ok := d.speculableTask(st, 1, now); ok {
		t.Fatal("speculated onto the same machine as the original attempt")
	}
	// Zero-duration completions: threshold is zero, so any positive age
	// qualifies — must not divide by zero or reject.
	st = base()
	st.durations = []float64{0, 0, 0}
	if ti, ok := d.speculableTask(st, 0, now); !ok || ti != 3 {
		t.Fatalf("zero-duration history: got (%d, %v), want task 3 speculated", ti, ok)
	}
}
