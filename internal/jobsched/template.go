package jobsched

import (
	"strconv"

	"repro/internal/sim"
	"repro/internal/task"
)

// This file is the driver's execution-template cache: the control-plane work
// of instantiating a job — walking the stage DAG for dependency counts,
// children lists, and hasChildren flags, and sizing every per-task
// bookkeeping array — depends only on the job's *shape* (stage count, task
// counts, parent edges). Repeated submissions of same-shaped jobs (the
// multijob arrival stream, a steady-state service replaying one query) reuse
// a memoized jobTemplate instead of re-deriving all of it per submission,
// and instantiate their per-task arrays from a handful of slab allocations
// instead of several per stage.
//
// Safety: a template holds ONLY immutable shape data. Everything the
// resilience machinery perturbs at runtime — placement, machine death and
// exclusion, speculative and retried attempts, rolled-back stages — lives in
// the per-job stageState instances, which are always freshly instantiated.
// A cached template therefore never goes stale; the remaining hazard is a
// fingerprint collision mapping two differently-shaped specs to one
// template, which templateFor guards against by structurally re-validating
// every cache hit and bypassing the cache (fresh build) on mismatch.

// templateCacheEnabled is the package-level switch for the execution-template
// cache. Tests flip it off to prove cache-on and cache-off runs are
// bit-identical; Config.DisableControlPlaneCache is the per-driver knob.
var templateCacheEnabled = true

// SetTemplateCache enables or disables template memoization process-wide and
// reports the previous setting. With the cache off, every submission builds
// its template from scratch — same instantiation path, no reuse — so any
// behavioural difference between the two settings is a bug.
func SetTemplateCache(enabled bool) bool {
	prev := templateCacheEnabled
	templateCacheEnabled = enabled
	return prev
}

// TemplateCacheEnabled reports the package-level cache switch.
func TemplateCacheEnabled() bool { return templateCacheEnabled }

// jobTemplate is the memoized shape of one job: DAG bookkeeping that Submit
// would otherwise recompute per submission.
type jobTemplate struct {
	numStages  int
	totalTasks int
	numTasks   []int   // per stage
	waitingOn  []int   // per stage: initial unfinished-parent count
	children   [][]int // per stage: stage IDs consuming its output, ascending
	// hasChildren: some stage reads this one's shuffle output, so map outputs
	// must register even for zero-byte producers.
	hasChildren []bool
}

// matches re-validates a cache hit structurally (the collision guard).
func (t *jobTemplate) matches(spec *task.JobSpec) bool {
	if t.numStages != len(spec.Stages) {
		return false
	}
	for i, ss := range spec.Stages {
		if t.numTasks[i] != ss.NumTasks || t.waitingOn[i] != len(ss.ParentIDs) {
			return false
		}
		for _, pid := range ss.ParentIDs {
			found := false
			for _, cid := range t.children[pid] {
				if cid == i {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
	}
	return true
}

// buildTemplate derives a job's template from its spec.
func buildTemplate(spec *task.JobSpec) *jobTemplate {
	n := len(spec.Stages)
	t := &jobTemplate{
		numStages:   n,
		numTasks:    make([]int, n),
		waitingOn:   make([]int, n),
		children:    make([][]int, n),
		hasChildren: make([]bool, n),
	}
	for i, ss := range spec.Stages {
		t.numTasks[i] = ss.NumTasks
		t.totalTasks += ss.NumTasks
		t.waitingOn[i] = len(ss.ParentIDs)
		for _, pid := range ss.ParentIDs {
			t.children[pid] = append(t.children[pid], i)
			t.hasChildren[pid] = true
		}
	}
	return t
}

// fingerprint serializes the spec's shape into the driver's scratch buffer.
// Only shape fields enter the key: stage count, per-stage task counts, and
// parent edges — exactly what buildTemplate reads.
func (d *Driver) fingerprint(spec *task.JobSpec) []byte {
	buf := d.fpScratch[:0]
	buf = strconv.AppendInt(buf, int64(len(spec.Stages)), 10)
	for _, ss := range spec.Stages {
		buf = append(buf, '|')
		buf = strconv.AppendInt(buf, int64(ss.NumTasks), 10)
		for _, pid := range ss.ParentIDs {
			buf = append(buf, ',')
			buf = strconv.AppendInt(buf, int64(pid), 10)
		}
	}
	d.fpScratch = buf
	return buf
}

// templateFor returns the job's template, from the cache when allowed. Cache
// hits are structurally re-validated; a mismatch (fingerprint collision)
// bypasses the cache with a fresh build rather than trusting a wrong shape.
func (d *Driver) templateFor(spec *task.JobSpec) *jobTemplate {
	if !templateCacheEnabled || d.cfg.DisableControlPlaneCache {
		return buildTemplate(spec)
	}
	fp := d.fingerprint(spec)
	if t, ok := d.templates[string(fp)]; ok {
		if t.matches(spec) {
			return t
		}
		return buildTemplate(spec)
	}
	t := buildTemplate(spec)
	if d.templates == nil {
		d.templates = make(map[string]*jobTemplate)
	}
	d.templates[string(fp)] = t
	return t
}

// instantiate builds h's stage states from the template using slab
// allocation: one backing array per bookkeeping kind for the whole job,
// carved into full-capacity per-stage windows, instead of several
// allocations per stage. Growth past a window (a retried task re-entering
// pending, a speculative second attempt) falls back to a normal append-copy,
// so the windows are a fast path, not a limit.
func (d *Driver) instantiate(h *JobHandle, tpl *jobTemplate) {
	spec := h.Spec
	n := tpl.numStages
	stageSlab := make([]stageState, n)
	metricSlab := make([]task.StageMetrics, n)
	h.stages = make([]*stageState, n)
	h.Metrics.Stages = make([]*task.StageMetrics, n)

	total := tpl.totalTasks
	pendingSlab := make([]int, total)
	doneSlab := make([]bool, total)
	failSlab := make([]int, total)
	durSlab := make([]float64, total)
	tmSlab := make([]*task.TaskMetrics, total)
	attSlots := make([][]*attempt, total)
	// attBacking gives every task's attempt list a cap-1 window, so the
	// common case — exactly one attempt — appends without allocating.
	attBacking := make([]*attempt, total)

	off := 0
	for i, ss := range spec.Stages {
		nt := ss.NumTasks
		end := off + nt
		m := &metricSlab[i]
		m.Spec = ss
		m.Tasks = tmSlab[off:end:end]
		st := &stageSlab[i]
		st.job = h
		st.spec = ss
		st.metrics = m
		st.waitingOn = tpl.waitingOn[i]
		st.hasChildren = tpl.hasChildren[i]
		st.pending = pendingSlab[off:end:end]
		for ti := 0; ti < nt; ti++ {
			st.pending[ti] = ti
		}
		st.doneTasks = doneSlab[off:end:end]
		st.failures = failSlab[off:end:end]
		st.durations = durSlab[off:off:end]
		st.attempts = attSlots[off:end:end]
		for ti := 0; ti < nt; ti++ {
			st.attempts[ti] = attBacking[off+ti : off+ti : off+ti+1]
		}
		h.stages[i] = st
		h.Metrics.Stages[i] = m
		off = end
	}
}

// attemptSlabChunk sizes the driver's attempt slab refills. Attempts are
// slab-chunked, not free-listed: a retired attempt can still be read
// arbitrarily late by its zombie completion callback or fetch timeout, so
// individual structs are never reused within a run.
const attemptSlabChunk = 128

// newAttempt carves one attempt from the driver's slab.
func (d *Driver) newAttempt(machine int, start sim.Time) *attempt {
	if len(d.attemptSlab) == 0 {
		d.attemptSlab = make([]attempt, attemptSlabChunk)
	}
	a := &d.attemptSlab[0]
	d.attemptSlab = d.attemptSlab[1:]
	a.machine, a.start = machine, start
	return a
}

// newTask carves one Task struct from the driver's slab. Tasks, like
// attempts, are handed to executors whose references outlive the launch, so
// they are amortized (one allocation per chunk), never recycled.
func (d *Driver) newTask() *task.Task {
	if len(d.taskSlab) == 0 {
		d.taskSlab = make([]task.Task, attemptSlabChunk)
	}
	t := &d.taskSlab[0]
	d.taskSlab = d.taskSlab[1:]
	return t
}

// completionOp carries one launched attempt's completion context, with the
// callback method value bound once at construction so every Launch does not
// allocate a fresh closure. An executor fires the callback exactly once, so
// the op recycles itself on entry after extracting its fields.
type completionOp struct {
	d   *Driver
	st  *stageState
	ti  int
	w   int
	att *attempt
	fn  func(*task.TaskMetrics) // op.run, bound once per struct
}

func (d *Driver) takeCompletion(st *stageState, ti, w int, att *attempt) *completionOp {
	var op *completionOp
	if n := len(d.completionPool); n > 0 {
		op = d.completionPool[n-1]
		d.completionPool[n-1] = nil
		d.completionPool = d.completionPool[:n-1]
	} else {
		op = &completionOp{d: d}
		op.fn = op.run
	}
	op.st, op.ti, op.w, op.att = st, ti, w, att
	return op
}

func (op *completionOp) run(m *task.TaskMetrics) {
	d, st, ti, w, att := op.d, op.st, op.ti, op.w, op.att
	op.st, op.att = nil, nil
	d.completionPool = append(d.completionPool, op)
	d.onAttemptDone(st, ti, w, att, m)
}

// timeoutOp is the pooled analogue for armFetchTimeout's timer callback.
type timeoutOp struct {
	d   *Driver
	st  *stageState
	ti  int
	w   int
	att *attempt
	fn  func() // op.run, bound once per struct
}

func (d *Driver) takeTimeout(st *stageState, ti, w int, att *attempt) *timeoutOp {
	var op *timeoutOp
	if n := len(d.timeoutPool); n > 0 {
		op = d.timeoutPool[n-1]
		d.timeoutPool[n-1] = nil
		d.timeoutPool = d.timeoutPool[:n-1]
	} else {
		op = &timeoutOp{d: d}
		op.fn = op.run
	}
	op.st, op.ti, op.w, op.att = st, ti, w, att
	return op
}

func (op *timeoutOp) run() {
	d, st, ti, w, att := op.d, op.st, op.ti, op.w, op.att
	op.st, op.att = nil, nil
	d.timeoutPool = append(d.timeoutPool, op)
	d.onFetchTimeout(st, ti, w, att)
}
