package jobsched

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/pipeexec"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/task"
)

// fakeExec is a scripted executor for driver-behaviour tests: every task
// takes a fixed duration and the executor records the in-flight high-water
// mark.
type fakeExec struct {
	id       int
	slots    int
	duration sim.Duration
	eng      *sim.Engine

	inflight    int
	maxInflight int
	launched    []int // task indices in launch order
}

func (f *fakeExec) MachineID() int          { return f.id }
func (f *fakeExec) MaxConcurrentTasks() int { return f.slots }
func (f *fakeExec) Launch(t *task.Task, done func(*task.TaskMetrics)) {
	f.inflight++
	if f.inflight > f.maxInflight {
		f.maxInflight = f.inflight
	}
	f.launched = append(f.launched, t.Index)
	start := f.eng.Now()
	f.eng.After(f.duration, func() {
		f.inflight--
		done(&task.TaskMetrics{
			StageID: t.Stage.ID, Index: t.Index, Machine: t.Machine,
			Start: start, End: f.eng.Now(),
		})
	})
}

func testCluster(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	spec := cluster.MachineSpec{
		Cores: 2,
		Disks: []resource.DiskSpec{
			{Kind: resource.HDD, SeqBW: 100e6, ContentionAlpha: 0.35},
		},
		NetBW:    100e6,
		MemBytes: 1 << 30,
	}
	c, err := cluster.New(n, spec)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func fakeDriver(t *testing.T, c *cluster.Cluster, slots int, dur sim.Duration) (*Driver, []*fakeExec) {
	t.Helper()
	fs, _ := dfs.New(dfs.Config{Machines: c.Size(), DisksPerMachine: 1})
	fakes := make([]*fakeExec, c.Size())
	execs := make([]task.Executor, c.Size())
	for i := range fakes {
		fakes[i] = &fakeExec{id: i, slots: slots, duration: dur, eng: c.Engine}
		execs[i] = fakes[i]
	}
	d, err := New(c, fs, execs)
	if err != nil {
		t.Fatal(err)
	}
	return d, fakes
}

func TestSingleStageRunsAllTasks(t *testing.T) {
	c := testCluster(t, 2)
	d, fakes := fakeDriver(t, c, 2, 1)
	job := &task.JobSpec{Name: "j", Stages: []*task.StageSpec{
		{ID: 0, Name: "s", NumTasks: 8, OpCPU: 1},
	}}
	h, err := d.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	ms := d.Run()
	if !h.Done() {
		t.Fatal("job not done")
	}
	// 8 tasks, 4 slots total, 1 s each: two waves, ends at 2.
	if ms[0].Duration() != 2 {
		t.Fatalf("job took %v, want 2 (two waves)", ms[0].Duration())
	}
	total := 0
	for _, f := range fakes {
		total += len(f.launched)
		if f.maxInflight > 2 {
			t.Fatalf("worker %d ran %d tasks at once, slots=2", f.id, f.maxInflight)
		}
	}
	if total != 8 {
		t.Fatalf("launched %d tasks, want 8", total)
	}
	for i, tm := range ms[0].Stages[0].Tasks {
		if tm == nil {
			t.Fatalf("task %d has no metrics", i)
		}
	}
}

func TestStageBarrier(t *testing.T) {
	c := testCluster(t, 2)
	d, fakes := fakeDriver(t, c, 4, 1)
	job := &task.JobSpec{Name: "j", Stages: []*task.StageSpec{
		{ID: 0, Name: "map", NumTasks: 4, OpCPU: 1, ShuffleOutBytes: 100},
		{ID: 1, Name: "reduce", NumTasks: 4, OpCPU: 1, ParentIDs: []int{0}},
	}}
	if _, err := d.Submit(job); err != nil {
		t.Fatal(err)
	}
	ms := d.Run()
	m0, m1 := ms[0].Stages[0], ms[0].Stages[1]
	if m1.Start < m0.End {
		t.Fatalf("reduce started at %v before map ended at %v", m1.Start, m0.End)
	}
	_ = fakes
}

func TestShuffleFetchesResolved(t *testing.T) {
	c := testCluster(t, 2)
	fs, _ := dfs.New(dfs.Config{Machines: 2, DisksPerMachine: 1})
	// Capture resolved tasks with a recording executor.
	var reduceTasks []*task.Task
	fakes := make([]task.Executor, 2)
	for i := 0; i < 2; i++ {
		i := i
		fakes[i] = &recordingExec{fakeExec: fakeExec{id: i, slots: 4, duration: 1, eng: c.Engine}, record: func(tk *task.Task) {
			if tk.Stage.ID == 1 {
				reduceTasks = append(reduceTasks, tk)
			}
		}}
	}
	d, _ := New(c, fs, fakes)
	job := &task.JobSpec{Name: "j", Stages: []*task.StageSpec{
		{ID: 0, Name: "map", NumTasks: 4, OpCPU: 1, ShuffleOutBytes: 1000},
		{ID: 1, Name: "reduce", NumTasks: 2, OpCPU: 1, ParentIDs: []int{0}},
	}}
	d.Submit(job)
	d.Run()
	if len(reduceTasks) != 2 {
		t.Fatalf("captured %d reduce tasks, want 2", len(reduceTasks))
	}
	var total int64
	for _, tk := range reduceTasks {
		if len(tk.Fetches) == 0 {
			t.Fatal("reduce task resolved with no fetches")
		}
		for _, f := range tk.Fetches {
			total += f.Bytes
			if f.Stage != 0 {
				t.Fatalf("fetch names parent stage %d, want 0", f.Stage)
			}
		}
	}
	if total != 4000 {
		t.Fatalf("reduce fetches total %d bytes, want 4000 (conservation)", total)
	}
}

type recordingExec struct {
	fakeExec
	record func(*task.Task)
}

func (r *recordingExec) Launch(t *task.Task, done func(*task.TaskMetrics)) {
	r.record(t)
	r.fakeExec.Launch(t, done)
}

func TestLocalityPreferred(t *testing.T) {
	c := testCluster(t, 4)
	fs, _ := dfs.New(dfs.Config{Machines: 4, DisksPerMachine: 1})
	f, err := fs.Create("/in", 8*dfs.DefaultBlockSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	var remote int
	execs := make([]task.Executor, 4)
	for i := 0; i < 4; i++ {
		execs[i] = &recordingExec{fakeExec: fakeExec{id: i, slots: 2, duration: 1, eng: c.Engine}, record: func(tk *task.Task) {
			if tk.RemoteRead != nil {
				remote++
			}
		}}
	}
	d, _ := New(c, fs, execs)
	job := &task.JobSpec{Name: "j", Stages: []*task.StageSpec{
		{ID: 0, Name: "map", NumTasks: 8, OpCPU: 1, InputBlocks: f.Blocks},
	}}
	d.Submit(job)
	d.Run()
	// Blocks are spread 2 per machine and each machine has 2 slots: a
	// locality-aware scheduler reads everything locally.
	if remote != 0 {
		t.Fatalf("%d tasks read remotely, want 0 (locality)", remote)
	}
}

func TestConcurrentJobsShareFairly(t *testing.T) {
	c := testCluster(t, 1)
	d, fakes := fakeDriver(t, c, 2, 1)
	mk := func(name string) *task.JobSpec {
		return &task.JobSpec{Name: name, Stages: []*task.StageSpec{
			{ID: 0, Name: "s", NumTasks: 4, OpCPU: 1},
		}}
	}
	ha, _ := d.Submit(mk("a"))
	hb, _ := d.Submit(mk("b"))
	ms := d.Run()
	// 8 tasks on 2 slots: 4 waves, total 4 s; with fair sharing both jobs
	// finish near the end rather than job a monopolizing the first 2 s.
	if ms[0].End != 4 && ms[1].End != 4 {
		t.Fatalf("ends %v, %v; one job should finish at 4", ms[0].End, ms[1].End)
	}
	if ha.Metrics.End <= 2 || hb.Metrics.End <= 2 {
		t.Fatalf("ends %v, %v: looks like FIFO, want fair interleaving",
			ha.Metrics.End, hb.Metrics.End)
	}
	_ = fakes
}

func TestDriverWithMonotasksExecutor(t *testing.T) {
	c := testCluster(t, 2)
	fs, _ := dfs.New(dfs.Config{Machines: 2, DisksPerMachine: 1})
	f, _ := fs.Create("/in", 4*dfs.DefaultBlockSize, 1)
	g := core.NewGroup(c, core.Options{})
	execs := make([]task.Executor, 2)
	for i, w := range g.Workers {
		execs[i] = w
	}
	d, _ := New(c, fs, execs)
	job := &task.JobSpec{Name: "wc", Stages: []*task.StageSpec{
		{ID: 0, Name: "map", NumTasks: 4, OpCPU: 0.5, InputBlocks: f.Blocks, ShuffleOutBytes: 16e6},
		{ID: 1, Name: "reduce", NumTasks: 2, OpCPU: 0.3, ParentIDs: []int{0}, OutputBytes: 8e6},
	}}
	d.Submit(job)
	ms := d.Run()
	if ms[0].Duration() <= 0 {
		t.Fatal("mono job has non-positive duration")
	}
	// Monotask metrics must be present and complete.
	st0 := ms[0].Stages[0]
	if got := st0.MonotaskBytes(task.DiskResource, task.KindInputRead); got != 4*dfs.DefaultBlockSize {
		t.Fatalf("input read bytes %d, want %d", got, 4*dfs.DefaultBlockSize)
	}
	if got := st0.MonotaskBytes(task.DiskResource, task.KindShuffleWrite); got != 4*16e6 {
		t.Fatalf("shuffle write bytes %d, want %d", got, int64(4*16e6))
	}
	st1 := ms[0].Stages[1]
	wantShuffleRead := int64(4 * 16e6)
	gotShuffleRead := st1.MonotaskBytes(task.DiskResource, task.KindShuffleServeRead) // local + serve reads
	if gotShuffleRead != wantShuffleRead {
		t.Fatalf("shuffle reads %d bytes, want %d", gotShuffleRead, wantShuffleRead)
	}
}

func TestDriverWithPipelinedExecutor(t *testing.T) {
	c := testCluster(t, 2)
	fs, _ := dfs.New(dfs.Config{Machines: 2, DisksPerMachine: 1})
	f, _ := fs.Create("/in", 4*dfs.DefaultBlockSize, 1)
	g := pipeexec.NewGroup(c, pipeexec.Options{})
	execs := make([]task.Executor, 2)
	for i, w := range g.Workers {
		execs[i] = w
	}
	d, _ := New(c, fs, execs)
	job := &task.JobSpec{Name: "wc", Stages: []*task.StageSpec{
		{ID: 0, Name: "map", NumTasks: 4, OpCPU: 0.5, InputBlocks: f.Blocks, ShuffleOutBytes: 16e6},
		{ID: 1, Name: "reduce", NumTasks: 2, OpCPU: 0.3, ParentIDs: []int{0}, OutputBytes: 8e6},
	}}
	d.Submit(job)
	ms := d.Run()
	if ms[0].Duration() <= 0 {
		t.Fatal("pipelined job has non-positive duration")
	}
	for _, st := range ms[0].Stages {
		for _, tm := range st.Tasks {
			if len(tm.Monotasks) != 0 {
				t.Fatal("pipelined executor must not report monotasks")
			}
		}
	}
}

func TestInMemoryInputStage(t *testing.T) {
	c := testCluster(t, 1)
	var seen *task.Task
	execs := []task.Executor{&recordingExec{
		fakeExec: fakeExec{id: 0, slots: 1, duration: 1, eng: c.Engine},
		record:   func(tk *task.Task) { seen = tk },
	}}
	fs, _ := dfs.New(dfs.Config{Machines: 1, DisksPerMachine: 1})
	d, _ := New(c, fs, execs)
	job := &task.JobSpec{Name: "m", Stages: []*task.StageSpec{
		{ID: 0, Name: "cached", NumTasks: 1, OpCPU: 1, InputFromMem: true, InputBytesPerTask: 123},
	}}
	d.Submit(job)
	d.Run()
	if seen == nil || seen.MemReadBytes != 123 {
		t.Fatalf("resolved task = %+v, want MemReadBytes=123", seen)
	}
}

func TestSubmitErrors(t *testing.T) {
	c := testCluster(t, 1)
	d, _ := fakeDriver(t, c, 1, 1)
	if _, err := d.Submit(&task.JobSpec{Name: "empty"}); err == nil {
		t.Fatal("invalid job accepted")
	}
}

func TestNewErrors(t *testing.T) {
	c := testCluster(t, 2)
	fs, _ := dfs.New(dfs.Config{Machines: 2, DisksPerMachine: 1})
	if _, err := New(c, fs, nil); err == nil {
		t.Fatal("executor count mismatch accepted")
	}
	bad := []task.Executor{
		&fakeExec{id: 1, slots: 1, duration: 1, eng: c.Engine},
		&fakeExec{id: 0, slots: 1, duration: 1, eng: c.Engine},
	}
	if _, err := New(c, fs, bad); err == nil {
		t.Fatal("misordered executors accepted")
	}
}

func TestDeterminism(t *testing.T) {
	runOnce := func() sim.Time {
		c := testCluster(t, 4)
		fs, _ := dfs.New(dfs.Config{Machines: 4, DisksPerMachine: 1})
		f, _ := fs.Create("/in", 16*dfs.DefaultBlockSize, 1)
		g := core.NewGroup(c, core.Options{})
		execs := make([]task.Executor, 4)
		for i, w := range g.Workers {
			execs[i] = w
		}
		d, _ := New(c, fs, execs)
		job := &task.JobSpec{Name: "j", Stages: []*task.StageSpec{
			{ID: 0, Name: "map", NumTasks: 16, OpCPU: 0.5, InputBlocks: f.Blocks, ShuffleOutBytes: 32e6},
			{ID: 1, Name: "reduce", NumTasks: 8, OpCPU: 0.3, ParentIDs: []int{0}, OutputBytes: 8e6},
		}}
		d.Submit(job)
		return d.Run()[0].End
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}
