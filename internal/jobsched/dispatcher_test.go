package jobsched

import (
	"fmt"
	"hash/fnv"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/task"
)

// metricsFingerprint folds every observable outcome of a set of jobs — per
// job and per stage start/end, per task machine/timing/failure, abort
// errors — into one hash, so two runs can be compared bit-for-bit.
func metricsFingerprint(hs []*JobHandle) uint64 {
	h := fnv.New64a()
	for _, jh := range hs {
		fmt.Fprintf(h, "job %q done=%v start=%v end=%v err=%v\n",
			jh.Spec.Name, jh.Done(), jh.Metrics.Start, jh.Metrics.End, jh.Err())
		for si, sm := range jh.Metrics.Stages {
			fmt.Fprintf(h, " stage %d start=%v end=%v\n", si, sm.Start, sm.End)
			for ti, tm := range sm.Tasks {
				if tm == nil {
					fmt.Fprintf(h, "  task %d nil\n", ti)
					continue
				}
				fmt.Fprintf(h, "  task %d m=%d start=%v end=%v failed=%v\n",
					ti, tm.Machine, tm.Start, tm.End, tm.Failed)
			}
		}
	}
	return h.Sum64()
}

// dispatchScenario submits jobs and installs fault hooks on a fresh
// cluster+driver, returning the handles to fingerprint after the run.
type dispatchScenario func(c *cluster.Cluster, d *Driver) []*JobHandle

// runDispatch executes one scenario on monotasks workers with the given
// config and returns the outcome fingerprint plus the driver's control-plane
// accounting.
func runDispatch(t *testing.T, n int, cfg Config, scenario dispatchScenario) (uint64, DispatchStats, *cluster.Cluster) {
	t.Helper()
	c, d := monoDriver(t, n, cfg)
	hs := scenario(c, d)
	d.Run()
	return metricsFingerprint(hs), d.DispatchStats(), c
}

// submitOrFatal keeps scenarios terse.
func submitOrFatal(t *testing.T, d *Driver, spec *task.JobSpec) *JobHandle {
	t.Helper()
	h, err := d.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestWorkerDispatchEquivalence(t *testing.T) {
	// Two concurrent jobs over 4 monotasks workers: the delegated control
	// plane must produce bit-identical metrics to the centralized pass,
	// while actually self-dispatching (the worker-pull path) and exchanging
	// peer metadata.
	scenario := func(c *cluster.Cluster, d *Driver) []*JobHandle {
		return []*JobHandle{
			submitOrFatal(t, d, mapReduceJob(16, 8)),
			submitOrFatal(t, d, &task.JobSpec{Name: "cpu", Stages: []*task.StageSpec{
				{ID: 0, Name: "only", NumTasks: 24, OpCPU: 2},
			}}),
		}
	}
	central, cs, _ := runDispatch(t, 4, Config{}, scenario)
	delegated, ds, c := runDispatch(t, 4, Config{WorkerDispatch: true}, scenario)
	if central != delegated {
		t.Fatalf("delegated outcome fingerprint %x differs from centralized %x", delegated, central)
	}
	if cs.Delegated || !ds.Delegated {
		t.Fatalf("Delegated flags wrong: centralized %v, delegated %v", cs.Delegated, ds.Delegated)
	}
	if ds.SelfDispatched == 0 {
		t.Fatal("delegated run self-dispatched nothing — the worker-pull path never ran")
	}
	if ds.PeerMessages == 0 {
		t.Fatal("delegated run exchanged no peer stage-completion metadata")
	}
	if ds.DriverMessages >= cs.DriverMessages {
		t.Fatalf("delegated driver handled %d messages, centralized %d — delegation should shrink driver traffic",
			ds.DriverMessages, cs.DriverMessages)
	}
	// The peer broadcasts land on the fabric's control ledger, with zero
	// virtual time (the runs were bit-identical, which proves that part).
	got := c.ControlPlaneStats()
	if got.Messages != ds.PeerMessages || got.Bytes != ds.PeerBytes {
		t.Fatalf("fabric control ledger %+v does not match driver accounting (%d msgs, %d bytes)",
			got, ds.PeerMessages, ds.PeerBytes)
	}
}

func TestWorkerDispatchEquivalenceUnderFailures(t *testing.T) {
	// The full resilience gauntlet — injected task kills, a machine crash
	// and recovery, a collapsed link driving fetch timeouts, exclusion
	// backoff — must leave the delegated outcome bit-identical to the
	// centralized one, and each leg must replay identically.
	cfg := Config{FetchRetryTimeout: 3, MaxTaskFailures: 50, ExcludeAfterFailures: 3, ExcludeBackoff: 5}
	scenario := func(c *cluster.Cluster, d *Driver) []*JobHandle {
		h := submitOrFatal(t, d, mapReduceJob(12, 6))
		c.Engine.At(1, func() { d.FailRunningTasks(1, 2, "injected kill") })
		c.Engine.At(0.5, func() { c.Fabric.SetLinkSpeed(0, 0.001) })
		c.Engine.At(2, func() { _ = d.FailMachine(2) })
		c.Engine.At(25, func() { _ = d.RecoverMachine(2) })
		c.Engine.At(40, func() { c.Fabric.SetLinkSpeed(0, 1) })
		return []*JobHandle{h}
	}
	for _, tc := range []struct {
		name     string
		delegate bool
	}{{"centralized", false}, {"delegated", true}} {
		cfg := cfg
		cfg.WorkerDispatch = tc.delegate
		first, _, _ := runDispatch(t, 4, cfg, scenario)
		second, _, _ := runDispatch(t, 4, cfg, scenario)
		if first != second {
			t.Fatalf("%s replay diverged: %x vs %x", tc.name, first, second)
		}
		if tc.name == "centralized" {
			continue
		}
		base, _, _ := runDispatch(t, 4, Config{
			FetchRetryTimeout: 3, MaxTaskFailures: 50,
			ExcludeAfterFailures: 3, ExcludeBackoff: 5,
		}, scenario)
		if first != base {
			t.Fatalf("delegated outcome %x differs from centralized %x under failures", first, base)
		}
	}
}

func TestWorkerDispatchPushFallback(t *testing.T) {
	// Executors without the pull hook (fakeExec, like the pipelined
	// emulation) are fed by the driver's push fallback: same fill policy,
	// same results.
	run := func(dispatch bool) uint64 {
		c := testCluster(t, 3)
		fs, _ := dfs.New(dfs.Config{Machines: c.Size(), DisksPerMachine: 1})
		fakes := make([]*fakeExec, c.Size())
		execs := make([]task.Executor, c.Size())
		for i := range fakes {
			fakes[i] = &fakeExec{id: i, slots: 2, duration: 1, eng: c.Engine}
			execs[i] = fakes[i]
		}
		d, err := NewWithConfig(c, fs, execs, Config{WorkerDispatch: dispatch})
		if err != nil {
			t.Fatal(err)
		}
		h := submitOrFatal(t, d, mapReduceJob(9, 4))
		d.Run()
		if dispatch {
			if ds := d.DispatchStats(); ds.SelfDispatched == 0 {
				t.Fatal("push fallback never self-dispatched")
			}
		}
		if !h.Done() {
			t.Fatalf("job incomplete: %v", h.Err())
		}
		return metricsFingerprint([]*JobHandle{h})
	}
	if central, delegated := run(false), run(true); central != delegated {
		t.Fatalf("push-fallback delegated outcome %x differs from centralized %x", delegated, central)
	}
}

func TestWorkerDispatchSpeculationFallsBack(t *testing.T) {
	// Speculation needs the driver's global view of running attempts, so
	// WorkerDispatch+Speculation keeps the centralized pass.
	c := testCluster(t, 2)
	d, _ := fakeDriver(t, c, 2, 1)
	if d.DispatchStats().Delegated {
		t.Fatal("plain driver reports delegated")
	}
	_, d2 := monoDriver(t, 2, Config{WorkerDispatch: true, Speculation: true})
	if d2.DispatchStats().Delegated {
		t.Fatal("Speculation+WorkerDispatch must fall back to the centralized pass")
	}
	_, d3 := monoDriver(t, 2, Config{WorkerDispatch: true})
	if !d3.DispatchStats().Delegated {
		t.Fatal("WorkerDispatch alone should delegate")
	}
}

func TestRecoverMachineResetsExclusionBackoff(t *testing.T) {
	// Regression: RecoverMachine used to keep excludeCount/excludeUntil, so
	// a crashed-and-repaired machine inherited pre-crash exponential backoff
	// escalation. A recovered machine's first re-exclusion must use the base
	// ExcludeBackoff again.
	c := testCluster(t, 2)
	d, _ := fakeDriver(t, c, 1, 1)
	base := d.cfg.ExcludeBackoff
	exclude := func() {
		for i := 0; i < d.cfg.ExcludeAfterFailures; i++ {
			d.noteMachineFailure(1)
		}
	}
	exclude()
	if !d.excluded[1] || d.excludeUntil[1] != c.Engine.Now()+base {
		t.Fatalf("first exclusion until %v, want %v", d.excludeUntil[1], c.Engine.Now()+base)
	}
	d.excluded[1] = false // as readmitMachine would
	exclude()
	if d.excludeUntil[1] != c.Engine.Now()+2*base {
		t.Fatalf("second exclusion until %v, want doubled backoff %v", d.excludeUntil[1], c.Engine.Now()+2*base)
	}
	if err := d.FailMachine(1); err != nil {
		t.Fatal(err)
	}
	if err := d.RecoverMachine(1); err != nil {
		t.Fatal(err)
	}
	if d.excludeCount[1] != 0 || d.excludeUntil[1] != 0 {
		t.Fatalf("recovery kept exclusion history: count=%d until=%v", d.excludeCount[1], d.excludeUntil[1])
	}
	exclude()
	if d.excludeUntil[1] != c.Engine.Now()+base {
		t.Fatalf("post-recovery exclusion until %v, want base backoff %v", d.excludeUntil[1], c.Engine.Now()+base)
	}
	if d.excludeCount[1] != 1 {
		t.Fatalf("post-recovery excludeCount = %d, want 1", d.excludeCount[1])
	}
}

func TestMaxExcludeBackoffCapsDoubling(t *testing.T) {
	// The doubling cap is Config.MaxExcludeBackoff (it was a hidden i < 6
	// constant): growth stops at the largest doubled value not exceeding
	// the cap, and a cap below the base leaves the base untouched.
	c := testCluster(t, 2)
	d, _ := fakeDriver(t, c, 1, 1)
	d.cfg.ExcludeBackoff = 30
	d.cfg.MaxExcludeBackoff = 100
	d.excludeCount[1] = 5 // deep escalation history
	d.machineFailures[1] = d.cfg.ExcludeAfterFailures
	d.noteMachineFailure(1)
	if got := d.excludeUntil[1] - c.Engine.Now(); got != 60 {
		t.Fatalf("capped backoff = %v, want 60 (30 doubled once; 120 would exceed the 100 cap)", got)
	}
	d.excluded[1] = false
	d.cfg.MaxExcludeBackoff = 10 // below base: base wins
	d.machineFailures[1] = d.cfg.ExcludeAfterFailures
	d.noteMachineFailure(1)
	if got := d.excludeUntil[1] - c.Engine.Now(); got != 30 {
		t.Fatalf("sub-base cap gave backoff %v, want the 30 base", got)
	}
	// The default cap (64× base) reproduces the legacy six-doublings limit.
	cfg := Config{ExcludeBackoff: 30}.withDefaults()
	if cfg.MaxExcludeBackoff != 1920 {
		t.Fatalf("default MaxExcludeBackoff = %v, want 64×30 = 1920", cfg.MaxExcludeBackoff)
	}
}

func TestFetchTimeoutAbortMessageSingleUnit(t *testing.T) {
	// Regression for the double-unit abort reason: "within the %v s fetch
	// timeout" rendered two unit suffixes. Drive a reduce into repeated
	// fetch timeouts until the retry budget aborts the job and check the
	// rendered reason.
	c, d := monoDriver(t, 3, Config{FetchRetryTimeout: 2, MaxTaskFailures: 2, ExcludeAfterFailures: -1})
	h, err := d.Submit(mapReduceJob(6, 3))
	if err != nil {
		t.Fatal(err)
	}
	c.Engine.At(0.5, func() {
		for i := 0; i < c.Size(); i++ {
			c.Fabric.SetLinkSpeed(i, 0.0001)
		}
	})
	d.Run()
	if h.Err() == nil {
		t.Fatal("job survived a permanently collapsed network")
	}
	msg := h.Err().Error()
	if !strings.Contains(msg, "within the 2s fetch timeout") {
		t.Fatalf("abort reason %q lacks the single-unit timeout phrasing", msg)
	}
	if strings.Contains(msg, "s s") {
		t.Fatalf("abort reason %q still renders a double unit", msg)
	}
}
