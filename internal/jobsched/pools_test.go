package jobsched

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/sim"
	"repro/internal/task"
)

func cfgDriver(t *testing.T, c *cluster.Cluster, slots int, dur sim.Duration, cfg Config) (*Driver, []*fakeExec) {
	t.Helper()
	fs, _ := dfs.New(dfs.Config{Machines: c.Size(), DisksPerMachine: 1})
	fakes := make([]*fakeExec, c.Size())
	execs := make([]task.Executor, c.Size())
	for i := range fakes {
		fakes[i] = &fakeExec{id: i, slots: slots, duration: dur, eng: c.Engine}
		execs[i] = fakes[i]
	}
	d, err := NewWithConfig(c, fs, execs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d, fakes
}

func oneStageJob(name string, tasks int) *task.JobSpec {
	return &task.JobSpec{Name: name, Stages: []*task.StageSpec{
		{ID: 0, Name: name + "-s", NumTasks: tasks, OpCPU: 1},
	}}
}

func TestDefaultPoolAlwaysExists(t *testing.T) {
	c := testCluster(t, 1)
	d, _ := fakeDriver(t, c, 1, 1)
	names := d.PoolNames()
	if len(names) != 1 || names[0] != DefaultPool {
		t.Fatalf("pools = %v, want [%q]", names, DefaultPool)
	}
}

func TestPoolConfigErrors(t *testing.T) {
	c := testCluster(t, 1)
	fs, _ := dfs.New(dfs.Config{Machines: 1, DisksPerMachine: 1})
	execs := []task.Executor{&fakeExec{id: 0, slots: 1, duration: 1, eng: c.Engine}}
	if _, err := NewWithConfig(c, fs, execs, Config{Pools: []PoolConfig{{}}}); err == nil {
		t.Fatal("unnamed pool accepted")
	}
	if _, err := NewWithConfig(c, fs, execs, Config{Pools: []PoolConfig{{Name: "p"}, {Name: "p"}}}); err == nil {
		t.Fatal("duplicate pool accepted")
	}
}

func TestSubmitToUndeclaredPool(t *testing.T) {
	c := testCluster(t, 1)
	d, _ := fakeDriver(t, c, 1, 1)
	if _, err := d.SubmitWith(oneStageJob("j", 1), SubmitOptions{Pool: "nope"}); err == nil {
		t.Fatal("submission to undeclared pool accepted")
	}
}

func TestAdmissionQueueLimit(t *testing.T) {
	c := testCluster(t, 1)
	d, _ := cfgDriver(t, c, 2, 1, Config{Pools: []PoolConfig{
		{Name: "serial", MaxConcurrentJobs: 1},
	}})
	var hs []*JobHandle
	for _, name := range []string{"a", "b", "c"} {
		h, err := d.SubmitWith(oneStageJob(name, 4), SubmitOptions{Pool: "serial"})
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	if got := d.ActiveJobs("serial"); got != 1 {
		t.Fatalf("active = %d, want 1", got)
	}
	if got := d.QueuedJobs("serial"); got != 2 {
		t.Fatalf("queued = %d, want 2", got)
	}
	d.Run()
	// One job at a time, 4 tasks on 2 slots = 2 s each: strictly serial.
	wantEnds := []sim.Time{2, 4, 6}
	for i, h := range hs {
		if !h.Done() {
			t.Fatalf("job %d not done", i)
		}
		if h.Metrics.End != wantEnds[i] {
			t.Fatalf("job %d ended at %v, want %v (serial admission)", i, h.Metrics.End, wantEnds[i])
		}
	}
	// Admission times step forward as predecessors finish.
	if hs[1].AdmittedAt != 2 || hs[2].AdmittedAt != 4 {
		t.Fatalf("admitted at %v, %v; want 2, 4", hs[1].AdmittedAt, hs[2].AdmittedAt)
	}
}

func TestWeightedFairShareAcrossPools(t *testing.T) {
	c := testCluster(t, 1)
	d, fakes := cfgDriver(t, c, 4, 1, Config{Pools: []PoolConfig{
		{Name: "heavy", Weight: 3},
		{Name: "light", Weight: 1},
	}})
	ha, err := d.SubmitWith(oneStageJob("a", 40), SubmitOptions{Pool: "heavy"})
	if err != nil {
		t.Fatal(err)
	}
	hb, err := d.SubmitWith(oneStageJob("b", 40), SubmitOptions{Pool: "light"})
	if err != nil {
		t.Fatal(err)
	}
	d.Run()
	if !ha.Done() || !hb.Done() {
		t.Fatal("jobs not done")
	}
	// While both pools have work, a 3:1 weighting should give the heavy pool
	// ~3/4 of the 4 slots. Job a has 40 tasks at ~3 slots/s, so it drains
	// well before b; its end time reflects its slot share directly.
	elapsed := float64(ha.Metrics.End)
	share := 40.0 / (elapsed * 4.0) // fraction of total slot-seconds a used
	if share < 0.675 || share > 0.825 {
		t.Fatalf("heavy pool slot share %.3f over its lifetime, want 0.75 ±10%%", share)
	}
	if hb.Metrics.End <= ha.Metrics.End {
		t.Fatalf("light-pool job ended at %v, before heavy's %v", hb.Metrics.End, ha.Metrics.End)
	}
	total := 0
	for _, f := range fakes {
		total += len(f.launched)
	}
	if total != 80 {
		t.Fatalf("launched %d tasks, want 80", total)
	}
}

func TestFIFOPoolDrainsInOrder(t *testing.T) {
	c := testCluster(t, 1)
	d, _ := cfgDriver(t, c, 2, 1, Config{Pools: []PoolConfig{
		{Name: "fifo", Policy: FIFO},
	}})
	ha, _ := d.SubmitWith(oneStageJob("a", 4), SubmitOptions{Pool: "fifo"})
	hb, _ := d.SubmitWith(oneStageJob("b", 4), SubmitOptions{Pool: "fifo"})
	d.Run()
	// FIFO gives a every slot it can use before b gets one: a ends at 2, b
	// at 4 — the opposite of TestConcurrentJobsShareFairly.
	if ha.Metrics.End != 2 || hb.Metrics.End != 4 {
		t.Fatalf("ends %v, %v; want 2, 4 (FIFO drain)", ha.Metrics.End, hb.Metrics.End)
	}
}

func TestPriorityOrdersDispatch(t *testing.T) {
	c := testCluster(t, 1)
	d, _ := cfgDriver(t, c, 2, 1, Config{Pools: []PoolConfig{
		{Name: "fifo", Policy: FIFO},
	}})
	lo, _ := d.SubmitWith(oneStageJob("lo", 4), SubmitOptions{Pool: "fifo"})
	hi, _ := d.SubmitWith(oneStageJob("hi", 4), SubmitOptions{Pool: "fifo", Priority: 5})
	d.Run()
	// Both are active at t=0 but the FIFO policy re-sorts by dispatch order
	// each pass, so the high-priority job takes the slots first.
	if hi.Metrics.End >= lo.Metrics.End {
		t.Fatalf("high-priority ended at %v, low at %v; want high first",
			hi.Metrics.End, lo.Metrics.End)
	}
}

func TestDeadlineOrdersAdmission(t *testing.T) {
	c := testCluster(t, 1)
	d, _ := cfgDriver(t, c, 2, 1, Config{Pools: []PoolConfig{
		{Name: "serial", MaxConcurrentJobs: 1},
	}})
	first, _ := d.SubmitWith(oneStageJob("first", 4), SubmitOptions{Pool: "serial"})
	late, _ := d.SubmitWith(oneStageJob("late", 4), SubmitOptions{Pool: "serial", Deadline: 100})
	urgent, _ := d.SubmitWith(oneStageJob("urgent", 4), SubmitOptions{Pool: "serial", Deadline: 5})
	d.Run()
	// "first" was admitted on submission; the queue then orders by deadline,
	// so "urgent" (submitted last) runs before "late".
	if !(first.Metrics.End < urgent.Metrics.End && urgent.Metrics.End < late.Metrics.End) {
		t.Fatalf("ends first=%v urgent=%v late=%v; want first < urgent < late",
			first.Metrics.End, urgent.Metrics.End, late.Metrics.End)
	}
}

func TestPoolsIsolateFromFIFONeighbours(t *testing.T) {
	// Two pools, one FIFO one fair-share, running together: the FIFO pool's
	// internal ordering must not starve the fair pool of its weighted share.
	c := testCluster(t, 1)
	d, _ := cfgDriver(t, c, 4, 1, Config{Pools: []PoolConfig{
		{Name: "batch", Policy: FIFO, Weight: 1},
		{Name: "interactive", Weight: 1},
	}})
	b1, _ := d.SubmitWith(oneStageJob("b1", 20), SubmitOptions{Pool: "batch"})
	b2, _ := d.SubmitWith(oneStageJob("b2", 20), SubmitOptions{Pool: "batch"})
	i1, _ := d.SubmitWith(oneStageJob("i1", 8), SubmitOptions{Pool: "interactive"})
	d.Run()
	// Equal weights: interactive holds 2 of 4 slots while it has work, so
	// its 8 tasks drain in ~4 s even though batch has 40 tasks queued.
	if i1.Metrics.End > 5 {
		t.Fatalf("interactive job ended at %v, want ≤5 (weighted isolation)", i1.Metrics.End)
	}
	// And within batch, FIFO: b1 strictly before b2.
	if b1.Metrics.End >= b2.Metrics.End {
		t.Fatalf("batch FIFO violated: b1 end %v, b2 end %v", b1.Metrics.End, b2.Metrics.End)
	}
}

func TestSubmitWhileRunning(t *testing.T) {
	// Open-loop arrivals: jobs submitted at virtual times while the engine
	// is running are admitted and finish correctly.
	c := testCluster(t, 1)
	d, _ := fakeDriver(t, c, 2, 1)
	h0, _ := d.Submit(oneStageJob("j0", 4))
	var h1 *JobHandle
	c.Engine.At(1, func() {
		h1, _ = d.Submit(oneStageJob("j1", 2))
	})
	ms := d.Run()
	if !h0.Done() || h1 == nil || !h1.Done() {
		t.Fatal("jobs not done")
	}
	if h1.Submitted != 1 {
		t.Fatalf("late job submitted at %v, want 1", h1.Submitted)
	}
	if len(ms) != 2 {
		t.Fatalf("metrics for %d jobs, want 2", len(ms))
	}
}
