package jobsched

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// This file is the driver's multi-tenant layer: named scheduling pools with
// an admission queue in front of each, weighted fair sharing of executor
// slots between pools, and priority/deadline-aware dispatch within a pool.
//
// The paper's multi-job story (§6.4, Fig. 16) is that per-resource monotask
// accounting attributes contention between concurrent jobs almost exactly;
// pools are what let a driver actually carry that concurrency: an admission
// queue accepts any number of jobs at once, per-pool limits bound how many
// run, and free slots rotate between pools in proportion to their weights
// instead of draining one job before the next.

// PoolPolicy selects how jobs within one pool compete for the pool's share.
type PoolPolicy int

const (
	// FairShare rotates the pool's slots between its active jobs (the job
	// with the fewest running tasks goes first), so concurrent jobs make
	// progress together — the scheduling Fig. 16 measures.
	FairShare PoolPolicy = iota
	// FIFO serves the pool's active jobs strictly in dispatch order: a job
	// takes every slot it can use before the next job gets one.
	FIFO
)

// String names the scheduling policy.
func (p PoolPolicy) String() string {
	switch p {
	case FairShare:
		return "fair"
	case FIFO:
		return "fifo"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// PoolConfig declares one scheduling pool in Config.Pools.
type PoolConfig struct {
	Name string
	// Weight is the pool's fair-share weight relative to other pools'
	// (default 1): while several pools have runnable work, each receives
	// executor slots in proportion to its weight.
	Weight float64
	// Policy orders jobs within the pool (default FairShare).
	Policy PoolPolicy
	// MaxConcurrentJobs caps how many of the pool's jobs run at once;
	// further submissions wait in the pool's admission queue until a
	// running job finishes. Zero means unlimited.
	MaxConcurrentJobs int
}

func (p PoolConfig) withDefaults() PoolConfig {
	if p.Weight <= 0 {
		p.Weight = 1
	}
	return p
}

// DefaultPool is the pool jobs land in when SubmitOptions names none. It is
// created automatically (unlimited, weight 1, fair-share) unless Config.Pools
// declares a pool with this name explicitly.
const DefaultPool = "default"

// SubmitOptions tags one job for the multi-tenant scheduler.
type SubmitOptions struct {
	// Pool names the scheduling pool (DefaultPool when empty). Submitting
	// to an undeclared pool is an error.
	Pool string
	// Priority orders jobs within their pool: higher priorities dispatch
	// first. Within one priority, earlier deadlines go first.
	Priority int
	// Deadline is the job's target completion time in virtual seconds;
	// at equal priority, the job with the earliest deadline dispatches
	// first (zero = no deadline, sorts after any deadline).
	Deadline sim.Time
}

// poolState is one pool's runtime record.
type poolState struct {
	cfg   PoolConfig
	index int
	// queue holds submitted jobs awaiting admission, in dispatch order.
	queue []*JobHandle
	// active holds admitted, unfinished jobs in admission order.
	active []*JobHandle
}

// runningTasks counts the pool's live attempts, the quantity weighted fair
// sharing balances across pools (Spark's FairScheduler comparator).
func (p *poolState) runningTasks() int {
	n := 0
	for _, h := range p.active {
		for _, st := range h.stages {
			n += st.running
		}
	}
	return n
}

// deficit is the pool's normalized load; the pool with the smallest deficit
// receives the next free slot.
func (p *poolState) deficit() float64 {
	return float64(p.runningTasks()) / p.cfg.Weight
}

// initPools builds the driver's pool table from cfg.Pools, adding the
// default pool unless it was declared explicitly.
func (d *Driver) initPools() error {
	names := make(map[string]bool)
	for i, pc := range d.cfg.Pools {
		if pc.Weight < 0 {
			return fmt.Errorf("jobsched: pool %q has negative weight %v", pc.Name, pc.Weight)
		}
		if pc.MaxConcurrentJobs < 0 {
			return fmt.Errorf("jobsched: pool %q has negative MaxConcurrentJobs %d", pc.Name, pc.MaxConcurrentJobs)
		}
		pc = pc.withDefaults()
		if pc.Name == "" {
			return fmt.Errorf("jobsched: pool %d has no name", i)
		}
		if names[pc.Name] {
			return fmt.Errorf("jobsched: duplicate pool %q", pc.Name)
		}
		names[pc.Name] = true
		d.pools = append(d.pools, &poolState{cfg: pc, index: len(d.pools)})
	}
	if !names[DefaultPool] {
		d.pools = append(d.pools, &poolState{
			cfg:   PoolConfig{Name: DefaultPool, Weight: 1, Policy: FairShare},
			index: len(d.pools),
		})
	}
	d.poolByName = make(map[string]*poolState, len(d.pools))
	for _, p := range d.pools {
		d.poolByName[p.cfg.Name] = p
	}
	return nil
}

// dispatchBefore orders jobs within a pool: priority descending, then
// deadline ascending (no deadline last), then submission order.
func dispatchBefore(a, b *JobHandle) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	ad, bd := a.Deadline, b.Deadline
	if ad == 0 {
		ad = sim.Forever
	}
	if bd == 0 {
		bd = sim.Forever
	}
	if ad != bd {
		return ad < bd
	}
	return a.seq < b.seq
}

// enqueue inserts h into p's admission queue in dispatch order (stable for
// equal keys, so equal jobs keep submission order).
func (p *poolState) enqueue(h *JobHandle) {
	pos := sort.Search(len(p.queue), func(i int) bool {
		return dispatchBefore(h, p.queue[i])
	})
	p.queue = append(p.queue, nil)
	copy(p.queue[pos+1:], p.queue[pos:])
	p.queue[pos] = h
}

// admitFrom moves jobs from p's admission queue into its active set while
// the pool has admission capacity.
func (d *Driver) admitFrom(p *poolState) {
	admitted := false
	for len(p.queue) > 0 {
		if p.cfg.MaxConcurrentJobs > 0 && len(p.active) >= p.cfg.MaxConcurrentJobs {
			break
		}
		h := p.queue[0]
		copy(p.queue, p.queue[1:])
		p.queue[len(p.queue)-1] = nil
		p.queue = p.queue[:len(p.queue)-1]
		h.admitted = true
		h.AdmittedAt = d.cluster.Engine.Now()
		p.active = append(p.active, h)
		admitted = true
		if d.disp != nil {
			d.grantRanges(h)
		}
	}
	if admitted {
		d.markGlobal() // a new job's stages are runnable everywhere
		d.schedule()
	}
}

// releaseJob removes a finished (done or aborted) job from its pool's
// active set — or its admission queue, if it failed before admission — and
// admits the next queued job.
func (d *Driver) releaseJob(h *JobHandle) {
	p := h.pool
	if p == nil || h.released {
		return
	}
	h.released = true
	for i, a := range p.active {
		if a == h {
			p.active = append(p.active[:i], p.active[i+1:]...)
			break
		}
	}
	for i, q := range p.queue {
		if q == h {
			p.queue = append(p.queue[:i], p.queue[i+1:]...)
			break
		}
	}
	d.admitFrom(p)
}

// poolOrder returns pool indices sorted by fair-share deficit (running
// tasks over weight), ties broken by declaration order — the cross-pool
// arbitration for each free slot. The common single-pool driver skips the
// sort entirely; multi-pool drivers reuse scratch and a stable insertion
// sort (pool counts are tiny), so the per-slot arbitration allocates
// nothing.
func (d *Driver) poolOrder() []*poolState {
	if len(d.pools) == 1 {
		return d.pools
	}
	if d.deficitScratch == nil {
		d.deficitScratch = make([]float64, len(d.pools))
	}
	deficits := d.deficitScratch
	for _, p := range d.pools {
		deficits[p.index] = p.deficit()
	}
	order := append(d.orderScratch[:0], d.pools...)
	d.orderScratch = order
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && deficits[order[j].index] < deficits[order[j-1].index]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// pickFromPool chooses a runnable (stage, pending position) of one of p's
// active jobs for worker w, honouring the pool's policy.
func (d *Driver) pickFromPool(p *poolState, w int) (*stageState, int, bool) {
	switch p.cfg.Policy {
	case FIFO:
		// Strict dispatch order: drain the first job that has work. Stable
		// insertion sort over driver scratch — active-job counts are small
		// and this path runs once per free slot per pass.
		jobs := append(d.jobScratch[:0], p.active...)
		d.jobScratch = jobs
		for i := 1; i < len(jobs); i++ {
			for j := i; j > 0 && dispatchBefore(jobs[j], jobs[j-1]); j-- {
				jobs[j], jobs[j-1] = jobs[j-1], jobs[j]
			}
		}
		for _, h := range jobs {
			if st, idx, ok := d.pickFromJob(h, w); ok {
				return st, idx, true
			}
		}
	default:
		// Fair share: the admitted job with the fewest live attempts goes
		// first; dispatch order breaks ties, so priorities and deadlines
		// still matter when loads are equal.
		var best *JobHandle
		bestRunning := 0
		var bestSt *stageState
		bestIdx := 0
		for _, h := range p.active {
			st, idx, ok := d.pickFromJob(h, w)
			if !ok {
				continue
			}
			r := h.runningTasks()
			if best == nil || r < bestRunning || (r == bestRunning && dispatchBefore(h, best)) {
				best, bestRunning, bestSt, bestIdx = h, r, st, idx
			}
		}
		if best != nil {
			return bestSt, bestIdx, true
		}
	}
	return nil, 0, false
}

// pickFromJob finds h's first runnable stage with a task for w (stages in
// DAG order, locality honoured by pickFromStage).
func (d *Driver) pickFromJob(h *JobHandle, w int) (*stageState, int, bool) {
	if h.finished() {
		return nil, 0, false
	}
	for _, st := range h.stages {
		if !st.runnable() {
			continue
		}
		if idx, ok := d.pickFromStage(st, w); ok {
			return st, idx, true
		}
	}
	return nil, 0, false
}

// runningTasks counts the job's live attempts across stages.
func (h *JobHandle) runningTasks() int {
	n := 0
	for _, st := range h.stages {
		n += st.running
	}
	return n
}

// Jobs returns every submitted job's handle in submission order — finished,
// running, and queued alike. The slice is a copy; the handles are live, so a
// telemetry sampler can read each job's Metrics and task counts mid-run.
func (d *Driver) Jobs() []*JobHandle {
	return append([]*JobHandle(nil), d.jobs...)
}

// LiveTasks reports the job's running task attempts right now.
func (h *JobHandle) LiveTasks() int { return h.runningTasks() }

// Admitted reports whether the job's pool has let it past the admission
// queue (true for the whole of its run and afterwards).
func (h *JobHandle) Admitted() bool { return h.admitted }

// PoolNames lists the driver's pools in declaration order (the default pool
// last unless declared).
func (d *Driver) PoolNames() []string {
	out := make([]string, len(d.pools))
	for i, p := range d.pools {
		out[i] = p.cfg.Name
	}
	return out
}

// QueuedJobs reports how many submitted jobs are waiting for admission in
// the named pool.
func (d *Driver) QueuedJobs(pool string) int {
	if p, ok := d.poolByName[pool]; ok {
		return len(p.queue)
	}
	return 0
}

// ActiveJobs reports how many admitted, unfinished jobs the named pool has.
func (d *Driver) ActiveJobs(pool string) int {
	if p, ok := d.poolByName[pool]; ok {
		return len(p.active)
	}
	return 0
}

// RunningTasks reports the named pool's live task attempts right now — the
// quantity weighted fair sharing balances, exposed so a live dashboard (or a
// test) can watch each pool's slot share directly.
func (d *Driver) RunningTasks(pool string) int {
	if p, ok := d.poolByName[pool]; ok {
		return p.runningTasks()
	}
	return 0
}

// PendingTasks reports how many of the named pool's tasks are runnable but
// unscheduled right now (queued behind busy slots; tasks blocked on a stage
// barrier don't count). Nonzero means the pool is backlogged — it could use
// more slots than it holds, so its RunningTasks share is the scheduler's
// choice rather than demand-limited.
func (d *Driver) PendingTasks(pool string) int {
	p, ok := d.poolByName[pool]
	if !ok {
		return 0
	}
	n := 0
	for _, h := range p.active {
		for _, st := range h.stages {
			if st.runnable() {
				n += len(st.pending)
			}
		}
	}
	return n
}
