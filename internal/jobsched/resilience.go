package jobsched

import (
	"fmt"

	"repro/internal/sim"
)

// This file holds the driver's recovery-side policies: machines rejoining
// after a crash, per-machine failure counting with timed exclusion
// (Spark's executor health tracker), bounded task retry budgets, fetch
// retry timeouts, and injected in-flight task kills. The fail-stop side
// (FailMachine, shuffle-output invalidation, stage rollback) is in
// failure.go.

// RecoverMachine rejoins a machine failed with FailMachine: it becomes
// schedulable again at the current virtual time, with a clean failure
// record, and the DFS replicas it hosts become readable again (the
// metadata-only DFS never forgot them; availability is the driver's dead
// set). Shuffle outputs lost in the crash stay lost — the executor's local
// files did not survive — so stages invalidated at crash time still
// re-execute.
//
// Capacity re-registers as MaxConcurrentTasks minus the machine's zombie
// attempts: tasks that were running at crash time keep simulating to
// completion inside the executor, and each releases its slot only when its
// (ignored) completion callback fires.
func (d *Driver) RecoverMachine(m int) error {
	if m < 0 || m >= len(d.execs) {
		return fmt.Errorf("jobsched: no machine %d", m)
	}
	if !d.dead[m] {
		return nil
	}
	d.dead[m] = false
	d.excluded[m] = false
	d.machineFailures[m] = 0
	// A repaired machine starts with a clean exclusion history too: without
	// this, its next exclusion would inherit the pre-crash exponential
	// escalation (and a stale excludeUntil could shadow a fresh deadline).
	d.excludeCount[m] = 0
	d.excludeUntil[m] = 0
	d.free[m] = d.execs[m].MaxConcurrentTasks() - d.inflight[m]
	if d.free[m] < 0 {
		d.free[m] = 0
	}
	d.markGlobal()
	d.schedule()
	return nil
}

// Excluded reports whether machine m is currently barred from new task
// assignments by the exclusion policy.
func (d *Driver) Excluded(m int) bool { return d.excluded[m] }

// FailRunningTasks kills up to n live attempts currently running on machine
// m (in deterministic job/stage/task order), reporting how many were
// killed. Each kill is a transient failure: it charges the task's retry
// budget and the machine's exclusion counter, and the task is retried
// elsewhere. The killed attempts become zombies — the executor finishes
// simulating them, and their slots free only then — which is how a real
// driver experiences a task JVM that stops responding.
func (d *Driver) FailRunningTasks(m, n int, reason string) int {
	if n <= 0 || m < 0 || m >= len(d.execs) {
		return 0
	}
	killed := 0
	for _, h := range d.jobs {
		if h.finished() {
			continue
		}
		for _, st := range h.stages {
			if killed >= n || h.finished() {
				break
			}
			// attempts is indexed by task, so walking it IS the deterministic
			// task order the old map-key sort produced.
			for ti := range st.attempts {
				if killed >= n || h.finished() {
					break
				}
				if st.doneTasks[ti] {
					continue
				}
				for _, a := range st.attempts[ti] {
					if a.retired || a.machine != m {
						continue
					}
					a.retired = true
					st.running--
					killed++
					d.handleAttemptFailure(st, ti, m, reason)
					break // at most one attempt per task per call
				}
			}
		}
	}
	if killed > 0 {
		d.schedule()
	}
	return killed
}

// handleAttemptFailure processes one failed (already-retired) attempt of
// task ti on machine w: charge the retry budget — aborting the job when it
// is exhausted — re-queue the task, and count the failure against w's
// exclusion threshold.
func (d *Driver) handleAttemptFailure(st *stageState, ti, w int, reason string) {
	h := st.job
	if h.finished() {
		return
	}
	if st.doneTasks[ti] {
		// A speculative twin already won; the task needs no retry, but the
		// machine still misbehaved.
		d.noteMachineFailure(w)
		return
	}
	st.failures[ti]++
	if st.failures[ti] >= d.cfg.MaxTaskFailures {
		d.abortJob(h, fmt.Errorf("jobsched: job %q aborted: task %d of stage %q failed %d times, exceeding MaxTaskFailures (last failure on machine %d: %s)",
			h.Spec.Name, ti, st.spec.Name, st.failures[ti], w, reason))
		return
	}
	d.requeue(st, ti)
	d.noteMachineFailure(w)
}

// noteMachineFailure counts one failed attempt against machine w and, at
// the configured threshold, excludes w from new assignments for an
// exponentially growing backoff.
func (d *Driver) noteMachineFailure(w int) {
	if d.cfg.ExcludeAfterFailures < 0 || d.dead[w] || d.excluded[w] {
		return
	}
	d.machineFailures[w]++
	if d.machineFailures[w] < d.cfg.ExcludeAfterFailures {
		return
	}
	backoff := d.cfg.ExcludeBackoff
	for i := 0; i < d.excludeCount[w] && backoff*2 <= d.cfg.MaxExcludeBackoff; i++ {
		backoff *= 2
	}
	d.excludeCount[w]++
	d.machineFailures[w] = 0
	d.excluded[w] = true
	// Excluding w can strip the last free home off a pending task, newly
	// allowing a remote pick elsewhere — a global transition.
	d.markGlobal()
	until := d.cluster.Engine.Now() + backoff
	d.excludeUntil[w] = until
	d.cluster.Engine.At(until, func() { d.readmitMachine(w, until) })
}

// readmitMachine ends an exclusion, unless it was superseded (the machine
// died, recovered, or was re-excluded with a later deadline).
func (d *Driver) readmitMachine(w int, until sim.Time) {
	if d.dead[w] || !d.excluded[w] || d.excludeUntil[w] != until {
		return
	}
	d.excluded[w] = false
	d.markGlobal()
	d.schedule()
}

// armFetchTimeout abandons att if it is still running when the configured
// fetch timeout expires, charging a failure and retrying the task on
// another machine. The abandoned attempt keeps its slot until the executor
// finishes simulating it (zombie), like any other transient failure. The
// timer callback is a pooled timeoutOp (template.go), not a fresh closure.
func (d *Driver) armFetchTimeout(st *stageState, ti int, att *attempt, w int) {
	d.cluster.Engine.After(d.cfg.FetchRetryTimeout, d.takeTimeout(st, ti, w, att).fn)
}

// onFetchTimeout is the timer body.
func (d *Driver) onFetchTimeout(st *stageState, ti, w int, att *attempt) {
	if att.retired || st.doneTasks[ti] || st.job.finished() {
		return
	}
	att.retired = true
	st.running--
	d.handleAttemptFailure(st, ti, w,
		fmt.Sprintf("shuffle fetch did not complete within the %vs fetch timeout", d.cfg.FetchRetryTimeout))
	d.afterTimeout(w)
}
