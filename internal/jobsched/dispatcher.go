package jobsched

// This file is the worker-side dispatch path (Config.WorkerDispatch) — the
// Canary-style sharded control plane. The centralized driver reruns its full
// scheduling pass (schedule(): every pool × every worker) on every task
// completion, which puts the driver on the critical path of every monotask.
// Delegated mode splits that responsibility:
//
//   - The driver keeps what genuinely needs the global view: admission and
//     pool fair-share, stage-DAG transitions (finishStage/reopenStage),
//     retry/exclusion policy, and attribution (all metrics bookkeeping).
//   - Each worker gets a dispatcher. When one of the worker's slots opens
//     and no driver-level transition happened, the dispatcher self-assigns
//     the worker's next task directly from the shared pending views that the
//     job's template instantiated (template.go) — no global pass.
//   - When a stage finishes, the machines that produced its output broadcast
//     the completion metadata (their share of the map-output locations) to
//     every peer as netsim control flows, and the driver is sent one
//     aggregate stage result instead of per-task completions. The flows are
//     accounting-only (zero virtual time), matching the fidelity of the
//     centralized path, whose per-task RPCs were never simulated either.
//
// Determinism argument (why delegated runs are byte-identical): between
// engine events the driver is quiescent — the last scheduling pass (global
// or local) ran until no task could launch. A completion on worker w that
// causes no global transition changes exactly two inputs of the pick
// policy: w's free-slot count rises, and the stage's running count falls.
// Neither creates pending work, and a larger free[w] can only flip
// hasFreeHome from false to true — which makes delay scheduling refuse
// *more* remote placements elsewhere, never fewer — so no other worker can
// newly pick a task. Filling w with repeated pickTask(w) therefore computes
// exactly the launches the full pass would have made, in the same order.
// Anything else — a requeue, a stage finishing, an exclusion flipping, a job
// admitted or aborted — marks the driver dirty (markGlobal) and the next
// event runs the ordinary schedule() verbatim. Speculation compares running
// attempts across machines on every completion, so a driver configured with
// Speculation keeps the centralized pass entirely.

// dispatcher is one worker's self-dispatch agent.
type dispatcher struct {
	d *Driver
	w int
	// pull marks an executor that invokes fill itself (core.Worker's task
	// source) right after delivering each completion callback — the
	// worker-local queue feeding path. Executors without the hook (the
	// pipelined emulation) are filled by the driver's afterCompletion.
	pull bool
}

// taskSource is the optional executor capability behind worker-local queue
// feeding: core.Worker implements it, the pipelined executor does not.
type taskSource interface {
	SetTaskSource(func())
}

// Control-message sizing for the delegated control plane's accounting: a
// fixed per-message header plus one map-output entry (machine + sizes,
// roughly a Spark MapStatus entry) per task covered by the message.
const (
	controlMsgHeaderBytes = 24
	controlMsgEntryBytes  = 16
)

// DispatchStats exposes the control plane's message accounting, for the
// centralized-vs-delegated comparison monoperf tables and tests read.
type DispatchStats struct {
	// Delegated reports whether this driver runs worker-side dispatch.
	Delegated bool
	// DriverMessages counts messages through the driver: in centralized
	// mode one dispatch RPC per launch and one status RPC per completion;
	// in delegated mode one template/range grant per worker per admission,
	// one launch directive per driver-directed placement (global passes),
	// and one aggregate result per finished stage.
	DriverMessages int64
	// DriverBytes is the modeled payload total of DriverMessages.
	DriverBytes int64
	// PeerMessages counts peer-to-peer stage-completion broadcasts
	// (delegated mode only); they are also recorded on the fabric's
	// control ledger (netsim.Fabric.ControlStats).
	PeerMessages int64
	// PeerBytes is the modeled payload total of PeerMessages.
	PeerBytes int64
	// SelfDispatched counts launches a worker's dispatcher made without a
	// driver pass.
	SelfDispatched int64
	// GlobalPasses counts full schedule() passes.
	GlobalPasses int64
}

// DispatchStats returns the driver's control-plane accounting so far.
func (d *Driver) DispatchStats() DispatchStats {
	s := d.ctrl
	s.Delegated = d.delegated()
	return s
}

// delegated reports whether the worker-side dispatch path is active.
func (d *Driver) delegated() bool { return d.disp != nil }

// initDispatch builds the per-worker dispatchers and wires the executors'
// pull hooks. Speculation needs the driver's global view of running
// attempts on every completion, so it keeps the centralized pass.
func (d *Driver) initDispatch() {
	if !d.cfg.WorkerDispatch || d.cfg.Speculation {
		return
	}
	d.disp = make([]*dispatcher, len(d.execs))
	for w, e := range d.execs {
		dp := &dispatcher{d: d, w: w}
		if src, ok := e.(taskSource); ok {
			dp.pull = true
			src.SetTaskSource(dp.fill)
		}
		d.disp[w] = dp
	}
}

// markGlobal records a driver-level transition (pending work appeared, a
// stage or job changed state, exclusion flipped): the next scheduling
// decision must be a full pass, not a worker-local fill.
func (d *Driver) markGlobal() { d.globalDirty = true }

// afterCompletion routes the end of onAttemptDone: the centralized driver
// reruns its global pass; a delegated driver does so only after a global
// transition, and otherwise lets worker w refill its own slots (via the
// executor's pull hook when it has one, inline here when it does not).
func (d *Driver) afterCompletion(w int) {
	if d.disp == nil {
		d.schedule()
		return
	}
	if d.globalDirty {
		d.schedule()
		return
	}
	if !d.disp[w].pull {
		d.disp[w].fill()
	}
}

// afterTimeout is afterCompletion for fetch-timeout events, which have no
// trailing executor pull: the slot is still held by the zombie attempt, so
// a clean timeout leaves nothing for w to fill, but the fill is kept for
// symmetry (it is a no-op scan at quiescence).
func (d *Driver) afterTimeout(w int) {
	if d.disp == nil {
		d.schedule()
		return
	}
	if d.globalDirty {
		d.schedule()
		return
	}
	d.disp[w].fill()
}

// fill launches tasks on this dispatcher's worker until it is full or
// refuses everything — the worker-local replacement for a global pass. The
// pick policy is the driver's own (pickTask), which is what makes the
// delegated schedule bit-identical to the centralized one.
func (p *dispatcher) fill() {
	d := p.d
	if d.globalDirty {
		// A transition raced ahead of this pull (e.g. the completion that
		// triggered it also finished a stage): run the full pass instead.
		d.schedule()
		return
	}
	w := p.w
	for d.available(w) && d.free[w] > 0 {
		st, idx := d.pickTask(w)
		if st == nil {
			return
		}
		// A failed launch aborted the job and already ran a global pass;
		// keep looping — the next pick sees the post-abort state.
		d.launch(st, idx, w)
	}
}

// announceStageComplete models the delegated control plane's peer-to-peer
// metadata exchange for one finished stage: every machine that hosted
// winning attempts broadcasts its share of the stage's output map to each
// peer (recorded on the fabric's control ledger), and the driver receives
// one aggregate stage result. Pure accounting: control messages carry no
// virtual latency, exactly like the centralized path's implicit RPCs.
func (d *Driver) announceStageComplete(st *stageState) {
	n := len(d.execs)
	counts := d.machineScratch
	if counts == nil {
		counts = make([]int, n)
		d.machineScratch = counts
	}
	for i := range counts {
		counts[i] = 0
	}
	tasks := 0
	for _, tm := range st.metrics.Tasks {
		if tm != nil && !tm.Failed {
			counts[tm.Machine]++
			tasks++
		}
	}
	for src, c := range counts {
		if c == 0 {
			continue
		}
		bytes := int64(controlMsgHeaderBytes + controlMsgEntryBytes*c)
		for dst := 0; dst < n; dst++ {
			if dst == src {
				continue
			}
			d.cluster.Fabric.RecordControl(src, dst, bytes)
			d.ctrl.PeerMessages++
			d.ctrl.PeerBytes += bytes
		}
	}
	d.ctrl.DriverMessages++ // the aggregate stage result, upward
	d.ctrl.DriverBytes += int64(controlMsgHeaderBytes + controlMsgEntryBytes*tasks)
}

// grantRanges models the admission-time handout in delegated mode: the
// driver sends each worker the job's template reference and its stage
// partition ranges once per admitted job, instead of a dispatch RPC per
// task later.
func (d *Driver) grantRanges(h *JobHandle) {
	n := int64(len(d.execs))
	d.ctrl.DriverMessages += n
	d.ctrl.DriverBytes += n * int64(controlMsgHeaderBytes+controlMsgEntryBytes*len(h.Spec.Stages))
}
