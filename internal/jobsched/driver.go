// Package jobsched is the driver: it walks a job's stage DAG, places
// multitasks on workers with locality preference, and keeps each worker
// loaded to its executor's declared concurrency.
//
// The driver is identical for Spark-style and monotasks execution (§3.4):
// the only difference it sees is MaxConcurrentTasks — slot count for the
// pipelined executor, cores + disk concurrency + network concurrency + 1
// for monotasks — which is exactly the paper's point about where concurrency
// control should live.
//
// Beyond placement, the driver owns the resilience policies real frameworks
// layer on the bulk-synchronous model (§2.1): bounded per-task retry budgets,
// per-machine failure counting with timed exclusion, machine crash and
// recovery, and fetch retry timeouts. A job either completes or aborts with
// a descriptive error on its JobHandle — the driver never panics on a
// failure path.
package jobsched

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/shuffle"
	"repro/internal/sim"
	"repro/internal/task"
)

// JobHandle tracks one submitted job.
type JobHandle struct {
	Spec    *task.JobSpec
	Metrics *task.JobMetrics

	// Pool, Priority, and Deadline echo the SubmitOptions the job was
	// submitted with; Submitted and AdmittedAt record when it entered the
	// admission queue and when the pool let it run (equal unless the pool's
	// concurrency limit made it wait).
	Pool       string
	Priority   int
	Deadline   sim.Time
	Submitted  sim.Time
	AdmittedAt sim.Time

	stages    []*stageState
	remaining int
	done      bool
	failed    bool
	err       error
	seq       int // global submission order, the dispatch tie-breaker
	pool      *poolState
	tpl       *jobTemplate
	admitted  bool
	released  bool
	// base offsets this job's stage IDs in the shared shuffle tracker so
	// concurrent jobs' outputs cannot collide.
	base int
}

// Done reports whether every stage has completed successfully.
func (h *JobHandle) Done() bool { return h.done }

// Failed reports whether the job was aborted.
func (h *JobHandle) Failed() bool { return h.failed }

// Err returns the abort reason for a failed job, nil otherwise.
func (h *JobHandle) Err() error { return h.err }

// finished reports whether the job needs no further scheduling.
func (h *JobHandle) finished() bool { return h.done || h.failed }

// attempt is one execution of one task index (speculation and failure
// recovery can create several per index).
type attempt struct {
	machine int
	start   sim.Time
	// retired attempts no longer count: they lost a race, their machine
	// died, their fetch timed out, or their input was invalidated. Their
	// eventual completion callbacks are ignored.
	retired bool
}

type stageState struct {
	job       *JobHandle
	spec      *task.StageSpec
	metrics   *task.StageMetrics
	waitingOn int   // parent stages not yet complete
	pending   []int // task indices not yet launched
	running   int   // live attempts
	completed int   // task indices with a winning attempt
	started   bool
	finished  bool // finishStage has run (may be rolled back by a failure)
	// hasChildren: some stage reads this one's shuffle output, so map
	// outputs must register even when a task produced zero bytes (the
	// tracker needs the entry to plan fetches at all).
	hasChildren bool

	attempts  [][]*attempt // per task index; slices carved by instantiate
	doneTasks []bool
	durations []float64 // completed-attempt durations, for speculation
	failures  []int     // failed attempts per task, against MaxTaskFailures
}

func (s *stageState) runnable() bool {
	return s.waitingOn == 0 && len(s.pending) > 0
}

func (s *stageState) hasLiveAttempt(ti int) bool {
	for _, a := range s.attempts[ti] {
		if !a.retired {
			return true
		}
	}
	return false
}

func (s *stageState) inPending(ti int) bool {
	for _, p := range s.pending {
		if p == ti {
			return true
		}
	}
	return false
}

// Driver schedules any number of concurrent jobs over one set of executors.
// Jobs land in named scheduling pools (Config.Pools; a fair-share default
// pool exists always): each pool has an admission queue and an optional
// concurrency limit, and free slots are arbitrated between pools by weighted
// fair sharing, then within a pool by its policy (see pools.go). This is
// what lets the Fig. 16 attribution experiment — and its N-job multijob
// generalization — run many jobs side by side.
type Driver struct {
	cluster *cluster.Cluster
	fs      *dfs.FS
	tracker *shuffle.Tracker
	execs   []task.Executor
	free    []int
	dead    []bool
	cfg     Config

	// inflight counts launch callbacks not yet fired per machine —
	// including retired "zombie" attempts the executor is still simulating.
	// The invariant free[w] = MaxConcurrentTasks(w) − inflight[w] (for live,
	// non-drained machines) is what lets RecoverMachine re-register exactly
	// the capacity the zombies are not holding.
	inflight []int

	// Exclusion (Spark's blacklisting): a machine accumulating failures is
	// barred from new assignments until its backoff expires.
	excluded        []bool
	excludeUntil    []sim.Time
	excludeCount    []int // times excluded, for exponential backoff
	machineFailures []int // failures since last reset

	jobs       []*JobHandle
	pools      []*poolState
	poolByName map[string]*poolState
	nextBase   int

	// Worker-side dispatch (dispatcher.go): per-worker dispatchers (nil for
	// a centralized driver), the needs-a-global-pass flag, control-plane
	// message accounting, and scratch for stage-completion broadcasts.
	// scheduleDepth distinguishes driver-directed launches (inside a global
	// pass) from worker self-dispatch in the accounting.
	disp           []*dispatcher
	globalDirty    bool
	ctrl           DispatchStats
	machineScratch []int
	scheduleDepth  int

	// Execution-template cache and the hot-path slabs/pools/scratch it feeds
	// (see template.go). All single-threaded, like the engine they serve.
	templates      map[string]*jobTemplate
	fpScratch      []byte
	attemptSlab    []attempt
	taskSlab       []task.Task
	completionPool []*completionOp
	timeoutPool    []*timeoutOp
	parentScratch  []int
	orderScratch   []*poolState
	deficitScratch []float64
	jobScratch     []*JobHandle
}

// New builds a driver over one executor per cluster machine, in machine
// order, with default policies.
func New(c *cluster.Cluster, fs *dfs.FS, execs []task.Executor) (*Driver, error) {
	return NewWithConfig(c, fs, execs, Config{})
}

// NewWithConfig is New with explicit driver policies.
func NewWithConfig(c *cluster.Cluster, fs *dfs.FS, execs []task.Executor, cfg Config) (*Driver, error) {
	if len(execs) != c.Size() {
		return nil, fmt.Errorf("jobsched: %d executors for %d machines", len(execs), c.Size())
	}
	d := &Driver{cluster: c, fs: fs, tracker: shuffle.NewTracker(), execs: execs, cfg: cfg.withDefaults()}
	for i, e := range execs {
		if e.MachineID() != i {
			return nil, fmt.Errorf("jobsched: executor %d reports machine %d", i, e.MachineID())
		}
		d.free = append(d.free, e.MaxConcurrentTasks())
	}
	n := len(execs)
	d.dead = make([]bool, n)
	d.inflight = make([]int, n)
	d.excluded = make([]bool, n)
	d.excludeUntil = make([]sim.Time, n)
	d.excludeCount = make([]int, n)
	d.machineFailures = make([]int, n)
	if err := d.initPools(); err != nil {
		return nil, err
	}
	d.initDispatch()
	return d, nil
}

// available reports whether machine w may receive new tasks.
func (d *Driver) available(w int) bool { return !d.dead[w] && !d.excluded[w] }

// Submit queues a job in the default pool; its first stages begin at the
// next scheduling pass. Call Run (or drive the cluster engine) afterwards.
func (d *Driver) Submit(spec *task.JobSpec) (*JobHandle, error) {
	return d.SubmitWith(spec, SubmitOptions{})
}

// SubmitWith queues a job with explicit pool/priority/deadline tags. The job
// enters its pool's admission queue immediately; it starts running once the
// pool has admission capacity. Submitting from inside a running simulation
// (an engine callback at a job's arrival time) is how open-loop workloads
// model jobs arriving over time.
func (d *Driver) SubmitWith(spec *task.JobSpec, opts SubmitOptions) (*JobHandle, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if opts.Deadline < 0 {
		return nil, fmt.Errorf("jobsched: job %q has negative deadline %v (the dispatch window is inverted)", spec.Name, opts.Deadline)
	}
	poolName := opts.Pool
	if poolName == "" {
		poolName = DefaultPool
	}
	pool, ok := d.poolByName[poolName]
	if !ok {
		return nil, fmt.Errorf("jobsched: job %q names undeclared pool %q", spec.Name, poolName)
	}
	now := d.cluster.Engine.Now()
	h := &JobHandle{
		Spec:      spec,
		Metrics:   &task.JobMetrics{Name: spec.Name, Start: now},
		Pool:      poolName,
		Priority:  opts.Priority,
		Deadline:  opts.Deadline,
		Submitted: now,
		seq:       len(d.jobs),
		pool:      pool,
		remaining: len(spec.Stages),
		base:      d.nextBase,
	}
	d.nextBase += len(spec.Stages)
	h.tpl = d.templateFor(spec)
	d.instantiate(h, h.tpl)
	d.jobs = append(d.jobs, h)
	pool.enqueue(h)
	d.admitFrom(pool)
	return h, nil
}

// Run drives the simulation until all submitted jobs finish and returns
// their metrics in submission order. Jobs that aborted (retry budget
// exhausted, unrecoverable data loss) or stalled carry their reason on
// JobHandle.Err; Run never panics on a failure path.
func (d *Driver) Run() []*task.JobMetrics {
	for {
		d.cluster.Engine.Run()
		if d.cluster.Engine.AbortErr() != nil {
			// The engine's abort check fired (deadline, cancelled context):
			// stop scheduling. Unfinished jobs are left as-is — the caller
			// decides whether to fail them (run.JobsContext does, via
			// AbortAll) or to clear the abort and resume.
			break
		}
		// The engine drained. Any unfinished job stalled: every machine that
		// could host its remaining tasks is gone, or the DAG deadlocked.
		// Abort one and re-drain — the abort can admit a queued successor
		// from the stalled job's pool, which schedules fresh events.
		var stalled *JobHandle
		for _, h := range d.jobs {
			if !h.done && !h.failed {
				stalled = h
				break
			}
		}
		if stalled == nil {
			break
		}
		d.abortJob(stalled, fmt.Errorf("jobsched: job %q stalled with %d stages incomplete (all capable machines failed, or the task DAG deadlocked)", stalled.Spec.Name, stalled.remaining))
	}
	out := make([]*task.JobMetrics, 0, len(d.jobs))
	for _, h := range d.jobs {
		out = append(out, h.Metrics)
	}
	return out
}

// Wait runs the simulation to completion and returns the first submitted
// job's abort reason, nil if every job completed. Per-job outcomes remain
// on each JobHandle (Done / Err).
func (d *Driver) Wait() error {
	d.Run()
	for _, h := range d.jobs {
		if h.err != nil {
			return h.err
		}
	}
	return nil
}

// schedule fills free slots one task per worker per pass (round robin), so
// a stage smaller than the cluster's total concurrency still spreads across
// machines instead of piling onto the lowest-numbered ones. It is called on
// submission and on every task completion. When no regular work fits, the
// speculation policy may launch backup attempts. Dead and excluded machines
// receive nothing.
func (d *Driver) schedule() {
	// Entering the full pass satisfies any pending global transition; clear
	// the flag first so transitions caused *inside* this pass (an abort, an
	// exclusion) re-mark it and nested passes handle them.
	d.globalDirty = false
	d.ctrl.GlobalPasses++
	d.scheduleDepth++
	for {
		progress := false
		for w := range d.execs {
			if !d.available(w) || d.free[w] == 0 {
				continue
			}
			st, idx := d.pickTask(w)
			if st == nil {
				continue
			}
			if d.launch(st, idx, w) {
				progress = true
			}
		}
		if progress {
			continue
		}
		for w := range d.execs {
			if !d.available(w) || d.free[w] == 0 {
				continue
			}
			if d.maybeSpeculate(w) {
				progress = true
			}
		}
		if !progress {
			d.scheduleDepth--
			return
		}
	}
}

// pickTask chooses the next task for worker w. Pools are tried in weighted
// fair-share order (smallest running-tasks-over-weight deficit first); the
// chosen pool's policy picks a job; within a job, stages in DAG order.
// Locality: an input-stage task whose block lives on w is preferred; a
// stage's remaining remote tasks are only taken when it has no local ones.
func (d *Driver) pickTask(w int) (*stageState, int) {
	for _, p := range d.poolOrder() {
		if st, idx, ok := d.pickFromPool(p, w); ok {
			return st, idx
		}
	}
	return nil, 0
}

// pickFromStage returns the position in st.pending to run on w.
func (d *Driver) pickFromStage(st *stageState, w int) (int, bool) {
	if st.spec.InputBlocks == nil {
		return 0, true // no locality to honour; FIFO
	}
	for pos, ti := range st.pending {
		if st.spec.InputBlocks[ti].IsLocal(w) {
			return pos, true
		}
	}
	// No local block here. Stealing another machine's local task the moment
	// a slot opens wrecks locality whenever slots outnumber tasks, so —
	// like Spark's delay scheduling — only run a task remotely if none of
	// its home machines has a free slot to claim it.
	for pos, ti := range st.pending {
		if !d.hasFreeHome(st.spec.InputBlocks[ti].Replicas) {
			return pos, true
		}
	}
	return 0, false
}

// hasFreeHome reports whether any replica's machine has an open slot it
// could be assigned work on.
func (d *Driver) hasFreeHome(replicas []dfs.Location) bool {
	for _, r := range replicas {
		if d.available(r.Machine) && d.free[r.Machine] > 0 {
			return true
		}
	}
	return false
}

// liveReplica returns a replica of b on a live machine. Excluded machines
// qualify: exclusion bars task assignment, not data access — their disks
// still serve reads.
func (d *Driver) liveReplica(b *dfs.Block) (dfs.Location, bool) {
	for _, r := range b.Replicas {
		if !d.dead[r.Machine] {
			return r, true
		}
	}
	return dfs.Location{}, false
}

// launch takes the pending task at position pos of st and runs it on w,
// reporting whether an attempt actually started.
func (d *Driver) launch(st *stageState, pos, w int) bool {
	ti := st.pending[pos]
	st.pending = append(st.pending[:pos], st.pending[pos+1:]...)
	return d.launchAttempt(st, ti, w)
}

// launchAttempt starts one attempt of task ti on worker w (first run,
// failure retry, or speculative backup). A task that cannot be resolved —
// every replica of its input block is on a failed machine — aborts the job
// instead of launching.
func (d *Driver) launchAttempt(st *stageState, ti, w int) bool {
	t, err := d.resolve(st, ti, w)
	if err != nil {
		d.abortJob(st.job, fmt.Errorf("jobsched: job %q: resolving task %d of stage %q: %w", st.job.Spec.Name, ti, st.spec.Name, err))
		return false
	}
	att := d.newAttempt(w, d.cluster.Engine.Now())
	st.attempts[ti] = append(st.attempts[ti], att)
	st.running++
	if !st.started {
		st.started = true
		st.metrics.Start = d.cluster.Engine.Now()
	}
	d.free[w]--
	d.inflight[w]++
	if d.disp != nil && d.scheduleDepth == 0 {
		d.ctrl.SelfDispatched++ // worker-local fill, no driver round trip
	} else {
		d.ctrl.DriverMessages++ // driver-directed placement (dispatch RPC)
		d.ctrl.DriverBytes += controlMsgHeaderBytes + controlMsgEntryBytes
	}
	d.execs[w].Launch(t, d.takeCompletion(st, ti, w, att).fn)
	if d.cfg.FetchRetryTimeout > 0 && (len(t.Fetches) > 0 || t.RemoteRead != nil) {
		d.armFetchTimeout(st, ti, att, w)
	}
	return true
}

// onAttemptDone is the Launch completion callback (dispatched through a
// pooled completionOp; see template.go).
func (d *Driver) onAttemptDone(st *stageState, ti, w int, att *attempt, m *task.TaskMetrics) {
	d.inflight[w]--
	if d.disp == nil {
		d.ctrl.DriverMessages++ // per-completion status RPC, centralized
		d.ctrl.DriverBytes += controlMsgHeaderBytes
	}
	if att.retired {
		// The machine failed, the fetch timed out, or the attempt's input
		// was invalidated; accounting was already unwound. The executor
		// slot the zombie held opens up now. Dead machines' slots stay
		// zero until recovery.
		if !d.dead[w] {
			d.free[w]++
		}
		d.afterCompletion(w)
		return
	}
	att.retired = true
	d.free[w]++
	st.running--
	if m.Failed {
		d.handleAttemptFailure(st, ti, w, m.FailReason)
		d.afterCompletion(w)
		return
	}
	if st.doneTasks[ti] {
		// A competing speculative attempt already won.
		d.afterCompletion(w)
		return
	}
	st.doneTasks[ti] = true
	st.completed++
	st.metrics.Tasks[ti] = m
	st.durations = append(st.durations, float64(m.End-m.Start))
	if st.spec.ShuffleOutBytes > 0 || st.hasChildren {
		d.tracker.RegisterMapOutput(st.spec.ID+st.job.stageBase(), ti, w, st.spec.ShuffleOutBytes, st.spec.ShuffleInMemory)
	}
	if st.completed == st.spec.NumTasks && !st.finished {
		d.finishStage(st)
	}
	d.afterCompletion(w)
}

// stageBase namespaces stage IDs per job in the shared shuffle tracker.
func (h *JobHandle) stageBase() int { return h.base }

// finishStage marks st complete and unblocks its children (the template's
// precomputed children list replaces the all-stages × all-parents scan).
func (d *Driver) finishStage(st *stageState) {
	st.finished = true
	st.metrics.End = d.cluster.Engine.Now()
	// Children may have become runnable: a global transition. In delegated
	// mode this is also the peer-metadata broadcast moment.
	d.markGlobal()
	if d.disp != nil {
		d.announceStageComplete(st)
	}
	h := st.job
	for _, cid := range h.tpl.children[st.spec.ID] {
		h.stages[cid].waitingOn--
	}
	h.remaining--
	if h.remaining == 0 {
		h.done = true
		h.Metrics.End = d.cluster.Engine.Now()
		d.releaseJob(h)
	}
}

// AbortAll fails every unfinished job with err — the cancellation epilogue:
// after an engine abort stops Run mid-flight, the caller uses AbortAll to
// turn the in-flight jobs into cleanly failed ones (JobHandle.Err set, pools
// released, metrics end-stamped at the abort time) so partial results are
// well-formed rather than half-updated.
func (d *Driver) AbortAll(err error) {
	for _, h := range d.jobs {
		if !h.finished() {
			d.abortJob(h, err)
		}
	}
}

// abortJob fails h with err: live attempts are retired (their executors
// finish simulating them as zombies, releasing slots on completion), queued
// work is dropped, and the error is surfaced through JobHandle.Err and
// Driver.Wait. Other jobs sharing the driver continue unaffected.
func (d *Driver) abortJob(h *JobHandle, err error) {
	if h.finished() {
		return
	}
	h.failed = true
	h.err = err
	h.Metrics.End = d.cluster.Engine.Now()
	d.markGlobal()
	for _, st := range h.stages {
		st.pending = st.pending[:0]
		for ti := range st.attempts {
			for _, a := range st.attempts[ti] {
				if !a.retired {
					a.retired = true
					st.running--
				}
			}
		}
	}
	d.releaseJob(h)
	d.schedule()
}

// resolve turns (stage, index) into a concrete Task for machine w. Task
// structs come from the driver's slab (see template.go); the dynamic side —
// placement, fetch plans — is always computed fresh here, which is why the
// execution-template cache stays valid under failures and retries.
func (d *Driver) resolve(st *stageState, ti, w int) (*task.Task, error) {
	spec := st.spec
	t := d.newTask()
	*t = task.Task{Stage: spec, Index: ti, Machine: w, DiskReadDisk: -1}
	switch {
	case spec.InputBlocks != nil:
		b := spec.InputBlocks[ti]
		if disk := b.LocalDisk(w); disk >= 0 && !d.dead[w] {
			t.DiskReadBytes = b.Bytes
			t.DiskReadDisk = disk
		} else {
			replica, ok := d.liveReplica(b)
			if !ok {
				return nil, fmt.Errorf("every replica of block %d of %q is on a failed machine (replication too low for this failure)", b.Index, b.File)
			}
			t.RemoteRead = &task.Fetch{From: replica.Machine, Bytes: b.Bytes, FromDisk: replica.Disk}
		}
	case spec.InputFromMem:
		t.MemReadBytes = spec.InputBytesPerTask
	case spec.HasShuffleInput():
		parents := d.parentScratch[:0]
		for _, p := range spec.ParentIDs {
			parents = append(parents, p+st.job.stageBase())
		}
		d.parentScratch = parents
		fetches, err := d.tracker.FetchesFor(parents, ti, spec.NumTasks)
		if err != nil {
			return nil, err
		}
		// Rewrite fetch stage IDs back to job-local for executor cache keys.
		for i := range fetches {
			fetches[i].Stage -= st.job.stageBase()
		}
		t.Fetches = fetches
	}
	return t, nil
}

// requeue returns ti to st's pending queue unless it already has a live
// attempt, a winning attempt, or is queued.
func (d *Driver) requeue(st *stageState, ti int) {
	if st.doneTasks[ti] || st.inPending(ti) || st.hasLiveAttempt(ti) {
		return
	}
	st.pending = append(st.pending, ti)
	sort.Ints(st.pending)
	d.markGlobal() // pending work appeared; any worker may claim it
}
