package jobsched

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/task"
)

// testSpec builds a clean-arithmetic machine spec for failure tests.
func testSpec(cores, disks int) cluster.MachineSpec {
	ds := make([]resource.DiskSpec, disks)
	for i := range ds {
		ds[i] = resource.DiskSpec{Kind: resource.HDD, SeqBW: 100e6, ContentionAlpha: 0.35}
	}
	return cluster.MachineSpec{Cores: cores, Disks: ds, NetBW: 100e6, MemBytes: 1 << 30}
}

// monoDriver builds a monotasks driver over n test machines.
func monoDriver(t *testing.T, n int, cfg Config) (*cluster.Cluster, *Driver) {
	t.Helper()
	c := testCluster(t, n)
	fs, _ := dfs.New(dfs.Config{Machines: n, DisksPerMachine: 1})
	g := core.NewGroup(c, core.Options{})
	execs := make([]task.Executor, n)
	for i, w := range g.Workers {
		execs[i] = w
	}
	d, err := NewWithConfig(c, fs, execs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, d
}

func mapReduceJob(maps, reduces int) *task.JobSpec {
	return &task.JobSpec{Name: "mr", Stages: []*task.StageSpec{
		{ID: 0, Name: "map", NumTasks: maps, OpCPU: 1, ShuffleOutBytes: 20e6},
		// A long reduce keeps the job mid-shuffle when the test injects the
		// failure.
		{ID: 1, Name: "reduce", NumTasks: reduces, OpCPU: 5, ParentIDs: []int{0}, OutputBytes: 10e6},
	}}
}

func TestFailureDuringStageRetriesTasks(t *testing.T) {
	c, d := monoDriver(t, 4, Config{})
	h, err := d.Submit(&task.JobSpec{Name: "j", Stages: []*task.StageSpec{
		{ID: 0, Name: "cpu", NumTasks: 32, OpCPU: 5},
	}})
	if err != nil {
		t.Fatal(err)
	}
	c.Engine.At(1, func() {
		if err := d.FailMachine(3); err != nil {
			t.Error(err)
		}
	})
	ms := d.Run()
	if !h.Done() {
		t.Fatal("job did not complete after failure")
	}
	// Every task index must have metrics, and none from the dead machine's
	// discarded attempts.
	for i, tm := range ms[0].Stages[0].Tasks {
		if tm == nil {
			t.Fatalf("task %d has no result", i)
		}
		if tm.Machine == 3 && tm.End > 1 {
			t.Fatalf("task %d credited to dead machine at %v", i, tm.End)
		}
	}
}

func TestFailureLosesShuffleOutputAndRerunsMaps(t *testing.T) {
	c, d := monoDriver(t, 4, Config{})
	h, err := d.Submit(mapReduceJob(16, 8))
	if err != nil {
		t.Fatal(err)
	}
	// Fail machine 2 well into the reduce stage: its map outputs are gone,
	// so those map tasks must re-run before the reduce can finish.
	failed := false
	c.Engine.At(4, func() {
		failed = true
		if err := d.FailMachine(2); err != nil {
			t.Error(err)
		}
	})
	ms := d.Run()
	if !failed || !h.Done() {
		t.Fatal("job did not complete after mid-reduce failure")
	}
	// Some map task must have been re-executed after the failure.
	reran := false
	for _, tm := range ms[0].Stages[0].Tasks {
		if tm.Start >= 4 {
			reran = true
			if tm.Machine == 2 {
				t.Fatal("re-executed map placed on the dead machine")
			}
		}
	}
	if !reran {
		t.Fatal("no map task re-executed despite lost shuffle output")
	}
	// The reduce stage must finish after the re-executions.
	if ms[0].Stages[1].End <= 4 {
		t.Fatal("reduce finished before the failure it depends on was repaired")
	}
}

func TestFailureAfterJobDoneIsHarmless(t *testing.T) {
	c, d := monoDriver(t, 2, Config{})
	h, _ := d.Submit(&task.JobSpec{Name: "j", Stages: []*task.StageSpec{
		{ID: 0, Name: "cpu", NumTasks: 4, OpCPU: 0.5},
	}})
	c.Engine.At(100, func() {
		if err := d.FailMachine(0); err != nil {
			t.Error(err)
		}
	})
	d.Run()
	if !h.Done() {
		t.Fatal("job incomplete")
	}
}

func TestFailMachineValidation(t *testing.T) {
	_, d := monoDriver(t, 2, Config{})
	if err := d.FailMachine(9); err == nil {
		t.Fatal("out-of-range machine accepted")
	}
	if err := d.FailMachine(1); err != nil {
		t.Fatal(err)
	}
	if err := d.FailMachine(1); err != nil {
		t.Fatal("double failure should be a no-op, not an error")
	}
}

func TestSpeculationRescuesStraggler(t *testing.T) {
	// One machine at 20% speed. Without speculation the stage waits for its
	// crawling tasks; with it, backups on fast machines win.
	runJob := func(speculate bool) sim.Time {
		specs := []cluster.MachineSpec{
			testSpec(4, 1), testSpec(4, 1), testSpec(4, 1), testSpec(4, 1).Degraded(0.2),
		}
		c, err := cluster.NewHetero(specs)
		if err != nil {
			t.Fatal(err)
		}
		fs, _ := dfs.New(dfs.Config{Machines: 4, DisksPerMachine: 1})
		g := core.NewGroup(c, core.Options{})
		execs := make([]task.Executor, 4)
		for i, w := range g.Workers {
			execs[i] = w
		}
		d, _ := NewWithConfig(c, fs, execs, Config{Speculation: speculate})
		h, _ := d.Submit(&task.JobSpec{Name: "j", Stages: []*task.StageSpec{
			{ID: 0, Name: "cpu", NumTasks: 64, OpCPU: 2},
		}})
		d.Run()
		if !h.Done() {
			t.Fatal("job incomplete")
		}
		return h.Metrics.Duration()
	}
	plain := runJob(false)
	spec := runJob(true)
	if spec >= plain {
		t.Fatalf("speculation did not help: %v ≥ %v", spec, plain)
	}
}

func TestSpeculationDisabledByDefault(t *testing.T) {
	_, d := monoDriver(t, 2, Config{})
	if d.cfg.Speculation {
		t.Fatal("speculation should default off")
	}
	if d.cfg.SpeculationMultiplier != 1.5 || d.cfg.SpeculationMinFraction != 0.75 {
		t.Fatalf("defaults wrong: %+v", d.cfg)
	}
}

func TestSpeculativeWinnerCountsOnce(t *testing.T) {
	// With aggressive speculation on a uniform cluster, duplicated attempts
	// must not double-count completions or deadlock accounting.
	_, d := monoDriver(t, 3, Config{Speculation: true, SpeculationMultiplier: 0.1, SpeculationMinFraction: 0.1})
	h, _ := d.Submit(&task.JobSpec{Name: "j", Stages: []*task.StageSpec{
		{ID: 0, Name: "cpu", NumTasks: 24, OpCPU: 3},
		{ID: 1, Name: "next", NumTasks: 6, OpCPU: 1, ParentIDs: []int{0}},
	}})
	// Stage 0 has no shuffle output, so add one for the child to read.
	h.Spec.Stages[0].ShuffleOutBytes = 1e6
	ms := d.Run()
	if !h.Done() {
		t.Fatal("job incomplete under aggressive speculation")
	}
	for i, tm := range ms[0].Stages[0].Tasks {
		if tm == nil {
			t.Fatalf("task %d missing metrics", i)
		}
	}
}

func TestFailureDuringMapStageDoesNotDeadlockChildren(t *testing.T) {
	// Regression: a failure while the parent stage is still running must
	// not double-block the child (the parent never unblocked it yet).
	c, d := monoDriver(t, 4, Config{})
	h, err := d.Submit(mapReduceJob(32, 8))
	if err != nil {
		t.Fatal(err)
	}
	// Fail while maps are clearly still running.
	c.Engine.At(0.5, func() {
		if err := d.FailMachine(1); err != nil {
			t.Error(err)
		}
	})
	d.Run()
	if !h.Done() {
		t.Fatal("job deadlocked after a mid-map failure")
	}
}

func TestRepeatedFailures(t *testing.T) {
	// Losing two of four machines, at different phases, must still finish.
	c, d := monoDriver(t, 4, Config{})
	h, err := d.Submit(mapReduceJob(32, 8))
	if err != nil {
		t.Fatal(err)
	}
	c.Engine.At(0.5, func() { _ = d.FailMachine(3) })
	c.Engine.At(6, func() { _ = d.FailMachine(2) })
	d.Run()
	if !h.Done() {
		t.Fatal("job did not survive two failures")
	}
	// Surviving machines only.
	for _, st := range h.Metrics.Stages {
		for i, tm := range st.Tasks {
			if tm == nil {
				t.Fatalf("task %d missing", i)
			}
			if tm.Machine >= 2 && tm.End > 6 {
				t.Fatalf("final attempt of task %d credited to failed machine %d", i, tm.Machine)
			}
		}
	}
}
