package jobsched

import (
	"testing"

	"repro/internal/task"
)

func diamondSpec(name string, tasks int) *task.JobSpec {
	return &task.JobSpec{Name: name, Stages: []*task.StageSpec{
		{ID: 0, Name: "a", NumTasks: tasks, InputFromMem: true, InputBytesPerTask: 1 << 20, OpCPU: 0.001, ShuffleOutBytes: 1 << 20},
		{ID: 1, Name: "b", NumTasks: tasks, ParentIDs: []int{0}, OpCPU: 0.001, ShuffleOutBytes: 1 << 20},
		{ID: 2, Name: "c", NumTasks: tasks, ParentIDs: []int{0}, OpCPU: 0.001, ShuffleOutBytes: 1 << 20},
		{ID: 3, Name: "d", NumTasks: tasks, ParentIDs: []int{1, 2}, OpCPU: 0.001},
	}}
}

func TestBuildTemplateShape(t *testing.T) {
	tpl := buildTemplate(diamondSpec("diamond", 3))
	if tpl.numStages != 4 || tpl.totalTasks != 12 {
		t.Fatalf("template shape = %d stages / %d tasks, want 4 / 12", tpl.numStages, tpl.totalTasks)
	}
	wantChildren := [][]int{{1, 2}, {3}, {3}, nil}
	for i, want := range wantChildren {
		got := tpl.children[i]
		if len(got) != len(want) {
			t.Fatalf("stage %d children = %v, want %v", i, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("stage %d children = %v, want %v", i, got, want)
			}
		}
	}
	if w := tpl.waitingOn; w[0] != 0 || w[1] != 1 || w[2] != 1 || w[3] != 2 {
		t.Fatalf("waitingOn = %v, want [0 1 1 2]", w)
	}
	if h := tpl.hasChildren; !h[0] || !h[1] || !h[2] || h[3] {
		t.Fatalf("hasChildren = %v, want [true true true false]", h)
	}
}

func TestTemplateCacheReuseAndBypass(t *testing.T) {
	_, d := monoDriver(t, 2, Config{})
	specA := diamondSpec("a", 3)
	tplA := d.templateFor(specA)
	if got := d.templateFor(diamondSpec("b", 3)); got != tplA {
		t.Fatal("same-shaped spec did not hit the template cache")
	}
	if got := d.templateFor(diamondSpec("c", 5)); got == tplA {
		t.Fatal("different task count reused a mismatched template")
	}

	// Per-driver disable: every lookup builds fresh.
	_, off := monoDriver(t, 2, Config{DisableControlPlaneCache: true})
	first := off.templateFor(specA)
	if second := off.templateFor(specA); second == first {
		t.Fatal("DisableControlPlaneCache still memoized templates")
	}

	// Package-level disable: same contract, flipped globally.
	prev := SetTemplateCache(false)
	defer SetTemplateCache(prev)
	if got := d.templateFor(specA); got == tplA {
		t.Fatal("SetTemplateCache(false) still served the cached template")
	}
}

// TestTemplateCollisionGuard forces two differently-shaped specs onto one
// cache key and checks the structural re-validation bypasses the stale hit.
func TestTemplateCollisionGuard(t *testing.T) {
	_, d := monoDriver(t, 2, Config{})
	specA := diamondSpec("a", 3)
	tplA := d.templateFor(specA)
	// The real fingerprint includes parent edges, so two different shapes
	// never share a key in practice; plant the stale template by hand to
	// exercise the guard.
	specB := diamondSpec("b", 3)
	specB.Stages[3].ParentIDs = []int{1}
	d.templates[string(d.fingerprint(specB))] = tplA
	got := d.templateFor(specB)
	if got == tplA {
		t.Fatal("collision guard accepted a structurally mismatched template")
	}
	if got.waitingOn[3] != 1 {
		t.Fatalf("fresh template waitingOn[3] = %d, want 1", got.waitingOn[3])
	}
}

// TestInstantiateMatchesDirectBuild submits the same diamond through a
// cached template and through a cache-disabled driver and compares every
// piece of initial stage state.
func TestInstantiateMatchesDirectBuild(t *testing.T) {
	_, cached := monoDriver(t, 2, Config{})
	_, direct := monoDriver(t, 2, Config{DisableControlPlaneCache: true})
	ha, err := cached.Submit(diamondSpec("a", 3))
	if err != nil {
		t.Fatal(err)
	}
	hb, err := direct.Submit(diamondSpec("b", 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(ha.stages) != len(hb.stages) {
		t.Fatalf("stage counts differ: %d vs %d", len(ha.stages), len(hb.stages))
	}
	for i := range ha.stages {
		a, b := ha.stages[i], hb.stages[i]
		if a.waitingOn != b.waitingOn || a.hasChildren != b.hasChildren {
			t.Fatalf("stage %d state differs: waitingOn %d/%d hasChildren %v/%v",
				i, a.waitingOn, b.waitingOn, a.hasChildren, b.hasChildren)
		}
		if len(a.attempts) != a.spec.NumTasks || len(b.attempts) != b.spec.NumTasks {
			t.Fatalf("stage %d attempts sized %d/%d, want %d", i, len(a.attempts), len(b.attempts), a.spec.NumTasks)
		}
	}
}
