package sim

import (
	"fmt"
	"strings"
	"testing"
)

// TestShardSerialGlobalEquivalence pins the central product guarantee: an
// engine with lanes configured but only global events scheduled executes in
// exactly the serial engine's order, at any shard count.
func TestShardSerialGlobalEquivalence(t *testing.T) {
	trace := func(configure func(e *Engine)) string {
		e := NewEngine()
		if configure != nil {
			configure(e)
		}
		var sb strings.Builder
		var schedule func(depth int, at Time, id int)
		schedule = func(depth int, at Time, id int) {
			e.At(at, func() {
				fmt.Fprintf(&sb, "%d@%.3f;", id, float64(e.Now()))
				if depth > 0 {
					schedule(depth-1, at+Time(id%3)+1, id*2+1)
					schedule(depth-1, at+Time(id%5)+1, id*2+2)
				}
			})
		}
		for i := 0; i < 4; i++ {
			schedule(4, Time(i), i)
		}
		e.Run()
		return sb.String()
	}
	want := trace(nil)
	for _, shards := range []int{1, 2, 4, 8} {
		got := trace(func(e *Engine) { e.ConfigureShards(8, shards, 0.5) })
		if got != want {
			t.Fatalf("shards=%d: global-event order diverged from serial engine\n got: %s\nwant: %s", shards, got, want)
		}
	}
}

// TestShardLaneBasics drives a two-lane engine through schedule, cancel, and
// send and checks clocks, horizons, and delivery.
func TestShardLaneBasics(t *testing.T) {
	e := NewEngine()
	e.ConfigureShards(2, 2, 1.0)
	if e.LaneCount() != 2 || e.ShardCount() != 2 || e.Lookahead() != 1.0 {
		t.Fatalf("accessors: lanes=%d shards=%d lookahead=%v", e.LaneCount(), e.ShardCount(), e.Lookahead())
	}
	a, b := e.Lane(0), e.Lane(1)
	// Lanes run concurrently, so each records into its own log (the caller
	// contract: lane callbacks touch only lane-owned state).
	var logs [2][]string
	a.At(1, func() {
		logs[0] = append(logs[0], fmt.Sprintf("a1@%.1f", float64(a.Now())))
		a.Send(1, 1.0, func() {
			logs[1] = append(logs[1], fmt.Sprintf("b-recv@%.1f", float64(b.Now())))
		})
	})
	cancelled := a.At(1.5, func() { logs[0] = append(logs[0], "cancelled") })
	a.Cancel(cancelled)
	b.At(1.25, func() { logs[1] = append(logs[1], fmt.Sprintf("b1@%.2f", float64(b.Now()))) })
	e.Run()
	got := strings.Join(logs[0], " ") + " | " + strings.Join(logs[1], " ")
	want := "a1@1.0 | b1@1.25 b-recv@2.0"
	if got != want {
		t.Fatalf("lane trace:\n got: %s\nwant: %s", got, want)
	}
	if a.Pending() != 0 || b.Pending() != 0 {
		t.Fatalf("pending after drain: a=%d b=%d", a.Pending(), b.Pending())
	}
}

// TestShardCoordinatorContextSend pins the Lane doc's promise that Send is
// usable from the coordinating goroutine between windows: a post issued from
// setup code or from a global event callback must be delivered even when no
// lane events are pending to carry it to a window barrier.
func TestShardCoordinatorContextSend(t *testing.T) {
	t.Run("from-setup", func(t *testing.T) {
		e := NewEngine()
		e.ConfigureShards(2, 2, 1.0)
		var at Time = -1
		e.Lane(0).Send(1, 1.0, func() { at = e.Lane(1).Now() })
		e.Run()
		if at != 1.0 {
			t.Fatalf("setup-context send delivered at %v, want 1.0 (dropped if -1)", at)
		}
	})
	t.Run("from-global-event", func(t *testing.T) {
		e := NewEngine()
		e.ConfigureShards(2, 2, 1.0)
		delivered := false
		e.At(1, func() {
			e.Lane(0).Send(1, 2.0, func() { delivered = true })
		})
		e.Run()
		if !delivered {
			t.Fatal("global-event-context send was dropped")
		}
	})
}

// TestShardGlobalBarrier checks the tie rule: a global event at time G runs
// after every lane event strictly before G and before any lane event at or
// after G.
func TestShardGlobalBarrier(t *testing.T) {
	e := NewEngine()
	e.ConfigureShards(2, 2, 10) // lookahead far beyond the global event
	var log []string
	ln := e.Lane(0)
	ln.At(1, func() { log = append(log, "lane@1") })
	ln.At(5, func() { log = append(log, "lane@5") })
	ln.At(9, func() { log = append(log, "lane@9") })
	e.At(5, func() { log = append(log, "global@5") })
	e.Run()
	got := strings.Join(log, " ")
	want := "lane@1 global@5 lane@5 lane@9"
	if got != want {
		t.Fatalf("barrier order:\n got: %s\nwant: %s", got, want)
	}
}

// TestShardSendUnderLookaheadPanics pins the conservative contract: a send
// closer than the lookahead must panic, because delivering it could land
// inside the window that emitted it.
func TestShardSendUnderLookaheadPanics(t *testing.T) {
	e := NewEngine()
	e.ConfigureShards(2, 1, 1.0)
	e.Lane(0).At(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("Send under lookahead did not panic")
			}
		}()
		e.Lane(0).Send(1, 0.5, func() {})
	})
	e.Run()
}

// TestShardLanePanicPropagates checks that a panic inside a lane callback
// surfaces from Run (wrapped with the shard), not lost on a worker
// goroutine.
func TestShardLanePanicPropagates(t *testing.T) {
	e := NewEngine()
	e.ConfigureShards(4, 4, 1.0)
	e.Lane(2).At(1, func() { panic("boom") })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("lane panic did not propagate")
		}
		if !strings.Contains(fmt.Sprint(r), "boom") {
			t.Fatalf("panic lost its cause: %v", r)
		}
	}()
	e.Run()
}

// TestShardReconfigure covers the reconfiguration rules: same-parameter
// reconfiguration is a no-op, pending lane events block reshaping, and
// DisableShards restores the serial engine.
func TestShardReconfigure(t *testing.T) {
	e := NewEngine()
	e.ConfigureShards(4, 2, 1.0)
	lane := e.Lane(0)
	e.ConfigureShards(4, 2, 1.0) // no-op: same parameters
	if e.Lane(0) != lane {
		t.Fatal("same-parameter reconfigure rebuilt the lanes")
	}
	lane.At(1, func() {})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("reshaping with pending lane events did not panic")
			}
		}()
		e.ConfigureShards(4, 4, 1.0)
	}()
	e.Run()
	e.ConfigureShards(4, 4, 1.0) // drained: reshape allowed
	if e.ShardCount() != 4 {
		t.Fatalf("reshape did not apply: shards=%d", e.ShardCount())
	}
	e.DisableShards()
	if e.ShardCount() != 0 || e.LaneCount() != 0 {
		t.Fatal("DisableShards left shard state behind")
	}
}

// TestShardLenCountsLanes checks Len includes lane events, so Ticker's
// drain detection keeps working on sharded engines.
func TestShardLenCountsLanes(t *testing.T) {
	e := NewEngine()
	e.ConfigureShards(2, 2, 1.0)
	e.Lane(0).At(1, func() {})
	e.Lane(1).At(2, func() {})
	e.At(3, func() {})
	if got := e.Len(); got != 3 {
		t.Fatalf("Len=%d, want 3", got)
	}
	e.Run()
	if got := e.Len(); got != 0 {
		t.Fatalf("Len after drain=%d, want 0", got)
	}
}

// TestShardAbortBetweenWindows checks the cooperative abort fires between
// windows, leaves the remaining lane events pending, and a cleared engine
// resumes to the exact uninterrupted trace.
func TestShardAbortBetweenWindows(t *testing.T) {
	full := func(abortAfter int) (string, int) {
		e := NewEngine()
		e.ConfigureShards(2, 2, 1.0)
		var bufs [2]strings.Builder
		for l := 0; l < 2; l++ {
			ln := e.Lane(l)
			for i := 0; i < 8; i++ {
				l, i := l, i
				at := Time(i)*2 + Time(l)
				ln.At(at, func() { fmt.Fprintf(&bufs[l], "%d@%v;", l, at) })
			}
		}
		fired := 0
		if abortAfter > 0 {
			e.SetAbortCheck(1, func() error {
				fired++
				if fired > abortAfter {
					return fmt.Errorf("stop")
				}
				return nil
			})
		}
		e.Run()
		aborts := 0
		for e.AbortErr() != nil {
			aborts++
			e.ClearAbort()
			e.SetAbortCheck(0, nil)
			e.Run()
		}
		return bufs[0].String() + bufs[1].String(), aborts
	}
	want, _ := full(0)
	got, aborts := full(3)
	if aborts == 0 {
		t.Fatal("abort never fired")
	}
	if got != want {
		t.Fatalf("aborted+resumed trace diverged:\n got: %s\nwant: %s", got, want)
	}
}

// BenchmarkEngineSharded measures the windowed scheduler's wall-clock
// scaling: 8 lanes of self-rescheduling events with device-model-sized
// arithmetic per event and an occasional cross-lane send, at 1/2/4/8
// shards. The acceptance bar tracked in BENCH_6.json is ≥2× at 4 shards on
// a multi-core host.
func BenchmarkEngineSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			events := b.N
			perLane := events / 8
			if perLane < 1 {
				perLane = 1
			}
			e := NewEngine()
			e.ConfigureShards(8, shards, 64)
			// One padded slot per lane: lanes accumulate concurrently, and
			// sharing a cache line would serialize them for no reason.
			var sinks [64]uint64
			for l := 0; l < 8; l++ {
				ln := e.Lane(l)
				slot := l * 8
				remaining := perLane
				var step func()
				step = func() {
					// Device-model-sized payload: a short integer mix, the
					// cost of computing one monotask completion.
					x := uint64(remaining) | 1
					for i := 0; i < 64; i++ {
						x ^= x << 13
						x ^= x >> 7
						x ^= x << 17
					}
					sinks[slot] += x
					remaining--
					if remaining <= 0 {
						return
					}
					if remaining%64 == 0 {
						ln.Send((ln.ID()+1)%8, 64, func() {})
					}
					ln.After(Duration(1+x%3), step)
				}
				ln.After(Duration(l+1), step)
			}
			b.ResetTimer()
			e.Run()
			_ = sinks
		})
	}
}
