package sim

import (
	"math/rand"
	"testing"
)

// TestRandomizedEngineInvariants drives the engine with seeded random
// workloads whose callbacks themselves schedule further events (including
// zero-delay ties) and cancel pending ones — the access pattern the device
// models actually have, which the up-front property tests above don't
// exercise. Invariants checked on every firing:
//
//   - the clock never moves backwards;
//   - a cancelled event never fires;
//   - equal-time events fire in scheduling order (seq tie-break);
//   - replaying the same seed reproduces the event trace bit-identically
//     (times AND identities), the contract every experiment's determinism
//     rests on.
func TestRandomizedEngineInvariants(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		a := runFuzzSchedule(t, seed)
		b := runFuzzSchedule(t, seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: replay fired %d events, first run fired %d", seed, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: trace diverges at firing %d: %+v vs %+v", seed, i, a[i], b[i])
			}
		}
		if len(a) == 0 {
			t.Fatalf("seed %d: workload fired no events", seed)
		}
	}
}

// fuzzFiring is one trace entry: which event fired and when.
type fuzzFiring struct {
	id  int
	at  Time
	seq int // firing position, for tie-break checks
}

// fuzzEvent tracks one scheduled event's lifecycle.
type fuzzEvent struct {
	id        int
	at        Time
	schedPos  int // global scheduling order, for the tie-break invariant
	ev        EventRef
	cancelled bool
	fired     bool
}

func runFuzzSchedule(t *testing.T, seed int64) []fuzzFiring {
	t.Helper()
	eng := NewEngine()
	rng := rand.New(rand.NewSource(seed))
	var (
		trace    []fuzzFiring
		all      []*fuzzEvent
		live     []*fuzzEvent
		schedPos int
		budget   = 400 + rng.Intn(400)
		last     = Time(-1)
	)

	var schedule func(at Time)
	schedule = func(at Time) {
		fe := &fuzzEvent{id: len(all), at: at, schedPos: schedPos}
		schedPos++
		fe.ev = eng.At(at, func() {
			if fe.cancelled {
				t.Fatalf("seed %d: cancelled event %d fired at %v", seed, fe.id, eng.Now())
			}
			if fe.fired {
				t.Fatalf("seed %d: event %d fired twice", seed, fe.id)
			}
			if eng.Now() < last {
				t.Fatalf("seed %d: clock moved backwards: %v after %v", seed, eng.Now(), last)
			}
			if eng.Now() != fe.at {
				t.Fatalf("seed %d: event %d scheduled for %v fired at %v", seed, fe.id, fe.at, eng.Now())
			}
			// Tie-break: among equal-time firings, scheduling order holds.
			if len(trace) > 0 {
				prev := trace[len(trace)-1]
				if prev.at == eng.Now() && all[prev.id].schedPos > fe.schedPos {
					t.Fatalf("seed %d: tie at t=%v fired event %d (sched %d) after event %d (sched %d)",
						seed, eng.Now(), prev.id, all[prev.id].schedPos, fe.id, fe.schedPos)
				}
			}
			last = eng.Now()
			fe.fired = true
			trace = append(trace, fuzzFiring{id: fe.id, at: eng.Now(), seq: len(trace)})

			// React like a device model: schedule follow-ups (zero delays
			// included, to force ties) and cancel a pending event sometimes.
			for k := rng.Intn(3); k > 0 && budget > 0; k-- {
				budget--
				schedule(eng.Now() + Time(rng.Intn(4))*0.25)
			}
			live = compactLive(live)
			if len(live) > 0 && rng.Intn(3) == 0 {
				victim := live[rng.Intn(len(live))]
				if !victim.fired && !victim.cancelled {
					victim.cancelled = true
					eng.Cancel(victim.ev)
				}
			}
		})
		all = append(all, fe)
		live = append(live, fe)
	}

	for i := 0; i < 20; i++ {
		schedule(Time(rng.Intn(8)))
	}
	eng.Run()

	// Every event either fired or was cancelled — nothing got lost.
	for _, fe := range all {
		if !fe.fired && !fe.cancelled {
			t.Fatalf("seed %d: event %d neither fired nor cancelled after Run", seed, fe.id)
		}
	}
	return trace
}

// compactLive drops fired and cancelled events from the candidate list.
func compactLive(live []*fuzzEvent) []*fuzzEvent {
	kept := live[:0]
	for _, fe := range live {
		if !fe.fired && !fe.cancelled {
			kept = append(kept, fe)
		}
	}
	return kept
}

// TestSeededReplayAcrossSeedsDiffers is the sanity inverse: different seeds
// must explore different schedules, or the fuzz above proves nothing.
func TestSeededReplayAcrossSeedsDiffers(t *testing.T) {
	a := runFuzzSchedule(t, 1)
	b := runFuzzSchedule(t, 2)
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("seeds 1 and 2 produced identical traces")
		}
	}
}
