package sim

// Scheduler is the timeline a device model schedules against: the serial
// engine's global timeline, or — in a sharded run — the machine's own lane.
// Per-machine subsystems (resource servers, worker monotask dispatch,
// intra-machine pipelining) hold a Scheduler instead of a concrete *Engine,
// so the cluster can hand them a lane when sharding is configured and the
// serial engine otherwise, without the device code knowing the difference.
//
// The contract mirrors Engine's: At panics on scheduling into the timeline's
// past, After panics on negative delays, Cancel ignores zero and stale refs.
// A Lane additionally restricts Cancel to events it owns — device models
// only ever cancel their own provisional completions, so the restriction is
// invisible to well-formed callers.
type Scheduler interface {
	// Now reports the timeline's current virtual time.
	Now() Time
	// At schedules fn at absolute virtual time t.
	At(t Time, fn func()) EventRef
	// After schedules fn d seconds from Now.
	After(d Duration, fn func()) EventRef
	// Cancel removes a pending event; zero and stale refs are ignored.
	Cancel(r EventRef)
}

var (
	_ Scheduler = (*Engine)(nil)
	_ Scheduler = (*Lane)(nil)
)

// OccupancyStats reports how many executed events were drained on shard
// lanes versus the global timeline, plus the number of parallel windows the
// sharded scheduler opened. On an unsharded engine lane and windows stay
// zero. Counters are cumulative over the engine's lifetime.
func (e *Engine) OccupancyStats() (laneEvents, globalEvents, windows uint64) {
	return e.laneExec, e.globalExec, e.windows
}

// LaneOccupancy reports the fraction of executed events that were drained on
// shard lanes: lane / (lane + global), or 0 before any event has executed.
// It is the migration meter ISSUE 9 asks for — a product run whose
// per-machine subsystems sit on lanes should report a majority here.
func (e *Engine) LaneOccupancy() float64 {
	total := e.laneExec + e.globalExec
	if total == 0 {
		return 0
	}
	return float64(e.laneExec) / float64(total)
}
