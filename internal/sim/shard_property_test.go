package sim

import (
	"fmt"
	"strings"
	"testing"
)

// The property suite drives randomized lane workloads — self-rescheduling
// local events, cross-lane sends at or above the lookahead, and a sprinkle
// of global events — and checks the windowed scheduler's three contracts:
//
//  1. Horizon safety: no lane event executes at or past its lane's window
//     horizon, and lane clocks never go backwards.
//  2. Shard-count independence: the per-lane execution traces (and the
//     global trace) are bit-identical at 1, 2, 4, and 8 shards.
//  3. Replay determinism: the same seed replays bit-identically.
//
// All randomness is derived per event from a splitmix-style hash of
// (seed, lane, event id), so an event's behaviour is a pure function of its
// identity — never of scheduling order or shared RNG state.

// mix64 is splitmix64's finalizer: a cheap, high-quality hash for deriving
// per-event randomness.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4b9d9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// laneHarness owns the per-lane trace buffers and violation counters for
// one workload execution. Each lane writes only its own slot, which is the
// lane contract the scheduler itself relies on.
type laneHarness struct {
	eng       *Engine
	lookahead Duration
	traces    []strings.Builder
	global    strings.Builder
	breaches  []int // horizon/monotonicity violations per lane
	lastAt    []Time
	spawned   []int // per-lane event-id allocator
}

// runLaneWorkload executes the seeded workload on `lanes` lanes at the given
// shard count and returns the concatenated trace.
func runLaneWorkload(seed uint64, lanes, shards int) (string, *laneHarness) {
	const lookahead = Duration(4)
	e := NewEngine()
	e.ConfigureShards(lanes, shards, lookahead)
	h := &laneHarness{
		eng:       e,
		lookahead: lookahead,
		traces:    make([]strings.Builder, lanes),
		breaches:  make([]int, lanes),
		lastAt:    make([]Time, lanes),
		spawned:   make([]int, lanes),
	}
	// Seed: a few initial events per lane, depth-bounded so the workload
	// terminates. Depth 5 with ≤3 children per event bounds the tree.
	for l := 0; l < lanes; l++ {
		n := int(mix64(seed^uint64(l))%3) + 2
		for i := 0; i < n; i++ {
			at := Time(mix64(seed^uint64(l*1000+i))%32) / 4
			h.schedule(l, at, 5)
		}
	}
	// A few global events: they interleave with windows and reseed lanes,
	// exercising the barrier rule.
	for g := 0; g < 3; g++ {
		g := g
		at := Time(mix64(seed^uint64(0x60+g*7))%64) / 2
		e.At(at, func() {
			fmt.Fprintf(&h.global, "G%d@%.6f;", g, float64(e.Now()))
			// Global callbacks run with every lane quiesced at a clock ≤ now,
			// so reseeding lanes from here is legal.
			lane := int(mix64(seed^uint64(g)) % uint64(lanes))
			h.schedule(lane, e.Now()+Time(g)+1, 2)
		})
	}
	e.Run()
	var sb strings.Builder
	for l := range h.traces {
		fmt.Fprintf(&sb, "lane%d: %s\n", l, h.traces[l].String())
	}
	fmt.Fprintf(&sb, "global: %s\n", h.global.String())
	fmt.Fprintf(&sb, "end: %.6f\n", float64(e.Now()))
	return sb.String(), h
}

// schedule places one workload event on lane l. Must run either lane-locally
// (from l's own callbacks) or from quiesced contexts (setup, global events).
func (h *laneHarness) schedule(l int, at Time, depth int) {
	ln := h.eng.Lane(l)
	h.spawned[l]++
	id := h.spawned[l]
	ln.At(at, func() { h.fire(ln, id, depth) })
}

// fire is one workload event: record the trace, verify the horizon and clock
// contracts, then derive children — local reschedules and cross-lane sends —
// from the event's identity hash.
func (h *laneHarness) fire(ln *Lane, id, depth int) {
	l := ln.ID()
	now := ln.Now()
	if now >= ln.Horizon() {
		h.breaches[l]++
	}
	if now < h.lastAt[l] {
		h.breaches[l]++
	}
	h.lastAt[l] = now
	fmt.Fprintf(&h.traces[l], "%d@%.6f;", id, float64(now))
	if depth <= 0 {
		return
	}
	r := mix64(uint64(l)<<32 ^ uint64(id)<<8 ^ uint64(depth))
	children := int(r % 3)
	for c := 0; c < children; c++ {
		cr := mix64(r ^ uint64(c+1))
		h.schedule(l, now+Time(cr%23)/8, depth-1)
	}
	if r&0x18 == 0 { // ~1 in 4 events emits a cross-lane message
		to := int(mix64(r^0xfeed) % uint64(len(h.eng.shards.lanes)))
		delay := h.lookahead + Time(mix64(r^0xbeef)%17)/4
		h.spawned[l]++ // reserve an id on the sender; receiver gets it in the closure
		id := h.spawned[l]
		d := depth - 1
		ln.Send(to, delay, func() { h.fire(h.eng.Lane(to), id, d) })
	}
}

// TestShardProperties runs 250 seeded workloads and asserts horizon safety,
// shard-count independence, and replay determinism.
func TestShardProperties(t *testing.T) {
	const seeds = 250
	for seed := uint64(1); seed <= seeds; seed++ {
		lanes := int(mix64(seed)%7) + 2 // 2..8 lanes
		base, bh := runLaneWorkload(seed, lanes, 1)
		for l, b := range bh.breaches {
			if b != 0 {
				t.Fatalf("seed %d shards=1: lane %d: %d horizon/clock breaches", seed, l, b)
			}
		}
		replay, _ := runLaneWorkload(seed, lanes, 1)
		if replay != base {
			t.Fatalf("seed %d: shards=1 replay diverged:\n%s", seed, firstTraceDiff(replay, base))
		}
		for _, shards := range []int{2, 4, 8} {
			got, gh := runLaneWorkload(seed, lanes, shards)
			for l, b := range gh.breaches {
				if b != 0 {
					t.Fatalf("seed %d shards=%d: lane %d: %d horizon/clock breaches", seed, shards, l, b)
				}
			}
			if got != base {
				t.Fatalf("seed %d: shards=%d trace diverged from shards=1:\n%s", seed, shards, firstTraceDiff(got, base))
			}
		}
	}
}

// TestShardDeliveryOrderDeterministic floods one receiver lane from many
// senders at identical delivery times, so the (deliver-time, sender lane,
// sender sequence) merge rule is the only thing separating them — then
// checks the receiver observes the same order at every shard count.
func TestShardDeliveryOrderDeterministic(t *testing.T) {
	run := func(shards int) string {
		const lanes = 8
		e := NewEngine()
		e.ConfigureShards(lanes, shards, 2)
		var got strings.Builder
		recv := e.Lane(0)
		for l := 1; l < lanes; l++ {
			ln := e.Lane(l)
			for i := 0; i < 4; i++ {
				l, i := l, i
				// All sends converge on the same delivery instant: sender at
				// time l (staggered), delay chosen so at+delay == 12.
				ln.At(Time(l), func() {
					ln.Send(0, Time(12-l), func() {
						fmt.Fprintf(&got, "%d.%d@%.1f;", l, i, float64(recv.Now()))
					})
				})
			}
		}
		e.Run()
		return got.String()
	}
	want := run(1)
	if !strings.Contains(want, "@12.0") {
		t.Fatalf("deliveries missed the convergence instant: %s", want)
	}
	for _, shards := range []int{2, 4, 8} {
		if got := run(shards); got != want {
			t.Fatalf("shards=%d delivery order diverged:\n got: %s\nwant: %s", shards, got, want)
		}
	}
}

// firstTraceDiff reports the first differing line of two traces.
func firstTraceDiff(got, want string) string {
	g := strings.Split(got, "\n")
	w := strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("line %d:\n  got:  %s\n  want: %s", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("length %d vs %d", len(got), len(want))
}
