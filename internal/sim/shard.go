package sim

// Conservative parallel discrete-event simulation.
//
// An engine configured with ConfigureShards carries, next to its global
// timeline, L lanes: independent event queues with their own clocks and
// sequence counters. Lanes are grouped into S shards; each shard advances
// its lanes on its own goroutine. The scheduler is conservative in the
// classic Chandy–Misra sense: a window [W0, W1) is opened with
//
//	W0 = earliest pending lane event,
//	W1 = min(W0 + lookahead, earliest pending global event),
//
// and every shard executes its lanes' events with time < W1 with no
// cross-shard communication. That is safe because the only way one lane can
// affect another is Lane.Send, which imposes a delay of at least the
// lookahead: an effect emitted inside the window lands at or after
// W0 + lookahead ≥ W1, i.e. never inside the window that emitted it.
// Cross-lane sends are captured in per-lane outboxes and merged at the
// window barrier; sends issued from coordinator context (setup code, global
// event callbacks) are merged before the scheduler's next window decision,
// so they are never lost even when no window follows.
//
// Determinism argument, in three parts:
//
//  1. Within a lane, events execute in (time, lane-sequence) order — each
//     lane is a serial engine in miniature.
//  2. Within a shard, lanes interleave in (time, lane ID) order. Because
//     lanes share no state (the caller's contract: a lane callback touches
//     only state owned by its lane, and communicates via Send), this order
//     is observable only in traces, and it is a pure function of the lane
//     contents — not of the shard count. A shard with one lane and a shard
//     with eight lanes execute any given lane's events identically.
//  3. At each barrier, that window's outbox posts are merged in
//     (deliver-time, sender lane, sender send-sequence) order — all three
//     components are decided by lane-local execution. Posts from earlier
//     windows were injected at earlier barriers, and window boundaries are
//     themselves shard-count-independent (see below), so the sequence
//     numbers deliveries receive in their target lanes — hence the order of
//     same-instant deliveries — are a pure function of lane-local
//     quantities, identical at any shard count.
//
// Window boundaries themselves are shard-count-independent: W0 is a minimum
// over all lanes and W1 folds in the global queue, neither of which depends
// on how lanes are grouped. The net result is the property the tests pin
// down: a lane workload replays bit-identically at 1, 2, 4, or 8 shards,
// and a global-only workload (which is what production runs schedule today)
// executes in exactly the serial engine's (time, seq) order.
//
// Global events are the synchronization points: an engine-level event at
// time G runs only after every lane has drained strictly past... precisely,
// after every lane event with time < G has executed, and no lane event at
// time ≥ G runs before it. Device models whose effects are instantaneous
// across machines (the netsim fabric's max-min rerate) therefore stay on
// the global timeline and serialize, which is what keeps them exact.

import (
	"fmt"
	"sync"
)

// post is one cross-lane delivery captured in a sender's outbox during a
// window. (at, from, seq) is the deterministic merge key; to and fn say
// where and what to deliver.
type post struct {
	at   Time
	from int
	seq  uint64
	to   int
	fn   func()
}

// Lane is one shard lane: an independent serial timeline inside a sharded
// engine, typically owned by one simulated machine. Lane methods are safe
// from the lane's own callbacks while a window executes, and from the
// coordinating goroutine between windows (setup code, global events). They
// are not safe from other lanes' callbacks — lanes communicate only via
// Send.
type Lane struct {
	eng     *Engine
	id      int
	q       eventQueue
	now     Time
	horizon Time // current window's exclusive upper bound
	outbox  []post
	sendSeq uint64
}

// ID reports the lane's index within its engine.
func (ln *Lane) ID() int { return ln.id }

// Now reports the lane's clock: the time of the event being executed, or the
// end of the last drained window.
func (ln *Lane) Now() Time { return ln.now }

// Horizon reports the exclusive upper bound of the window the lane is
// currently allowed to advance through. Events never execute at or past it;
// the property tests assert exactly that.
func (ln *Lane) Horizon() Time { return ln.horizon }

// Pending reports the lane's pending event count.
func (ln *Lane) Pending() int { return ln.q.len() }

// At schedules fn on this lane at absolute virtual time t. Like Engine.At,
// scheduling in the lane's past panics.
func (ln *Lane) At(t Time, fn func()) EventRef {
	if t < ln.now {
		panic(fmt.Sprintf("sim: lane %d: scheduling event at %v before lane now %v", ln.id, t, ln.now))
	}
	return ln.q.schedule(t, fn)
}

// After schedules fn on this lane d seconds from the lane's now.
func (ln *Lane) After(d Duration, fn func()) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("sim: lane %d: negative delay %v", ln.id, d))
	}
	return ln.At(ln.now+d, fn)
}

// Cancel removes a pending event scheduled on this lane. Zero and stale refs
// are ignored, exactly like Engine.Cancel.
func (ln *Lane) Cancel(r EventRef) {
	if !r.Scheduled() {
		return
	}
	if r.ev.owner != &ln.q {
		panic(fmt.Sprintf("sim: lane %d: cancelling an event owned by another queue", ln.id))
	}
	ln.q.remove(r)
}

// Send delivers fn to lane `to` after at least d of virtual time. d must be
// at least the engine's lookahead — that bound is what makes the window
// protocol conservative, so violating it panics rather than silently
// breaking determinism. Sends are not cancellable: they model messages
// already on the wire.
func (ln *Lane) Send(to int, d Duration, fn func()) {
	s := ln.eng.shards
	if to < 0 || to >= len(s.lanes) {
		panic(fmt.Sprintf("sim: lane %d: send to lane %d of %d", ln.id, to, len(s.lanes)))
	}
	if d < s.lookahead {
		panic(fmt.Sprintf("sim: lane %d: send delay %v under lookahead %v breaks the conservative horizon", ln.id, d, s.lookahead))
	}
	ln.sendSeq++
	ln.outbox = append(ln.outbox, post{at: ln.now + d, from: ln.id, seq: ln.sendSeq, to: to, fn: fn})
}

// shardSet is the windowed scheduler's state: the lanes, their grouping into
// shards, and the scratch the coordinator reuses between windows.
type shardSet struct {
	lanes     []*Lane
	groups    [][]*Lane // groups[s] = the lanes shard s advances
	lookahead Duration

	inbox  []post // merge scratch, reused across windows
	counts []int  // per-group events executed in the current window
	panics []any  // per-group recovered panic values
	wg     sync.WaitGroup
}

// ConfigureShards equips the engine with `lanes` shard lanes advanced by
// `shards` parallel executors under the given conservative lookahead
// horizon. Lanes are partitioned into contiguous, near-equal groups — lane
// i belongs to shard i*shards/lanes — mirroring how a cluster partitions
// machines. shards is clamped to [1, lanes]; lanes and lookahead must be
// positive.
//
// Reconfiguring with identical parameters while no lane events are pending
// is a no-op (the per-action reuse pattern: every run of a long-lived
// session passes the same options). Any other reconfiguration with pending
// lane events panics — it would orphan them.
func (e *Engine) ConfigureShards(lanes, shards int, lookahead Duration) {
	if e.running {
		panic("sim: ConfigureShards during Run")
	}
	if lanes <= 0 {
		panic(fmt.Sprintf("sim: ConfigureShards needs lanes, got %d", lanes))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: ConfigureShards needs a positive lookahead, got %v", lookahead))
	}
	if shards < 1 {
		shards = 1
	}
	if shards > lanes {
		shards = lanes
	}
	if s := e.shards; s != nil {
		if len(s.lanes) == lanes && len(s.groups) == shards && s.lookahead == lookahead {
			return
		}
		for _, ln := range s.lanes {
			if ln.q.len() > 0 {
				panic(fmt.Sprintf("sim: ConfigureShards would orphan %d pending events on lane %d", ln.q.len(), ln.id))
			}
		}
	}
	s := &shardSet{
		lookahead: lookahead,
		lanes:     make([]*Lane, lanes),
		groups:    make([][]*Lane, shards),
		counts:    make([]int, shards),
		panics:    make([]any, shards),
	}
	for i := range s.lanes {
		s.lanes[i] = &Lane{eng: e, id: i, now: e.now}
		g := i * shards / lanes
		s.groups[g] = append(s.groups[g], s.lanes[i])
	}
	e.shards = s
}

// DisableShards removes the lane layer, returning the engine to the pure
// serial scheduler. Panics if lane events are still pending.
func (e *Engine) DisableShards() {
	if e.running {
		panic("sim: DisableShards during Run")
	}
	if e.shards == nil {
		return
	}
	for _, ln := range e.shards.lanes {
		if ln.q.len() > 0 {
			panic(fmt.Sprintf("sim: DisableShards would orphan %d pending events on lane %d", ln.q.len(), ln.id))
		}
	}
	e.shards = nil
}

// LaneCount reports the number of configured lanes (0 when unsharded).
func (e *Engine) LaneCount() int {
	if e.shards == nil {
		return 0
	}
	return len(e.shards.lanes)
}

// ShardCount reports the number of parallel shard executors (0 when
// unsharded).
func (e *Engine) ShardCount() int {
	if e.shards == nil {
		return 0
	}
	return len(e.shards.groups)
}

// Lookahead reports the conservative horizon (0 when unsharded).
func (e *Engine) Lookahead() Duration {
	if e.shards == nil {
		return 0
	}
	return e.shards.lookahead
}

// Lane returns lane i. Panics when unsharded or out of range.
func (e *Engine) Lane(i int) *Lane {
	if e.shards == nil {
		panic("sim: Lane on an unsharded engine")
	}
	return e.shards.lanes[i]
}

// laneMin reports the earliest pending lane event across all lanes.
func (s *shardSet) laneMin() Time {
	min := Forever
	for _, ln := range s.lanes {
		if t := ln.q.peek(); t < min {
			min = t
		}
	}
	return min
}

// drainGroup advances group g's lanes through [their current clocks, w1):
// repeatedly pick the group-wide earliest (time, lane ID) event under w1 and
// execute it. Runs on the shard's goroutine; touches only group-g lanes. A
// callback panic is captured into s.panics[g] so the coordinator can re-raise
// it deterministically after the barrier.
func (s *shardSet) drainGroup(g int, w1 Time) {
	defer func() {
		if r := recover(); r != nil {
			s.panics[g] = r
		}
	}()
	lanes := s.groups[g]
	n := 0
	for {
		var best *Lane
		bt := w1
		for _, ln := range lanes {
			// Strict < keeps the tie rule: events exactly at w1 belong to the
			// next window (after any global event at w1).
			if t := ln.q.peek(); t < bt {
				bt, best = t, ln
			}
		}
		if best == nil {
			break
		}
		ev := best.q.pop()
		best.now = ev.at
		fn := ev.fn
		best.q.recycle(ev)
		fn()
		n++
	}
	for _, ln := range lanes {
		ln.now = w1
	}
	s.counts[g] = n
}

// mergeOutboxes gathers every lane's outbox into s.inbox sorted by
// (deliver-time, sender lane, sender send-sequence) — a total order decided
// entirely by lane-local execution, hence identical at any shard count —
// and schedules the deliveries into their target lanes in that order.
func (s *shardSet) mergeOutboxes() {
	s.inbox = s.inbox[:0]
	for _, ln := range s.lanes {
		s.inbox = append(s.inbox, ln.outbox...)
		for i := range ln.outbox {
			ln.outbox[i].fn = nil
		}
		ln.outbox = ln.outbox[:0]
	}
	// Insertion sort: windows carry few posts, and unlike sort.Slice this
	// allocates nothing.
	for i := 1; i < len(s.inbox); i++ {
		for j := i; j > 0 && postLess(s.inbox[j], s.inbox[j-1]); j-- {
			s.inbox[j], s.inbox[j-1] = s.inbox[j-1], s.inbox[j]
		}
	}
	for i := range s.inbox {
		p := &s.inbox[i]
		s.lanes[p.to].q.schedule(p.at, p.fn)
		p.fn = nil
	}
	s.inbox = s.inbox[:0]
}

// postLess orders posts by (deliver-time, sender lane, sender sequence).
func postLess(a, b post) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.from != b.from {
		return a.from < b.from
	}
	return a.seq < b.seq
}

// runSharded is Run's windowed scheduler. Global events keep the serial
// engine's exact semantics — executed one at a time in (time, seq) order
// whenever no lane event precedes them, with the same abort-poll cadence —
// so a run that schedules only global events (today's production executors)
// is byte-identical to the unsharded engine. Lane events advance in
// parallel windows between them.
func (e *Engine) runSharded() {
	s := e.shards
	checked := e.abortCheck != nil
	if checked {
		if e.abortErr != nil {
			return
		}
		if err := e.abortCheck(); err != nil {
			e.abortErr = err
			return
		}
	}
	budget := e.abortEvery
	for {
		// Deliver sends issued from coordinator context — setup code before
		// Run, or the global event callback that just executed. Those posts
		// never reach a window barrier on their own; merging here makes them
		// pending lane work visible to laneMin and the termination check
		// below instead of silently dropped events. (After a window barrier
		// the outboxes are already empty and this is a no-op.)
		s.mergeOutboxes()
		gt := e.q.peek()
		lt := s.laneMin()
		if gt == Forever && lt == Forever {
			return
		}
		if gt <= lt {
			// The global event precedes (ties included: lane events at the
			// same instant wait behind it) — serial step.
			ev := e.q.pop()
			e.now = ev.at
			fn := ev.fn
			e.q.recycle(ev)
			fn()
			if checked {
				budget--
				if budget <= 0 {
					if err := e.abortCheck(); err != nil {
						e.abortErr = err
						return
					}
					budget = e.abortEvery
				}
			}
			continue
		}
		// Open the window [lt, w1).
		w1 := lt + s.lookahead
		if w1 < lt {
			// lookahead overflow (lt near Forever): clamp to the global bound.
			w1 = Forever
		}
		if gt < w1 {
			w1 = gt
		}
		for _, ln := range s.lanes {
			ln.horizon = w1
		}
		// Fan groups with work onto goroutines; the first busy group runs
		// inline on the coordinator.
		inline := -1
		for g := range s.groups {
			s.counts[g] = 0
			s.panics[g] = nil
			busy := false
			for _, ln := range s.groups[g] {
				if ln.q.peek() < w1 {
					busy = true
					break
				}
			}
			if !busy {
				for _, ln := range s.groups[g] {
					ln.now = w1
				}
				continue
			}
			if inline >= 0 {
				g := g
				s.wg.Add(1)
				go func() {
					defer s.wg.Done()
					s.drainGroup(g, w1)
				}()
			}
			if inline < 0 {
				inline = g
			}
		}
		if inline >= 0 {
			s.drainGroup(inline, w1)
		}
		s.wg.Wait()
		for g, p := range s.panics {
			if p != nil {
				panic(fmt.Sprintf("sim: shard %d: lane callback panicked: %v", g, p))
			}
		}
		s.mergeOutboxes()
		if e.now < w1 && w1 < Forever {
			e.now = w1
		}
		if checked {
			for _, n := range s.counts {
				budget -= n
			}
			if budget <= 0 {
				if err := e.abortCheck(); err != nil {
					e.abortErr = err
					return
				}
				budget = e.abortEvery
			}
		}
	}
}
