package sim

// Conservative parallel discrete-event simulation.
//
// An engine configured with ConfigureShards carries, next to its global
// timeline, L lanes: independent event queues with their own clocks and
// sequence counters. Lanes are grouped into S shards; each shard advances
// its lanes on its own goroutine. The scheduler is conservative in the
// classic Chandy–Misra sense: a window [W0, W1) is opened with
//
//	W0 = earliest pending lane event,
//	W1 = min(W0 + lookahead, earliest pending global event),
//
// and every shard executes its lanes' events with time < W1 with no
// cross-shard communication. That is safe because the only way one lane can
// affect another is Lane.Send, which imposes a delay of at least the
// lookahead: an effect emitted inside the window lands at or after
// W0 + lookahead ≥ W1, i.e. never inside the window that emitted it.
// Cross-lane sends are captured in per-lane outboxes and merged at the
// window barrier; sends issued from coordinator context (setup code, global
// event callbacks) are merged before the scheduler's next window decision,
// so they are never lost even when no window follows.
//
// Determinism argument, in three parts:
//
//  1. Within a lane, events execute in (time, lane-sequence) order — each
//     lane is a serial engine in miniature.
//  2. Within a shard, lanes interleave in (time, lane ID) order. Because
//     lanes share no state (the caller's contract: a lane callback touches
//     only state owned by its lane, and communicates via Send), this order
//     is observable only in traces, and it is a pure function of the lane
//     contents — not of the shard count. A shard with one lane and a shard
//     with eight lanes execute any given lane's events identically.
//  3. At each barrier, that window's outbox posts are merged in
//     (deliver-time, causal key, sender lane, sender send-sequence) order —
//     every component is decided by lane-local execution (the causal key is
//     derived from the emitting event; see Event.cell). Posts from earlier
//     windows were injected at earlier barriers, and window boundaries are
//     themselves shard-count-independent (see below), so the sequence
//     numbers deliveries receive in their target lanes — hence the order of
//     same-instant deliveries — are a pure function of lane-local
//     quantities, identical at any shard count.
//
// Window boundaries themselves are shard-count-independent: W0 is a minimum
// over all lanes and W1 folds in the global queue, neither of which depends
// on how lanes are grouped. The net result is the property the tests pin
// down: a lane workload replays bit-identically at 1, 2, 4, or 8 shards,
// and a global-only workload (which is what production runs schedule today)
// executes in exactly the serial engine's (time, seq) order.
//
// Global events are the synchronization points: an engine-level event at
// time G runs only after every lane has drained strictly past... precisely,
// after every lane event with time < G has executed, and no lane event at
// time ≥ G runs before it. Device models whose effects are instantaneous
// across machines (the netsim fabric's max-min rerate) therefore stay on
// the global timeline and serialize, which is what keeps them exact.
//
// Lane-resident subsystems occasionally need the reverse direction: a
// per-machine event whose consequence is cluster-wide and instantaneous — a
// multitask completion the driver reacts to, a served disk read that starts
// a network transfer. Lane.Global posts such an escape onto the global
// timeline and caps the emitting lane at the escape instant, so the lane
// cannot run ahead of the reaction to its own event; the global side then
// hands follow-up work back to lanes through the relaxed Lane.At floor (no
// earlier than a lane's last executed event — anything in the un-executed
// gap between that and the lane's window clock reorders nothing). When a
// reaction would genuinely land in a lane's executed past, Lane.At panics:
// the protocol refuses to diverge silently from the serial order.

import (
	"fmt"
	"sync"
)

// post is one cross-lane delivery captured in a sender's outbox during a
// window. (at, cell, from, seq) is the deterministic merge key for global
// escapes — cell is the delivered event's causal key (see Event.cell),
// which reconstructs the serial tie-break among same-instant escapes; sends
// (send=true) sort after same-instant escapes and merge in (from, seq)
// order as always. to and fn say where and what to deliver; the delivered
// event inherits cell in both cases.
type post struct {
	at   Time
	cell *keyCell
	send bool
	from int
	seq  uint64
	to   int
	fn   func()
}

// Lane is one shard lane: an independent serial timeline inside a sharded
// engine, typically owned by one simulated machine. Lane methods are safe
// from the lane's own callbacks while a window executes, and from the
// coordinating goroutine between windows (setup code, global events). They
// are not safe from other lanes' callbacks — lanes communicate only via
// Send.
type Lane struct {
	eng     *Engine
	id      int
	q       eventQueue
	now     Time
	horizon Time // current window's exclusive upper bound
	outbox  []post
	sendSeq uint64

	// lastEvent is the time of the last event this lane executed. It, not
	// now, is the lane's scheduling floor: after a window the lane clock sits
	// at the window bound w1, but no event ran in (lastEvent, w1], so a
	// global-timeline callback (a driver reacting to an escape, see Global)
	// may legally insert work anywhere in [lastEvent, w1) without reordering
	// anything that already happened. Inserting before lastEvent would
	// rewrite executed history, and panics.
	lastEvent Time

	// limit caps this lane's drain within the current window. Global(0, fn)
	// sets it to the emitting event's time: the global timeline will react at
	// that instant, so the lane must not run ahead of it — events past the
	// limit wait for the next window, after the global side has caught up.
	limit Time

	// curCell is the causal key of the event the lane is currently executing
	// (see Event.cell); callCtr numbers that event's insertions. Work the
	// event schedules is parented under curCell, and escapes it posts are
	// merged by it.
	curCell *keyCell
	callCtr uint64
}

// ID reports the lane's index within its engine.
func (ln *Lane) ID() int { return ln.id }

// clock is the lane's context-sensitive time base: inside a window (the
// lane's own callbacks) it is the lane clock; from coordinator context —
// setup code, global event callbacks — it is the engine clock, because that
// is the instant the caller is actually acting at. The distinction matters
// once global callbacks schedule device work onto lanes: a driver reacting
// at global time G must schedule relative to G, not to wherever the lane's
// window bound happens to sit.
func (ln *Lane) clock() Time {
	if s := ln.eng.shards; s == nil || !s.draining {
		return ln.eng.now
	}
	return ln.now
}

// Now reports the lane's clock: the time of the event being executed, the
// engine's clock when called from coordinator context.
func (ln *Lane) Now() Time { return ln.clock() }

// Horizon reports the exclusive upper bound of the window the lane is
// currently allowed to advance through. Events never execute at or past it;
// the property tests assert exactly that.
func (ln *Lane) Horizon() Time { return ln.horizon }

// Pending reports the lane's pending event count.
func (ln *Lane) Pending() int { return ln.q.len() }

// At schedules fn on this lane at absolute virtual time t. Scheduling before
// the lane's last executed event panics: that would rewrite history the lane
// already committed. Scheduling in (lastEvent, now) — a span no event ran in
// — is legal, and is how global callbacks (drivers reacting to a lane's
// Global escape) hand follow-up work back to a lane whose window clock has
// moved past the escape instant.
func (ln *Lane) At(t Time, fn func()) EventRef {
	if t < ln.lastEvent {
		panic(fmt.Sprintf("sim: lane %d: scheduling event at %v before last executed event at %v", ln.id, t, ln.lastEvent))
	}
	ref := ln.q.schedule(t, fn)
	ref.ev.cell = ln.childCell()
	return ref
}

// childCell is the causal key for work being scheduled right now (see
// Event.cell): from coordinator context, the engine's key (a child of the
// executing global event, or a fresh root from setup code); from the lane's
// own callbacks, a child of the executing lane event — inserted at the lane
// clock, numbered by the event's insertion counter.
func (ln *Lane) childCell() *keyCell {
	if s := ln.eng.shards; s == nil || !s.draining {
		return ln.eng.childCellGlobal()
	}
	ln.callCtr++
	return &keyCell{parent: ln.curCell, at: ln.now, idx: ln.callCtr}
}

// After schedules fn on this lane d seconds from the lane's context-sensitive
// clock (see Now).
func (ln *Lane) After(d Duration, fn func()) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("sim: lane %d: negative delay %v", ln.id, d))
	}
	return ln.At(ln.clock()+d, fn)
}

// Cancel removes a pending event scheduled on this lane. Zero and stale refs
// are ignored, exactly like Engine.Cancel.
func (ln *Lane) Cancel(r EventRef) {
	if !r.Scheduled() {
		return
	}
	if r.ev.owner != &ln.q {
		panic(fmt.Sprintf("sim: lane %d: cancelling an event owned by another queue", ln.id))
	}
	ln.q.remove(r)
}

// Send delivers fn to lane `to` after at least d of virtual time. d must be
// at least the engine's lookahead — that bound is what makes the window
// protocol conservative, so violating it panics rather than silently
// breaking determinism. Sends are not cancellable: they model messages
// already on the wire.
func (ln *Lane) Send(to int, d Duration, fn func()) {
	s := ln.eng.shards
	if to < 0 || to >= len(s.lanes) {
		panic(fmt.Sprintf("sim: lane %d: send to lane %d of %d", ln.id, to, len(s.lanes)))
	}
	if d < s.lookahead {
		panic(fmt.Sprintf("sim: lane %d: send delay %v under lookahead %v breaks the conservative horizon", ln.id, d, s.lookahead))
	}
	ln.sendSeq++
	ln.outbox = append(ln.outbox, post{at: ln.clock() + d, cell: ln.childCell(), send: true,
		from: ln.id, seq: ln.sendSeq, to: to, fn: fn})
}

// Global schedules fn on the engine's global timeline d seconds from the
// lane's clock — the lane-affinity escape hatch for the few per-machine
// events whose consequences are cluster-wide: a multitask completion the
// driver must see, a served read that starts a cross-machine transfer. The
// post is delivered at the next window barrier in (time, sender lane, sender
// sequence) order, so it is as deterministic as Send.
//
// A zero-delay Global emitted mid-window also caps the lane's drain at the
// emitting instant: the global timeline will react at that time, and letting
// the lane run ahead of its own escape would let device events execute
// before the reaction they should have observed. Events past the cap simply
// wait for the next window. Cross-lane consequences remain guarded: if the
// global reaction tries to schedule into a lane that already executed past
// the reaction instant, Lane.At panics rather than silently diverging from
// the serial order.
// Global's same-instant merge order deserves spelling out, because it is
// what byte-identity with the serial engine rests on. A serial run breaks
// exact-time ties by global insertion order; under uniform chunk sizes whole
// shuffle cascades run in lockstep, so exact ties are common and their order
// is observable (it decides which requester's reaction consumes shared
// cursors first). Lanes cannot observe each other's insertion order, but
// they can reconstruct it: an escape is merged by its causal key (see
// Event.cell and cellCompare), which orders two same-instant escapes from
// different lanes exactly as the corresponding serial events' insertion
// sequence numbers would.
//
// An escape posted from coordinator context (between windows — a global
// callback scheduling follow-up work) bypasses the outbox and lands directly
// on the engine queue: the coordinator is serial, so its insertion order is
// already the serial order, and routing it through the merge would replace
// that exact order with the rank reconstruction.
func (ln *Lane) Global(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: lane %d: negative delay %v", ln.id, d))
	}
	s := ln.eng.shards
	if !s.draining {
		ln.eng.After(d, fn)
		return
	}
	at := ln.now + d
	ln.sendSeq++
	ln.outbox = append(ln.outbox, post{at: at, cell: ln.childCell(),
		from: ln.id, seq: ln.sendSeq, to: -1, fn: fn})
	if at < ln.horizon && at < ln.limit {
		ln.limit = at
	}
}

// GlobalInline is Global(0, fn) for call sites whose serial counterpart runs
// fn inline inside the emitting event's callback rather than deferring it
// through After(0). The reaction is then causally the emitting event itself,
// not a child of it: it merges under the emitter's own key, and work it
// schedules is parented by the emitter — exactly how the serial engine sees
// the inline insertions. From coordinator context the serial counterpart is
// a direct call, so fn runs immediately.
func (ln *Lane) GlobalInline(fn func()) {
	s := ln.eng.shards
	if !s.draining {
		fn()
		return
	}
	at := ln.now
	ln.sendSeq++
	ln.outbox = append(ln.outbox, post{at: at, cell: ln.curCell,
		from: ln.id, seq: ln.sendSeq, to: -1, fn: fn})
	if at < ln.horizon && at < ln.limit {
		ln.limit = at
	}
}

// shardSet is the windowed scheduler's state: the lanes, their grouping into
// shards, and the scratch the coordinator reuses between windows.
type shardSet struct {
	eng       *Engine
	lanes     []*Lane
	groups    [][]*Lane // groups[s] = the lanes shard s advances
	lookahead Duration

	inbox  []post // merge scratch, reused across windows
	counts []int  // per-group events executed in the current window
	panics []any  // per-group recovered panic values
	wg     sync.WaitGroup

	// draining is true while shard goroutines execute a window. It is written
	// only by the coordinator, before the goroutines start and after they
	// join, so lane callbacks read it race-free; it is what lets Lane methods
	// tell lane context from coordinator context (see Lane.clock).
	draining bool
}

// ConfigureShards equips the engine with `lanes` shard lanes advanced by
// `shards` parallel executors under the given conservative lookahead
// horizon. Lanes are partitioned into contiguous, near-equal groups — lane
// i belongs to shard i*shards/lanes — mirroring how a cluster partitions
// machines. shards is clamped to [1, lanes]; lanes and lookahead must be
// positive.
//
// Reconfiguring with identical parameters while no lane events are pending
// is a no-op (the per-action reuse pattern: every run of a long-lived
// session passes the same options). Any other reconfiguration with pending
// lane events panics — it would orphan them.
func (e *Engine) ConfigureShards(lanes, shards int, lookahead Duration) {
	if e.running {
		panic("sim: ConfigureShards during Run")
	}
	if lanes <= 0 {
		panic(fmt.Sprintf("sim: ConfigureShards needs lanes, got %d", lanes))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: ConfigureShards needs a positive lookahead, got %v", lookahead))
	}
	if shards < 1 {
		shards = 1
	}
	if shards > lanes {
		shards = lanes
	}
	if s := e.shards; s != nil {
		if len(s.lanes) == lanes && len(s.groups) == shards && s.lookahead == lookahead {
			return
		}
		for _, ln := range s.lanes {
			if ln.q.len() > 0 {
				panic(fmt.Sprintf("sim: ConfigureShards would orphan %d pending events on lane %d", ln.q.len(), ln.id))
			}
		}
	}
	s := &shardSet{
		eng:       e,
		lookahead: lookahead,
		lanes:     make([]*Lane, lanes),
		groups:    make([][]*Lane, shards),
		counts:    make([]int, shards),
		panics:    make([]any, shards),
	}
	for i := range s.lanes {
		s.lanes[i] = &Lane{eng: e, id: i, now: e.now, lastEvent: e.now, limit: Forever}
		g := i * shards / lanes
		s.groups[g] = append(s.groups[g], s.lanes[i])
	}
	e.shards = s
}

// DisableShards removes the lane layer, returning the engine to the pure
// serial scheduler. Panics if lane events are still pending.
func (e *Engine) DisableShards() {
	if e.running {
		panic("sim: DisableShards during Run")
	}
	if e.shards == nil {
		return
	}
	for _, ln := range e.shards.lanes {
		if ln.q.len() > 0 {
			panic(fmt.Sprintf("sim: DisableShards would orphan %d pending events on lane %d", ln.q.len(), ln.id))
		}
	}
	e.shards = nil
}

// LaneCount reports the number of configured lanes (0 when unsharded).
func (e *Engine) LaneCount() int {
	if e.shards == nil {
		return 0
	}
	return len(e.shards.lanes)
}

// ShardCount reports the number of parallel shard executors (0 when
// unsharded).
func (e *Engine) ShardCount() int {
	if e.shards == nil {
		return 0
	}
	return len(e.shards.groups)
}

// Lookahead reports the conservative horizon (0 when unsharded).
func (e *Engine) Lookahead() Duration {
	if e.shards == nil {
		return 0
	}
	return e.shards.lookahead
}

// Lane returns lane i. Panics when unsharded or out of range.
func (e *Engine) Lane(i int) *Lane {
	if e.shards == nil {
		panic("sim: Lane on an unsharded engine")
	}
	return e.shards.lanes[i]
}

// laneMin reports the earliest pending lane event across all lanes.
func (s *shardSet) laneMin() Time {
	min := Forever
	for _, ln := range s.lanes {
		if t := ln.q.peek(); t < min {
			min = t
		}
	}
	return min
}

// drainGroup advances group g's lanes through [their current clocks, w1):
// repeatedly pick the group-wide earliest (time, lane ID) event under w1 and
// execute it. Runs on the shard's goroutine; touches only group-g lanes. A
// callback panic is captured into s.panics[g] so the coordinator can re-raise
// it deterministically after the barrier.
func (s *shardSet) drainGroup(g int, w1 Time) {
	defer func() {
		if r := recover(); r != nil {
			s.panics[g] = r
		}
	}()
	lanes := s.groups[g]
	n := 0
	for {
		var best *Lane
		bt := w1
		for _, ln := range lanes {
			// Strict < keeps the tie rule: events exactly at w1 belong to the
			// next window (after any global event at w1). The limit check
			// honors Global's escape cap: a lane that posted a zero-delay
			// global escape stops at the escape instant, so device events
			// after it wait for the global side's reaction.
			if t := ln.q.peek(); t < bt && t <= ln.limit {
				bt, best = t, ln
			}
		}
		if best == nil {
			break
		}
		ev := best.q.pop()
		best.now = ev.at
		best.lastEvent = ev.at
		best.curCell = ev.cell
		best.callCtr = 0
		fn := ev.fn
		best.q.recycle(ev)
		fn()
		n++
	}
	for _, ln := range lanes {
		ln.now = w1
	}
	s.counts[g] = n
}

// mergeOutboxes gathers every lane's outbox into s.inbox sorted by
// (deliver-time, canonical key, sender lane, sender send-sequence) — a total
// order decided entirely by lane-local execution, hence identical at any
// shard count — and schedules the deliveries into their target lanes in that
// order.
func (s *shardSet) mergeOutboxes() {
	s.inbox = s.inbox[:0]
	for _, ln := range s.lanes {
		s.inbox = append(s.inbox, ln.outbox...)
		for i := range ln.outbox {
			ln.outbox[i].fn = nil
		}
		ln.outbox = ln.outbox[:0]
	}
	// Insertion sort: windows carry few posts, and unlike sort.Slice this
	// allocates nothing.
	for i := 1; i < len(s.inbox); i++ {
		for j := i; j > 0 && postLess(s.inbox[j], s.inbox[j-1]); j-- {
			s.inbox[j], s.inbox[j-1] = s.inbox[j-1], s.inbox[j]
		}
	}
	for i := range s.inbox {
		p := &s.inbox[i]
		if p.to < 0 {
			// A Global escape: injected into the engine's global queue. The
			// schedule call sidesteps Engine.At's past-check on purpose;
			// runSharded advances the engine clock only up to the earliest
			// pending global event, so the escape is never in its past. The
			// escape carries its causal key (the emitter's own key for
			// GlobalInline, a child key for Global) so its callback's
			// insertions inherit the right ancestry.
			ref := s.eng.q.schedule(p.at, p.fn)
			ref.ev.cell = p.cell
		} else {
			ref := s.lanes[p.to].q.schedule(p.at, p.fn)
			ref.ev.cell = p.cell
		}
		p.fn = nil
		p.cell = nil
	}
	s.inbox = s.inbox[:0]
}

// postLess orders posts by (deliver-time, causal key, sender lane, sender
// sequence); sends sort after same-instant escapes and keep their classic
// (sender lane, sender sequence) order among themselves.
func postLess(a, b post) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.send != b.send {
		return !a.send
	}
	if !a.send {
		if c := cellCompare(a.cell, b.cell); c != 0 {
			return c < 0
		}
	}
	if a.from != b.from {
		return a.from < b.from
	}
	return a.seq < b.seq
}

// runSharded is Run's windowed scheduler. Global events keep the serial
// engine's exact semantics — executed one at a time in (time, seq) order
// whenever no lane event precedes them, with the same abort-poll cadence —
// so a run that schedules only global events (today's production executors)
// is byte-identical to the unsharded engine. Lane events advance in
// parallel windows between them.
func (e *Engine) runSharded() {
	s := e.shards
	checked := e.abortCheck != nil
	if checked {
		if e.abortErr != nil {
			return
		}
		if err := e.abortCheck(); err != nil {
			e.abortErr = err
			return
		}
	}
	budget := e.abortEvery
	for {
		// Deliver sends issued from coordinator context — setup code before
		// Run, or the global event callback that just executed. Those posts
		// never reach a window barrier on their own; merging here makes them
		// pending lane work visible to laneMin and the termination check
		// below instead of silently dropped events. (After a window barrier
		// the outboxes are already empty and this is a no-op.)
		s.mergeOutboxes()
		gt := e.q.peek()
		lt := s.laneMin()
		if gt == Forever && lt == Forever {
			return
		}
		if gt <= lt {
			// The global event precedes (ties included: lane events at the
			// same instant wait behind it) — serial step. The event's causal
			// key becomes the engine's current key so work the callback
			// schedules is parented under this event's serial-order position.
			ev := e.q.pop()
			e.now = ev.at
			e.curCell = ev.cell
			e.callCtr = 0
			fn := ev.fn
			e.q.recycle(ev)
			e.globalExec++
			e.inGlobal = true
			fn()
			e.inGlobal = false
			if checked {
				budget--
				if budget <= 0 {
					if err := e.abortCheck(); err != nil {
						e.abortErr = err
						return
					}
					budget = e.abortEvery
				}
			}
			continue
		}
		// Open the window [lt, w1).
		w1 := lt + s.lookahead
		if w1 < lt {
			// lookahead overflow (lt near Forever): clamp to the global bound.
			w1 = Forever
		}
		if gt < w1 {
			w1 = gt
		}
		for _, ln := range s.lanes {
			ln.horizon = w1
			ln.limit = Forever // escape caps apply to one window only
		}
		// Fan groups with work onto goroutines; the first busy group runs
		// inline on the coordinator.
		s.draining = true
		inline := -1
		for g := range s.groups {
			s.counts[g] = 0
			s.panics[g] = nil
			busy := false
			for _, ln := range s.groups[g] {
				if ln.q.peek() < w1 {
					busy = true
					break
				}
			}
			if !busy {
				for _, ln := range s.groups[g] {
					ln.now = w1
				}
				continue
			}
			if inline >= 0 {
				g := g
				s.wg.Add(1)
				go func() {
					defer s.wg.Done()
					s.drainGroup(g, w1)
				}()
			}
			if inline < 0 {
				inline = g
			}
		}
		if inline >= 0 {
			s.drainGroup(inline, w1)
		}
		s.wg.Wait()
		s.draining = false
		for g, p := range s.panics {
			if p != nil {
				panic(fmt.Sprintf("sim: shard %d: lane callback panicked: %v", g, p))
			}
		}
		s.mergeOutboxes()
		e.windows++
		for _, n := range s.counts {
			e.laneExec += uint64(n)
		}
		// Advance the global clock to the window bound — but never past a
		// pending global event. Escapes posted inside the window land before
		// w1; the clock must sit at or before them when they dispatch.
		target := w1
		if pg := e.q.peek(); pg < target {
			target = pg
		}
		if e.now < target && target < Forever {
			e.now = target
		}
		if checked {
			for _, n := range s.counts {
				budget -= n
			}
			if budget <= 0 {
				if err := e.abortCheck(); err != nil {
					e.abortErr = err
					return
				}
				budget = e.abortEvery
			}
		}
	}
}
