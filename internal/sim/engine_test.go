package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", e.Len())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	record := func() { got = append(got, e.Now()) }
	e.At(3, record)
	e.At(1, record)
	e.At(2, record)
	e.Run()
	want := []Time{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO among ties)", i, v, i)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var fired Time
	e.At(10, func() {
		e.After(5, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 15 {
		t.Fatalf("After(5) at t=10 fired at %v, want 15", fired)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(1, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double cancel and cancel-after-fire must be no-ops.
	e.Cancel(ev)
	ev2 := e.At(2, func() {})
	e.Run()
	e.Cancel(ev2)
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var got []Time
	record := func() { got = append(got, e.Now()) }
	var evs []EventRef
	for i := 1; i <= 5; i++ {
		evs = append(evs, e.At(Time(i), record))
	}
	e.Cancel(evs[2]) // t=3
	e.Run()
	want := []Time{1, 2, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At(past) did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestNegativeAfterPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("After(-1) did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(1, func() { fired++ })
	e.At(5, func() { fired++ })
	e.At(10, func() { fired++ })
	e.RunUntil(5)
	if fired != 2 {
		t.Fatalf("fired %d events by t=5, want 2", fired)
	}
	if e.Now() != 5 {
		t.Fatalf("Now() = %v, want 5", e.Now())
	}
	if e.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", e.Len())
	}
	e.Run()
	if fired != 3 || e.Now() != 10 {
		t.Fatalf("after Run: fired=%d now=%v, want 3, 10", fired, e.Now())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	depth := 0
	var schedule func()
	schedule = func() {
		depth++
		if depth < 100 {
			e.After(1, schedule)
		}
	}
	e.At(0, schedule)
	e.Run()
	if depth != 100 {
		t.Fatalf("chained %d events, want 100", depth)
	}
	if e.Now() != 99 {
		t.Fatalf("Now() = %v, want 99", e.Now())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step() on empty engine returned true")
	}
}

// Property: for any set of scheduled times, events fire in sorted order and
// the clock never moves backwards.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine()
		times := make([]Time, len(raw))
		for i, r := range raw {
			times[i] = Time(r)
		}
		var fired []Time
		last := Time(-1)
		ok := true
		for _, tm := range times {
			tm := tm
			e.At(tm, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
				fired = append(fired, e.Now())
			})
		}
		e.Run()
		if !ok || len(fired) != len(times) {
			return false
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		for i := range times {
			if fired[i] != times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset leaves exactly the complement firing.
func TestPropertyCancelSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		n := 1 + rng.Intn(100)
		firedCount := 0
		evs := make([]EventRef, n)
		for i := 0; i < n; i++ {
			evs[i] = e.At(Time(rng.Intn(1000)), func() { firedCount++ })
		}
		cancelled := 0
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				e.Cancel(evs[i])
				cancelled++
			}
		}
		e.Run()
		if firedCount != n-cancelled {
			t.Fatalf("trial %d: fired %d, want %d", trial, firedCount, n-cancelled)
		}
	}
}

// TestStaleRefCannotCancelRecycledEvent pins the safety property of the
// event free list: after an event fires, its struct may be reused for a new
// event, and a stale ref to the old tenant must not cancel the new one.
func TestStaleRefCannotCancelRecycledEvent(t *testing.T) {
	e := NewEngine()
	first := e.At(1, func() {})
	e.Run() // first fires; its struct goes to the free list
	if first.Scheduled() {
		t.Fatal("fired event still reports Scheduled")
	}
	fired := false
	second := e.At(2, func() { fired = true })
	e.Cancel(first) // stale: must not touch the recycled struct's new tenant
	if !second.Scheduled() {
		t.Fatal("stale Cancel removed a live event")
	}
	e.Run()
	if !fired {
		t.Fatal("second event did not fire")
	}
}

// TestEventStructsAreReused asserts the free list actually recycles: a
// schedule→fire→schedule churn loop must stop allocating Event structs once
// the pool is warm.
func TestEventStructsAreReused(t *testing.T) {
	e := NewEngine()
	var chain func()
	n := 0
	chain = func() {
		n++
		if n < 1000 {
			e.After(1, chain)
		}
	}
	e.At(0, chain)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 10 && e.Step(); i++ {
		}
	})
	if allocs > 0.5 {
		t.Fatalf("event churn allocates %.1f objects per 10 steps, want 0 (pooled)", allocs)
	}
}

// TestEventRefZeroValue checks the documented zero-ref behavior.
func TestEventRefZeroValue(t *testing.T) {
	e := NewEngine()
	var r EventRef
	if r.Scheduled() {
		t.Fatal("zero ref reports Scheduled")
	}
	if r.Time() != Forever {
		t.Fatalf("zero ref Time() = %v, want Forever", r.Time())
	}
	e.Cancel(r) // must be a no-op
	live := e.At(3, func() {})
	if got := live.Time(); got != 3 {
		t.Fatalf("live ref Time() = %v, want 3", got)
	}
}

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.At(Time(j%97), func() {})
		}
		e.Run()
	}
}

// BenchmarkEngineChurn measures the steady-state event loop the device models
// actually drive: a long-lived engine where every firing cancels a provisional
// completion event and schedules replacements (the fluid-server reschedule
// pattern). This is the innermost loop of every experiment; with the event
// free list it runs allocation-free once the pool is warm.
func BenchmarkEngineChurn(b *testing.B) {
	e := NewEngine()
	const width = 64
	refs := make([]EventRef, width)
	fns := make([]func(), width)
	for i := range fns {
		slot := i
		fns[slot] = func() {
			// Cancel the neighbor's provisional event and reschedule it, then
			// reschedule ourselves — one cancel and two schedules per firing.
			next := (slot + 1) % width
			e.Cancel(refs[next])
			refs[next] = e.After(Duration(width), fns[next])
			refs[slot] = e.After(Duration(slot%7)+1, fns[slot])
		}
	}
	for i := range fns {
		refs[i] = e.After(Duration(i+1), fns[i])
	}
	for i := 0; i < 10*width; i++ { // warm the free list
		e.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
