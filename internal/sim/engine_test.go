package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", e.Len())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	record := func() { got = append(got, e.Now()) }
	e.At(3, record)
	e.At(1, record)
	e.At(2, record)
	e.Run()
	want := []Time{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO among ties)", i, v, i)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var fired Time
	e.At(10, func() {
		e.After(5, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 15 {
		t.Fatalf("After(5) at t=10 fired at %v, want 15", fired)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(1, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double cancel and cancel-after-fire must be no-ops.
	e.Cancel(ev)
	ev2 := e.At(2, func() {})
	e.Run()
	e.Cancel(ev2)
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var got []Time
	record := func() { got = append(got, e.Now()) }
	var evs []*Event
	for i := 1; i <= 5; i++ {
		evs = append(evs, e.At(Time(i), record))
	}
	e.Cancel(evs[2]) // t=3
	e.Run()
	want := []Time{1, 2, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At(past) did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestNegativeAfterPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("After(-1) did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(1, func() { fired++ })
	e.At(5, func() { fired++ })
	e.At(10, func() { fired++ })
	e.RunUntil(5)
	if fired != 2 {
		t.Fatalf("fired %d events by t=5, want 2", fired)
	}
	if e.Now() != 5 {
		t.Fatalf("Now() = %v, want 5", e.Now())
	}
	if e.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", e.Len())
	}
	e.Run()
	if fired != 3 || e.Now() != 10 {
		t.Fatalf("after Run: fired=%d now=%v, want 3, 10", fired, e.Now())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	depth := 0
	var schedule func()
	schedule = func() {
		depth++
		if depth < 100 {
			e.After(1, schedule)
		}
	}
	e.At(0, schedule)
	e.Run()
	if depth != 100 {
		t.Fatalf("chained %d events, want 100", depth)
	}
	if e.Now() != 99 {
		t.Fatalf("Now() = %v, want 99", e.Now())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step() on empty engine returned true")
	}
}

// Property: for any set of scheduled times, events fire in sorted order and
// the clock never moves backwards.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine()
		times := make([]Time, len(raw))
		for i, r := range raw {
			times[i] = Time(r)
		}
		var fired []Time
		last := Time(-1)
		ok := true
		for _, tm := range times {
			tm := tm
			e.At(tm, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
				fired = append(fired, e.Now())
			})
		}
		e.Run()
		if !ok || len(fired) != len(times) {
			return false
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		for i := range times {
			if fired[i] != times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset leaves exactly the complement firing.
func TestPropertyCancelSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		n := 1 + rng.Intn(100)
		firedCount := 0
		evs := make([]*Event, n)
		for i := 0; i < n; i++ {
			evs[i] = e.At(Time(rng.Intn(1000)), func() { firedCount++ })
		}
		cancelled := 0
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				e.Cancel(evs[i])
				cancelled++
			}
		}
		e.Run()
		if firedCount != n-cancelled {
			t.Fatalf("trial %d: fired %d, want %d", trial, firedCount, n-cancelled)
		}
	}
}

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.At(Time(j%97), func() {})
		}
		e.Run()
	}
}
