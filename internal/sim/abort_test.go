package sim

import (
	"errors"
	"fmt"
	"testing"
)

// intsEqual compares two firing logs, treating nil and empty alike.
func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// chainEngine builds an engine with a deterministic self-rescheduling event
// chain that executes exactly total events, appending each firing's id to
// *log. The chain mixes cancellation and rescheduling so the heap sees the
// same churn the device models produce.
func chainEngine(total int, log *[]int) *Engine {
	e := NewEngine()
	const width = 8
	fired := 0
	var fns [width]func()
	var refs [width]EventRef
	for i := range fns {
		slot := i
		fns[slot] = func() {
			*log = append(*log, slot)
			fired++
			if fired >= total {
				for j := range refs {
					e.Cancel(refs[j])
				}
				return
			}
			next := (slot + 1) % width
			e.Cancel(refs[next])
			refs[next] = e.After(Duration(width), fns[next])
			refs[slot] = e.After(Duration(slot%3)+1, fns[slot])
		}
	}
	for i := range fns {
		refs[i] = e.After(Duration(i+1), fns[i])
	}
	return e
}

func TestAbortCheckStopsRunEarly(t *testing.T) {
	var log []int
	e := chainEngine(1000, &log)
	boom := errors.New("boom")
	polls := 0
	e.SetAbortCheck(10, func() error {
		polls++
		if polls >= 3 {
			return boom
		}
		return nil
	})
	e.Run()
	if !errors.Is(e.AbortErr(), boom) {
		t.Fatalf("AbortErr = %v, want boom", e.AbortErr())
	}
	// Poll 1 fires before the first event, then every 10 events: the third
	// poll lands after 20 executed events.
	if len(log) != 20 {
		t.Fatalf("executed %d events before abort, want 20", len(log))
	}
	if e.Len() == 0 {
		t.Fatal("abort should leave the chain's events pending")
	}
	// While the abort stands, Run is a no-op.
	before := len(log)
	e.Run()
	if len(log) != before {
		t.Fatal("Run executed events while AbortErr was set")
	}
}

// TestAbortResumeIdentity is the reusability property: aborting a run at ANY
// deadline and then resuming (ClearAbort + Run) must reproduce exactly the
// uninterrupted event sequence — the abort is a pause, not a perturbation.
func TestAbortResumeIdentity(t *testing.T) {
	const total = 200
	var want []int
	ref := chainEngine(total, &want)
	ref.Run()
	if len(want) != total {
		t.Fatalf("reference chain fired %d events, want %d", len(want), total)
	}
	for abortAfter := 1; abortAfter < total; abortAfter += 7 {
		var got []int
		e := chainEngine(total, &got)
		stop := errors.New("deadline")
		polls := 0
		e.SetAbortCheck(1, func() error {
			polls++
			if polls >= abortAfter {
				return stop
			}
			return nil
		})
		e.Run()
		if e.AbortErr() == nil {
			t.Fatalf("abortAfter=%d: abort did not fire", abortAfter)
		}
		// The executed prefix must match the uninterrupted run.
		if !intsEqual(got, want[:len(got)]) {
			t.Fatalf("abortAfter=%d: prefix diverged", abortAfter)
		}
		// Resume: clear the abort and keep the (cleared) check installed to
		// prove the polling itself is invisible.
		e.ClearAbort()
		e.SetAbortCheck(1, func() error { return nil })
		e.Run()
		if !intsEqual(got, want) {
			t.Fatalf("abortAfter=%d: resumed run diverged from uninterrupted run", abortAfter)
		}
	}
}

// TestAbortCheckNoPerturbation: an installed check that never fires must not
// change the event order at all.
func TestAbortCheckNoPerturbation(t *testing.T) {
	const total = 500
	var want []int
	ref := chainEngine(total, &want)
	ref.Run()
	var got []int
	e := chainEngine(total, &got)
	e.SetAbortCheck(1, func() error { return nil })
	e.Run()
	if !intsEqual(got, want) {
		t.Fatal("a never-firing abort check perturbed the event order")
	}
}

func TestAbortCheckZeroAlloc(t *testing.T) {
	// The abort polling itself must not allocate: a drain with the check
	// installed must allocate exactly as much as one without. The chain's
	// own setup (engine, closures, event blocks) allocates either way, so
	// measure the delta rather than an absolute count.
	check := func() error { return nil }
	drain := func(withCheck bool) float64 {
		return testing.AllocsPerRun(20, func() {
			log := make([]int, 0, 256)
			e := chainEngine(200, &log)
			if withCheck {
				e.SetAbortCheck(4, check)
			}
			e.Run()
		})
	}
	base := drain(false)
	withCheck := drain(true)
	if withCheck > base {
		t.Fatalf("abort polling allocated: %.0f allocs/run with check vs %.0f without", withCheck, base)
	}
}

func TestSetAbortCheckDefaults(t *testing.T) {
	e := NewEngine()
	e.SetAbortCheck(0, func() error { return fmt.Errorf("x") })
	if e.abortEvery != DefaultAbortInterval {
		t.Fatalf("abortEvery = %d, want default %d", e.abortEvery, DefaultAbortInterval)
	}
	e.SetAbortCheck(0, nil)
	if e.abortCheck != nil {
		t.Fatal("nil check should disarm")
	}
}

// BenchmarkEngineDrainAbortCheck quantifies the abort poll on the Run loop:
// compare to BenchmarkEngineDrainNoCheck — the delta is the cancellation
// tax, which must stay in the noise (the check runs every 256 events).
func BenchmarkEngineDrainAbortCheck(b *testing.B) {
	benchDrain(b, true)
}

// BenchmarkEngineDrainNoCheck is the baseline for the abort-poll delta.
func BenchmarkEngineDrainNoCheck(b *testing.B) {
	benchDrain(b, false)
}

func benchDrain(b *testing.B, withCheck bool) {
	var log []int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		log = log[:0]
		e := chainEngine(2000, &log)
		if withCheck {
			e.SetAbortCheck(0, func() error { return nil })
		}
		e.Run()
	}
}
