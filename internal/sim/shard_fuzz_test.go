package sim

import "testing"

// FuzzShardedReplay feeds arbitrary (seed, lanes, shards) triples to the
// randomized lane workload and requires two bit-identical guarantees: the
// same inputs replay identically, and any shard count produces the same
// trace as one shard. It is the fuzz face of TestShardProperties — the
// property suite walks 250 fixed seeds, the fuzzer walks the corners
// (degenerate lane counts, shard counts above the lane count, seeds that
// shake out unusual window sequences).
func FuzzShardedReplay(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(2))
	f.Add(uint64(42), uint8(8), uint8(8))
	f.Add(uint64(7), uint8(2), uint8(16)) // shards clamp to lanes
	f.Add(uint64(99), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, lanes, shards uint8) {
		l := int(lanes%16) + 1
		s := int(shards%16) + 1
		base, bh := runLaneWorkload(seed, l, 1)
		for lane, b := range bh.breaches {
			if b != 0 {
				t.Fatalf("seed %d lanes=%d shards=1: lane %d: %d horizon/clock breaches", seed, l, lane, b)
			}
		}
		replay, _ := runLaneWorkload(seed, l, 1)
		if replay != base {
			t.Fatalf("seed %d lanes=%d: serial replay diverged:\n%s", seed, l, firstTraceDiff(replay, base))
		}
		got, gh := runLaneWorkload(seed, l, s)
		for lane, b := range gh.breaches {
			if b != 0 {
				t.Fatalf("seed %d lanes=%d shards=%d: lane %d: %d horizon/clock breaches", seed, l, s, lane, b)
			}
		}
		if got != base {
			t.Fatalf("seed %d lanes=%d: shards=%d diverged from shards=1:\n%s", seed, l, s, firstTraceDiff(got, base))
		}
		again, _ := runLaneWorkload(seed, l, s)
		if again != got {
			t.Fatalf("seed %d lanes=%d shards=%d: sharded replay diverged:\n%s", seed, l, s, firstTraceDiff(again, got))
		}
	})
}
