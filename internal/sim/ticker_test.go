package sim

import "testing"

func TestTickerFiresWhileWorkPending(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	tk := e.Every(1, func() { ticks = append(ticks, e.Now()) })
	e.At(5.5, func() {})
	e.Run()
	// Ticks at 1..5, then the final fire at 6 (after which the queue is
	// empty, so the ticker lets the engine drain).
	want := []Time{1, 2, 3, 4, 5, 6}
	if len(ticks) != len(want) {
		t.Fatalf("ticks %v, want %v", ticks, want)
	}
	for i, w := range want {
		if ticks[i] != w {
			t.Fatalf("ticks %v, want %v", ticks, want)
		}
	}
	if tk.Active() {
		t.Fatal("ticker still active after drain")
	}
}

func TestTickerKickResumesAfterDrain(t *testing.T) {
	e := NewEngine()
	n := 0
	tk := e.Every(2, func() { n++ })
	e.At(3, func() {})
	e.Run() // ticks at 2 and 4
	if n != 2 {
		t.Fatalf("first phase ticks = %d, want 2", n)
	}
	// Bind new work and re-arm: the ticker resumes from the current clock.
	e.At(e.Now()+5, func() {})
	tk.Kick()
	e.Run() // ticks at 6, 8, 10 (event at 9 drains after the 8-tick... at 10 queue empty)
	if n != 5 {
		t.Fatalf("total ticks = %d, want 5", n)
	}
	tk.Kick()
	if tk.Active() {
		// Kick with an empty queue schedules one tick; drain it.
		e.Run()
	}
}

func TestTickerStop(t *testing.T) {
	e := NewEngine()
	n := 0
	tk := e.Every(1, func() { n++ })
	e.At(10, func() {})
	e.At(3.5, func() { tk.Stop() })
	e.Run()
	if n != 3 {
		t.Fatalf("ticks after Stop = %d, want 3", n)
	}
	tk.Kick()
	if tk.Active() {
		t.Fatal("Kick re-armed a stopped ticker")
	}
}

func TestTickerInvalidInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	NewEngine().Every(0, func() {})
}

func TestTickerDoesNotPerturbEventOrder(t *testing.T) {
	// The same workload with and without a read-only ticker must execute its
	// own events in the same order at the same times.
	run := func(withTicker bool) []Time {
		e := NewEngine()
		var fired []Time
		if withTicker {
			e.Every(0.3, func() {})
		}
		for _, at := range []Time{1, 1, 2.5, 2.5, 7} {
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		return fired
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event order perturbed: %v vs %v", a, b)
		}
	}
}
