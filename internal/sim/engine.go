// Package sim provides a deterministic discrete-event simulation engine.
//
// All performance experiments in this repository run in virtual time: device
// models (CPU, disk, network) schedule completion events on an Engine, and
// the Engine advances a virtual clock from event to event. Determinism is
// guaranteed by breaking ties on (time, sequence number), so a given workload
// and cluster configuration always produces bit-identical results.
//
// The engine is the innermost loop of every experiment, so it is built to
// stay off the allocator: the pending queue is a hand-rolled indexed binary
// heap (no container/heap interface boxing), and fired or cancelled Event
// structs are recycled through a free list. Recycling is safe because At and
// After hand out EventRef value handles that carry the struct's generation;
// a stale handle — one whose event already fired or was cancelled — is
// detected by the generation check and Cancel ignores it.
//
// Beyond the single serial timeline, an engine can be configured with shard
// lanes (ConfigureShards): independent per-lane event queues that advance in
// parallel up to a conservative lookahead horizon, synchronizing only where
// events cross lanes. See shard.go for the window protocol and its
// determinism argument.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since the start of the
// simulation. float64 seconds keeps device-model arithmetic (rates, shares)
// simple; nanosecond-scale rounding error is irrelevant at the tens-of-seconds
// scale the experiments measure.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = Time

// Forever is a sentinel time later than any event the engine will execute.
const Forever Time = math.MaxFloat64

// keyCell is one link in an event's causal key (see Event.cell): the
// instant the event was inserted, which event's callback inserted it
// (parent, nil for setup-context roots), and the insertion's index among
// the parent's insertions. Cells are immutable and shared — an event's cell
// points at its parent's — so a cell chain is the event's full scheduling
// ancestry.
type keyCell struct {
	parent *keyCell
	at     Time
	idx    uint64
}

// cellCompare orders two causal keys exactly as a serial engine's insertion
// sequence numbers would order the corresponding events. A serial engine
// numbers insertions in execution order, so event a was inserted before
// event b iff a was inserted at an earlier instant, or at the same instant
// by an earlier-ordered parent (recursively this same order), or by the same
// parent at a smaller call index. The walk toward the roots terminates at
// the first differing instant, at a shared parent (pointer equality — also
// the common case, siblings), or at the setup roots (nil parents, ordered by
// their root index). Distinct cells never compare equal: a parent's
// insertion indices are unique.
func cellCompare(a, b *keyCell) int {
	for {
		if a == b {
			return 0
		}
		if a == nil {
			return -1
		}
		if b == nil {
			return 1
		}
		if a.at != b.at {
			if a.at < b.at {
				return -1
			}
			return 1
		}
		if a.parent == b.parent {
			if a.idx < b.idx {
				return -1
			}
			return 1
		}
		a, b = a.parent, b.parent
	}
}

// Event is one scheduled callback's storage. Event structs are pooled: after
// an event fires or is cancelled its struct is recycled for a later At call,
// so holding a *Event across its firing is unsafe — that is why the engine
// hands out EventRef values instead.
type Event struct {
	at    Time
	seq   uint64
	index int // heap index, -1 once removed
	gen   uint32
	fn    func()
	owner *eventQueue // the queue whose free list recycles this struct

	// Causal key, used only by sharded runs (see Lane.Global and
	// cellCompare). It reconstructs the serial engine's insertion-order
	// tie-break for same-instant events without a globally shared counter:
	// the cell records when and by whom the event was scheduled, and chains
	// of cells compare exactly as serial insertion sequence numbers do. Nil
	// on unsharded engines — the serial scheduler orders by its own (at,
	// seq) and never consults it.
	cell *keyCell
}

// EventRef is a handle to a scheduled event, returned by At and After so
// callers can cancel the event before it fires. The zero EventRef refers to
// nothing; cancelling it is a no-op. A ref whose event already fired (or was
// already cancelled) is stale, and stale refs are likewise safely ignored —
// the generation check distinguishes them from the struct's next tenant.
type EventRef struct {
	ev  *Event
	gen uint32
}

// Scheduled reports whether the referenced event is still pending.
func (r EventRef) Scheduled() bool {
	return r.ev != nil && r.ev.gen == r.gen && r.ev.index >= 0
}

// Time reports when the referenced event will fire, or Forever if the ref is
// zero or stale.
func (r EventRef) Time() Time {
	if !r.Scheduled() {
		return Forever
	}
	return r.ev.at
}

// eventQueue is one deterministic timeline: an indexed binary min-heap on
// (at, seq) with a pooled free list and its own sequence counter. The serial
// engine owns one; every shard lane owns another, which is what lets lanes
// advance concurrently — queues share no state, so there is no lock.
type eventQueue struct {
	pending []*Event // indexed binary min-heap on (at, seq)
	free    []*Event // recycled Event structs
	seq     uint64
}

// schedule enqueues fn at absolute time t and returns its handle. The caller
// is responsible for the not-in-the-past check (the engine and lanes compare
// against different clocks).
func (q *eventQueue) schedule(t Time, fn func()) EventRef {
	q.seq++
	var ev *Event
	if n := len(q.free); n > 0 {
		ev = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
	} else {
		// Grow the free list a block at a time: a fresh queue warms up with
		// one allocation per 64 events instead of one per event, which matters
		// because every sweep cell builds its own engine.
		block := make([]Event, 64)
		for i := 1; i < len(block); i++ {
			block[i].index = -1
			block[i].owner = q
			q.free = append(q.free, &block[i])
		}
		block[0].index = -1
		block[0].owner = q
		ev = &block[0]
	}
	ev.at = t
	ev.seq = q.seq
	ev.fn = fn
	ev.index = len(q.pending)
	q.pending = append(q.pending, ev)
	q.siftUp(ev.index)
	return EventRef{ev: ev, gen: ev.gen}
}

// remove cancels a pending event; zero and stale refs are no-ops.
func (q *eventQueue) remove(r EventRef) {
	if !r.Scheduled() {
		return
	}
	ev := r.ev
	i := ev.index
	n := len(q.pending) - 1
	if i != n {
		q.pending[i] = q.pending[n]
		q.pending[i].index = i
	}
	q.pending[n] = nil
	q.pending = q.pending[:n]
	if i != n {
		if !q.siftDown(i) {
			q.siftUp(i)
		}
	}
	q.recycle(ev)
}

// pop removes and returns the earliest pending event, or nil when the queue
// is empty. The caller must recycle the struct after reading it.
func (q *eventQueue) pop() *Event {
	if len(q.pending) == 0 {
		return nil
	}
	ev := q.pending[0]
	n := len(q.pending) - 1
	if n > 0 {
		q.pending[0] = q.pending[n]
		q.pending[0].index = 0
	}
	q.pending[n] = nil
	q.pending = q.pending[:n]
	if n > 1 {
		q.siftDown(0)
	}
	return ev
}

// peek reports the earliest pending time, or Forever when empty.
func (q *eventQueue) peek() Time {
	if len(q.pending) == 0 {
		return Forever
	}
	return q.pending[0].at
}

// recycle retires an event struct to the free list, bumping its generation so
// stale EventRefs can no longer reach it. The causal key is dropped so the
// struct does not pin a retired event's ancestry chain in memory.
func (q *eventQueue) recycle(ev *Event) {
	ev.index = -1
	ev.fn = nil
	ev.cell = nil
	ev.gen++
	q.free = append(q.free, ev)
}

// len reports the number of pending events.
func (q *eventQueue) len() int { return len(q.pending) }

// less orders events by (time, seq) — the determinism tie-break.
func (q *eventQueue) less(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// siftUp restores the heap invariant upward from index i.
func (q *eventQueue) siftUp(i int) {
	h := q.pending
	ev := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(ev, h[parent]) {
			break
		}
		h[i] = h[parent]
		h[i].index = i
		i = parent
	}
	h[i] = ev
	ev.index = i
}

// siftDown restores the heap invariant downward from index i, reporting
// whether the element moved.
func (q *eventQueue) siftDown(i int) bool {
	h := q.pending
	n := len(h)
	ev := h[i]
	start := i
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if right := child + 1; right < n && q.less(h[right], h[child]) {
			child = right
		}
		if !q.less(h[child], ev) {
			break
		}
		h[i] = h[child]
		h[i].index = i
		i = child
	}
	h[i] = ev
	ev.index = i
	return i != start
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine. Engines are not safe for concurrent use: the global
// timeline is single-threaded by design, which is what makes it
// deterministic. (Shard lanes, when configured, run concurrently — but only
// inside Run's window protocol, never against caller goroutines.)
type Engine struct {
	now     Time
	q       eventQueue // the global timeline
	running bool

	// shards, when non-nil, switches Run to the conservative windowed
	// scheduler over the configured lanes (see shard.go). Global events keep
	// their exact serial semantics either way.
	shards *shardSet

	// Cooperative cancellation: Run polls abortCheck every abortEvery events
	// and stops early (recording abortErr) when it returns non-nil. The check
	// runs between events, never inside one, so a fired abort cannot perturb
	// event order — the events that did execute are exactly the prefix an
	// uninterrupted run would have executed.
	abortCheck func() error
	abortEvery int
	abortErr   error

	// Occupancy accounting (see OccupancyStats): events executed on shard
	// lanes vs. the global timeline, and parallel windows opened. One counter
	// bump per event is invisible next to the dispatch itself, and it is what
	// lets the lane-affinity migration assert it hasn't silently regressed.
	laneExec   uint64
	globalExec uint64
	windows    uint64

	// Causal-key state for sharded runs (see Event.cell). curCell is the key
	// of the global event currently executing and inGlobal is true while one
	// runs: an escaped lane event's reaction executes on the global
	// timeline, but causally it belongs to the lane chain that posted it —
	// in a serial run the reaction code runs inline inside (or is scheduled
	// by) the emitting event — so work it schedules must be parented under
	// the escaping chain, not start a fresh root. callCtr numbers the
	// executing event's insertions; rootCtr numbers setup-context roots.
	// Only coordinator context touches these — single-threaded and
	// deterministic — so key assignment is identical at any shard count.
	curCell  *keyCell
	callCtr  uint64
	rootCtr  uint64
	inGlobal bool
}

// childCellGlobal is the causal key for work scheduled from coordinator
// context (see Event.cell): a child of the currently executing global event
// when there is one, otherwise — setup code between runs — a fresh root
// ordered by the deterministic root counter.
func (e *Engine) childCellGlobal() *keyCell {
	if e.inGlobal {
		e.callCtr++
		return &keyCell{parent: e.curCell, at: e.now, idx: e.callCtr}
	}
	e.rootCtr++
	return &keyCell{at: e.now, idx: e.rootCtr}
}

// DefaultAbortInterval is how many events Run executes between abort-check
// polls when SetAbortCheck is given a non-positive interval. Small enough
// that a cancelled run stops within microseconds of real time, large enough
// that the poll is invisible next to the event dispatch itself.
const DefaultAbortInterval = 256

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a device-model bug, and silently clamping would
// mask it.
func (e *Engine) At(t Time, fn func()) EventRef {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ref := e.q.schedule(t, fn)
	if e.shards != nil {
		// Global events carry causal keys too: their callbacks may schedule
		// lane work, and that work's merge order must reflect this event's
		// own position in the serial insertion order.
		ref.ev.cell = e.childCellGlobal()
	}
	return ref
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d Duration, fn func()) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event. Cancelling a zero or stale ref — one whose
// event already fired or was already cancelled — is a no-op, which lets
// device models cancel their provisional completion events unconditionally.
// Refs from shard lanes are routed to their owning lane's queue, so a lane
// callback may cancel its own lane's events through either handle.
func (e *Engine) Cancel(r EventRef) {
	if !r.Scheduled() {
		return
	}
	r.ev.owner.remove(r)
}

// Len reports the number of pending events, shard lanes included. Not safe
// to call from inside a lane callback while a window executes.
func (e *Engine) Len() int {
	n := e.q.len()
	if e.shards != nil {
		for _, ln := range e.shards.lanes {
			n += ln.q.len()
		}
	}
	return n
}

// Step executes the single earliest pending global event and returns true,
// or returns false if none remain. Shard lanes are advanced only by Run;
// Step is the serial-timeline primitive benchmarks and harnesses drive.
func (e *Engine) Step() bool {
	ev := e.q.pop()
	if ev == nil {
		return false
	}
	e.now = ev.at
	fn := ev.fn
	// Recycle before running the callback: the callback frequently schedules
	// the device's next completion, which can then reuse this struct.
	e.q.recycle(ev)
	e.globalExec++
	fn()
	return true
}

// SetAbortCheck installs (or, with a nil check, removes) a cooperative
// cancellation hook: while Run drains the queue it calls check every `every`
// events (DefaultAbortInterval when every <= 0) and stops early when check
// returns a non-nil error, which is then available from AbortErr. The check
// runs between events — never mid-callback — so the executed prefix is
// byte-identical to the same prefix of an uninterrupted run, and a run that
// is never aborted is unaffected entirely. The polling itself allocates
// nothing; the check function should not either (a context poll or a clock
// comparison is the intended shape).
func (e *Engine) SetAbortCheck(every int, check func() error) {
	if every <= 0 {
		every = DefaultAbortInterval
	}
	e.abortCheck = check
	e.abortEvery = every
}

// AbortErr reports the error that stopped the last Run early, or nil if no
// abort has fired. While AbortErr is non-nil, Run returns immediately;
// ClearAbort re-arms the engine.
func (e *Engine) AbortErr() error { return e.abortErr }

// ClearAbort resets a fired abort so the engine can be driven again. The
// pending queue is untouched: a cleared engine resumes exactly where the
// abort paused it, which is what makes an aborted simulation resumable (and
// testable — resuming must reproduce the uninterrupted event sequence).
func (e *Engine) ClearAbort() { e.abortErr = nil }

// Run executes events until none remain, or — when an abort check is
// installed — until the check fails, leaving the remaining events pending
// and the reason on AbortErr. With shard lanes configured the windowed
// scheduler takes over (see shard.go); its global-event semantics, abort
// cadence included, are identical to the serial loop below.
func (e *Engine) Run() {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	if e.shards != nil {
		e.runSharded()
		return
	}
	if e.abortCheck == nil {
		for e.Step() {
		}
		return
	}
	if e.abortErr != nil {
		return
	}
	// Check once before the first event so an already-fired source (a
	// pre-cancelled context, an expired deadline) aborts a run of any size.
	if err := e.abortCheck(); err != nil {
		e.abortErr = err
		return
	}
	budget := e.abortEvery
	for e.Step() {
		budget--
		if budget <= 0 {
			if err := e.abortCheck(); err != nil {
				e.abortErr = err
				return
			}
			budget = e.abortEvery
		}
	}
}

// RunUntil executes global events with time ≤ t, then advances the clock to
// t. Events scheduled later than t remain pending. Shard lanes are not
// advanced — RunUntil is a serial-timeline harness primitive.
func (e *Engine) RunUntil(t Time) {
	for e.q.peek() <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}
