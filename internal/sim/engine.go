// Package sim provides a deterministic discrete-event simulation engine.
//
// All performance experiments in this repository run in virtual time: device
// models (CPU, disk, network) schedule completion events on an Engine, and
// the Engine advances a virtual clock from event to event. Determinism is
// guaranteed by breaking ties on (time, sequence number), so a given workload
// and cluster configuration always produces bit-identical results.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since the start of the
// simulation. float64 seconds keeps device-model arithmetic (rates, shares)
// simple; nanosecond-scale rounding error is irrelevant at the tens-of-seconds
// scale the experiments measure.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = Time

// Forever is a sentinel time later than any event the engine will execute.
const Forever Time = math.MaxFloat64

// Event is a scheduled callback. It is returned by At/After so callers can
// cancel it before it fires.
type Event struct {
	at    Time
	seq   uint64
	index int // heap index, -1 once removed
	fn    func()
}

// Time reports when the event is (or was) scheduled to fire.
func (e *Event) Time() Time { return e.at }

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine. Engines are not safe for concurrent use: the simulation
// is single-threaded by design, which is what makes it deterministic.
type Engine struct {
	now     Time
	seq     uint64
	pending eventHeap
	running bool
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a device-model bug, and silently clamping would
// mask it.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.pending, ev)
	return ev
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event. Cancelling an event that already fired (or
// was already cancelled) is a no-op, which lets device models cancel their
// provisional completion events unconditionally.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.pending, ev.index)
	ev.index = -1
}

// Len reports the number of pending events.
func (e *Engine) Len() int { return len(e.pending) }

// Step executes the single earliest pending event and returns true, or
// returns false if no events remain.
func (e *Engine) Step() bool {
	if len(e.pending) == 0 {
		return false
	}
	ev := heap.Pop(&e.pending).(*Event)
	ev.index = -1
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.Step() {
	}
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
// Events scheduled later than t remain pending.
func (e *Engine) RunUntil(t Time) {
	for len(e.pending) > 0 && e.pending[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// eventHeap orders events by (time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
