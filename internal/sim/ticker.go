package sim

import "fmt"

// Ticker is a recurring event: fn fires every interval of virtual time for as
// long as the engine has other work pending. A naive self-rescheduling event
// would keep Run from ever draining — the engine only stops when the pending
// queue empties — so the ticker lets the queue decide its lifetime: after each
// fire it reschedules only if other events remain. The fire where the engine
// has drained is the ticker's last (fn can detect it via Engine.Len() == 0),
// and Kick re-arms an idle ticker when new work is bound later.
//
// Because ticks are ordinary engine events they interleave with device events
// deterministically under the (time, seq) tie-break, and a read-only fn
// (sampling, telemetry) leaves every other event's relative order — and thus
// the simulation's outcome — unchanged.
type Ticker struct {
	eng      *Engine
	interval Duration
	fn       func()
	ref      EventRef
	stopped  bool
}

// Every schedules fn to fire every interval of virtual time, first at
// now+interval. A non-positive interval panics: it would busy-loop the clock.
func (e *Engine) Every(interval Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: ticker interval %v must be positive", interval))
	}
	t := &Ticker{eng: e, interval: interval, fn: fn}
	t.ref = e.After(interval, t.tick)
	return t
}

func (t *Ticker) tick() {
	t.fn()
	// This tick's event has already been popped, so Len() == 0 means only the
	// ticker would remain in the queue: rescheduling would spin Run forever.
	if t.stopped || t.eng.Len() == 0 {
		t.ref = EventRef{}
		return
	}
	t.ref = t.eng.After(t.interval, t.tick)
}

// Stop cancels the ticker permanently; Kick on a stopped ticker is a no-op.
func (t *Ticker) Stop() {
	t.stopped = true
	t.eng.Cancel(t.ref)
	t.ref = EventRef{}
}

// Active reports whether a next tick is scheduled.
func (t *Ticker) Active() bool { return t.ref.Scheduled() }

// Kick re-arms a ticker that went idle when the engine drained — the pattern
// for a long-lived session (monospark.Context) that runs several actions on
// one engine, each binding fresh work. No-op if stopped or already scheduled.
func (t *Ticker) Kick() {
	if t.stopped || t.ref.Scheduled() {
		return
	}
	t.ref = t.eng.After(t.interval, t.tick)
}

// Interval returns the tick period.
func (t *Ticker) Interval() Duration { return t.interval }
