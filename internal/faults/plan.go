// Package faults is the deterministic fault-injection subsystem: a Plan of
// timed fault events — machine crashes and recoveries, device degradation,
// transient I/O error and flaky-fetch windows, straggler slowdowns, task
// kills — injected into the simulated cluster and driver at exact virtual
// times.
//
// Everything is driven by the simulation clock and, where randomness is
// wanted, by a seeded PRNG consulted in deterministic order: the simulation
// is single-threaded, so one seed reproduces a bit-identical run, which is
// what makes chaos testing assertable (internal/faults's chaos harness runs
// every seed twice and requires identical outcomes).
//
// The paper's monotasks architecture (§3) changes how work is executed, not
// how it is recovered; this package exercises the recovery half — the
// driver-side retry budgets, machine exclusion, and parent-stage
// resubmission of internal/jobsched — under reproducible adversity.
package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/sim"
)

// Kind enumerates fault event types.
type Kind int

const (
	// MachineCrash fail-stops a machine (jobsched.Driver.FailMachine):
	// in-flight attempts are discarded, its shuffle outputs are invalidated,
	// and no new tasks are assigned.
	MachineCrash Kind = iota
	// MachineRecover rejoins a crashed machine
	// (jobsched.Driver.RecoverMachine); its DFS replicas become readable
	// again and its surviving capacity re-registers.
	MachineRecover
	// MachineSlowdown multiplies the speed of every device on a machine
	// (CPU, disks, NIC) by Factor — the classic straggler. Duration > 0
	// restores full speed after that span.
	MachineSlowdown
	// DiskDegrade multiplies only the machine's disk bandwidth by Factor
	// (a failing spindle). Duration > 0 restores it.
	DiskDegrade
	// NICDegrade multiplies only the machine's link bandwidth by Factor
	// (a renegotiated 10→1 GbE link). Duration > 0 restores it.
	NICDegrade
	// DiskErrorWindow opens a window [At, At+Duration) in which each task
	// attempt on Machine that touches local disk fails with probability
	// Prob (a transient I/O error). Duration <= 0 leaves it open forever.
	DiskErrorWindow
	// FlakyFetchWindow opens a window in which each attempt on Machine with
	// remote input (shuffle fetches or a non-local block read) fails with
	// probability Prob — a flaky shuffle flow. Duration <= 0 is open-ended.
	FlakyFetchWindow
	// TaskKill kills up to Count attempts running on Machine at At
	// (jobsched.Driver.FailRunningTasks) — a task JVM OOM or a preempting
	// cluster manager.
	TaskKill
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case MachineCrash:
		return "machine-crash"
	case MachineRecover:
		return "machine-recover"
	case MachineSlowdown:
		return "machine-slowdown"
	case DiskDegrade:
		return "disk-degrade"
	case NICDegrade:
		return "nic-degrade"
	case DiskErrorWindow:
		return "disk-error-window"
	case FlakyFetchWindow:
		return "flaky-fetch-window"
	case TaskKill:
		return "task-kill"
	default:
		return fmt.Sprintf("fault-kind(%d)", int(k))
	}
}

// Event is one scheduled fault.
type Event struct {
	At      sim.Time
	Kind    Kind
	Machine int
	// Factor is the speed multiplier for the degradation kinds (0 < Factor).
	Factor float64
	// Duration bounds degradation spans and probability windows; zero or
	// negative means "until the end of the run".
	Duration sim.Duration
	// Prob is the per-attempt failure probability inside a window, in [0,1].
	Prob float64
	// Count is how many attempts a TaskKill kills.
	Count int
	// Reason labels injected failures in task metrics and the fault log.
	Reason string
}

// Plan is a reproducible fault schedule: explicit events plus the seed that
// drives per-attempt coin flips inside probability windows.
type Plan struct {
	Seed   int64
	Events []Event
}

// Validate reports structural errors against a cluster of n machines.
func (p *Plan) Validate(n int) error {
	for i, e := range p.Events {
		if e.At < 0 {
			return fmt.Errorf("faults: event %d (%v) at negative time %v", i, e.Kind, e.At)
		}
		if e.Machine < 0 || e.Machine >= n {
			return fmt.Errorf("faults: event %d (%v) targets machine %d of %d", i, e.Kind, e.Machine, n)
		}
		switch e.Kind {
		case MachineSlowdown, DiskDegrade, NICDegrade:
			if e.Factor <= 0 {
				return fmt.Errorf("faults: event %d (%v) needs a positive Factor, got %v", i, e.Kind, e.Factor)
			}
		case DiskErrorWindow, FlakyFetchWindow:
			if e.Prob < 0 || e.Prob > 1 {
				return fmt.Errorf("faults: event %d (%v) probability %v outside [0,1]", i, e.Kind, e.Prob)
			}
		case TaskKill:
			if e.Count <= 0 {
				return fmt.Errorf("faults: event %d (task-kill) needs a positive Count, got %d", i, e.Count)
			}
		}
	}
	return nil
}

// sorted returns the events ordered by time (stable, so same-time events
// keep plan order — which keeps injection deterministic).
func (p *Plan) sorted() []Event {
	evs := make([]Event, len(p.Events))
	copy(evs, p.Events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}

// PlanConfig sizes RandomPlan. Zero counts mean "none of that kind"; the
// zero value therefore produces an empty (but still valid) plan.
type PlanConfig struct {
	// Machines is the cluster size faults are drawn over. Required.
	Machines int
	// Horizon is the virtual-time span faults land in. Default 120 s.
	Horizon sim.Duration
	// Crashes is how many machines crash (each on a distinct machine, at
	// most Machines-1 so the cluster never fully dies). Each crash recovers
	// later with probability RecoverProb.
	Crashes int
	// RecoverProb is the chance a crashed machine rejoins within the
	// horizon. Default 0.75.
	RecoverProb float64
	// Stragglers is how many whole-machine slowdowns occur (factor drawn
	// from [0.2, 0.6), restored before the horizon ends).
	Stragglers int
	// DiskDegrades and NICDegrades count single-device degradations
	// (factor in [0.1, 0.5), bounded duration).
	DiskDegrades int
	NICDegrades  int
	// DiskErrorWindows and FlakyFetchWindows count transient-failure
	// windows (probability in [0.2, 0.7), bounded duration).
	DiskErrorWindows  int
	FlakyFetchWindows int
	// TaskKills counts point kills of 1–3 running attempts.
	TaskKills int
}

func (c PlanConfig) withDefaults() PlanConfig {
	if c.Horizon <= 0 {
		c.Horizon = 120
	}
	if c.RecoverProb <= 0 {
		c.RecoverProb = 0.75
	}
	return c
}

// RandomPlan draws a Plan from cfg using the given seed. The same (seed,
// cfg) always yields the same plan; together with the injector's seeded
// coin flips that makes a whole chaos run reproducible.
func RandomPlan(seed int64, cfg PlanConfig) (Plan, error) {
	if cfg.Machines <= 0 {
		return Plan{}, fmt.Errorf("faults: RandomPlan needs Machines > 0, got %d", cfg.Machines)
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	p := Plan{Seed: seed}
	h := float64(cfg.Horizon)

	// Crashes land on distinct machines so a small cluster can survive
	// (keep at least one machine standing).
	crashes := cfg.Crashes
	if crashes > cfg.Machines-1 {
		crashes = cfg.Machines - 1
	}
	perm := rng.Perm(cfg.Machines)
	for i := 0; i < crashes; i++ {
		m := perm[i]
		at := sim.Time((0.05 + 0.55*rng.Float64()) * h)
		p.Events = append(p.Events, Event{At: at, Kind: MachineCrash, Machine: m})
		if rng.Float64() < cfg.RecoverProb {
			rec := at + sim.Duration((0.10+0.25*rng.Float64())*h)
			p.Events = append(p.Events, Event{At: rec, Kind: MachineRecover, Machine: m})
		}
	}
	for i := 0; i < cfg.Stragglers; i++ {
		p.Events = append(p.Events, Event{
			At:       sim.Time((0.05 + 0.6*rng.Float64()) * h),
			Kind:     MachineSlowdown,
			Machine:  rng.Intn(cfg.Machines),
			Factor:   0.2 + 0.4*rng.Float64(),
			Duration: sim.Duration((0.1 + 0.3*rng.Float64()) * h),
		})
	}
	for i := 0; i < cfg.DiskDegrades; i++ {
		p.Events = append(p.Events, Event{
			At:       sim.Time((0.05 + 0.6*rng.Float64()) * h),
			Kind:     DiskDegrade,
			Machine:  rng.Intn(cfg.Machines),
			Factor:   0.1 + 0.4*rng.Float64(),
			Duration: sim.Duration((0.1 + 0.3*rng.Float64()) * h),
		})
	}
	for i := 0; i < cfg.NICDegrades; i++ {
		p.Events = append(p.Events, Event{
			At:       sim.Time((0.05 + 0.6*rng.Float64()) * h),
			Kind:     NICDegrade,
			Machine:  rng.Intn(cfg.Machines),
			Factor:   0.1 + 0.4*rng.Float64(),
			Duration: sim.Duration((0.1 + 0.3*rng.Float64()) * h),
		})
	}
	for i := 0; i < cfg.DiskErrorWindows; i++ {
		p.Events = append(p.Events, Event{
			At:       sim.Time((0.05 + 0.6*rng.Float64()) * h),
			Kind:     DiskErrorWindow,
			Machine:  rng.Intn(cfg.Machines),
			Prob:     0.2 + 0.5*rng.Float64(),
			Duration: sim.Duration((0.05 + 0.2*rng.Float64()) * h),
			Reason:   "injected transient disk I/O error",
		})
	}
	for i := 0; i < cfg.FlakyFetchWindows; i++ {
		p.Events = append(p.Events, Event{
			At:       sim.Time((0.05 + 0.6*rng.Float64()) * h),
			Kind:     FlakyFetchWindow,
			Machine:  rng.Intn(cfg.Machines),
			Prob:     0.2 + 0.5*rng.Float64(),
			Duration: sim.Duration((0.05 + 0.2*rng.Float64()) * h),
			Reason:   "injected flaky shuffle fetch",
		})
	}
	for i := 0; i < cfg.TaskKills; i++ {
		p.Events = append(p.Events, Event{
			At:      sim.Time((0.05 + 0.7*rng.Float64()) * h),
			Kind:    TaskKill,
			Machine: rng.Intn(cfg.Machines),
			Count:   1 + rng.Intn(3),
			Reason:  "injected task kill",
		})
	}
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At })
	return p, nil
}
