package faults

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/jobsched"
	"repro/internal/sim"
	"repro/internal/task"
)

// Record is one injected fault as it happened, for timelines and traces.
type Record struct {
	At      sim.Time
	Kind    Kind
	Machine int
	Detail  string
}

// String renders the record as a one-line trace entry.
func (r Record) String() string {
	return fmt.Sprintf("t=%.3f %v machine=%d %s", float64(r.At), r.Kind, r.Machine, r.Detail)
}

// Injector executes a Plan against a simulated cluster and driver. It is
// also both executors' task.FaultInjector: at attempt launch it applies any
// active probability window with a coin flip from its seeded PRNG.
//
// Lifecycle: NewInjector at cluster construction, Install once to schedule
// the plan's events on the engine (the engine must still be at time zero),
// then Bind each driver before it runs — monospark builds one driver per
// job, so Bind also replays the current crash state into the fresh driver.
type Injector struct {
	c         *cluster.Cluster
	plan      Plan
	events    []Event
	rng       *rand.Rand
	driver    *jobsched.Driver
	installed bool
	crashed   []bool
	windows   []probWindow
	log       []Record
}

// probWindow is an active (or future) DiskErrorWindow / FlakyFetchWindow.
type probWindow struct {
	kind     Kind
	machine  int
	from, to sim.Time
	prob     float64
	reason   string
}

// NewInjector validates plan against c and prepares an injector. The
// injection PRNG is seeded from Plan.Seed but independent of RandomPlan's
// stream, so explicit and random plans inject identically.
func NewInjector(c *cluster.Cluster, plan Plan) (*Injector, error) {
	if err := plan.Validate(c.Size()); err != nil {
		return nil, err
	}
	in := &Injector{
		c:       c,
		plan:    plan,
		events:  plan.sorted(),
		rng:     rand.New(rand.NewSource(plan.Seed ^ 0x5eed_fa17_ca5e)),
		crashed: make([]bool, c.Size()),
	}
	for _, e := range in.events {
		if e.Kind != DiskErrorWindow && e.Kind != FlakyFetchWindow {
			continue
		}
		to := sim.Forever
		if e.Duration > 0 {
			to = e.At + e.Duration
		}
		in.windows = append(in.windows, probWindow{
			kind: e.Kind, machine: e.Machine, from: e.At, to: to, prob: e.Prob, reason: e.Reason,
		})
	}
	return in, nil
}

// Plan returns the plan the injector executes.
func (in *Injector) Plan() Plan { return in.plan }

// Install schedules every plan event on the cluster engine. Call it once,
// before the engine has advanced (Engine.At refuses past times). Idempotent.
func (in *Injector) Install() {
	if in.installed {
		return
	}
	in.installed = true
	for _, e := range in.events {
		e := e
		in.c.Engine.At(e.At, func() { in.apply(e) })
		if e.Duration > 0 {
			switch e.Kind {
			case MachineSlowdown, DiskDegrade, NICDegrade:
				in.c.Engine.At(e.At+e.Duration, func() { in.restore(e) })
			}
		}
	}
}

// Bind points the injector at the driver scheduling the current job(s) and
// replays the present crash state into it, since a driver built mid-chaos
// (monospark makes one per job) must not schedule onto machines that are
// currently down.
func (in *Injector) Bind(d *jobsched.Driver) {
	in.driver = d
	for m, down := range in.crashed {
		if down {
			_ = d.FailMachine(m)
		}
	}
}

// Log returns the faults injected so far, in injection order.
func (in *Injector) Log() []Record {
	out := make([]Record, len(in.log))
	copy(out, in.log)
	return out
}

func (in *Injector) record(at sim.Time, k Kind, m int, detail string) {
	in.log = append(in.log, Record{At: at, Kind: k, Machine: m, Detail: detail})
}

// apply executes one plan event at its scheduled time.
func (in *Injector) apply(e Event) {
	now := in.c.Engine.Now()
	switch e.Kind {
	case MachineCrash:
		if in.crashed[e.Machine] {
			return
		}
		in.crashed[e.Machine] = true
		if in.driver != nil {
			_ = in.driver.FailMachine(e.Machine)
		}
		in.record(now, e.Kind, e.Machine, "fail-stop")
	case MachineRecover:
		if !in.crashed[e.Machine] {
			return
		}
		in.crashed[e.Machine] = false
		if in.driver != nil {
			_ = in.driver.RecoverMachine(e.Machine)
		}
		in.record(now, e.Kind, e.Machine, "rejoined cluster")
	case MachineSlowdown:
		in.c.SetMachineSpeed(e.Machine, e.Factor)
		in.record(now, e.Kind, e.Machine, fmt.Sprintf("all devices at %.2fx", e.Factor))
	case DiskDegrade:
		for _, d := range in.c.Machines[e.Machine].Disks {
			d.SetSpeedFactor(e.Factor)
		}
		in.record(now, e.Kind, e.Machine, fmt.Sprintf("disks at %.2fx", e.Factor))
	case NICDegrade:
		in.c.Fabric.SetLinkSpeed(e.Machine, e.Factor)
		in.record(now, e.Kind, e.Machine, fmt.Sprintf("link at %.2fx", e.Factor))
	case DiskErrorWindow, FlakyFetchWindow:
		// The window itself is consulted per-attempt in AttemptFault; the
		// event only marks its opening in the log.
		in.record(now, e.Kind, e.Machine, fmt.Sprintf("window open for %.1fs, p=%.2f", float64(e.Duration), e.Prob))
	case TaskKill:
		if in.driver == nil {
			return
		}
		n := in.driver.FailRunningTasks(e.Machine, e.Count, e.Reason)
		in.record(now, e.Kind, e.Machine, fmt.Sprintf("killed %d of %d attempts", n, e.Count))
	}
}

// restore undoes a bounded degradation.
func (in *Injector) restore(e Event) {
	now := in.c.Engine.Now()
	switch e.Kind {
	case MachineSlowdown:
		in.c.SetMachineSpeed(e.Machine, 1)
		in.record(now, e.Kind, e.Machine, "restored to full speed")
	case DiskDegrade:
		for _, d := range in.c.Machines[e.Machine].Disks {
			d.SetSpeedFactor(1)
		}
		in.record(now, e.Kind, e.Machine, "disks restored")
	case NICDegrade:
		in.c.Fabric.SetLinkSpeed(e.Machine, 1)
		in.record(now, e.Kind, e.Machine, "link restored")
	}
}

// touchesDisk reports whether t's attempt uses a local disk (so a transient
// disk error can plausibly kill it).
func touchesDisk(t *task.Task) bool {
	if t.DiskReadBytes > 0 {
		return true
	}
	if t.Stage.ShuffleOutBytes > 0 && !t.Stage.ShuffleInMemory {
		return true
	}
	if t.Stage.OutputBytes > 0 && !t.Stage.OutputToMem {
		return true
	}
	return false
}

// AttemptFault implements task.FaultInjector: called by the executor at
// each attempt launch, it flips a seeded coin for every window active at
// `now` on the attempt's machine that matches the attempt's I/O shape. A
// failed attempt burns a short random span of virtual time in its slot
// before reporting failure, like a real task dying partway.
func (in *Injector) AttemptFault(t *task.Task, now sim.Time) (string, sim.Duration, bool) {
	for _, w := range in.windows {
		if w.machine != t.Machine || now < w.from || now >= w.to {
			continue
		}
		switch w.kind {
		case DiskErrorWindow:
			if !touchesDisk(t) {
				continue
			}
		case FlakyFetchWindow:
			if len(t.Fetches) == 0 && t.RemoteRead == nil {
				continue
			}
		}
		if in.rng.Float64() >= w.prob {
			continue
		}
		after := sim.Duration(0.05 + 0.45*in.rng.Float64())
		reason := w.reason
		if reason == "" {
			reason = w.kind.String()
		}
		in.record(now, w.kind, t.Machine, fmt.Sprintf("failed attempt %d of stage %d: %s", t.Index, t.Stage.ID, reason))
		return reason, after, true
	}
	return "", 0, false
}
