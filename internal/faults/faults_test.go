package faults

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/task"
)

func testChaosCluster(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(n, cluster.M2_4XLarge())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func fullPlanConfig(machines int) PlanConfig {
	return PlanConfig{
		Machines: machines, Horizon: 60,
		Crashes: 2, Stragglers: 2, DiskDegrades: 1, NICDegrades: 1,
		DiskErrorWindows: 2, FlakyFetchWindows: 2, TaskKills: 2,
	}
}

func TestRandomPlanDeterministicPerSeed(t *testing.T) {
	cfg := fullPlanConfig(4)
	a, err := RandomPlan(42, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomPlan(42, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	c, err := RandomPlan(43, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical plans")
	}
	if len(a.Events) == 0 {
		t.Fatal("full config produced an empty plan")
	}
	if err := a.Validate(4); err != nil {
		t.Fatalf("generated plan fails its own validation: %v", err)
	}
}

func TestRandomPlanCapsCrashes(t *testing.T) {
	p, err := RandomPlan(1, PlanConfig{Machines: 3, Crashes: 10})
	if err != nil {
		t.Fatal(err)
	}
	crashes := map[int]bool{}
	for _, e := range p.Events {
		if e.Kind == MachineCrash {
			if crashes[e.Machine] {
				t.Fatalf("machine %d crashes twice", e.Machine)
			}
			crashes[e.Machine] = true
		}
	}
	if len(crashes) != 2 {
		t.Fatalf("%d machines crash on a 3-machine cluster, want 2 (one must survive)", len(crashes))
	}
	// Every recovery follows its machine's crash.
	for _, r := range p.Events {
		if r.Kind != MachineRecover {
			continue
		}
		if !crashes[r.Machine] {
			t.Fatalf("machine %d recovers without crashing", r.Machine)
		}
		for _, c := range p.Events {
			if c.Kind == MachineCrash && c.Machine == r.Machine && r.At <= c.At {
				t.Fatalf("machine %d recovers at %v, before its crash at %v", r.Machine, r.At, c.At)
			}
		}
	}
}

func TestRandomPlanRejectsEmptyCluster(t *testing.T) {
	if _, err := RandomPlan(1, PlanConfig{}); err == nil {
		t.Fatal("RandomPlan accepted Machines=0")
	}
}

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
		want string
	}{
		{"negative time", Event{At: -1, Kind: MachineCrash}, "negative time"},
		{"machine out of range", Event{Kind: MachineCrash, Machine: 5}, "targets machine"},
		{"non-positive factor", Event{Kind: MachineSlowdown, Factor: 0}, "positive Factor"},
		{"probability above one", Event{Kind: DiskErrorWindow, Prob: 1.5}, "outside [0,1]"},
		{"negative probability", Event{Kind: FlakyFetchWindow, Prob: -0.1}, "outside [0,1]"},
		{"zero kill count", Event{Kind: TaskKill, Count: 0}, "positive Count"},
	}
	for _, tc := range cases {
		p := Plan{Events: []Event{tc.ev}}
		err := p.Validate(2)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v does not contain %q", tc.name, err, tc.want)
		}
	}
	ok := Plan{Events: []Event{
		{At: 1, Kind: MachineCrash, Machine: 1},
		{At: 2, Kind: MachineSlowdown, Machine: 0, Factor: 0.5, Duration: 3},
		{At: 3, Kind: DiskErrorWindow, Machine: 0, Prob: 0.5, Duration: 5},
		{At: 4, Kind: TaskKill, Machine: 1, Count: 2},
	}}
	if err := ok.Validate(2); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestKindStrings(t *testing.T) {
	for k := MachineCrash; k <= TaskKill; k++ {
		if s := k.String(); strings.HasPrefix(s, "fault-kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
	if s := Kind(99).String(); s != "fault-kind(99)" {
		t.Errorf("unknown kind renders as %q", s)
	}
}

func TestAttemptFaultWindowMatching(t *testing.T) {
	c := testChaosCluster(t, 2)
	in, err := NewInjector(c, Plan{Seed: 1, Events: []Event{
		{At: 10, Kind: DiskErrorWindow, Machine: 0, Prob: 1, Duration: 10, Reason: "disk err"},
		{At: 10, Kind: FlakyFetchWindow, Machine: 1, Prob: 1, Duration: 10, Reason: "flaky fetch"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	diskTask := &task.Task{Machine: 0, Stage: &task.StageSpec{ID: 0}, DiskReadBytes: 1e6}
	cpuTask := &task.Task{Machine: 0, Stage: &task.StageSpec{ID: 0}}
	fetchTask := &task.Task{Machine: 1, Stage: &task.StageSpec{ID: 1}, Fetches: []task.Fetch{{From: 0, Bytes: 1e6}}}

	if _, _, ok := in.AttemptFault(diskTask, 5); ok {
		t.Fatal("fault before the window opened")
	}
	if _, _, ok := in.AttemptFault(diskTask, 20); ok {
		t.Fatal("fault after the window closed (bound is half-open)")
	}
	if _, _, ok := in.AttemptFault(cpuTask, 15); ok {
		t.Fatal("disk-error window hit a task with no disk I/O")
	}
	reason, after, ok := in.AttemptFault(diskTask, 15)
	if !ok || reason != "disk err" || after <= 0 {
		t.Fatalf("disk task in window: got (%q, %v, %v)", reason, after, ok)
	}
	if _, _, ok := in.AttemptFault(fetchTask, 5); ok {
		t.Fatal("fetch fault before the window opened")
	}
	reason, _, ok = in.AttemptFault(fetchTask, 15)
	if !ok || reason != "flaky fetch" {
		t.Fatalf("fetch task in window: got (%q, %v)", reason, ok)
	}
	// The wrong machine never matches.
	other := &task.Task{Machine: 1, Stage: &task.StageSpec{ID: 0}, DiskReadBytes: 1e6}
	if _, _, ok := in.AttemptFault(other, 15); ok {
		t.Fatal("disk-error window leaked onto another machine")
	}
	if len(in.Log()) != 2 {
		t.Fatalf("log has %d records, want the 2 injected failures", len(in.Log()))
	}
}

func TestAttemptFaultCoinFlipsAreSeeded(t *testing.T) {
	mk := func() *Injector {
		c := testChaosCluster(t, 1)
		in, err := NewInjector(c, Plan{Seed: 7, Events: []Event{
			{At: 0, Kind: DiskErrorWindow, Machine: 0, Prob: 0.5, Duration: 100},
		}})
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	a, b := mk(), mk()
	tk := &task.Task{Machine: 0, Stage: &task.StageSpec{ID: 0}, DiskReadBytes: 1e6}
	var hits int
	for i := 0; i < 200; i++ {
		now := sim.Time(i) * 0.25
		ra, da, oa := a.AttemptFault(tk, now)
		rb, db, ob := b.AttemptFault(tk, now)
		if ra != rb || da != db || oa != ob {
			t.Fatalf("flip %d diverged between identically seeded injectors", i)
		}
		if oa {
			hits++
		}
	}
	if hits == 0 || hits == 200 {
		t.Fatalf("p=0.5 window hit %d/200 attempts — coin not flipping", hits)
	}
}

func TestInstallExecutesPlanOnEngine(t *testing.T) {
	c := testChaosCluster(t, 2)
	in, err := NewInjector(c, Plan{Seed: 1, Events: []Event{
		{At: 1, Kind: MachineCrash, Machine: 1},
		{At: 2, Kind: MachineSlowdown, Machine: 0, Factor: 0.5, Duration: 2},
		{At: 6, Kind: MachineRecover, Machine: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	in.Install()
	in.Install() // idempotent: must not double-schedule
	c.Engine.Run()
	log := in.Log()
	if len(log) != 4 {
		t.Fatalf("log has %d records, want 4 (crash, slowdown, restore, recover):\n%v", len(log), log)
	}
	wantKinds := []Kind{MachineCrash, MachineSlowdown, MachineSlowdown, MachineRecover}
	for i, r := range log {
		if r.Kind != wantKinds[i] {
			t.Fatalf("record %d is %v, want %v", i, r.Kind, wantKinds[i])
		}
	}
	if log[2].At != 4 {
		t.Fatalf("slowdown restored at %v, want t=4", log[2].At)
	}
	if s := log[0].String(); !strings.Contains(s, "machine-crash") || !strings.Contains(s, "machine=1") {
		t.Fatalf("record renders as %q", s)
	}
}
