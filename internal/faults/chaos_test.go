// Chaos harness: real monospark jobs on real data under seeded random fault
// plans. For every seed the job must either complete with correct, fully
// sorted output or abort with a descriptive error — never hang or panic —
// and running the same seed twice must produce a bit-identical outcome.
package faults_test

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/monospark"
)

const (
	chaosSeeds   = 24 // distinct fault plans per executor mode
	chaosRecords = 6000
)

// chaosInput is a deterministic shuffled keyspace whose sort is verifiable:
// sorted order is exactly ["00000000", "00000001", ...].
func chaosInput() []any {
	rng := rand.New(rand.NewSource(7))
	recs := make([]any, chaosRecords)
	for i, p := range rng.Perm(chaosRecords) {
		recs[i] = monospark.Pair{Key: fmt.Sprintf("%08d", p), Value: 1}
	}
	return recs
}

// outcome folds everything a run exposes into a comparable value.
type outcome struct {
	completed bool
	errStr    string
	faults    int
	hash      uint64
}

// chaosRun executes one seeded chaos run and folds the result. It fails the
// test on contract violations (wrong output, undescriptive abort) but treats
// a clean abort as a legitimate outcome.
func chaosRun(t *testing.T, seed int64, mode monospark.Mode) outcome {
	t.Helper()
	ctx, err := monospark.New(monospark.Config{
		Machines: 4,
		Mode:     mode,
		// Stretch per-record compute so the job spans tens of virtual seconds
		// and overlaps the fault horizon; virtual time costs no wall time.
		CPUCostPerRecord: 0.1,
		Chaos: &monospark.ChaosConfig{
			Seed: seed,
			Random: faults.PlanConfig{
				Horizon:           40,
				Crashes:           1,
				Stragglers:        1,
				DiskErrorWindows:  1,
				FlakyFetchWindows: 1,
				TaskKills:         1,
			},
			// Above any healthy attempt's runtime: the timeout bounds the
			// whole attempt, not just its fetch phase.
			FetchRetryTimeout: 60,
		},
	})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	ds, err := ctx.Parallelize(chaosInput(), 32)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	recs, _, err := ds.SortByKey().Collect()

	out := outcome{faults: len(ctx.FaultEvents())}
	h := fnv.New64a()
	for _, f := range ctx.FaultEvents() {
		fmt.Fprintf(h, "%v|", f)
	}
	if err != nil {
		// Abort path: the error must describe what went wrong.
		msg := err.Error()
		if !strings.Contains(msg, "jobsched") && !strings.Contains(msg, "stage") {
			t.Errorf("seed %d: abort error %q names neither the scheduler nor a stage", seed, msg)
		}
		out.errStr = msg
		fmt.Fprintf(h, "err:%s", msg)
		out.hash = h.Sum64()
		return out
	}
	out.completed = true
	if len(recs) != chaosRecords {
		t.Errorf("seed %d: %d output records, want %d", seed, len(recs), chaosRecords)
	}
	for i, r := range recs {
		p, ok := r.(monospark.Pair)
		if !ok || p.Key != fmt.Sprintf("%08d", i) {
			t.Errorf("seed %d: output record %d is %v, want key %08d", seed, i, r, i)
			break
		}
		fmt.Fprintf(h, "%v|", r)
	}
	out.hash = h.Sum64()
	return out
}

func TestChaosSeedsCompleteOrAbortReproducibly(t *testing.T) {
	for _, mode := range []monospark.Mode{monospark.Monotasks, monospark.Spark} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			completed := 0
			for seed := int64(1); seed <= chaosSeeds; seed++ {
				first := chaosRun(t, seed, mode)
				second := chaosRun(t, seed, mode)
				if first != second {
					t.Errorf("seed %d: two runs diverged:\n first: %+v\nsecond: %+v", seed, first, second)
				}
				if first.faults == 0 {
					t.Errorf("seed %d: no faults were injected during the run", seed)
				}
				if first.completed {
					completed++
				}
			}
			// The plan mix is survivable (one crash on four machines, transient
			// windows); most seeds should complete, and at least one must, or
			// the harness is only exercising the abort path.
			if completed == 0 {
				t.Fatalf("0/%d seeds completed — fault mix too harsh to test recovery", chaosSeeds)
			}
			t.Logf("%s: %d/%d seeds completed (rest aborted cleanly)", mode, completed, chaosSeeds)
		})
	}
}

func TestChaosFaultsAppearInChromeTrace(t *testing.T) {
	ctx, err := monospark.New(monospark.Config{
		Machines:         4,
		CPUCostPerRecord: 0.1,
		Chaos: &monospark.ChaosConfig{
			Seed: 3,
			Random: faults.PlanConfig{
				Horizon: 40, Crashes: 1, Stragglers: 1,
				DiskErrorWindows: 1, FlakyFetchWindows: 1, TaskKills: 1,
			},
			FetchRetryTimeout: 60,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := ctx.Parallelize(chaosInput(), 32)
	if err != nil {
		t.Fatal(err)
	}
	_, jr, err := ds.SortByKey().Collect()
	if err != nil {
		t.Skipf("seed 3 aborted (%v); trace export needs a completed run", err)
	}
	if len(jr.FaultEvents()) == 0 {
		t.Fatal("run recorded no fault events to export")
	}
	var b strings.Builder
	if err := jr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"ph":"i"`) {
		t.Fatal("trace has no instant events for the injected faults")
	}
	for _, needle := range []string{"machine-crash", "fault"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("trace does not mention %q", needle)
		}
	}
}
