package workloads

import (
	"fmt"

	"repro/internal/task"
)

// WordCount is the running example of Figs. 1 and 4: read text from HDFS,
// split into words, count occurrences. It is the canonical map/reduce shape:
// a map stage reading blocks and writing shuffle data, and a reduce stage
// combining counts and writing results.
type WordCount struct {
	Name       string
	TotalBytes int64
	// ShuffleFraction is shuffle volume relative to input; word-count
	// pre-aggregation (map-side combining) shrinks it. Default 0.3.
	ShuffleFraction float64
	// OutputFraction is result volume relative to input; default 0.05.
	OutputFraction float64
	ReduceTasks    int
}

// Build materializes the word-count job in env.
func (w WordCount) Build(env *Env) (*task.JobSpec, error) {
	if w.TotalBytes <= 0 {
		return nil, fmt.Errorf("workloads: word count needs input bytes, got %d", w.TotalBytes)
	}
	name := w.Name
	if name == "" {
		name = "wordcount"
	}
	sf := w.ShuffleFraction
	if sf <= 0 {
		sf = 0.3
	}
	of := w.OutputFraction
	if of <= 0 {
		of = 0.05
	}
	blocks := int(w.TotalBytes / (128 << 20))
	if blocks < env.Cluster.Size() {
		blocks = env.Cluster.Size()
	}
	f, err := env.createInput("/wordcount/"+name, w.TotalBytes, blocks)
	if err != nil {
		return nil, err
	}
	perMap := w.TotalBytes / int64(blocks)
	reduces := w.ReduceTasks
	if reduces <= 0 {
		reduces = 2 * env.Cluster.TotalCores()
	}
	shuffleTotal := int64(float64(w.TotalBytes) * sf)
	outputTotal := int64(float64(w.TotalBytes) * of)
	mapStage := &task.StageSpec{
		ID:          0,
		Name:        name + "/map",
		NumTasks:    blocks,
		InputBlocks: f.Blocks,
		DeserCPU:    DeserCPUPerByte * float64(perMap),
		// Tokenizing and emitting (word, 1) pairs is string-heavy.
		OpCPU:           30e-9 * float64(perMap),
		SerCPU:          SerCPUPerByte * float64(shuffleTotal/int64(blocks)),
		ShuffleOutBytes: shuffleTotal / int64(blocks),
	}
	reduceStage := &task.StageSpec{
		ID:          1,
		Name:        name + "/reduce",
		NumTasks:    reduces,
		ParentIDs:   []int{0},
		DeserCPU:    DeserCPUPerByte * float64(shuffleTotal/int64(reduces)),
		OpCPU:       15e-9 * float64(shuffleTotal/int64(reduces)),
		SerCPU:      SerCPUPerByte * float64(outputTotal/int64(reduces)),
		OutputBytes: outputTotal / int64(reduces),
	}
	return &task.JobSpec{Name: name, Stages: []*task.StageSpec{mapStage, reduceStage}}, nil
}
