package workloads

import (
	"fmt"

	"repro/internal/task"
)

// Sort is the paper's workhorse workload (§5.2, §6.2): sort TotalBytes of
// random key-value pairs whose values are ValuesPerKey longs. For a fixed
// total size, smaller values mean more records and therefore more CPU time,
// while the I/O volumes stay constant — the knob that sweeps the workload
// from CPU-bound to disk-bound (Fig. 11, Fig. 13, Fig. 18).
type Sort struct {
	Name         string
	TotalBytes   int64
	ValuesPerKey int
	// MapTasks and ReduceTasks default to 8 tasks per core when zero —
	// enough waves for monotask-granularity pipelining to hide each task's
	// serialized resource use (§5.3; Fig. 8 shows parity needs ≥3 waves)
	// and for run-to-completion compute monotasks to pack the cores without
	// a ragged single-task tail (§8 notes frameworks encourage many small
	// tasks for exactly this kind of reason).
	MapTasks    int
	ReduceTasks int
	// InMemoryInput stores the input deserialized in memory rather than on
	// disk (the §6.3 / Fig. 13 software change): no input disk reads and no
	// input deserialization CPU.
	InMemoryInput bool
	// InputReplication is the DFS replication factor for the input file
	// (default 1; failure experiments need ≥ 2).
	InputReplication int
}

// Build materializes the two-stage sort job in env.
func (s Sort) Build(env *Env) (*task.JobSpec, error) {
	if s.TotalBytes <= 0 || s.ValuesPerKey < 0 {
		return nil, fmt.Errorf("workloads: sort needs bytes and values, got %d/%d", s.TotalBytes, s.ValuesPerKey)
	}
	name := s.Name
	if name == "" {
		name = fmt.Sprintf("sort-%dv", s.ValuesPerKey)
	}
	maps := s.MapTasks
	if maps <= 0 {
		maps = 8 * env.Cluster.TotalCores()
	}
	reduces := s.ReduceTasks
	if reduces <= 0 {
		reduces = 8 * env.Cluster.TotalCores()
	}
	recordBytes := RecordBytes(s.ValuesPerKey)
	records := s.TotalBytes / recordBytes

	perMapBytes := s.TotalBytes / int64(maps)
	perMapRecords := records / int64(maps)
	mapStage := &task.StageSpec{
		ID:       0,
		Name:     name + "/map",
		NumTasks: maps,
		// Partitioning + run formation cost per record, (de)serialization
		// per byte.
		DeserCPU:        DeserCPUPerByte * float64(perMapBytes),
		OpCPU:           SortMapPerRecordCPU * float64(perMapRecords),
		SerCPU:          SerCPUPerByte * float64(perMapBytes),
		ShuffleOutBytes: perMapBytes, // sorted runs are the same size as input
	}
	if s.InMemoryInput {
		mapStage.InputFromMem = true
		mapStage.InputBytesPerTask = perMapBytes
		mapStage.DeserCPU = 0 // already deserialized (§6.3)
	} else {
		f, err := env.createInputReplicated("/sort/"+name, s.TotalBytes, maps, s.InputReplication)
		if err != nil {
			return nil, err
		}
		mapStage.InputBlocks = f.Blocks
	}

	perReduceBytes := s.TotalBytes / int64(reduces)
	perReduceRecords := records / int64(reduces)
	reduceStage := &task.StageSpec{
		ID:          1,
		Name:        name + "/reduce",
		NumTasks:    reduces,
		ParentIDs:   []int{0},
		DeserCPU:    DeserCPUPerByte * float64(perReduceBytes),
		OpCPU:       SortReducePerRecordCPU * float64(perReduceRecords),
		SerCPU:      SerCPUPerByte * float64(perReduceBytes),
		OutputBytes: perReduceBytes, // sorted result back to HDFS
	}
	return &task.JobSpec{Name: name, Stages: []*task.StageSpec{mapStage, reduceStage}}, nil
}
