package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
	"repro/internal/task"
)

// MultiJob generates an open-loop Poisson arrival stream of sort jobs — the
// workload a multi-tenant driver faces: jobs arrive on their own clock
// (exponential interarrival gaps from a seeded RNG, so one seed reproduces
// one stream bit-identically) regardless of whether earlier jobs finished.
// Job profiles cycle through ValuesPerKey, so the stream mixes CPU-heavy and
// I/O-heavy jobs the way Fig. 16's two-job experiment does, and pool tags
// cycle through Pools so the stream exercises several scheduling pools.
type MultiJob struct {
	Name string
	// Jobs is how many jobs the stream contains.
	Jobs int
	// MeanInterarrival is the mean gap between consecutive arrivals in
	// virtual seconds. Zero means every job arrives at t=0 (a closed batch).
	MeanInterarrival float64
	// Seed drives the interarrival draws.
	Seed int64
	// JobBytes is each job's sort input size.
	JobBytes int64
	// ValuesPerKey cycles per job (default {10, 50}: alternating CPU-heavy
	// and I/O-heavy profiles).
	ValuesPerKey []int
	// MapTasks and ReduceTasks are per-job task counts (Sort's defaults of
	// 8 per core are far too many when N jobs share the cluster).
	MapTasks    int
	ReduceTasks int
	// Pools cycles per job; empty leaves every job in the driver's default
	// pool.
	Pools []string
}

// Arrival is one job of the stream: its materialized spec, arrival time,
// and target pool.
type Arrival struct {
	Spec *task.JobSpec
	At   sim.Time
	Pool string
}

// Build materializes the stream's jobs in env (each with its own input
// file) and draws the arrival clock.
func (m MultiJob) Build(env *Env) ([]Arrival, error) {
	if m.Jobs <= 0 {
		return nil, fmt.Errorf("workloads: multijob needs jobs, got %d", m.Jobs)
	}
	name := m.Name
	if name == "" {
		name = "multijob"
	}
	values := m.ValuesPerKey
	if len(values) == 0 {
		values = []int{10, 50}
	}
	rng := rand.New(rand.NewSource(m.Seed))
	out := make([]Arrival, 0, m.Jobs)
	at := 0.0
	for i := 0; i < m.Jobs; i++ {
		vpk := values[i%len(values)]
		s := Sort{
			Name:         fmt.Sprintf("%s-j%02d-%dv", name, i, vpk),
			TotalBytes:   m.JobBytes,
			ValuesPerKey: vpk,
			MapTasks:     m.MapTasks,
			ReduceTasks:  m.ReduceTasks,
		}
		spec, err := s.Build(env)
		if err != nil {
			return nil, err
		}
		pool := ""
		if len(m.Pools) > 0 {
			pool = m.Pools[i%len(m.Pools)]
		}
		out = append(out, Arrival{Spec: spec, At: sim.Time(at), Pool: pool})
		if m.MeanInterarrival > 0 {
			at += rng.ExpFloat64() * m.MeanInterarrival
		}
	}
	return out, nil
}
