package workloads

import (
	"fmt"

	"repro/internal/task"
)

// ReadCompute is the Fig. 8 sensitivity workload: a single stage that reads
// input from disk and computes on it, swept over different task counts. With
// tasks == cores (one wave), MonoSpark serializes each task's read and
// compute with nothing to overlap them; by three waves its coarse-grained
// cross-task pipelining has caught up with Spark's fine-grained pipelining.
type ReadCompute struct {
	Name       string
	TotalBytes int64
	// NumTasks is the repartition count — the figure's x axis.
	NumTasks int
	// CPUPerByte balances compute against the disk read; default 40 ns/byte
	// matches one 100 MB/s disk read per 4 cores of compute... calibrated so
	// CPU and disk demand are equal cluster-wide on the paper's 20-machine,
	// 2-HDD, 8-core configuration.
	CPUPerByte float64
}

// Build materializes the job in env.
func (r ReadCompute) Build(env *Env) (*task.JobSpec, error) {
	if r.TotalBytes <= 0 || r.NumTasks <= 0 {
		return nil, fmt.Errorf("workloads: read-compute needs bytes and tasks, got %d/%d", r.TotalBytes, r.NumTasks)
	}
	name := r.Name
	if name == "" {
		name = fmt.Sprintf("read-compute-%d", r.NumTasks)
	}
	cpuPerByte := r.CPUPerByte
	if cpuPerByte <= 0 {
		cpuPerByte = 40e-9
	}
	f, err := env.createInput("/readcompute/"+name, r.TotalBytes, r.NumTasks)
	if err != nil {
		return nil, err
	}
	perTask := r.TotalBytes / int64(r.NumTasks)
	stage := &task.StageSpec{
		ID:          0,
		Name:        name,
		NumTasks:    r.NumTasks,
		InputBlocks: f.Blocks,
		DeserCPU:    DeserCPUPerByte * float64(perTask),
		OpCPU:       cpuPerByte * float64(perTask),
	}
	return &task.JobSpec{Name: name, Stages: []*task.StageSpec{stage}}, nil
}
