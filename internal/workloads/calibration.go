// Package workloads builds the paper's evaluation workloads as JobSpecs:
// the sort family (§5.2, §6.2–§6.4, Fig. 11/13/18), the big data benchmark
// (Fig. 5/6/9/12/14/15/17), the least-squares ML workload (Fig. 7), the
// read-then-compute job (Fig. 8), and word count (Fig. 1, examples).
//
// The paper ran on EC2 against production datasets; here each workload is a
// calibrated resource profile (bytes in/out, CPU seconds per byte and per
// record) chosen so the evaluation's qualitative structure holds: which
// resource bottlenecks each stage, and how the balance shifts across
// workload variants. Absolute runtimes are not calibration targets.
package workloads

// CPU cost constants, in core-seconds. Derivations:
//
// Spark 1.3's data plane was famously CPU-inefficient (the paper inherits
// this deliberately, §5.1): the NSDI '15 study the authors build on found
// typical per-core processing rates of only a few tens of MB/s. We model
// that as a per-byte serde cost plus a per-record handling cost:
//
//   - DeserCPUPerByte/SerCPUPerByte = 10 ns/byte each ⇒ ~100 MB/s/core for
//     pure (de)serialization, matching one 100 MB/s disk per core.
//   - SortPerRecordCPU = 3 µs/record for the map side (partitioning +
//     comparison work), 4.5 µs/record for the reduce side (merge + final
//     sort). With these, the 600 GB sort with 10-long values (88 B records)
//     is CPU-bound on an SSD cluster but disk-bound with 50-long values —
//     exactly the §6.2 spectrum Fig. 11 sweeps.
const (
	DeserCPUPerByte = 10e-9
	SerCPUPerByte   = 10e-9

	SortMapPerRecordCPU    = 3e-6
	SortReducePerRecordCPU = 4.5e-6
)

// RecordBytes returns the size of a sort record whose value holds
// valuesPerKey longs: one 8-byte key plus 8 bytes per value (§6.2).
func RecordBytes(valuesPerKey int) int64 { return 8 * int64(valuesPerKey+1) }

// Least-squares workload constants (§5.2, Fig. 7): each task multiplies a
// block of a 1M×4096 matrix using optimized native code, so per-byte CPU
// cost is far lower than the Spark data plane's — we charge pure matrix
// math at an effective 2 GFLOP/s/core (JVM→BLAS boundary included).
const (
	MLMatrixRows  = 1 << 20
	MLMatrixCols  = 4096
	MLFlopsPerSec = 4e9
)
