package workloads

import (
	"fmt"

	"repro/internal/task"
)

// LeastSquares is the machine-learning workload (§5.2, Fig. 7): a least
// squares solve by block coordinate descent — a series of distributed
// matrix multiplications over a 1M×4096 matrix. It differs from the other
// workloads in three ways the paper calls out: the CPU path is efficient
// (native BLAS, so per-byte costs are far below the Spark data plane's),
// large volumes move over the network between stages, and shuffle data
// stays in memory — the job never touches disk.
type LeastSquares struct {
	// Iterations is the number of multiply stages (block coordinate descent
	// passes). Fig. 7 compares per-stage times; default 6.
	Iterations int
	// TasksPerStage defaults to 2 tasks per core.
	TasksPerStage int
	// ColsPerBlock is the column-block width each iteration multiplies;
	// default 1024 (4096 columns over 4 passes of the inner solver).
	ColsPerBlock int
}

// Build materializes the workload for env.
func (l LeastSquares) Build(env *Env) (*task.JobSpec, error) {
	iters := l.Iterations
	if iters <= 0 {
		iters = 6
	}
	tasks := l.TasksPerStage
	if tasks <= 0 {
		tasks = 4 * env.Cluster.TotalCores()
	}
	cols := l.ColsPerBlock
	if cols <= 0 {
		cols = 1024
	}
	if cols > MLMatrixCols {
		return nil, fmt.Errorf("workloads: column block %d exceeds matrix width %d", cols, MLMatrixCols)
	}

	// Per iteration, each task multiplies its row block (rows/tasks × cols)
	// with the shared block: 2·rowsPerTask·cols² flops, and the resulting
	// partial products (rows × cols doubles) shuffle between stages.
	rowsPerTask := MLMatrixRows / tasks
	flopsPerTask := 2 * float64(rowsPerTask) * float64(cols) * float64(cols)
	cpuPerTask := flopsPerTask / MLFlopsPerSec
	shufflePerTask := int64(rowsPerTask) * int64(cols) * 8

	job := &task.JobSpec{Name: "least-squares"}
	for i := 0; i < iters; i++ {
		spec := &task.StageSpec{
			ID:       i,
			Name:     fmt.Sprintf("multiply-%d", i),
			NumTasks: tasks,
			// The matrix is cached in memory; arrays of doubles serialize
			// cheaply (§5.2), so serde CPU is negligible next to the math.
			InputFromMem:      i == 0,
			InputBytesPerTask: int64(rowsPerTask) * MLMatrixCols * 8,
			OpCPU:             cpuPerTask,
			ShuffleOutBytes:   shufflePerTask,
			ShuffleInMemory:   true,
		}
		if i > 0 {
			spec.ParentIDs = []int{i - 1}
			spec.InputFromMem = false
			spec.InputBytesPerTask = 0
		}
		job.Stages = append(job.Stages, spec)
	}
	return job, nil
}
