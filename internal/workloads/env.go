package workloads

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/dfs"
)

// Env is where a workload materializes: a virtual cluster and a fresh block
// store to lay input files into.
type Env struct {
	Cluster *cluster.Cluster
	FS      *dfs.FS
}

// NewEnv builds an Env over c with an empty DFS matching its shape.
func NewEnv(c *cluster.Cluster) (*Env, error) {
	disks := len(c.Spec().Disks)
	if disks == 0 {
		disks = 1 // diskless clusters still need a valid (unused) FS shape
	}
	fs, err := dfs.New(dfs.Config{Machines: c.Size(), DisksPerMachine: disks})
	if err != nil {
		return nil, err
	}
	return &Env{Cluster: c, FS: fs}, nil
}

// MustEnv is NewEnv for configurations that cannot fail.
func MustEnv(c *cluster.Cluster) *Env {
	e, err := NewEnv(c)
	if err != nil {
		panic(err)
	}
	return e
}

// createInput lays a file of totalBytes into the DFS as numBlocks equal
// blocks (so one map task per block has uniform input), using a dedicated
// block-store namespace per file.
func (e *Env) createInput(path string, totalBytes int64, numBlocks int) (*dfs.File, error) {
	return e.createInputReplicated(path, totalBytes, numBlocks, 1)
}

// createInputReplicated is createInput with a replication factor, for
// failure experiments.
func (e *Env) createInputReplicated(path string, totalBytes int64, numBlocks, replication int) (*dfs.File, error) {
	if numBlocks <= 0 {
		return nil, fmt.Errorf("workloads: %q needs blocks, got %d", path, numBlocks)
	}
	per := totalBytes / int64(numBlocks)
	if per <= 0 {
		return nil, fmt.Errorf("workloads: %q: %d bytes over %d blocks leaves empty blocks", path, totalBytes, numBlocks)
	}
	sizes := make([]int64, numBlocks)
	locs := make([]int, numBlocks)
	rem := totalBytes
	for i := range sizes {
		sizes[i] = per
		rem -= per
	}
	// Spread the remainder over the first blocks, a byte-exact tiling.
	for i := int64(0); i < rem; i++ {
		sizes[i%int64(numBlocks)]++
	}
	for i := range locs {
		locs[i] = i % e.Cluster.Size()
	}
	return e.FS.CreateAtReplicated(path, sizes, locs, replication)
}
