package workloads

import (
	"fmt"

	"repro/internal/task"
	"repro/internal/units"
)

// ScaleUp is the scale-up-server data-volume scenario from the in-memory-
// analytics characterizations (Awan et al.; "How Data Volume Affects
// Spark"): one fat machine scans and aggregates a cached, deserialized
// dataset. CPU cost is linear in the data, but memory-system traffic per
// byte grows with the working-set size — larger heaps mean more cache
// misses and more object churn per record — so sweeping TotalBytes on a
// fixed machine migrates the bottleneck from CPU to memory bandwidth, the
// regime the CPU/disk/network trio cannot express. On a cluster whose spec
// leaves the memory model disabled the job still runs, as pure CPU work.
type ScaleUp struct {
	Name       string
	TotalBytes int64
	// NumTasks defaults to two waves (2 tasks per core): scale-up analytics
	// engines partition coarsely — the dataset is local, so there is no
	// locality or straggler pressure pushing toward many small tasks.
	NumTasks int
	// CPUPerByte is the compute cost of scanning one byte (default 6 ns/B,
	// ~166 MB/s per core — aggregation-query territory).
	CPUPerByte float64
	// BasePasses is the memory traffic per data byte at negligible volume
	// (default 2: read the record, write the aggregate).
	BasePasses float64
	// ChurnPassesPerGB is the extra traffic per byte added per GB of total
	// working set (default 0.05; negative for none): the cache-miss and
	// GC-churn amplification the data-volume studies measured growing with
	// heap size.
	ChurnPassesPerGB float64
	// MemBWPerTask caps one task's memory-stream rate (default 4 GB/s, a
	// single core's streaming limit). The machine ceiling is shared max-min
	// across the running tasks' streams.
	MemBWPerTask float64
}

// Passes reports the memory traffic per data byte this configuration
// generates — the amplification curve the sweep rides up.
func (s ScaleUp) Passes() float64 {
	base := s.BasePasses
	if base <= 0 {
		base = 2
	}
	churn := s.ChurnPassesPerGB
	if churn < 0 {
		churn = 0
	} else if churn == 0 {
		churn = 0.05
	}
	return base + churn*float64(s.TotalBytes)/float64(units.GB)
}

// Build materializes the single-stage scan in env.
func (s ScaleUp) Build(env *Env) (*task.JobSpec, error) {
	if s.TotalBytes <= 0 {
		return nil, fmt.Errorf("workloads: scale-up needs bytes, got %d", s.TotalBytes)
	}
	name := s.Name
	if name == "" {
		name = fmt.Sprintf("scaleup-%dgb", s.TotalBytes/units.GB)
	}
	tasks := s.NumTasks
	if tasks <= 0 {
		tasks = 2 * env.Cluster.TotalCores()
	}
	cpuPerByte := s.CPUPerByte
	if cpuPerByte <= 0 {
		cpuPerByte = 6e-9
	}
	memBW := s.MemBWPerTask
	if memBW <= 0 {
		memBW = 4e9
	}
	perTask := s.TotalBytes / int64(tasks)
	if perTask <= 0 {
		return nil, fmt.Errorf("workloads: scale-up %d bytes over %d tasks leaves empty tasks", s.TotalBytes, tasks)
	}
	stage := &task.StageSpec{
		ID:       0,
		Name:     name,
		NumTasks: tasks,
		// The dataset is cached deserialized (in-memory analytics): no disk
		// read, no deser CPU — everything the trio sees is the scan itself.
		InputFromMem:      true,
		InputBytesPerTask: perTask,
		OpCPU:             cpuPerByte * float64(perTask),
		MemBytesPerTask:   int64(float64(perTask) * s.Passes()),
		MemBWPerTask:      memBW,
	}
	return &task.JobSpec{Name: name, Stages: []*task.StageSpec{stage}}, nil
}
