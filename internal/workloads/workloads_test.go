package workloads

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/task"
)

func env5x2HDD(t *testing.T) *Env {
	t.Helper()
	c := cluster.MustNew(5, cluster.M2_4XLarge())
	return MustEnv(c)
}

func TestSortBuildStructure(t *testing.T) {
	env := env5x2HDD(t)
	job, err := Sort{TotalBytes: 10e9, ValuesPerKey: 10}.Build(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(job.Stages) != 2 {
		t.Fatalf("sort has %d stages, want 2", len(job.Stages))
	}
	m, r := job.Stages[0], job.Stages[1]
	if m.InputBlocks == nil || m.ShuffleOutBytes == 0 {
		t.Fatal("map stage must read blocks and write shuffle data")
	}
	if !r.HasShuffleInput() || r.OutputBytes == 0 {
		t.Fatal("reduce stage must read shuffle data and write output")
	}
	// Conservation: shuffle out across maps == total bytes (±rounding).
	totalShuffle := int64(m.NumTasks) * m.ShuffleOutBytes
	if totalShuffle < 9e9 || totalShuffle > 10e9+1 {
		t.Fatalf("total shuffle = %d, want ≈1e10", totalShuffle)
	}
}

func TestSortCPUScalesWithRecordCount(t *testing.T) {
	env := env5x2HDD(t)
	small, _ := Sort{Name: "s1", TotalBytes: 10e9, ValuesPerKey: 1}.Build(env)
	big, _ := Sort{Name: "s50", TotalBytes: 10e9, ValuesPerKey: 50}.Build(env)
	// Same bytes, more records with small values ⇒ more CPU (§6.2).
	if small.Stages[0].TotalCPU() <= big.Stages[0].TotalCPU() {
		t.Fatalf("1-long sort CPU %v ≤ 50-long sort CPU %v; record-count scaling broken",
			small.Stages[0].TotalCPU(), big.Stages[0].TotalCPU())
	}
	// I/O volumes identical.
	if small.Stages[0].ShuffleOutBytes*int64(small.Stages[0].NumTasks) !=
		big.Stages[0].ShuffleOutBytes*int64(big.Stages[0].NumTasks) {
		t.Fatal("value size changed I/O volume; it must only change CPU")
	}
}

func TestSortInMemoryInput(t *testing.T) {
	env := env5x2HDD(t)
	job, err := Sort{TotalBytes: 10e9, ValuesPerKey: 10, InMemoryInput: true}.Build(env)
	if err != nil {
		t.Fatal(err)
	}
	m := job.Stages[0]
	if !m.InputFromMem || m.InputBlocks != nil {
		t.Fatal("in-memory sort should not read blocks")
	}
	if m.DeserCPU != 0 {
		t.Fatalf("in-memory input should have no deser CPU, got %v", m.DeserCPU)
	}
}

func TestSortErrors(t *testing.T) {
	env := env5x2HDD(t)
	if _, err := (Sort{TotalBytes: 0, ValuesPerKey: 1}).Build(env); err == nil {
		t.Fatal("zero-byte sort accepted")
	}
}

func TestBDBAllQueriesBuild(t *testing.T) {
	env := env5x2HDD(t)
	for _, q := range BDBQueryNames() {
		job, err := BDBQuery(q, env)
		if err != nil {
			t.Fatalf("q%s: %v", q, err)
		}
		if err := job.Validate(); err != nil {
			t.Fatalf("q%s invalid: %v", q, err)
		}
	}
	if _, err := BDBQuery("9z", env); err == nil {
		t.Fatal("unknown query accepted")
	}
}

func TestBDBQueryShapes(t *testing.T) {
	env := env5x2HDD(t)
	q1a, _ := BDBQuery("1a", env)
	if len(q1a.Stages) != 1 {
		t.Fatalf("q1a has %d stages, want 1 (pure scan)", len(q1a.Stages))
	}
	q2c, _ := BDBQuery("2c", env)
	if len(q2c.Stages) != 2 {
		t.Fatalf("q2c has %d stages, want 2", len(q2c.Stages))
	}
	q3c, _ := BDBQuery("3c", env)
	if len(q3c.Stages) != 3 || len(q3c.Stages[2].ParentIDs) != 2 {
		t.Fatal("q3c should be a 3-stage join with two parents")
	}
	// q1 variants differ only in output size.
	q1b, _ := BDBQuery("1b", env)
	q1c, _ := BDBQuery("1c", env)
	outA := q1a.Stages[0].OutputBytes
	outB := q1b.Stages[0].OutputBytes
	outC := q1c.Stages[0].OutputBytes
	if !(outA < outB && outB < outC) {
		t.Fatalf("q1 output sizes %d, %d, %d not increasing", outA, outB, outC)
	}
}

func TestBDBQ2MapIsCPUBound(t *testing.T) {
	// Fig. 9's premise: q2c's scan stage should demand more CPU time than
	// disk time on the paper's 5×2-HDD cluster.
	env := env5x2HDD(t)
	job, _ := BDBQuery("2c", env)
	scan := job.Stages[0]
	cpuIdeal := scan.TotalCPU() / float64(env.Cluster.TotalCores())
	diskBytes := float64(uservisitsBytes) + float64(scan.ShuffleOutBytes*int64(scan.NumTasks))
	diskIdeal := diskBytes / env.Cluster.TotalDiskBW()
	if cpuIdeal <= diskIdeal {
		t.Fatalf("q2c scan: cpu ideal %v ≤ disk ideal %v; should be CPU-bound", cpuIdeal, diskIdeal)
	}
}

func TestMLBuild(t *testing.T) {
	c := cluster.MustNew(15, cluster.I2_2XLarge(2))
	env := MustEnv(c)
	job, err := LeastSquares{}.Build(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(job.Stages) != 6 {
		t.Fatalf("ML job has %d stages, want 6", len(job.Stages))
	}
	for i, s := range job.Stages {
		if !s.ShuffleInMemory {
			t.Fatalf("stage %d shuffle not in memory; ML workload avoids disk", i)
		}
		if s.OutputBytes != 0 {
			t.Fatalf("stage %d writes output; ML workload avoids disk", i)
		}
		if i > 0 && len(s.ParentIDs) != 1 {
			t.Fatalf("stage %d should chain from previous", i)
		}
	}
	if _, err := (LeastSquares{ColsPerBlock: 99999}).Build(env); err == nil {
		t.Fatal("oversized column block accepted")
	}
}

func TestReadComputeBuild(t *testing.T) {
	c := cluster.MustNew(20, cluster.M2_4XLarge())
	env := MustEnv(c)
	for _, n := range []int{160, 480, 1920} {
		job, err := ReadCompute{TotalBytes: 400e9, NumTasks: n}.Build(env)
		if err != nil {
			t.Fatal(err)
		}
		if job.Stages[0].NumTasks != n {
			t.Fatalf("NumTasks = %d, want %d", job.Stages[0].NumTasks, n)
		}
		if len(job.Stages[0].InputBlocks) != n {
			t.Fatalf("blocks = %d, want %d (repartitioned input)", len(job.Stages[0].InputBlocks), n)
		}
	}
	if _, err := (ReadCompute{TotalBytes: 1, NumTasks: 0}).Build(env); err == nil {
		t.Fatal("zero tasks accepted")
	}
}

func TestWordCountBuild(t *testing.T) {
	env := env5x2HDD(t)
	job, err := WordCount{TotalBytes: 2e9}.Build(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(job.Stages) != 2 {
		t.Fatalf("word count has %d stages, want 2", len(job.Stages))
	}
	if _, err := (WordCount{}).Build(env); err == nil {
		t.Fatal("zero-byte word count accepted")
	}
}

func TestRecordBytes(t *testing.T) {
	if RecordBytes(10) != 88 || RecordBytes(1) != 16 {
		t.Fatalf("RecordBytes wrong: %d, %d", RecordBytes(10), RecordBytes(1))
	}
}

func TestCreateInputTiling(t *testing.T) {
	env := env5x2HDD(t)
	f, err := env.createInput("/tile", 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, b := range f.Blocks {
		sum += b.Bytes
	}
	if sum != 1000 {
		t.Fatalf("blocks sum to %d, want 1000", sum)
	}
	if len(f.Blocks) != 7 {
		t.Fatalf("%d blocks, want 7", len(f.Blocks))
	}
}

var _ = task.JobSpec{} // keep the task import for godoc references
