package workloads

import (
	"fmt"

	"repro/internal/task"
)

// The big data benchmark (§5.2, [31]): four queries over a rankings table
// and a uservisits table, the first three in three variants whose result
// sizes sweep from business-intelligence-sized to ETL-sized. The paper runs
// scale factor 5 on five 2-HDD workers.
//
// Table sizes and per-query profiles below are synthetic calibrations (see
// the package comment): they preserve each query's documented character —
// q1 is a disk-heavy scan whose variants differ only in output size (q1c's
// large output is the Fig. 5 buffer-cache story), q2 is a CPU-bound
// scan+aggregate (Fig. 9 shows its map stage pegging CPU), q3 is a
// three-stage join whose c-variant has a large on-disk shuffle that uses all
// three resources evenly (the Fig. 12 worst case), and q4 is a CPU-bound
// UDF transformation.
const (
	rankingsBytes   = 12e9
	uservisitsBytes = 75e9
)

// bdbStage is one stage's profile inside a query.
type bdbStage struct {
	name       string
	inputBytes int64 // scan of this many bytes from HDFS; 0 ⇒ shuffle input
	parents    []int
	// deserCPUPerByte overrides the default deserialization cost. The
	// benchmark stores compressed sequence files (§5.1), so scans pay for
	// decompression on top of deserialization — this is what made the
	// NSDI '15 study find CPU, not disk, to be the usual bottleneck.
	deserCPUPerByte float64
	opCPUPerByte    float64 // user computation per input byte
	shuffleOut      int64   // total shuffle bytes written by the stage
	outputBytes     int64   // total job output written by the stage
}

// bdbScanDeserCPUPerByte is the decompression + deserialization cost for
// scans of the benchmark's compressed input: 40 ns/byte (≈25 MB/s/core).
// The q1 rankings table has fewer, simpler columns, so its scans
// deserialize more cheaply — which is why q1 is the benchmark's only
// disk-sensitive query family (Fig. 14).
const (
	bdbScanDeserCPUPerByte = 40e-9
	bdbQ1DeserCPUPerByte   = 25e-9
)

// bdbQueries defines the benchmark. Output and shuffle volumes are totals;
// the builder splits them per task.
var bdbQueries = map[string][]bdbStage{
	// Q1: SELECT pageURL, pageRank FROM rankings WHERE pageRank > X.
	// Pure scan+filter; variants differ only in result size.
	"1a": {{name: "scan", inputBytes: rankingsBytes, deserCPUPerByte: bdbQ1DeserCPUPerByte, opCPUPerByte: 5e-9, outputBytes: 60e6}},
	"1b": {{name: "scan", inputBytes: rankingsBytes, deserCPUPerByte: bdbQ1DeserCPUPerByte, opCPUPerByte: 5e-9, outputBytes: 1.2e9}},
	"1c": {{name: "scan", inputBytes: rankingsBytes, deserCPUPerByte: bdbQ1DeserCPUPerByte, opCPUPerByte: 5e-9, outputBytes: 12e9}},

	// Q2: SELECT SUBSTR(sourceIP,1,X), SUM(adRevenue) FROM uservisits
	// GROUP BY SUBSTR(...). String parsing makes the scan CPU-bound;
	// variants differ in group count and hence shuffle volume.
	"2a": {
		{name: "scan", inputBytes: uservisitsBytes, deserCPUPerByte: bdbScanDeserCPUPerByte, opCPUPerByte: 40e-9, shuffleOut: 500e6},
		{name: "agg", parents: []int{0}, opCPUPerByte: 20e-9, outputBytes: 400e6},
	},
	"2b": {
		{name: "scan", inputBytes: uservisitsBytes, deserCPUPerByte: bdbScanDeserCPUPerByte, opCPUPerByte: 40e-9, shuffleOut: 5e9},
		{name: "agg", parents: []int{0}, opCPUPerByte: 20e-9, outputBytes: 4e9},
	},
	"2c": {
		{name: "scan", inputBytes: uservisitsBytes, deserCPUPerByte: bdbScanDeserCPUPerByte, opCPUPerByte: 40e-9, shuffleOut: 25e9},
		{name: "agg", parents: []int{0}, opCPUPerByte: 20e-9, outputBytes: 20e9},
	},

	// Q3: join of rankings with a date-filtered slice of uservisits;
	// variants differ in the date range and hence the joined volume.
	"3a": {
		{name: "scan-rankings", inputBytes: rankingsBytes, deserCPUPerByte: bdbScanDeserCPUPerByte, opCPUPerByte: 8e-9, shuffleOut: 1.2e9},
		{name: "scan-uservisits", inputBytes: uservisitsBytes, deserCPUPerByte: bdbScanDeserCPUPerByte, opCPUPerByte: 15e-9, shuffleOut: 1e9},
		{name: "join", parents: []int{0, 1}, opCPUPerByte: 25e-9, outputBytes: 1e9},
	},
	"3b": {
		{name: "scan-rankings", inputBytes: rankingsBytes, deserCPUPerByte: bdbScanDeserCPUPerByte, opCPUPerByte: 8e-9, shuffleOut: 3e9},
		{name: "scan-uservisits", inputBytes: uservisitsBytes, deserCPUPerByte: bdbScanDeserCPUPerByte, opCPUPerByte: 15e-9, shuffleOut: 5e9},
		{name: "join", parents: []int{0, 1}, opCPUPerByte: 25e-9, outputBytes: 4e9},
	},
	"3c": {
		{name: "scan-rankings", inputBytes: rankingsBytes, deserCPUPerByte: bdbScanDeserCPUPerByte, opCPUPerByte: 8e-9, shuffleOut: 6e9},
		{name: "scan-uservisits", inputBytes: uservisitsBytes, deserCPUPerByte: bdbScanDeserCPUPerByte, opCPUPerByte: 15e-9, shuffleOut: 30e9},
		{name: "join", parents: []int{0, 1}, opCPUPerByte: 25e-9, outputBytes: 15e9},
	},

	// Q4: a page-rank-like transformation through an external script —
	// heavily CPU-bound.
	"4": {
		{name: "udf", inputBytes: 30e9, deserCPUPerByte: bdbScanDeserCPUPerByte, opCPUPerByte: 120e-9, shuffleOut: 5e9},
		{name: "reduce", parents: []int{0}, opCPUPerByte: 30e-9, outputBytes: 5e9},
	},
}

// BDBQueryNames lists the benchmark's queries in report order.
func BDBQueryNames() []string {
	return []string{"1a", "1b", "1c", "2a", "2b", "2c", "3a", "3b", "3c", "4"}
}

// BDBQuery builds one benchmark query for env.
func BDBQuery(name string, env *Env) (*task.JobSpec, error) {
	stages, ok := bdbQueries[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown big data benchmark query %q", name)
	}
	job := &task.JobSpec{Name: "bdb-q" + name}
	for i, bs := range stages {
		spec := &task.StageSpec{ID: i, Name: fmt.Sprintf("q%s/%s", name, bs.name)}
		var perTaskInput int64
		switch {
		case bs.inputBytes > 0:
			blocks := int(bs.inputBytes / (128 << 20))
			if blocks < env.Cluster.Size() {
				blocks = env.Cluster.Size()
			}
			f, err := env.createInput(fmt.Sprintf("/bdb/%s/%s", job.Name, bs.name), int64(bs.inputBytes), blocks)
			if err != nil {
				return nil, err
			}
			spec.NumTasks = blocks
			spec.InputBlocks = f.Blocks
			perTaskInput = int64(bs.inputBytes) / int64(blocks)
		default:
			spec.NumTasks = 2 * env.Cluster.TotalCores()
			for _, p := range bs.parents {
				spec.ParentIDs = append(spec.ParentIDs, p)
				perTaskInput += stages[p].shuffleOut / int64(spec.NumTasks)
			}
		}
		deser := bs.deserCPUPerByte
		if deser == 0 {
			deser = DeserCPUPerByte
		}
		spec.DeserCPU = deser * float64(perTaskInput)
		spec.OpCPU = bs.opCPUPerByte * float64(perTaskInput)
		perTaskOut := (bs.shuffleOut + bs.outputBytes) / int64(spec.NumTasks)
		spec.SerCPU = SerCPUPerByte * float64(perTaskOut)
		spec.ShuffleOutBytes = bs.shuffleOut / int64(spec.NumTasks)
		spec.OutputBytes = bs.outputBytes / int64(spec.NumTasks)
		job.Stages = append(job.Stages, spec)
	}
	return job, nil
}
