package core

import "testing"

func mk(phase int) *monotask { return &monotask{phase: phase} }

func TestRRQueueFIFOWithinPhase(t *testing.T) {
	q := newRRQueue()
	a, b, c := mk(0), mk(0), mk(0)
	q.push(a)
	q.push(b)
	q.push(c)
	if q.pop() != a || q.pop() != b || q.pop() != c {
		t.Fatal("single-phase queue is not FIFO")
	}
	if q.pop() != nil {
		t.Fatal("empty queue should pop nil")
	}
}

func TestRRQueueRoundRobinAcrossPhases(t *testing.T) {
	q := newRRQueue()
	r1, r2 := mk(phaseInput), mk(phaseInput)
	w1, w2 := mk(phaseOutput), mk(phaseOutput)
	// Writes queued first — the §3.3 starvation scenario.
	q.push(w1)
	q.push(w2)
	q.push(r1)
	q.push(r2)
	got := []*monotask{q.pop(), q.pop(), q.pop(), q.pop()}
	want := []*monotask{w1, r1, w2, r2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop %d: got phase %d, want phase %d (round robin)", i, got[i].phase, want[i].phase)
		}
	}
}

func TestRRQueuePhaseRefills(t *testing.T) {
	q := newRRQueue()
	q.push(mk(0))
	q.push(mk(1))
	q.pop() // phase 0
	q.pop() // phase 1
	a, b := mk(1), mk(0)
	q.push(a)
	q.push(b)
	// Cursor is back at phase 0, so b (phase 0) goes first.
	if got := q.pop(); got != b {
		t.Fatalf("expected refilled phase 0 first, got phase %d", got.phase)
	}
	if got := q.pop(); got != a {
		t.Fatalf("expected phase 1 second, got phase %d", got.phase)
	}
}

func TestRRQueueSkipsEmptyPhases(t *testing.T) {
	q := newRRQueue()
	q.push(mk(0))
	q.pop()
	m := mk(2)
	q.push(m)
	if got := q.pop(); got != m {
		t.Fatal("queue failed to skip an empty phase")
	}
	if q.len() != 0 {
		t.Fatalf("len = %d, want 0", q.len())
	}
}

func TestRRQueueLen(t *testing.T) {
	q := newRRQueue()
	for i := 0; i < 5; i++ {
		q.push(mk(i % 2))
	}
	if q.len() != 5 {
		t.Fatalf("len = %d, want 5", q.len())
	}
	q.pop()
	if q.len() != 4 {
		t.Fatalf("len = %d, want 4", q.len())
	}
}
