// Package core implements the paper's primary contribution: the monotasks
// execution model (§3).
//
// Each multitask that arrives on a worker is decomposed into a DAG of
// monotasks that each use exactly one resource (Fig. 4):
//
//	map multitask:    disk read → compute → disk write (shuffle data)
//	reduce multitask: network fetches (served by a remote disk read and a
//	                  network transfer) + local shuffle disk read → compute
//	                  → disk write (job output)
//
// A Local DAG Scheduler tracks dependencies and hands ready monotasks to
// dedicated per-resource schedulers (§3.3):
//
//   - the compute scheduler runs one monotask per core;
//   - each disk scheduler runs one monotask per HDD (or a configurable
//     number, default 4, per SSD) and round-robins its queue across DAG
//     phases so reads are not starved behind a backlog of writes;
//   - the network scheduler is receiver-driven and admits the outstanding
//     requests of at most four multitasks at a time, finishing one
//     multitask's data before starting the next so compute can pipeline
//     with the following multitask's fetches.
//
// Contention is visible as per-resource queue lengths (Queues), and every
// monotask reports exactly when it queued, started, and finished — the raw
// material of the §6 performance model.
package core
