package core

import "repro/internal/task"

// numPhases bounds the phase constants (phaseInput..phaseServe).
const numPhases = 4

// rrQueue is a FIFO queue per phase with round-robin service across phases
// (§3.3): when disk writes pile up, the next service turn still goes to a
// waiting read, keeping the downstream CPU fed.
//
// Each phase FIFO is a head-indexed slice: pop advances the head, and push
// compacts the live window to the front once the dead prefix outgrows it, so
// the backing array is reused instead of endlessly reallocated as the window
// slides.
type rrQueue struct {
	byPhase [numPhases][]*monotask
	head    [numPhases]int
	ring    []int // phases in first-seen order
	seen    [numPhases]bool
	cursor  int
	size    int
	// fifo disables the phase rotation (ablation: the §3.3 starvation
	// pathology), serving strictly in arrival order.
	fifo      bool
	order     []*monotask
	orderHead int
}

func newRRQueue() *rrQueue {
	return &rrQueue{}
}

func newFIFOQueue() *rrQueue {
	return &rrQueue{fifo: true}
}

// pushTo appends m to a head-indexed FIFO, compacting first when the dead
// prefix dominates the backing array.
func pushTo(fifo []*monotask, head *int, m *monotask) []*monotask {
	if h := *head; h > 0 && h >= len(fifo)-h {
		n := copy(fifo, fifo[h:])
		for i := n; i < len(fifo); i++ {
			fifo[i] = nil
		}
		fifo = fifo[:n]
		*head = 0
	}
	return append(fifo, m)
}

// push appends m to its phase's FIFO.
func (q *rrQueue) push(m *monotask) {
	if q.fifo {
		q.order = pushTo(q.order, &q.orderHead, m)
		q.size++
		return
	}
	p := m.phase
	if !q.seen[p] {
		q.seen[p] = true
		q.ring = append(q.ring, p)
	}
	q.byPhase[p] = pushTo(q.byPhase[p], &q.head[p], m)
	q.size++
}

// pop removes and returns the next monotask in round-robin phase order, or
// nil if the queue is empty. Empty phases are skipped but stay in the ring:
// a phase that refills (the steady-state read/write alternation) resumes
// its turn.
func (q *rrQueue) pop() *monotask {
	if q.size == 0 {
		return nil
	}
	if q.fifo {
		m := q.order[q.orderHead]
		q.order[q.orderHead] = nil
		q.orderHead++
		q.size--
		return m
	}
	for i := 0; i < len(q.ring); i++ {
		phase := q.ring[q.cursor]
		q.cursor = (q.cursor + 1) % len(q.ring)
		h := q.head[phase]
		fifo := q.byPhase[phase]
		if h >= len(fifo) {
			continue
		}
		m := fifo[h]
		fifo[h] = nil
		q.head[phase] = h + 1
		q.size--
		return m
	}
	panic("core: rrQueue size > 0 but no monotask found")
}

// len reports the number of queued monotasks.
func (q *rrQueue) len() int { return q.size }

// peekSame removes and returns the first queued monotask of the given kind
// smaller than maxBytes, searching all phases, or nil when none qualifies.
// Used by the small-request batching extension.
func (q *rrQueue) peekSame(kind task.Kind, maxBytes int64) *monotask {
	// take shifts the hit out of the live window in place.
	take := func(fifo []*monotask, head int) (*monotask, bool) {
		for i := head; i < len(fifo); i++ {
			m := fifo[i]
			if m.kind == kind && m.bytes < maxBytes {
				copy(fifo[i:], fifo[i+1:])
				fifo[len(fifo)-1] = nil
				return m, true
			}
		}
		return nil, false
	}
	if q.fifo {
		m, ok := take(q.order, q.orderHead)
		if !ok {
			return nil
		}
		q.order = q.order[:len(q.order)-1]
		q.size--
		return m
	}
	for _, phase := range q.ring {
		m, ok := take(q.byPhase[phase], q.head[phase])
		if !ok {
			continue
		}
		q.byPhase[phase] = q.byPhase[phase][:len(q.byPhase[phase])-1]
		q.size--
		return m
	}
	return nil
}
