package core

import "repro/internal/task"

// rrQueue is a FIFO queue per phase with round-robin service across phases
// (§3.3): when disk writes pile up, the next service turn still goes to a
// waiting read, keeping the downstream CPU fed.
type rrQueue struct {
	byPhase map[int][]*monotask
	ring    []int // phases in first-seen order
	cursor  int
	size    int
	// fifo disables the phase rotation (ablation: the §3.3 starvation
	// pathology), serving strictly in arrival order.
	fifo  bool
	order []*monotask
}

func newRRQueue() *rrQueue {
	return &rrQueue{byPhase: make(map[int][]*monotask)}
}

func newFIFOQueue() *rrQueue {
	return &rrQueue{byPhase: make(map[int][]*monotask), fifo: true}
}

// push appends m to its phase's FIFO.
func (q *rrQueue) push(m *monotask) {
	if q.fifo {
		q.order = append(q.order, m)
		q.size++
		return
	}
	if _, ok := q.byPhase[m.phase]; !ok {
		q.ring = append(q.ring, m.phase)
	}
	q.byPhase[m.phase] = append(q.byPhase[m.phase], m)
	q.size++
}

// pop removes and returns the next monotask in round-robin phase order, or
// nil if the queue is empty. Empty phases are skipped but stay in the ring:
// a phase that refills (the steady-state read/write alternation) resumes
// its turn.
func (q *rrQueue) pop() *monotask {
	if q.size == 0 {
		return nil
	}
	if q.fifo {
		m := q.order[0]
		q.order[0] = nil
		q.order = q.order[1:]
		q.size--
		return m
	}
	for i := 0; i < len(q.ring); i++ {
		phase := q.ring[q.cursor]
		q.cursor = (q.cursor + 1) % len(q.ring)
		fifo := q.byPhase[phase]
		if len(fifo) == 0 {
			continue
		}
		m := fifo[0]
		fifo[0] = nil
		q.byPhase[phase] = fifo[1:]
		q.size--
		return m
	}
	panic("core: rrQueue size > 0 but no monotask found")
}

// len reports the number of queued monotasks.
func (q *rrQueue) len() int { return q.size }

// peekSame removes and returns the first queued monotask of the given kind
// smaller than maxBytes, searching all phases, or nil when none qualifies.
// Used by the small-request batching extension.
func (q *rrQueue) peekSame(kind task.Kind, maxBytes int64) *monotask {
	take := func(fifo []*monotask) (*monotask, []*monotask, bool) {
		for i, m := range fifo {
			if m.kind == kind && m.bytes < maxBytes {
				out := append(append([]*monotask{}, fifo[:i]...), fifo[i+1:]...)
				return m, out, true
			}
		}
		return nil, fifo, false
	}
	if q.fifo {
		m, rest, ok := take(q.order)
		if !ok {
			return nil
		}
		q.order = rest
		q.size--
		return m
	}
	for _, phase := range q.ring {
		m, rest, ok := take(q.byPhase[phase])
		if !ok {
			continue
		}
		q.byPhase[phase] = rest
		q.size--
		return m
	}
	return nil
}
