package core

import (
	"repro/internal/task"
)

// nodeSpec is one monotask blueprint inside a dagTemplate: the fields of a
// stage's decomposition (§3.2) that are identical for every task of the
// stage, precomputed once so per-task decomposition only stamps dynamic
// state (placement, disk cursors, resolved fetches).
type nodeSpec struct {
	resource task.Resource
	kind     task.Kind
	phase    int
	bytes    int64
	deser    float64
	op       float64
	ser      float64
	memBytes int64
	memBW    float64
}

// dagTemplate memoizes the static skeleton of one stage's monotask DAG on
// one worker: the compute monotask's cost split, the output monotasks'
// kinds and sizes, and the metric count of the static portion. The input
// side varies per task (local read vs remote fetch vs cached memory), so it
// is resolved per decomposition; everything else comes from the template.
//
// Templates are keyed by *StageSpec, which is immutable once a job is
// submitted, so entries never go stale. Fault injection, machine exclusion,
// and speculative retries re-resolve tasks — possibly onto different
// machines — but never mutate the stage spec, so the template stays valid;
// the dynamic input side is rebuilt from the resolved Task on every launch.
type dagTemplate struct {
	spec    *task.StageSpec
	compute nodeSpec
	outputs []nodeSpec // 0..2 disk-write monotasks
	// staticMetrics counts the monotask metrics the static portion yields:
	// the compute monotask plus one per output write.
	staticMetrics int
}

// dagTemplateFor returns the worker's cached template for spec, building it
// on first use.
func (w *Worker) dagTemplateFor(spec *task.StageSpec) *dagTemplate {
	if t, ok := w.templates[spec]; ok {
		return t
	}
	t := &dagTemplate{spec: spec}
	t.compute = nodeSpec{
		resource: task.CPUResource,
		kind:     task.KindCompute,
		phase:    phaseCompute,
		deser:    spec.DeserCPU,
		op:       spec.OpCPU,
		ser:      spec.SerCPU,
		memBytes: spec.MemBytesPerTask,
		memBW:    spec.MemBWPerTask,
	}
	// Output monotasks are write-through disk writes (§3.1, principle 4).
	if spec.ShuffleOutBytes > 0 && !spec.ShuffleInMemory {
		t.outputs = append(t.outputs, nodeSpec{
			resource: task.DiskResource,
			kind:     task.KindShuffleWrite,
			phase:    phaseOutput,
			bytes:    spec.ShuffleOutBytes,
		})
	}
	if spec.OutputBytes > 0 && !spec.OutputToMem {
		t.outputs = append(t.outputs, nodeSpec{
			resource: task.DiskResource,
			kind:     task.KindOutputWrite,
			phase:    phaseOutput,
			bytes:    spec.OutputBytes,
		})
	}
	t.staticMetrics = 1 + len(t.outputs)
	w.templates[spec] = t
	return t
}

// metricsCap returns the exact number of monotask metrics task t will
// produce, including the serve-side disk reads other machines perform on its
// behalf (those are attributed to the requesting task, §3.3).
func (tp *dagTemplate) metricsCap(t *task.Task) int {
	n := tp.staticMetrics
	if t.DiskReadBytes > 0 {
		n++
	}
	if t.RemoteRead != nil {
		n += 2 // the net fetch plus the remote disk read attributed here
		if t.RemoteRead.FromMem {
			n--
		}
	}
	for _, f := range t.Fetches {
		switch {
		case f.From == t.Machine && f.FromMem:
			// already in memory here: no monotask at all
		case f.From == t.Machine:
			n++ // local disk read
		case f.FromMem:
			n++ // net fetch only
		default:
			n += 2 // net fetch plus the serving machine's disk read
		}
	}
	return n
}

// newMonotask takes a node struct from the worker's free list and binds it
// to mt. Monotasks are recycled in finish, which always runs on the worker
// that allocated the node (the machine whose scheduler served it).
func (w *Worker) newMonotask(mt *multitask) *monotask {
	var m *monotask
	if n := len(w.monoPool); n > 0 {
		m = w.monoPool[n-1]
		w.monoPool[n-1] = nil
		w.monoPool = w.monoPool[:n-1]
	} else {
		m = &monotask{}
	}
	m.owner = mt
	return m
}

// stampNode is newMonotask plus the template blueprint's static fields.
func (w *Worker) stampNode(mt *multitask, spec *nodeSpec) *monotask {
	m := w.newMonotask(mt)
	m.resource = spec.resource
	m.kind = spec.kind
	m.phase = spec.phase
	m.bytes = spec.bytes
	m.deser = spec.deser
	m.op = spec.op
	m.ser = spec.ser
	m.memBytes = spec.memBytes
	m.memBW = spec.memBW
	return m
}

// recycleMono retires a finished monotask to the free list, keeping its
// dependents slice's capacity.
func (w *Worker) recycleMono(m *monotask) {
	deps := m.dependents[:0]
	for i := range m.dependents {
		m.dependents[i] = nil
	}
	*m = monotask{}
	m.dependents = deps
	w.monoPool = append(w.monoPool, m)
}

// newMultitask takes a multitask struct from the worker's free list. The
// completion thunk handed to the engine is bound once per struct lifetime,
// so repeated launches never re-allocate it.
func (w *Worker) newMultitask() *multitask {
	if n := len(w.mtPool); n > 0 {
		mt := w.mtPool[n-1]
		w.mtPool[n-1] = nil
		w.mtPool = w.mtPool[:n-1]
		return mt
	}
	mt := &multitask{}
	mt.completeFn = mt.complete
	return mt
}

// complete delivers the finished metrics to the driver and recycles the
// multitask struct. The struct is returned to the pool before the callback
// runs: every field the callback needs is extracted first, so a follow-on
// Launch inside the callback may immediately reuse it.
func (mt *multitask) complete() {
	w, done, metrics := mt.worker, mt.done, mt.metrics
	mt.t = nil
	mt.done = nil
	mt.metrics = nil
	mt.netEntry = nil
	w.mtPool = append(w.mtPool, mt)
	done(metrics)
	if w.pull != nil {
		// Worker-local queue feeding: with a delegated control plane the
		// freed slot is refilled by this worker's dispatcher now, in the
		// same engine event the completion ran in.
		w.pull()
	}
}
