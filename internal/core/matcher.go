package core

import "repro/internal/sim"

// NetworkPolicy selects the fetch-scheduling discipline.
type NetworkPolicy int

const (
	// ReceiverLimited is the paper's scheduler (§3.3): each receiver admits
	// the outstanding requests of at most NetMultitaskLimit multitasks, and
	// admitted flows share links max-min fairly.
	ReceiverLimited NetworkPolicy = iota
	// SenderReceiverMatching emulates the pHost/iSlip-style schedulers the
	// paper names as future work (§3.3): transfers are granted only when
	// both the sender and the receiver are otherwise idle, so each granted
	// transfer owns its whole path. Requests wait in a global FIFO.
	SenderReceiverMatching
)

// matchRequest is one fetch waiting for a sender/receiver grant.
type matchRequest struct {
	sender, receiver int
	// start performs the fetch (serve read + transfer) and must call the
	// release it is handed exactly once, when the transfer completes.
	start func(release func())
}

// matcher grants fetches under one-to-one sender/receiver matching. All
// workers of a Group share one matcher, making the grant decision global —
// the "distributed matching between senders and receivers" of §3.3, with
// the simulator standing in for the coordination protocol.
type matcher struct {
	eng          *sim.Engine
	senderBusy   []bool
	receiverBusy []bool
	queue        []*matchRequest
}

func newMatcher(eng *sim.Engine, machines int) *matcher {
	return &matcher{
		eng:          eng,
		senderBusy:   make([]bool, machines),
		receiverBusy: make([]bool, machines),
	}
}

// request enqueues a fetch and grants whatever the new state allows.
func (ma *matcher) request(sender, receiver int, start func(release func())) {
	ma.queue = append(ma.queue, &matchRequest{sender: sender, receiver: receiver, start: start})
	ma.grant()
}

// grant scans the FIFO and starts every request whose endpoints are free.
// Skipping over blocked heads keeps throughput up (a strict FIFO would
// convoy behind one busy sender) while the scan order keeps it fair and
// deterministic.
func (ma *matcher) grant() {
	kept := ma.queue[:0]
	var granted []*matchRequest
	for _, r := range ma.queue {
		if ma.senderBusy[r.sender] || ma.receiverBusy[r.receiver] {
			kept = append(kept, r)
			continue
		}
		ma.senderBusy[r.sender] = true
		ma.receiverBusy[r.receiver] = true
		granted = append(granted, r)
	}
	for i := len(kept); i < len(ma.queue); i++ {
		ma.queue[i] = nil
	}
	ma.queue = kept
	for _, r := range granted {
		r := r
		released := false
		r.start(func() {
			if released {
				panic("core: matcher release called twice")
			}
			released = true
			ma.senderBusy[r.sender] = false
			ma.receiverBusy[r.receiver] = false
			ma.grant()
		})
	}
}

// Pending reports requests waiting for a grant.
func (ma *matcher) Pending() int { return len(ma.queue) }
