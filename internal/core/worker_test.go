package core

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/task"
)

// testSpec builds a machine with clean arithmetic: no seek, no contention
// penalty, 100 MB/s disks, 100 MB/s network.
func testSpec(cores, disks int) cluster.MachineSpec {
	ds := make([]resource.DiskSpec, disks)
	for i := range ds {
		ds[i] = resource.DiskSpec{Kind: resource.HDD, SeqBW: 100e6, SeekTime: 0, ContentionAlpha: 0.35}
	}
	return cluster.MachineSpec{Cores: cores, Disks: ds, NetBW: 100e6, MemBytes: 1 << 30}
}

func newTestGroup(t *testing.T, machines, cores, disks int) (*cluster.Cluster, *Group) {
	t.Helper()
	c, err := cluster.New(machines, testSpec(cores, disks))
	if err != nil {
		t.Fatal(err)
	}
	return c, NewGroup(c, Options{})
}

func approx(a, b sim.Time) bool { return math.Abs(float64(a-b)) < 1e-6 }

// run launches tasks and returns their metrics after the engine drains.
func run(c *cluster.Cluster, g *Group, tasks []*task.Task) []*task.TaskMetrics {
	out := make([]*task.TaskMetrics, len(tasks))
	for i, tk := range tasks {
		i := i
		g.Workers[tk.Machine].Launch(tk, func(m *task.TaskMetrics) { out[i] = m })
	}
	c.Engine.Run()
	return out
}

func TestMapTaskSerializesResources(t *testing.T) {
	c, g := newTestGroup(t, 1, 1, 1)
	stage := &task.StageSpec{ID: 0, Name: "map", NumTasks: 1, OpCPU: 2, ShuffleOutBytes: 50e6}
	tk := &task.Task{Stage: stage, Index: 0, Machine: 0, DiskReadBytes: 100e6, DiskReadDisk: 0}
	m := run(c, g, []*task.Task{tk})[0]
	// 1 s read + 2 s compute + 0.5 s shuffle write, strictly serialized.
	if !approx(m.End, 3.5) {
		t.Fatalf("map multitask finished at %v, want 3.5 (serialized monotasks)", m.End)
	}
	if len(m.Monotasks) != 3 {
		t.Fatalf("got %d monotasks, want 3 (read, compute, write)", len(m.Monotasks))
	}
	kinds := map[task.Kind]task.MonotaskMetric{}
	for _, mm := range m.Monotasks {
		kinds[mm.Kind] = mm
	}
	rd, cp, wr := kinds[task.KindInputRead], kinds[task.KindCompute], kinds[task.KindShuffleWrite]
	if !approx(rd.End, 1) || !approx(cp.Start, 1) || !approx(cp.End, 3) || !approx(wr.Start, 3) {
		t.Fatalf("monotask spans wrong: read %v-%v compute %v-%v write %v-%v",
			rd.Start, rd.End, cp.Start, cp.End, wr.Start, wr.End)
	}
	if rd.Bytes != 100e6 || wr.Bytes != 50e6 {
		t.Fatalf("bytes: read %d write %d", rd.Bytes, wr.Bytes)
	}
}

func TestComputeSchedulerOneMonotaskPerCore(t *testing.T) {
	c, g := newTestGroup(t, 1, 2, 1)
	stage := &task.StageSpec{ID: 0, Name: "cpu", NumTasks: 4, OpCPU: 1}
	var tasks []*task.Task
	for i := 0; i < 4; i++ {
		tasks = append(tasks, &task.Task{Stage: stage, Index: i, Machine: 0})
	}
	ms := run(c, g, tasks)
	// 4 × 1 s jobs on 2 cores, admitted two at a time: finish at 1,1,2,2.
	// With processor sharing (no admission control) all four would finish
	// at 2 — this test is what distinguishes the monotasks CPU scheduler.
	ends := []sim.Time{ms[0].End, ms[1].End, ms[2].End, ms[3].End}
	if !approx(ends[0], 1) || !approx(ends[1], 1) || !approx(ends[2], 2) || !approx(ends[3], 2) {
		t.Fatalf("ends = %v, want [1 1 2 2]", ends)
	}
}

func TestDiskSchedulerOneMonotaskPerHDD(t *testing.T) {
	c, g := newTestGroup(t, 1, 4, 1)
	stage := &task.StageSpec{ID: 0, Name: "read", NumTasks: 2}
	tasks := []*task.Task{
		{Stage: stage, Index: 0, Machine: 0, DiskReadBytes: 100e6},
		{Stage: stage, Index: 1, Machine: 0, DiskReadBytes: 100e6},
	}
	ms := run(c, g, tasks)
	// Serialized: 1 s then 2 s. Under contention both would finish at
	// ~2.7 s (α=0.35), so this checks the scheduler queues the second read.
	if !approx(ms[0].End, 1) || !approx(ms[1].End, 2) {
		t.Fatalf("ends = %v, %v; want 1, 2 (one monotask per disk)", ms[0].End, ms[1].End)
	}
}

func TestDiskWritesRoundRobinAcrossDisks(t *testing.T) {
	c, g := newTestGroup(t, 1, 4, 2)
	stage := &task.StageSpec{ID: 0, Name: "write", NumTasks: 2, OutputBytes: 100e6}
	tasks := []*task.Task{
		{Stage: stage, Index: 0, Machine: 0},
		{Stage: stage, Index: 1, Machine: 0},
	}
	ms := run(c, g, tasks)
	// Two writes spread over two disks proceed in parallel.
	if !approx(ms[0].End, 1) || !approx(ms[1].End, 1) {
		t.Fatalf("ends = %v, %v; want both 1 (round-robin disk choice)", ms[0].End, ms[1].End)
	}
}

func TestSSDSchedulerConcurrency(t *testing.T) {
	spec := cluster.MachineSpec{
		Cores:    4,
		Disks:    []resource.DiskSpec{resource.DefaultSSD()},
		NetBW:    100e6,
		MemBytes: 1 << 30,
	}
	c, _ := cluster.New(1, spec)
	g := NewGroup(c, Options{})
	stage := &task.StageSpec{ID: 0, Name: "read", NumTasks: 4}
	var tasks []*task.Task
	for i := 0; i < 4; i++ {
		tasks = append(tasks, &task.Task{Stage: stage, Index: i, Machine: 0, DiskReadBytes: 100e6})
	}
	ms := run(c, g, tasks)
	// Four concurrent reads saturate the SSD at 400 MB/s aggregate:
	// 400 MB / 400 MB/s = 1 s, all finishing together.
	for i, m := range ms {
		if !approx(m.End, 1) {
			t.Fatalf("task %d finished at %v, want 1 (SSD concurrency 4)", i, m.End)
		}
	}
}

func TestShuffleFetchRemote(t *testing.T) {
	c, g := newTestGroup(t, 2, 1, 1)
	stage := &task.StageSpec{ID: 1, Name: "reduce", NumTasks: 1, ParentIDs: []int{0}, OpCPU: 1}
	tk := &task.Task{
		Stage: stage, Index: 0, Machine: 0,
		Fetches: []task.Fetch{{From: 1, Bytes: 100e6}},
	}
	m := run(c, g, []*task.Task{tk})[0]
	// Remote disk read 1 s + network transfer 1 s + compute 1 s = 3 s.
	if !approx(m.End, 3) {
		t.Fatalf("reduce finished at %v, want 3 (serve read + transfer + compute)", m.End)
	}
	var kinds []task.Kind
	for _, mm := range m.Monotasks {
		kinds = append(kinds, mm.Kind)
	}
	var haveServe, haveNet bool
	for _, mm := range m.Monotasks {
		switch mm.Kind {
		case task.KindShuffleServeRead:
			haveServe = true
			if mm.Machine != 1 {
				t.Fatalf("serve read attributed to machine %d, want 1", mm.Machine)
			}
		case task.KindNetFetch:
			haveNet = true
			if mm.Machine != 0 {
				t.Fatalf("net fetch attributed to machine %d, want 0 (receiver)", mm.Machine)
			}
		}
	}
	if !haveServe || !haveNet {
		t.Fatalf("missing serve/net monotasks, got kinds %v", kinds)
	}
}

func TestShuffleFetchLocalIsDiskRead(t *testing.T) {
	c, g := newTestGroup(t, 1, 1, 1)
	stage := &task.StageSpec{ID: 1, Name: "reduce", NumTasks: 1, ParentIDs: []int{0}, OpCPU: 1}
	tk := &task.Task{
		Stage: stage, Index: 0, Machine: 0,
		Fetches: []task.Fetch{{From: 0, Bytes: 100e6}},
	}
	m := run(c, g, []*task.Task{tk})[0]
	if !approx(m.End, 2) {
		t.Fatalf("local-fetch reduce finished at %v, want 2 (disk read + compute, no network)", m.End)
	}
	for _, mm := range m.Monotasks {
		if mm.Resource == task.NetworkResource {
			t.Fatal("local shuffle fetch created a network monotask")
		}
	}
}

func TestShuffleFetchFromMemory(t *testing.T) {
	c, g := newTestGroup(t, 2, 1, 1)
	stage := &task.StageSpec{ID: 1, Name: "reduce", NumTasks: 1, ParentIDs: []int{0}, OpCPU: 1}
	tk := &task.Task{
		Stage: stage, Index: 0, Machine: 0,
		Fetches: []task.Fetch{
			{From: 0, Bytes: 100e6, FromMem: true}, // local memory: free
			{From: 1, Bytes: 100e6, FromMem: true}, // remote memory: network only
		},
	}
	m := run(c, g, []*task.Task{tk})[0]
	// Remote mem fetch: 1 s transfer (no serve read) + 1 s compute.
	if !approx(m.End, 2) {
		t.Fatalf("in-memory shuffle reduce finished at %v, want 2", m.End)
	}
	for _, mm := range m.Monotasks {
		if mm.Resource == task.DiskResource {
			t.Fatal("in-memory shuffle created a disk monotask")
		}
	}
}

func TestRemoteInputBlockRead(t *testing.T) {
	c, g := newTestGroup(t, 2, 1, 2)
	stage := &task.StageSpec{ID: 0, Name: "map", NumTasks: 1, OpCPU: 1}
	tk := &task.Task{
		Stage: stage, Index: 0, Machine: 0,
		RemoteRead: &task.Fetch{From: 1, Bytes: 100e6, FromDisk: 1},
	}
	m := run(c, g, []*task.Task{tk})[0]
	if !approx(m.End, 3) {
		t.Fatalf("remote-input map finished at %v, want 3", m.End)
	}
	found := false
	for _, mm := range m.Monotasks {
		if mm.Kind == task.KindInputRead {
			found = true
			if mm.Machine != 1 {
				t.Fatalf("remote input read on machine %d, want 1", mm.Machine)
			}
		}
	}
	if !found {
		t.Fatal("remote block read did not record an input-read monotask")
	}
}

func TestNetworkSchedulerLimitsActiveMultitasks(t *testing.T) {
	// 6 reduce multitasks each fetch 100 MB from machine 1. The network
	// scheduler admits 4 at a time; with the serve disk serializing reads,
	// data arrives one multitask at a time regardless, but admission order
	// should be preserved and the 5th/6th must wait for slots.
	c, g := newTestGroup(t, 2, 8, 1)
	stage := &task.StageSpec{ID: 1, Name: "reduce", NumTasks: 6, ParentIDs: []int{0}}
	var tasks []*task.Task
	for i := 0; i < 6; i++ {
		tasks = append(tasks, &task.Task{
			Stage: stage, Index: i, Machine: 0,
			Fetches: []task.Fetch{{From: 1, Bytes: 100e6}},
		})
	}
	ms := run(c, g, tasks)
	for i := 1; i < 6; i++ {
		if ms[i].End < ms[i-1].End {
			t.Fatalf("multitask %d finished before %d: admission order violated", i, i-1)
		}
	}
	// Serve disk serializes the 6 reads at 1 s each (ends 1..6); each read's
	// transfer pipelines with the next read, so the last arrival is 7 s.
	if !approx(ms[5].End, 7) {
		t.Fatalf("last reduce finished at %v, want 7", ms[5].End)
	}
}

func TestNetworkLimitVisibleInQueue(t *testing.T) {
	c, g := newTestGroup(t, 2, 8, 1)
	stage := &task.StageSpec{ID: 1, Name: "reduce", NumTasks: 6, ParentIDs: []int{0}}
	for i := 0; i < 6; i++ {
		tk := &task.Task{
			Stage: stage, Index: i, Machine: 0,
			Fetches: []task.Fetch{{From: 1, Bytes: 100e6, FromMem: true}},
		}
		g.Workers[0].Launch(tk, func(*task.TaskMetrics) {})
	}
	// Before any progress: 4 multitasks admitted, 2 queued — contention is
	// visible as queue length (§3.1).
	if q := g.Workers[0].QueueLengths()["network"]; q != 2 {
		t.Fatalf("network queue = %d, want 2", q)
	}
	c.Engine.Run()
	if q := g.Workers[0].QueueLengths()["network"]; q != 0 {
		t.Fatalf("network queue after drain = %d, want 0", q)
	}
}

func TestComputeSplitRecorded(t *testing.T) {
	c, g := newTestGroup(t, 1, 1, 1)
	stage := &task.StageSpec{ID: 0, Name: "m", NumTasks: 1, DeserCPU: 0.5, OpCPU: 2, SerCPU: 0.25}
	tk := &task.Task{Stage: stage, Index: 0, Machine: 0}
	m := run(c, g, []*task.Task{tk})[0]
	cm := m.Monotasks[0]
	if cm.DeserSec != 0.5 || cm.OpSec != 2 || cm.SerSec != 0.25 {
		t.Fatalf("compute split %v/%v/%v, want 0.5/2/0.25", cm.DeserSec, cm.OpSec, cm.SerSec)
	}
	if !approx(m.End, 2.75) {
		t.Fatalf("end %v, want 2.75", m.End)
	}
}

func TestMaxConcurrentTasks(t *testing.T) {
	// 8 cores + 2 HDD×1 + 4 network + 1 spare = 15 (§3.4's worked example
	// with 4 cores and 1 disk gives 10).
	c, g := newTestGroup(t, 1, 8, 2)
	_ = c
	if got := g.Workers[0].MaxConcurrentTasks(); got != 15 {
		t.Fatalf("MaxConcurrentTasks = %d, want 15", got)
	}
	spec4 := testSpec(4, 1)
	c2, _ := cluster.New(1, spec4)
	w := NewWorker(c2.Machines[0], c2.Fabric, c2.Engine, Options{})
	if got := w.MaxConcurrentTasks(); got != 10 {
		t.Fatalf("paper example: MaxConcurrentTasks = %d, want 10", got)
	}
}

func TestQueuePhaseRoundRobinKeepsCPUFed(t *testing.T) {
	// The §3.3 scenario: a backlog of disk writes must not starve the disk
	// reads that feed the CPU. Launch tasks whose writes pile up, then new
	// tasks that need reads; reads should interleave with writes.
	c, g := newTestGroup(t, 1, 1, 1)
	writeStage := &task.StageSpec{ID: 0, Name: "w", NumTasks: 4, OutputBytes: 100e6}
	readStage := &task.StageSpec{ID: 1, Name: "r", NumTasks: 1, OpCPU: 0.1}
	var tasks []*task.Task
	for i := 0; i < 4; i++ {
		tasks = append(tasks, &task.Task{Stage: writeStage, Index: i, Machine: 0})
	}
	tasks = append(tasks, &task.Task{Stage: readStage, Index: 0, Machine: 0, DiskReadBytes: 100e6})
	ms := run(c, g, tasks)
	readEnd := ms[4].End
	// Round robin: first write (1 s), then the read (2 s), not after all
	// four writes (which would be 5 s).
	if readEnd > 2.2 {
		t.Fatalf("read-dependent task finished at %v; reads starved behind writes", readEnd)
	}
}

func TestDoneCalledExactlyOnce(t *testing.T) {
	c, g := newTestGroup(t, 1, 1, 1)
	stage := &task.StageSpec{ID: 0, Name: "m", NumTasks: 1, OpCPU: 1}
	calls := 0
	g.Workers[0].Launch(&task.Task{Stage: stage, Index: 0, Machine: 0}, func(*task.TaskMetrics) { calls++ })
	c.Engine.Run()
	if calls != 1 {
		t.Fatalf("done called %d times, want 1", calls)
	}
}

func TestLaunchOnWrongMachinePanics(t *testing.T) {
	_, g := newTestGroup(t, 2, 1, 1)
	stage := &task.StageSpec{ID: 0, Name: "m", NumTasks: 1, OpCPU: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("launching machine-1 task on worker 0 did not panic")
		}
	}()
	g.Workers[0].Launch(&task.Task{Stage: stage, Index: 0, Machine: 1}, func(*task.TaskMetrics) {})
}

func TestMultitaskTimestampsOrdered(t *testing.T) {
	c, g := newTestGroup(t, 2, 2, 2)
	stage := &task.StageSpec{ID: 1, Name: "r", NumTasks: 3, ParentIDs: []int{0}, OpCPU: 0.5, OutputBytes: 10e6}
	var tasks []*task.Task
	for i := 0; i < 3; i++ {
		tasks = append(tasks, &task.Task{
			Stage: stage, Index: i, Machine: i % 2,
			Fetches: []task.Fetch{{From: (i + 1) % 2, Bytes: 20e6}},
		})
	}
	for _, m := range run(c, g, tasks) {
		if m == nil {
			t.Fatal("task never completed")
		}
		if m.End <= m.Start {
			t.Fatalf("task span [%v, %v] not positive", m.Start, m.End)
		}
		for _, mm := range m.Monotasks {
			if mm.Start < mm.Queued || mm.End < mm.Start {
				t.Fatalf("monotask timestamps out of order: queued %v start %v end %v",
					mm.Queued, mm.Start, mm.End)
			}
			if mm.Start < m.Start || mm.End > m.End {
				t.Fatalf("monotask [%v,%v] outside task span [%v,%v]",
					mm.Start, mm.End, m.Start, m.End)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	runOnce := func() []sim.Time {
		c, g := newTestGroup(t, 4, 2, 2)
		stage := &task.StageSpec{ID: 1, Name: "r", NumTasks: 16, ParentIDs: []int{0}, OpCPU: 0.3, ShuffleOutBytes: 5e6}
		var tasks []*task.Task
		for i := 0; i < 16; i++ {
			var fetches []task.Fetch
			for from := 0; from < 4; from++ {
				fetches = append(fetches, task.Fetch{From: from, Bytes: 10e6})
			}
			tasks = append(tasks, &task.Task{Stage: stage, Index: i, Machine: i % 4, Fetches: fetches})
		}
		ms := run(c, g, tasks)
		out := make([]sim.Time, len(ms))
		for i, m := range ms {
			out[i] = m.End
		}
		return out
	}
	a, b := runOnce(), runOnce()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at task %d: %v vs %v", i, a[i], b[i])
		}
	}
}
