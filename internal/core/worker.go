package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/netsim"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/task"
)

// Options tune a worker's per-resource schedulers. The zero value selects
// the paper's defaults; the remaining fields implement the §8 extensions
// and the ablation switches DESIGN.md calls out.
type Options struct {
	// SSDConcurrency is the number of monotasks each flash-drive scheduler
	// keeps outstanding; the paper found four reaches nearly the maximum
	// throughput (§3.3). Default 4.
	SSDConcurrency int
	// NetMultitaskLimit is how many multitasks may have outstanding network
	// requests at once on a receiving machine (§3.3). Default 4.
	NetMultitaskLimit int
	// DisablePhaseRoundRobin makes the per-resource queues plain FIFO,
	// recreating the §3.3 starvation pathology (reads stuck behind write
	// backlogs) for ablation.
	DisablePhaseRoundRobin bool
	// NoSpareMultitask drops the "+1" from the per-worker concurrency
	// target (§3.4), for ablation: without the spare, a round-robin class
	// can go empty while the worker waits on the job scheduler.
	NoSpareMultitask bool
	// LoadAwareWrites selects write disks by queue length instead of round
	// robin — the disk-scheduling improvement §8 proposes.
	LoadAwareWrites bool
	// NetworkPolicy selects the fetch-scheduling discipline; the default is
	// the paper's receiver-limited scheduler.
	NetworkPolicy NetworkPolicy
	// BatchSmallDiskRequests implements the paper's footnote-1 idea: when
	// many small disk monotasks queue on an HDD, service several together
	// so they amortize one seek instead of paying one each.
	BatchSmallDiskRequests bool
	// Faults, when set, is consulted once per launched attempt; attempts it
	// fails occupy their slot briefly and complete with TaskMetrics.Failed,
	// exercising the driver's retry and exclusion policies (internal/faults).
	Faults task.FaultInjector
}

func (o Options) withDefaults() Options {
	if o.SSDConcurrency <= 0 {
		o.SSDConcurrency = 4
	}
	if o.NetMultitaskLimit <= 0 {
		o.NetMultitaskLimit = 4
	}
	return o
}

// Worker is one machine's monotasks runtime: a Local DAG Scheduler plus
// per-resource schedulers (§3.3).
type Worker struct {
	machine *cluster.Machine
	eng     *sim.Engine
	fabric  *netsim.Fabric
	opts    Options
	peers   func(int) *Worker

	// sched is the timeline this worker's machine-local work runs on: the
	// machine's lane in a sharded run, the engine otherwise. lane is non-nil
	// only when sharded; cross-machine consequences route through it (see
	// global).
	sched sim.Scheduler
	lane  *sim.Lane

	compute *computeScheduler
	disks   []*diskScheduler
	network *networkScheduler
	// matcher is shared across a Group when NetworkPolicy is
	// SenderReceiverMatching; nil otherwise.
	matcher *matcher

	writeCursor int
	serveCursor int

	// pull, when set, is invoked right after every completion callback this
	// worker delivers (successful, failed, or zombie) — the worker-local
	// queue-feeding hook of the delegated control plane: the worker asks its
	// dispatcher for replacement work the moment a slot opens, instead of
	// waiting for a driver pass. See SetTaskSource.
	pull func()

	// Control-plane cache: per-stage DAG templates plus free lists for the
	// per-task structs, so repeated launches of the same stage shape stay
	// off the allocator (see template.go).
	templates    map[*task.StageSpec]*dagTemplate
	monoPool     []*monotask
	mtPool       []*multitask
	readyScratch []*monotask
}

// NewWorker builds the runtime for one machine. Peers must be wired (via
// Group or SetPeers) before any task with remote fetches is launched.
func NewWorker(m *cluster.Machine, fabric *netsim.Fabric, eng *sim.Engine, opts Options) *Worker {
	opts = opts.withDefaults()
	w := &Worker{machine: m, eng: eng, fabric: fabric, opts: opts,
		sched: m.Scheduler(), lane: m.Lane(),
		templates: make(map[*task.StageSpec]*dagTemplate)}
	w.compute = newComputeScheduler(w)
	for _, d := range m.Disks {
		w.disks = append(w.disks, newDiskScheduler(w, d, opts.SSDConcurrency))
	}
	w.network = newNetworkScheduler(w, opts.NetMultitaskLimit)
	return w
}

// SetPeers installs the lookup used to reach other machines' workers.
func (w *Worker) SetPeers(lookup func(machineID int) *Worker) { w.peers = lookup }

// SetTaskSource registers (or, with nil, clears) the worker's pull hook:
// after each Launch completion callback returns, the worker invokes pull to
// request its next task. The delegated driver (jobsched.Config.WorkerDispatch)
// wires each worker's dispatcher here; re-registering replaces the previous
// hook, which is how per-job drivers over one long-lived worker group stay
// correct — a stale driver's fill finds no runnable work and is a no-op.
// The hook runs on the global timeline, same as the completion it follows.
func (w *Worker) SetTaskSource(pull func()) { w.pull = pull }

// global schedules fn on the global timeline after d. Work whose consequences
// cross machines — multitask completion callbacks into the driver, shuffle
// serves that start a fabric transfer — must not run on this machine's lane,
// where peers' state is not safely reachable. In a serial run the engine is
// the global timeline and the post is a plain After.
func (w *Worker) global(d sim.Duration, fn func()) {
	if w.lane != nil {
		w.lane.Global(d, fn)
		return
	}
	w.eng.After(d, fn)
}

func (w *Worker) peer(id int) *Worker {
	if w.peers == nil {
		panic("core: worker peers not wired")
	}
	p := w.peers(id)
	if p == nil {
		panic(fmt.Sprintf("core: no worker for machine %d", id))
	}
	return p
}

// MachineID reports which machine this worker runs on.
func (w *Worker) MachineID() int { return w.machine.ID }

// MaxConcurrentTasks is how many multitasks the job scheduler should assign
// to this worker: enough for every resource to be fully subscribed, plus one
// spare so the round-robin queues never go empty while a replacement is
// requested (§3.4).
func (w *Worker) MaxConcurrentTasks() int {
	n := w.machine.CPU.Cores()
	for _, ds := range w.disks {
		n += ds.limit
	}
	n += w.opts.NetMultitaskLimit
	if !w.opts.NoSpareMultitask {
		n++
	}
	return n
}

// Launch decomposes t into monotasks and begins executing them; done fires
// (on the engine) when every monotask has finished.
func (w *Worker) Launch(t *task.Task, done func(*task.TaskMetrics)) {
	if t.Machine != w.machine.ID {
		panic(fmt.Sprintf("core: task for machine %d launched on %d", t.Machine, w.machine.ID))
	}
	if w.opts.Faults != nil {
		if reason, after, failed := w.opts.Faults.AttemptFault(t, w.sched.Now()); failed {
			w.failLaunch(t, reason, after, done)
			return
		}
	}
	mt := w.newMultitask()
	mt.t = t
	mt.worker = w
	mt.done = done
	mt.bufBytes = bufferBytes(t)
	mcap := w.dagTemplateFor(t.Stage).metricsCap(t)
	if w.machine.Memory != nil && len(w.disks) > 0 {
		mcap++ // capacity pressure may add a mem-spill write
	}
	mt.metrics = task.NewTaskMetrics(t.Stage.ID, t.Index, t.Machine, w.sched.Now(), mcap)
	w.machine.MemAlloc(mt.bufBytes)
	ready := w.decompose(mt)
	if len(ready) == 0 {
		panic("core: multitask decomposed to an empty DAG")
	}
	for _, m := range ready {
		w.submit(m)
	}
}

// failLaunch reports t as a failed attempt after `after` of virtual time —
// the work wasted before the injected fault manifested. The attempt holds
// its slot for that span but is not decomposed into monotasks: a fault that
// kills a task also discards its resource reservations.
func (w *Worker) failLaunch(t *task.Task, reason string, after sim.Duration, done func(*task.TaskMetrics)) {
	tm := &task.TaskMetrics{
		StageID:    t.Stage.ID,
		Index:      t.Index,
		Machine:    t.Machine,
		Start:      w.sched.Now(),
		Failed:     true,
		FailReason: reason,
	}
	w.eng.After(after, func() {
		tm.End = w.eng.Now()
		done(tm)
		if w.pull != nil {
			w.pull()
		}
	})
}

// submit hands a ready monotask to its resource's scheduler.
func (w *Worker) submit(m *monotask) {
	switch m.resource {
	case task.CPUResource:
		w.compute.submit(m)
	case task.DiskResource:
		if len(w.disks) == 0 {
			panic("core: disk monotask on a diskless machine")
		}
		if m.diskIdx < 0 || m.diskIdx >= len(w.disks) {
			panic(fmt.Sprintf("core: disk index %d out of range", m.diskIdx))
		}
		w.disks[m.diskIdx].submit(m)
	case task.NetworkResource:
		w.network.submit(m)
	default:
		panic(fmt.Sprintf("core: unknown resource %v", m.resource))
	}
}

// serveRead runs a disk read on behalf of a remote machine's fetch: the
// read is queued on this machine's disk scheduler in the serve phase, and
// onRead fires when the bytes are in memory, ready to transfer. The
// resulting monotask metric is attributed to the requesting multitask but
// records this machine.
func (w *Worker) serveRead(requester *multitask, diskIdx int, bytes int64, kind task.Kind, onRead func()) {
	if len(w.disks) == 0 {
		panic("core: serve read on a diskless machine")
	}
	if diskIdx < 0 || diskIdx >= len(w.disks) {
		panic(fmt.Sprintf("core: serve disk index %d out of range", diskIdx))
	}
	m := w.newMonotask(requester)
	m.resource = task.DiskResource
	m.kind = kind
	m.phase = phaseServe
	m.bytes = bytes
	m.diskIdx = diskIdx
	m.onDone = onRead
	requester.remaining++
	w.disks[diskIdx].submit(m)
}

// nextWriteDisk picks a disk for a write monotask: round-robin by default,
// or — with the §8 LoadAwareWrites extension — the disk with the fewest
// queued-plus-running monotasks, breaking ties by index.
func (w *Worker) nextWriteDisk() int {
	if len(w.disks) == 0 {
		return 0
	}
	if w.opts.LoadAwareWrites {
		best, bestLoad := 0, int(^uint(0)>>1)
		for i, ds := range w.disks {
			if load := ds.queue.len() + ds.running; load < bestLoad {
				best, bestLoad = i, load
			}
		}
		return best
	}
	d := w.writeCursor
	w.writeCursor = (w.writeCursor + 1) % len(w.disks)
	return d
}

// nextServeDisk picks a disk for a shuffle-serve read, round-robin.
func (w *Worker) nextServeDisk() int {
	if len(w.disks) == 0 {
		return 0
	}
	d := w.serveCursor
	w.serveCursor = (w.serveCursor + 1) % len(w.disks)
	return d
}

// QueueLengths exposes contention the way the paper argues it should be
// visible (§3.1): as per-resource queue lengths.
func (w *Worker) QueueLengths() map[string]int {
	q := map[string]int{
		"cpu":     w.compute.queue.len(),
		"network": w.network.queueLen(),
	}
	for i, ds := range w.disks {
		q[fmt.Sprintf("disk%d", i)] = ds.queue.len()
	}
	return q
}

// QueueTimelines returns the per-resource queue-length timelines: the
// history of §3.1's contention signal. Keys match QueueLengths.
func (w *Worker) QueueTimelines() map[string]*resource.Tracker {
	q := map[string]*resource.Tracker{
		"cpu":     &w.compute.QueueLen,
		"network": &w.network.QueueLen,
	}
	for i, ds := range w.disks {
		q[fmt.Sprintf("disk%d", i)] = &ds.QueueLen
	}
	return q
}

// Group wires one Worker per cluster machine.
type Group struct {
	Workers []*Worker
}

// NewGroup builds a monotasks worker on every machine of c.
func NewGroup(c *cluster.Cluster, opts Options) *Group {
	g := &Group{}
	var ma *matcher
	if opts.NetworkPolicy == SenderReceiverMatching {
		ma = newMatcher(c.Engine, c.Size())
	}
	for _, m := range c.Machines {
		w := NewWorker(m, c.Fabric, c.Engine, opts)
		w.matcher = ma
		g.Workers = append(g.Workers, w)
	}
	for _, w := range g.Workers {
		w.SetPeers(func(id int) *Worker { return g.Workers[id] })
	}
	return g
}
