package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/task"
)

func TestMatcherGrantsExclusivePairs(t *testing.T) {
	eng := sim.NewEngine()
	ma := newMatcher(eng, 3)
	var order []string
	mk := func(name string, dur sim.Duration) func(func()) {
		return func(release func()) {
			order = append(order, name+"+")
			eng.After(dur, func() {
				order = append(order, name+"-")
				release()
			})
		}
	}
	// A: 0→1, B: 0→2 (conflicts with A on sender 0), C: 2→1 (conflicts
	// with A on receiver 1).
	ma.request(0, 1, mk("A", 5))
	ma.request(0, 2, mk("B", 5))
	ma.request(2, 1, mk("C", 5))
	if len(order) != 1 || order[0] != "A+" {
		t.Fatalf("initial grants = %v, want only A", order)
	}
	if ma.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", ma.Pending())
	}
	eng.Run()
	// After A completes at t=5, both B and C become grantable (disjoint).
	want := []string{"A+", "A-", "B+", "C+", "B-", "C-"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestMatcherSkipsBlockedHead(t *testing.T) {
	eng := sim.NewEngine()
	ma := newMatcher(eng, 4)
	started := map[string]sim.Time{}
	mk := func(name string, dur sim.Duration) func(func()) {
		return func(release func()) {
			started[name] = eng.Now()
			eng.After(dur, release)
		}
	}
	ma.request(0, 1, mk("A", 10))
	ma.request(0, 2, mk("B", 1)) // blocked on sender 0 behind A
	ma.request(2, 3, mk("C", 1)) // disjoint: must not convoy behind B
	if _, ok := started["C"]; !ok {
		t.Fatal("disjoint request convoyed behind a blocked head")
	}
	eng.Run()
	if started["B"] != 10 {
		t.Fatalf("B started at %v, want 10 (after A released sender 0)", started["B"])
	}
}

func TestMatcherDoubleReleasePanics(t *testing.T) {
	eng := sim.NewEngine()
	ma := newMatcher(eng, 2)
	var rel func()
	ma.request(0, 1, func(release func()) { rel = release })
	rel()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	rel()
}

func TestMatchingPolicyEndToEnd(t *testing.T) {
	// A reduce over the matching policy must produce identical byte
	// movement; only timing differs.
	for _, policy := range []NetworkPolicy{ReceiverLimited, SenderReceiverMatching} {
		c, _ := cluster.New(3, testSpec(2, 1))
		g := NewGroup(c, Options{NetworkPolicy: policy})
		stage := &task.StageSpec{ID: 1, Name: "red", NumTasks: 4, ParentIDs: []int{0}, OpCPU: 0.5}
		results := make([]*task.TaskMetrics, 4)
		for i := 0; i < 4; i++ {
			i := i
			tk := &task.Task{
				Stage: stage, Index: i, Machine: i % 3,
				Fetches: []task.Fetch{
					{From: (i + 1) % 3, Bytes: 50e6},
					{From: (i + 2) % 3, Bytes: 50e6},
				},
			}
			g.Workers[tk.Machine].Launch(tk, func(m *task.TaskMetrics) { results[i] = m })
		}
		c.Engine.Run()
		var netBytes int64
		for i, m := range results {
			if m == nil {
				t.Fatalf("policy %v: task %d never completed", policy, i)
			}
			for _, mm := range m.Monotasks {
				if mm.Resource == task.NetworkResource {
					netBytes += mm.Bytes
				}
			}
		}
		if netBytes != 4*100e6 {
			t.Fatalf("policy %v: moved %d network bytes, want 4e8", policy, netBytes)
		}
	}
}
