package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/task"
)

func TestNoSpareMultitaskDropsTheExtra(t *testing.T) {
	c, _ := cluster.New(1, testSpec(8, 2))
	with := NewWorker(c.Machines[0], c.Fabric, c.Engine, Options{})
	without := NewWorker(c.Machines[0], c.Fabric, c.Engine, Options{NoSpareMultitask: true})
	if with.MaxConcurrentTasks() != without.MaxConcurrentTasks()+1 {
		t.Fatalf("spare multitask accounting wrong: %d vs %d",
			with.MaxConcurrentTasks(), without.MaxConcurrentTasks())
	}
}

func TestFIFOQueueDiscipline(t *testing.T) {
	q := newFIFOQueue()
	a, b, c := mk(phaseOutput), mk(phaseInput), mk(phaseOutput)
	q.push(a)
	q.push(b)
	q.push(c)
	if q.len() != 3 {
		t.Fatalf("len = %d, want 3", q.len())
	}
	if q.pop() != a || q.pop() != b || q.pop() != c {
		t.Fatal("FIFO queue did not serve in arrival order")
	}
	if q.pop() != nil {
		t.Fatal("empty FIFO should pop nil")
	}
}

func TestDisablePhaseRoundRobinStarvesReads(t *testing.T) {
	// The §3.3 pathology in miniature: four writes queued ahead of a read.
	// Round robin serves the read second; FIFO serves it last.
	runReader := func(opts Options) float64 {
		c, _ := cluster.New(1, testSpec(4, 1))
		g := NewGroup(c, opts)
		writeStage := &task.StageSpec{ID: 0, Name: "w", NumTasks: 4, OutputBytes: 100e6}
		readStage := &task.StageSpec{ID: 1, Name: "r", NumTasks: 1, OpCPU: 0.1}
		for i := 0; i < 4; i++ {
			g.Workers[0].Launch(&task.Task{Stage: writeStage, Index: i, Machine: 0}, func(*task.TaskMetrics) {})
		}
		// The read arrives after the write backlog has formed (the writers'
		// zero-cost computes release their writes on the first dispatch).
		var end float64
		c.Engine.At(0.1, func() {
			g.Workers[0].Launch(&task.Task{Stage: readStage, Index: 0, Machine: 0, DiskReadBytes: 100e6},
				func(m *task.TaskMetrics) { end = float64(m.End) })
		})
		c.Engine.Run()
		return end
	}
	rr := runReader(Options{})
	fifo := runReader(Options{DisablePhaseRoundRobin: true})
	if fifo <= rr {
		t.Fatalf("FIFO reader end %v ≤ round-robin %v; starvation not reproduced", fifo, rr)
	}
}

func TestLoadAwareWritesPickShortestQueue(t *testing.T) {
	c, _ := cluster.New(1, testSpec(4, 2))
	w := NewWorker(c.Machines[0], c.Fabric, c.Engine, Options{LoadAwareWrites: true})
	// Occupy disk 0 with a long read so its scheduler has work.
	busy := &task.StageSpec{ID: 0, Name: "busy", NumTasks: 1}
	w.Launch(&task.Task{Stage: busy, Index: 0, Machine: 0, DiskReadBytes: 500e6, DiskReadDisk: 0},
		func(*task.TaskMetrics) {})
	if got := w.nextWriteDisk(); got != 1 {
		t.Fatalf("load-aware write chose disk %d, want 1 (disk 0 busy)", got)
	}
	// Round robin would have alternated regardless of load.
	w2 := NewWorker(c.Machines[0], c.Fabric, c.Engine, Options{})
	if a, b := w2.nextWriteDisk(), w2.nextWriteDisk(); a == b {
		t.Fatal("round robin did not alternate")
	}
	c.Engine.Run()
}

func TestHeterogeneousClusterSlowsStraggler(t *testing.T) {
	specs := []cluster.MachineSpec{testSpec(2, 1), testSpec(2, 1).Degraded(0.5)}
	c, err := cluster.NewHetero(specs)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGroup(c, Options{})
	stage := &task.StageSpec{ID: 0, Name: "cpu", NumTasks: 2, OpCPU: 10}
	var fast, slow float64
	g.Workers[0].Launch(&task.Task{Stage: stage, Index: 0, Machine: 0}, func(m *task.TaskMetrics) { fast = float64(m.End) })
	g.Workers[1].Launch(&task.Task{Stage: stage, Index: 1, Machine: 1}, func(m *task.TaskMetrics) { slow = float64(m.End) })
	c.Engine.Run()
	if fast != 10 {
		t.Fatalf("full-speed compute took %v, want 10", fast)
	}
	if slow != 20 {
		t.Fatalf("half-speed compute took %v, want 20", slow)
	}
}

func TestMemoryAccountingPeaksAndDrains(t *testing.T) {
	// §3.5: monotasks materialize whole task inputs and outputs in memory,
	// so memory in use peaks while tasks are in flight and returns to zero.
	c, _ := cluster.New(1, testSpec(2, 1))
	g := NewGroup(c, Options{})
	stage := &task.StageSpec{ID: 0, Name: "m", NumTasks: 2, OpCPU: 1, ShuffleOutBytes: 50e6}
	for i := 0; i < 2; i++ {
		g.Workers[0].Launch(&task.Task{Stage: stage, Index: i, Machine: 0, DiskReadBytes: 100e6},
			func(*task.TaskMetrics) {})
	}
	m := c.Machines[0]
	// Both multitasks are charged up front: 2 × (100 MB in + 50 MB out).
	if got := m.MemInUse(); got != 300e6 {
		t.Fatalf("in-flight memory = %d, want 3e8", got)
	}
	c.Engine.Run()
	if got := m.MemInUse(); got != 0 {
		t.Fatalf("memory after completion = %d, want 0", got)
	}
	if got := m.MemPeak(); got != 300e6 {
		t.Fatalf("peak memory = %d, want 3e8", got)
	}
}

func TestSmallRequestBatchingAmortizesSeeks(t *testing.T) {
	// 32 tiny reads on one HDD with an 8 ms seek each: unbatched they pay
	// 32 seeks; batched (8 per pass) they pay 4.
	runReads := func(batch bool) float64 {
		spec := testSpec(4, 1)
		spec.Disks[0].SeekTime = 0.008
		c, _ := cluster.New(1, spec)
		g := NewGroup(c, Options{BatchSmallDiskRequests: batch})
		stage := &task.StageSpec{ID: 0, Name: "tiny", NumTasks: 32, OpCPU: 0.001}
		var last float64
		for i := 0; i < 32; i++ {
			g.Workers[0].Launch(&task.Task{Stage: stage, Index: i, Machine: 0, DiskReadBytes: 64 << 10},
				func(m *task.TaskMetrics) { last = float64(m.End) })
		}
		c.Engine.Run()
		return last
	}
	plain := runReads(false)
	batched := runReads(true)
	if batched >= plain {
		t.Fatalf("batched tiny reads (%v) not faster than unbatched (%v)", batched, plain)
	}
	// Seek savings should dominate: 32×8ms ≈ 0.26s vs 4×8ms ≈ 0.03s.
	if plain-batched < 0.15 {
		t.Fatalf("batching saved only %vs; expected ≈0.22s of seeks", plain-batched)
	}
}

func TestBatchingLeavesLargeReadsAlone(t *testing.T) {
	spec := testSpec(2, 1)
	spec.Disks[0].SeekTime = 0.008
	c, _ := cluster.New(1, spec)
	g := NewGroup(c, Options{BatchSmallDiskRequests: true})
	stage := &task.StageSpec{ID: 0, Name: "big", NumTasks: 2, OpCPU: 0.001}
	var ends []float64
	for i := 0; i < 2; i++ {
		g.Workers[0].Launch(&task.Task{Stage: stage, Index: i, Machine: 0, DiskReadBytes: 100e6},
			func(m *task.TaskMetrics) { ends = append(ends, float64(m.End)) })
	}
	c.Engine.Run()
	// Large reads stay serialized one per disk pass: second ends ≈ 2×first.
	if len(ends) != 2 || ends[1] < 1.9 {
		t.Fatalf("large reads were batched: ends = %v", ends)
	}
}
