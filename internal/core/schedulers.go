package core

import (
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/task"
)

// computeScheduler runs one compute monotask per core (§3.3): because it
// never admits more monotasks than cores, every admitted monotask runs at
// the full rate of one core.
type computeScheduler struct {
	w       *Worker
	queue   *rrQueue
	running int
	limit   int
	ops     []*computeOp // free list of in-flight op records
	// QueueLen tracks queued monotasks over time — §3.1's "contention is
	// visible as the queue length for each resource", as a timeline.
	QueueLen resource.Tracker
}

// computeOp carries one admitted compute monotask through its CPU job — and,
// on machines with the memory model, the monotask's memory stream. The two
// legs join: the monotask holds its core until both the CPU work and the
// memory movement finish, so memory contention is visible as longer compute
// service times (the stall a memory-bound task really experiences). The
// struct and its completion thunk are pooled so pump never allocates.
type computeOp struct {
	cs       *computeScheduler
	m        *monotask
	pending  int    // outstanding legs (CPU, and memory when modeled)
	memBytes int64  // bytes the memory leg moved, for the metric
	fn       func() // op.legDone, bound once per struct
}

func (cs *computeScheduler) takeOp() *computeOp {
	if n := len(cs.ops); n > 0 {
		op := cs.ops[n-1]
		cs.ops[n-1] = nil
		cs.ops = cs.ops[:n-1]
		return op
	}
	op := &computeOp{cs: cs}
	op.fn = op.legDone
	return op
}

// legDone fires once per leg; the last leg completes the monotask.
func (op *computeOp) legDone() {
	op.pending--
	if op.pending > 0 {
		return
	}
	op.done()
}

func (op *computeOp) done() {
	cs, m := op.cs, op.m
	memBytes := op.memBytes
	op.m = nil
	op.memBytes = 0
	cs.ops = append(cs.ops, op)
	cs.running--
	metric := task.MonotaskMetric{
		Resource: task.CPUResource,
		Kind:     task.KindCompute,
		Machine:  cs.w.machine.ID,
		Queued:   m.queued,
		Start:    m.start,
		End:      cs.w.sched.Now(),
		DeserSec: m.deser,
		OpSec:    m.op,
		SerSec:   m.ser,
		MemBytes: memBytes,
	}
	cs.pump()
	cs.w.finish(m, metric)
}

func newComputeScheduler(w *Worker) *computeScheduler {
	return &computeScheduler{w: w, queue: newQueue(w), limit: w.machine.CPU.Cores()}
}

// newQueue picks the queue discipline the worker's options select.
func newQueue(w *Worker) *rrQueue {
	if w.opts.DisablePhaseRoundRobin {
		return newFIFOQueue()
	}
	return newRRQueue()
}

func (cs *computeScheduler) submit(m *monotask) {
	m.queued = cs.w.sched.Now()
	cs.queue.push(m)
	cs.pump()
	cs.QueueLen.Set(cs.w.sched.Now(), float64(cs.queue.len()))
}

func (cs *computeScheduler) pump() {
	for cs.running < cs.limit && cs.queue.len() > 0 {
		m := cs.queue.pop()
		cs.QueueLen.Set(cs.w.sched.Now(), float64(cs.queue.len()))
		m.start = cs.w.sched.Now()
		cs.running++
		op := cs.takeOp()
		op.m = m
		op.pending = 1
		if mem := cs.w.machine.Memory; mem != nil && m.memBytes > 0 {
			op.pending = 2
			op.memBytes = m.memBytes
			mem.Stream(m.memBytes, m.memBW, op.fn)
		}
		cs.w.machine.CPU.Run(m.cpuSeconds(), op.fn)
	}
}

// diskScheduler runs a bounded number of monotasks on one drive: one for an
// HDD (concurrency wrecks spinning-disk throughput) and a configurable
// number, default four, for an SSD (§3.3). Its queue round-robins across
// DAG phases so reads are not starved behind writes.
type diskScheduler struct {
	w       *Worker
	disk    *resource.Disk
	queue   *rrQueue
	running int
	limit   int
	ops     []*diskOp // free list of in-flight op records
	// QueueLen tracks queued monotasks over time (§3.1).
	QueueLen resource.Tracker
}

// diskOp carries one disk request — a monotask, or a batch of small reads
// sharing a seek — through the drive. Pooled, with the batch slice's
// capacity and the completion thunk reused across requests.
type diskOp struct {
	ds    *diskScheduler
	batch []*monotask
	fn    func() // op.done, bound once per struct
}

func (ds *diskScheduler) takeOp() *diskOp {
	if n := len(ds.ops); n > 0 {
		op := ds.ops[n-1]
		ds.ops[n-1] = nil
		ds.ops = ds.ops[:n-1]
		return op
	}
	op := &diskOp{ds: ds}
	op.fn = op.done
	return op
}

func (op *diskOp) done() {
	ds := op.ds
	ds.running--
	end := ds.w.sched.Now()
	ds.pump()
	for _, bm := range op.batch {
		metric := task.MonotaskMetric{
			Resource: task.DiskResource,
			Kind:     bm.kind,
			Machine:  ds.w.machine.ID,
			Queued:   bm.queued,
			Start:    bm.start,
			End:      end,
			Bytes:    bm.bytes,
		}
		if bm.phase == phaseServe && ds.w.lane != nil {
			// A serve-phase read completed on this machine's lane, but its
			// consequences are cross-machine: onDone starts a fabric
			// transfer and finish mutates the remote requester's multitask.
			// Escape to the global timeline at the completion instant. The
			// serial engine runs this reaction inline inside the disk
			// completion event, so the inline flavor keeps the causal key —
			// and with it the serial reaction order for same-instant serve
			// completions across lanes, which consume order-sensitive
			// shared state (fetch pipelining, the serve disk cursor).
			bm, metric := bm, metric
			ds.w.lane.GlobalInline(func() {
				if bm.onDone != nil {
					bm.onDone()
				}
				ds.w.finish(bm, metric)
			})
			continue
		}
		if bm.onDone != nil {
			bm.onDone()
		}
		ds.w.finish(bm, metric)
	}
	for i := range op.batch {
		op.batch[i] = nil
	}
	op.batch = op.batch[:0]
	ds.ops = append(ds.ops, op)
}

func newDiskScheduler(w *Worker, d *resource.Disk, ssdConcurrency int) *diskScheduler {
	limit := 1
	if d.Spec().Kind == resource.SSD {
		limit = ssdConcurrency
	}
	return &diskScheduler{w: w, disk: d, queue: newQueue(w), limit: limit}
}

func (ds *diskScheduler) submit(m *monotask) {
	m.queued = ds.w.sched.Now()
	ds.queue.push(m)
	ds.pump()
	ds.QueueLen.Set(ds.w.sched.Now(), float64(ds.queue.len()))
}

// smallRequestBytes is the footnote-1 threshold below which queued reads
// are batched (when the option is on): small enough that per-request seeks
// dominate, so servicing several per seek pays off.
const smallRequestBytes = 4 << 20

// batchLimit bounds how many small requests share one disk pass.
const batchLimit = 8

func (ds *diskScheduler) pump() {
	for ds.running < ds.limit && ds.queue.len() > 0 {
		m := ds.queue.pop()
		op := ds.takeOp()
		ds.gatherBatch(op, m)
		ds.QueueLen.Set(ds.w.sched.Now(), float64(ds.queue.len()))
		now := ds.w.sched.Now()
		var total int64
		for _, bm := range op.batch {
			bm.start = now
			total += bm.bytes
		}
		ds.running++
		switch m.kind {
		case task.KindShuffleWrite, task.KindOutputWrite, task.KindMemSpill:
			ds.disk.Write(total, op.fn)
		default:
			ds.disk.Read(total, op.fn)
		}
	}
}

// gatherBatch fills op.batch with m plus, when small-request batching is
// enabled and m is a small read, up to batchLimit−1 further small queued
// reads of the same kind — serviced as one request that pays one seek
// (footnote 1: "the disk scheduler can optimize seek time by re-ordering
// monotasks").
func (ds *diskScheduler) gatherBatch(op *diskOp, m *monotask) {
	op.batch = append(op.batch, m)
	if !ds.w.opts.BatchSmallDiskRequests || m.bytes >= smallRequestBytes {
		return
	}
	switch m.kind {
	case task.KindShuffleWrite, task.KindOutputWrite, task.KindMemSpill:
		return // reads only: writes already land where the head is
	}
	for len(op.batch) < batchLimit && ds.queue.len() > 0 {
		next := ds.queue.peekSame(m.kind, smallRequestBytes)
		if next == nil {
			break
		}
		op.batch = append(op.batch, next)
	}
}

// netEntry tracks one multitask's network monotasks inside the network
// scheduler. Pooled; the live entry is reachable via multitask.netEntry.
type netEntry struct {
	mt       *multitask
	pending  []*monotask
	inflight int
	active   bool
	queuedAt sim.Time
}

// networkScheduler is receiver-driven (§3.3): it admits the outstanding
// requests of at most `limit` multitasks at once. Fewer wastes the ingress
// link when one sender is slow; more interleaves multitasks' data so no
// compute monotask can start. Admitting whole multitasks front-loads one
// multitask's data so its compute pipelines with the next multitask's
// fetches.
type networkScheduler struct {
	w       *Worker
	fifo    []*netEntry
	active  int
	limit   int
	entries []*netEntry // free list of admission records
	ops     []*fetchOp  // free list of in-flight fetch records
	// QueueLen tracks multitasks waiting for a network admission slot (§3.1).
	QueueLen resource.Tracker
}

func newNetworkScheduler(w *Worker, limit int) *networkScheduler {
	return &networkScheduler{w: w, limit: limit}
}

func (ns *networkScheduler) takeEntry(mt *multitask) *netEntry {
	var e *netEntry
	if n := len(ns.entries); n > 0 {
		e = ns.entries[n-1]
		ns.entries[n-1] = nil
		ns.entries = ns.entries[:n-1]
	} else {
		e = &netEntry{}
	}
	e.mt = mt
	e.queuedAt = ns.w.sched.Now()
	return e
}

func (ns *networkScheduler) recycleEntry(e *netEntry) {
	e.mt = nil
	for i := range e.pending {
		e.pending[i] = nil
	}
	e.pending = e.pending[:0]
	e.inflight = 0
	e.active = false
	ns.entries = append(ns.entries, e)
}

func (ns *networkScheduler) submit(m *monotask) {
	m.queued = ns.w.sched.Now()
	e := m.owner.netEntry
	if e == nil {
		e = ns.takeEntry(m.owner)
		m.owner.netEntry = e
		ns.fifo = append(ns.fifo, e)
	}
	if e.active {
		ns.launch(e, m)
		return
	}
	e.pending = append(e.pending, m)
	ns.pump()
	ns.QueueLen.Set(ns.w.sched.Now(), float64(len(ns.fifo)))
}

func (ns *networkScheduler) pump() {
	defer func() { ns.QueueLen.Set(ns.w.sched.Now(), float64(len(ns.fifo))) }()
	for ns.active < ns.limit && len(ns.fifo) > 0 {
		e := ns.fifo[0]
		ns.fifo[0] = nil
		ns.fifo = ns.fifo[1:]
		e.active = true
		ns.active++
		pending := e.pending
		for i, m := range pending {
			ns.launch(e, m)
			pending[i] = nil
		}
		e.pending = e.pending[:0]
	}
}

// fetchOp carries one fetch through its grant → serve read → transfer →
// completion sequence. The struct and its three thunks are pooled, so a
// fetch costs no closure allocations.
type fetchOp struct {
	ns         *networkScheduler
	e          *netEntry
	m          *monotask
	release    func()       // matcher grant release, nil without matcher
	startFn    func(func()) // op.start, bound once per struct
	transferFn func()       // op.transfer, bound once per struct
	doneFn     func()       // op.done, bound once per struct
}

func (ns *networkScheduler) takeOp() *fetchOp {
	if n := len(ns.ops); n > 0 {
		op := ns.ops[n-1]
		ns.ops[n-1] = nil
		ns.ops = ns.ops[:n-1]
		return op
	}
	op := &fetchOp{ns: ns}
	op.startFn = op.start
	op.transferFn = op.transfer
	op.doneFn = op.done
	return op
}

// launch issues one fetch: the serving machine reads the bytes (unless they
// are in memory there), then a network flow carries them here. Under the
// matching policy the whole serve+transfer waits for a sender/receiver
// grant first.
func (ns *networkScheduler) launch(e *netEntry, m *monotask) {
	m.start = ns.w.sched.Now()
	e.inflight++
	op := ns.takeOp()
	op.e, op.m = e, m
	if ns.w.matcher != nil {
		ns.w.matcher.request(m.fetch.From, ns.w.machine.ID, op.startFn)
		return
	}
	op.start(nil)
}

func (op *fetchOp) start(release func()) {
	op.release = release
	ns, m := op.ns, op.m
	if m.fetch.FromMem {
		op.transfer()
		return
	}
	remote := ns.w.peer(m.fetch.From)
	kind := task.KindShuffleServeRead
	diskIdx := remote.nextServeDisk()
	if m.kind == task.KindNetFetch && m.owner.t.RemoteRead != nil && m.fetch == *m.owner.t.RemoteRead {
		// Remote HDFS block read: the block's disk is known.
		kind = task.KindInputRead
		diskIdx = m.fetch.FromDisk
	}
	remote.serveRead(m.owner, diskIdx, m.bytes, kind, op.transferFn)
}

func (op *fetchOp) transfer() {
	ns, m := op.ns, op.m
	ns.w.fabric.Transfer(m.fetch.From, ns.w.machine.ID, m.bytes, op.doneFn)
}

func (op *fetchOp) done() {
	ns, e, m := op.ns, op.e, op.m
	if op.release != nil {
		op.release()
	}
	op.e, op.m, op.release = nil, nil, nil
	ns.ops = append(ns.ops, op)
	metric := task.MonotaskMetric{
		Resource: task.NetworkResource,
		Kind:     task.KindNetFetch,
		Machine:  ns.w.machine.ID,
		Queued:   m.queued,
		Start:    m.start,
		End:      ns.w.sched.Now(),
		Bytes:    m.bytes,
	}
	e.inflight--
	if e.inflight == 0 && len(e.pending) == 0 && e.active {
		e.active = false
		ns.active--
		e.mt.netEntry = nil
		ns.recycleEntry(e)
		ns.pump()
	}
	ns.w.finish(m, metric)
}

// queueLen reports multitasks waiting for a network admission slot.
func (ns *networkScheduler) queueLen() int { return len(ns.fifo) }
