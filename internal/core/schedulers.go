package core

import (
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/task"
)

// computeScheduler runs one compute monotask per core (§3.3): because it
// never admits more monotasks than cores, every admitted monotask runs at
// the full rate of one core.
type computeScheduler struct {
	w       *Worker
	queue   *rrQueue
	running int
	limit   int
	// QueueLen tracks queued monotasks over time — §3.1's "contention is
	// visible as the queue length for each resource", as a timeline.
	QueueLen resource.Tracker
}

func newComputeScheduler(w *Worker) *computeScheduler {
	return &computeScheduler{w: w, queue: newQueue(w), limit: w.machine.CPU.Cores()}
}

// newQueue picks the queue discipline the worker's options select.
func newQueue(w *Worker) *rrQueue {
	if w.opts.DisablePhaseRoundRobin {
		return newFIFOQueue()
	}
	return newRRQueue()
}

func (cs *computeScheduler) submit(m *monotask) {
	m.queued = cs.w.eng.Now()
	cs.queue.push(m)
	cs.pump()
	cs.QueueLen.Set(cs.w.eng.Now(), float64(cs.queue.len()))
}

func (cs *computeScheduler) pump() {
	for cs.running < cs.limit && cs.queue.len() > 0 {
		m := cs.queue.pop()
		cs.QueueLen.Set(cs.w.eng.Now(), float64(cs.queue.len()))
		m.start = cs.w.eng.Now()
		cs.running++
		cs.w.machine.CPU.Run(m.cpuSeconds(), func() {
			cs.running--
			metric := task.MonotaskMetric{
				Resource: task.CPUResource,
				Kind:     task.KindCompute,
				Machine:  cs.w.machine.ID,
				Queued:   m.queued,
				Start:    m.start,
				End:      cs.w.eng.Now(),
				DeserSec: m.deser,
				OpSec:    m.op,
				SerSec:   m.ser,
			}
			cs.pump()
			cs.w.finish(m, metric)
		})
	}
}

// diskScheduler runs a bounded number of monotasks on one drive: one for an
// HDD (concurrency wrecks spinning-disk throughput) and a configurable
// number, default four, for an SSD (§3.3). Its queue round-robins across
// DAG phases so reads are not starved behind writes.
type diskScheduler struct {
	w       *Worker
	disk    *resource.Disk
	queue   *rrQueue
	running int
	limit   int
	// QueueLen tracks queued monotasks over time (§3.1).
	QueueLen resource.Tracker
}

func newDiskScheduler(w *Worker, d *resource.Disk, ssdConcurrency int) *diskScheduler {
	limit := 1
	if d.Spec().Kind == resource.SSD {
		limit = ssdConcurrency
	}
	return &diskScheduler{w: w, disk: d, queue: newQueue(w), limit: limit}
}

func (ds *diskScheduler) submit(m *monotask) {
	m.queued = ds.w.eng.Now()
	ds.queue.push(m)
	ds.pump()
	ds.QueueLen.Set(ds.w.eng.Now(), float64(ds.queue.len()))
}

// smallRequestBytes is the footnote-1 threshold below which queued reads
// are batched (when the option is on): small enough that per-request seeks
// dominate, so servicing several per seek pays off.
const smallRequestBytes = 4 << 20

// batchLimit bounds how many small requests share one disk pass.
const batchLimit = 8

func (ds *diskScheduler) pump() {
	for ds.running < ds.limit && ds.queue.len() > 0 {
		m := ds.queue.pop()
		batch := ds.gatherBatch(m)
		ds.QueueLen.Set(ds.w.eng.Now(), float64(ds.queue.len()))
		now := ds.w.eng.Now()
		var total int64
		for _, bm := range batch {
			bm.start = now
			total += bm.bytes
		}
		ds.running++
		done := func() {
			ds.running--
			end := ds.w.eng.Now()
			ds.pump()
			for _, bm := range batch {
				metric := task.MonotaskMetric{
					Resource: task.DiskResource,
					Kind:     bm.kind,
					Machine:  ds.w.machine.ID,
					Queued:   bm.queued,
					Start:    bm.start,
					End:      end,
					Bytes:    bm.bytes,
				}
				if bm.onDone != nil {
					bm.onDone()
				}
				ds.w.finish(bm, metric)
			}
		}
		switch m.kind {
		case task.KindShuffleWrite, task.KindOutputWrite:
			ds.disk.Write(total, done)
		default:
			ds.disk.Read(total, done)
		}
	}
}

// gatherBatch returns m plus, when small-request batching is enabled and m
// is a small read, up to batchLimit−1 further small queued reads of the same
// kind — serviced as one request that pays one seek (footnote 1: "the disk
// scheduler can optimize seek time by re-ordering monotasks").
func (ds *diskScheduler) gatherBatch(m *monotask) []*monotask {
	batch := []*monotask{m}
	if !ds.w.opts.BatchSmallDiskRequests || m.bytes >= smallRequestBytes {
		return batch
	}
	switch m.kind {
	case task.KindShuffleWrite, task.KindOutputWrite:
		return batch // reads only: writes already land where the head is
	}
	for len(batch) < batchLimit && ds.queue.len() > 0 {
		next := ds.queue.peekSame(m.kind, smallRequestBytes)
		if next == nil {
			break
		}
		batch = append(batch, next)
	}
	return batch
}

// netEntry tracks one multitask's network monotasks inside the network
// scheduler.
type netEntry struct {
	mt       *multitask
	pending  []*monotask
	inflight int
	active   bool
	queuedAt sim.Time
}

// networkScheduler is receiver-driven (§3.3): it admits the outstanding
// requests of at most `limit` multitasks at once. Fewer wastes the ingress
// link when one sender is slow; more interleaves multitasks' data so no
// compute monotask can start. Admitting whole multitasks front-loads one
// multitask's data so its compute pipelines with the next multitask's
// fetches.
type networkScheduler struct {
	w       *Worker
	entries map[*multitask]*netEntry
	fifo    []*netEntry
	active  int
	limit   int
	// QueueLen tracks multitasks waiting for a network admission slot (§3.1).
	QueueLen resource.Tracker
}

func newNetworkScheduler(w *Worker, limit int) *networkScheduler {
	return &networkScheduler{w: w, entries: make(map[*multitask]*netEntry), limit: limit}
}

func (ns *networkScheduler) submit(m *monotask) {
	m.queued = ns.w.eng.Now()
	e, ok := ns.entries[m.owner]
	if !ok {
		e = &netEntry{mt: m.owner, queuedAt: ns.w.eng.Now()}
		ns.entries[m.owner] = e
		ns.fifo = append(ns.fifo, e)
	}
	if e.active {
		ns.launch(e, m)
		return
	}
	e.pending = append(e.pending, m)
	ns.pump()
	ns.QueueLen.Set(ns.w.eng.Now(), float64(len(ns.fifo)))
}

func (ns *networkScheduler) pump() {
	defer func() { ns.QueueLen.Set(ns.w.eng.Now(), float64(len(ns.fifo))) }()
	for ns.active < ns.limit && len(ns.fifo) > 0 {
		e := ns.fifo[0]
		ns.fifo[0] = nil
		ns.fifo = ns.fifo[1:]
		e.active = true
		ns.active++
		pending := e.pending
		e.pending = nil
		for _, m := range pending {
			ns.launch(e, m)
		}
	}
}

// launch issues one fetch: the serving machine reads the bytes (unless they
// are in memory there), then a network flow carries them here. Under the
// matching policy the whole serve+transfer waits for a sender/receiver
// grant first.
func (ns *networkScheduler) launch(e *netEntry, m *monotask) {
	m.start = ns.w.eng.Now()
	e.inflight++
	transferDone := func() {
		metric := task.MonotaskMetric{
			Resource: task.NetworkResource,
			Kind:     task.KindNetFetch,
			Machine:  ns.w.machine.ID,
			Queued:   m.queued,
			Start:    m.start,
			End:      ns.w.eng.Now(),
			Bytes:    m.bytes,
		}
		e.inflight--
		if e.inflight == 0 && len(e.pending) == 0 && e.active {
			e.active = false
			ns.active--
			delete(ns.entries, e.mt)
			ns.pump()
		}
		ns.w.finish(m, metric)
	}
	start := func(release func()) {
		done := func() {
			release()
			transferDone()
		}
		transfer := func() {
			ns.w.fabric.Transfer(m.fetch.From, ns.w.machine.ID, m.bytes, done)
		}
		if m.fetch.FromMem {
			transfer()
			return
		}
		remote := ns.w.peer(m.fetch.From)
		kind := task.KindShuffleServeRead
		diskIdx := remote.nextServeDisk()
		if m.kind == task.KindNetFetch && m.owner.t.RemoteRead != nil && m.fetch == *m.owner.t.RemoteRead {
			// Remote HDFS block read: the block's disk is known.
			kind = task.KindInputRead
			diskIdx = m.fetch.FromDisk
		}
		remote.serveRead(m.owner, diskIdx, m.bytes, kind, transfer)
	}
	if ns.w.matcher != nil {
		ns.w.matcher.request(m.fetch.From, ns.w.machine.ID, start)
		return
	}
	start(func() {})
}

// queueLen reports multitasks waiting for a network admission slot.
func (ns *networkScheduler) queueLen() int { return len(ns.fifo) }
