package core

import (
	"repro/internal/sim"
	"repro/internal/task"
)

// Phases order a multitask's monotasks for the per-resource round-robin
// queues (§3.3, "Queueing monotasks"): without phase round-robin, a backlog
// of phase-2 disk writes would starve phase-0 disk reads and the CPU would
// drain completely between bursts.
const (
	phaseInput   = 0
	phaseCompute = 1
	phaseOutput  = 2
	// phaseServe is for shuffle-serve reads issued on behalf of a remote
	// machine; keeping them in their own round-robin class prevents a
	// machine's own task I/O from starving the shuffle data its peers need.
	phaseServe = 3
)

// monotask is one single-resource unit of work.
type monotask struct {
	owner    *multitask
	resource task.Resource
	kind     task.Kind
	phase    int

	// Resource-specific demand.
	bytes   int64      // disk and network monotasks
	diskIdx int        // disk monotasks: which local disk
	fetch   task.Fetch // network monotasks
	deser   float64    // compute monotasks: core-seconds per part
	op      float64
	ser     float64
	// Memory leg of a compute monotask (machines with the memory model
	// enabled only): bytes moved through the memory system and the task's
	// per-stream bandwidth cap (<= 0 uncapped). The compute monotask holds
	// its core until both the CPU work and the memory movement finish.
	memBytes int64
	memBW    float64

	// DAG wiring.
	waiting    int // unfinished dependencies
	dependents []*monotask

	// onDone, when set, runs after the monotask's resource work completes
	// and before finish(); shuffle-serve reads use it to start the network
	// transfer they gate.
	onDone func()

	// Timing, filled in as the monotask advances.
	queued sim.Time
	start  sim.Time
}

// cpuSeconds is a compute monotask's total demand.
func (m *monotask) cpuSeconds() float64 { return m.deser + m.op + m.ser }

// dependsOn wires m to run after dep.
func (m *monotask) dependsOn(dep *monotask) {
	dep.dependents = append(dep.dependents, m)
	m.waiting++
}

// multitask tracks one in-flight task and its monotask DAG. Structs are
// pooled per worker (see newMultitask/complete in template.go).
type multitask struct {
	t         *task.Task
	worker    *Worker
	remaining int // monotasks not yet finished
	metrics   *task.TaskMetrics
	done      func(*task.TaskMetrics)
	// bufBytes is the memory held while the multitask is in flight: unlike
	// fine-grained pipelining, monotasks materialize a task's whole input
	// and output between resources (§3.5), so the worker charges it up
	// front and releases it at completion.
	bufBytes int64
	// memHeld is the portion of bufBytes the memory model admitted as
	// resident (the rest spilled to disk); released at completion. Always
	// zero on machines without the memory model.
	memHeld int64
	// netEntry is the network scheduler's per-multitask admission record,
	// stored here so the scheduler needs no map.
	netEntry *netEntry
	// completeFn is the engine thunk for complete, bound once per struct.
	completeFn func()
}

// bufferBytes is the §3.5 memory footprint: all input is read into memory
// before compute, and all output is produced before it is written out.
func bufferBytes(t *task.Task) int64 {
	b := t.InputBytes()
	if !t.Stage.ShuffleInMemory {
		b += t.Stage.ShuffleOutBytes
	}
	if !t.Stage.OutputToMem {
		b += t.Stage.OutputBytes
	}
	return b
}

// decompose builds the monotask DAG for t (§3.2, Fig. 4) and returns the
// monotasks with no dependencies, ready for immediate submission. The static
// skeleton (compute cost split, output writes) comes from the worker's
// per-stage template; only the input side — which depends on how the task
// was resolved and placed — is built per task. Node structs come from the
// worker's free list, and the returned slice is worker-owned scratch, valid
// until the next decompose on this worker.
func (w *Worker) decompose(mt *multitask) []*monotask {
	t := mt.t
	tp := w.dagTemplateFor(t.Stage)

	compute := w.stampNode(mt, &tp.compute)
	count := 1
	ready := w.readyScratch[:0]

	// Input monotasks: all ready immediately, all feeding compute.
	if t.DiskReadBytes > 0 {
		rd := w.newMonotask(mt)
		rd.resource = task.DiskResource
		rd.kind = task.KindInputRead
		rd.phase = phaseInput
		rd.bytes = t.DiskReadBytes
		rd.diskIdx = t.DiskReadDisk
		compute.dependsOn(rd)
		ready = append(ready, rd)
		count++
	}
	if t.RemoteRead != nil {
		// A non-local HDFS block: fetched over the network like shuffle
		// data, with the remote machine reading the block from its disk.
		nf := w.newMonotask(mt)
		nf.resource = task.NetworkResource
		nf.kind = task.KindNetFetch
		nf.phase = phaseInput
		nf.bytes = t.RemoteRead.Bytes
		nf.fetch = *t.RemoteRead
		compute.dependsOn(nf)
		ready = append(ready, nf)
		count++
	}
	for _, f := range t.Fetches {
		switch {
		case f.From == t.Machine && f.FromMem:
			// Local in-memory shuffle data: already where the compute
			// monotask needs it; no monotask at all.
		case f.From == t.Machine:
			// Local shuffle data is a plain disk read (Fig. 4, "read
			// shuffle data from local disk").
			rd := w.newMonotask(mt)
			rd.resource = task.DiskResource
			rd.kind = task.KindShuffleServeRead
			rd.phase = phaseInput
			rd.bytes = f.Bytes
			rd.diskIdx = w.nextServeDisk()
			compute.dependsOn(rd)
			ready = append(ready, rd)
			count++
		default:
			nf := w.newMonotask(mt)
			nf.resource = task.NetworkResource
			nf.kind = task.KindNetFetch
			nf.phase = phaseInput
			nf.bytes = f.Bytes
			nf.fetch = f
			compute.dependsOn(nf)
			ready = append(ready, nf)
			count++
		}
	}

	// Memory model (fourth resource): charge the task's buffer against the
	// machine's capacity; bytes that do not fit are staged to a local disk
	// as a spill monotask the compute must wait for. Charging also drives
	// the seeded GC schedule. Diskless machines absorb the overflow (there
	// is nowhere to spill), matching their hardening elsewhere.
	if mem := w.machine.Memory; mem != nil {
		held, spill := mem.Charge(mt.bufBytes)
		mt.memHeld = held
		if spill > 0 && len(w.disks) > 0 {
			sp := w.newMonotask(mt)
			sp.resource = task.DiskResource
			sp.kind = task.KindMemSpill
			sp.phase = phaseInput
			sp.bytes = spill
			sp.diskIdx = w.nextWriteDisk()
			compute.dependsOn(sp)
			ready = append(ready, sp)
			count++
		}
	}

	// Output monotasks from the template. Write-disk choice is dynamic
	// (round-robin or load-aware cursors), so it is stamped here.
	for i := range tp.outputs {
		wr := w.stampNode(mt, &tp.outputs[i])
		wr.diskIdx = w.nextWriteDisk()
		wr.dependsOn(compute)
		count++
	}

	mt.remaining = count
	if len(ready) == 0 {
		// No inputs: the compute monotask starts the DAG.
		ready = append(ready, compute)
	}
	w.readyScratch = ready
	return ready
}

// finish records m's metric and releases its dependents; when the last
// monotask of the multitask finishes, the multitask completes.
func (w *Worker) finish(m *monotask, metric task.MonotaskMetric) {
	mt := m.owner
	mt.metrics.Monotasks = append(mt.metrics.Monotasks, metric)
	for _, d := range m.dependents {
		d.waiting--
		if d.waiting == 0 {
			w.submit(d)
		}
	}
	mt.remaining--
	if mt.remaining == 0 {
		mt.metrics.End = w.sched.Now()
		mt.worker.machine.MemFree(mt.bufBytes)
		if mem := mt.worker.machine.Memory; mem != nil {
			mem.Release(mt.memHeld)
			mt.memHeld = 0
		}
		// Defer the completion callback to the global timeline so the
		// driver's follow-on launches see consistent scheduler state; in a
		// sharded run this is also the escape off the machine's lane (the
		// driver may react by launching on any machine), merged by its
		// causal key so same-instant completions from different lanes
		// reach the driver in serial order.
		w.global(0, mt.completeFn)
	}
	w.recycleMono(m)
}
